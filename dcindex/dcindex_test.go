package dcindex

import (
	"testing"

	"repro/internal/workload"
)

func TestOpenRankClose(t *testing.T) {
	keys := GenerateKeys(10000, 1)
	idx, err := Open(keys, Options{Method: MethodC3, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()

	if idx.N() != 10000 || idx.Method() != MethodC3 {
		t.Errorf("header: N=%d method=%v", idx.N(), idx.Method())
	}
	queries := GenerateQueries(5000, 2)
	ranks, err := idx.RankBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		if want := workload.ReferenceRank(keys, q); ranks[i] != want {
			t.Fatalf("rank[%d] = %d, want %d", i, ranks[i], want)
		}
	}
	r, err := idx.Rank(keys[0])
	if err != nil || r != 1 {
		t.Errorf("Rank(first key) = %d, %v", r, err)
	}
	s := idx.Stats()
	if s.Runtime.KeysProcessed != 5001 {
		t.Errorf("stats keys = %d, want 5001", s.Runtime.KeysProcessed)
	}
	if s.SchemaVersion != StatsSchemaVersion || s.Keys != idx.N() || s.Method != idx.Method().String() {
		t.Errorf("stats tree = %+v, want schema %d, %d keys, method %s", s, StatsSchemaVersion, idx.N(), idx.Method())
	}
	if s.Updates != idx.UpdateStats() {
		t.Errorf("stats updates = %+v diverges from UpdateStats() = %+v", s.Updates, idx.UpdateStats())
	}
}

func TestAllMethodsAgree(t *testing.T) {
	keys := GenerateKeys(5000, 3)
	queries := GenerateQueries(2000, 4)
	var base []int
	for _, m := range Methods() {
		idx, err := Open(keys, Options{Method: m, Workers: 5, BatchKeys: 256})
		if err != nil {
			t.Fatal(err)
		}
		got, err := idx.RankBatch(queries)
		idx.Close()
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = got
			continue
		}
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("method %v disagrees at %d", m, i)
			}
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	keys := GenerateKeys(1000, 5)
	idx, err := Open(keys, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	if _, err := idx.RankBatch(GenerateQueries(100, 6)); err != nil {
		t.Fatal(err)
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(nil, Options{}); err == nil {
		t.Error("empty keys accepted")
	}
	if _, err := Open([]Key{3, 1}, Options{}); err == nil {
		t.Error("unsorted keys accepted")
	}
	if _, err := Open(GenerateKeys(2, 1), Options{Method: MethodC3, Workers: 10}); err == nil {
		t.Error("more slaves than keys accepted")
	}
}

func TestOwnerRouting(t *testing.T) {
	keys := GenerateKeys(1000, 7)
	idx, err := Open(keys, Options{Method: MethodC3, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	if o := idx.Owner(0); o != 0 {
		t.Errorf("smallest key owner = %d", o)
	}
	if o := idx.Owner(^Key(0)); o != 3 {
		t.Errorf("largest key owner = %d, want 3", o)
	}
	// Replicated method: always 0.
	idxA, err := Open(keys, Options{Method: MethodA, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer idxA.Close()
	if o := idxA.Owner(^Key(0)); o != 0 {
		t.Errorf("replicated owner = %d, want 0", o)
	}
}

func TestSimulateDefaultsToTable3Point(t *testing.T) {
	r, err := Simulate(SimOptions{Method: MethodC3, SampleQueries: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	if r.BatchBytes != 128<<10 || r.Nodes != 11 || r.TotalQueries != 1<<23 {
		t.Errorf("defaults wrong: %+v", r)
	}
	if r.NormalizedSec <= 0 {
		t.Errorf("time = %v", r.NormalizedSec)
	}
}

func TestSweepCoversFigure3Axis(t *testing.T) {
	rs, err := Sweep(SimOptions{Method: MethodA, SampleQueries: 20_000}, 8<<10, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].BatchBytes != 8<<10 || rs[1].BatchBytes != 64<<10 {
		t.Errorf("sweep: %+v", rs)
	}
}

func TestPredictAndProject(t *testing.T) {
	rows := PredictTable3(PentiumIII())
	if len(rows) != 3 {
		t.Fatalf("table3 rows = %d", len(rows))
	}
	pts := ProjectFigure4(PentiumIII(), 5)
	if len(pts) != 6 {
		t.Fatalf("figure4 points = %d", len(pts))
	}
	if pts[5].C3Ns >= pts[0].C3Ns {
		t.Error("C-3 projection did not improve over 5 years")
	}
}

func TestArchConstructors(t *testing.T) {
	for _, a := range []Arch{PentiumIII(), Pentium4(), GigabitEthernet(), FutureArch(PentiumIII(), 3)} {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
}

// TestOptionsWALDirDurable: the public API's durability opt-in. Insert
// through Options.WALDir, close, reopen the directory with a poisoned
// baseline — recovery must come from disk and ranks must stay exact.
func TestOptionsWALDirDurable(t *testing.T) {
	dir := t.TempDir()
	keys := GenerateKeys(4096, 1)
	opt := Options{Method: MethodC3, Workers: 4, WALDir: dir}
	idx, err := Open(keys, opt)
	if err != nil {
		t.Fatal(err)
	}
	inserted := []Key{7, 7, 500_000, 4_000_000_000}
	if err := idx.InsertBatch(inserted); err != nil {
		t.Fatal(err)
	}
	queries := GenerateQueries(2000, 2)
	want, err := idx.RankBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	idx.Close()

	idx2, err := Open(GenerateKeys(16, 99), opt)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer idx2.Close()
	if got := idx2.N(); got != len(keys)+len(inserted) {
		t.Fatalf("recovered %d keys, want %d", got, len(keys)+len(inserted))
	}
	got, err := idx2.RankBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		if got[i] != want[i] {
			t.Fatalf("rank[%d] after restart = %d, want %d", i, got[i], want[i])
		}
	}
}
