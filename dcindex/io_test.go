package dcindex

import (
	"bytes"
	"encoding/binary"
	"net"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netrun"
	"repro/internal/workload"
)

func TestSnapshotRoundTrip(t *testing.T) {
	keys := GenerateKeys(50000, 1)
	var buf bytes.Buffer
	if err := WriteKeys(&buf, keys); err != nil {
		t.Fatal(err)
	}
	got, err := ReadKeys(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(keys) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("key %d differs", i)
		}
	}
}

func TestSnapshotEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteKeys(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadKeys(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty round trip: %v %v", got, err)
	}
}

func TestSnapshotRejectsUnsorted(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteKeys(&buf, []Key{5, 3}); err == nil {
		t.Fatal("unsorted write accepted")
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	keys := GenerateKeys(100, 2)
	var buf bytes.Buffer
	if err := WriteKeys(&buf, keys); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Bad magic.
	bad := append([]byte(nil), raw...)
	bad[0] ^= 0xFF
	if _, err := ReadKeys(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic: %v", err)
	}
	// Bad version.
	bad = append([]byte(nil), raw...)
	bad[4] = 99
	if _, err := ReadKeys(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("bad version: %v", err)
	}
	// Truncated body.
	if _, err := ReadKeys(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Error("truncation accepted")
	}
	// Unsorted payload (flip two keys in place).
	bad = append([]byte(nil), raw...)
	copy(bad[16:20], raw[20:24])
	copy(bad[20:24], raw[16:20])
	if _, err := ReadKeys(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "sorted") {
		t.Errorf("unsorted payload: %v", err)
	}
}

func TestSaveLoadKeysFile(t *testing.T) {
	keys := GenerateKeys(10000, 3)
	path := filepath.Join(t.TempDir(), "index.dcx")
	if err := SaveKeys(path, keys); err != nil {
		t.Fatal(err)
	}
	got, err := LoadKeys(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("key %d differs after file round trip", i)
		}
	}
}

// End-to-end: snapshot -> nodes over TCP -> DialCluster -> correct ranks.
func TestTCPDeploymentEndToEnd(t *testing.T) {
	keys := GenerateKeys(8000, 4)
	path := filepath.Join(t.TempDir(), "index.dcx")
	if err := SaveKeys(path, keys); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadKeys(path)
	if err != nil {
		t.Fatal(err)
	}

	const parts = 4
	p, err := core.NewPartitioning(loaded, parts)
	if err != nil {
		t.Fatal(err)
	}
	var addrs []string
	var nodes []*netrun.Node
	for i := 0; i < parts; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		n := netrun.NewPartitionNode(p.Parts[i].Keys, p.Parts[i].RankBase)
		nodes = append(nodes, n)
		addrs = append(addrs, lis.Addr().String())
		go n.Serve(lis)
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()

	c, err := DialCluster(addrs, loaded, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Nodes() != parts {
		t.Fatalf("nodes = %d", c.Nodes())
	}

	queries := GenerateQueries(5000, 5)
	deadline := time.Now().Add(10 * time.Second)
	ranks, err := c.LookupBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	if time.Now().After(deadline) {
		t.Fatal("lookup took too long")
	}
	for i, q := range queries {
		if want := workload.ReferenceRank(keys, q); ranks[i] != want {
			t.Fatalf("rank[%d] = %d, want %d", i, ranks[i], want)
		}
	}
}

// A hostile header claiming ~2^32 keys over a tiny body must fail with
// a truncation error quickly — without attempting the ~16 GiB up-front
// allocation the count implies.
func TestSnapshotHostileCountDoesNotPreallocate(t *testing.T) {
	head := make([]byte, 16)
	binary.LittleEndian.PutUint32(head[0:4], snapshotMagic)
	binary.LittleEndian.PutUint32(head[4:8], snapshotVersion)
	binary.LittleEndian.PutUint64(head[8:16], (1<<32)-1)
	body := append(head, make([]byte, 64)...) // 16 of the claimed ~4G keys

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	_, err := ReadKeys(bytes.NewReader(body))
	runtime.ReadMemStats(&after)
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("err = %v, want truncation", err)
	}
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 1<<22 {
		t.Fatalf("ReadKeys allocated %d bytes for a hostile header, want bounded", grew)
	}
	// A count beyond the 2^32 key-space cap is rejected outright.
	binary.LittleEndian.PutUint64(head[8:16], 1<<33)
	if _, err := ReadKeys(bytes.NewReader(head)); err == nil || !strings.Contains(err.Error(), "claims") {
		t.Fatalf("err = %v, want claim rejection", err)
	}
}
