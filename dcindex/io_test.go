package dcindex

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netrun"
	"repro/internal/workload"
)

func TestSnapshotRoundTrip(t *testing.T) {
	keys := GenerateKeys(50000, 1)
	var buf bytes.Buffer
	if err := WriteKeys(&buf, keys); err != nil {
		t.Fatal(err)
	}
	got, err := ReadKeys(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(keys) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("key %d differs", i)
		}
	}
}

func TestSnapshotEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteKeys(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadKeys(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty round trip: %v %v", got, err)
	}
}

func TestSnapshotRejectsUnsorted(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteKeys(&buf, []Key{5, 3}); err == nil {
		t.Fatal("unsorted write accepted")
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	keys := GenerateKeys(100, 2)
	var buf bytes.Buffer
	if err := WriteKeys(&buf, keys); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Bad magic.
	bad := append([]byte(nil), raw...)
	bad[0] ^= 0xFF
	if _, err := ReadKeys(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic: %v", err)
	}
	// Bad version.
	bad = append([]byte(nil), raw...)
	bad[4] = 99
	if _, err := ReadKeys(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("bad version: %v", err)
	}
	// Truncated body.
	if _, err := ReadKeys(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Error("truncation accepted")
	}
	// Unsorted payload (flip two keys in place).
	bad = append([]byte(nil), raw...)
	copy(bad[16:20], raw[20:24])
	copy(bad[20:24], raw[16:20])
	if _, err := ReadKeys(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "sorted") {
		t.Errorf("unsorted payload: %v", err)
	}
}

func TestSaveLoadKeysFile(t *testing.T) {
	keys := GenerateKeys(10000, 3)
	path := filepath.Join(t.TempDir(), "index.dcx")
	if err := SaveKeys(path, keys); err != nil {
		t.Fatal(err)
	}
	got, err := LoadKeys(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatalf("key %d differs after file round trip", i)
		}
	}
}

// End-to-end: snapshot -> nodes over TCP -> DialCluster -> correct ranks.
func TestTCPDeploymentEndToEnd(t *testing.T) {
	keys := GenerateKeys(8000, 4)
	path := filepath.Join(t.TempDir(), "index.dcx")
	if err := SaveKeys(path, keys); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadKeys(path)
	if err != nil {
		t.Fatal(err)
	}

	const parts = 4
	p, err := core.NewPartitioning(loaded, parts)
	if err != nil {
		t.Fatal(err)
	}
	var addrs []string
	var nodes []*netrun.Node
	for i := 0; i < parts; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		n := netrun.NewPartitionNode(p.Parts[i].Keys, p.Parts[i].RankBase)
		nodes = append(nodes, n)
		addrs = append(addrs, lis.Addr().String())
		go n.Serve(lis)
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()

	c, err := DialCluster(addrs, loaded, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Nodes() != parts {
		t.Fatalf("nodes = %d", c.Nodes())
	}

	queries := GenerateQueries(5000, 5)
	deadline := time.Now().Add(10 * time.Second)
	ranks, err := c.LookupBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	if time.Now().After(deadline) {
		t.Fatal("lookup took too long")
	}
	for i, q := range queries {
		if want := workload.ReferenceRank(keys, q); ranks[i] != want {
			t.Fatalf("rank[%d] = %d, want %d", i, ranks[i], want)
		}
	}
}

// TestSnapshotTruncatedMidKeyError cuts a snapshot file in the middle
// of a key and wants the load error to name the file and both sides of
// the shortfall — an operator diagnosing a bad copy needs "got X of Y
// bytes in <path>", not a bare unexpected-EOF.
func TestSnapshotTruncatedMidKeyError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "index.dcx")
	keys := GenerateKeys(1000, 7)
	if err := SaveKeys(path, keys); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := int64(len(data)) // 16 + 4*1000
	cut := data[:16+4*123+2]      // mid-way through key 123
	if err := os.WriteFile(path, cut, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadKeys(path)
	if err == nil {
		t.Fatal("truncated snapshot loaded")
	}
	msg := err.Error()
	for _, want := range []string{
		path,                              // which file
		"truncated",                       // what happened
		fmt.Sprintf("want %d", wantBytes), // expected byte count
		fmt.Sprintf("(%d bytes on disk)", len(cut)), // actual byte count
	} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q does not mention %q", msg, want)
		}
	}
	// The unbuffered decode path (ReadKeys over a stream) reports the
	// same shortfall arithmetic without a path to name.
	_, err = ReadKeys(bytes.NewReader(cut))
	if err == nil || !strings.Contains(err.Error(), "truncated at key 123 of 1000") {
		t.Fatalf("ReadKeys error %v, want the key-level truncation position", err)
	}
}

// A hostile header claiming ~2^32 keys over a tiny body must fail with
// a truncation error quickly — without attempting the ~16 GiB up-front
// allocation the count implies.
func TestSnapshotHostileCountDoesNotPreallocate(t *testing.T) {
	head := make([]byte, 16)
	binary.LittleEndian.PutUint32(head[0:4], snapshotMagic)
	binary.LittleEndian.PutUint32(head[4:8], snapshotVersion)
	binary.LittleEndian.PutUint64(head[8:16], (1<<32)-1)
	body := append(head, make([]byte, 64)...) // 16 of the claimed ~4G keys

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	_, err := ReadKeys(bytes.NewReader(body))
	runtime.ReadMemStats(&after)
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("err = %v, want truncation", err)
	}
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 1<<22 {
		t.Fatalf("ReadKeys allocated %d bytes for a hostile header, want bounded", grew)
	}
	// A count beyond the 2^32 key-space cap is rejected outright.
	binary.LittleEndian.PutUint64(head[8:16], 1<<33)
	if _, err := ReadKeys(bytes.NewReader(head)); err == nil || !strings.Contains(err.Error(), "claims") {
		t.Fatalf("err = %v, want claim rejection", err)
	}
}

// TestSaveKeysConcurrent hammers one snapshot path from many savers:
// with the old fixed path+".tmp" name, two writers interleaved on the
// same temp file and could rename a corrupted mix into place. Unique
// temp names mean every rename installs one saver's complete snapshot.
func TestSaveKeysConcurrent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "index.dcx")

	const savers = 8
	const rounds = 6
	sets := make([][]Key, savers)
	for s := range sets {
		sets[s] = GenerateKeys(4000+100*s, uint64(40+s))
	}
	var wg sync.WaitGroup
	errs := make([]error, savers)
	for s := 0; s < savers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if err := SaveKeys(path, sets[s]); err != nil {
					errs[s] = err
					return
				}
			}
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			t.Fatalf("saver %d: %v", s, err)
		}
	}

	// The installed snapshot must be exactly one saver's key set.
	got, err := LoadKeys(path)
	if err != nil {
		t.Fatalf("snapshot corrupted by concurrent savers: %v", err)
	}
	match := false
	for _, set := range sets {
		if len(set) != len(got) {
			continue
		}
		same := true
		for i := range set {
			if set[i] != got[i] {
				same = false
				break
			}
		}
		if same {
			match = true
			break
		}
	}
	if !match {
		t.Fatalf("loaded snapshot (%d keys) matches no saver's key set", len(got))
	}

	// No temp litter left behind: every saver's CreateTemp file must
	// have been renamed into place or removed.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "index.dcx" {
			t.Fatalf("leftover file %q", e.Name())
		}
	}
}

// TestSaveKeysWriteErrorLeavesTargetIntact: a failed save (unsorted
// input) must neither touch an existing good snapshot nor leak a temp.
func TestSaveKeysWriteErrorLeavesTargetIntact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "index.dcx")
	good := GenerateKeys(1000, 50)
	if err := SaveKeys(path, good); err != nil {
		t.Fatal(err)
	}
	if err := SaveKeys(path, []Key{5, 3}); err == nil {
		t.Fatal("unsorted save succeeded")
	}
	got, err := LoadKeys(path)
	if err != nil || len(got) != len(good) {
		t.Fatalf("good snapshot damaged: %v (%d keys)", err, len(got))
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("leftover files after failed save: %v", entries)
	}
}

// TestDialClusterReplicated drives the public replicated surface:
// grouped "addr|addr" address syntax, failover on replica death, and
// Health reporting — dcindex.DialCluster over real sockets.
func TestDialClusterReplicated(t *testing.T) {
	keys := GenerateKeys(8000, 51)
	const parts = 2
	p, err := core.NewPartitioning(keys, parts)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([][]*netrun.Node, parts)
	addrs := make([][]string, parts)
	for i := 0; i < parts; i++ {
		for r := 0; r < 2; r++ {
			lis, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			n := netrun.NewPartitionNode(p.Parts[i].Keys, p.Parts[i].RankBase)
			nodes[i] = append(nodes[i], n)
			addrs[i] = append(addrs[i], lis.Addr().String())
			go n.Serve(lis)
		}
	}
	defer func() {
		for _, reps := range nodes {
			for _, n := range reps {
				n.Close()
			}
		}
	}()

	grouped := []string{
		addrs[0][0] + "|" + addrs[0][1],
		addrs[1][0] + "|" + addrs[1][1],
	}
	c, err := DialCluster(grouped, keys, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	queries := GenerateQueries(5000, 52)
	check := func() {
		t.Helper()
		ranks, err := c.LookupBatch(queries)
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range queries {
			if want := workload.ReferenceRank(keys, q); ranks[i] != want {
				t.Fatalf("rank[%d] = %d, want %d", i, ranks[i], want)
			}
		}
	}
	check()
	if h := c.Health(); len(h) != 4 {
		t.Fatalf("Health rows = %d, want 4", len(h))
	}

	// One replica dies; the cluster keeps answering without Redial.
	nodes[0][0].Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		check()
		var dead *ReplicaHealth
		for _, h := range c.Health() {
			if h.Partition == 0 && h.Addr == addrs[0][0] {
				h := h
				dead = &h
			}
		}
		if dead != nil && !dead.Healthy && dead.Failures > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("replica death never surfaced in Health")
		}
	}
	if err := c.Err(); err != nil {
		t.Fatalf("cluster terminal after single-replica death: %v", err)
	}
}

// TestSaveKeysPermissions: snapshots are distributed to every node and
// client, so a fresh save must be world-readable (0644, not CreateTemp's
// 0600) while an overwrite preserves a deliberately tightened mode.
func TestSaveKeysPermissions(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("unix permission semantics")
	}
	path := filepath.Join(t.TempDir(), "index.dcx")
	if err := SaveKeys(path, GenerateKeys(100, 60)); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode().Perm() != 0o644 {
		t.Fatalf("new snapshot mode %v, want 0644", st.Mode().Perm())
	}
	if err := os.Chmod(path, 0o600); err != nil {
		t.Fatal(err)
	}
	if err := SaveKeys(path, GenerateKeys(200, 61)); err != nil {
		t.Fatal(err)
	}
	if st, err = os.Stat(path); err != nil {
		t.Fatal(err)
	}
	if st.Mode().Perm() != 0o600 {
		t.Fatalf("overwritten snapshot mode %v, want preserved 0600", st.Mode().Perm())
	}
}
