package dcindex

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/faultfs"
	"repro/internal/index"
)

// Key-set snapshot format: a TCP deployment needs every node and client
// to agree on the exact indexed key set (cmd/dcnode regenerates it from
// a seed; real deployments load it from a file).
//
//	snapshot := magic(u32 = 0xDC1DF11E) version(u32 = 1) count(u64) count*key(u32)
//
// Keys must be sorted ascending; WriteKeys enforces it and ReadKeys
// verifies it, so a snapshot on disk is always a valid index input.

const (
	snapshotMagic   uint32 = 0xDC1DF11E
	snapshotVersion uint32 = 1
)

// WriteKeys streams a sorted key set to w in snapshot format.
func WriteKeys(w io.Writer, keys []Key) error {
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			return fmt.Errorf("dcindex: WriteKeys input not sorted at %d", i)
		}
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	head := make([]byte, 16)
	binary.LittleEndian.PutUint32(head[0:4], snapshotMagic)
	binary.LittleEndian.PutUint32(head[4:8], snapshotVersion)
	binary.LittleEndian.PutUint64(head[8:16], uint64(len(keys)))
	if _, err := bw.Write(head); err != nil {
		return fmt.Errorf("dcindex: write snapshot header: %w", err)
	}
	var buf [4]byte
	for _, k := range keys {
		binary.LittleEndian.PutUint32(buf[:], uint32(k))
		if _, err := bw.Write(buf[:]); err != nil {
			return fmt.Errorf("dcindex: write snapshot keys: %w", err)
		}
	}
	return bw.Flush()
}

// ReadKeys loads a snapshot written by WriteKeys, validating the header
// and the sort order.
func ReadKeys(r io.Reader) ([]Key, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, 16)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("dcindex: read snapshot header: %w", err)
	}
	if got := binary.LittleEndian.Uint32(head[0:4]); got != snapshotMagic {
		return nil, fmt.Errorf("dcindex: bad snapshot magic %#x", got)
	}
	if got := binary.LittleEndian.Uint32(head[4:8]); got != snapshotVersion {
		return nil, fmt.Errorf("dcindex: unsupported snapshot version %d", got)
	}
	count := binary.LittleEndian.Uint64(head[8:16])
	const maxKeys = 1 << 32
	if count > maxKeys {
		return nil, fmt.Errorf("dcindex: snapshot claims %d keys", count)
	}
	// Grow the key slice while reading instead of trusting the header:
	// a corrupt or hostile count near 2^32 must not trigger a ~16 GiB
	// up-front allocation. A truncated stream errors after at most one
	// chunk; an honest giant snapshot still loads, paying only append's
	// amortized growth. The cursor stays uint64 — int(count) would wrap
	// negative on 32-bit platforms and silently return an empty key set.
	initCap := 1 << 16
	if count < uint64(initCap) {
		initCap = int(count)
	}
	keys := make([]Key, 0, initCap)
	buf := make([]byte, 4*4096)
	for remaining := count; remaining > 0; {
		chunk := len(buf)
		if byteCount := remaining * 4; byteCount < uint64(chunk) {
			chunk = int(byteCount)
		}
		if n, err := io.ReadFull(br, buf[:chunk]); err != nil {
			// Name both sides of the shortfall: a truncated copy of a
			// snapshot looks exactly like a corrupt one, and "got X of Y
			// bytes" is what lets an operator tell them apart.
			have := 16 + 4*int64(len(keys)) + int64(n)
			want := 16 + 4*int64(count)
			return nil, fmt.Errorf("dcindex: snapshot truncated at key %d of %d: got %d bytes, want %d: %w",
				(have-16)/4, count, have, want, err)
		}
		for off := 0; off < chunk; off += 4 {
			k := Key(binary.LittleEndian.Uint32(buf[off:]))
			if len(keys) > 0 && k < keys[len(keys)-1] {
				return nil, fmt.Errorf("dcindex: snapshot keys not sorted at %d", len(keys))
			}
			keys = append(keys, k)
		}
		remaining -= uint64(chunk / 4)
	}
	return keys, nil
}

// SaveKeys writes a snapshot to path atomically: the bytes are written
// to a uniquely named temp file in the target directory, fsynced, and
// renamed into place, with the parent directory fsynced so the rename
// itself survives a crash. The unique temp name keeps concurrent savers
// of the same path from clobbering each other's half-written file (the
// last rename wins with a complete snapshot). The write rides
// index.AtomicWriteFile — the same crash-safe path the durability
// layer's segment snapshots use.
func SaveKeys(path string, keys []Key) error {
	// index.AtomicWriteFile creates the temp file with os.CreateTemp's
	// 0600; a snapshot is meant to be distributed (every node and client
	// reads it), so widen to the target's existing permissions, or the
	// conventional 0644 for a new file.
	mode := os.FileMode(0o644)
	if st, err := os.Stat(path); err == nil {
		mode = st.Mode().Perm()
	}
	return index.AtomicWriteFile(faultfs.OS, path, mode, func(w io.Writer) error {
		return WriteKeys(w, keys)
	})
}

// LoadKeys reads a snapshot from path. Decode failures are wrapped with
// the path and the file's on-disk size, so a truncated or corrupt
// snapshot names the exact file to regenerate.
func LoadKeys(path string) ([]Key, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	keys, err := ReadKeys(f)
	if err != nil {
		if st, serr := f.Stat(); serr == nil {
			return nil, fmt.Errorf("dcindex: load %s (%d bytes on disk): %w", path, st.Size(), err)
		}
		return nil, fmt.Errorf("dcindex: load %s: %w", path, err)
	}
	return keys, nil
}
