// Package dcindex is the public API of the distributed in-cache index
// described in "Fast Query Processing by Distributing an Index over CPU
// Caches" (Ma & Cooperman, CLUSTER 2005).
//
// The index answers rank queries over a large sorted key set: Rank(k)
// returns how many indexed keys are <= k, which identifies the sub-range
// — and therefore the responsible node — for any incoming key. Instead
// of replicating the index on every node and paying a cache miss per
// tree level (the index is far larger than any CPU cache), the index is
// partitioned so every partition fits inside one node's cache, and
// queries travel in batches over the interconnect to the partition
// owner.
//
// Three layers are exposed:
//
//   - The real runtime (Open/Rank/RankBatch): goroutine nodes and
//     channel interconnect executing actual lookups on the host. All
//     five of the paper's methods are available; results are identical
//     across methods, only performance differs. An Index is safe for
//     any number of concurrent callers: every RankBatch call gathers
//     replies on its own channel, so callers pipeline through the
//     shared worker pool instead of serializing behind a lock. Batch
//     buffers are pooled; with RankBatchInto reusing the result slice,
//     the array-layout methods (MethodC3 in either Layout, MethodA's
//     and MethodC1's trees) allocate nothing per call in steady state
//     (the buffered methods B and C-2 still allocate inside the
//     Zhou-Ross buffering plan). Close blocks until
//     in-flight calls drain. Options.Layout selects the Method C-3
//     slave structure: the paper's sorted array (default) or the
//     opt-in Eytzinger layout, whose interleaved branchless descent
//     overlaps cache misses across a batch. Ascending query batches
//     are auto-detected and take the sorted-batch pipeline — one
//     boundary search per partition instead of per-key routing,
//     zero-copy contiguous dispatch, and streaming merge kernels;
//     Options.SortedBatches radix-sorts unsorted batches into the same
//     path (see the README's "Sorted-batch mode"). The index is
//     updatable while serving: Insert/InsertBatch buffer new keys in
//     per-partition deltas, background merges compact them, and a
//     rebalance re-derives the partition delimiters when inserts skew
//     a partition past its cache budget (see the README's "Online
//     updates"). Beyond ranks, the same op-tagged batch pipeline
//     answers range counts, ordered range scans, top-k, and key
//     multiplicities — CountRange/CountRangeBatch, ScanRange, TopK,
//     MultiGet — exact against the live index (see the README's
//     "Query surface").
//   - The simulator (Simulate, Sweep): a trace-driven cache/network/
//     cluster simulation parameterized by the paper's measured Pentium
//     III constants (Table 2), which reproduces the paper's Figure 3 and
//     Table 3 numbers deterministically on any host.
//   - The analytical model (PredictTable3, ProjectFigure4): Appendix A's
//     closed-form cost equations and the Section 4.2 future projection.
//
// Quickstart:
//
//	keys := dcindex.GenerateKeys(327680, 1)
//	idx, _ := dcindex.Open(keys, dcindex.Options{Method: dcindex.MethodC3})
//	defer idx.Close()
//	ranks, _ := idx.RankBatch(queries)
package dcindex

import (
	"fmt"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/netrun"
	"repro/internal/workload"
)

// Key is a 4-byte search key, the unit the paper indexes.
type Key = workload.Key

// Method selects one of the paper's five query-processing strategies.
type Method = core.Method

// The five methods of Section 3. MethodC3 — the partitioned sorted array
// with binary search — is the paper's overall winner.
const (
	MethodA  = core.MethodA
	MethodB  = core.MethodB
	MethodC1 = core.MethodC1
	MethodC2 = core.MethodC2
	MethodC3 = core.MethodC3
)

// Methods lists all five strategies in presentation order.
func Methods() []Method { return core.Methods() }

// Layout selects the slave-side index structure for MethodC3.
type Layout = core.Layout

const (
	// LayoutSortedArray is the paper's C-3 structure — the partition's
	// sorted key run, binary-searched. The default.
	LayoutSortedArray = core.LayoutSortedArray
	// LayoutEytzinger lays each partition out in Eytzinger (BFS) order
	// and searches it with an interleaved branchless descent that
	// overlaps cache misses across the batch. It doubles the per-key
	// footprint (a rank table rides along), so it is opt-in: pick it
	// when the partition still fits the target cache at 2x. Only valid
	// with MethodC3.
	LayoutEytzinger = core.LayoutEytzinger
)

// Arch is an architecture parameter set for the simulator and model.
type Arch = arch.Params

// PentiumIII returns Table 2: the paper's measured cluster parameters.
func PentiumIII() Arch { return arch.PentiumIIICluster() }

// Pentium4 returns the Section 2.2 Pentium 4 variant (128-byte lines).
func Pentium4() Arch { return arch.Pentium4() }

// GigabitEthernet returns the Pentium III cluster with the slower, high-
// latency Gigabit Ethernet interconnect of Section 2.2.
func GigabitEthernet() Arch { return arch.GigabitEthernet() }

// FutureArch projects an architecture forward by years under the paper's
// Section 4.2 technology scaling assumptions.
func FutureArch(base Arch, years float64) Arch {
	return arch.Future(base, years, arch.PaperScaling())
}

// GenerateKeys returns n distinct, sorted, uniformly distributed keys —
// a ready-to-index key set (deterministic per seed).
func GenerateKeys(n int, seed uint64) []Key { return workload.SortedKeys(n, seed) }

// GenerateQueries returns q uniformly random query keys (deterministic
// per seed) — the paper's workload.
func GenerateQueries(q int, seed uint64) []Key { return workload.UniformQueries(q, seed) }

// DurabilityOptions groups the write-durability knobs: where the
// write-ahead state lives and how often it is fsynced. The zero value
// keeps the index purely in memory.
//
//dc:knobs ../README.md
type DurabilityOptions struct {
	// WALDir, when non-empty, makes writes durable: every partition
	// keeps a write-ahead log and segment snapshots under this
	// directory, InsertBatch returns only after the batch is fsynced,
	// and Open recovers the directory's state — the caller's keys then
	// serve only as the baseline for a fresh directory. Empty keeps the
	// index purely in memory.
	WALDir string
	// FsyncInterval spaces WAL fsyncs apart when WALDir is set: 0
	// fsyncs every group commit (full durability), > 0 trades a bounded
	// post-crash ack window for throughput, < 0 never fsyncs
	// (benchmarking only — acks are no longer crash-durable).
	FsyncInterval time.Duration
}

// Options configures the real runtime.
//
//dc:knobs ../README.md
type Options struct {
	// Method selects the strategy; the zero value is MethodA. Use
	// MethodC3 for the paper's recommended configuration.
	Method Method
	// Workers is the number of processing goroutines (default 8): the
	// slave count for Method C, the replica count for A/B.
	Workers int
	// BatchKeys is the pipeline granularity in keys (default 16384,
	// i.e. a 64 KB batch — the paper's throughput/response sweet spot).
	BatchKeys int
	// QueueDepth bounds in-flight batches per worker (default 4).
	QueueDepth int
	// Layout selects the MethodC3 slave structure; the zero value is
	// LayoutSortedArray. See LayoutEytzinger for the tradeoff.
	Layout Layout
	// SortedBatches opts unsorted query batches into the sorted-batch
	// pipeline: they are sorted by key (pooled radix sort, O(n)) at
	// dispatch so they get the one-sweep routing and the workers'
	// streaming merge kernels, with results still returned in query
	// order. Batches that are already ascending are auto-detected and
	// take the sorted path whether or not this is set — callers whose
	// streams arrive sorted (log-structured ingest, merged iterators,
	// time-ordered IDs) get the fast path for free.
	SortedBatches bool
	// MergeThreshold is the per-partition delta-buffer size at which a
	// background merge compacts buffered inserts into the immutable
	// base structure (see Insert). Zero selects the default (4096).
	MergeThreshold int
	// PartitionBudget caps a partition's key count before a background
	// rebalance re-derives the partition delimiters over the whole key
	// set — the paper's fits-in-cache invariant, maintained as inserts
	// skew partitions. Zero selects twice the initial partition size;
	// negative disables rebalancing.
	PartitionBudget int
	// Durability groups the write-durability knobs (WAL directory and
	// fsync cadence). The zero value keeps the index purely in memory.
	Durability DurabilityOptions
	// WALDir is the flat spelling of Durability.WALDir, honored only
	// when Durability is entirely zero.
	//
	// Deprecated: set Durability.WALDir.
	WALDir string
	// FsyncInterval is the flat spelling of Durability.FsyncInterval,
	// honored only when Durability is entirely zero.
	//
	// Deprecated: set Durability.FsyncInterval.
	FsyncInterval time.Duration
}

func (o Options) withDefaults() core.RealConfig {
	// Zero-value-preserving fold: the nested group wins when any of its
	// fields is set; an entirely-zero group inherits the deprecated flat
	// fields so existing callers keep their exact behavior.
	if o.Durability == (DurabilityOptions{}) {
		o.Durability = DurabilityOptions{WALDir: o.WALDir, FsyncInterval: o.FsyncInterval}
	}
	cfg := core.RealConfig{
		Method:          o.Method,
		Workers:         o.Workers,
		BatchKeys:       o.BatchKeys,
		QueueDepth:      o.QueueDepth,
		Layout:          o.Layout,
		SortedBatches:   o.SortedBatches,
		MergeThreshold:  o.MergeThreshold,
		PartitionBudget: o.PartitionBudget,
		WALDir:          o.Durability.WALDir,
		FsyncInterval:   o.Durability.FsyncInterval,
	}
	if cfg.Workers == 0 {
		cfg.Workers = 8
	}
	if cfg.BatchKeys == 0 {
		cfg.BatchKeys = 16384
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 4
	}
	return cfg
}

// Index is a running distributed index. All lookup methods are safe for
// any number of concurrent callers — calls pipeline through the shared
// worker pool, each gathering on its own channel. Close blocks until
// in-flight calls finish, then releases the worker goroutines.
type Index struct {
	c    *core.Cluster
	keys []Key
	opt  core.RealConfig
}

// Open builds the index over sorted keys (ascending; duplicates allowed)
// and starts the runtime. It returns an error for unsorted or empty
// input or invalid options.
func Open(keys []Key, opt Options) (*Index, error) {
	cfg := opt.withDefaults()
	c, err := core.NewCluster(keys, cfg)
	if err != nil {
		return nil, err
	}
	return &Index{c: c, keys: keys, opt: cfg}, nil
}

// N returns the current number of indexed keys (seed keys plus applied
// inserts).
//
// Deprecated: read Stats().Keys; N survives one release as a thin view.
func (ix *Index) N() int { return ix.c.KeyCount() }

// Method returns the strategy the index runs.
func (ix *Index) Method() Method { return ix.opt.Method }

// Rank returns the number of indexed keys <= k.
func (ix *Index) Rank(k Key) (int, error) { return ix.c.Lookup(k) }

// RankBatch resolves a query batch, returning global ranks in query
// order. Batching is how the paper's design amortizes communication;
// prefer it over Rank for throughput.
func (ix *Index) RankBatch(queries []Key) ([]int, error) {
	return ix.c.LookupBatch(queries)
}

// RankBatchInto is RankBatch writing into a caller-provided slice
// (len(out) >= len(queries)): the zero-allocation steady-state entry
// point for callers that recycle their result buffers.
func (ix *Index) RankBatchInto(queries []Key, out []int) error {
	return ix.c.LookupBatchInto(queries, out)
}

// Insert adds one key to the running index. See InsertBatch.
func (ix *Index) Insert(k Key) error { return ix.c.Insert(k) }

// InsertBatch adds keys (any order, duplicates allowed) to the running
// index while it serves traffic: each key lands in the owning
// partition's small sorted delta buffer (replicated methods apply the
// batch to every replica), rank answers fold the buffered keys in
// immediately, and a background merge periodically compacts buffer and
// base into a fresh immutable structure — readers never block on a
// merge. When inserts skew a partition past Options.PartitionBudget, a
// background rebalance re-derives the partition delimiters so every
// partition keeps fitting its cache. InsertBatch returns once the keys
// are applied: ranks requested after it returns include them. Safe for
// any number of concurrent callers, concurrently with RankBatch.
func (ix *Index) InsertBatch(keys []Key) error { return ix.c.InsertBatch(keys) }

// UpdateStats snapshots the write-path counters: keys inserted,
// background merges completed, rebalances installed.
//
// Deprecated: read Stats().Updates; UpdateStats survives one release
// as a thin view.
func (ix *Index) UpdateStats() core.UpdateStats { return ix.c.UpdateStats() }

// KeyRange is an inclusive key interval [Lo, Hi] for CountRangeBatch.
type KeyRange = core.KeyRange

// CountRange returns the number of indexed keys in [lo, hi] inclusive
// (0 if hi < lo). Range endpoints ride the sorted-batch rank pipeline —
// one boundary search per partition delimiter, not one routing step per
// endpoint — so a count costs about two sorted rank lookups. Exact at
// quiescence; a consistent point-in-time answer under concurrent
// inserts.
func (ix *Index) CountRange(lo, hi Key) (int, error) { return ix.c.CountRange(lo, hi) }

// CountRangeBatch answers many range counts in one dispatch: out[i]
// receives the key count of ranges[i] (len(out) >= len(ranges)).
func (ix *Index) CountRangeBatch(ranges []KeyRange, out []int) error {
	return ix.c.CountRangeBatch(ranges, out)
}

// ScanRange returns the indexed keys in [lo, hi] in ascending order,
// at most limit of them (limit < 0 means unlimited), appended to buf.
// Partitions stream their sub-ranges in partition order, which is key
// order, so the concatenation needs no merge.
func (ix *Index) ScanRange(lo, hi Key, limit int, buf []Key) ([]Key, error) {
	return ix.c.ScanRange(lo, hi, limit, buf)
}

// TopK returns the k largest indexed keys in descending order,
// appended to buf.
func (ix *Index) TopK(k int, buf []Key) ([]Key, error) { return ix.c.TopK(k, buf) }

// MultiGet returns the multiplicity of each query key — how many
// copies the index holds — in query order. A multiplicity is exactly
// CountRange(k, k), answered partition-locally.
func (ix *Index) MultiGet(keys []Key) ([]int, error) { return ix.c.MultiGet(keys) }

// MultiGetInto is MultiGet writing into a caller-provided slice
// (len(out) >= len(keys)).
func (ix *Index) MultiGetInto(keys []Key, out []int) error { return ix.c.MultiGetInto(keys, out) }

// Owner returns the worker (slave) that owns key k's sub-range: the
// routing decision a master makes, answered from the cluster's own
// routing table. For replicated methods every worker owns every key,
// and Owner returns 0.
func (ix *Index) Owner(k Key) int {
	p := ix.c.Partitioning()
	if p == nil {
		return 0
	}
	return p.Route(k)
}

// UpdateStats mirrors core.UpdateStats: the write-path counters.
type UpdateStats = core.UpdateStats

// RuntimeStats mirrors core.RealStats: the runtime's lifetime work
// counters (batches dispatched, keys processed, merges, and so on).
type RuntimeStats = core.RealStats

// StatsSchemaVersion identifies the shape of the Stats and
// ClusterStats trees. Bump it on any structural change so operators
// scraping /stats can detect a mismatch instead of silently misreading
// fields.
const StatsSchemaVersion = netrun.StatsSchemaVersion

// Stats is the unified, versioned observability tree for an in-process
// Index: one snapshot consolidating what N, Method, UpdateStats, and
// the runtime work counters used to report separately. The json tags
// are the wire schema served by the admin /stats endpoint.
type Stats struct {
	// SchemaVersion is StatsSchemaVersion at build time.
	SchemaVersion int `json:"schema_version"`
	// Method is the strategy the index runs ("A", "B", "C-1", ...).
	Method string `json:"method"`
	// Keys is the current indexed key count (seed keys plus applied
	// inserts) — the value N() reports.
	Keys int `json:"keys"`
	// Updates are the write-path counters: keys inserted, background
	// merges completed, rebalances installed.
	Updates UpdateStats `json:"updates"`
	// Runtime are the lifetime work counters of the query pipeline.
	Runtime RuntimeStats `json:"runtime"`
}

// Stats snapshots the full observability tree in one call. Callers on
// the pre-redesign API: the work counters formerly returned here now
// live at Stats().Runtime, the write-path counters at Stats().Updates.
func (ix *Index) Stats() Stats {
	return Stats{
		SchemaVersion: StatsSchemaVersion,
		Method:        ix.opt.Method.String(),
		Keys:          ix.c.KeyCount(),
		Updates:       ix.c.UpdateStats(),
		Runtime:       ix.c.Stats(),
	}
}

// ClusterStats is the TCP-side counterpart of Stats, as returned by
// TCPCluster.Stats: the same versioned tree shape with per-replica
// ReplicaStats rows in place of the single-process runtime counters.
type ClusterStats = netrun.ClusterStats

// Close shuts down the runtime. It is idempotent.
func (ix *Index) Close() { ix.c.Close() }

// SimOptions configures one simulated experiment.
type SimOptions struct {
	// Arch is the simulated machine; zero value means PentiumIII().
	Arch Arch
	// Method under test.
	Method Method
	// IndexKeys is the key count of the Table 1 index (default 327680).
	IndexKeys int
	// Queries is the workload size (default 2^23, the paper's).
	Queries int
	// BatchBytes is Figure 3's x-axis (default 128 KB, Table 3's point).
	BatchBytes int
	// Masters and Slaves shape the cluster (defaults 1 and 10).
	Masters, Slaves int
	// SampleQueries caps the simulated work before extrapolation;
	// 0 picks an automatic steady-state sample. Set equal to Queries
	// for an exact full run.
	SampleQueries int
	// Seed makes the query stream reproducible.
	Seed uint64
	// Skew > 0 draws queries Zipf-distributed over the index instead
	// of uniformly (load-imbalance ablation; the paper assumes 0).
	Skew float64
}

func (o SimOptions) toConfig() core.SimConfig {
	cfg := core.SimConfig{
		P:             o.Arch,
		Method:        o.Method,
		TotalQueries:  o.Queries,
		BatchBytes:    o.BatchBytes,
		Masters:       o.Masters,
		Slaves:        o.Slaves,
		SampleQueries: o.SampleQueries,
		QuerySeed:     o.Seed,
		Skew:          o.Skew,
	}
	if cfg.P.Name == "" {
		cfg.P = arch.PentiumIIICluster()
	}
	n := o.IndexKeys
	if n == 0 {
		n = 327680
	}
	cfg.IndexKeys = workload.EvenKeys(n)
	if cfg.TotalQueries == 0 {
		cfg.TotalQueries = 1 << 23
	}
	if cfg.BatchBytes == 0 {
		cfg.BatchBytes = 128 << 10
	}
	if cfg.Masters == 0 {
		cfg.Masters = 1
	}
	if cfg.Slaves == 0 {
		cfg.Slaves = 10
	}
	if cfg.QuerySeed == 0 {
		cfg.QuerySeed = 42
	}
	return cfg
}

// Report is a simulated experiment's outcome (see core.SimReport for
// field documentation).
type Report = core.SimReport

// Simulate runs one simulated experiment.
func Simulate(o SimOptions) (Report, error) {
	return core.Run(o.toConfig())
}

// Sweep runs the method across Figure 3's batch-size axis (or the given
// sizes) and returns one report per size.
func Sweep(o SimOptions, batchBytes ...int) ([]Report, error) {
	if len(batchBytes) == 0 {
		batchBytes = workload.Figure3BatchBytes()
	}
	out := make([]Report, 0, len(batchBytes))
	for _, b := range batchBytes {
		oo := o
		oo.BatchBytes = b
		r, err := Simulate(oo)
		if err != nil {
			return nil, fmt.Errorf("dcindex: sweep at %d bytes: %w", b, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// TCPCluster is a distributed index over real sockets: each partition is
// served by one or more node processes (cmd/dcnode or ServePartition),
// and this client routes query batches to a healthy replica of each
// partition owner — the paper's deployment model, with TCP in place of
// MPI and a replica-group availability layer on top.
//
// A TCPCluster is safe for any number of concurrent LookupBatch /
// LookupBatchInto callers: requests multiplex over the shared node
// connections by request id, so concurrent masters pipeline instead of
// serializing behind a lock, and the steady state allocates nothing per
// batch. Failures are per replica: a connection error, per-op timeout,
// or protocol violation drops only that replica from its partition's
// group — its in-flight batches are re-dispatched to a surviving
// replica and a background rejoin loop re-dials it with capped
// exponential backoff until it rejoins (TCPCluster.Health reports
// per-replica liveness and traffic). Only when a partition loses its
// last replica does the cluster become terminal — every in-flight and
// subsequent call returns the root-cause error (TCPCluster.Err reports
// it) — because a partitioned index with an unreachable partition
// cannot answer arbitrary queries. Recovery from a terminal failure is
// explicit via TCPCluster.Redial, which reconnects to every configured
// replica and re-verifies the partition layout.
//
// A TCPCluster is also writable: Insert/InsertBatch route keys to the
// owning partitions and fan each write out to every healthy
// protocol-v3 replica (pre-v3 nodes never receive writes), and a
// replica rejoining after a failure first reloads a sibling's snapshot
// so it cannot serve stale ranks. See the netrun package documentation
// for the protocol and the single-writer assumption behind exact
// global ranks.
//
// Beyond ranks, a TCPCluster serves the same query surface as an
// in-process Index — CountRange/CountRangeBatch, ScanRange, TopK, and
// MultiGet/MultiGetInto — over protocol v5. Each op scatters to the
// partitions whose key sub-ranges it touches and composes per-replica
// answers in partition (= key) order; a replica that dies mid-op has
// its pending requests re-dispatched to a sibling, so results are
// identical through a failover. Pre-v5 nodes are excluded from the new
// ops only (they fail with a descriptive availability error), never
// from rank lookups.
//
// The operations plane rides the same handle: Stats returns the
// versioned ClusterStats tree, Telemetry exposes the per-op latency
// histograms, Admin reports the optionally mounted HTTP server
// (TCPOptions.Admin.Addr), and the protocol-v6 live-membership ops —
// AddReplica, DrainReplica, SplitPartition — reshape a serving cluster
// without restarting it (see the README's "Operations" section).
type TCPCluster = netrun.Cluster

// TCPOptions configures DialClusterOptions: batch granularity, the
// dial/handshake timeout, the per-op progress timeout that turns a hung
// node into prompt failover instead of a blocked master, the replica
// count for flat address lists, the rejoin backoff envelope, and
// SortedBatches (sort unsorted streams client-side so they ride the
// sorted pipeline's one-sweep routing and protocol-v2 delta frames;
// ascending streams are auto-detected either way).
//
// The resilience knobs live in nested groups: Hedging arms hedged
// reads (re-dispatch to a sibling past the partition's latency
// quantile, first valid reply wins, spend capped by a token bucket),
// Ejection arms latency-scored outlier ejection with probed
// readmission, Rejoin shapes the re-dial backoff envelope, Admin
// mounts the HTTP admin/metrics server on the client, and Dialer
// injects a custom transport — e.g. an internal/faultnet wrapper — for
// deterministic resilience drills. The pre-redesign flat fields
// (HedgeQuantile, EjectFactor, ...) survive one release as deprecated
// aliases, honored only when their nested group is entirely zero.
type TCPOptions = netrun.DialOptions

// ReplicaStats is one replica's liveness and traffic counters inside
// ClusterStats: partition, address, current liveness,
// dispatched/failure/rejoin counts for the current epoch, and the
// gray-failure view — probation State, latency EWMA, and the
// hedge/ejection/probe/readmit/budget-denied counters.
type ReplicaStats = netrun.ReplicaHealth

// ReplicaHealth is the pre-redesign name of ReplicaStats, as returned
// row-wise by TCPCluster.Health.
//
// Deprecated: use ReplicaStats / TCPCluster.Stats().Replicas; the
// alias survives one release.
type ReplicaHealth = netrun.ReplicaHealth

// DialCluster connects to every replica of every partition of keys and
// verifies that each node serves the partition the local routing table
// expects. Each element of addrs names partition i's replica set: a
// single address, or several packed as "host:a|host:b" (replicas fail
// over behind one routing slot; see TCPOptions.Replicas for flat
// lists). batchKeys <= 0 selects the 16384-key default; other options
// take their defaults (use DialClusterOptions to set them).
func DialCluster(addrs []string, keys []Key, batchKeys int) (*TCPCluster, error) {
	return netrun.Dial(addrs, keys, netrun.DialOptions{BatchKeys: batchKeys})
}

// DialClusterOptions is DialCluster with full control over the dial,
// handshake, and per-op timeout configuration.
func DialClusterOptions(addrs []string, keys []Key, opt TCPOptions) (*TCPCluster, error) {
	return netrun.Dial(addrs, keys, opt)
}

// ServePartition serves partition part of parts over addr, blocking
// until the listener fails. The key set must be identical on every node
// and client (use GenerateKeys with a shared seed, or distribute the key
// file).
func ServePartition(addr string, keys []Key, parts, part int) error {
	p, err := core.NewPartitioning(keys, parts)
	if err != nil {
		return err
	}
	if part < 0 || part >= parts {
		return fmt.Errorf("dcindex: partition %d out of range [0,%d)", part, parts)
	}
	return netrun.ListenAndServe(addr, p.Parts[part].Keys, p.Parts[part].RankBase)
}

// Table3Row mirrors model.Table3Row: one method's predicted time next to
// the paper's own numbers.
type Table3Row = model.Table3Row

// PredictTable3 evaluates the Appendix A model at Table 3's operating
// point for the given architecture.
func PredictTable3(a Arch) []Table3Row { return model.Table3(a) }

// YearPoint mirrors model.YearPoint: one Figure 4 projection point.
type YearPoint = model.YearPoint

// ProjectFigure4 projects the model over the given number of years under
// the paper's scaling assumptions.
func ProjectFigure4(a Arch, years int) []YearPoint {
	return model.Figure4(a, years, arch.PaperScaling())
}
