package dcindex_test

import (
	"fmt"

	"repro/dcindex"
)

// The basic flow: build a distributed in-cache index over a sorted key
// set and resolve a batch of rank queries through the Method C-3
// pipeline.
func ExampleOpen() {
	keys := dcindex.GenerateKeys(100000, 1)
	idx, err := dcindex.Open(keys, dcindex.Options{
		Method:  dcindex.MethodC3,
		Workers: 4,
	})
	if err != nil {
		panic(err)
	}
	defer idx.Close()

	// Rank(k) = number of indexed keys <= k; it identifies the
	// sub-range (and owner node) for k.
	ranks, err := idx.RankBatch([]dcindex.Key{0, keys[41], ^dcindex.Key(0)})
	if err != nil {
		panic(err)
	}
	fmt.Println(ranks[0], ranks[1], ranks[2])
	// Output: 0 42 100000
}

// Reproduce one cell of the paper's Figure 3 on the simulated Pentium
// III cluster: Method C-3, 64 KB batches, 2^23 keys, 1 master + 10
// slaves.
func ExampleSimulate() {
	r, err := dcindex.Simulate(dcindex.SimOptions{
		Method:        dcindex.MethodC3,
		BatchBytes:    64 << 10,
		SampleQueries: 200_000, // steady-state sample; 0 = automatic
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("batch=%dKB nodes=%d\n", r.BatchBytes>>10, r.Nodes)
	fmt.Println("search time in the paper's band:", r.NormalizedSec > 0.20 && r.NormalizedSec < 0.30)
	// Output:
	// batch=64KB nodes=11
	// search time in the paper's band: true
}

// Query the Appendix A analytical model for the Figure 4 projection.
func ExampleProjectFigure4() {
	pts := dcindex.ProjectFigure4(dcindex.PentiumIII(), 5)
	first, last := pts[0], pts[len(pts)-1]
	fmt.Println("C-3 improves every year:", last.C3Ns < first.C3Ns)
	fmt.Println("B/C-3 advantage grows:", last.BNs/last.C3Ns > first.BNs/first.C3Ns)
	// Output:
	// C-3 improves every year: true
	// B/C-3 advantage grows: true
}
