package dcindex_test

import (
	"sync"
	"testing"

	"repro/dcindex"
	"repro/internal/workload"
)

// The Layout knob: Eytzinger-layout C-3 must return bit-identical ranks
// to the default sorted-array layout, and RankBatchInto must fill a
// caller-provided slice.
func TestLayoutEytzingerMatchesDefault(t *testing.T) {
	keys := dcindex.GenerateKeys(30000, 1)
	queries := dcindex.GenerateQueries(40000, 2)

	def, err := dcindex.Open(keys, dcindex.Options{Method: dcindex.MethodC3, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer def.Close()
	eytz, err := dcindex.Open(keys, dcindex.Options{
		Method: dcindex.MethodC3, Workers: 4, Layout: dcindex.LayoutEytzinger,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eytz.Close()

	want, err := def.RankBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]int, len(queries))
	if err := eytz.RankBatchInto(queries, got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("layouts disagree at %d: %d vs %d", i, got[i], want[i])
		}
	}
}

func TestLayoutEytzingerRejectedForNonC3(t *testing.T) {
	keys := dcindex.GenerateKeys(1000, 1)
	if _, err := dcindex.Open(keys, dcindex.Options{
		Method: dcindex.MethodA, Layout: dcindex.LayoutEytzinger,
	}); err == nil {
		t.Fatal("MethodA with LayoutEytzinger accepted")
	}
}

// Concurrent RankBatch callers through the public API, with Owner
// answered from the cluster's own routing table while lookups run.
func TestConcurrentRankBatchAndOwner(t *testing.T) {
	keys := dcindex.GenerateKeys(20000, 3)
	idx, err := dcindex.Open(keys, dcindex.Options{Method: dcindex.MethodC3, Workers: 6, BatchKeys: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			queries := dcindex.GenerateQueries(5000, seed)
			got, err := idx.RankBatch(queries)
			if err != nil {
				errs <- err
				return
			}
			for i, q := range queries {
				if got[i] != workload.ReferenceRank(keys, q) {
					errs <- errWrong
					return
				}
			}
			// Owner is read-only routing metadata; hammer it during
			// lookups to prove it shares the cluster's partitioning.
			for _, q := range queries[:100] {
				if o := idx.Owner(q); o < 0 || o >= 6 {
					errs <- errWrong
					return
				}
			}
		}(uint64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errWrong = errString("wrong result under concurrency")

type errString string

func (e errString) Error() string { return string(e) }
