// Command dcq is a demonstration CLI over the real runtime: it builds a
// distributed in-cache index from generated keys, runs a query workload
// through the chosen method, and reports throughput and per-worker load.
// It doubles as a quick way to compare methods on the actual host.
//
// Usage:
//
//	go run ./cmd/dcq [-method C-3] [-n 327680] [-q 1000000] [-workers 8] [-batch 16384] [-compare]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/dcindex"
	"repro/internal/tab"
)

func main() {
	var (
		methodName = flag.String("method", "C-3", "method: A, B, C-1, C-2, C-3")
		n          = flag.Int("n", 327680, "index key count")
		q          = flag.Int("q", 1_000_000, "query count")
		workers    = flag.Int("workers", 8, "worker goroutines")
		batch      = flag.Int("batch", 16384, "batch size in keys")
		compare    = flag.Bool("compare", false, "run every method and compare throughput")
		seed       = flag.Uint64("seed", 1, "workload seed")
		connect    = flag.String("connect", "", "comma-separated dcnode addresses: query a TCP cluster instead of the in-process runtime")
	)
	flag.Parse()

	keys := dcindex.GenerateKeys(*n, *seed)
	queries := dcindex.GenerateQueries(*q, *seed+1)

	if *connect != "" {
		runTCP(strings.Split(*connect, ","), keys, queries, *batch)
		return
	}

	if *compare {
		t := tab.NewTable("method", "wall time", "Mkeys/s", "checksum")
		for _, m := range dcindex.Methods() {
			el, sum := run(keys, queries, m, *workers, *batch)
			t.Row(m.String(), el.Round(time.Millisecond).String(),
				fmt.Sprintf("%.1f", float64(*q)/el.Seconds()/1e6),
				fmt.Sprintf("%08x", sum))
		}
		fmt.Printf("real runtime, %d keys, %d queries, %d workers, batch %d\n\n", *n, *q, *workers, *batch)
		fmt.Print(t)
		fmt.Println("\nIdentical checksums confirm all methods return identical ranks.")
		return
	}

	m, ok := parseMethod(*methodName)
	if !ok {
		fmt.Fprintf(os.Stderr, "dcq: unknown method %q (want A, B, C-1, C-2, C-3)\n", *methodName)
		os.Exit(2)
	}
	el, sum := run(keys, queries, m, *workers, *batch)
	fmt.Printf("method %s: %d queries over %d keys in %s (%.1f Mkeys/s), checksum %08x\n",
		m, *q, *n, el.Round(time.Millisecond), float64(*q)/el.Seconds()/1e6, sum)
}

func run(keys, queries []dcindex.Key, m dcindex.Method, workers, batch int) (time.Duration, uint32) {
	idx, err := dcindex.Open(keys, dcindex.Options{Method: m, Workers: workers, BatchKeys: batch})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcq:", err)
		os.Exit(1)
	}
	defer idx.Close()
	start := time.Now()
	ranks, err := idx.RankBatch(queries)
	el := time.Since(start)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcq:", err)
		os.Exit(1)
	}
	var sum uint32
	for _, r := range ranks {
		sum = sum*31 + uint32(r)
	}
	return el, sum
}

func runTCP(addrs []string, keys, queries []dcindex.Key, batch int) {
	c, err := dcindex.DialCluster(addrs, keys, batch)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcq:", err)
		os.Exit(1)
	}
	defer c.Close()
	start := time.Now()
	ranks, err := c.LookupBatch(queries)
	el := time.Since(start)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcq:", err)
		os.Exit(1)
	}
	var sum uint32
	for _, r := range ranks {
		sum = sum*31 + uint32(r)
	}
	fmt.Printf("TCP cluster (%d nodes): %d queries in %s (%.1f Mkeys/s), checksum %08x\n",
		c.Nodes(), len(queries), el.Round(time.Millisecond),
		float64(len(queries))/el.Seconds()/1e6, sum)
}

func parseMethod(s string) (dcindex.Method, bool) {
	for _, m := range dcindex.Methods() {
		if strings.EqualFold(m.String(), s) {
			return m, true
		}
	}
	return 0, false
}
