// Command dcq is a demonstration CLI over the real runtime: it builds a
// distributed in-cache index from generated keys, runs a query workload
// through the chosen method, and reports throughput and per-worker load.
// It doubles as a quick way to compare methods on the actual host, and
// with -connect it drives a TCP cluster of dcnode processes instead —
// -masters M multiplexes M concurrent callers over the shared
// connections, the paper's "multiple master nodes" configuration.
//
// Usage:
//
//	go run ./cmd/dcq [-method C-3] [-op rank] [-n 327680] [-q 1000000] [-workers 8] [-batch 16384] [-compare] [-sorted] [-insert-rate 0.05]
//	go run ./cmd/dcq -connect host:7000,host:7001,... [-op rank] [-masters 4] [-optimeout 10s] [-insert-rate 0.05]
//
// -op selects the query operation: rank (the default), count (range
// counts via CountRangeBatch), scan (ordered range scans), topk, or
// multiget (key multiplicities). Every op derives its inputs
// deterministically from the -seed query stream, so -compare holds for
// all of them: identical checksums prove every method — and the TCP
// cluster, which serves the same ops over protocol v5 — computes
// identical results. -insert-rate applies to -op rank only.
//
// -insert-rate R runs a mixed read/write workload: for every read
// batch, R*batch freshly generated keys are inserted into the running
// index first, exercising the online-update path (delta buffers,
// background merges, and — over TCP — the protocol-v3 write fan-out to
// every replica). With -compare, all methods receive the same
// deterministic insert stream, so identical checksums still prove the
// methods agree under writes.
//
// Replicated clusters list every replica of a partition either grouped
// with "|" or flat with -replicas (addresses grouped consecutively):
//
//	dcq -connect 'host:7000|host:7100,host:7001|host:7101'
//	dcq -connect host:7000,host:7100,host:7001,host:7101 -replicas 2
//
// A replica failure mid-run fails over to its partition sibling instead
// of aborting; dcq prints a per-replica health summary when that
// happens.
//
// -hedge arms the gray-failure machinery against replicated clusters:
// reads that outlive the partition's latency quantile (-hedge-quantile,
// default p95) are re-dispatched to a sibling under a token budget, and
// a replica whose latency stays a sustained outlier is ejected, probed,
// and readmitted. -chaos D is the matching client-side drill: replies
// from the first configured replica are delayed by D through a seeded
// faultnet wrapper, no server changes needed (dcnode's -chaos-* flags
// are the server-side equivalent). The health summary then includes the
// per-replica latency EWMA, probation state, and hedge/ejection/budget
// counters:
//
//	dcq -connect 'host:7000|host:7100,host:7001|host:7101' -hedge -chaos 50ms
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/dcindex"
	"repro/internal/faultnet"
	"repro/internal/tab"
)

func main() {
	var (
		methodName = flag.String("method", "C-3", "method: A, B, C-1, C-2, C-3")
		opName     = flag.String("op", "rank", "query op: rank, count, scan, topk, multiget")
		n          = flag.Int("n", 327680, "index key count (ignored with -keysfile)")
		q          = flag.Int("q", 1_000_000, "query count")
		workers    = flag.Int("workers", 8, "worker goroutines")
		batch      = flag.Int("batch", 16384, "batch size in keys")
		compare    = flag.Bool("compare", false, "run every method and compare throughput")
		seed       = flag.Uint64("seed", 1, "workload seed")
		keysfile   = flag.String("keysfile", "", "load the key set from a dcindex snapshot instead of generating it")
		connect    = flag.String("connect", "", "comma-separated dcnode addresses: query a TCP cluster instead of the in-process runtime (group a partition's replicas with '|')")
		masters    = flag.Int("masters", 1, "concurrent master callers over the TCP cluster (with -connect)")
		optimeout  = flag.Duration("optimeout", 10*time.Second, "per-op progress timeout on the TCP cluster (with -connect)")
		replicas   = flag.Int("replicas", 1, "replicas per partition in a flat -connect list (grouped '|' syntax overrides)")
		sorted     = flag.Bool("sorted", false, "sorted-batch mode: pre-sort the query stream (ascending batches auto-detect; over TCP, v2 nodes get delta-coded frames)")
		insertRate = flag.Float64("insert-rate", 0, "mixed read/write mode: keys inserted per read key (0.05 = 5% writes)")
		hedge      = flag.Bool("hedge", false, "gray-failure mode (with -connect): hedged reads, latency-scored outlier ejection, and a hedge token budget")
		hedgeQuant = flag.Float64("hedge-quantile", 0.95, "latency quantile that arms a hedge (with -hedge)")
		chaos      = flag.Duration("chaos", 0, "gray-failure drill (with -connect): delay replies from the first replica by this much via a seeded faultnet wrapper on its connection")
	)
	flag.Parse()

	var keys []dcindex.Key
	if *keysfile != "" {
		loaded, err := dcindex.LoadKeys(*keysfile)
		if err != nil {
			log.Fatalf("dcq: %v", err)
		}
		keys = loaded
	} else {
		keys = dcindex.GenerateKeys(*n, *seed)
	}
	queries := dcindex.GenerateQueries(*q, *seed+1)
	if *sorted {
		// Pre-sorting the whole stream models a caller whose batches
		// arrive ascending (log-structured ingest, merge iterators):
		// the runtime auto-detects the runs and takes the sorted
		// pipeline — one-sweep routing, streaming merge kernels, and
		// (over TCP) protocol-v2 delta frames.
		sort.Slice(queries, func(i, j int) bool { return queries[i] < queries[j] })
	}

	switch *opName {
	case "rank", "count", "scan", "topk", "multiget":
	default:
		fmt.Fprintf(os.Stderr, "dcq: unknown op %q (want rank, count, scan, topk, multiget)\n", *opName)
		os.Exit(2)
	}
	if *opName != "rank" && *insertRate > 0 {
		fmt.Fprintln(os.Stderr, "dcq: -insert-rate applies to -op rank only; ignoring it")
		*insertRate = 0
	}

	if *connect != "" {
		runTCP(strings.Split(*connect, ","), keys, queries, *opName, *batch, *masters, *replicas, *optimeout, *insertRate, *seed,
			*hedge, *hedgeQuant, *chaos)
		return
	}

	if *compare {
		t := tab.NewTable("method", "wall time", "Mops/s", "checksum")
		for _, m := range dcindex.Methods() {
			el, sum, units := run(keys, queries, m, *opName, *workers, *batch, *insertRate, *seed)
			t.Row(m.String(), el.Round(time.Millisecond).String(),
				fmt.Sprintf("%.1f", float64(units)/el.Seconds()/1e6),
				fmt.Sprintf("%08x", sum))
		}
		fmt.Printf("real runtime, op %s, %d keys, %d queries, %d workers, batch %d", *opName, len(keys), *q, *workers, *batch)
		if *insertRate > 0 {
			fmt.Printf(", insert rate %.3f", *insertRate)
		}
		fmt.Print("\n\n")
		fmt.Print(t)
		fmt.Printf("\nIdentical checksums confirm all methods return identical %s results.\n", *opName)
		return
	}

	m, ok := parseMethod(*methodName)
	if !ok {
		fmt.Fprintf(os.Stderr, "dcq: unknown method %q (want A, B, C-1, C-2, C-3)\n", *methodName)
		os.Exit(2)
	}
	el, sum, units := run(keys, queries, m, *opName, *workers, *batch, *insertRate, *seed)
	fmt.Printf("method %s, op %s: %d result units over %d keys in %s (%.1f Mops/s), checksum %08x\n",
		m, *opName, units, len(keys), el.Round(time.Millisecond), float64(units)/el.Seconds()/1e6, sum)
}

// queryEngine is the op surface shared by the in-process Index and the
// TCP cluster client: the same dcq workload drives either.
type queryEngine interface {
	CountRangeBatch(ranges []dcindex.KeyRange, out []int) error
	ScanRange(lo, hi dcindex.Key, limit int, buf []dcindex.Key) ([]dcindex.Key, error)
	TopK(k int, buf []dcindex.Key) ([]dcindex.Key, error)
	MultiGetInto(keys []dcindex.Key, out []int) error
}

// runOps replays the query stream as op inputs — count and scan read
// range endpoints from consecutive query pairs, topk derives k from the
// stream, multiget uses the queries as lookup keys — and returns the
// result-unit count and a rolling checksum. Deterministic per stream,
// so checksums compare across methods and transports.
func runOps(eng queryEngine, op string, queries []dcindex.Key, batch int) (int, uint32, error) {
	var sum uint32
	units := 0
	switch op {
	case "count":
		ranges := make([]dcindex.KeyRange, 0, batch)
		counts := make([]int, batch)
		flush := func() error {
			if len(ranges) == 0 {
				return nil
			}
			if err := eng.CountRangeBatch(ranges, counts[:len(ranges)]); err != nil {
				return err
			}
			for _, n := range counts[:len(ranges)] {
				sum = sum*31 + uint32(n)
			}
			units += len(ranges)
			ranges = ranges[:0]
			return nil
		}
		for i := 0; i+1 < len(queries); i += 2 {
			lo, hi := queries[i], queries[i+1]
			if hi < lo {
				lo, hi = hi, lo
			}
			ranges = append(ranges, dcindex.KeyRange{Lo: lo, Hi: hi})
			if len(ranges) == batch {
				if err := flush(); err != nil {
					return units, sum, err
				}
			}
		}
		return units, sum, flush()
	case "scan":
		// One bounded scan per batch of stream positions: endpoints from
		// a query pair, at most batch keys back.
		var buf []dcindex.Key
		for off := 0; off+1 < len(queries); off += batch {
			lo, hi := queries[off], queries[off+1]
			if hi < lo {
				lo, hi = hi, lo
			}
			got, err := eng.ScanRange(lo, hi, batch, buf[:0])
			if err != nil {
				return units, sum, err
			}
			buf = got
			for _, k := range got {
				sum = sum*31 + uint32(k)
			}
			units += len(got)
		}
		return units, sum, nil
	case "topk":
		var buf []dcindex.Key
		for off := 0; off < len(queries); off += batch {
			k := 1 + int(queries[off]%1024)
			got, err := eng.TopK(k, buf[:0])
			if err != nil {
				return units, sum, err
			}
			buf = got
			for _, key := range got {
				sum = sum*31 + uint32(key)
			}
			units += len(got)
		}
		return units, sum, nil
	case "multiget":
		out := make([]int, batch)
		for off := 0; off < len(queries); off += batch {
			end := min(off+batch, len(queries))
			if err := eng.MultiGetInto(queries[off:end], out[:end-off]); err != nil {
				return units, sum, err
			}
			for _, n := range out[:end-off] {
				sum = sum*31 + uint32(n)
			}
			units += end - off
		}
		return units, sum, nil
	}
	return 0, 0, fmt.Errorf("unknown op %q", op)
}

// run drives one method over the query stream, returning elapsed time,
// checksum, and the result-unit count (for rank: queries + inserts).
// With insertRate > 0 the rank stream interleaves writes: before each
// read batch, rate*batch fresh keys (deterministic per seed) are
// inserted into the running index.
func run(keys, queries []dcindex.Key, m dcindex.Method, op string, workers, batch int, insertRate float64, seed uint64) (time.Duration, uint32, int) {
	idx, err := dcindex.Open(keys, dcindex.Options{Method: m, Workers: workers, BatchKeys: batch})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcq:", err)
		os.Exit(1)
	}
	defer idx.Close()
	if op != "rank" {
		start := time.Now()
		units, sum, err := runOps(idx, op, queries, batch)
		el := time.Since(start)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcq:", err)
			os.Exit(1)
		}
		return el, sum, units
	}
	if insertRate <= 0 {
		start := time.Now()
		ranks, err := idx.RankBatch(queries)
		el := time.Since(start)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcq:", err)
			os.Exit(1)
		}
		return el, checksum(ranks), len(queries)
	}
	out := make([]int, len(queries))
	// One deterministic insert pool per seed: every method in a
	// -compare run replays the same write stream, so their checksums
	// stay comparable.
	pool := dcindex.GenerateQueries(int(insertRate*float64(len(queries)))+batch, seed+2)
	inserted := 0
	start := time.Now()
	for off := 0; off < len(queries); off += batch {
		end := min(off+batch, len(queries))
		if n := int(float64(end-off) * insertRate); n > 0 {
			if err := idx.InsertBatch(pool[inserted : inserted+n]); err != nil {
				fmt.Fprintln(os.Stderr, "dcq:", err)
				os.Exit(1)
			}
			inserted += n
		}
		if err := idx.RankBatchInto(queries[off:end], out[off:end]); err != nil {
			fmt.Fprintln(os.Stderr, "dcq:", err)
			os.Exit(1)
		}
	}
	el := time.Since(start)
	st := idx.UpdateStats()
	fmt.Fprintf(os.Stderr, "dcq: %s update stats: %d keys inserted, %d merges, %d rebalances, index now %d keys\n",
		m, st.InsertedKeys, st.Merges, st.Rebalances, idx.N())
	return el, checksum(out), len(queries) + inserted
}

// runTCP drives a dcnode cluster: masters concurrent callers split the
// query stream into contiguous shares and multiplex their batches over
// the one shared connection set. With insertRate > 0 each master also
// interleaves protocol-v3 writes into its share (inserts fan out to
// every replica of the owning partition). Replicated partitions fail
// over and load-spread automatically; any failover that occurred is
// summarized from Cluster.Health after the run.
func runTCP(addrs []string, keys, queries []dcindex.Key, op string, batch, masters, replicas int, opTimeout time.Duration, insertRate float64, seed uint64,
	hedge bool, hedgeQuantile float64, chaos time.Duration) {
	if masters < 1 {
		masters = 1
	}
	opt := dcindex.TCPOptions{
		BatchKeys: batch,
		OpTimeout: opTimeout,
		Replicas:  replicas,
	}
	if hedge {
		// Gray-failure mode: hedge reads that outlive the partition's
		// latency quantile and eject sustained outlier replicas. The
		// budget knobs keep their library defaults.
		opt.HedgeQuantile = hedgeQuantile
		opt.EjectFactor = 4
	}
	if chaos > 0 {
		// Deterministic gray-failure drill: every connection to the
		// first configured replica is wrapped in a seeded faultnet
		// profile that delays replies (client-side reads), so the
		// cluster stays untouched while this client sees one replica
		// answer chaos late. Pair with -hedge to watch the rescue.
		slow := strings.Split(addrs[0], "|")[0]
		prof := faultnet.NewProfile(seed)
		prof.Set(faultnet.Faults{ReadLatency: chaos})
		opt.Dialer = func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			conn, err := d.DialContext(ctx, "tcp", addr)
			if err != nil || addr != slow {
				return conn, err
			}
			return prof.Wrap(conn), nil
		}
	}
	c, err := dcindex.DialClusterOptions(addrs, keys, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcq:", err)
		os.Exit(1)
	}
	defer c.Close()

	if op != "rank" {
		units := make([]int, masters)
		sums := make([]uint32, masters)
		errs := make([]error, masters)
		var wg sync.WaitGroup
		start := time.Now()
		for m := 0; m < masters; m++ {
			lo := m * len(queries) / masters
			hi := (m + 1) * len(queries) / masters
			wg.Add(1)
			go func(m, lo, hi int) {
				defer wg.Done()
				units[m], sums[m], errs[m] = runOps(c, op, queries[lo:hi], batch)
			}(m, lo, hi)
		}
		wg.Wait()
		el := time.Since(start)
		for _, err := range errs {
			if err != nil {
				fmt.Fprintln(os.Stderr, "dcq:", err)
				os.Exit(1)
			}
		}
		total, sum := 0, uint32(0)
		for m := range units {
			total += units[m]
			// XOR combines the per-master checksums order-independently,
			// so the result is stable for a given -masters split.
			sum ^= sums[m]
		}
		fmt.Printf("TCP cluster (%d partitions, %d masters), op %s: %d result units in %s (%.1f Mops/s), checksum %08x\n",
			c.Nodes(), masters, op, total, el.Round(time.Millisecond), float64(total)/el.Seconds()/1e6, sum)
		printHealth(c)
		return
	}

	out := make([]int, len(queries))
	errs := make([]error, masters)
	insCounts := make([]int, masters)
	var pool []dcindex.Key
	if insertRate > 0 {
		pool = dcindex.GenerateQueries(int(insertRate*float64(len(queries)))+masters*batch, seed+2)
	}
	var wg sync.WaitGroup
	start := time.Now()
	for m := 0; m < masters; m++ {
		lo := m * len(queries) / masters
		hi := (m + 1) * len(queries) / masters
		plo := m * len(pool) / masters
		phi := (m + 1) * len(pool) / masters
		wg.Add(1)
		go func(m, lo, hi int, myPool []dcindex.Key) {
			defer wg.Done()
			if insertRate <= 0 {
				errs[m] = c.LookupBatchInto(queries[lo:hi], out[lo:hi])
				return
			}
			ins := 0
			for off := lo; off < hi; off += batch {
				end := min(off+batch, hi)
				if n := int(float64(end-off) * insertRate); n > 0 && ins+n <= len(myPool) {
					if err := c.InsertBatch(myPool[ins : ins+n]); err != nil {
						errs[m] = err
						return
					}
					ins += n
				}
				if err := c.LookupBatchInto(queries[off:end], out[off:end]); err != nil {
					errs[m] = err
					return
				}
			}
			insCounts[m] = ins
		}(m, lo, hi, pool[plo:phi])
	}
	wg.Wait()
	el := time.Since(start)
	for _, err := range errs {
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcq:", err)
			os.Exit(1)
		}
	}
	inserted := 0
	for _, n := range insCounts {
		inserted += n
	}
	fmt.Printf("TCP cluster (%d partitions, %d masters): %d queries (+%d inserts) in %s (%.1f Mkeys/s), checksum %08x\n",
		c.Nodes(), masters, len(queries), inserted, el.Round(time.Millisecond),
		float64(len(queries)+inserted)/el.Seconds()/1e6, checksum(out))
	printHealth(c)
}

// printHealth summarizes per-replica liveness after a TCP run, but only
// when something noteworthy happened: a failover, or any gray-failure
// handling (hedges, probation transitions, denied hedges).
func printHealth(c *dcindex.TCPCluster) {
	health := c.Health()
	degraded, gray := false, false
	for _, h := range health {
		if !h.Healthy || h.Failures > 0 {
			degraded = true
		}
		if h.Hedges > 0 || h.Ejections > 0 || h.Probes > 0 || h.Readmits > 0 || h.BudgetDenied > 0 || (h.State != "" && h.State != "healthy") {
			gray = true
		}
	}
	if !degraded && !gray {
		return
	}
	switch {
	case degraded && gray:
		fmt.Println("replica health (failover and gray-failure handling during the run):")
	case degraded:
		fmt.Println("replica health (failover occurred during the run):")
	default:
		fmt.Println("replica health (gray-failure handling during the run):")
	}
	for _, h := range health {
		state := h.State
		if state == "" {
			state = "healthy"
		}
		if !h.Healthy {
			state = "DOWN"
		}
		fmt.Printf("  partition %d  %-21s  %-7s  proto v%d, ewma %s, dispatched %d, failures %d, rejoins %d\n",
			h.Partition, h.Addr, state, h.Proto, h.LatencyEWMA.Round(time.Microsecond), h.Dispatched, h.Failures, h.Rejoins)
		if gray {
			fmt.Printf("    hedges %d, ejections %d, probes %d, readmits %d, budget-denied %d\n",
				h.Hedges, h.Ejections, h.Probes, h.Readmits, h.BudgetDenied)
		}
	}
}

func checksum(ranks []int) uint32 {
	var sum uint32
	for _, r := range ranks {
		sum = sum*31 + uint32(r)
	}
	return sum
}

func parseMethod(s string) (dcindex.Method, bool) {
	for _, m := range dcindex.Methods() {
		if strings.EqualFold(m.String(), s) {
			return m, true
		}
	}
	return 0, false
}
