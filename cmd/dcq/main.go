// Command dcq is a demonstration CLI over the real runtime: it builds a
// distributed in-cache index from generated keys, runs a query workload
// through the chosen method, and reports throughput and per-worker load.
// It doubles as a quick way to compare methods on the actual host, and
// with -connect it drives a TCP cluster of dcnode processes instead —
// -masters M multiplexes M concurrent callers over the shared
// connections, the paper's "multiple master nodes" configuration.
//
// Usage:
//
//	go run ./cmd/dcq [-method C-3] [-op rank] [-n 327680] [-q 1000000] [-workers 8] [-batch 16384] [-compare] [-sorted] [-insert-rate 0.05]
//	go run ./cmd/dcq -connect host:7000,host:7001,... [-op rank] [-masters 4] [-optimeout 10s] [-insert-rate 0.05]
//
// -op selects the query operation: rank (the default), count (range
// counts via CountRangeBatch), scan (ordered range scans), topk, or
// multiget (key multiplicities). Every op derives its inputs
// deterministically from the -seed query stream, so -compare holds for
// all of them: identical checksums prove every method — and the TCP
// cluster, which serves the same ops over protocol v5 — computes
// identical results. -insert-rate applies to -op rank only.
//
// -insert-rate R runs a mixed read/write workload: for every read
// batch, R*batch freshly generated keys are inserted into the running
// index first, exercising the online-update path (delta buffers,
// background merges, and — over TCP — the protocol-v3 write fan-out to
// every replica). With -compare, all methods receive the same
// deterministic insert stream, so identical checksums still prove the
// methods agree under writes.
//
// Replicated clusters list every replica of a partition either grouped
// with "|" or flat with -replicas (addresses grouped consecutively):
//
//	dcq -connect 'host:7000|host:7100,host:7001|host:7101'
//	dcq -connect host:7000,host:7100,host:7001,host:7101 -replicas 2
//
// A replica failure mid-run fails over to its partition sibling instead
// of aborting; dcq prints a per-replica health summary when that
// happens.
//
// -hedge arms the gray-failure machinery against replicated clusters:
// reads that outlive the partition's latency quantile (-hedge-quantile,
// default p95) are re-dispatched to a sibling under a token budget, and
// a replica whose latency stays a sustained outlier is ejected, probed,
// and readmitted. -chaos D is the matching client-side drill: replies
// from the first configured replica are delayed by D through a seeded
// faultnet wrapper, no server changes needed (dcnode's -chaos-* flags
// are the server-side equivalent). The health summary then includes the
// per-replica latency EWMA, probation state, and hedge/ejection/budget
// counters:
//
//	dcq -connect 'host:7000|host:7100,host:7001|host:7101' -hedge -chaos 50ms
//
// dcq is also the load harness of the operations plane. -target-qps R
// switches from the default closed loop (batches dispatched
// back-to-back, latency = service time) to an open loop: batch starts
// are scheduled at R keys/s split across masters, and each batch's
// latency is measured from its scheduled start — so time spent queued
// behind a saturated cluster counts against the tail instead of
// silently stretching the run (the coordinated-omission fix). Paced
// runs end with a per-batch latency report (p50/p99/p99.9/mean from a
// mergeable log-bucketed histogram). -admin ADDR mounts the cluster
// client's HTTP admin endpoint for the run: GET /metrics serves the
// client-side per-op histograms (dc_client_op_ns{op=...}) and cluster
// gauges, GET /stats the versioned ClusterStats tree, and the POST
// /membership/ verbs (add-replica, drain-replica, split-partition)
// reshape the serving cluster live — see the README's "Operations"
// section. After any TCP run, dcq prints the failover/gray-failure
// summary whenever any counter is nonzero, chaos drill or not.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/dcindex"
	"repro/internal/faultnet"
	"repro/internal/tab"
	"repro/internal/telemetry"
)

func main() {
	var (
		methodName = flag.String("method", "C-3", "method: A, B, C-1, C-2, C-3")
		opName     = flag.String("op", "rank", "query op: rank, count, scan, topk, multiget")
		n          = flag.Int("n", 327680, "index key count (ignored with -keysfile)")
		q          = flag.Int("q", 1_000_000, "query count")
		workers    = flag.Int("workers", 8, "worker goroutines")
		batch      = flag.Int("batch", 16384, "batch size in keys")
		compare    = flag.Bool("compare", false, "run every method and compare throughput")
		seed       = flag.Uint64("seed", 1, "workload seed")
		keysfile   = flag.String("keysfile", "", "load the key set from a dcindex snapshot instead of generating it")
		connect    = flag.String("connect", "", "comma-separated dcnode addresses: query a TCP cluster instead of the in-process runtime (group a partition's replicas with '|')")
		masters    = flag.Int("masters", 1, "concurrent master callers over the TCP cluster (with -connect)")
		optimeout  = flag.Duration("optimeout", 10*time.Second, "per-op progress timeout on the TCP cluster (with -connect)")
		replicas   = flag.Int("replicas", 1, "replicas per partition in a flat -connect list (grouped '|' syntax overrides)")
		sorted     = flag.Bool("sorted", false, "sorted-batch mode: pre-sort the query stream (ascending batches auto-detect; over TCP, v2 nodes get delta-coded frames)")
		insertRate = flag.Float64("insert-rate", 0, "mixed read/write mode: keys inserted per read key (0.05 = 5% writes)")
		hedge      = flag.Bool("hedge", false, "gray-failure mode (with -connect): hedged reads, latency-scored outlier ejection, and a hedge token budget")
		hedgeQuant = flag.Float64("hedge-quantile", 0.95, "latency quantile that arms a hedge (with -hedge)")
		chaos      = flag.Duration("chaos", 0, "gray-failure drill (with -connect): delay replies from the first replica by this much via a seeded faultnet wrapper on its connection")
		targetQPS  = flag.Float64("target-qps", 0, "open-loop load: pace dispatch at this many keys/s (split across masters), measuring batch latency from each batch's scheduled start so queueing delay counts; 0 = closed loop (batches back-to-back, latency = service time)")
		adminAt    = flag.String("admin", "", "with -connect: mount the cluster client's HTTP admin endpoint (metrics, /stats, membership verbs) on this address for the run's duration")
	)
	flag.Parse()

	var keys []dcindex.Key
	if *keysfile != "" {
		loaded, err := dcindex.LoadKeys(*keysfile)
		if err != nil {
			log.Fatalf("dcq: %v", err)
		}
		keys = loaded
	} else {
		keys = dcindex.GenerateKeys(*n, *seed)
	}
	queries := dcindex.GenerateQueries(*q, *seed+1)
	if *sorted {
		// Pre-sorting the whole stream models a caller whose batches
		// arrive ascending (log-structured ingest, merge iterators):
		// the runtime auto-detects the runs and takes the sorted
		// pipeline — one-sweep routing, streaming merge kernels, and
		// (over TCP) protocol-v2 delta frames.
		sort.Slice(queries, func(i, j int) bool { return queries[i] < queries[j] })
	}

	switch *opName {
	case "rank", "count", "scan", "topk", "multiget":
	default:
		fmt.Fprintf(os.Stderr, "dcq: unknown op %q (want rank, count, scan, topk, multiget)\n", *opName)
		os.Exit(2)
	}
	if *opName != "rank" && *insertRate > 0 {
		fmt.Fprintln(os.Stderr, "dcq: -insert-rate applies to -op rank only; ignoring it")
		*insertRate = 0
	}

	if *targetQPS < 0 {
		fmt.Fprintln(os.Stderr, "dcq: -target-qps must be >= 0")
		os.Exit(2)
	}

	if *connect != "" {
		runTCP(strings.Split(*connect, ","), keys, queries, *opName, *batch, *masters, *replicas, *optimeout, *insertRate, *seed,
			*hedge, *hedgeQuant, *chaos, *targetQPS, *adminAt)
		return
	}

	if *compare {
		t := tab.NewTable("method", "wall time", "Mops/s", "checksum")
		for _, m := range dcindex.Methods() {
			el, sum, units := run(keys, queries, m, *opName, *workers, *batch, *insertRate, *seed, *targetQPS)
			t.Row(m.String(), el.Round(time.Millisecond).String(),
				fmt.Sprintf("%.1f", float64(units)/el.Seconds()/1e6),
				fmt.Sprintf("%08x", sum))
		}
		fmt.Printf("real runtime, op %s, %d keys, %d queries, %d workers, batch %d", *opName, len(keys), *q, *workers, *batch)
		if *insertRate > 0 {
			fmt.Printf(", insert rate %.3f", *insertRate)
		}
		fmt.Print("\n\n")
		fmt.Print(t)
		fmt.Printf("\nIdentical checksums confirm all methods return identical %s results.\n", *opName)
		return
	}

	m, ok := parseMethod(*methodName)
	if !ok {
		fmt.Fprintf(os.Stderr, "dcq: unknown method %q (want A, B, C-1, C-2, C-3)\n", *methodName)
		os.Exit(2)
	}
	el, sum, units := run(keys, queries, m, *opName, *workers, *batch, *insertRate, *seed, *targetQPS)
	fmt.Printf("method %s, op %s: %d result units over %d keys in %s (%.1f Mops/s), checksum %08x\n",
		m, *opName, units, len(keys), el.Round(time.Millisecond), float64(units)/el.Seconds()/1e6, sum)
}

// pacer schedules batch starts for the -target-qps open loop and
// records every batch's latency into a shared histogram (one pacer per
// master, one histogram per run). Open loop (interval > 0): batch i's
// latency is measured from its scheduled start, not its actual one, so
// time spent queued behind a saturated cluster counts against the
// distribution — the classic coordinated-omission fix. Closed loop
// (interval 0): batches start back-to-back and the histogram holds
// pure service time.
type pacer struct {
	hist     *telemetry.Histogram
	interval time.Duration
	next     time.Time
}

// newPacer builds one master's pacer: qps is the whole run's target
// rate, batch and masters divide it into this master's per-batch
// dispatch interval.
func newPacer(hist *telemetry.Histogram, qps float64, batch, masters int) *pacer {
	p := &pacer{hist: hist}
	if qps > 0 {
		p.interval = time.Duration(float64(batch) * float64(masters) / qps * float64(time.Second))
	}
	return p
}

// begin blocks until the next scheduled batch start and returns the
// timestamp latency is measured from.
func (p *pacer) begin() time.Time {
	if p.interval <= 0 {
		return time.Now()
	}
	if p.next.IsZero() {
		p.next = time.Now()
	}
	t := p.next
	p.next = t.Add(p.interval)
	if wait := time.Until(t); wait > 0 {
		time.Sleep(wait)
	}
	return t
}

func (p *pacer) end(t0 time.Time) { p.hist.Observe(time.Since(t0)) }

// printLatency reports the run's per-batch latency distribution.
func printLatency(hist *telemetry.Histogram, qps float64) {
	s := hist.Snapshot()
	if s.Count == 0 {
		return
	}
	loop := "closed loop"
	if qps > 0 {
		loop = fmt.Sprintf("open loop at %.0f keys/s", qps)
	}
	fmt.Printf("batch latency (%s, %d batches): p50 %s  p99 %s  p99.9 %s  mean %s\n",
		loop, s.Count,
		time.Duration(s.Quantile(0.50)).Round(time.Microsecond),
		time.Duration(s.Quantile(0.99)).Round(time.Microsecond),
		time.Duration(s.Quantile(0.999)).Round(time.Microsecond),
		time.Duration(s.Mean()).Round(time.Microsecond))
}

// queryEngine is the op surface shared by the in-process Index and the
// TCP cluster client: the same dcq workload drives either.
type queryEngine interface {
	CountRangeBatch(ranges []dcindex.KeyRange, out []int) error
	ScanRange(lo, hi dcindex.Key, limit int, buf []dcindex.Key) ([]dcindex.Key, error)
	TopK(k int, buf []dcindex.Key) ([]dcindex.Key, error)
	MultiGetInto(keys []dcindex.Key, out []int) error
}

// runOps replays the query stream as op inputs — count and scan read
// range endpoints from consecutive query pairs, topk derives k from the
// stream, multiget uses the queries as lookup keys — and returns the
// result-unit count and a rolling checksum. Deterministic per stream,
// so checksums compare across methods and transports. pc paces the
// dispatches and records each call's latency.
func runOps(eng queryEngine, op string, queries []dcindex.Key, batch int, pc *pacer) (int, uint32, error) {
	var sum uint32
	units := 0
	switch op {
	case "count":
		ranges := make([]dcindex.KeyRange, 0, batch)
		counts := make([]int, batch)
		flush := func() error {
			if len(ranges) == 0 {
				return nil
			}
			t0 := pc.begin()
			if err := eng.CountRangeBatch(ranges, counts[:len(ranges)]); err != nil {
				return err
			}
			pc.end(t0)
			for _, n := range counts[:len(ranges)] {
				sum = sum*31 + uint32(n)
			}
			units += len(ranges)
			ranges = ranges[:0]
			return nil
		}
		for i := 0; i+1 < len(queries); i += 2 {
			lo, hi := queries[i], queries[i+1]
			if hi < lo {
				lo, hi = hi, lo
			}
			ranges = append(ranges, dcindex.KeyRange{Lo: lo, Hi: hi})
			if len(ranges) == batch {
				if err := flush(); err != nil {
					return units, sum, err
				}
			}
		}
		return units, sum, flush()
	case "scan":
		// One bounded scan per batch of stream positions: endpoints from
		// a query pair, at most batch keys back.
		var buf []dcindex.Key
		for off := 0; off+1 < len(queries); off += batch {
			lo, hi := queries[off], queries[off+1]
			if hi < lo {
				lo, hi = hi, lo
			}
			t0 := pc.begin()
			got, err := eng.ScanRange(lo, hi, batch, buf[:0])
			if err != nil {
				return units, sum, err
			}
			pc.end(t0)
			buf = got
			for _, k := range got {
				sum = sum*31 + uint32(k)
			}
			units += len(got)
		}
		return units, sum, nil
	case "topk":
		var buf []dcindex.Key
		for off := 0; off < len(queries); off += batch {
			k := 1 + int(queries[off]%1024)
			t0 := pc.begin()
			got, err := eng.TopK(k, buf[:0])
			if err != nil {
				return units, sum, err
			}
			pc.end(t0)
			buf = got
			for _, key := range got {
				sum = sum*31 + uint32(key)
			}
			units += len(got)
		}
		return units, sum, nil
	case "multiget":
		out := make([]int, batch)
		for off := 0; off < len(queries); off += batch {
			end := min(off+batch, len(queries))
			t0 := pc.begin()
			if err := eng.MultiGetInto(queries[off:end], out[:end-off]); err != nil {
				return units, sum, err
			}
			pc.end(t0)
			for _, n := range out[:end-off] {
				sum = sum*31 + uint32(n)
			}
			units += end - off
		}
		return units, sum, nil
	}
	return 0, 0, fmt.Errorf("unknown op %q", op)
}

// run drives one method over the query stream, returning elapsed time,
// checksum, and the result-unit count (for rank: queries + inserts).
// With insertRate > 0 the rank stream interleaves writes: before each
// read batch, rate*batch fresh keys (deterministic per seed) are
// inserted into the running index.
func run(keys, queries []dcindex.Key, m dcindex.Method, op string, workers, batch int, insertRate float64, seed uint64, qps float64) (time.Duration, uint32, int) {
	idx, err := dcindex.Open(keys, dcindex.Options{Method: m, Workers: workers, BatchKeys: batch})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcq:", err)
		os.Exit(1)
	}
	defer idx.Close()
	hist := telemetry.NewRegistry().Histogram("dcq_batch_ns")
	pc := newPacer(hist, qps, batch, 1)
	if op != "rank" {
		start := time.Now()
		units, sum, err := runOps(idx, op, queries, batch, pc)
		el := time.Since(start)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcq:", err)
			os.Exit(1)
		}
		printLatency(hist, qps)
		return el, sum, units
	}
	if insertRate <= 0 && qps <= 0 {
		// Closed-loop whole-stream dispatch: RankBatch pipelines every
		// batch through the worker pool at once, the peak-throughput
		// configuration (per-batch latency is not meaningful here — pass
		// -target-qps for the paced loop with the latency report).
		start := time.Now()
		ranks, err := idx.RankBatch(queries)
		el := time.Since(start)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcq:", err)
			os.Exit(1)
		}
		return el, checksum(ranks), len(queries)
	}
	out := make([]int, len(queries))
	// One deterministic insert pool per seed: every method in a
	// -compare run replays the same write stream, so their checksums
	// stay comparable.
	pool := dcindex.GenerateQueries(int(insertRate*float64(len(queries)))+batch, seed+2)
	inserted := 0
	start := time.Now()
	for off := 0; off < len(queries); off += batch {
		end := min(off+batch, len(queries))
		if n := int(float64(end-off) * insertRate); n > 0 {
			if err := idx.InsertBatch(pool[inserted : inserted+n]); err != nil {
				fmt.Fprintln(os.Stderr, "dcq:", err)
				os.Exit(1)
			}
			inserted += n
		}
		t0 := pc.begin()
		if err := idx.RankBatchInto(queries[off:end], out[off:end]); err != nil {
			fmt.Fprintln(os.Stderr, "dcq:", err)
			os.Exit(1)
		}
		pc.end(t0)
	}
	el := time.Since(start)
	if insertRate > 0 {
		st := idx.Stats()
		fmt.Fprintf(os.Stderr, "dcq: %s update stats: %d keys inserted, %d merges, %d rebalances, index now %d keys\n",
			m, st.Updates.InsertedKeys, st.Updates.Merges, st.Updates.Rebalances, st.Keys)
	}
	printLatency(hist, qps)
	return el, checksum(out), len(queries) + inserted
}

// runTCP drives a dcnode cluster: masters concurrent callers split the
// query stream into contiguous shares and multiplex their batches over
// the one shared connection set. With insertRate > 0 each master also
// interleaves protocol-v3 writes into its share (inserts fan out to
// every replica of the owning partition). Replicated partitions fail
// over and load-spread automatically; any failover that occurred is
// summarized from Cluster.Health after the run.
func runTCP(addrs []string, keys, queries []dcindex.Key, op string, batch, masters, replicas int, opTimeout time.Duration, insertRate float64, seed uint64,
	hedge bool, hedgeQuantile float64, chaos time.Duration, qps float64, adminAt string) {
	if masters < 1 {
		masters = 1
	}
	opt := dcindex.TCPOptions{
		BatchKeys: batch,
		OpTimeout: opTimeout,
		Replicas:  replicas,
	}
	opt.Admin.Addr = adminAt
	if hedge {
		// Gray-failure mode: hedge reads that outlive the partition's
		// latency quantile and eject sustained outlier replicas. The
		// budget knobs keep their library defaults.
		opt.Hedging.Quantile = hedgeQuantile
		opt.Ejection.Factor = 4
	}
	if chaos > 0 {
		// Deterministic gray-failure drill: every connection to the
		// first configured replica is wrapped in a seeded faultnet
		// profile that delays replies (client-side reads), so the
		// cluster stays untouched while this client sees one replica
		// answer chaos late. Pair with -hedge to watch the rescue.
		slow := strings.Split(addrs[0], "|")[0]
		prof := faultnet.NewProfile(seed)
		prof.Set(faultnet.Faults{ReadLatency: chaos})
		opt.Dialer = func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			conn, err := d.DialContext(ctx, "tcp", addr)
			if err != nil || addr != slow {
				return conn, err
			}
			return prof.Wrap(conn), nil
		}
	}
	c, err := dcindex.DialClusterOptions(addrs, keys, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcq:", err)
		os.Exit(1)
	}
	defer c.Close()
	if at := c.Admin(); at != "" {
		fmt.Fprintf(os.Stderr, "dcq: admin endpoint on http://%s (/metrics /stats /health /membership/...)\n", at)
	}
	hist := telemetry.NewRegistry().Histogram("dcq_batch_ns")

	if op != "rank" {
		units := make([]int, masters)
		sums := make([]uint32, masters)
		errs := make([]error, masters)
		var wg sync.WaitGroup
		start := time.Now()
		for m := 0; m < masters; m++ {
			lo := m * len(queries) / masters
			hi := (m + 1) * len(queries) / masters
			wg.Add(1)
			go func(m, lo, hi int) {
				defer wg.Done()
				units[m], sums[m], errs[m] = runOps(c, op, queries[lo:hi], batch, newPacer(hist, qps, batch, masters))
			}(m, lo, hi)
		}
		wg.Wait()
		el := time.Since(start)
		for _, err := range errs {
			if err != nil {
				fmt.Fprintln(os.Stderr, "dcq:", err)
				os.Exit(1)
			}
		}
		total, sum := 0, uint32(0)
		for m := range units {
			total += units[m]
			// XOR combines the per-master checksums order-independently,
			// so the result is stable for a given -masters split.
			sum ^= sums[m]
		}
		fmt.Printf("TCP cluster (%d partitions, %d masters), op %s: %d result units in %s (%.1f Mops/s), checksum %08x\n",
			c.Nodes(), masters, op, total, el.Round(time.Millisecond), float64(total)/el.Seconds()/1e6, sum)
		printLatency(hist, qps)
		printHealth(c)
		return
	}

	out := make([]int, len(queries))
	errs := make([]error, masters)
	insCounts := make([]int, masters)
	var pool []dcindex.Key
	if insertRate > 0 {
		pool = dcindex.GenerateQueries(int(insertRate*float64(len(queries)))+masters*batch, seed+2)
	}
	var wg sync.WaitGroup
	start := time.Now()
	for m := 0; m < masters; m++ {
		lo := m * len(queries) / masters
		hi := (m + 1) * len(queries) / masters
		plo := m * len(pool) / masters
		phi := (m + 1) * len(pool) / masters
		wg.Add(1)
		go func(m, lo, hi int, myPool []dcindex.Key) {
			defer wg.Done()
			if insertRate <= 0 && qps <= 0 {
				// Closed-loop whole-share dispatch: one call pipelines
				// every batch over the shared connections at once (peak
				// throughput; pass -target-qps for the paced loop with
				// the per-batch latency report).
				errs[m] = c.LookupBatchInto(queries[lo:hi], out[lo:hi])
				return
			}
			pc := newPacer(hist, qps, batch, masters)
			ins := 0
			for off := lo; off < hi; off += batch {
				end := min(off+batch, hi)
				if n := int(float64(end-off) * insertRate); n > 0 && ins+n <= len(myPool) {
					if err := c.InsertBatch(myPool[ins : ins+n]); err != nil {
						errs[m] = err
						return
					}
					ins += n
				}
				t0 := pc.begin()
				if err := c.LookupBatchInto(queries[off:end], out[off:end]); err != nil {
					errs[m] = err
					return
				}
				pc.end(t0)
			}
			insCounts[m] = ins
		}(m, lo, hi, pool[plo:phi])
	}
	wg.Wait()
	el := time.Since(start)
	for _, err := range errs {
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcq:", err)
			os.Exit(1)
		}
	}
	inserted := 0
	for _, n := range insCounts {
		inserted += n
	}
	fmt.Printf("TCP cluster (%d partitions, %d masters): %d queries (+%d inserts) in %s (%.1f Mkeys/s), checksum %08x\n",
		c.Nodes(), masters, len(queries), inserted, el.Round(time.Millisecond),
		float64(len(queries)+inserted)/el.Seconds()/1e6, checksum(out))
	printLatency(hist, qps)
	printHealth(c)
}

// printHealth summarizes per-replica liveness after a TCP run from the
// unified ClusterStats tree, but only when something noteworthy
// happened: a failover, a rejoin or delta catch-up, or any
// gray-failure handling (hedges, probation transitions, denied
// hedges) — whichever run surfaced it, chaos drill or not.
func printHealth(c *dcindex.TCPCluster) {
	st := c.Stats()
	health := st.Replicas
	degraded, gray := false, false
	for _, h := range health {
		if !h.Healthy || h.Failures > 0 {
			degraded = true
		}
		if h.Hedges > 0 || h.Ejections > 0 || h.Probes > 0 || h.Readmits > 0 || h.BudgetDenied > 0 || (h.State != "" && h.State != "healthy") {
			gray = true
		}
	}
	if st.DeltaCatchups > 0 {
		degraded = true
	}
	if !degraded && !gray {
		return
	}
	switch {
	case degraded && gray:
		fmt.Println("replica health (failover and gray-failure handling during the run):")
	case degraded:
		fmt.Println("replica health (failover occurred during the run):")
	default:
		fmt.Println("replica health (gray-failure handling during the run):")
	}
	if st.DeltaCatchups > 0 {
		fmt.Printf("  %d delta catch-ups (rejoined replicas resynced from the positioned insert tail)\n", st.DeltaCatchups)
	}
	for _, h := range health {
		state := h.State
		if state == "" {
			state = "healthy"
		}
		if !h.Healthy {
			state = "DOWN"
		}
		fmt.Printf("  partition %d  %-21s  %-7s  proto v%d, ewma %s, dispatched %d, failures %d, rejoins %d\n",
			h.Partition, h.Addr, state, h.Proto, h.LatencyEWMA.Round(time.Microsecond), h.Dispatched, h.Failures, h.Rejoins)
		if gray {
			fmt.Printf("    hedges %d, ejections %d, probes %d, readmits %d, budget-denied %d\n",
				h.Hedges, h.Ejections, h.Probes, h.Readmits, h.BudgetDenied)
		}
	}
}

func checksum(ranks []int) uint32 {
	var sum uint32
	for _, r := range ranks {
		sum = sum*31 + uint32(r)
	}
	return sum
}

func parseMethod(s string) (dcindex.Method, bool) {
	for _, m := range dcindex.Methods() {
		if strings.EqualFold(m.String(), s) {
			return m, true
		}
	}
	return 0, false
}
