// Command figure4 regenerates Figure 4 of the paper: the analytical
// model's projection of per-key query time for Methods A, B and C-3 over
// future years, under Section 4.2's technology scaling assumptions (CPU
// x2 / 18 months, network x2 / 3 years, memory bandwidth +20%/year,
// memory latency constant).
//
// Usage:
//
//	go run ./cmd/figure4 [-years N] [-csv out.csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/arch"
	"repro/internal/model"
	"repro/internal/tab"
)

func main() {
	years := flag.Int("years", 5, "projection horizon in years")
	csvPath := flag.String("csv", "", "also write CSV to this file")
	flag.Parse()

	base := arch.PentiumIIICluster()
	pts := model.Figure4(base, *years, arch.PaperScaling())

	t := tab.NewTable("year", "A (ns/key)", "B (ns/key)", "C-3 (ns/key)", "B/C-3", "masters")
	labels := make([]string, len(pts))
	sa := tab.Series{Name: "A"}
	sb := tab.Series{Name: "B"}
	sc := tab.Series{Name: "C-3"}
	for i, pt := range pts {
		labels[i] = fmt.Sprintf("%.0f", pt.Year)
		t.Row(labels[i],
			fmt.Sprintf("%.1f", pt.ANs),
			fmt.Sprintf("%.1f", pt.BNs),
			fmt.Sprintf("%.1f", pt.C3Ns),
			fmt.Sprintf("%.2fx", pt.BNs/pt.C3Ns),
			pt.MastersUsed)
		sa.Values = append(sa.Values, pt.ANs)
		sb.Values = append(sb.Values, pt.BNs)
		sc.Values = append(sc.Values, pt.C3Ns)
	}

	fmt.Println("Figure 4 — future trends (normalized per-key time, 128 KB batches)")
	fmt.Printf("scaling: CPU x2/18mo, network x2/3y, memory BW +20%%/y, memory latency constant\n\n")
	fmt.Print(t)
	fmt.Println()
	fmt.Print(tab.Chart(labels, []tab.Series{sa, sb, sc}, 14))
	r0 := pts[0].BNs / pts[0].C3Ns
	rN := pts[len(pts)-1].BNs / pts[len(pts)-1].C3Ns
	fmt.Printf("\nB : C-3 advantage grows %.2fx -> %.2fx over %d years (paper: ~2x -> ~10x).\n",
		r0, rN, *years)

	if *csvPath != "" {
		csv := tab.CSV("year", labels, []tab.Series{sa, sb, sc})
		if err := os.WriteFile(*csvPath, []byte(csv), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "figure4: write csv:", err)
			os.Exit(1)
		}
		fmt.Println("CSV written to", *csvPath)
	}
}
