// Command figure3 regenerates Figure 3 of the paper: normalized search
// time for 2^23 random keys over 11 nodes, for Methods A, B, C-1, C-2
// and C-3, across batch sizes from 8 KB to 4 MB.
//
// By default each configuration simulates a steady-state sample and
// extrapolates (a full run takes minutes; pass -exact for it). Output is
// an aligned table, an ASCII chart, and CSV on demand.
//
// Usage:
//
//	go run ./cmd/figure3 [-exact] [-sample N] [-slaves N] [-csv out.csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/tab"
	"repro/internal/workload"
)

func main() {
	var (
		exact   = flag.Bool("exact", false, "simulate the full 2^23-key workload (slow, no extrapolation)")
		sample  = flag.Int("sample", 0, "simulated queries per config (0 = automatic steady-state sample)")
		slaves  = flag.Int("slaves", 10, "Method C slave count (masters fixed at 1)")
		keys    = flag.Int("keys", 327680, "index key count (Table 1: 327680)")
		queries = flag.Int("queries", 1<<23, "workload size (paper: 2^23)")
		csvPath = flag.String("csv", "", "also write CSV to this file")
		setup   = flag.Bool("print-setup", false, "print the Table 1 index geometry and exit")
	)
	flag.Parse()

	p := arch.PentiumIIICluster()
	indexKeys := workload.EvenKeys(*keys)

	if *setup {
		printSetup(indexKeys, *slaves, p)
		return
	}

	sampleQ := *sample
	if *exact {
		sampleQ = *queries
	}

	batches := workload.Figure3BatchBytes()
	methods := core.Methods()

	type job struct{ mi, bi int }
	type res struct {
		mi, bi int
		r      core.SimReport
		err    error
	}
	jobs := make(chan job)
	results := make(chan res)
	var wg sync.WaitGroup
	for w := 0; w < runtime.NumCPU(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				cfg := core.SimConfig{
					P:             p,
					Method:        methods[j.mi],
					IndexKeys:     indexKeys,
					TotalQueries:  *queries,
					QuerySeed:     42,
					BatchBytes:    batches[j.bi],
					Masters:       1,
					Slaves:        *slaves,
					SampleQueries: sampleQ,
				}
				r, err := core.Run(cfg)
				results <- res{j.mi, j.bi, r, err}
			}
		}()
	}
	go func() {
		for mi := range methods {
			for bi := range batches {
				jobs <- job{mi, bi}
			}
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	grid := make([][]core.SimReport, len(methods))
	for i := range grid {
		grid[i] = make([]core.SimReport, len(batches))
	}
	for r := range results {
		if r.err != nil {
			fmt.Fprintln(os.Stderr, "figure3:", r.err)
			os.Exit(1)
		}
		grid[r.mi][r.bi] = r.r
	}

	// Table.
	header := []string{"batch"}
	for _, m := range methods {
		header = append(header, "method "+m.String())
	}
	header = append(header, "C-3 idle")
	tbl := tab.NewTable(header...)
	labels := make([]string, len(batches))
	series := make([]tab.Series, len(methods))
	for mi, m := range methods {
		series[mi] = tab.Series{Name: m.String(), Values: make([]float64, len(batches))}
	}
	for bi, b := range batches {
		labels[bi] = fmtBytes(b)
		row := []any{labels[bi]}
		for mi := range methods {
			row = append(row, fmt.Sprintf("%.4f", grid[mi][bi].NormalizedSec))
			series[mi].Values[bi] = grid[mi][bi].NormalizedSec
		}
		row = append(row, fmt.Sprintf("%.0f%%", grid[len(methods)-1][bi].SlaveIdleFrac*100))
		tbl.Row(row...)
	}

	fmt.Printf("Figure 3 — search time (s) for %d keys (%s), %d+1 nodes, normalized (A, B / %d)\n",
		*queries, fmtBytes(*queries*workload.KeyBytes), *slaves, *slaves+1)
	fmt.Printf("arch: %s\n\n", p)
	fmt.Print(tbl)
	fmt.Println()
	fmt.Print(tab.Chart(labels, series, 16))

	if *csvPath != "" {
		csv := tab.CSV("batch_bytes", intLabels(batches), series)
		if err := os.WriteFile(*csvPath, []byte(csv), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "figure3: write csv:", err)
			os.Exit(1)
		}
		fmt.Println("\nCSV written to", *csvPath)
	}
}

func printSetup(keys []workload.Key, slaves int, p arch.Params) {
	// Reproduce Table 1 from the actual structures.
	fmt.Println("Table 1 — index structure setup (derived from the built structures)")
	t := tab.NewTable("parameter", "value")
	t.Row("Number of keys on the sorted array", len(keys))
	t.Row("Search key size", fmt.Sprintf("%d bytes", workload.KeyBytes))
	t.Row("Node size (A, B, C-1)", fmt.Sprintf("%d bytes", 32))
	t.Row("L2 cache / line", fmt.Sprintf("%d KB / %d B", p.L2Size>>10, p.L2Line))
	t.Row("Slaves / partition keys", fmt.Sprintf("%d / %d", slaves, len(keys)/slaves))
	fmt.Print(t)
}

func fmtBytes(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

func intLabels(xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprint(x)
	}
	return out
}
