// Command dcnode runs one slave node of a TCP-distributed in-cache
// index: it owns one partition of the key set and serves rank lookups
// over the netrun wire protocol. Start one per machine (or port), then
// point a client at all of them:
//
//	dcnode -n 327680 -seed 1 -parts 4 -part 0 -listen :7000 &
//	dcnode -n 327680 -seed 1 -parts 4 -part 1 -listen :7001 &
//	dcnode -n 327680 -seed 1 -parts 4 -part 2 -listen :7002 &
//	dcnode -n 327680 -seed 1 -parts 4 -part 3 -listen :7003 &
//	dcq -connect localhost:7000,localhost:7001,localhost:7002,localhost:7003 -n 327680 -seed 1
//
// Every process regenerates the same key set from (n, seed), so the
// routing table and partitions agree by construction; the hello
// handshake re-verifies this at connect time. Real deployments index a
// concrete key set instead: write it once with dcindex.SaveKeys,
// distribute the file, and start every node and client with
// -keysfile index.dcx (which overrides -n/-seed).
//
// Replication is deployment-level: a replica is simply another dcnode
// serving the same -part on a different port or machine. Start R
// processes per partition and hand the client every replica, grouped
// per partition:
//
//	dcnode -n 327680 -seed 1 -parts 2 -part 0 -listen :7000 &
//	dcnode -n 327680 -seed 1 -parts 2 -part 0 -listen :7100 &   # replica
//	dcnode -n 327680 -seed 1 -parts 2 -part 1 -listen :7001 &
//	dcnode -n 327680 -seed 1 -parts 2 -part 1 -listen :7101 &   # replica
//	dcq -connect 'localhost:7000|localhost:7100,localhost:7001|localhost:7101' -n 327680 -seed 1
//
// The client round-robins each partition's batches across its healthy
// replicas, fails over in-flight batches when a replica dies, and
// re-admits it (after re-verifying the partition handshake) when the
// process comes back.
//
// Nodes are updatable (protocol v3): a writing client fans
// Insert/InsertBatch out to every replica of the owning partition, the
// node buffers new keys in a delta layer merged in the background, and
// a replica that rejoins after dying is first reloaded from a sibling's
// snapshot so it cannot serve stale ranks. Start a node with -readonly
// to cap it at protocol v2: it then serves lookups only and never
// receives writes (a writing client also stops routing that
// partition's lookups to it, since it would be stale).
//
// With -wal-dir the node is durable (protocol v4): every insert is
// appended to a write-ahead log and fsynced before it is acknowledged,
// frozen delta layers become immutable segment snapshots in the
// background (which retires the covered log files), and a restart
// recovers the newest intact segment plus the log tail — every acked
// insert survives kill -9. A rejoin after a crash then catches up from
// a sibling via the positioned delta (only the missed writes move)
// instead of a full snapshot. -fsync-interval trades ack latency for
// sync frequency: 0 syncs as soon as the current group commit claims
// the log (batching concurrent acks into one fsync), a positive value
// additionally spaces syncs at least that far apart, and a negative
// value disables fsync entirely (acks stop implying crash durability).
//
// Updatable nodes also serve the protocol-v5 query ops — range counts,
// ordered range scans, top-k, and key multiplicities — against their
// live partition (dcq -op count|scan|topk|multiget drives them).
// -max-version caps the negotiated protocol version: -max-version 4
// emulates a pre-v5 node byte-for-byte, which a v5 client keeps using
// for rank lookups and writes but excludes from the v5 query ops — the
// mixed-version rollout the negotiation table in
// internal/netrun/protocol.go pins.
//
// The operations plane (protocol v6) adds two flags. -admin mounts the
// HTTP admin endpoint on the given address: GET /metrics serves the
// node's per-op service-time histograms (dc_node_op_ns{op=...}) in
// Prometheus text format, /stats and /indexes report the node's
// identity and live key count as JSON, /health is a liveness probe,
// and the membership verbs answer 501 — reshaping is the client's
// authority, POST to the dcq master's admin endpoint instead. -join
// starts the node unassigned: it loads the full key file but serves an
// empty partition until a v6 client's AddReplica names the slice of
// the universe it should own — how a fresh machine joins a running
// cluster without restarting the epoch (-parts/-part are ignored).
//
// The -chaos-* flags turn a node into a deterministic gray failure for
// resilience drills: the node still computes correct answers, but its
// accepted connections are wrapped in a seeded faultnet profile that
// delays or stalls reply writes. Start one replica with -chaos-delay
// 50ms and drive the cluster with dcq -hedge to watch hedged reads and
// latency-scored ejection route around it:
//
//	dcnode -parts 2 -part 0 -listen :7000 -chaos-delay 50ms &
//	dcnode -parts 2 -part 0 -listen :7100 &
//	dcnode -parts 2 -part 1 -listen :7001 &
//	dcnode -parts 2 -part 1 -listen :7101 &
//	dcq -connect 'localhost:7000|localhost:7100,localhost:7001|localhost:7101' -hedge
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/dcindex"
	"repro/internal/admin"
	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/index"
	"repro/internal/netrun"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func main() {
	var (
		n        = flag.Int("n", 327680, "total index key count (ignored with -keysfile)")
		seed     = flag.Uint64("seed", 1, "index key seed, must match the client (ignored with -keysfile)")
		keysfile = flag.String("keysfile", "", "load the key set from a dcindex snapshot instead of generating it")
		parts    = flag.Int("parts", 4, "total partition count")
		part     = flag.Int("part", 0, "this node's partition id (0-based)")
		listen   = flag.String("listen", ":7000", "listen address")
		readonly = flag.Bool("readonly", false, "serve lookups only (protocol v2): never accept inserts or snapshot loads")
		walDir   = flag.String("wal-dir", "", "durable mode: per-partition WAL + segment directory (created if missing); acked inserts survive crashes")
		fsyncInt = flag.Duration("fsync-interval", 0, "with -wal-dir: minimum spacing between WAL fsyncs (0 = every group commit, negative = never fsync)")
		maxVer   = flag.Uint("max-version", 0, "cap the negotiated protocol version (0 = newest); e.g. 4 emulates a pre-v5 node for mixed-version rollouts and interop tests")
		adminAt  = flag.String("admin", "", "mount the HTTP admin/metrics endpoint on this address (e.g. 127.0.0.1:9100; empty disables)")
		join     = flag.Bool("join", false, "start unassigned: load the key file but serve an empty partition until a v6 client's AddReplica assigns one (-parts/-part ignored)")

		chaosDelay  = flag.Duration("chaos-delay", 0, "chaos drill: delay every reply write by this much (seeded faultnet wrapper on every accepted connection)")
		chaosStall  = flag.Int("chaos-stall-after", 0, "chaos drill: stall each accepted connection at its Nth write — the hello ack is write 1, so 2 stalls the first reply (0 disarms)")
		chaosJitter = flag.Float64("chaos-jitter", 0, "chaos drill: scale injected delays by a seeded random factor in [1-j, 1+j]")
		chaosSeed   = flag.Uint64("chaos-seed", 1, "chaos drill: faultnet profile seed (same seed, same misbehavior)")
	)
	flag.Parse()

	if *maxVer > uint(netrun.ProtoVersion) {
		fmt.Fprintf(os.Stderr, "dcnode: -max-version %d exceeds the newest protocol this build speaks (v%d)\n", *maxVer, netrun.ProtoVersion)
		os.Exit(2)
	}

	if !*join && (*part < 0 || *part >= *parts) {
		fmt.Fprintf(os.Stderr, "dcnode: -part %d out of range [0,%d)\n", *part, *parts)
		os.Exit(2)
	}
	if *join && (*readonly || *walDir != "") {
		fmt.Fprintln(os.Stderr, "dcnode: -join is incompatible with -readonly and -wal-dir (a join node must accept the assignment ops)")
		os.Exit(2)
	}
	var keys []workload.Key
	if *keysfile != "" {
		loaded, err := dcindex.LoadKeys(*keysfile)
		if err != nil {
			log.Fatalf("dcnode: %v", err)
		}
		keys = loaded
		log.Printf("dcnode: loaded %d keys from %s", len(keys), *keysfile)
	} else {
		keys = workload.SortedKeys(*n, *seed)
	}
	var node *netrun.Node
	switch {
	case *join:
		node = netrun.NewJoinNode(keys)
		log.Printf("dcnode: joinable over %d keys: serving unassigned until a v6 client's AddReplica names a partition", len(keys))
	default:
		p, err := core.NewPartitioning(keys, *parts)
		if err != nil {
			log.Fatalf("dcnode: %v", err)
		}
		mine := p.Parts[*part]
		mode := fmt.Sprintf("updatable (v%d)", netrun.ProtoVersion)
		switch {
		case *readonly:
			mode = "read-only (v2)"
		case *walDir != "":
			mode = fmt.Sprintf("durable (v%d, WAL)", netrun.ProtoVersion)
		}
		if *maxVer > 0 {
			mode += fmt.Sprintf(", capped at v%d", *maxVer)
		}
		log.Printf("dcnode: partition %d/%d: %d keys, rank base %d, %s",
			*part, *parts, len(mine.Keys), mine.RankBase, mode)
		if *walDir != "" && !*readonly {
			node, err = netrun.NewDurablePartitionNode(mine.Keys, mine.RankBase, *walDir, index.StoreOptions{
				FsyncInterval: *fsyncInt,
				Logf:          log.Printf,
			})
			if err != nil {
				log.Fatalf("dcnode: %v", err)
			}
			gen, _ := node.Position()
			log.Printf("dcnode: recovered durable state from %s: generation %d (%d logged inserts over the baseline)",
				*walDir, gen, gen)
		} else {
			node = netrun.NewPartitionNode(mine.Keys, mine.RankBase)
		}
	}
	node.ReadOnly = *readonly
	node.MaxVersion = uint32(*maxVer)
	if *adminAt != "" {
		node.Telemetry = telemetry.NewRegistry()
		srv, err := admin.Serve(*adminAt, nodeAdminConfig(node, *part, *join))
		if err != nil {
			log.Fatalf("dcnode: %v", err)
		}
		defer srv.Close()
		log.Printf("dcnode: admin endpoint on http://%s (/metrics /stats /health /indexes)", srv.Addr())
	}
	if *chaosDelay > 0 || *chaosStall > 0 {
		// Gray-failure drill: this node keeps serving correctly but
		// misbehaves at the transport, deterministically per seed. Point
		// a dcq -hedge client at the cluster to watch hedged reads and
		// ejection route around it.
		prof := faultnet.NewProfile(*chaosSeed)
		prof.Set(faultnet.Faults{
			WriteLatency:     *chaosDelay,
			Jitter:           *chaosJitter,
			StallAfterWrites: *chaosStall,
		})
		node.WrapConn = prof.Wrap
		log.Printf("dcnode: chaos drill armed: reply delay %v (jitter %.2f), stall after %d writes, seed %d",
			*chaosDelay, *chaosJitter, *chaosStall, *chaosSeed)
	}
	if err := netrun.ListenAndServeNode(*listen, node); err != nil {
		log.Fatalf("dcnode: %v", err)
	}
}

// nodeAdminConfig wires a single node's observable surfaces into the
// admin handler: the telemetry registry behind /metrics (with computed
// gauges refreshed per scrape), the NodeInfo snapshot behind /stats,
// /health, and /indexes. Membership stays nil — reshaping a cluster is
// the client's authority, so the node's verbs answer 501 with a
// pointer at the master.
func nodeAdminConfig(node *netrun.Node, part int, join bool) admin.Config {
	mode := func(info netrun.NodeInfo) string {
		switch {
		case !info.Assigned:
			return "joinable"
		case node.ReadOnly:
			return "read-only"
		case info.Durable:
			return "durable"
		}
		return "updatable"
	}
	return admin.Config{
		Registry: node.Telemetry,
		BeforeScrape: func(reg *telemetry.Registry) {
			info := node.Info()
			reg.Gauge("dc_node_keys").Set(int64(info.Keys))
			reg.Gauge("dc_node_rank_base").Set(int64(info.RankBase))
			assigned := int64(0)
			if info.Assigned {
				assigned = 1
			}
			reg.Gauge("dc_node_assigned").Set(assigned)
			reg.Gauge("dc_node_wal_generation").Set(int64(info.Generation))
		},
		Stats:  func() any { return node.Info() },
		Health: func() (bool, any) { return true, node.Info() },
		Indexes: func() []admin.IndexInfo {
			info := node.Info()
			pi := part
			if join {
				pi = -1 // unassigned: no partition id until AddReplica names one
			}
			return []admin.IndexInfo{{
				Name:      "partition",
				Partition: pi,
				Keys:      int64(info.Keys),
				RankBase:  int64(info.RankBase),
				Mode:      mode(info),
			}}
		},
	}
}
