// Command dclint is the repo's invariant checker: a multichecker binary for
// the custom analyzers under internal/analyzers, speaking cmd/go's -vettool
// protocol.
//
// Usage:
//
//	go build -o bin/dclint ./cmd/dclint
//	go vet -vettool=$PWD/bin/dclint ./...
//
// or directly (dclint re-executes itself under go vet):
//
//	./bin/dclint ./...
//
// Suppressions use `//dc:ignore <analyzer> <reason>` on or above the
// offending statement; set DCLINT_SUPPRESS_REPORT=<file> to record every
// suppression hit, which scripts/lint.sh totals in CI output.
package main

import (
	"repro/internal/analyzers/framepair"
	"repro/internal/analyzers/framework"
	"repro/internal/analyzers/knobdoc"
	"repro/internal/analyzers/lockguard"
	"repro/internal/analyzers/noalloc"
	"repro/internal/analyzers/snappin"
)

func main() {
	framework.Main(
		lockguard.Analyzer,
		noalloc.Analyzer,
		framepair.Analyzer,
		knobdoc.Analyzer,
		snappin.Analyzer,
	)
}
