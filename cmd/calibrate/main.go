// Command calibrate measures this host the way the paper measured its
// cluster for Table 2: sequential memory bandwidth, random-access
// bandwidth for dependent 4-byte reads, and approximate load-to-use
// latencies at several working-set sizes (exposing the cache hierarchy).
//
// The point of the exercise is the paper's motivating observation
// (Section 2.1): random access runs an order of magnitude slower than
// streaming — 647 vs 48 MB/s on their Pentium III — and that gap is what
// the distributed in-cache index exploits. Two decades later the gap is
// still there; this command shows it on whatever machine runs it.
//
// Usage:
//
//	go run ./cmd/calibrate [-mb N]
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/arch"
	"repro/internal/tab"
	"repro/internal/workload"
)

func main() {
	mb := flag.Int("mb", 256, "working-set size for the bandwidth measurements (MB)")
	flag.Parse()

	fmt.Println("Host measurements (Table 2 analogue)")
	fmt.Println()

	n := *mb << 20 / 4
	seqBps, seqSum := measureSequential(n)
	randBps, nsPerAccess := measureRandom(n)

	t := tab.NewTable("measurement", "this host", "paper (Pentium III)")
	t.Row("sequential bandwidth", fmt.Sprintf("%.0f MB/s", seqBps/(1<<20)), "647 MB/s")
	t.Row("random 4-byte bandwidth", fmt.Sprintf("%.1f MB/s", randBps/(1<<20)), "48 MB/s")
	t.Row("random access latency", fmt.Sprintf("%.1f ns", nsPerAccess), "~110 ns (B2 miss penalty)")
	t.Row("sequential/random gap", fmt.Sprintf("%.1fx", seqBps/randBps), "13.5x")
	fmt.Print(t)
	fmt.Println()

	fmt.Println("Load-to-use latency vs working set (cache hierarchy):")
	lt := tab.NewTable("working set", "ns/access")
	for _, kb := range []int{4, 16, 64, 256, 1024, 4096, 16384, 65536} {
		lt.Row(fmt.Sprintf("%d KB", kb), fmt.Sprintf("%.2f", chase(kb<<10, 1<<22)))
	}
	fmt.Print(lt)

	p := arch.PentiumIIICluster()
	fmt.Printf("\nsimulator parameter set in use: %s\n", p)
	_ = seqSum
}

// measureSequential streams the array and returns bytes/second.
func measureSequential(n int) (bps float64, sum uint64) {
	a := make([]uint32, n)
	for i := range a {
		a[i] = uint32(i)
	}
	// Two passes: the first faults the pages in.
	for pass := 0; pass < 2; pass++ {
		start := time.Now()
		var s uint64
		for _, v := range a {
			s += uint64(v)
		}
		el := time.Since(start)
		sum = s
		bps = float64(n*4) / el.Seconds()
	}
	return bps, sum
}

// measureRandom chases a random cyclic permutation (fully dependent
// loads, one per element) and returns bytes/second for the 4-byte
// payloads plus nanoseconds per access.
func measureRandom(n int) (bps, nsPerAccess float64) {
	perm := randomCycle(n)
	const hops = 1 << 24
	idx := uint32(0)
	// Warm the page tables with one partial pass.
	for i := 0; i < 1<<20; i++ {
		idx = perm[idx]
	}
	start := time.Now()
	for i := 0; i < hops; i++ {
		idx = perm[idx]
	}
	el := time.Since(start)
	if idx == 0xFFFFFFFF {
		fmt.Println() // defeat dead-code elimination
	}
	nsPerAccess = float64(el.Nanoseconds()) / hops
	bps = 4 / (nsPerAccess / 1e9)
	return bps, nsPerAccess
}

// chase measures ns/access for a working set of the given bytes.
func chase(bytes, hops int) float64 {
	n := bytes / 4
	if n < 2 {
		n = 2
	}
	perm := randomCycle(n)
	idx := uint32(0)
	for i := 0; i < n; i++ { // warm
		idx = perm[idx]
	}
	start := time.Now()
	for i := 0; i < hops; i++ {
		idx = perm[idx]
	}
	el := time.Since(start)
	if idx == 0xFFFFFFFF {
		fmt.Println()
	}
	return float64(el.Nanoseconds()) / float64(hops)
}

// randomCycle returns a permutation array forming one cycle visiting
// every element (Sattolo's algorithm), so the chase cannot short-cycle.
func randomCycle(n int) []uint32 {
	p := make([]uint32, n)
	for i := range p {
		p[i] = uint32(i)
	}
	r := workload.NewRNG(12345)
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
