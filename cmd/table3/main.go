// Command table3 regenerates Table 3 of the paper: the analytical
// model's predicted normalized running time for Methods A, B and C-3 at
// a 128 KB batch, side by side with this reproduction's simulated
// "experiment" and the paper's own predicted/experimental numbers.
//
// Usage:
//
//	go run ./cmd/table3 [-sample N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/tab"
	"repro/internal/workload"
)

func main() {
	sample := flag.Int("sample", 400_000, "simulated queries per method (0 = automatic)")
	flag.Parse()

	p := arch.PentiumIIICluster()
	rows := model.Table3(p)

	simFor := map[string]core.Method{"A": core.MethodA, "B": core.MethodB, "C-3": core.MethodC3}
	indexKeys := workload.EvenKeys(327680)

	t := tab.NewTable("method", "model (this repo)", "sim experiment (this repo)",
		"paper predicted", "paper experiment")
	for _, row := range rows {
		cfg := core.SimConfig{
			P:             p,
			Method:        simFor[row.Method],
			IndexKeys:     indexKeys,
			TotalQueries:  1 << 23,
			QuerySeed:     42,
			BatchBytes:    128 << 10,
			Masters:       1,
			Slaves:        10,
			SampleQueries: *sample,
		}
		r, err := core.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "table3:", err)
			os.Exit(1)
		}
		t.Row(row.Method,
			fmt.Sprintf("%.3f s", row.PredictedSec),
			fmt.Sprintf("%.3f s", r.NormalizedSec),
			fmt.Sprintf("%.2f s", row.PaperPredictedSec),
			fmt.Sprintf("%.2f s", row.PaperExperimentSec))
	}
	fmt.Println("Table 3 — normalized running time for 2^23 keys, 128 KB batches, 1 master + 10 slaves")
	fmt.Printf("arch: %s\n\n", p)
	fmt.Print(t)
	fmt.Println("\nThe paper claims model/experiment agreement within 25%; Appendix A ignores")
	fmt.Println("TLB misses, so the model is a lower bound for Methods A and B (theirs and ours).")
}
