package repro_test

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// goTool locates the go binary, skipping the test where the toolchain
// is unavailable at test runtime (the compiled test binary can outlive
// the build environment).
func goTool(t *testing.T) string {
	t.Helper()
	path, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not in PATH")
	}
	return path
}

// TestExamplesSmoke executes every examples/ program end to end — they
// were previously compile-checked by `go build ./...` but never run, so
// a runtime regression (panic, wrong checksum, deadlock) could ship
// unnoticed. Each example's built-in workload finishes in about a
// second, which is the smoke-test budget.
func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	gobin := goTool(t)
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		t.Fatal("no example programs found")
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command(gobin, "run", "./examples/"+name)
			var out, errb bytes.Buffer
			cmd.Stdout = &out
			cmd.Stderr = &errb
			done := make(chan error, 1)
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			go func() { done <- cmd.Wait() }()
			select {
			case err := <-done:
				if err != nil {
					t.Fatalf("example %s: %v\nstderr:\n%s", name, err, errb.String())
				}
			case <-time.After(2 * time.Minute):
				cmd.Process.Kill()
				t.Fatalf("example %s hung", name)
			}
			if out.Len() == 0 {
				t.Fatalf("example %s produced no output", name)
			}
		})
	}
}

// startDCNode launches a built dcnode binary on an ephemeral port and
// returns the address it reports on stderr, plus the process for
// cleanup.
func startDCNode(t *testing.T, bin string, n, seed, parts, part int) (string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(bin,
		"-n", fmt.Sprint(n), "-seed", fmt.Sprint(seed),
		"-parts", fmt.Sprint(parts), "-part", fmt.Sprint(part),
		"-listen", "127.0.0.1:0")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.LastIndex(line, " on 127.0.0.1:"); i >= 0 {
				addrc <- strings.TrimSpace(line[i+len(" on "):])
				break
			}
		}
		close(addrc)
	}()
	select {
	case addr, ok := <-addrc:
		if !ok || addr == "" {
			t.Fatalf("dcnode (part %d) never reported its address", part)
		}
		return addr, cmd
	case <-time.After(30 * time.Second):
		t.Fatalf("dcnode (part %d) startup timed out", part)
	}
	return "", nil
}

// TestDCQAgainstReplicatedDCNodes is the process-level failover surface
// check: four real dcnode processes (2 partitions x 2 replicas), one
// real dcq client connecting with the grouped replica syntax and 2
// masters. The run must complete and report a checksum.
func TestDCQAgainstReplicatedDCNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	gobin := goTool(t)
	bindir := t.TempDir()
	dcnode := filepath.Join(bindir, "dcnode")
	dcq := filepath.Join(bindir, "dcq")
	for _, b := range []struct{ out, pkg string }{{dcnode, "./cmd/dcnode"}, {dcq, "./cmd/dcq"}} {
		if out, err := exec.Command(gobin, "build", "-o", b.out, b.pkg).CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", b.pkg, err, out)
		}
	}

	const n, seed, parts = 6000, 1, 2
	addrs := make([][]string, parts)
	for part := 0; part < parts; part++ {
		for r := 0; r < 2; r++ {
			addr, _ := startDCNode(t, dcnode, n, seed, parts, part)
			addrs[part] = append(addrs[part], addr)
		}
	}

	connect := addrs[0][0] + "|" + addrs[0][1] + "," + addrs[1][0] + "|" + addrs[1][1]
	cmd := exec.Command(dcq,
		"-connect", connect, "-n", fmt.Sprint(n), "-seed", fmt.Sprint(seed),
		"-q", "50000", "-batch", "512", "-masters", "2")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("dcq: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "checksum") || !strings.Contains(string(out), "2 partitions") {
		t.Fatalf("unexpected dcq output:\n%s", out)
	}
}
