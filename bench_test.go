// Package repro_test is the repository-level benchmark harness: one
// benchmark per table and figure in the paper's evaluation section, plus
// ablations for the design choices DESIGN.md calls out. Each benchmark
// runs the corresponding experiment end to end and reports the paper's
// headline quantity as a custom metric (normalized seconds, ns/key,
// ratios), so `go test -bench=. -benchmem` regenerates the evaluation.
//
// The simulated experiments use steady-state sampling to keep the suite
// fast; cmd/figure3 -exact runs the full 2^23-query workloads.
package repro_test

import (
	"sort"
	"testing"
	"time"

	"repro/dcindex"
	"repro/internal/arch"
	"repro/internal/buffering"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/model"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// reportLatency reports the per-call latency distribution of a
// benchmark's serving op as p50/p99/p99.9 metrics, so BENCH_real.json
// carries tail behavior alongside the ns/key mean (benchcheck gates the
// p99 column the same way it gates throughput). The log-bucketed
// histogram's ≤12.5% bucket width is far below the >20% regression gate.
func reportLatency(b *testing.B, h *telemetry.Histogram) {
	s := h.Snapshot()
	if s.Count == 0 {
		return
	}
	b.ReportMetric(float64(s.P50()), "p50_ns")
	b.ReportMetric(float64(s.P99()), "p99_ns")
	b.ReportMetric(float64(s.P999()), "p999_ns")
}

// ---------------------------------------------------------------------
// Table 1 — the index structure setup.

func BenchmarkTable1_Setup(b *testing.B) {
	keys := workload.EvenKeys(327680)
	var tree *index.Tree
	for i := 0; i < b.N; i++ {
		tree = index.NewNaryTree(keys, 0)
	}
	b.ReportMetric(float64(tree.Levels()), "T_levels")
	b.ReportMetric(float64(tree.SizeBytes())/(1<<20), "tree_MB")
	part := keys[:32768]
	slave := index.NewCSBTree(part, 0)
	b.ReportMetric(float64(slave.Levels()), "L_levels")
}

// ---------------------------------------------------------------------
// Table 2 — the measured machine parameters. The benchmark measures this
// host's sequential vs random bandwidth the way the paper measured its
// cluster (Section 2.1: 647 vs 48 MB/s), reporting both as metrics.

func BenchmarkTable2_Calibrate(b *testing.B) {
	const n = 32 << 20 / 4 // 32 MB working set
	data := make([]uint32, n)
	perm := make([]uint32, n)
	for i := range data {
		data[i] = uint32(i)
		perm[i] = uint32(i)
	}
	r := workload.NewRNG(1)
	for i := n - 1; i > 0; i-- { // Sattolo: one full cycle
		j := r.Intn(i)
		perm[i], perm[j] = perm[j], perm[i]
	}

	b.Run("Sequential", func(b *testing.B) {
		var sum uint64
		b.SetBytes(int64(n * 4))
		for i := 0; i < b.N; i++ {
			for _, v := range data {
				sum += uint64(v)
			}
		}
		if sum == 0xFFFF {
			b.Log(sum)
		}
	})
	b.Run("Random4Byte", func(b *testing.B) {
		idx := uint32(0)
		b.SetBytes(int64(n * 4))
		for i := 0; i < b.N; i++ {
			for j := 0; j < n; j++ {
				idx = perm[idx]
			}
		}
		if idx == 0xFFFFFFFF {
			b.Log(idx)
		}
	})
}

// ---------------------------------------------------------------------
// Figure 3 — search time vs batch size for all five methods. Each
// sub-benchmark simulates one (method, batch) cell and reports the
// paper's y-axis as "paper_sec".

func figure3Cell(b *testing.B, m core.Method, batchBytes, sample int) {
	b.Helper()
	cfg := core.SimConfig{
		P:             arch.PentiumIIICluster(),
		Method:        m,
		IndexKeys:     workload.EvenKeys(327680),
		TotalQueries:  1 << 23,
		QuerySeed:     42,
		BatchBytes:    batchBytes,
		Masters:       1,
		Slaves:        10,
		SampleQueries: sample,
	}
	var r core.SimReport
	var err error
	for i := 0; i < b.N; i++ {
		r, err = core.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.NormalizedSec, "paper_sec")
	b.ReportMetric(r.SlaveIdleFrac*100, "idle_%")
	b.ReportMetric(r.L2MissesPerKey, "L2miss/key")
}

func BenchmarkFigure3_MethodA(b *testing.B) {
	for _, bb := range []int{8 << 10, 128 << 10, 4 << 20} {
		b.Run(byteLabel(bb), func(b *testing.B) { figure3Cell(b, core.MethodA, bb, 120_000) })
	}
}

func BenchmarkFigure3_MethodB(b *testing.B) {
	for _, bb := range []int{8 << 10, 128 << 10, 1 << 20} {
		b.Run(byteLabel(bb), func(b *testing.B) { figure3Cell(b, core.MethodB, bb, 262_144) })
	}
}

func BenchmarkFigure3_MethodC1(b *testing.B) {
	for _, bb := range []int{8 << 10, 64 << 10, 1 << 20} {
		b.Run(byteLabel(bb), func(b *testing.B) { figure3Cell(b, core.MethodC1, bb, 262_144) })
	}
}

func BenchmarkFigure3_MethodC2(b *testing.B) {
	for _, bb := range []int{8 << 10, 64 << 10, 1 << 20} {
		b.Run(byteLabel(bb), func(b *testing.B) { figure3Cell(b, core.MethodC2, bb, 262_144) })
	}
}

func BenchmarkFigure3_MethodC3(b *testing.B) {
	for _, bb := range []int{8 << 10, 64 << 10, 128 << 10, 1 << 20} {
		b.Run(byteLabel(bb), func(b *testing.B) { figure3Cell(b, core.MethodC3, bb, 262_144) })
	}
}

// ---------------------------------------------------------------------
// Table 3 — analytical model vs simulated experiment at 128 KB.

func BenchmarkTable3_ModelVsSim(b *testing.B) {
	p := arch.PentiumIIICluster()
	var rows []model.Table3Row
	for i := 0; i < b.N; i++ {
		rows = model.Table3(p)
	}
	for _, row := range rows {
		b.ReportMetric(row.PredictedSec, "model_"+row.Method+"_sec")
	}
	sim, err := core.Run(core.SimConfig{
		P: p, Method: core.MethodC3,
		IndexKeys:    workload.EvenKeys(327680),
		TotalQueries: 1 << 23, QuerySeed: 42,
		BatchBytes: 128 << 10, Masters: 1, Slaves: 10,
		SampleQueries: 262_144,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(sim.NormalizedSec, "sim_C-3_sec")
}

// ---------------------------------------------------------------------
// Figure 4 — the future-trends projection.

func BenchmarkFigure4_FutureTrends(b *testing.B) {
	var pts []model.YearPoint
	for i := 0; i < b.N; i++ {
		pts = model.Figure4(arch.PentiumIIICluster(), 5, arch.PaperScaling())
	}
	r0 := pts[0].BNs / pts[0].C3Ns
	r5 := pts[5].BNs / pts[5].C3Ns
	b.ReportMetric(r0, "BoverC3_year0")
	b.ReportMetric(r5, "BoverC3_year5")
	b.ReportMetric(r5/r0, "advantage_growth")
}

// ---------------------------------------------------------------------
// Real-runtime throughput: the adoptable library on this host. Not a
// paper artifact, but the numbers a downstream user cares about.

func benchReal(b *testing.B, m dcindex.Method) {
	keys := dcindex.GenerateKeys(327680, 1)
	queries := dcindex.GenerateQueries(1<<20, 2)
	idx, err := dcindex.Open(keys, dcindex.Options{Method: m, Workers: 8, BatchKeys: 16384})
	if err != nil {
		b.Fatal(err)
	}
	defer idx.Close()
	b.SetBytes(int64(len(queries) * workload.KeyBytes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.RankBatch(queries); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReal_RankBatch is the headline serving-path number: Method
// C-3 at the paper's index size, 2^20 uniform queries per op, steady
// state. RankBatchInto + pooled batch buffers mean `-benchmem` shows
// 0 allocs/op once warm (batch and call state live in bounded free
// lists, so GC's sync.Pool sweeps cannot evict the working set; the
// sub-1 alloc/op residue `-benchtime 100x` sometimes shows is the
// first iterations growing the free lists, and amortizes to 0 at
// 300x — there is no steady-state allocation left).
func benchRealInto(b *testing.B, layout dcindex.Layout, sorted bool) {
	keys := dcindex.GenerateKeys(327680, 1)
	queries := dcindex.GenerateQueries(1<<20, 2)
	if sorted {
		// An ascending stream: the runtime auto-detects it and takes
		// the sort-route-scan pipeline (one-sweep routing, aliased
		// zero-copy batches, streaming merge kernels).
		sort.Slice(queries, func(i, j int) bool { return queries[i] < queries[j] })
	}
	idx, err := dcindex.Open(keys, dcindex.Options{
		Method: dcindex.MethodC3, Workers: 8, BatchKeys: 16384, Layout: layout,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer idx.Close()
	out := make([]int, len(queries))
	if err := idx.RankBatchInto(queries, out); err != nil { // warm the pools
		b.Fatal(err)
	}
	b.SetBytes(int64(len(queries) * workload.KeyBytes))
	var hist telemetry.Histogram
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if err := idx.RankBatchInto(queries, out); err != nil {
			b.Fatal(err)
		}
		hist.Observe(time.Since(t0))
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(queries)), "ns/key")
	reportLatency(b, &hist)
}

func BenchmarkReal_RankBatch(b *testing.B) { benchRealInto(b, dcindex.LayoutSortedArray, false) }

// BenchmarkReal_RankBatchSorted is the sorted-batch acceptance row: the
// same workload as BenchmarkReal_RankBatch but ascending, so the whole
// pipeline switches to one-sweep routing + streaming merge kernels.
func BenchmarkReal_RankBatchSorted(b *testing.B) { benchRealInto(b, dcindex.LayoutSortedArray, true) }

func BenchmarkReal_RankBatch_Eytzinger(b *testing.B) {
	benchRealInto(b, dcindex.LayoutEytzinger, false)
}

// BenchmarkReal_CountRange is the v5 query-surface acceptance row:
// ~2^19 range counts per op, built by pairing up the sorted query
// stream into ascending disjoint ranges — the direct analog of
// BenchmarkReal_RankBatchSorted's pre-sorted input. A count decomposes
// into (lo-1, hi) endpoint ranks whose stream is then itself ascending,
// so the batch rides the sorted one-search-per-delimiter dispatch with
// no radix pass, and ns/endpoint must stay within 2x the sorted-rank
// ns/key of BenchmarkReal_RankBatchSorted (benchcheck compares the
// recorded rows). Unsorted range batches buy into the same path via
// one pooled radix sort, mirroring the RankBatch/RankBatchSorted gap.
func BenchmarkReal_CountRange(b *testing.B) {
	keys := dcindex.GenerateKeys(327680, 1)
	qs := dcindex.GenerateQueries(1<<20, 2)
	sort.Slice(qs, func(i, j int) bool { return qs[i] < qs[j] })
	ranges := make([]dcindex.KeyRange, 0, len(qs)/2)
	endpoints := 0
	for i := 0; i+1 < len(qs); i += 2 {
		lo, hi := qs[i], qs[i+1]
		if n := len(ranges); n > 0 && lo <= ranges[n-1].Hi {
			continue // keep ranges strictly disjoint so the endpoint stream stays ascending
		}
		ranges = append(ranges, dcindex.KeyRange{Lo: lo, Hi: hi})
		endpoints += 2
		if lo == 0 {
			endpoints--
		}
	}
	idx, err := dcindex.Open(keys, dcindex.Options{Method: dcindex.MethodC3, Workers: 8, BatchKeys: 16384})
	if err != nil {
		b.Fatal(err)
	}
	defer idx.Close()
	out := make([]int, len(ranges))
	if err := idx.CountRangeBatch(ranges, out); err != nil { // warm the pools
		b.Fatal(err)
	}
	b.SetBytes(int64(endpoints * workload.KeyBytes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := idx.CountRangeBatch(ranges, out); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(endpoints), "ns/endpoint")
}

// BenchmarkReal_TopK pulls the 16K largest keys per op — one partition
// head-run merge across all workers; ns/key is per returned key.
func BenchmarkReal_TopK(b *testing.B) {
	keys := dcindex.GenerateKeys(327680, 1)
	idx, err := dcindex.Open(keys, dcindex.Options{Method: dcindex.MethodC3, Workers: 8, BatchKeys: 16384})
	if err != nil {
		b.Fatal(err)
	}
	defer idx.Close()
	const k = 16384
	buf, err := idx.TopK(k, nil) // warm the pools
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(k * workload.KeyBytes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = idx.TopK(k, buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(k), "ns/key")
}

// BenchmarkReal_MixedReadWrite is the online-update serving row: Method
// C-3 at the paper's index size under a ~89/11 read/write mix — every
// 16K-key read batch is preceded by a 2K-key InsertBatch, so the run
// exercises the delta buffers, the per-partition insert counters on the
// read path, and the background merges. Each iteration starts from a
// fresh cluster so the index size (and therefore ns/key) is identical
// across iterations regardless of -benchtime; setup and teardown run
// off the clock. ns/key counts reads and writes together.
func BenchmarkReal_MixedReadWrite(b *testing.B) { benchRealMixed(b, false) }

// BenchmarkReal_MixedReadWriteDurable is the same mix with WALDir set
// at the default fsync interval (every group commit): what durability
// costs on the serving path. Each iteration logs to a fresh directory.
func BenchmarkReal_MixedReadWriteDurable(b *testing.B) { benchRealMixed(b, true) }

func benchRealMixed(b *testing.B, durable bool) {
	keys := dcindex.GenerateKeys(327680, 1)
	queries := dcindex.GenerateQueries(1<<18, 2)
	ins := dcindex.GenerateQueries(1<<15, 3)
	const chunk = 16384
	insPer := len(ins) * chunk / len(queries)
	total := len(queries) + len(ins)
	b.SetBytes(int64(total * workload.KeyBytes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		opt := dcindex.Options{Method: dcindex.MethodC3, Workers: 8, BatchKeys: chunk}
		if durable {
			opt.WALDir = b.TempDir()
		}
		idx, err := dcindex.Open(keys, opt)
		if err != nil {
			b.Fatal(err)
		}
		out := make([]int, chunk)
		b.StartTimer()
		insOff := 0
		for off := 0; off < len(queries); off += chunk {
			end := min(off+chunk, len(queries))
			if err := idx.InsertBatch(ins[insOff : insOff+insPer]); err != nil {
				b.Fatal(err)
			}
			insOff += insPer
			if err := idx.RankBatchInto(queries[off:end], out[:end-off]); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		idx.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(total), "ns/key")
}

// BenchmarkReal_ConcurrentCallers drives the cluster from 4 client
// goroutines at once — the pipelining the per-call gather channels buy.
func BenchmarkReal_ConcurrentCallers(b *testing.B) {
	keys := dcindex.GenerateKeys(327680, 1)
	queries := dcindex.GenerateQueries(1<<18, 2)
	idx, err := dcindex.Open(keys, dcindex.Options{Method: dcindex.MethodC3, Workers: 8, BatchKeys: 16384})
	if err != nil {
		b.Fatal(err)
	}
	defer idx.Close()
	b.SetBytes(int64(len(queries) * workload.KeyBytes))
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		out := make([]int, len(queries))
		for pb.Next() {
			if err := idx.RankBatchInto(queries, out); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkRealCluster_MethodA(b *testing.B)  { benchReal(b, dcindex.MethodA) }
func BenchmarkRealCluster_MethodB(b *testing.B)  { benchReal(b, dcindex.MethodB) }
func BenchmarkRealCluster_MethodC1(b *testing.B) { benchReal(b, dcindex.MethodC1) }
func BenchmarkRealCluster_MethodC2(b *testing.B) { benchReal(b, dcindex.MethodC2) }
func BenchmarkRealCluster_MethodC3(b *testing.B) { benchReal(b, dcindex.MethodC3) }

// ---------------------------------------------------------------------
// Ablations.

// AblationPartitionPressure doubles the index so each slave's partition
// no longer fits its L2 alongside the message slots: the paper's cache-
// residency argument (Section 4.1, why C-3 beats C-1) becomes visible as
// diverging L2 miss rates.
func BenchmarkAblation_PartitionPressure(b *testing.B) {
	run := func(b *testing.B, m core.Method) core.SimReport {
		b.Helper()
		r, err := core.Run(core.SimConfig{
			P:             arch.PentiumIIICluster(),
			Method:        m,
			IndexKeys:     workload.EvenKeys(1 << 20), // 1M keys: 400KB arrays, ~1MB trees
			TotalQueries:  1 << 23,
			QuerySeed:     42,
			BatchBytes:    128 << 10,
			Masters:       1,
			Slaves:        10,
			SampleQueries: 262_144,
		})
		if err != nil {
			b.Fatal(err)
		}
		return r
	}
	var c1, c3 core.SimReport
	for i := 0; i < b.N; i++ {
		c1 = run(b, core.MethodC1)
		c3 = run(b, core.MethodC3)
	}
	b.ReportMetric(c1.NormalizedSec, "C1_sec")
	b.ReportMetric(c3.NormalizedSec, "C3_sec")
	b.ReportMetric(c1.L2MissesPerKey, "C1_L2miss/key")
	b.ReportMetric(c3.L2MissesPerKey, "C3_L2miss/key")
}

// AblationGigE swaps Myrinet for Gigabit Ethernet (Section 2.2): the
// 100 us latency pushes Method C's viable batch size up by an order of
// magnitude.
func BenchmarkAblation_GigabitEthernet(b *testing.B) {
	run := func(p arch.Params, batch int) core.SimReport {
		r, err := core.Run(core.SimConfig{
			P: p, Method: core.MethodC3,
			IndexKeys:    workload.EvenKeys(327680),
			TotalQueries: 1 << 23, QuerySeed: 42,
			BatchBytes: batch, Masters: 1, Slaves: 10,
			SampleQueries: 200_000,
		})
		if err != nil {
			b.Fatal(err)
		}
		return r
	}
	var myr8, gig8, gig256 core.SimReport
	for i := 0; i < b.N; i++ {
		myr8 = run(arch.PentiumIIICluster(), 8<<10)
		gig8 = run(arch.GigabitEthernet(), 8<<10)
		gig256 = run(arch.GigabitEthernet(), 256<<10)
	}
	b.ReportMetric(myr8.NormalizedSec, "myrinet_8KB_sec")
	b.ReportMetric(gig8.NormalizedSec, "gige_8KB_sec")
	b.ReportMetric(gig256.NormalizedSec, "gige_256KB_sec")
}

// AblationBufferBudget removes the Zhou-Ross constraint that a subtree
// and its buffers fit the cache together, by planning Method B's
// decomposition with the full L2 instead of half: the deeper subtrees
// thrash against their own buffers.
func BenchmarkAblation_BufferBudget(b *testing.B) {
	keys := workload.SortedKeys(327680, 1)
	tree := index.NewNaryTree(keys, 0)
	queries := workload.UniformQueries(1<<16, 2)
	out := make([]int, len(queries))
	for _, budget := range []int{64 << 10, 256 << 10, 2 << 20} {
		plan := buffering.NewPlan(tree, budget)
		b.Run(byteLabel(budget), func(b *testing.B) {
			b.SetBytes(int64(len(queries) * workload.KeyBytes))
			for i := 0; i < b.N; i++ {
				plan.RankBatch(queries, out, 0, buffering.Hooks{})
			}
			b.ReportMetric(float64(plan.Segments()), "segments")
		})
	}
}

// AblationMultiMaster quantifies the paper's Section 3.2 remark: replicating
// the master removes the dispatch bottleneck at large batches.
func BenchmarkAblation_MultiMaster(b *testing.B) {
	run := func(masters int) core.SimReport {
		r, err := core.Run(core.SimConfig{
			P: arch.PentiumIIICluster(), Method: core.MethodC3,
			IndexKeys:    workload.EvenKeys(327680),
			TotalQueries: 1 << 23, QuerySeed: 42,
			BatchBytes: 256 << 10, Masters: masters, Slaves: 10,
			SampleQueries: 400_000,
		})
		if err != nil {
			b.Fatal(err)
		}
		return r
	}
	var one, two core.SimReport
	for i := 0; i < b.N; i++ {
		one = run(1)
		two = run(2)
	}
	b.ReportMetric(one.NormalizedSec, "1master_sec")
	b.ReportMetric(two.NormalizedSec, "2masters_sec")
}

// AblationSkew measures the load-imbalance cost of Zipf-skewed queries —
// the regime the paper's uniform-workload assumption hides.
func BenchmarkAblation_Skew(b *testing.B) {
	run := func(skew float64) core.SimReport {
		r, err := core.Run(core.SimConfig{
			P: arch.PentiumIIICluster(), Method: core.MethodC3,
			IndexKeys:    workload.EvenKeys(327680),
			TotalQueries: 1 << 23, QuerySeed: 42,
			BatchBytes: 64 << 10, Masters: 1, Slaves: 10,
			SampleQueries: 300_000, Skew: skew,
		})
		if err != nil {
			b.Fatal(err)
		}
		return r
	}
	var uni, skewed core.SimReport
	for i := 0; i < b.N; i++ {
		uni = run(0)
		skewed = run(1.1)
	}
	b.ReportMetric(uni.NormalizedSec, "uniform_sec")
	b.ReportMetric(skewed.NormalizedSec, "zipf1.1_sec")
	b.ReportMetric(skewed.LoadImbalance, "zipf_imbalance")
}

// AblationWorkers sweeps the real cluster's worker count for Method C-3:
// the scaling curve a deployment would use to size the cluster.
func BenchmarkAblation_Workers(b *testing.B) {
	keys := dcindex.GenerateKeys(327680, 1)
	queries := dcindex.GenerateQueries(1<<20, 2)
	for _, w := range []int{1, 2, 4, 8, 16} {
		b.Run(label("w", w), func(b *testing.B) {
			idx, err := dcindex.Open(keys, dcindex.Options{Method: dcindex.MethodC3, Workers: w, BatchKeys: 16384})
			if err != nil {
				b.Fatal(err)
			}
			defer idx.Close()
			b.SetBytes(int64(len(queries) * workload.KeyBytes))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := idx.RankBatch(queries); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func byteLabel(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return label("", n>>20) + "MB"
	case n >= 1<<10 && n%(1<<10) == 0:
		return label("", n>>10) + "KB"
	default:
		return label("", n) + "B"
	}
}

func label(prefix string, n int) string {
	digits := ""
	if n == 0 {
		digits = "0"
	}
	for n > 0 {
		digits = string(rune('0'+n%10)) + digits
		n /= 10
	}
	return prefix + digits
}
