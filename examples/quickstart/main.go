// Quickstart: build a distributed in-cache index, run a query batch
// through each of the paper's five methods on the real runtime, verify
// they all agree, and ask the simulator and the analytical model for the
// paper's headline numbers.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/dcindex"
)

func main() {
	// The Table 1 index: 327,680 four-byte keys.
	keys := dcindex.GenerateKeys(327680, 1)
	queries := dcindex.GenerateQueries(1_000_000, 2)

	fmt.Println("== real runtime: five methods, one answer ==")
	var reference []int
	for _, m := range dcindex.Methods() {
		idx, err := dcindex.Open(keys, dcindex.Options{
			Method:    m,
			Workers:   8,
			BatchKeys: 16384, // 64 KB batches: the paper's sweet spot
		})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		ranks, err := idx.RankBatch(queries)
		elapsed := time.Since(start)
		idx.Close()
		if err != nil {
			log.Fatal(err)
		}
		if reference == nil {
			reference = ranks
		} else {
			for i := range ranks {
				if ranks[i] != reference[i] {
					log.Fatalf("method %v disagrees at query %d", m, i)
				}
			}
		}
		fmt.Printf("  method %-3s  %8.1f ms  %6.1f Mkeys/s\n",
			m, float64(elapsed.Microseconds())/1000,
			float64(len(queries))/elapsed.Seconds()/1e6)
	}
	fmt.Println("  all methods returned identical ranks")

	// A single point lookup: which node owns a key, and its rank.
	idx, err := dcindex.Open(keys, dcindex.Options{Method: dcindex.MethodC3, Workers: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()
	probe := keys[123456]
	rank, err := idx.Rank(probe)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== point lookup ==\n  key %d: rank %d, owned by slave %d\n",
		probe, rank, idx.Owner(probe))

	// The simulator: the paper's Pentium III cluster, Table 3's point.
	fmt.Println("\n== simulated Pentium III cluster (Table 3's 128 KB point) ==")
	for _, m := range []dcindex.Method{dcindex.MethodA, dcindex.MethodB, dcindex.MethodC3} {
		r, err := dcindex.Simulate(dcindex.SimOptions{Method: m, SampleQueries: 200_000})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  method %-3s  %.3f s for 2^23 keys (normalized)\n", m, r.NormalizedSec)
	}

	// The analytical model: where is this going as hardware scales?
	fmt.Println("\n== Appendix A model: five-year projection ==")
	for _, pt := range dcindex.ProjectFigure4(dcindex.PentiumIII(), 5) {
		fmt.Printf("  year %.0f: A %5.1f  B %5.1f  C-3 %5.1f ns/key (B/C-3 = %.2fx)\n",
			pt.Year, pt.ANs, pt.BNs, pt.C3Ns, pt.BNs/pt.C3Ns)
	}
}
