// Dbrouter: query routing over a range-partitioned database table — the
// paper's fourth motivating application ("query processing with database
// indices", Section 1).
//
// A table is range-partitioned across storage shards by primary key.
// Every point query must reach the shard holding its key; every range
// scan must fan out to the shards covering [lo, hi]. The distributed
// in-cache index holds the partition split keys and answers both in
// batches. The example also compares the five method backends on this
// workload — the paper's comparison, on your hardware.
//
//	go run ./examples/dbrouter
package main

import (
	"fmt"
	"log"
	"time"

	"repro/dcindex"
)

const (
	dbShards  = 10
	splitKeys = 327680 // partition index granularity (Table 1 scale)
	pointQs   = 1_000_000
	rangeQs   = 50_000
)

func main() {
	splits := dcindex.GenerateKeys(splitKeys, 5)

	fmt.Printf("range-partitioned table: %d split keys, %d storage shards\n\n", splitKeys, dbShards)

	// Point-query routing across all five backends.
	points := dcindex.GenerateQueries(pointQs, 6)
	fmt.Println("point-query routing (1M lookups):")
	var baseline []int
	for _, m := range dcindex.Methods() {
		idx, err := dcindex.Open(splits, dcindex.Options{
			Method:    m,
			Workers:   dbShards,
			BatchKeys: 16384,
		})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		ranks, err := idx.RankBatch(points)
		el := time.Since(start)
		idx.Close()
		if err != nil {
			log.Fatal(err)
		}
		if baseline == nil {
			baseline = ranks
		} else {
			for i := range ranks {
				if ranks[i] != baseline[i] {
					log.Fatalf("backend %v disagrees at %d", m, i)
				}
			}
		}
		fmt.Printf("  backend %-3s %8.1f ms  %6.1f Mq/s\n",
			m, float64(el.Microseconds())/1000, float64(pointQs)/el.Seconds()/1e6)
	}

	// Range scans: rank(lo) and rank(hi) bound the shard fan-out.
	idx, err := dcindex.Open(splits, dcindex.Options{
		Method: dcindex.MethodC3, Workers: dbShards, BatchKeys: 16384,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()

	rng := newRand(9)
	los := make([]dcindex.Key, rangeQs)
	his := make([]dcindex.Key, rangeQs)
	for i := range los {
		a, b := dcindex.Key(rng.next()), dcindex.Key(rng.next()>>8) // mostly narrow ranges
		lo := a
		hi := a + b
		if hi < lo {
			hi = ^dcindex.Key(0)
		}
		los[i], his[i] = lo, hi
	}
	start := time.Now()
	loRanks, err := idx.RankBatch(los)
	if err != nil {
		log.Fatal(err)
	}
	hiRanks, err := idx.RankBatch(his)
	if err != nil {
		log.Fatal(err)
	}
	el := time.Since(start)

	fanout := make([]int, dbShards+1)
	totalFan := 0
	for i := range loRanks {
		loShard := shardOf(loRanks[i])
		hiShard := shardOf(hiRanks[i])
		n := hiShard - loShard + 1
		if n < 1 || n > dbShards {
			log.Fatalf("impossible fan-out %d", n)
		}
		fanout[n]++
		totalFan += n
	}
	fmt.Printf("\nrange-scan planning (%d scans in %s):\n", rangeQs, el.Round(time.Millisecond))
	for n, c := range fanout {
		if c == 0 {
			continue
		}
		fmt.Printf("  %2d-shard scans: %6d\n", n, c)
	}
	fmt.Printf("mean fan-out %.2f shards/scan — single-shard scans dominate, which is\n", float64(totalFan)/rangeQs)
	fmt.Println("why routing by a cache-resident index (not broadcast) pays off")
}

func shardOf(rank int) int {
	s := rank * dbShards / (splitKeys + 1)
	if s >= dbShards {
		s = dbShards - 1
	}
	return s
}

type rand struct{ s uint64 }

func newRand(seed uint64) *rand { return &rand{s: seed} }

func (r *rand) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return (z ^ (z >> 31)) >> 32
}
