// Iprouter: packet forwarding over the internet — the paper's second
// motivating application ("routing packets over internet", Section 1).
//
// A forwarding table of CIDR prefixes is flattened into disjoint address
// ranges (the standard longest-prefix-match-to-interval transformation):
// each range start becomes an index key, and the next hop for a packet
// is determined by the rank of its destination address. The distributed
// in-cache index is the forwarding plane: packets are routed in batches,
// each landing at the line card whose cache owns its address range.
//
//	go run ./examples/iprouter
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"repro/dcindex"
)

const (
	prefixes  = 60000 // CIDR entries (a mid-2000s BGP table)
	lineCards = 8
	packets   = 2_000_000
)

func main() {
	// Build a synthetic forwarding table: random /8-/24 prefixes with
	// random next hops, flattened to sorted range starts.
	rng := newRand(17)
	type route struct {
		start, end uint32 // inclusive address range
		nextHop    int
	}
	routes := make([]route, 0, prefixes)
	for i := 0; i < prefixes; i++ {
		length := 8 + int(rng.next()%17) // /8 .. /24
		base := uint32(rng.next())
		mask := ^uint32(0) << (32 - length)
		start := base & mask
		routes = append(routes, route{
			start:   start,
			end:     start | ^mask,
			nextHop: int(rng.next() % 64),
		})
	}
	// Longest-prefix flattening. CIDR blocks are power-of-two aligned,
	// so any two are either nested or disjoint; sorting by (start asc,
	// end desc) puts enclosing blocks before their sub-blocks, giving a
	// clean nesting stack: a narrower prefix overwrites its parent at
	// its start, and the parent's hop resumes after it ends.
	sort.Slice(routes, func(i, j int) bool {
		if routes[i].start != routes[j].start {
			return routes[i].start < routes[j].start
		}
		if routes[i].end != routes[j].end {
			return routes[i].end > routes[j].end
		}
		return routes[i].nextHop < routes[j].nextHop
	})
	// Random tables can contain the same prefix twice with different
	// hops; keep the highest hop (any deterministic rule works, it just
	// has to match the verification below).
	dedup := routes[:0]
	for _, r := range routes {
		if n := len(dedup); n > 0 && dedup[n-1].start == r.start && dedup[n-1].end == r.end {
			dedup[n-1].nextHop = r.nextHop
			continue
		}
		dedup = append(dedup, r)
	}
	routes = dedup
	type flat struct {
		start   uint32
		nextHop int
	}
	var table []flat
	var stack []route
	emit := func(at uint32, hop int) {
		if len(table) > 0 && table[len(table)-1].start == at {
			table[len(table)-1].nextHop = hop
			return
		}
		table = append(table, flat{start: at, nextHop: hop})
	}
	pop := func(upTo uint32) {
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			if top.end >= upTo {
				break
			}
			stack = stack[:len(stack)-1]
			if len(stack) > 0 && top.end < ^uint32(0) {
				emit(top.end+1, stack[len(stack)-1].nextHop)
			}
		}
	}
	emit(0, -1) // default route: drop
	for _, r := range routes {
		pop(r.start)
		stack = append(stack, r)
		emit(r.start, r.nextHop)
	}
	pop(^uint32(0))

	// Index keys are the range starts (skip the sentinel at 0: rank 0
	// means "before every range start", which maps to table[0]).
	keys := make([]dcindex.Key, 0, len(table)-1)
	for _, f := range table[1:] {
		keys = append(keys, dcindex.Key(f.start))
	}

	idx, err := dcindex.Open(keys, dcindex.Options{
		Method:    dcindex.MethodC3,
		Workers:   lineCards,
		BatchKeys: 8192,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()

	fmt.Printf("forwarding table: %d prefixes -> %d disjoint ranges on %d line cards\n\n",
		prefixes, len(table), lineCards)

	// Route a packet burst.
	dests := make([]dcindex.Key, packets)
	for i := range dests {
		dests[i] = dcindex.Key(rng.next())
	}
	start := time.Now()
	ranks, err := idx.RankBatch(dests)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	hops := make(map[int]int)
	dropped := 0
	for _, r := range ranks {
		hop := table[r].nextHop
		if hop < 0 {
			dropped++
		} else {
			hops[hop]++
		}
	}
	fmt.Printf("routed %d packets in %s (%.2f Mpps)\n",
		packets, elapsed.Round(time.Millisecond), float64(packets)/elapsed.Seconds()/1e6)
	fmt.Printf("distinct next hops used: %d; packets without a route: %d (%.1f%%)\n\n",
		len(hops), dropped, 100*float64(dropped)/packets)

	// Spot-check against a linear longest-prefix match.
	for probe := 0; probe < 2000; probe++ {
		addr := uint32(rng.next())
		r, err := idx.Rank(dcindex.Key(addr))
		if err != nil {
			log.Fatal(err)
		}
		got := table[r].nextHop
		want := -1
		bestSpan := ^uint32(0)
		for _, rt := range routes {
			if rt.start <= addr && addr <= rt.end {
				// Smaller span = longer prefix = more specific.
				if span := rt.end - rt.start; want < 0 || span < bestSpan {
					bestSpan, want = span, rt.nextHop
				}
			}
		}
		if got != want {
			log.Fatalf("LPM mismatch for %08x: index says %d, reference says %d", addr, got, want)
		}
	}
	fmt.Println("longest-prefix match verified against linear scan for 2000 addresses")
}

type rand struct{ s uint64 }

func newRand(seed uint64) *rand { return &rand{s: seed} }

func (r *rand) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return (z ^ (z >> 31)) >> 32
}
