// Sensornet: object tracking in a sensor network — the paper's first
// motivating application ("examples include object tracking in sensor
// networks", Section 1).
//
// A field of sensors is divided into geographic strips; each strip is
// owned by a gateway node. Moving objects report positions continuously,
// and every report must reach the gateway owning that strip. The strip
// boundaries form a sorted index over a space-filling-curve coordinate,
// and the distributed in-cache index routes reports to owners in
// batches.
//
// The example simulates moving objects, routes their reports through the
// index, verifies every report reaches the owner of its strip, and shows
// how batching amortizes dispatch cost.
//
//	go run ./examples/sensornet
package main

import (
	"fmt"
	"log"
	"time"

	"repro/dcindex"
)

const (
	gateways  = 16    // nodes owning geographic strips
	strips    = 4096  // index granularity: strip boundaries
	objects   = 20000 // moving objects
	ticks     = 20    // simulation steps
	fieldSize = 1 << 32
)

func main() {
	// Strip boundaries: an evenly spaced sorted index over the
	// space-filling coordinate. Each gateway owns strips/gateways
	// consecutive strips.
	boundaries := make([]dcindex.Key, strips)
	for i := range boundaries {
		// Upper edge of strip i; the last edge clamps to the top of
		// the coordinate space instead of wrapping to zero.
		boundaries[i] = dcindex.Key(uint64(i+1)*(fieldSize/strips) - 1)
	}

	idx, err := dcindex.Open(boundaries, dcindex.Options{
		Method:    dcindex.MethodC3,
		Workers:   gateways,
		BatchKeys: 4096,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()

	// Objects drift across the field.
	pos := make([]uint32, objects)
	vel := make([]int32, objects)
	rng := newRand(7)
	for i := range pos {
		pos[i] = uint32(rng.next())
		vel[i] = int32(rng.next()%2_000_000) - 1_000_000
	}

	fmt.Printf("tracking %d objects over %d ticks, %d strips on %d gateways\n\n",
		objects, ticks, strips, gateways)

	reports := make([]dcindex.Key, objects)
	perGateway := make([]int, gateways)
	var handoffs int
	prevOwner := make([]int, objects)
	for i := range prevOwner {
		prevOwner[i] = -1
	}

	start := time.Now()
	for tick := 0; tick < ticks; tick++ {
		for i := range pos {
			pos[i] = uint32(int64(pos[i]) + int64(vel[i])) // wraps naturally
			reports[i] = dcindex.Key(pos[i])
		}
		ranks, err := idx.RankBatch(reports)
		if err != nil {
			log.Fatal(err)
		}
		for i, r := range ranks {
			// rank -> strip -> owning gateway. A rank of `strips`
			// means beyond the last boundary; it wraps to strip 0's
			// gateway in this toy topology.
			strip := r % strips
			owner := strip * gateways / strips
			perGateway[owner]++
			if prevOwner[i] != owner {
				if prevOwner[i] >= 0 {
					handoffs++
				}
				prevOwner[i] = owner
			}
		}
	}
	elapsed := time.Since(start)

	total := objects * ticks
	fmt.Printf("routed %d position reports in %s (%.2f Mreports/s)\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds()/1e6)
	fmt.Printf("object->gateway handoffs observed: %d\n\n", handoffs)

	fmt.Println("per-gateway report load (uniformity check):")
	min, max := perGateway[0], perGateway[0]
	for _, c := range perGateway {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	for g, c := range perGateway {
		fmt.Printf("  gateway %2d: %7d reports\n", g, c)
	}
	fmt.Printf("load imbalance (max/min): %.2f\n", float64(max)/float64(min))

	// Verify routing against the definition.
	for probe := 0; probe < 1000; probe++ {
		k := dcindex.Key(rng.next())
		r, err := idx.Rank(k)
		if err != nil {
			log.Fatal(err)
		}
		want := 0
		for _, b := range boundaries {
			if b <= k {
				want++
			}
		}
		if r != want {
			log.Fatalf("rank mismatch for %d: %d vs %d", k, r, want)
		}
	}
	fmt.Println("\nrouting verified against linear scan for 1000 probes")
}

type rand struct{ s uint64 }

func newRand(seed uint64) *rand { return &rand{s: seed} }

func (r *rand) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return (z ^ (z >> 31)) >> 32
}
