// Pubsub: request routing in publish-subscribe middleware — the paper's
// third motivating application ("routing requests in publish-subscribe
// middleware", Section 1).
//
// Subscribers register interest in contiguous topic-id ranges; each
// broker node is responsible for a shard of the topic space. Publishing
// a message means finding the broker shard that owns the topic — a rank
// query against the sorted shard boundaries. The distributed in-cache
// index is the routing tier: publications stream through it in batches,
// and each lands at its owning broker's queue.
//
//	go run ./examples/pubsub
package main

import (
	"fmt"
	"log"
	"time"

	"repro/dcindex"
)

const (
	brokers      = 12
	shards       = 24576 // topic-space split points (the routing index)
	publications = 2_000_000
	hotTopics    = 64 // a skewed tail of popular topics
)

func main() {
	// Shard boundaries over the 32-bit topic-id space.
	boundaries := dcindex.GenerateKeys(shards, 3)

	idx, err := dcindex.Open(boundaries, dcindex.Options{
		Method:    dcindex.MethodC3,
		Workers:   brokers,
		BatchKeys: 8192,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()

	// A skewed publication stream: 50% of traffic hits a few hot
	// topics (the realistic pub-sub regime), the rest is uniform.
	rng := newRand(11)
	hot := make([]dcindex.Key, hotTopics)
	for i := range hot {
		hot[i] = dcindex.Key(rng.next())
	}
	topics := make([]dcindex.Key, publications)
	for i := range topics {
		if rng.next()%2 == 0 {
			topics[i] = hot[rng.next()%hotTopics]
		} else {
			topics[i] = dcindex.Key(rng.next())
		}
	}

	fmt.Printf("routing %d publications over %d topic shards on %d brokers\n\n",
		publications, shards, brokers)

	start := time.Now()
	ranks, err := idx.RankBatch(topics)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	// Queue depth per broker: shard -> broker by contiguous ranges.
	load := make([]int, brokers)
	for _, r := range ranks {
		shard := r
		if shard >= shards {
			shard = shards - 1
		}
		load[shard*brokers/shards]++
	}

	fmt.Printf("routed in %s (%.2f Mmsgs/s)\n\n",
		elapsed.Round(time.Millisecond), float64(publications)/elapsed.Seconds()/1e6)

	fmt.Println("broker queue depths (hot topics make this skewed):")
	max := 0
	for _, c := range load {
		if c > max {
			max = c
		}
	}
	for b, c := range load {
		bar := int(float64(c) / float64(max) * 40)
		fmt.Printf("  broker %2d %8d %s\n", b, c, stars(bar))
	}

	// The routing tier sees the skew before the brokers do.
	hottest := argmax(load)
	coldest := argmin(load)
	fmt.Printf("\nhottest broker %d carries %.1fx the coldest broker %d\n",
		hottest, float64(load[hottest])/float64(load[coldest]), coldest)
	fmt.Println("a production deployment would split the hottest shard — the index\nmakes that a delimiter update, not a data migration")
}

func argmax(xs []int) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

func argmin(xs []int) int {
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

func stars(n int) string {
	s := make([]byte, n)
	for i := range s {
		s[i] = '#'
	}
	return string(s)
}

type rand struct{ s uint64 }

func newRand(seed uint64) *rand { return &rand{s: seed} }

func (r *rand) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return (z ^ (z >> 31)) >> 32
}
