// Package memsim simulates one node's memory hierarchy: set-associative
// L1 and L2 caches with LRU replacement, a data TLB, and a RAM model that
// distinguishes streaming (full W1 bandwidth) from random line-granular
// access (per-line miss penalties). The paper's entire argument rests on
// this distinction — Section 2.1 measures 647 MB/s sequential vs 48 MB/s
// random on the same machine — so the simulator charges costs exactly the
// way Table 2 and Appendix A describe: a B2 miss penalty per line loaded
// from RAM, a B1 penalty per line loaded from L2 into L1, and n/W1 for
// streaming n bytes.
//
// The simulator is trace-driven: index structures report the virtual
// addresses they probe (see internal/index), and Hierarchy.Touch turns
// each probe into nanoseconds while updating cache state. Determinism is
// total — no wall-clock, no randomness — so simulated experiments are
// reproducible across hosts.
package memsim

import (
	"fmt"
	"math/bits"

	"repro/internal/arch"
)

// Addr is a virtual byte address in the simulated node's address space.
// The simulation never dereferences these; they exist only to drive
// cache indexing, so different data structures simply claim disjoint
// address regions.
type Addr uint64

// Cache is one set-associative cache level with LRU replacement.
// The zero value is not usable; use NewCache.
type Cache struct {
	lineShift uint
	setMask   uint64
	ways      int
	// tags holds sets*ways entries; within a set, index 0 is the most
	// recently used way. A zero entry is invalid (tags store lineAddr+1
	// so that line address 0 is representable).
	tags []uint64

	hits   uint64
	misses uint64
}

// NewCache builds a cache of the given total size, line size, and
// associativity. Sizes must satisfy arch.Params.Validate-style
// constraints; NewCache panics on malformed geometry because it is
// always driven by validated Params.
func NewCache(sizeBytes, lineBytes, assoc int) *Cache {
	if sizeBytes <= 0 || lineBytes <= 0 || assoc <= 0 {
		panic(fmt.Sprintf("memsim: bad cache geometry size=%d line=%d assoc=%d", sizeBytes, lineBytes, assoc))
	}
	if lineBytes&(lineBytes-1) != 0 {
		panic(fmt.Sprintf("memsim: line size %d not a power of two", lineBytes))
	}
	lines := sizeBytes / lineBytes
	if lines%assoc != 0 {
		panic(fmt.Sprintf("memsim: %d lines not divisible by associativity %d", lines, assoc))
	}
	sets := lines / assoc
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("memsim: set count %d not a power of two", sets))
	}
	return &Cache{
		lineShift: uint(bits.TrailingZeros(uint(lineBytes))),
		setMask:   uint64(sets - 1),
		ways:      assoc,
		tags:      make([]uint64, sets*assoc),
	}
}

// Access looks up the line containing addr, updating LRU state and
// installing the line on a miss. It reports whether the access hit.
func (c *Cache) Access(addr Addr) bool {
	line := uint64(addr) >> c.lineShift
	set := int(line&c.setMask) * c.ways
	tag := line + 1
	ways := c.tags[set : set+c.ways : set+c.ways]
	for i, t := range ways {
		if t == tag {
			// Move to front (MRU).
			copy(ways[1:i+1], ways[:i])
			ways[0] = tag
			c.hits++
			return true
		}
	}
	// Miss: evict LRU (last way), install at MRU.
	copy(ways[1:], ways[:c.ways-1])
	ways[0] = tag
	c.misses++
	return false
}

// Install brings the line holding addr into the cache (updating LRU
// state and evicting as needed) without recording a hit or a miss. The
// hierarchy's quiet paths (Preload, InstallQuiet) use it to model
// residency changes that should not perturb the experiment's counters.
func (c *Cache) Install(addr Addr) {
	line := uint64(addr) >> c.lineShift
	set := int(line&c.setMask) * c.ways
	tag := line + 1
	ways := c.tags[set : set+c.ways : set+c.ways]
	for i, t := range ways {
		if t == tag {
			copy(ways[1:i+1], ways[:i])
			ways[0] = tag
			return
		}
	}
	copy(ways[1:], ways[:c.ways-1])
	ways[0] = tag
}

// Contains reports whether the line holding addr is currently cached,
// without touching LRU state or counters. Tests and occupancy probes use
// it to inspect simulator state non-destructively.
func (c *Cache) Contains(addr Addr) bool {
	line := uint64(addr) >> c.lineShift
	set := int(line&c.setMask) * c.ways
	tag := line + 1
	for _, t := range c.tags[set : set+c.ways] {
		if t == tag {
			return true
		}
	}
	return false
}

// Reset invalidates every line and clears counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
	}
	c.hits, c.misses = 0, 0
}

// Hits and Misses return the access counters.
func (c *Cache) Hits() uint64   { return c.hits }
func (c *Cache) Misses() uint64 { return c.misses }

// Occupancy returns the number of valid lines, useful for asserting
// working-set residency in tests.
func (c *Cache) Occupancy() int {
	n := 0
	for _, t := range c.tags {
		if t != 0 {
			n++
		}
	}
	return n
}

// Lines returns the total line capacity.
func (c *Cache) Lines() int { return len(c.tags) }

// Counters aggregates the hierarchy's event counts for reporting.
type Counters struct {
	Accesses    uint64 // random-access probes through Touch
	L1Hits      uint64
	L1Misses    uint64
	L2Hits      uint64 // L1 misses that hit in L2
	L2Misses    uint64 // line fills from RAM
	TLBMisses   uint64
	StreamBytes uint64 // bytes charged at sequential bandwidth
}

// Hierarchy is a node's full memory system: L1 + L2 + TLB + RAM timing.
type Hierarchy struct {
	P   arch.Params
	L1  *Cache
	L2  *Cache
	TLB *Cache // page-granularity cache; nil when P.TLBEntries == 0

	C Counters
}

// NewHierarchy builds the hierarchy described by p. It panics if p is
// invalid; validate upstream with p.Validate().
func NewHierarchy(p arch.Params) *Hierarchy {
	if err := p.Validate(); err != nil {
		panic("memsim: " + err.Error())
	}
	h := &Hierarchy{
		P:  p,
		L1: NewCache(p.L1Size, p.L1Line, p.L1Assoc),
		L2: NewCache(p.L2Size, p.L2Line, p.L2Assoc),
	}
	if p.TLBEntries > 0 {
		// Model the data TLB as 4-way set associative over pages
		// (64 entries => 16 sets on the Pentium III).
		assoc := 4
		if p.TLBEntries < assoc || p.TLBEntries%assoc != 0 {
			assoc = 1
		}
		h.TLB = NewCache(p.TLBEntries*p.PageBytes, p.PageBytes, assoc)
	}
	return h
}

// Touch performs one random (dependent, non-streamed) access to the
// word at addr and returns its cost in nanoseconds: the TLB walk if the
// page misses, plus the B2 penalty if the line must come from RAM, plus
// the B1 penalty if the line must move from L2 into L1. A pure L1 hit
// costs zero here — the CPU-side cost of the compare is charged
// separately via arch.Params.CompCost* by the engines, matching the
// paper's cost decomposition.
func (h *Hierarchy) Touch(addr Addr) float64 {
	h.C.Accesses++
	var ns float64
	if h.TLB != nil && !h.TLB.Access(addr) {
		h.C.TLBMisses++
		ns += h.P.TLBMissPenaltyNs
	}
	if h.L1.Access(addr) {
		h.C.L1Hits++
		return ns
	}
	h.C.L1Misses++
	if h.L2.Access(addr) {
		h.C.L2Hits++
		return ns + h.P.B1MissPenaltyNs
	}
	h.C.L2Misses++
	return ns + h.P.B2MissPenaltyNs + h.P.B1MissPenaltyNs
}

// TouchRange performs random accesses for every line spanned by
// [addr, addr+size) and returns the summed cost. Index nodes are line
// sized, so this is almost always a single line.
func (h *Hierarchy) TouchRange(addr Addr, size int) float64 {
	if size <= 0 {
		return 0
	}
	line := uint64(h.P.L2Line)
	first := uint64(addr) / line
	last := (uint64(addr) + uint64(size) - 1) / line
	var ns float64
	for l := first; l <= last; l++ {
		ns += h.Touch(Addr(l * line))
	}
	return ns
}

// Stream charges n bytes at the sequential memory bandwidth W1 without
// touching cache state: the cost model for buffer reads and writes whose
// addresses are consecutive ("the full memory bandwidth can be used",
// Appendix A). Use StreamInstall when the streamed data should also
// occupy cache (e.g. an arriving query batch polluting the slave's L2,
// the effect behind Figure 3's dip at 128 KB).
func (h *Hierarchy) Stream(n int) float64 {
	if n <= 0 {
		return 0
	}
	h.C.StreamBytes += uint64(n)
	return h.P.SeqCostNs(n)
}

// StreamInstall charges n bytes at sequential bandwidth and installs the
// spanned lines into L1 and L2, evicting whatever LRU displaces. The
// install itself adds no latency (hardware prefetching and non-blocking
// fills overlap with the stream), but the cache pollution it causes is
// exactly the contention mechanism Section 4.1 describes for 128 KB
// batches.
func (h *Hierarchy) StreamInstall(addr Addr, n int) float64 {
	if n <= 0 {
		return 0
	}
	line := uint64(h.P.L2Line)
	first := uint64(addr) / line
	last := (uint64(addr) + uint64(n) - 1) / line
	for l := first; l <= last; l++ {
		a := Addr(l * line)
		h.L1.Access(a)
		h.L2.Access(a)
	}
	h.C.StreamBytes += uint64(n)
	return h.P.SeqCostNs(n)
}

// InstallQuiet brings [addr, addr+size) into L1 and L2 without charging
// time or counters: residency changes caused by activity outside the
// measured computation, such as the next message being DMA-received
// while the current one is processed ("overlapped communication and
// computation", Section 4.1) — the cache pollution is real even though
// the cost is hidden.
func (h *Hierarchy) InstallQuiet(addr Addr, size int) {
	if size <= 0 {
		return
	}
	line := uint64(h.P.L2Line)
	first := uint64(addr) / line
	last := (uint64(addr) + uint64(size) - 1) / line
	for l := first; l <= last; l++ {
		a := Addr(l * line)
		h.L2.Install(a)
		h.L1.Install(a)
	}
}

// Preload installs [addr, addr+size) into L2 (and the hottest prefix
// into L1) plus the TLB, without charging time or counters: the
// warm-start state for a slave whose partition is assumed cache-resident
// before the experiment begins, mirroring the paper's steady-state
// measurement regime (they time 8M queries, so cold-start effects
// vanish). Unlike the former implementation, it is counter-neutral even
// when called mid-run.
func (h *Hierarchy) Preload(addr Addr, size int) {
	if size <= 0 {
		return
	}
	h.InstallQuiet(addr, size)
	if h.TLB != nil {
		line := uint64(h.P.PageBytes)
		first := uint64(addr) / line
		last := (uint64(addr) + uint64(size) - 1) / line
		for l := first; l <= last; l++ {
			h.TLB.Install(Addr(l * line))
		}
	}
}

// Reset clears all cache state and counters.
func (h *Hierarchy) Reset() {
	h.L1.Reset()
	h.L2.Reset()
	if h.TLB != nil {
		h.TLB.Reset()
	}
	h.C = Counters{}
}

// MissRatio returns L2 misses per Touch access, the quantity Appendix A
// predicts with Equations 3-5.
func (h *Hierarchy) MissRatio() float64 {
	if h.C.Accesses == 0 {
		return 0
	}
	return float64(h.C.L2Misses) / float64(h.C.Accesses)
}
