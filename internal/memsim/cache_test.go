package memsim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/workload"
)

func testParams() arch.Params { return arch.PentiumIIICluster() }

func TestNewCachePanicsOnBadGeometry(t *testing.T) {
	cases := []struct {
		name              string
		size, line, assoc int
	}{
		{"zero size", 0, 32, 4},
		{"non-pow2 line", 1024, 48, 4},
		{"assoc not dividing", 1024, 32, 5},
		{"zero assoc", 1024, 32, 0},
		{"non-pow2 sets", 96, 32, 1},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			NewCache(c.size, c.line, c.assoc)
		}()
	}
}

func TestCacheHitAfterMiss(t *testing.T) {
	c := NewCache(1024, 32, 4)
	if c.Access(0) {
		t.Fatal("first access should miss")
	}
	if !c.Access(0) {
		t.Fatal("second access to same line should hit")
	}
	if !c.Access(31) {
		t.Fatal("access within same line should hit")
	}
	if c.Access(32) {
		t.Fatal("next line should miss")
	}
	if c.Hits() != 2 || c.Misses() != 2 {
		t.Fatalf("counters hits=%d misses=%d, want 2/2", c.Hits(), c.Misses())
	}
}

func TestCacheLRUEvictionOrder(t *testing.T) {
	// 4 sets x 2 ways, 32B lines. Lines that map to set 0 are multiples
	// of 4 lines: addresses 0, 4*32, 8*32, ...
	c := NewCache(8*32, 32, 2)
	a := Addr(0)
	b := Addr(4 * 32)
	d := Addr(8 * 32)
	c.Access(a) // set0: [a]
	c.Access(b) // set0: [b a]
	c.Access(a) // set0: [a b]  (a now MRU)
	c.Access(d) // evicts b (LRU), set0: [d a]
	if !c.Contains(a) {
		t.Error("a should survive (was MRU before insert)")
	}
	if c.Contains(b) {
		t.Error("b should have been evicted as LRU")
	}
	if !c.Contains(d) {
		t.Error("d should be resident")
	}
}

func TestCacheAssociativityConflicts(t *testing.T) {
	// Direct-mapped: two lines mapping to the same set always conflict.
	c := NewCache(4*32, 32, 1) // 4 sets, 1 way
	a, b := Addr(0), Addr(4*32)
	c.Access(a)
	c.Access(b)
	if c.Contains(a) {
		t.Error("direct-mapped: a must be evicted by b")
	}
	// Same trace with 2 ways keeps both.
	c2 := NewCache(8*32, 32, 2)
	c2.Access(a)
	c2.Access(b)
	if !c2.Contains(a) || !c2.Contains(b) {
		t.Error("2-way: both lines should be resident")
	}
}

func TestCacheWorkingSetFitsSteadyStateHits(t *testing.T) {
	// A working set no larger than the cache must reach 100% hits after
	// the first pass, for any associativity, when accessed sequentially
	// by line (no conflict aliasing beyond capacity).
	for _, assoc := range []int{1, 2, 4, 8} {
		c := NewCache(1024, 32, assoc)
		lines := c.Lines()
		for pass := 0; pass < 3; pass++ {
			for i := 0; i < lines; i++ {
				c.Access(Addr(i * 32))
			}
		}
		if got := c.Misses(); got != uint64(lines) {
			t.Errorf("assoc=%d: misses=%d, want %d (cold only)", assoc, got, lines)
		}
	}
}

func TestCacheContainsDoesNotPerturb(t *testing.T) {
	c := NewCache(1024, 32, 4)
	c.Access(0)
	h, m := c.Hits(), c.Misses()
	c.Contains(0)
	c.Contains(999999)
	if c.Hits() != h || c.Misses() != m {
		t.Error("Contains changed counters")
	}
}

func TestCacheResetAndOccupancy(t *testing.T) {
	c := NewCache(1024, 32, 4)
	for i := 0; i < 10; i++ {
		c.Access(Addr(i * 32))
	}
	if got := c.Occupancy(); got != 10 {
		t.Errorf("occupancy = %d, want 10", got)
	}
	c.Reset()
	if c.Occupancy() != 0 || c.Hits() != 0 || c.Misses() != 0 {
		t.Error("Reset did not clear state")
	}
	// Address 0 must be representable after reset (tag-0 sentinel).
	if c.Access(0) {
		t.Error("address 0 hit in an empty cache")
	}
	if !c.Access(0) {
		t.Error("address 0 missed after install")
	}
}

// Reference LRU model: map from line to last-use time, evict oldest
// among a set. Cross-validate the fast implementation on random traces.
func TestCacheMatchesReferenceLRU(t *testing.T) {
	const (
		size  = 2048
		line  = 32
		assoc = 4
	)
	c := NewCache(size, line, assoc)
	sets := size / line / assoc

	type ref struct {
		lines map[uint64]int // lineAddr -> last use tick
	}
	refs := make([]ref, sets)
	for i := range refs {
		refs[i] = ref{lines: map[uint64]int{}}
	}

	r := workload.NewRNG(77)
	for tick := 0; tick < 20000; tick++ {
		addr := Addr(r.Intn(16 * size)) // 16x cache size: heavy eviction
		lineAddr := uint64(addr) / line
		set := int(lineAddr % uint64(sets))

		_, refHit := refs[set].lines[lineAddr]
		gotHit := c.Access(addr)
		if gotHit != refHit {
			t.Fatalf("tick %d addr %d: sim hit=%v, reference hit=%v", tick, addr, gotHit, refHit)
		}
		refs[set].lines[lineAddr] = tick
		if len(refs[set].lines) > assoc {
			oldest, oldestTick := uint64(0), math.MaxInt
			for l, tk := range refs[set].lines {
				if tk < oldestTick {
					oldest, oldestTick = l, tk
				}
			}
			delete(refs[set].lines, oldest)
		}
	}
}

func TestHierarchyCostLadder(t *testing.T) {
	p := testParams()
	h := NewHierarchy(p)

	// Cold access: TLB miss + L2 miss + L1 fill.
	cold := h.Touch(0)
	want := p.TLBMissPenaltyNs + p.B2MissPenaltyNs + p.B1MissPenaltyNs
	if cold != want {
		t.Errorf("cold access = %v, want %v", cold, want)
	}
	// Immediate re-access: free L1 hit.
	if got := h.Touch(0); got != 0 {
		t.Errorf("L1 hit cost = %v, want 0", got)
	}
	if h.C.L1Hits != 1 || h.C.L2Misses != 1 || h.C.TLBMisses != 1 {
		t.Errorf("counters = %+v", h.C)
	}
}

func TestHierarchyL2HitCost(t *testing.T) {
	p := testParams()
	h := NewHierarchy(p)
	// Fill L1 far beyond capacity within one page so the first line is
	// evicted from L1 but still in L2 and the TLB entry stays hot.
	// L1: 16KB => 512 lines; one 4KB page has 128 lines, not enough.
	// Instead disable the TLB contribution by touching enough lines of
	// already-mapped pages: first touch line 0, then 600 other lines,
	// then re-touch line 0 and subtract any TLB penalty observed.
	h.Touch(0)
	for i := 1; i <= 600; i++ {
		h.Touch(Addr(i * 32))
	}
	before := h.C
	cost := h.Touch(0)
	if h.C.L2Misses != before.L2Misses {
		t.Fatalf("line 0 fell out of L2 unexpectedly")
	}
	if h.C.L2Hits != before.L2Hits+1 {
		t.Fatalf("expected an L2 hit, counters %+v -> %+v", before, h.C)
	}
	wantB1 := p.B1MissPenaltyNs
	if math.Abs(cost-wantB1) > p.TLBMissPenaltyNs+1e-9 {
		t.Errorf("L2-hit cost = %v, want about B1=%v", cost, wantB1)
	}
}

func TestHierarchyWorkingSetInCacheIsFree(t *testing.T) {
	p := testParams()
	h := NewHierarchy(p)
	// 100 lines fit trivially in L1; after warmup all accesses cost 0.
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 100; i++ {
			h.Touch(Addr(i * 32))
		}
	}
	var total float64
	for i := 0; i < 100; i++ {
		total += h.Touch(Addr(i * 32))
	}
	if total != 0 {
		t.Errorf("steady-state in-L1 pass cost %v ns, want 0", total)
	}
}

func TestTouchRangeSpansLines(t *testing.T) {
	p := testParams()
	h := NewHierarchy(p)
	// 64 bytes starting mid-line spans 3 lines (offsets 16..79).
	h.Touch(0) // map the page first, isolate line accounting below
	before := h.C.Accesses
	h.TouchRange(16, 64)
	if got := h.C.Accesses - before; got != 3 {
		t.Errorf("TouchRange touched %d lines, want 3", got)
	}
	if got := h.TouchRange(0, 0); got != 0 {
		t.Errorf("empty range cost %v", got)
	}
}

func TestStreamCostAndCounters(t *testing.T) {
	p := testParams()
	h := NewHierarchy(p)
	n := 647 * arch.MB
	ns := h.Stream(n)
	if math.Abs(ns-1e9) > 1 {
		t.Errorf("Stream(647MB) = %v ns, want 1e9", ns)
	}
	if h.C.StreamBytes != uint64(n) {
		t.Errorf("StreamBytes = %d", h.C.StreamBytes)
	}
	if h.C.Accesses != 0 {
		t.Error("Stream must not count as random accesses")
	}
	if h.Stream(0) != 0 || h.Stream(-5) != 0 {
		t.Error("degenerate stream sizes should cost 0")
	}
}

func TestStreamInstallPollutesCache(t *testing.T) {
	p := testParams()
	h := NewHierarchy(p)

	// Make an index working set resident in L2.
	const idxBase = 1 << 30
	idxBytes := p.L2Size / 2
	h.Preload(idxBase, idxBytes)
	residentBefore := h.L2.Occupancy()

	// Stream a full L2 worth of message bytes through the cache.
	h.StreamInstall(0, p.L2Size)

	// Much of the index must have been evicted.
	evicted := 0
	for off := 0; off < idxBytes; off += p.L2Line {
		if !h.L2.Contains(Addr(idxBase + off)) {
			evicted++
		}
	}
	if evicted < residentBefore/4 {
		t.Errorf("StreamInstall evicted only %d of %d resident lines; expected heavy pollution", evicted, residentBefore)
	}

	// Plain Stream must not pollute.
	h.Reset()
	h.Preload(idxBase, idxBytes)
	h.Stream(p.L2Size)
	for off := 0; off < idxBytes; off += p.L2Line {
		if !h.L2.Contains(Addr(idxBase + off)) {
			t.Fatal("plain Stream evicted index lines")
		}
	}
}

func TestPreloadIsFreeAndResident(t *testing.T) {
	p := testParams()
	h := NewHierarchy(p)
	h.Preload(0, 64*1024)
	if h.C.Accesses != 0 || h.L2.Misses() != 0 || h.L2.Hits() != 0 {
		t.Errorf("Preload charged counters: %+v L2hits=%d L2miss=%d", h.C, h.L2.Hits(), h.L2.Misses())
	}
	// A touch inside the preloaded region must be an L2 (or L1) hit.
	before := h.C
	h.Touch(32 * 100)
	if h.C.L2Misses != before.L2Misses {
		t.Error("preloaded line missed in L2")
	}
}

func TestMissRatio(t *testing.T) {
	p := testParams()
	h := NewHierarchy(p)
	if h.MissRatio() != 0 {
		t.Error("empty hierarchy MissRatio should be 0")
	}
	// Touch N distinct lines once each: all L2 misses.
	for i := 0; i < 1000; i++ {
		h.Touch(Addr(i * 32))
	}
	if r := h.MissRatio(); math.Abs(r-1) > 1e-9 {
		t.Errorf("cold MissRatio = %v, want 1", r)
	}
}

func TestHierarchyRandomVsStreamGap(t *testing.T) {
	// The motivating measurement (Section 2.1): reading N 4-byte words at
	// random locations is an order of magnitude slower than streaming the
	// same N words, because every random word drags in a whole line.
	// The paper measures 647/48 = 13.5x on the Pentium III.
	p := testParams()
	h := NewHierarchy(p)
	n := 1 * arch.MB
	seq := h.Stream(n)

	var rand float64
	r := workload.NewRNG(3)
	for i := 0; i < n/arch.WordBytes; i++ {
		rand += h.Touch(Addr(r.Intn(1 << 30)))
	}
	ratio := rand / seq
	if ratio < 8 || ratio > 40 {
		t.Errorf("random/sequential gap = %.2f, want order of the paper's 13.5x", ratio)
	}
}

// Property: Touch cost is always one of the legal ladder values
// (optionally plus a TLB penalty).
func TestTouchCostLadderProperty(t *testing.T) {
	p := testParams()
	h := NewHierarchy(p)
	legal := map[float64]bool{
		0:                                     true,
		p.B1MissPenaltyNs:                     true,
		p.B2MissPenaltyNs + p.B1MissPenaltyNs: true,
	}
	f := func(a uint32) bool {
		c := h.Touch(Addr(a))
		if legal[c] {
			return true
		}
		return legal[c-p.TLBMissPenaltyNs]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHierarchyTouchHot(b *testing.B) {
	h := NewHierarchy(testParams())
	h.Preload(0, 8*1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Touch(Addr((i % 256) * 32))
	}
}

func BenchmarkHierarchyTouchRandom(b *testing.B) {
	h := NewHierarchy(testParams())
	r := workload.NewRNG(1)
	addrs := make([]Addr, 1<<16)
	for i := range addrs {
		addrs[i] = Addr(r.Intn(64 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Touch(addrs[i&(1<<16-1)])
	}
}
