package memsim

import (
	"testing"

	"repro/internal/arch"
)

func TestCacheInstallSkipsCounters(t *testing.T) {
	c := NewCache(1024, 32, 4)
	c.Install(0)
	c.Install(32)
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Fatalf("Install touched counters: hits=%d misses=%d", c.Hits(), c.Misses())
	}
	if !c.Contains(0) || !c.Contains(32) {
		t.Fatal("Install did not make lines resident")
	}
	// Installed lines participate in LRU like any other.
	if !c.Access(0) {
		t.Fatal("installed line should hit")
	}
}

func TestCacheInstallEvictsLRU(t *testing.T) {
	c := NewCache(2*32, 32, 2) // 1 set, 2 ways
	c.Install(0)
	c.Install(32)
	c.Install(64) // evicts line 0 (LRU)
	if c.Contains(0) {
		t.Fatal("Install did not evict LRU")
	}
	if !c.Contains(32) || !c.Contains(64) {
		t.Fatal("resident set wrong after Install eviction")
	}
}

func TestInstallQuietPollutesWithoutCost(t *testing.T) {
	p := arch.PentiumIIICluster()
	h := NewHierarchy(p)
	h.Preload(1<<30, p.L2Size/2)
	before := h.C

	// InstallQuiet a full-L2 region: residency changes, counters don't.
	h.InstallQuiet(0, p.L2Size)
	if h.C != before {
		t.Fatalf("InstallQuiet changed counters: %+v -> %+v", before, h.C)
	}
	evicted := 0
	for off := 0; off < p.L2Size/2; off += p.L2Line {
		if !h.L2.Contains(Addr(1<<30 + off)) {
			evicted++
		}
	}
	if evicted == 0 {
		t.Fatal("InstallQuiet caused no pollution")
	}
}

func TestPreloadMidRunIsCounterNeutral(t *testing.T) {
	p := arch.PentiumIIICluster()
	h := NewHierarchy(p)
	// Accumulate some real counters first.
	for i := 0; i < 100; i++ {
		h.Touch(Addr(i * 32))
	}
	before := h.C
	h.Preload(1<<20, 64<<10)
	if h.C != before {
		t.Fatalf("mid-run Preload changed counters: %+v -> %+v", before, h.C)
	}
	// The preloaded region must be L2- and TLB-resident. The region is
	// larger than L1, so early lines may pay a B1 fill, but never a B2
	// miss or a TLB walk.
	if cost := h.Touch(1 << 20); cost > p.B1MissPenaltyNs {
		t.Fatalf("preloaded line cost %v, want <= B1 penalty %v", cost, p.B1MissPenaltyNs)
	}
	// The tail of the preload is still L1-hot: free.
	if cost := h.Touch(Addr(1<<20 + 64<<10 - 32)); cost != 0 {
		t.Fatalf("preload tail cost %v, want 0", cost)
	}
}
