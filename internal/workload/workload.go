// Package workload generates the key sets and query streams used by every
// experiment in the paper. Both the keys that build the index and the
// search keys are "randomly generated" (Section 4); we use a seeded
// splitmix64 generator so every experiment is reproducible bit-for-bit
// across runs and hosts.
//
// The package also provides a Zipf-distributed query stream. The paper's
// queries are uniform, but skewed streams are the interesting ablation
// for a range-partitioned index (they concentrate load on one slave), and
// the examples use them to demonstrate the master's load visibility.
package workload

import (
	"fmt"
	"math"
	"sort"
)

// Key is a 4-byte search key, the unit the paper indexes (Table 1:
// "Search Key Size: 4 bytes"). The full key space [0, 2^32) plays the
// role of the paper's [0.0, 1.0] index range.
type Key uint32

// KeyBytes is the wire size of one key.
const KeyBytes = 4

// RNG is a splitmix64 pseudo-random generator. It is deliberately tiny:
// the simulators create one per node so that per-node streams are
// independent yet reproducible, and value receivers make snapshotting
// trivial in tests.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64-bit value (splitmix64 step).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Key returns the next uniformly distributed key.
func (r *RNG) Key() Key {
	return Key(r.Uint64() >> 32)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("workload: Intn(%d) with non-positive bound", n))
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// SortedKeys returns n distinct keys in strictly increasing order,
// suitable for building an index. Distinctness keeps rank semantics
// unambiguous across the five index implementations. It panics if n
// exceeds the key space.
func SortedKeys(n int, seed uint64) []Key {
	if n < 0 {
		panic(fmt.Sprintf("workload: SortedKeys(%d) with negative count", n))
	}
	if uint64(n) > 1<<32 {
		panic(fmt.Sprintf("workload: SortedKeys(%d) exceeds the 2^32 key space", n))
	}
	r := NewRNG(seed)
	seen := make(map[Key]struct{}, n)
	keys := make([]Key, 0, n)
	for len(keys) < n {
		k := r.Key()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// EvenKeys returns n keys evenly spaced over the key space. Evenly
// spaced index keys make partition sizes exactly equal, which is the
// regime the paper's equal-size-partition assumption (Section 3.2)
// describes; tests use it when they need exact arithmetic.
func EvenKeys(n int) []Key {
	if n <= 0 {
		return nil
	}
	keys := make([]Key, n)
	step := float64(1<<32) / float64(n)
	for i := range keys {
		v := uint64(float64(i)*step + step/2)
		if v > math.MaxUint32 {
			v = math.MaxUint32
		}
		keys[i] = Key(v)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] { // guard against rounding collisions
			keys[i] = keys[i-1] + 1
		}
	}
	return keys
}

// UniformQueries returns q uniformly random search keys (the paper's
// query stream: "8 million (2^23) random search keys").
func UniformQueries(q int, seed uint64) []Key {
	if q < 0 {
		panic(fmt.Sprintf("workload: UniformQueries(%d) with negative count", q))
	}
	r := NewRNG(seed)
	out := make([]Key, q)
	for i := range out {
		out[i] = r.Key()
	}
	return out
}

// ZipfQueries returns q search keys drawn with Zipf-like skew over the
// index keys: rank r of the index is chosen with probability
// proportional to 1/(r+1)^s, and the query is a key that routes to that
// index entry. s=0 degenerates to uniform over entries. The generator
// uses rejection-free inverse-CDF sampling over a precomputed table, so
// it is deterministic for a given seed.
func ZipfQueries(q int, indexKeys []Key, s float64, seed uint64) []Key {
	if q < 0 {
		panic(fmt.Sprintf("workload: ZipfQueries(%d) with negative count", q))
	}
	if len(indexKeys) == 0 {
		panic("workload: ZipfQueries with empty index")
	}
	if s < 0 {
		panic(fmt.Sprintf("workload: ZipfQueries with negative skew %v", s))
	}
	// Cumulative distribution over index ranks.
	cdf := make([]float64, len(indexKeys))
	sum := 0.0
	for i := range cdf {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	r := NewRNG(seed)
	out := make([]Key, q)
	for i := range out {
		u := r.Float64()
		rank := sort.SearchFloat64s(cdf, u)
		if rank >= len(indexKeys) {
			rank = len(indexKeys) - 1
		}
		out[i] = indexKeys[rank]
	}
	return out
}

// Batches cuts queries into consecutive batches of batchKeys keys each
// (the last batch may be short). batchKeys <= 0 yields a single batch.
// The slices alias the input; callers must not mutate them.
func Batches(queries []Key, batchKeys int) [][]Key {
	if batchKeys <= 0 || batchKeys >= len(queries) {
		if len(queries) == 0 {
			return nil
		}
		return [][]Key{queries}
	}
	n := (len(queries) + batchKeys - 1) / batchKeys
	out := make([][]Key, 0, n)
	for start := 0; start < len(queries); start += batchKeys {
		end := start + batchKeys
		if end > len(queries) {
			end = len(queries)
		}
		out = append(out, queries[start:end])
	}
	return out
}

// BatchKeysForBytes converts a batch size expressed in bytes (the x-axis
// of Figure 3) into a key count. It rounds down but never below 1.
func BatchKeysForBytes(batchBytes int) int {
	n := batchBytes / KeyBytes
	if n < 1 {
		n = 1
	}
	return n
}

// Figure3BatchBytes returns the exact batch-size sweep of Figure 3:
// 8 KB, 16 KB, ..., 4 MB (powers of two).
func Figure3BatchBytes() []int {
	sizes := make([]int, 0, 10)
	for b := 8 << 10; b <= 4<<20; b <<= 1 {
		sizes = append(sizes, b)
	}
	return sizes
}

// ReferenceRank returns the number of index keys <= k, computed by
// binary search over the sorted key slice. Every index structure in
// internal/index must agree with this definition; tests and the engines
// use it as the ground truth.
func ReferenceRank(keys []Key, k Key) int {
	return sort.Search(len(keys), func(i int) bool { return keys[i] > k })
}
