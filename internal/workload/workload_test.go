package workload

import (
	"math"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical values in 100 draws", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d", v)
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestSortedKeysSortedAndDistinct(t *testing.T) {
	keys := SortedKeys(50000, 1)
	if len(keys) != 50000 {
		t.Fatalf("len = %d", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatalf("keys not strictly increasing at %d: %d <= %d", i, keys[i], keys[i-1])
		}
	}
}

func TestSortedKeysDeterministic(t *testing.T) {
	a := SortedKeys(1000, 5)
	b := SortedKeys(1000, 5)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("SortedKeys not deterministic for fixed seed")
	}
	c := SortedKeys(1000, 6)
	if reflect.DeepEqual(a, c) {
		t.Fatal("SortedKeys identical across different seeds")
	}
}

func TestSortedKeysEmpty(t *testing.T) {
	if got := SortedKeys(0, 1); len(got) != 0 {
		t.Fatalf("SortedKeys(0) = %v", got)
	}
}

func TestEvenKeysSpacing(t *testing.T) {
	keys := EvenKeys(1024)
	if len(keys) != 1024 {
		t.Fatalf("len = %d", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatalf("EvenKeys not strictly increasing at %d", i)
		}
	}
	// Spacing should be within 1 of uniform.
	step := float64(1<<32) / 1024
	for i := 1; i < len(keys); i++ {
		gap := float64(keys[i]) - float64(keys[i-1])
		if math.Abs(gap-step) > 2 {
			t.Fatalf("gap at %d = %v, want ~%v", i, gap, step)
		}
	}
}

func TestEvenKeysDegenerate(t *testing.T) {
	if got := EvenKeys(0); got != nil {
		t.Errorf("EvenKeys(0) = %v, want nil", got)
	}
	if got := EvenKeys(1); len(got) != 1 {
		t.Errorf("EvenKeys(1) = %v", got)
	}
}

func TestUniformQueriesDeterministicAndRoughlyUniform(t *testing.T) {
	q := UniformQueries(100000, 3)
	if !reflect.DeepEqual(q, UniformQueries(100000, 3)) {
		t.Fatal("UniformQueries not deterministic")
	}
	// Mean of uniform uint32 should be near 2^31.
	var sum float64
	for _, k := range q {
		sum += float64(k)
	}
	mean := sum / float64(len(q))
	want := float64(uint64(1) << 31)
	if math.Abs(mean-want)/want > 0.02 {
		t.Errorf("mean = %v, want within 2%% of %v", mean, want)
	}
}

func TestZipfQueriesSkewConcentratesMass(t *testing.T) {
	idx := EvenKeys(1000)
	q := ZipfQueries(20000, idx, 1.2, 11)
	counts := map[Key]int{}
	for _, k := range q {
		counts[k]++
	}
	// The most popular key under s=1.2 should take a visible share.
	top := 0
	for _, c := range counts {
		if c > top {
			top = c
		}
	}
	if top < len(q)/20 {
		t.Errorf("top key frequency %d of %d: not skewed enough for s=1.2", top, len(q))
	}
	// Uniform (s=0) should spread far more evenly.
	q0 := ZipfQueries(20000, idx, 0, 11)
	counts0 := map[Key]int{}
	for _, k := range q0 {
		counts0[k]++
	}
	top0 := 0
	for _, c := range counts0 {
		if c > top0 {
			top0 = c
		}
	}
	if top0 >= top {
		t.Errorf("uniform top %d >= skewed top %d", top0, top)
	}
}

func TestZipfQueriesDrawFromIndexKeys(t *testing.T) {
	idx := SortedKeys(100, 2)
	valid := map[Key]bool{}
	for _, k := range idx {
		valid[k] = true
	}
	for _, k := range ZipfQueries(5000, idx, 0.8, 4) {
		if !valid[k] {
			t.Fatalf("Zipf query %d not an index key", k)
		}
	}
}

func TestZipfQueriesPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty index":   func() { ZipfQueries(1, nil, 1, 1) },
		"negative skew": func() { ZipfQueries(1, EvenKeys(4), -1, 1) },
		"negative q":    func() { ZipfQueries(-1, EvenKeys(4), 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBatchesCoverInputExactly(t *testing.T) {
	q := UniformQueries(1000, 1)
	for _, bk := range []int{1, 3, 7, 100, 999, 1000, 2000} {
		var got []Key
		for _, b := range Batches(q, bk) {
			got = append(got, b...)
		}
		if !reflect.DeepEqual(got, q) {
			t.Fatalf("batchKeys=%d: concatenated batches differ from input", bk)
		}
	}
}

func TestBatchesSizes(t *testing.T) {
	q := UniformQueries(1000, 1)
	bs := Batches(q, 300)
	wantLens := []int{300, 300, 300, 100}
	if len(bs) != len(wantLens) {
		t.Fatalf("got %d batches, want %d", len(bs), len(wantLens))
	}
	for i, b := range bs {
		if len(b) != wantLens[i] {
			t.Errorf("batch %d has %d keys, want %d", i, len(b), wantLens[i])
		}
	}
}

func TestBatchesDegenerate(t *testing.T) {
	if got := Batches(nil, 10); got != nil {
		t.Errorf("Batches(nil) = %v", got)
	}
	q := UniformQueries(5, 1)
	if got := Batches(q, 0); len(got) != 1 || len(got[0]) != 5 {
		t.Errorf("Batches(q, 0) = %v, want single batch", got)
	}
}

func TestBatchKeysForBytes(t *testing.T) {
	if got := BatchKeysForBytes(8 << 10); got != 2048 {
		t.Errorf("8KB = %d keys, want 2048", got)
	}
	if got := BatchKeysForBytes(3); got != 1 {
		t.Errorf("3 bytes = %d keys, want 1 (floor clamp)", got)
	}
}

func TestFigure3BatchBytes(t *testing.T) {
	got := Figure3BatchBytes()
	want := []int{8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Figure3BatchBytes = %v, want %v", got, want)
	}
}

func TestReferenceRankAgainstLinearScan(t *testing.T) {
	keys := SortedKeys(500, 8)
	r := NewRNG(9)
	for i := 0; i < 2000; i++ {
		k := r.Key()
		want := 0
		for _, ik := range keys {
			if ik <= k {
				want++
			}
		}
		if got := ReferenceRank(keys, k); got != want {
			t.Fatalf("ReferenceRank(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestReferenceRankBoundaries(t *testing.T) {
	keys := []Key{10, 20, 30}
	cases := []struct {
		k    Key
		want int
	}{
		{0, 0}, {9, 0}, {10, 1}, {15, 1}, {20, 2}, {30, 3}, {31, 3}, {math.MaxUint32, 3},
	}
	for _, c := range cases {
		if got := ReferenceRank(keys, c.k); got != c.want {
			t.Errorf("ReferenceRank(%d) = %d, want %d", c.k, got, c.want)
		}
	}
	if got := ReferenceRank(nil, 5); got != 0 {
		t.Errorf("ReferenceRank(nil) = %d", got)
	}
}

// Property: ReferenceRank is monotone non-decreasing in the query key.
func TestReferenceRankMonotone(t *testing.T) {
	keys := SortedKeys(200, 3)
	f := func(a, b uint32) bool {
		ka, kb := Key(a), Key(b)
		if ka > kb {
			ka, kb = kb, ka
		}
		return ReferenceRank(keys, ka) <= ReferenceRank(keys, kb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: SortedKeys output is a sorted set for arbitrary small sizes.
func TestSortedKeysProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw % 512)
		keys := SortedKeys(n, seed)
		if len(keys) != n {
			return false
		}
		return sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
