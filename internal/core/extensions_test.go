package core

import (
	"math"
	"testing"
)

// Multi-master support quantifies the paper's Section 3.2 remark: "if
// there is a heavy load of incoming queries, a single master node could
// become overloaded. This is easily remedied by setting up multiple
// master nodes."

func TestSecondMasterRelievesMasterBottleneck(t *testing.T) {
	// At large batches with Myrinet, the single master's NIC is the
	// pipeline bottleneck; a second master (with its own NIC) must
	// improve the total. Keep everything else fixed.
	one := paperCfg(MethodC3, 256<<10, 600_000)
	two := one
	two.Masters = 2
	r1 := mustRun(t, one)
	r2 := mustRun(t, two)
	if r2.NormalizedSec >= r1.NormalizedSec {
		t.Errorf("2 masters (%.4f) should beat 1 master (%.4f) when master-bound",
			r2.NormalizedSec, r1.NormalizedSec)
	}
	// And the per-master busy fraction must drop.
	if r2.MasterBusyFrac >= r1.MasterBusyFrac {
		t.Errorf("per-master busy with 2 masters (%.2f) should drop below 1 master (%.2f)",
			r2.MasterBusyFrac, r1.MasterBusyFrac)
	}
}

func TestManyMastersHitSlaveCapacity(t *testing.T) {
	// With masters no longer the bottleneck, adding more must saturate
	// at the slaves' aggregate capacity: 4 -> 8 masters buys little.
	cfg4 := paperCfg(MethodC3, 128<<10, 400_000)
	cfg4.Masters = 4
	cfg8 := cfg4
	cfg8.Masters = 8
	r4 := mustRun(t, cfg4)
	r8 := mustRun(t, cfg8)
	if gain := (r4.NormalizedSec - r8.NormalizedSec) / r4.NormalizedSec; gain > 0.10 {
		t.Errorf("8 masters still gained %.0f%% over 4; slaves should bind by then", gain*100)
	}
}

// Turnaround: the response-time criterion of the Figure 3 discussion.

func TestTurnaroundGrowsWithBatchSize(t *testing.T) {
	small := mustRun(t, paperCfg(MethodC3, 16<<10, 200_000))
	big := mustRun(t, paperCfg(MethodC3, 1<<20, 0))
	if small.TurnaroundP50Ns <= 0 || big.TurnaroundP50Ns <= 0 {
		t.Fatalf("turnaround not populated: %v / %v", small.TurnaroundP50Ns, big.TurnaroundP50Ns)
	}
	if big.TurnaroundP50Ns < 10*small.TurnaroundP50Ns {
		t.Errorf("64x bigger batches should cost >=10x turnaround: %.0f vs %.0f ns",
			big.TurnaroundP50Ns, small.TurnaroundP50Ns)
	}
	if small.TurnaroundP99Ns < small.TurnaroundP50Ns {
		t.Errorf("p99 (%v) below p50 (%v)", small.TurnaroundP99Ns, small.TurnaroundP50Ns)
	}
}

func TestPaperResponseTimeClaim(t *testing.T) {
	// "Methods C-2 and C-3 achieve this throughput with a batch size of
	// only 64 KB, while Method B requires a batch size of 256 KB": at
	// those operating points C-3 must deliver comparable throughput at
	// a fraction of B's batch turnaround.
	c := mustRun(t, paperCfg(MethodC3, 64<<10, 400_000))
	b := mustRun(t, paperCfg(MethodB, 256<<10, 524_288))
	if c.NormalizedSec > b.NormalizedSec*1.02 {
		t.Errorf("C-3@64KB throughput (%.3f) should match B@256KB (%.3f)",
			c.NormalizedSec, b.NormalizedSec)
	}
	if c.TurnaroundP50Ns >= b.TurnaroundP50Ns {
		t.Errorf("C-3@64KB turnaround (%.0f ns) should beat B@256KB (%.0f ns)",
			c.TurnaroundP50Ns, b.TurnaroundP50Ns)
	}
}

func TestMethodATurnaroundIsPerKey(t *testing.T) {
	r := mustRun(t, paperCfg(MethodA, 128<<10, 100_000))
	// A processes keys one by one: median turnaround is a single
	// lookup, hundreds of ns, not a batch time.
	if r.TurnaroundP50Ns <= 0 || r.TurnaroundP50Ns > 5_000 {
		t.Errorf("A per-key turnaround = %.0f ns, want O(500ns)", r.TurnaroundP50Ns)
	}
	b := mustRun(t, paperCfg(MethodB, 128<<10, 262_144))
	if b.TurnaroundP50Ns < 1000*r.TurnaroundP50Ns {
		t.Errorf("B's batch turnaround (%.0f) should dwarf A's per-key (%.0f)",
			b.TurnaroundP50Ns, r.TurnaroundP50Ns)
	}
}

// Skewed workloads: the ablation for the paper's uniform-keys assumption.

func TestSkewConcentratesSlaveLoad(t *testing.T) {
	uni := paperCfg(MethodC3, 64<<10, 300_000)
	skew := uni
	skew.Skew = 1.1
	ru := mustRun(t, uni)
	rs := mustRun(t, skew)
	if ru.LoadImbalance < 0.9 || ru.LoadImbalance > 1.2 {
		t.Errorf("uniform load imbalance = %.2f, want ~1.0", ru.LoadImbalance)
	}
	if rs.LoadImbalance < ru.LoadImbalance*1.5 {
		t.Errorf("skew 1.1 imbalance = %.2f, want far above uniform %.2f",
			rs.LoadImbalance, ru.LoadImbalance)
	}
	// The hot slave serializes the pipeline: skew must cost time.
	if rs.NormalizedSec <= ru.NormalizedSec {
		t.Errorf("skewed run (%.4f) should be slower than uniform (%.4f)",
			rs.NormalizedSec, ru.NormalizedSec)
	}
}

func TestSkewRejectedWhenNegative(t *testing.T) {
	cfg := paperCfg(MethodC3, 64<<10, 1000)
	cfg.Skew = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative skew accepted")
	}
}

func TestSkewDeterministic(t *testing.T) {
	cfg := paperCfg(MethodC3, 64<<10, 100_000)
	cfg.Skew = 0.9
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	if a != b {
		t.Error("skewed runs are not deterministic")
	}
}

func TestSkewWorksForLocalMethods(t *testing.T) {
	// Method B under skew: popular keys concentrate on few subtrees,
	// which can only help the cache. Just verify it runs and stays in a
	// sane band.
	cfg := paperCfg(MethodB, 128<<10, 131_072)
	cfg.Skew = 1.0
	r := mustRun(t, cfg)
	if r.NormalizedSec <= 0 || r.NormalizedSec > 0.5 {
		t.Errorf("B under skew = %.4f s", r.NormalizedSec)
	}
	uni := mustRun(t, paperCfg(MethodB, 128<<10, 131_072))
	if r.NormalizedSec > uni.NormalizedSec*1.05 {
		t.Errorf("skew should not hurt the replicated-index B: %.4f vs %.4f",
			r.NormalizedSec, uni.NormalizedSec)
	}
}

func TestMultiMasterDeterminism(t *testing.T) {
	cfg := paperCfg(MethodC3, 128<<10, 200_000)
	cfg.Masters = 3
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	if a != b {
		t.Error("multi-master runs are not deterministic")
	}
	if math.IsNaN(a.TurnaroundP50Ns) || a.TurnaroundP50Ns <= 0 {
		t.Errorf("turnaround = %v", a.TurnaroundP50Ns)
	}
}
