package core

import (
	"fmt"
	"sort"

	"repro/internal/workload"
)

// Partition is one slave's share of the index: a contiguous run of the
// sorted key array ("the sorted array is decomposed into equal size
// partitions and each partition is stored at a slave node", Section 3.2).
type Partition struct {
	// Slave is the owning slave's id, 0-based.
	Slave int
	// Keys aliases the owning run of the sorted array.
	Keys []workload.Key
	// RankBase is the global rank of the partition's first key minus
	// one: a local rank within the partition plus RankBase is the
	// global rank.
	RankBase int
}

// Partitioning is the full decomposition plus the master's dispatch
// structure: the sorted array of partition delimiters (Section 3.2,
// Figure 2).
type Partitioning struct {
	Parts []Partition
	// delims[i] is the first key of partition i+1; a query key routes
	// to the last partition whose range begins at or before it.
	delims []workload.Key
}

// NewPartitioning splits sorted keys into the given number of equal-size
// partitions. It returns an error for a non-positive count or more
// partitions than keys (a slave with an empty partition could never own
// a key range).
func NewPartitioning(keys []workload.Key, parts int) (*Partitioning, error) {
	if parts <= 0 {
		return nil, fmt.Errorf("core: partition count %d must be positive", parts)
	}
	if len(keys) < parts {
		return nil, fmt.Errorf("core: %d keys cannot fill %d partitions", len(keys), parts)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			return nil, fmt.Errorf("core: keys not sorted at %d", i)
		}
	}
	p := &Partitioning{
		Parts:  make([]Partition, parts),
		delims: make([]workload.Key, 0, parts-1),
	}
	for i := 0; i < parts; i++ {
		lo := i * len(keys) / parts
		hi := (i + 1) * len(keys) / parts
		p.Parts[i] = Partition{Slave: i, Keys: keys[lo:hi], RankBase: lo}
		if i > 0 {
			p.delims = append(p.delims, keys[lo])
		}
	}
	return p, nil
}

// Route returns the slave responsible for query key k: the last
// partition whose first key is <= k (keys below every delimiter belong
// to partition 0). This is the master's dispatch operation.
func (p *Partitioning) Route(k workload.Key) int {
	return sort.Search(len(p.delims), func(i int) bool { return p.delims[i] > k })
}

// Delimiters returns the master's dispatch array (len = partitions-1).
func (p *Partitioning) Delimiters() []workload.Key { return p.delims }

// DelimiterBytes returns the dispatch structure's footprint: the tiny
// sorted array that stays resident in the master's L1.
func (p *Partitioning) DelimiterBytes() int {
	return len(p.delims) * workload.KeyBytes
}

// GlobalRank composes a slave-local rank into a global one.
func (p *Partitioning) GlobalRank(slave, localRank int) int {
	return p.Parts[slave].RankBase + localRank
}

// MaxPartKeys returns the largest partition's key count, the value that
// must fit in a slave's cache.
func (p *Partitioning) MaxPartKeys() int {
	max := 0
	for _, part := range p.Parts {
		if len(part.Keys) > max {
			max = len(part.Keys)
		}
	}
	return max
}
