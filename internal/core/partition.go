package core

import (
	"fmt"

	"repro/internal/workload"
)

// Partition is one slave's share of the index: a contiguous run of the
// sorted key array ("the sorted array is decomposed into equal size
// partitions and each partition is stored at a slave node", Section 3.2).
type Partition struct {
	// Slave is the owning slave's id, 0-based.
	Slave int
	// Keys aliases the owning run of the sorted array.
	Keys []workload.Key
	// RankBase is the number of keys that precede this partition in the
	// sorted array: a local rank within the partition plus RankBase is
	// the global rank. (Under "rank = count of keys <= k" it is not the
	// global rank of the partition's first key minus one — that key's
	// global rank is RankBase plus its local rank, which exceeds
	// RankBase+1 when the partition starts with duplicates.)
	RankBase int
}

// Partitioning is the full decomposition plus the master's dispatch
// structure: the sorted array of partition delimiters (Section 3.2,
// Figure 2).
type Partitioning struct {
	Parts []Partition
	// delims[i] is the first key of partition i+1; a query key routes
	// to the last partition whose range begins at or before it.
	delims []workload.Key
}

// NewPartitioning splits sorted keys into the given number of equal-size
// partitions. It returns an error for a non-positive count or more
// partitions than keys (a slave with an empty partition could never own
// a key range).
func NewPartitioning(keys []workload.Key, parts int) (*Partitioning, error) {
	if err := checkSorted(keys); err != nil {
		return nil, err
	}
	return newPartitioningSorted(keys, parts)
}

// checkSorted is the single sortedness validation pass shared by
// NewPartitioning and NewCluster (which passes already-validated keys to
// newPartitioningSorted so the O(n) scan runs once, not twice).
func checkSorted(keys []workload.Key) error {
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			return fmt.Errorf("core: keys not sorted at %d", i)
		}
	}
	return nil
}

// newPartitioningSorted is NewPartitioning minus the sortedness scan;
// the caller guarantees keys are ascending.
func newPartitioningSorted(keys []workload.Key, parts int) (*Partitioning, error) {
	if parts <= 0 {
		return nil, fmt.Errorf("core: partition count %d must be positive", parts)
	}
	if len(keys) < parts {
		return nil, fmt.Errorf("core: %d keys cannot fill %d partitions", len(keys), parts)
	}
	p := &Partitioning{
		Parts:  make([]Partition, parts),
		delims: make([]workload.Key, 0, parts-1),
	}
	for i := 0; i < parts; i++ {
		lo := i * len(keys) / parts
		hi := (i + 1) * len(keys) / parts
		p.Parts[i] = Partition{Slave: i, Keys: keys[lo:hi], RankBase: lo}
		if i > 0 {
			p.delims = append(p.delims, keys[lo])
		}
	}
	return p, nil
}

// SplitPoint picks the cut index nearest the median of sorted keys
// that separates two distinct values (keys[cut-1] < keys[cut]), the
// precondition for splitting a partition there: a delimiter must never
// fall inside a duplicate run, or upper-bound routing would send
// copies of one key to two owners. ok is false when every key is equal
// (no legal cut exists).
func SplitPoint(keys []workload.Key) (cut int, ok bool) {
	mid := len(keys) / 2
	for d := 0; d < len(keys); d++ {
		for _, c := range [2]int{mid - d, mid + d} {
			if c >= 1 && c < len(keys) && keys[c-1] < keys[c] {
				return c, true
			}
		}
	}
	return 0, false
}

// SplitAt returns a new Partitioning with partition part divided at
// cut: the low half keeps keys[:cut] and part's rank base, the high
// half serves keys[cut:] at RankBase+cut, and every later partition's
// Slave id shifts up by one. The cut must separate distinct keys (see
// SplitPoint). The receiver is not modified — callers swap the
// returned table in atomically.
func (p *Partitioning) SplitAt(part, cut int) (*Partitioning, error) {
	if part < 0 || part >= len(p.Parts) {
		return nil, fmt.Errorf("core: split partition %d out of range [0,%d)", part, len(p.Parts))
	}
	keys := p.Parts[part].Keys
	if cut <= 0 || cut >= len(keys) {
		return nil, fmt.Errorf("core: split cut %d out of range (0,%d)", cut, len(keys))
	}
	if keys[cut-1] >= keys[cut] {
		return nil, fmt.Errorf("core: split cut %d falls inside a duplicate run of key %d", cut, keys[cut])
	}
	np := &Partitioning{
		Parts:  make([]Partition, 0, len(p.Parts)+1),
		delims: make([]workload.Key, 0, len(p.delims)+1),
	}
	for i, old := range p.Parts {
		if i == part {
			np.Parts = append(np.Parts,
				Partition{Slave: len(np.Parts), Keys: keys[:cut], RankBase: old.RankBase},
				Partition{Slave: len(np.Parts) + 1, Keys: keys[cut:], RankBase: old.RankBase + cut})
		} else {
			np.Parts = append(np.Parts, Partition{Slave: len(np.Parts), Keys: old.Keys, RankBase: old.RankBase})
		}
	}
	for _, q := range np.Parts[1:] {
		np.delims = append(np.delims, q.Keys[0])
	}
	return np, nil
}

// routeLinearMax is the delimiter count up to which Route counts
// linearly instead of binary-searching: a branchless compare-and-add
// over an L1-resident array beats a search with data-dependent branches
// until the array spans several cache lines.
const routeLinearMax = 64

// Route returns the slave responsible for query key k: the last
// partition whose first key is <= k (keys below every delimiter belong
// to partition 0). This is the master's dispatch operation, executed
// once per query, so it is inlined rather than a sort.Search closure.
// Typical clusters (tens of slaves) take the branchless linear count —
// every iteration is a flag-setting compare plus add, nothing to
// mispredict; larger delimiter arrays use a branchless upper-bound
// binary search (conditional-move half-interval updates, no mid-point
// division).
func (p *Partitioning) Route(k workload.Key) int {
	d := p.delims
	if len(d) <= routeLinearMax {
		s := 0
		for _, v := range d {
			if v <= k {
				s++
			}
		}
		return s
	}
	lo, n := 0, len(d)
	for n > 1 {
		half := n >> 1
		if d[lo+half-1] <= k {
			lo += half
		}
		n -= half
	}
	if n == 1 && d[lo] <= k {
		lo++
	}
	return lo
}

// Delimiters returns the master's dispatch array (len = partitions-1).
func (p *Partitioning) Delimiters() []workload.Key { return p.delims }

// DelimiterBytes returns the dispatch structure's footprint: the tiny
// sorted array that stays resident in the master's L1.
func (p *Partitioning) DelimiterBytes() int {
	return len(p.delims) * workload.KeyBytes
}

// GlobalRank composes a slave-local rank into a global one.
func (p *Partitioning) GlobalRank(slave, localRank int) int {
	return p.Parts[slave].RankBase + localRank
}

// MaxPartKeys returns the largest partition's key count, the value that
// must fit in a slave's cache.
func (p *Partitioning) MaxPartKeys() int {
	max := 0
	for _, part := range p.Parts {
		if len(part.Keys) > max {
			max = len(part.Keys)
		}
	}
	return max
}
