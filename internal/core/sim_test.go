package core

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/workload"
)

func pentium() arch.Params { return arch.PentiumIIICluster() }

// paperCfg returns the Section 4 configuration with a reduced simulation
// sample so tests stay fast; the extrapolated numbers are steady-state.
func paperCfg(m Method, batchBytes, sample int) SimConfig {
	return SimConfig{
		P:             pentium(),
		Method:        m,
		IndexKeys:     workload.EvenKeys(327680),
		TotalQueries:  1 << 23,
		QuerySeed:     42,
		BatchBytes:    batchBytes,
		Masters:       1,
		Slaves:        10,
		SampleQueries: sample,
	}
}

func mustRun(t *testing.T, cfg SimConfig) SimReport {
	t.Helper()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestMethodAMatchesPaperExperiment(t *testing.T) {
	// Paper Table 3: Method A experimental 0.39 s (normalized).
	r := mustRun(t, paperCfg(MethodA, 128<<10, 150_000))
	if r.NormalizedSec < 0.33 || r.NormalizedSec > 0.46 {
		t.Errorf("Method A = %.3fs, want ~0.39s (Table 3 experiment)", r.NormalizedSec)
	}
	// The model predicts ~1.3 steady-state L2 misses per lookup for
	// this tree; the trace simulation must agree closely.
	if r.L2MissesPerKey < 1.0 || r.L2MissesPerKey > 1.7 {
		t.Errorf("A L2 misses/key = %.2f, want ~1.3 (Appendix A)", r.L2MissesPerKey)
	}
	// Method A has TLB pressure (3 MB tree vs 256 KB TLB reach).
	if r.TLBMissesPerKey < 0.5 {
		t.Errorf("A TLB misses/key = %.2f, expected significant TLB pressure", r.TLBMissesPerKey)
	}
}

func TestMethodAFlatAcrossBatchSizes(t *testing.T) {
	a8 := mustRun(t, paperCfg(MethodA, 8<<10, 100_000))
	a1m := mustRun(t, paperCfg(MethodA, 1<<20, 100_000))
	rel := math.Abs(a8.NormalizedSec-a1m.NormalizedSec) / a8.NormalizedSec
	if rel > 0.02 {
		t.Errorf("Method A varies %.1f%% with batch size; must be flat", rel*100)
	}
}

func TestMethodBMatchesPaperExperiment(t *testing.T) {
	// Paper Table 3: Method B experimental 0.36 s at 128 KB.
	r := mustRun(t, paperCfg(MethodB, 128<<10, 262_144))
	if r.NormalizedSec < 0.27 || r.NormalizedSec > 0.42 {
		t.Errorf("Method B = %.3fs, want ~0.36s (Table 3 experiment)", r.NormalizedSec)
	}
}

func TestMethodBImprovesWithBatchSize(t *testing.T) {
	prev := math.Inf(1)
	for _, b := range []int{8 << 10, 64 << 10, 256 << 10} {
		r := mustRun(t, paperCfg(MethodB, b, 262_144))
		if r.NormalizedSec >= prev {
			t.Errorf("B at %d = %.3fs did not improve on %.3fs", b, r.NormalizedSec, prev)
		}
		prev = r.NormalizedSec
	}
}

func TestMethodBBeatsAAtModerateBatch(t *testing.T) {
	a := mustRun(t, paperCfg(MethodA, 128<<10, 100_000))
	b := mustRun(t, paperCfg(MethodB, 128<<10, 262_144))
	if b.NormalizedSec >= a.NormalizedSec {
		t.Errorf("B (%.3f) should beat A (%.3f) at 128KB (Figure 3)", b.NormalizedSec, a.NormalizedSec)
	}
}

func TestMethodC3MatchesPaperExperiment(t *testing.T) {
	// Paper Table 3: C-3 experimental 0.32 s at 128 KB; Figure 3 shows
	// ~0.24-0.28 around the 64-128 KB sweet spot.
	r := mustRun(t, paperCfg(MethodC3, 128<<10, 400_000))
	if r.NormalizedSec < 0.20 || r.NormalizedSec > 0.34 {
		t.Errorf("C-3 at 128KB = %.3fs, want ~0.25-0.32s (Table 3/Figure 3)", r.NormalizedSec)
	}
	if r.Messages == 0 || r.BytesOnWire == 0 {
		t.Error("C-3 must report network traffic")
	}
}

func TestMethodCLosesAtTinyBatches(t *testing.T) {
	// Figure 3: "If a batch size is 16 KB or less, Methods C-1, C-2,
	// and C-3 are worse than method B and method A."
	a := mustRun(t, paperCfg(MethodA, 8<<10, 100_000))
	c := mustRun(t, paperCfg(MethodC3, 8<<10, 200_000))
	if c.NormalizedSec <= a.NormalizedSec {
		t.Errorf("C-3 at 8KB (%.3f) should lose to A (%.3f)", c.NormalizedSec, a.NormalizedSec)
	}
}

func TestMethodCWinsAtModerateBatches(t *testing.T) {
	// Figure 3: "Methods C are significantly faster even for the
	// relatively small batch sizes of 32 KB and 64 KB. We observe a 22%
	// reduction in run time with this configuration."
	a := mustRun(t, paperCfg(MethodA, 64<<10, 100_000))
	b := mustRun(t, paperCfg(MethodB, 64<<10, 262_144))
	c := mustRun(t, paperCfg(MethodC3, 64<<10, 400_000))
	if c.NormalizedSec >= a.NormalizedSec || c.NormalizedSec >= b.NormalizedSec {
		t.Errorf("C-3 at 64KB (%.3f) should beat A (%.3f) and B (%.3f)",
			c.NormalizedSec, a.NormalizedSec, b.NormalizedSec)
	}
	reduction := 1 - c.NormalizedSec/math.Min(a.NormalizedSec, b.NormalizedSec)
	if reduction < 0.15 {
		t.Errorf("C-3 reduction at 64KB = %.0f%%, paper reports ~22%%", reduction*100)
	}
}

func TestSlaveIdleFractionsMatchSection41(t *testing.T) {
	// Section 4.1: "slaves were idle for 50% of the time for 8 KB batch
	// sizes, and 20% of the time for 4 MB."
	small := mustRun(t, paperCfg(MethodC3, 8<<10, 200_000))
	if small.SlaveIdleFrac < 0.30 || small.SlaveIdleFrac > 0.65 {
		t.Errorf("idle at 8KB = %.0f%%, paper reports ~50%%", small.SlaveIdleFrac*100)
	}
	big := mustRun(t, paperCfg(MethodC3, 4<<20, 0))
	if big.SlaveIdleFrac > small.SlaveIdleFrac {
		t.Errorf("idle at 4MB (%.0f%%) should be below idle at 8KB (%.0f%%)",
			big.SlaveIdleFrac*100, small.SlaveIdleFrac*100)
	}
	if big.SlaveIdleFrac > 0.35 {
		t.Errorf("idle at 4MB = %.0f%%, paper reports ~20%%", big.SlaveIdleFrac*100)
	}
}

func TestCVariantsStaySimilar(t *testing.T) {
	// Figure 3: the three C curves nearly coincide ("Methods C-1 and
	// C-2 follows the same trend as Method C-3 ... slightly worse").
	c1 := mustRun(t, paperCfg(MethodC1, 64<<10, 300_000))
	c2 := mustRun(t, paperCfg(MethodC2, 64<<10, 300_000))
	c3 := mustRun(t, paperCfg(MethodC3, 64<<10, 300_000))
	max := math.Max(c1.NormalizedSec, math.Max(c2.NormalizedSec, c3.NormalizedSec))
	min := math.Min(c1.NormalizedSec, math.Min(c2.NormalizedSec, c3.NormalizedSec))
	if (max-min)/min > 0.10 {
		t.Errorf("C variants spread %.0f%%: C1=%.3f C2=%.3f C3=%.3f",
			(max-min)/min*100, c1.NormalizedSec, c2.NormalizedSec, c3.NormalizedSec)
	}
}

func TestResponseTimeCriterion(t *testing.T) {
	// Figure 3 discussion: C-3 achieves with a 64 KB batch what B needs
	// a 256 KB batch for — the joint throughput/response-time claim.
	c := mustRun(t, paperCfg(MethodC3, 64<<10, 400_000))
	b := mustRun(t, paperCfg(MethodB, 256<<10, 524_288))
	if c.NormalizedSec > b.NormalizedSec*1.02 {
		t.Errorf("C-3 at 64KB (%.3f) should match/beat B at 256KB (%.3f)",
			c.NormalizedSec, b.NormalizedSec)
	}
}

func TestContentionRaisesSlaveL2MissesAtLargeBatches(t *testing.T) {
	// Section 4.1's contention mechanism: once per-slave messages rival
	// the cache, the arriving batch plus the next one evict the
	// partition, so slave L2 misses per key must rise with batch size
	// for the tree-based slave (300 KB footprint).
	small := mustRun(t, paperCfg(MethodC1, 64<<10, 300_000))
	large := mustRun(t, paperCfg(MethodC1, 4<<20, 0))
	if large.L2MissesPerKey <= small.L2MissesPerKey {
		t.Errorf("C-1 L2 misses/key at 4MB (%.3f) should exceed 64KB (%.3f)",
			large.L2MissesPerKey, small.L2MissesPerKey)
	}
	// And the array-based slave must suffer less than the tree-based
	// one at the same batch size (the C-3 over C-1 argument).
	c3 := mustRun(t, paperCfg(MethodC3, 4<<20, 0))
	if c3.L2MissesPerKey >= large.L2MissesPerKey {
		t.Errorf("C-3 misses at 4MB (%.3f) should be below C-1's (%.3f)",
			c3.L2MissesPerKey, large.L2MissesPerKey)
	}
}

func TestSimDeterminism(t *testing.T) {
	a := mustRun(t, paperCfg(MethodC3, 32<<10, 100_000))
	b := mustRun(t, paperCfg(MethodC3, 32<<10, 100_000))
	if a != b {
		t.Errorf("identical configs produced different reports:\n%+v\n%+v", a, b)
	}
}

func TestSimSeedSensitivityIsSmall(t *testing.T) {
	cfg1 := paperCfg(MethodC3, 64<<10, 200_000)
	cfg2 := cfg1
	cfg2.QuerySeed = 1234
	r1 := mustRun(t, cfg1)
	r2 := mustRun(t, cfg2)
	rel := math.Abs(r1.NormalizedSec-r2.NormalizedSec) / r1.NormalizedSec
	if rel > 0.05 {
		t.Errorf("seed changed the result by %.1f%%; uniform workloads should be stable", rel*100)
	}
}

func TestSampleExtrapolationConsistent(t *testing.T) {
	// Doubling the simulated sample must not move the steady-state
	// estimate by more than a few percent.
	small := mustRun(t, paperCfg(MethodC3, 32<<10, 150_000))
	big := mustRun(t, paperCfg(MethodC3, 32<<10, 300_000))
	rel := math.Abs(small.NormalizedSec-big.NormalizedSec) / big.NormalizedSec
	if rel > 0.05 {
		t.Errorf("extrapolation unstable: %.3f vs %.3f (%.1f%%)",
			small.NormalizedSec, big.NormalizedSec, rel*100)
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	if _, err := Run(SimConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestReportStringMentionsMethodAndBatch(t *testing.T) {
	r := SimReport{Method: MethodC3, BatchBytes: 128 << 10, NormalizedSec: 0.3}
	s := r.String()
	for _, want := range []string{"C-3", "128KB"} {
		if !contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		}())
}
