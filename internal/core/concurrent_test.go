package core

import (
	"sort"
	"sync"
	"testing"

	"repro/internal/workload"
)

// The tentpole guarantee: N goroutines issuing overlapping batches
// through one cluster — across all five methods — all receive exactly
// the serial reference ranks. Run under -race this also proves the
// per-call gather state keeps callers fully isolated.
func TestConcurrentLookupBatchAllMethods(t *testing.T) {
	keys := workload.SortedKeys(20000, 11)
	const callers = 6
	const rounds = 4
	for _, m := range Methods() {
		t.Run(m.String(), func(t *testing.T) {
			c := newTestCluster(t, m, keys, 5, 512)
			var wg sync.WaitGroup
			errs := make(chan error, callers)
			for g := 0; g < callers; g++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					out := make([]int, 0)
					for r := 0; r < rounds; r++ {
						queries := workload.UniformQueries(2500+int(seed), seed*10+uint64(r))
						if cap(out) < len(queries) {
							out = make([]int, len(queries))
						}
						out = out[:len(queries)]
						if err := c.LookupBatchInto(queries, out); err != nil {
							errs <- err
							return
						}
						for i, q := range queries {
							if out[i] != workload.ReferenceRank(keys, q) {
								errs <- errWrongRank
								return
							}
						}
					}
				}(uint64(g))
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}

// Close must block until in-flight calls complete (they finish with
// correct results), and late calls must fail cleanly.
func TestCloseWhileCallsInFlight(t *testing.T) {
	keys := workload.SortedKeys(30000, 12)
	c, err := NewCluster(keys, RealConfig{Method: MethodC3, Workers: 4, BatchKeys: 256, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	const callers = 5
	var wg sync.WaitGroup
	started := make(chan struct{}, callers)
	errs := make(chan error, callers)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			queries := workload.UniformQueries(60000, seed)
			started <- struct{}{}
			got, err := c.LookupBatch(queries)
			if err != nil {
				errs <- err
				return
			}
			for i, q := range queries {
				if got[i] != workload.ReferenceRank(keys, q) {
					errs <- errWrongRank
					return
				}
			}
		}(uint64(g))
	}
	for g := 0; g < callers; g++ {
		<-started
	}
	c.Close() // blocks until the in-flight batches drain
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if _, err := c.LookupBatch(workload.UniformQueries(10, 1)); err == nil {
		t.Fatal("lookup after Close succeeded")
	}
	c.Close() // still idempotent
}

func TestLookupBatchIntoShortOut(t *testing.T) {
	keys := workload.SortedKeys(1000, 13)
	c := newTestCluster(t, MethodC3, keys, 2, 64)
	if err := c.LookupBatchInto(workload.UniformQueries(10, 1), make([]int, 9)); err == nil {
		t.Fatal("short out slice accepted")
	}
}

func TestEytzingerLayoutCluster(t *testing.T) {
	keys := workload.SortedKeys(20000, 14)
	queries := workload.UniformQueries(30000, 15)
	c, err := NewCluster(keys, RealConfig{
		Method: MethodC3, Workers: 7, BatchKeys: 1024, QueueDepth: 4,
		Layout: LayoutEytzinger,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := c.LookupBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		if got[i] != workload.ReferenceRank(keys, q) {
			t.Fatalf("eytzinger layout: query %d (%d) = %d, want %d",
				i, q, got[i], workload.ReferenceRank(keys, q))
		}
	}
}

func TestEytzingerLayoutRequiresC3(t *testing.T) {
	keys := workload.SortedKeys(1000, 16)
	for _, m := range []Method{MethodA, MethodB, MethodC1, MethodC2} {
		cfg := DefaultRealConfig(m)
		cfg.Layout = LayoutEytzinger
		if _, err := NewCluster(keys, cfg); err == nil {
			t.Errorf("%v with LayoutEytzinger accepted", m)
		}
	}
	cfg := DefaultRealConfig(MethodC3)
	cfg.Layout = Layout(9)
	if _, err := NewCluster(keys, cfg); err == nil {
		t.Error("invalid layout accepted")
	}
}

// Route must agree with the sort.Search definition on both the linear
// (small) and binary (large) code paths.
func TestRouteMatchesSortSearch(t *testing.T) {
	for _, parts := range []int{1, 2, 7, 10, 64, 65, 100, 333} {
		keys := workload.SortedKeys(10*parts, uint64(parts))
		p, err := NewPartitioning(keys, parts)
		if err != nil {
			t.Fatal(err)
		}
		d := p.Delimiters()
		probes := workload.UniformQueries(2000, uint64(parts)+1)
		probes = append(probes, 0, ^workload.Key(0))
		for _, dk := range d {
			probes = append(probes, dk, dk-1, dk+1)
		}
		for _, q := range probes {
			want := sort.Search(len(d), func(i int) bool { return d[i] > q })
			if got := p.Route(q); got != want {
				t.Fatalf("parts=%d: Route(%d) = %d, want %d", parts, q, got, want)
			}
		}
	}
}

// The round-robin cursor must stay unbiased when it crosses 2^32: the
// old uint32 Add(1) % Workers skewed toward low workers at every wrap
// when Workers didn't divide 2^32. The cursor is 64-bit now, so the
// boundary is just another stretch of a perfectly fair cycle.
func TestNextWorkerUnbiasedAcrossWrap(t *testing.T) {
	for _, workers := range []int{3, 5, 7} {
		c := &Cluster{cfg: RealConfig{Workers: workers}}
		c.rr.Store((1 << 32) - 7)
		counts := make([]int, workers)
		draws := workers * 100
		for i := 0; i < draws; i++ {
			counts[c.nextWorker()]++
		}
		for w, got := range counts {
			if got != 100 {
				t.Fatalf("workers=%d: worker %d selected %d times across 2^32, want 100",
					workers, w, got)
			}
		}
	}
}
