package core

import "repro/internal/workload"

// This file is the master half of sorted-batch mode: detecting that a
// query batch is an ascending run, turning per-key routing into one
// binary search per partition boundary, and (for callers that opt in
// via RealConfig.SortedBatches) sorting an unsorted batch by key with a
// pooled radix sort so it can ride the same path. The slave half is
// index.SortedArray.RankSorted, the streaming merge kernel the sorted
// runs feed.

// SortedRun reports whether qs is ascending (duplicates allowed). On a
// sorted batch it costs one compare per key — the price of admission to
// the sorted dispatch path — and on a random batch it exits at the
// first inversion, typically within a handful of elements.
func SortedRun(qs []workload.Key) bool {
	for i := 1; i < len(qs); i++ {
		if qs[i] < qs[i-1] {
			return false
		}
	}
	return true
}

// LowerBoundKey returns the first index in qs whose key is >= k: the
// partition-boundary search the sorted dispatch runs once per delimiter
// instead of once per query.
func LowerBoundKey(qs []workload.Key, k workload.Key) int {
	lo, hi := 0, len(qs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if qs[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// ForEachSortedRun walks an ascending query run against the partition
// delimiters and emits each partition's chunked sub-runs: one call per
// (partition, [start, end)) chunk of at most batch keys. This is the
// single definition of the sorted dispatch's boundary semantics, shared
// by the in-process master and the TCP client so the two paths cannot
// drift: matching Partitioning.Route exactly, a key equal to delims[s]
// belongs to partition s+1 (Route counts delimiters <= key), so each
// partition's run ends at the lower bound of its delimiter in the
// remaining keys — one binary search per boundary, total
// O(parts * log n) instead of O(n) Route calls.
func ForEachSortedRun(delims, runKeys []workload.Key, batch int, emit func(part, start, end int)) {
	lo := 0
	for s := 0; s <= len(delims); s++ {
		hi := len(runKeys)
		if s < len(delims) {
			hi = lo + LowerBoundKey(runKeys[lo:], delims[s])
		}
		for start := lo; start < hi; start += batch {
			end := start + batch
			if end > hi {
				end = hi
			}
			emit(s, start, end)
		}
		lo = hi
	}
}

// RadixScratch is the pooled state for SortByKey: the packed
// (key, position) array, its ping-pong buffer, and the unpacked
// results. It lives in callState, so a call in steady state sorts with
// zero allocations.
type RadixScratch struct {
	packed  []uint64
	scratch []uint64
	keys    []workload.Key
	pos     []int32
}

// SortByKey stable-sorts queries ascending and returns the sorted run
// plus the permutation mapping sorted index -> original position. It is
// an LSD radix sort over the four key bytes of packed
// (key<<32 | position) words — O(n) with sequential passes, no
// comparisons — so an unsorted caller can buy into the sorted pipeline
// (streaming kernels, one-sweep routing, delta wire frames) for about
// the cost of one extra pass per byte. Constant bytes (a batch confined
// to a narrow key range) skip their pass entirely.
func (rs *RadixScratch) SortByKey(queries []workload.Key) ([]workload.Key, []int32) {
	n := len(queries)
	if cap(rs.packed) < n {
		rs.packed = make([]uint64, n)
		rs.scratch = make([]uint64, n)
		rs.keys = make([]workload.Key, n)
		rs.pos = make([]int32, n)
	}
	a, b := rs.packed[:n], rs.scratch[:n]
	var hist [4][256]uint32
	for i, q := range queries {
		v := uint64(q)<<32 | uint64(uint32(i))
		a[i] = v
		hist[0][byte(v>>32)]++
		hist[1][byte(v>>40)]++
		hist[2][byte(v>>48)]++
		hist[3][byte(v>>56)]++
	}
	for p := 0; p < 4; p++ {
		h := &hist[p]
		shift := uint(32 + 8*p)
		if n > 0 && h[byte(a[0]>>shift)] == uint32(n) {
			continue // every key shares this byte: nothing to move
		}
		sum := uint32(0)
		for i := range h {
			c := h[i]
			h[i] = sum
			sum += c
		}
		for _, v := range a {
			d := byte(v >> shift)
			b[h[d]] = v
			h[d]++
		}
		a, b = b, a
	}
	keys, pos := rs.keys[:n], rs.pos[:n]
	for i, v := range a {
		keys[i] = workload.Key(v >> 32)
		pos[i] = int32(uint32(v))
	}
	return keys, pos
}
