package core

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/faultfs"
	"repro/internal/index"
	"repro/internal/workload"
)

// Cluster-level durability. With RealConfig.WALDir set, every partition
// (or, for the replicated methods, the single shared copy) gets an
// index.Store: inserts append to its WAL before the workers apply them
// and the ack waits for the group fsync; frozen-layer publishes flush
// segments through a background daemon that then retires covered WAL
// files. The directory is laid out as
//
//	WALDir/MANIFEST        current epoch + partition count
//	WALDir/e<epoch>/p<i>/  partition i's segments and WAL files
//
// A rebalance (or a recovery whose key distribution no longer matches
// the stored partition boundaries) writes a complete new epoch —
// fresh per-partition segments at generation 0 — and then atomically
// replaces MANIFEST, so a crash at any point leaves either the old or
// the new epoch fully intact; orphaned epoch directories are swept on
// the next open.

const manifestName = "MANIFEST"

// storeFlush is one frozen-layer publish waiting to become a segment.
type storeFlush struct {
	store *index.Store
	keys  []workload.Key
	gen   uint64
}

// clusterStore owns the manifest and the per-partition stores.
type clusterStore struct {
	fs    faultfs.FS
	dir   string
	opt   index.StoreOptions
	epoch uint64

	stores  []*index.Store
	perPart [][]workload.Key // recovered keys per partition; nil once adopted

	flushCh chan storeFlush
	stopped chan struct{}
	wg      sync.WaitGroup
}

func (cs *clusterStore) logf(format string, args ...any) {
	if cs.opt.Logf != nil {
		cs.opt.Logf(format, args...)
	}
}

// openClusterStore reads the manifest and recovers every partition
// store. A missing manifest means a fresh directory (no stores yet); a
// partition that cannot recover refuses the whole open.
func openClusterStore(dir string, opt index.StoreOptions) (*clusterStore, error) {
	fs := opt.FS
	if fs == nil {
		fs = faultfs.OS
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	cs := &clusterStore{
		fs:      fs,
		dir:     dir,
		opt:     opt,
		flushCh: make(chan storeFlush, 32),
		stopped: make(chan struct{}),
	}
	data, err := fs.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return cs, nil
		}
		return nil, err
	}
	epoch, parts, err := parseManifest(data)
	if err != nil {
		return nil, fmt.Errorf("core: %s/%s: %w", dir, manifestName, err)
	}
	cs.epoch = epoch
	for p := 0; p < parts; p++ {
		st, keys, err := index.OpenStore(cs.partDir(epoch, p), nil, opt)
		if err != nil {
			cs.closeStores()
			return nil, fmt.Errorf("core: recover partition %d: %w", p, err)
		}
		if !st.HasSegment() {
			st.Close()
			cs.closeStores()
			return nil, fmt.Errorf("core: recover partition %d: %w: no intact segment (its baseline is not reconstructible)", p, index.ErrStoreCorrupt)
		}
		cs.stores = append(cs.stores, st)
		cs.perPart = append(cs.perPart, keys)
	}
	cs.sweepOrphanEpochs()
	return cs, nil
}

func (cs *clusterStore) partDir(epoch uint64, p int) string {
	return filepath.Join(cs.dir, fmt.Sprintf("e%d", epoch), fmt.Sprintf("p%d", p))
}

// sweepOrphanEpochs removes epoch directories the manifest does not
// reference — leftovers of a rebase that crashed before (or after) the
// manifest swap.
func (cs *clusterStore) sweepOrphanEpochs() {
	ents, err := cs.fs.ReadDir(cs.dir)
	if err != nil {
		return
	}
	current := fmt.Sprintf("e%d", cs.epoch)
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() || !strings.HasPrefix(name, "e") || name == current {
			continue
		}
		if err := cs.fs.RemoveAll(filepath.Join(cs.dir, name)); err == nil {
			cs.logf("core: swept orphan epoch directory %s", name)
		}
	}
}

func parseManifest(data []byte) (epoch uint64, parts int, err error) {
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 3 || strings.TrimSpace(lines[0]) != "dcstore v1" {
		return 0, 0, fmt.Errorf("unrecognized manifest")
	}
	if _, err := fmt.Sscanf(strings.TrimSpace(lines[1]), "epoch %d", &epoch); err != nil {
		return 0, 0, fmt.Errorf("unrecognized manifest epoch line")
	}
	if _, err := fmt.Sscanf(strings.TrimSpace(lines[2]), "parts %d", &parts); err != nil {
		return 0, 0, fmt.Errorf("unrecognized manifest parts line")
	}
	if parts <= 0 || parts > 1<<20 {
		return 0, 0, fmt.Errorf("manifest parts %d out of range", parts)
	}
	return epoch, parts, nil
}

// recoveredKeys concatenates the per-partition recoveries into the full
// key multiset (partitions hold disjoint ascending ranges; the caller
// re-validates sort order).
func (cs *clusterStore) recoveredKeys() []workload.Key {
	if cs.perPart == nil {
		return nil
	}
	n := 0
	for _, p := range cs.perPart {
		n += len(p)
	}
	all := make([]workload.Key, 0, n)
	for _, p := range cs.perPart {
		all = append(all, p...)
	}
	return all
}

// matches reports whether the stored partitions line up with the given
// partition sizes. Because the recovered full multiset is exactly what
// the new partitioning was computed over, equal counts imply identical
// content — the stores can be adopted as-is.
func (cs *clusterStore) matches(sizes []int) bool {
	if cs.perPart == nil || len(cs.stores) != len(sizes) {
		return false
	}
	for i, n := range sizes {
		if len(cs.perPart[i]) != n {
			return false
		}
	}
	return true
}

// adopt marks the recovered stores as live (drops the recovery copies).
func (cs *clusterStore) adopt() { cs.perPart = nil }

// rebase writes a complete new epoch — one fresh store per partition,
// each anchored by a generation-0 segment of its key slice — then
// atomically swaps the manifest and retires the old epoch. Called at
// first creation, after a recovery whose boundaries moved, and on every
// rebalance (with writes excluded, so the slices are exact).
func (cs *clusterStore) rebase(parts [][]workload.Key) error {
	newEpoch := cs.epoch + 1
	stores := make([]*index.Store, 0, len(parts))
	fail := func(err error) error {
		for _, st := range stores {
			st.Close()
		}
		cs.fs.RemoveAll(filepath.Join(cs.dir, fmt.Sprintf("e%d", newEpoch)))
		return err
	}
	for p, keys := range parts {
		st, _, err := index.OpenStore(cs.partDir(newEpoch, p), keys, cs.opt)
		if err != nil {
			return fail(fmt.Errorf("core: rebase partition %d: %w", p, err))
		}
		if err := st.FlushSegment(keys, 0); err != nil {
			st.Close()
			return fail(fmt.Errorf("core: rebase partition %d: %w", p, err))
		}
		stores = append(stores, st)
	}
	manifest := fmt.Sprintf("dcstore v1\nepoch %d\nparts %d\n", newEpoch, len(parts))
	err := index.AtomicWriteFile(cs.fs, filepath.Join(cs.dir, manifestName), 0o644, func(w io.Writer) error {
		_, werr := io.WriteString(w, manifest)
		return werr
	})
	if err != nil {
		return fail(fmt.Errorf("core: rebase manifest: %w", err))
	}
	old, oldEpoch := cs.stores, cs.epoch
	cs.stores, cs.epoch, cs.perPart = stores, newEpoch, nil
	for _, st := range old {
		st.Close()
	}
	if old != nil {
		cs.fs.RemoveAll(filepath.Join(cs.dir, fmt.Sprintf("e%d", oldEpoch)))
	}
	return nil
}

// attachDurable adopts (or rebases) the cluster store onto a freshly
// built epoch and wires each partition's store and segment-flush hook
// into its live part. Called before the epoch is published, so no
// traffic races the wiring.
func (c *Cluster) attachDurable(ep *updEpoch) error {
	sizes := make([]int, len(ep.lps))
	for s := range ep.lps {
		sizes[s] = len(ep.part.Parts[s].Keys)
	}
	if c.cs.matches(sizes) {
		c.cs.adopt()
	} else {
		parts := make([][]workload.Key, len(ep.lps))
		for s := range parts {
			parts[s] = ep.part.Parts[s].Keys
		}
		if err := c.cs.rebase(parts); err != nil {
			return err
		}
	}
	for s, lp := range ep.lps {
		st := c.cs.stores[s]
		lp.store = st
		lp.upd.OnPublish = func(keys []workload.Key, gen uint64) { c.cs.enqueue(st, keys, gen) }
	}
	return nil
}

// attachDurableRepl wires the single shared store for the replicated
// methods. All replicas apply the same logged stream; replica 0 is the
// designated flusher (segment generations deduplicate, so one is
// enough).
func (c *Cluster) attachDurableRepl(keys []workload.Key) error {
	if c.cs.matches([]int{len(keys)}) {
		c.cs.adopt()
	} else if err := c.cs.rebase([][]workload.Key{keys}); err != nil {
		return err
	}
	st := c.cs.stores[0]
	c.replStore = st
	c.repl[0].upd.OnPublish = func(keys []workload.Key, gen uint64) { c.cs.enqueue(st, keys, gen) }
	return nil
}

// start launches the segment-flush daemon.
func (cs *clusterStore) start() {
	cs.wg.Add(1)
	go cs.run()
}

// enqueue is the OnPublish sink. Non-blocking: a dropped request only
// delays WAL retirement (the data is already durable in the log).
func (cs *clusterStore) enqueue(st *index.Store, keys []workload.Key, gen uint64) {
	if gen == 0 {
		return
	}
	select {
	case cs.flushCh <- storeFlush{store: st, keys: keys, gen: gen}:
	default:
	}
}

func (cs *clusterStore) run() {
	defer cs.wg.Done()
	for {
		select {
		case <-cs.stopped:
			return
		case req := <-cs.flushCh:
			if err := req.store.FlushSegment(req.keys, req.gen); err != nil {
				cs.logf("core: segment flush at generation %d in %s failed: %v", req.gen, req.store.Dir(), err)
			}
		}
	}
}

func (cs *clusterStore) closeStores() {
	for _, st := range cs.stores {
		st.Close()
	}
}

// close stops the daemon and closes every store. The caller must have
// drained inserts and compactions first.
func (cs *clusterStore) close() {
	close(cs.stopped)
	cs.wg.Wait()
	cs.closeStores()
}
