package core

import (
	"sort"
	"sync"
	"testing"

	"repro/internal/workload"
)

// groundTruth computes ranks with sort.SearchInts — an implementation
// with nothing in common with any of the five methods' kernels.
func groundTruth(keys []workload.Key, queries []workload.Key) []int {
	ints := make([]int, len(keys))
	for i, k := range keys {
		ints[i] = int(k)
	}
	out := make([]int, len(queries))
	for i, q := range queries {
		out[i] = sort.SearchInts(ints, int(q)+1)
	}
	return out
}

// sweepKeySets builds the adversarial key sets the sorted path must
// survive: duplicate-heavy runs (partition boundaries landing inside a
// duplicate run, delimiters equal across partitions) and skewed
// clusters (interpolation-hostile, gallop-hostile distributions).
func sweepKeySets() map[string][]workload.Key {
	dupHeavy := make([]workload.Key, 0, 4096)
	for v := 0; v < 64; v++ {
		for r := 0; r < 64; r++ {
			dupHeavy = append(dupHeavy, workload.Key(v*100))
		}
	}
	skewed := make([]workload.Key, 0, 4096)
	for i := 0; i < 1024; i++ {
		skewed = append(skewed, workload.Key(i)) // dense low cluster
	}
	for i := 0; i < 1024; i++ {
		skewed = append(skewed, workload.Key(1<<31)+workload.Key(i)*7) // mid cluster
	}
	for i := 0; i < 1024; i++ {
		skewed = append(skewed, ^workload.Key(0)-workload.Key(1024*31)+workload.Key(i)*31) // top cluster
	}
	sort.Slice(skewed, func(i, j int) bool { return skewed[i] < skewed[j] })
	return map[string][]workload.Key{
		"uniform":  workload.SortedKeys(8192, 1),
		"dupheavy": dupHeavy,
		"skewed":   skewed,
	}
}

// sweepQueries derives a duplicate-heavy, boundary-probing query set
// from the key set: every key, its neighbors, extremes, and uniform
// fill — returned sorted ascending.
func sweepQueries(keys []workload.Key, n int, seed uint64) []workload.Key {
	qs := make([]workload.Key, 0, n)
	r := workload.NewRNG(seed)
	for len(qs) < n/2 {
		k := keys[r.Intn(len(keys))]
		qs = append(qs, k)
		if k > 0 {
			qs = append(qs, k-1)
		}
		qs = append(qs, k+1, k) // duplicate hits
	}
	qs = append(qs, 0, 0, ^workload.Key(0), ^workload.Key(0))
	for len(qs) < n {
		qs = append(qs, workload.Key(r.Uint64()>>32))
	}
	sort.Slice(qs, func(i, j int) bool { return qs[i] < qs[j] })
	return qs
}

// shuffled returns a deterministic permutation of qs.
func shuffled(qs []workload.Key, seed uint64) []workload.Key {
	out := append([]workload.Key(nil), qs...)
	r := workload.NewRNG(seed)
	for i := len(out) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// TestSortedPathCrossMethodSweep asserts the acceptance property: for
// all five methods, over duplicate-heavy and adversarially skewed key
// sets, the sorted path's ranks are bit-identical to the unsorted
// path's and to the sort.SearchInts ground truth — including with the
// radix-sort (SortedBatches) dispatch, and with 4 concurrent callers
// (run under -race in CI).
func TestSortedPathCrossMethodSweep(t *testing.T) {
	for setName, keys := range sweepKeySets() {
		sortedQs := sweepQueries(keys, 6000, 7)
		unsortedQs := shuffled(sortedQs, 8)
		truthSorted := groundTruth(keys, sortedQs)
		truthUnsorted := groundTruth(keys, unsortedQs)

		for _, m := range Methods() {
			for _, sb := range []bool{false, true} {
				cfg := RealConfig{Method: m, Workers: 4, BatchKeys: 512, QueueDepth: 2, SortedBatches: sb}
				c, err := NewCluster(keys, cfg)
				if err != nil {
					t.Fatalf("%s/%v: %v", setName, m, err)
				}

				check := func(qs []workload.Key, want []int, label string) {
					t.Helper()
					got, err := c.LookupBatch(qs)
					if err != nil {
						t.Fatalf("%s/%v sb=%v %s: %v", setName, m, sb, label, err)
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("%s/%v sb=%v %s: rank[%d](%d) = %d, want %d",
								setName, m, sb, label, i, qs[i], got[i], want[i])
						}
					}
				}
				check(sortedQs, truthSorted, "sorted")
				check(unsortedQs, truthUnsorted, "unsorted")

				// 4 concurrent callers, mixing sorted and unsorted
				// batches through the same worker pool.
				var wg sync.WaitGroup
				for g := 0; g < 4; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						qs, want := sortedQs, truthSorted
						if g%2 == 1 {
							qs, want = unsortedQs, truthUnsorted
						}
						for rep := 0; rep < 3; rep++ {
							got, err := c.LookupBatch(qs)
							if err != nil {
								t.Errorf("caller %d: %v", g, err)
								return
							}
							for i := range want {
								if got[i] != want[i] {
									t.Errorf("caller %d rep %d: rank[%d] = %d, want %d", g, rep, i, got[i], want[i])
									return
								}
							}
						}
					}(g)
				}
				wg.Wait()
				c.Close()
			}
		}
	}
}

// TestSortedDispatchTinyAndEdgeBatches covers dispatch shapes the sweep
// can miss: empty, single-key, all-one-partition, and batch sizes that
// leave sub-BatchKeys tails per partition.
func TestSortedDispatchTinyAndEdgeBatches(t *testing.T) {
	keys := workload.SortedKeys(2048, 3)
	c, err := NewCluster(keys, RealConfig{Method: MethodC3, Workers: 8, BatchKeys: 7, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cases := [][]workload.Key{
		{},
		{0},
		{^workload.Key(0)},
		{keys[0], keys[0], keys[0]},                        // one partition, dups
		{5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 17}, // crosses BatchKeys inside one partition
		sweepQueries(keys, 300, 9),
	}
	for ci, qs := range cases {
		want := groundTruth(keys, qs)
		got, err := c.LookupBatch(qs)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("case %d: rank[%d](%d) = %d, want %d", ci, i, qs[i], got[i], want[i])
			}
		}
	}
}

// TestRadixSortByKey pins the pooled radix sorter: stable, ascending,
// permutation valid, zero allocations once warm.
func TestRadixSortByKey(t *testing.T) {
	var rs RadixScratch
	for _, n := range []int{0, 1, 2, 100, 4096} {
		r := workload.NewRNG(uint64(n) + 1)
		qs := make([]workload.Key, n)
		for i := range qs {
			qs[i] = workload.Key(r.Uint64() >> 40) // narrow range: forces duplicate keys
		}
		keys, pos := rs.SortByKey(qs)
		if len(keys) != n || len(pos) != n {
			t.Fatalf("n=%d: got %d keys %d pos", n, len(keys), len(pos))
		}
		seen := make([]bool, n)
		for i := range keys {
			if i > 0 && keys[i] < keys[i-1] {
				t.Fatalf("n=%d: not ascending at %d", n, i)
			}
			if i > 0 && keys[i] == keys[i-1] && pos[i] < pos[i-1] {
				t.Fatalf("n=%d: unstable at %d", n, i)
			}
			if qs[pos[i]] != keys[i] {
				t.Fatalf("n=%d: permutation broken at %d", n, i)
			}
			if seen[pos[i]] {
				t.Fatalf("n=%d: position %d repeated", n, pos[i])
			}
			seen[pos[i]] = true
		}
	}
}
