package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/buffering"
	"repro/internal/index"
	"repro/internal/workload"
)

// This file is the online-update layer of the real runtime: the paper's
// cluster, made writable while it serves traffic. Each partition (or
// replica) is an index.Updatable — an immutable base structure plus a
// small sorted delta buffer that a background goroutine periodically
// compacts — and the cluster glues them into a consistent whole:
//
//   - Inserts route like queries (Method C) or broadcast to every
//     replica (Methods A/B) and are applied by the owning worker
//     goroutine, so they serialize with that partition's reads without
//     any locking on the read path.
//   - Global ranks stay exact across partitions: an insert into
//     partition j shifts the global rank of every key in partitions
//     > j, so each epoch carries per-partition insert counters and a
//     read of partition s adds the counters of partitions < s to its
//     static rank base. Counters are monotone, so a read racing an
//     insert returns a rank the index held at some instant during the
//     call — the same linearization the static runtime provides.
//   - When a partition outgrows its budget — the paper's fits-in-cache
//     invariant, violated by skewed inserts — a background rebalance
//     recomputes the Partitioning delimiters over the full current key
//     set and swaps in a fresh epoch: new partition slices, new rank
//     bases, zeroed counters. Reads never block: calls pin the epoch
//     they routed with and old epochs answer stale-pinned batches
//     correctly forever (their state is frozen once writes move on).
//     Writes stall for the duration of the swap — the brief exclusive
//     section is what makes the migrated snapshot exact.

// livePart is one worker's live index state: the updatable base+delta
// stack for a partition (distributed methods, one per partition per
// epoch) or for a full replica (replicated methods, one per worker for
// the cluster's lifetime, ep == nil).
type livePart struct {
	slot     int
	rankBase int
	upd      *index.Updatable
	ep       *updEpoch

	// store is the partition's durable log (nil without WALDir).
	// dispatchMu serializes append-to-log with enqueue-to-worker: the
	// worker channel is single-consumer, so holding the lock across
	// both makes apply order equal WAL order — the invariant that lets
	// a frozen-layer watermark double as a segment flush point.
	store      *index.Store
	dispatchMu sync.Mutex
}

// Lock ordering on the write path: an insert call holds the cluster
// read gate (Cluster.mu) for its whole duration, takes the
// write/rebalance gate (Cluster.insertMu) inside it, and only then a
// dispatch lock — the owning partition's dispatchMu for the
// distributed methods, the shared replMu for the replicated ones.
// dclint (lockguard) enforces these orders.
//
//dc:lockorder Cluster.mu Cluster.insertMu
//dc:lockorder Cluster.insertMu livePart.dispatchMu
//dc:lockorder Cluster.insertMu Cluster.replMu

// updEpoch is one generation of the distributed methods' routing and
// partition state. A rebalance installs a fresh epoch; batches carry
// the livePart they were routed with, so in-flight work finishes
// against the epoch it started in.
type updEpoch struct {
	part     *Partitioning
	lps      []*livePart
	inserted []insCounter // per-partition keys inserted this epoch
	staticN  int          // total keys at epoch creation
}

// insCounter is a cache-line-padded per-partition insert counter:
// bumped by the owning worker, summed by every other partition's reads.
type insCounter struct {
	n atomic.Int64
	_ [56]byte
}

// insertedBefore sums the inserts applied to partitions < slot: the
// dynamic component of slot's global rank base.
func (ep *updEpoch) insertedBefore(slot int) int {
	s := 0
	for j := 0; j < slot; j++ {
		s += int(ep.inserted[j].n.Load())
	}
	return s
}

// insertedTotal sums all partitions' inserts this epoch.
func (ep *updEpoch) insertedTotal() int { return ep.insertedBefore(len(ep.inserted)) }

// methodBuilder returns the Builder that constructs one partition's (or
// replica's) base structure for the configured method: the delta layer
// is structure-agnostic, which is how all five methods share one update
// mechanism.
func methodBuilder(cfg RealConfig) index.Builder {
	switch cfg.Method {
	case MethodA, MethodC1:
		return func(keys []workload.Key) index.BatchRanker {
			return treeRanker{t: index.NewNaryTree(keys, 0)}
		}
	case MethodB:
		return func(keys []workload.Key) index.BatchRanker {
			return planRanker{plan: buffering.NewPlan(index.NewNaryTree(keys, 0), 256<<10)}
		}
	case MethodC2:
		return func(keys []workload.Key) index.BatchRanker {
			return planRanker{plan: buffering.NewPlan(index.NewNaryTree(keys, 0), 8<<10)}
		}
	default: // MethodC3
		if cfg.Layout == LayoutEytzinger {
			return func(keys []workload.Key) index.BatchRanker {
				return index.NewEytzinger(keys, 0)
			}
		}
		return func(keys []workload.Key) index.BatchRanker {
			return index.NewSortedArray(keys, 0)
		}
	}
}

// treeRanker adapts the n-ary tree's per-key Rank to the batch API.
type treeRanker struct{ t *index.Tree }

func (tr treeRanker) RankBatch(qs []workload.Key, out []int, add int) {
	for i, k := range qs {
		out[i] = tr.t.Rank(k) + add
	}
}

// planRanker adapts a Zhou-Ross buffered plan to the batch API.
type planRanker struct{ plan buffering.Plan }

func (pr planRanker) RankBatch(qs []workload.Key, out []int, add int) {
	pr.plan.RankBatch(qs, out, add, buffering.Hooks{})
}

// newEpoch builds a full epoch over sorted keys: partitioning, one
// updatable per partition, zeroed counters.
func (c *Cluster) newEpoch(keys []workload.Key) (*updEpoch, error) {
	part, err := newPartitioningSorted(keys, c.cfg.Workers)
	if err != nil {
		return nil, err
	}
	ep := &updEpoch{
		part:     part,
		lps:      make([]*livePart, c.cfg.Workers),
		inserted: make([]insCounter, c.cfg.Workers),
		staticN:  len(keys),
	}
	build := methodBuilder(c.cfg)
	for s := range ep.lps {
		u := index.NewUpdatable(part.Parts[s].Keys, build, c.cfg.MergeThreshold)
		u.OnMerge = c.noteMerge
		ep.lps[s] = &livePart{slot: s, rankBase: part.Parts[s].RankBase, upd: u, ep: ep}
	}
	return ep, nil
}

func (c *Cluster) noteMerge() { c.merges.Add(1) }

// Insert adds one key to the index while it serves traffic.
func (c *Cluster) Insert(k workload.Key) error {
	var one [1]workload.Key
	one[0] = k
	return c.InsertBatch(one[:])
}

// InsertBatch adds keys (any order, duplicates allowed) to the running
// index. For the distributed methods each key routes to the partition
// owning its sub-range; for the replicated methods the batch is applied
// to every replica. It returns once every destination applied the keys:
// reads that start after it returns see them, and concurrent reads see
// a consistent point-in-time subset. Safe for any number of concurrent
// callers, and safe concurrently with lookups.
func (c *Cluster) InsertBatch(keys []workload.Key) error {
	if len(keys) == 0 {
		return nil
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return fmt.Errorf("core: cluster is closed")
	}
	// Held for the whole call, through the acks: the rebalancer's
	// exclusive section can therefore equate "no insert calls in
	// flight" with "every accepted key is applied", which is what makes
	// its migration snapshot exact.
	c.insertMu.RLock()
	defer c.insertMu.RUnlock()

	cs := c.getCall()
	defer c.putCall(cs)
	bk := c.cfg.BatchKeys
	// Worst-case in-flight batches: the distributed methods split the
	// keys across partitions (one partial flush each); the replicated
	// methods send every chunk to every worker, multiplying the count.
	// Sizing the reply channel to cover it keeps the workers'
	// unconditional reply sends non-blocking, so a slow gatherer can
	// never stall other callers' batches behind an insert.
	need := len(keys)/bk + c.cfg.Workers + 1
	if !c.cfg.Method.Distributed() {
		need = c.cfg.Workers*(len(keys)/bk+1) + 1
	}
	if cap(cs.reply) < need {
		cs.reply = make(chan *realBatch, need)
	}
	pending := 0
	gather := func(b *realBatch) {
		c.putBatch(b)
		pending--
	}
	send := func(w int, b *realBatch) {
		pending++
		for {
			select {
			case c.in[w] <- b:
				return
			case r := <-cs.reply:
				gather(r)
			}
		}
	}

	// In durable mode an insert is logged before it is sent to its
	// worker (under the partition's dispatch lock, so apply order equals
	// WAL order) and the ack additionally waits for the group fsync
	// covering the appended records. An error return means nothing was
	// acknowledged — the keys may or may not survive a restart, exactly
	// like a crash mid-call.
	var insErr error
	if c.cfg.Method.Distributed() {
		ep := c.epoch.Load()
		durable := c.cs != nil
		if durable {
			for s := range cs.ends {
				cs.ends[s] = 0
			}
		}
		sendIns := func(s int, b *realBatch) {
			if !durable {
				send(s, b)
				return
			}
			if insErr != nil {
				c.putBatch(b) // already failing: drop, don't ack
				return
			}
			lp := ep.lps[s]
			lp.dispatchMu.Lock()
			end, gen, err := lp.store.Append(b.keys)
			if err != nil {
				lp.dispatchMu.Unlock()
				c.putBatch(b)
				insErr = err
				return
			}
			b.seq = gen
			send(s, b)
			lp.dispatchMu.Unlock()
			cs.ends[s] = end
		}
		for _, k := range keys {
			s := ep.part.Route(k)
			b := cs.accum[s]
			if b == nil {
				b = c.getBatch(cs.reply)
				b.op = opInsert
				b.lp = ep.lps[s]
				cs.accum[s] = b
			}
			b.keys = append(b.keys, k)
			if len(b.keys) >= bk {
				cs.accum[s] = nil
				sendIns(s, b)
			}
		}
		for s, b := range cs.accum {
			if b == nil {
				continue
			}
			cs.accum[s] = nil
			sendIns(s, b)
		}
		for pending > 0 {
			gather(<-cs.reply)
		}
		if durable {
			// Commit every touched partition concurrently: each Commit
			// blocks on (group) fsync, and the partitions' logs are
			// independent files, so serializing them would multiply the
			// ack latency by the partition count.
			var wg sync.WaitGroup
			var cmu sync.Mutex
			for s, end := range cs.ends {
				if end == 0 {
					continue
				}
				wg.Add(1)
				go func(s int, end int64) {
					defer wg.Done()
					if err := ep.lps[s].store.Commit(end); err != nil {
						cmu.Lock()
						if insErr == nil {
							insErr = err
						}
						cmu.Unlock()
					}
				}(s, end)
			}
			wg.Wait()
		}
	} else {
		// Replicated index: every worker holds a full copy, so every
		// worker must apply the batch before it is acknowledged. In
		// durable mode each chunk is logged once to the shared store and
		// fanned out to all workers under replMu, so every replica
		// applies the logged stream in the same order.
		var lastEnd int64
		for start := 0; start < len(keys); start += bk {
			stop := min(start+bk, len(keys))
			chunk := keys[start:stop]
			var gen uint64
			if c.cs != nil {
				c.replMu.Lock()
				end, g, err := c.replStore.Append(chunk)
				if err != nil {
					c.replMu.Unlock()
					insErr = err
					break
				}
				gen, lastEnd = g, end
			}
			for w := 0; w < c.cfg.Workers; w++ {
				b := c.getBatch(cs.reply)
				b.op = opInsert
				b.lp = c.repl[w]
				b.seq = gen
				b.keys = append(b.keys, chunk...)
				send(w, b)
			}
			if c.cs != nil {
				c.replMu.Unlock()
			}
		}
		for pending > 0 {
			gather(<-cs.reply)
		}
		if insErr == nil && c.cs != nil && lastEnd > 0 {
			insErr = c.replStore.Commit(lastEnd)
		}
	}

	if insErr != nil {
		return insErr
	}
	c.insertedKeys.Add(int64(len(keys)))
	return nil
}

// rebalanceThreshold returns the per-partition key count above which a
// rebalance is due, or 0 when rebalancing is disabled. It is the
// configured budget while that budget is attainable; once the whole
// index has grown past budget*Workers, equal partitions necessarily
// exceed the budget and re-partitioning cannot restore it — re-running
// full rebuilds on every insert would be a storm that helps nobody —
// so the trigger degrades to skew detection: twice the current average
// partition size.
func (c *Cluster) rebalanceThreshold(ep *updEpoch) int {
	if c.budget <= 0 {
		return 0
	}
	avg := (ep.staticN + ep.insertedTotal()) / c.cfg.Workers
	if c.budget < avg {
		// Unattainable: even perfectly equal partitions exceed the
		// budget. Fall back to skew detection.
		return 2 * avg
	}
	return c.budget
}

// maybeRebalance nudges the rebalancer when lp outgrew the rebalance
// threshold. Called by the owning worker after applying an insert
// batch; never blocks.
func (c *Cluster) maybeRebalance(lp *livePart) {
	if lp.ep == nil {
		return
	}
	t := c.rebalanceThreshold(lp.ep)
	if t == 0 || lp.upd.TotalKeys() <= t {
		return
	}
	select {
	case c.rebalanceCh <- struct{}{}:
	default:
	}
}

// rebalancer is the background goroutine that re-partitions the index
// when inserts skew a partition past its budget.
func (c *Cluster) rebalancer() {
	defer c.updWG.Done()
	for {
		select {
		case <-c.stop:
			return
		case <-c.rebalanceCh:
		}
		c.rebalance()
	}
}

// rebalance recomputes the partition delimiters over the full current
// key set and installs a fresh epoch. Writes are excluded for the
// duration (InsertBatch holds insertMu shared through its acks, so
// taking it exclusively proves every accepted key is applied and the
// snapshot is exact); reads flow throughout — calls pin their epoch at
// dispatch, and a superseded epoch keeps answering its in-flight
// batches from state that can no longer change.
func (c *Cluster) rebalance() {
	c.insertMu.Lock()
	defer c.insertMu.Unlock()
	ep := c.epoch.Load()
	t := c.rebalanceThreshold(ep)
	over := false
	for _, lp := range ep.lps {
		if t > 0 && lp.upd.TotalKeys() > t {
			over = true
			break
		}
	}
	if !over {
		return // a previous pass already fixed it
	}
	all := make([]workload.Key, 0, ep.staticN+ep.insertedTotal())
	for _, lp := range ep.lps {
		// Partitions hold disjoint ascending ranges, so concatenating
		// the per-partition snapshots yields the full sorted key set.
		all = append(all, lp.upd.SnapshotKeys()...)
	}
	next, err := c.newEpoch(all)
	if err != nil {
		// Unreachable: all has at least the seed keys, which filled
		// Workers partitions once already.
		return
	}
	if c.cs != nil {
		// Re-anchor durability on the new boundaries: write a complete
		// new store epoch (fresh generation-0 segments per partition)
		// before any traffic can route to it. On failure keep the old
		// epoch — index and store still agree — and retry on the next
		// trigger.
		if err := c.attachDurable(next); err != nil {
			if c.cfg.Logf != nil {
				c.cfg.Logf("core: rebalance kept current epoch, store rebase failed: %v", err)
			}
			return
		}
	}
	c.epoch.Store(next)
	c.rebalances.Add(1)
	// Drain the superseded epoch's background compactions so no merge
	// goroutine outlives the state it belongs to; its lps still answer
	// any batches pinned to them.
	for _, lp := range ep.lps {
		lp.upd.Quiesce()
	}
}

// UpdateStats summarizes the cluster's write-path activity.
type UpdateStats struct {
	// InsertedKeys counts keys accepted by Insert/InsertBatch (each key
	// once, regardless of replication fan-out).
	InsertedKeys int64
	// Merges counts completed background delta compactions across all
	// partitions and epochs.
	Merges int64
	// Rebalances counts installed re-partitioning epochs.
	Rebalances int64
}

// UpdateStats snapshots the write-path counters. Safe concurrently
// with traffic.
func (c *Cluster) UpdateStats() UpdateStats {
	return UpdateStats{
		InsertedKeys: c.insertedKeys.Load(),
		Merges:       c.merges.Load(),
		Rebalances:   c.rebalances.Load(),
	}
}

// KeyCount reports the current indexed key count (seed keys plus
// applied inserts). With concurrent inserts in flight the count is a
// consistent point-in-time value.
func (c *Cluster) KeyCount() int {
	if c.cfg.Method.Distributed() {
		ep := c.epoch.Load()
		return ep.staticN + ep.insertedTotal()
	}
	return c.repl[0].upd.TotalKeys()
}

// quiesceUpdates waits out background compactions on the live state;
// Close calls it after the workers drain so no goroutine outlives the
// cluster.
func (c *Cluster) quiesceUpdates() {
	if c.cfg.Method.Distributed() {
		for _, lp := range c.epoch.Load().lps {
			lp.upd.Quiesce()
		}
		return
	}
	for _, lp := range c.repl {
		lp.upd.Quiesce()
	}
}
