package core

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/workload"
)

// SimConfig describes one simulated experiment: a method, the Table 1
// index, a query workload, a batch size, and the cluster shape.
type SimConfig struct {
	// P is the architecture parameter set (Table 2 by default).
	P arch.Params
	// Method selects the strategy under test.
	Method Method
	// IndexKeys is the sorted key set the index is built over.
	IndexKeys []workload.Key
	// TotalQueries is the workload size the report extrapolates to
	// (the paper: 2^23). QuerySeed makes the stream reproducible.
	TotalQueries int
	QuerySeed    uint64
	// BatchBytes is the batch size (Figure 3's x-axis): the number of
	// query bytes accumulated before processing (A/B) or before the
	// master splits and dispatches them to the slaves (C).
	BatchBytes int
	// Masters and Slaves shape the Method C cluster. Methods A and B
	// run on Masters+Slaves independent nodes; their measured time is
	// divided by that count, the paper's normalization.
	Masters int
	Slaves  int
	// SampleQueries caps how many queries are actually simulated; the
	// report scales to TotalQueries assuming steady state. Zero picks
	// an automatic cap (enough batches for steady state); use
	// TotalQueries for an exact full-workload simulation.
	SampleQueries int
	// Skew, when positive, draws query keys Zipf-distributed over the
	// index (exponent = Skew) instead of uniformly, concentrating load
	// on the slaves owning popular ranges. The paper assumes uniform
	// keys; this is the ablation for its load-balancing discussion.
	Skew float64
}

// Validate reports the first problem with the configuration.
func (c SimConfig) Validate() error {
	if !c.Method.Valid() {
		return fmt.Errorf("core: invalid method %d", int(c.Method))
	}
	if len(c.IndexKeys) == 0 {
		return fmt.Errorf("core: empty index")
	}
	if c.TotalQueries <= 0 {
		return fmt.Errorf("core: TotalQueries = %d", c.TotalQueries)
	}
	if c.BatchBytes < workload.KeyBytes {
		return fmt.Errorf("core: BatchBytes = %d, below one key", c.BatchBytes)
	}
	if c.Masters <= 0 || c.Slaves <= 0 {
		return fmt.Errorf("core: need masters and slaves, got %d/%d", c.Masters, c.Slaves)
	}
	if len(c.IndexKeys) < c.Slaves {
		return fmt.Errorf("core: %d keys cannot be partitioned over %d slaves", len(c.IndexKeys), c.Slaves)
	}
	if c.SampleQueries < 0 {
		return fmt.Errorf("core: SampleQueries = %d", c.SampleQueries)
	}
	if c.Skew < 0 {
		return fmt.Errorf("core: Skew = %v", c.Skew)
	}
	return c.P.Validate()
}

// querySource yields the (deterministic) query stream for the config:
// uniform keys straight from the RNG, or a pregenerated Zipf-skewed
// stream when Skew > 0.
func (c SimConfig) querySource(n int) func() workload.Key {
	if c.Skew <= 0 {
		rng := workload.NewRNG(c.QuerySeed)
		return rng.Key
	}
	qs := workload.ZipfQueries(n, c.IndexKeys, c.Skew, c.QuerySeed)
	i := 0
	return func() workload.Key {
		k := qs[i]
		i++
		if i == len(qs) {
			i = 0
		}
		return k
	}
}

// nodes returns the cluster size used for Method A/B normalization.
func (c SimConfig) nodes() int { return c.Masters + c.Slaves }

// batchKeys converts BatchBytes to a key count.
func (c SimConfig) batchKeys() int { return workload.BatchKeysForBytes(c.BatchBytes) }

// SimReport is the outcome of one simulated experiment.
type SimReport struct {
	Method     Method
	BatchBytes int
	Nodes      int

	// TotalQueries is the workload the times refer to;
	// SimulatedQueries is how many the simulator actually executed
	// before extrapolating.
	TotalQueries     int
	SimulatedQueries int

	// NormalizedSec is Figure 3's y-axis: the search time for the full
	// workload, with Method A/B divided by the node count. RawSec is
	// the unnormalized time. PerKeyNs = NormalizedSec/TotalQueries.
	NormalizedSec float64
	RawSec        float64
	PerKeyNs      float64

	// SlaveIdleFrac is the mean idle fraction across slaves (Method C
	// only; Section 4.1 reports 50% at 8 KB and 20% at 4 MB).
	// MasterBusyFrac is the master's busy share of the run.
	SlaveIdleFrac  float64
	MasterBusyFrac float64

	// Messages and BytesOnWire count Method C's network traffic
	// (request + reply).
	Messages    uint64
	BytesOnWire uint64

	// Cache behaviour per query key, from the processing node(s).
	L1MissesPerKey  float64
	L2MissesPerKey  float64
	TLBMissesPerKey float64

	// Turnaround is the response-time criterion of Figure 3's
	// discussion: the virtual time from a query's batch being formed to
	// its results being delivered. For Method A it is a single lookup's
	// cost; for Method B one batch's processing time; for Method C the
	// batch round trip (master routing + wire + slave queueing and
	// processing + reply).
	TurnaroundP50Ns float64
	TurnaroundP99Ns float64

	// LoadImbalance is max/mean keys across slaves (1.0 = perfectly
	// even; meaningful for Method C, especially under Skew).
	LoadImbalance float64
}

// String renders a compact one-line summary.
func (r SimReport) String() string {
	return fmt.Sprintf("method %-3s batch %7s: %.4fs (%.1f ns/key, idle %.0f%%, L2miss/key %.2f)",
		r.Method, fmtBytes(r.BatchBytes), r.NormalizedSec, r.PerKeyNs,
		r.SlaveIdleFrac*100, r.L2MissesPerKey)
}

func fmtBytes(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Run executes the simulated experiment for cfg and returns its report.
func Run(cfg SimConfig) (SimReport, error) {
	if err := cfg.Validate(); err != nil {
		return SimReport{}, err
	}
	switch cfg.Method {
	case MethodA, MethodB:
		return simLocal(cfg)
	default:
		return simCluster(cfg)
	}
}
