package core

import (
	"math"
	"sort"

	"repro/internal/buffering"
	"repro/internal/des"
	"repro/internal/index"
	"repro/internal/memsim"
	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// simCluster runs the distributed in-cache index (Methods C-1/C-2/C-3)
// on the discrete-event cluster: one master that reads the query stream,
// routes keys by the delimiter array, accumulates a batch, and dispatches
// per-slave messages over its (serializing) NIC; and S slaves that hold
// cache-resident partitions, process arriving messages in order, and
// send result messages onward. Communication overlaps computation as
// MPI_Isend allows: the master's CPU is released after the per-message
// software overhead while the wire transfer proceeds in the background,
// and a slave's next message is received (and pollutes its cache) while
// the current one is processed.
func simCluster(cfg SimConfig) (SimReport, error) {
	part, err := NewPartitioning(cfg.IndexKeys, cfg.Slaves)
	if err != nil {
		return SimReport{}, err
	}

	net := netsim.New(cfg.P)
	var eng des.Engine

	slaves := make([]*simSlave, cfg.Slaves)
	for i := range slaves {
		slaves[i] = newSimSlave(cfg, part.Parts[i])
	}

	// The masters: sequential timelines, one per master node, taking
	// batches from the incoming stream round-robin (Section 3.2: "this
	// is easily remedied by setting up multiple master nodes, with
	// replicates of the top level data structure"). Per key a master
	// pays the dispatch comparison plus streaming the key from the
	// input and into the outgoing buffer; per batch it splits the
	// accumulated keys by partition and sends one message per non-empty
	// slave buffer.
	sim := sampleSizeC(cfg)
	batchKeys := cfg.batchKeys()
	next := cfg.querySource(sim)

	type simMaster struct {
		nic  netsim.NIC
		tm   float64 // CPU clock
		busy float64
	}
	masters := make([]*simMaster, cfg.Masters)
	for i := range masters {
		masters[i] = &simMaster{}
		masters[i].nic.Name = "master"
	}

	var lastArrival float64
	var replies []replyEvent
	turnaround := stats.NewHistogram(1, 1e12, 480)

	scratch := make([][]workload.Key, cfg.Slaves)
	perKeyNs := cfg.P.DispatchCostNs + cfg.P.SeqCostNs(2*workload.KeyBytes)

	dispatched, mi := 0, 0
	for dispatched < sim {
		mst := masters[mi]
		mi = (mi + 1) % len(masters)
		n := batchKeys
		if sim-dispatched < n {
			n = sim - dispatched
		}
		// Route the chunk on this master's timeline.
		chunkStart := mst.tm
		for j := 0; j < n; j++ {
			k := next()
			s := part.Route(k)
			scratch[s] = append(scratch[s], k)
		}
		cpu := float64(n) * perKeyNs
		mst.tm += cpu
		mst.busy += cpu
		// Dispatch one message per slave holding keys from this batch.
		for s, keys := range scratch {
			if len(keys) == 0 {
				continue
			}
			msgKeys := append([]workload.Key(nil), keys...)
			scratch[s] = scratch[s][:0]
			x := net.Send(&mst.nic, mst.tm, len(msgKeys)*workload.KeyBytes)
			mst.busy += x.CPURelease - mst.tm
			mst.tm = x.CPURelease
			sl := slaves[s]
			eng.Schedule(x.Arrival, func() {
				sl.receive(&eng, net, pendingMsg{keys: msgKeys, chunkStart: chunkStart},
					&lastArrival, &replies, turnaround)
			})
		}
		dispatched += n
	}

	end := eng.Run()
	var masterBusy float64
	for _, mst := range masters {
		if mst.tm > end {
			end = mst.tm
		}
		masterBusy += mst.busy
	}
	if lastArrival > end {
		end = lastArrival
	}

	// Aggregate.
	var idle stats.Running
	var counters memsim.Counters
	var msgs, wire uint64
	keysProcessed, maxKeys := 0, 0
	for _, s := range slaves {
		s.tracker.ObserveEnd(end)
		idle.Add(s.tracker.IdleFraction())
		counters = addCounters(counters, s.h.C)
		msgs += s.nic.MsgsSent() + uint64(s.msgsIn)
		wire += s.nic.BytesSent() + s.bytesIn
		keysProcessed += s.keysDone
		if s.keysDone > maxKeys {
			maxKeys = s.keysDone
		}
	}

	raw := extrapolate(end, sim, cfg.TotalQueries, replies)

	r := SimReport{
		Method:           cfg.Method,
		BatchBytes:       cfg.BatchBytes,
		Nodes:            cfg.nodes(),
		TotalQueries:     cfg.TotalQueries,
		SimulatedQueries: sim,
		RawSec:           raw,
		NormalizedSec:    raw, // Method C is already cluster-wide
		SlaveIdleFrac:    idle.Mean(),
		MasterBusyFrac:   clamp01(masterBusy / (end * float64(len(masters)))),
		Messages:         msgs,
		BytesOnWire:      wire,
		TurnaroundP50Ns:  turnaround.Quantile(0.50),
		TurnaroundP99Ns:  turnaround.Quantile(0.99),
	}
	if keysProcessed > 0 {
		mean := float64(keysProcessed) / float64(cfg.Slaves)
		r.LoadImbalance = float64(maxKeys) / mean
	}
	if keysProcessed > 0 {
		kp := float64(keysProcessed)
		r.L1MissesPerKey = float64(counters.L1Misses) / kp
		r.L2MissesPerKey = float64(counters.L2Misses) / kp
		r.TLBMissesPerKey = float64(counters.TLBMisses) / kp
	}
	r.PerKeyNs = r.NormalizedSec / float64(cfg.TotalQueries) * 1e9
	return r, nil
}

// replyEvent records one result message's arrival for steady-state rate
// estimation.
type replyEvent struct {
	t    float64
	keys int
}

// extrapolate projects the simulated run to the full workload. Scaling
// the end-to-end time linearly would multiply the pipeline's fill and
// drain tails by the scale factor; instead, the steady-state completion
// rate is measured between the 30% and 90% completion marks and only the
// *additional* keys are charged at that marginal rate. Exact runs
// (sim == total) return the simulated time unchanged.
func extrapolate(endNs float64, sim, total int, replies []replyEvent) float64 {
	if total <= sim {
		return endNs / 1e9
	}
	sort.Slice(replies, func(i, j int) bool { return replies[i].t < replies[j].t })
	var done int
	var t30, t90 float64
	var k30, k90 int
	for _, r := range replies {
		done += r.keys
		if t30 == 0 && done >= sim*30/100 {
			t30, k30 = r.t, done
		}
		if done >= sim*90/100 {
			t90, k90 = r.t, done
			break
		}
	}
	if t90 > t30 && k90 > k30 {
		rate := float64(k90-k30) / (t90 - t30) // keys per ns, steady state
		return (endNs + float64(total-sim)/rate) / 1e9
	}
	// Degenerate pipelines (a single message): linear scaling is all
	// that is available.
	return endNs / 1e9 * float64(total) / float64(sim)
}

// simSlave is one slave node's state on the DES timeline.
type simSlave struct {
	cfg  SimConfig
	part Partition
	h    *memsim.Hierarchy
	nic  netsim.NIC

	// Method-specific lookup structures over the partition.
	arr     *index.SortedArray
	tree    *index.Tree
	plan    buffering.Plan
	cursors []int64

	queue    []pendingMsg
	busy     bool
	tracker  stats.BusyTracker
	slot     int
	keysDone int
	msgsIn   int
	bytesIn  uint64

	ranks []int
	trace []memsim.Addr
}

type pendingMsg struct {
	keys []workload.Key
	// chunkStart is when the dispatching master began routing the
	// batch this message came from; the reply arrival minus chunkStart
	// is the batch turnaround (the response-time criterion).
	chunkStart float64
}

func newSimSlave(cfg SimConfig, part Partition) *simSlave {
	s := &simSlave{cfg: cfg, part: part, h: memsim.NewHierarchy(cfg.P)}
	s.nic.Name = "slave"
	switch cfg.Method {
	case MethodC1, MethodC2:
		// The slave tree keeps per-key result words in its leaves,
		// like the Method A/B tree: a 32,768-key partition occupies
		// ~300 KB — Table 1's "Subtree Size ... 320 KB" — versus the
		// 128 KB sorted array, which is exactly the extra cache
		// pressure Section 4.1 blames for C-1/C-2 trailing C-3.
		s.tree = index.NewNaryTree(part.Keys, treeBase)
		if cfg.Method == MethodC2 {
			// L1-sized subtrees, half the cache left for buffers
			// (Section 3.2: "each subtree can now fit inside the L1
			// cache").
			s.plan = buffering.NewPlan(s.tree, cfg.P.L1Size/2)
			s.cursors = make([]int64, s.tree.NodeCount())
		}
		s.h.Preload(s.tree.Base(), s.tree.SizeBytes())
	default: // MethodC3
		s.arr = index.NewSortedArray(part.Keys, treeBase)
		s.h.Preload(s.arr.Base(), s.arr.SizeBytes())
	}
	s.trace = make([]memsim.Addr, 0, 64)
	return s
}

// receive is the message-arrival event handler.
func (s *simSlave) receive(eng *des.Engine, net *netsim.Net, m pendingMsg, lastArrival *float64, replies *[]replyEvent, turnaround *stats.Histogram) {
	s.queue = append(s.queue, m)
	s.msgsIn++
	s.bytesIn += uint64(len(m.keys) * workload.KeyBytes)
	s.tryStart(eng, net, lastArrival, replies, turnaround)
}

// tryStart begins processing the next queued message if the slave is
// idle.
func (s *simSlave) tryStart(eng *des.Engine, net *netsim.Net, lastArrival *float64, replies *[]replyEvent, turnaround *stats.Histogram) {
	if s.busy || len(s.queue) == 0 {
		return
	}
	m := s.queue[0]
	s.queue = s.queue[1:]
	s.busy = true

	start := eng.Now()
	cost := s.process(m)
	end := start + cost

	eng.Schedule(end, func() {
		// Send the results onward ("dispatches the results to the
		// target"); the per-message overhead occupies the slave CPU.
		x := net.Send(&s.nic, end, len(m.keys)*workload.KeyBytes)
		s.tracker.AddBusy(start, x.CPURelease)
		if x.Arrival > *lastArrival {
			*lastArrival = x.Arrival
		}
		*replies = append(*replies, replyEvent{t: x.Arrival, keys: len(m.keys)})
		turnaround.Add(x.Arrival - m.chunkStart)
		s.busy = false
		s.tryStart(eng, net, lastArrival, replies, turnaround)
	})
}

// process returns the virtual time the slave spends on one message.
func (s *simSlave) process(m pendingMsg) float64 {
	cfg := s.cfg
	n := len(m.keys)

	// Receive-side software overhead, then read the message (it was
	// DMA'd into this slot and now streams through the cache).
	cost := cfg.P.NetPerMsgOverheadNs
	cost += s.h.StreamInstall(batchSlotAddr(s.slot), n*workload.KeyBytes)
	// Overlapped communication: while this message is processed, the
	// next one (if already queued) is being received into the other
	// slot, polluting the cache at no CPU cost (the Section 4.1
	// contention mechanism: "128 KB of the next message of queries
	// being received").
	if len(s.queue) > 0 {
		next := s.queue[0]
		s.h.InstallQuiet(batchSlotAddr(1-s.slot), len(next.keys)*workload.KeyBytes)
	}
	s.slot = 1 - s.slot

	if cap(s.ranks) < n {
		s.ranks = make([]int, n)
	}
	ranks := s.ranks[:n]

	switch cfg.Method {
	case MethodC1:
		for i, k := range m.keys {
			s.trace = s.trace[:0]
			var r int
			r, s.trace = s.tree.RankTrace(k, s.trace)
			for _, a := range s.trace {
				cost += s.h.Touch(a)
			}
			cost += float64(len(s.trace)) * cfg.P.CompCostNodeNs
			ranks[i] = r
		}
	case MethodC2:
		hooks := buffering.Hooks{
			TouchNode: func(id int32) {
				cost += cfg.P.CompCostNodeNs + s.h.Touch(s.tree.NodeAddr(id))
			},
			BufferWrite: func(bucket int32, b int) {
				addr := bufBase + memsim.Addr(uint64(bucket)<<bucketShift) +
					memsim.Addr(s.cursors[bucket]&(bucketSize-1))
				s.cursors[bucket] += int64(b)
				cost += s.h.StreamInstall(addr, b)
			},
			BufferRead: func(_ int32, b int) {
				cost += s.h.Stream(b)
			},
		}
		s.plan.RankBatch(m.keys, ranks, 0, hooks)
	default: // MethodC3
		for i, k := range m.keys {
			s.trace = s.trace[:0]
			var r int
			r, s.trace = s.arr.RankTrace(k, s.trace)
			for _, a := range s.trace {
				cost += s.h.Touch(a)
			}
			cost += float64(len(s.trace)) * cfg.P.CompCostProbeNs
			ranks[i] = r
		}
	}
	// Results stream to the outgoing buffer.
	cost += s.h.Stream(n * workload.KeyBytes)
	s.keysDone += n
	return cost
}

// sampleSizeC picks the simulated query count for Method C: enough
// batches for the pipeline to reach steady state.
func sampleSizeC(cfg SimConfig) int {
	sim := cfg.SampleQueries
	if sim == 0 {
		sim = 1 << 20
		if need := cfg.batchKeys() * 6; need > sim {
			sim = need
		}
	}
	if sim > cfg.TotalQueries {
		sim = cfg.TotalQueries
	}
	if sim < 1 {
		sim = 1
	}
	return sim
}

func addCounters(a, b memsim.Counters) memsim.Counters {
	return memsim.Counters{
		Accesses:    a.Accesses + b.Accesses,
		L1Hits:      a.L1Hits + b.L1Hits,
		L1Misses:    a.L1Misses + b.L1Misses,
		L2Hits:      a.L2Hits + b.L2Hits,
		L2Misses:    a.L2Misses + b.L2Misses,
		TLBMisses:   a.TLBMisses + b.TLBMisses,
		StreamBytes: a.StreamBytes + b.StreamBytes,
	}
}

func clamp01(x float64) float64 {
	if math.IsNaN(x) || x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
