package core

import (
	"repro/internal/buffering"
	"repro/internal/index"
	"repro/internal/memsim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Virtual address map for a simulated node. Regions are spaced far apart
// so structures never alias; addresses are free (nothing is allocated).
const (
	treeBase    memsim.Addr = 0x1000_0000 // index structure arena
	batchBase   memsim.Addr = 0x9000_0000 // incoming batch/message slots
	bufBase     memsim.Addr = 1 << 40     // buffered-access key buffers
	bucketShift             = 26          // 64 MB of virtual space per buffer
	bucketSize              = 1 << bucketShift
)

// simLocal runs Methods A and B: one node processes the whole query
// stream against a replicated index; the report divides by the node
// count (the paper's normalization, which credits A and B with perfect,
// free load balancing across the cluster).
func simLocal(cfg SimConfig) (SimReport, error) {
	tree := index.NewNaryTree(cfg.IndexKeys, treeBase)
	h := memsim.NewHierarchy(cfg.P)

	batchKeys := cfg.batchKeys()
	sim := sampleSize(cfg, 4)
	// Steady state: the first quarter warms the caches and TLB and is
	// excluded from the per-key averages. For Method B the warm window
	// rounds down to whole batches (and vanishes if the sample is a
	// single batch) so at least one full batch is always measured.
	warm := sim / 4
	if cfg.Method == MethodB {
		warm = warm / batchKeys * batchKeys
	}

	var measuredNs float64
	var measuredKeys int
	var snap memsim.Counters
	turnaround := stats.NewHistogram(1, 1e12, 480)

	next := cfg.querySource(sim)
	switch cfg.Method {
	case MethodA:
		trace := make([]memsim.Addr, 0, tree.Levels())
		for i := 0; i < sim; i++ {
			if i == warm {
				snap = h.C
			}
			k := next()
			var ns float64
			trace = trace[:0]
			_, trace = tree.RankTrace(k, trace)
			for _, a := range trace {
				ns += h.Touch(a)
			}
			ns += float64(len(trace)) * cfg.P.CompCostNodeNs
			// Read the key from the input buffer, write the result to
			// the output buffer: 8 sequential bytes (Section A.2.1).
			ns += h.Stream(2 * workload.KeyBytes)
			if i >= warm {
				measuredNs += ns
				turnaround.Add(ns)
			}
		}
		measuredKeys = sim - warm

	case MethodB:
		plan := buffering.NewPlan(tree, cfg.P.L2Size/2)
		cursors := make([]int64, tree.NodeCount())
		var ns float64
		hooks := buffering.Hooks{
			TouchNode: func(id int32) {
				ns += cfg.P.CompCostNodeNs + h.Touch(tree.NodeAddr(id))
			},
			BufferWrite: func(bucket int32, n int) {
				// Each subtree buffer is its own streaming region;
				// the write allocates lines at the buffer's tail and
				// pollutes the cache exactly as a real write buffer
				// would.
				addr := bufBase + memsim.Addr(uint64(bucket)<<bucketShift) +
					memsim.Addr(cursors[bucket]&(bucketSize-1))
				cursors[bucket] += int64(n)
				ns += h.StreamInstall(addr, n)
			},
			BufferRead: func(_ int32, n int) {
				ns += h.Stream(n)
			},
		}

		keys := make([]workload.Key, batchKeys)
		out := make([]int, batchKeys)
		done := 0
		slot := 0
		for done < sim {
			n := batchKeys
			if sim-done < n {
				n = sim - done
			}
			for j := 0; j < n; j++ {
				keys[j] = next()
			}
			if done >= warm && measuredKeys == 0 {
				snap = h.C
			}
			ns = 0
			// The arriving batch is read into (and occupies) the
			// cache before the buffered traversal begins.
			ns += h.StreamInstall(batchSlotAddr(slot), n*workload.KeyBytes)
			slot = 1 - slot
			plan.RankBatch(keys[:n], out[:n], 0, hooks)
			// Results stream out.
			ns += h.Stream(n * workload.KeyBytes)

			if done >= warm {
				measuredNs += ns
				measuredKeys += n
				// One batch's turnaround: collect-then-process means
				// every key in the batch waits for the whole batch.
				turnaround.Add(ns)
			}
			done += n
		}
	}

	if measuredKeys == 0 {
		// Degenerate tiny workloads: measure everything.
		measuredKeys = sim
	}
	perKey := measuredNs / float64(measuredKeys)
	raw := perKey * float64(cfg.TotalQueries) / 1e9
	delta := counterDelta(h.C, snap)

	r := SimReport{
		Method:           cfg.Method,
		BatchBytes:       cfg.BatchBytes,
		Nodes:            cfg.nodes(),
		TotalQueries:     cfg.TotalQueries,
		SimulatedQueries: sim,
		RawSec:           raw,
		NormalizedSec:    raw / float64(cfg.nodes()),
		L1MissesPerKey:   float64(delta.L1Misses) / float64(measuredKeys),
		L2MissesPerKey:   float64(delta.L2Misses) / float64(measuredKeys),
		TLBMissesPerKey:  float64(delta.TLBMisses) / float64(measuredKeys),
		TurnaroundP50Ns:  turnaround.Quantile(0.50),
		TurnaroundP99Ns:  turnaround.Quantile(0.99),
	}
	r.PerKeyNs = r.NormalizedSec / float64(cfg.TotalQueries) * 1e9
	return r, nil
}

// batchSlotAddr returns the address of one of the two alternating
// incoming-batch slots (double buffering).
func batchSlotAddr(slot int) memsim.Addr {
	return batchBase + memsim.Addr(slot)*(64<<20)
}

// sampleSize picks how many queries to simulate: the configured cap, or
// an automatic default that guarantees at least minBatches full batches
// so steady-state extrapolation is sound.
func sampleSize(cfg SimConfig, minBatches int) int {
	sim := cfg.SampleQueries
	if sim == 0 {
		sim = 262144
		if need := cfg.batchKeys() * minBatches; need > sim {
			sim = need
		}
	}
	if sim > cfg.TotalQueries {
		sim = cfg.TotalQueries
	}
	if sim < 1 {
		sim = 1
	}
	return sim
}

func counterDelta(now, snap memsim.Counters) memsim.Counters {
	return memsim.Counters{
		Accesses:    now.Accesses - snap.Accesses,
		L1Hits:      now.L1Hits - snap.L1Hits,
		L1Misses:    now.L1Misses - snap.L1Misses,
		L2Hits:      now.L2Hits - snap.L2Hits,
		L2Misses:    now.L2Misses - snap.L2Misses,
		TLBMisses:   now.TLBMisses - snap.TLBMisses,
		StreamBytes: now.StreamBytes - snap.StreamBytes,
	}
}
