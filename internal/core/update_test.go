package core

import (
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/workload"
)

// oracle is the reference index: the sorted key multiset, answered with
// sort.SearchInts. Rebuilt from the shadow key set at every checkpoint.
type oracle struct {
	keys []int
}

func newOracle(keys []workload.Key) *oracle {
	o := &oracle{keys: make([]int, len(keys))}
	for i, k := range keys {
		o.keys[i] = int(k)
	}
	sort.Ints(o.keys)
	return o
}

// rank is the number of keys <= k.
func (o *oracle) rank(k workload.Key) int {
	return sort.SearchInts(o.keys, int(k)+1)
}

func (o *oracle) insert(keys []workload.Key) {
	for _, k := range keys {
		o.keys = append(o.keys, int(k))
	}
	sort.Ints(o.keys)
}

// checkExact verifies the cluster agrees with the oracle on qs, via both
// the unsorted and the sorted dispatch paths.
func checkExact(t *testing.T, c *Cluster, o *oracle, qs []workload.Key) {
	t.Helper()
	out := make([]int, len(qs))
	if err := c.LookupBatchInto(qs, out); err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		if want := o.rank(q); out[i] != want {
			t.Fatalf("unsorted rank(%d) = %d, want %d", q, out[i], want)
		}
	}
	asc := append([]workload.Key(nil), qs...)
	sort.Slice(asc, func(i, j int) bool { return asc[i] < asc[j] })
	if err := c.LookupBatchInto(asc, out); err != nil {
		t.Fatal(err)
	}
	for i, q := range asc {
		if want := o.rank(q); out[i] != want {
			t.Fatalf("sorted rank(%d) = %d, want %d", q, out[i], want)
		}
	}
}

// TestMixedReadWriteAllMethods drives every method (plus the Eytzinger
// layout) through interleaved insert and lookup phases: lookups issued
// concurrently with an insert stream must stay within the monotone
// envelope of the before/after oracles, and quiescent lookups must be
// exactly the oracle.
func TestMixedReadWriteAllMethods(t *testing.T) {
	type variant struct {
		name string
		cfg  RealConfig
	}
	var variants []variant
	for _, m := range Methods() {
		variants = append(variants, variant{m.String(), RealConfig{
			Method: m, Workers: 4, BatchKeys: 512, QueueDepth: 4, MergeThreshold: 256,
		}})
	}
	variants = append(variants, variant{"C-3-eytzinger", RealConfig{
		Method: MethodC3, Workers: 4, BatchKeys: 512, QueueDepth: 4,
		MergeThreshold: 256, Layout: LayoutEytzinger,
	}})
	variants = append(variants, variant{"C-3-sortedbatches", RealConfig{
		Method: MethodC3, Workers: 4, BatchKeys: 512, QueueDepth: 4,
		MergeThreshold: 256, SortedBatches: true,
	}})

	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			keys := workload.SortedKeys(8192, 1)
			c, err := NewCluster(keys, v.cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			o := newOracle(keys)
			qs := workload.UniformQueries(700, 2)

			for phase := 0; phase < 4; phase++ {
				before := make([]int, len(qs))
				for i, q := range qs {
					before[i] = o.rank(q)
				}
				ins := workload.UniformQueries(1200, uint64(40+phase))
				o.insert(ins)
				after := make([]int, len(qs))
				for i, q := range qs {
					after[i] = o.rank(q)
				}

				var wg sync.WaitGroup
				for g := 0; g < 2; g++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						out := make([]int, len(qs))
						for it := 0; it < 10; it++ {
							if err := c.LookupBatchInto(qs, out); err != nil {
								t.Error(err)
								return
							}
							for i := range qs {
								if out[i] < before[i] || out[i] > after[i] {
									t.Errorf("phase %d: rank(%d) = %d outside [%d, %d]",
										phase, qs[i], out[i], before[i], after[i])
									return
								}
							}
						}
					}()
				}
				for off := 0; off < len(ins); off += 300 {
					if err := c.InsertBatch(ins[off : off+300]); err != nil {
						t.Fatal(err)
					}
				}
				wg.Wait()
				checkExact(t, c, o, qs)
			}

			if got, want := c.KeyCount(), len(o.keys); got != want {
				t.Fatalf("KeyCount = %d, want %d", got, want)
			}
			if st := c.UpdateStats(); st.InsertedKeys != 4*1200 {
				t.Fatalf("InsertedKeys = %d, want %d", st.InsertedKeys, 4*1200)
			}
		})
	}
}

// TestEpochSwapUnderConcurrentReaders is the update tentpole's stress
// gate: 4 concurrent LookupBatch callers run nonstop while a skewed
// insert stream forces at least 3 background merges and at least one
// rebalance (a partition outgrowing its budget re-derives the
// delimiters and swaps the epoch). Every concurrent result must lie in
// the monotone oracle envelope; every quiescent checkpoint must match a
// sort.SearchInts oracle rebuilt from the shadow key set. Run with
// -race.
func TestEpochSwapUnderConcurrentReaders(t *testing.T) {
	keys := workload.SortedKeys(32768, 3)
	cfg := RealConfig{
		Method: MethodC3, Workers: 4, BatchKeys: 1024, QueueDepth: 4,
		MergeThreshold: 512, // merge early and often
		// Default budget: 2x the initial 8192-key partitions, so the
		// skewed stream below must trigger a rebalance.
	}
	c, err := NewCluster(keys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	o := newOracle(keys)
	qs := workload.UniformQueries(1500, 4)

	// Skew every insert into partition 0's range so one partition
	// absorbs the whole stream and blows through its budget.
	limit := c.Partitioning().Delimiters()[0]
	r := workload.NewRNG(9)
	skewed := func(n int) []workload.Key {
		out := make([]workload.Key, n)
		for i := range out {
			out[i] = workload.Key(r.Uint64()) % limit
		}
		return out
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]int, len(qs))
			mine := append([]workload.Key(nil), qs...)
			if g%2 == 1 {
				sort.Slice(mine, func(i, j int) bool { return mine[i] < mine[j] })
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := c.LookupBatchInto(mine, out); err != nil {
					t.Error(err)
					return
				}
				// Sanity envelope while inserts stream: ranks are
				// monotone in inserts, so nothing may exceed the final
				// count or undershoot the seed rank. The exact check
				// happens at the quiescent checkpoints below.
				for i := range mine {
					if out[i] > len(keys)+20000 || out[i] < 0 {
						t.Errorf("rank(%d) = %d out of any possible range", mine[i], out[i])
						return
					}
				}
			}
		}(g)
	}

	// 20000 skewed keys in 500-key batches: ~39 merges at threshold
	// 512, and partition 0 exceeds its 16384-key budget midway.
	var inserted []workload.Key
	for round := 0; round < 40; round++ {
		ins := skewed(500)
		if err := c.InsertBatch(ins); err != nil {
			t.Fatal(err)
		}
		inserted = append(inserted, ins...)
		if round%10 == 9 {
			// Quiescent-for-writes checkpoint: the insert stream pauses
			// (InsertBatch has acked), so lookups must be exact against
			// the oracle rebuilt over the current shadow set — readers
			// hammering concurrently notwithstanding.
			o.insert(inserted)
			inserted = inserted[:0]
			checkExact(t, c, o, qs)
		}
	}
	close(stop)
	wg.Wait()

	o.insert(inserted)
	checkExact(t, c, o, qs)

	st := c.UpdateStats()
	if st.Merges < 3 {
		t.Fatalf("merges = %d, want >= 3", st.Merges)
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.UpdateStats().Rebalances < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("no rebalance after partition 0 exceeded its budget (stats %+v)", c.UpdateStats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The rebalance must have rebuilt the delimiters so no partition
	// exceeds the budget (2x the seed partition size).
	p := c.Partitioning()
	if max := p.MaxPartKeys(); max > 2*8192 {
		t.Fatalf("after rebalance MaxPartKeys = %d, want <= %d", max, 2*8192)
	}
	checkExact(t, c, o, qs)
}

// TestInsertAfterCloseFails pins the lifecycle contract.
func TestInsertAfterCloseFails(t *testing.T) {
	keys := workload.SortedKeys(128, 1)
	c, err := NewCluster(keys, RealConfig{Method: MethodC3, Workers: 2, BatchKeys: 32, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := c.InsertBatch([]workload.Key{1}); err == nil {
		t.Fatal("InsertBatch after Close succeeded")
	}
}

// TestInsertVisibleToOwnerRouting pins that Partitioning() tracks the
// rebalanced epoch: after a heavy skewed insert burst the delimiters
// change, and routing plus rank answers stay mutually consistent.
func TestInsertVisibleToOwnerRouting(t *testing.T) {
	keys := workload.SortedKeys(4096, 7)
	// Budget 2200 stays attainable after the 2000-key burst (average
	// partition 1524 <= 2200), so the skewed partition (1024+2000 keys)
	// must trigger a re-partitioning.
	c, err := NewCluster(keys, RealConfig{
		Method: MethodC3, Workers: 4, BatchKeys: 256, QueueDepth: 2,
		MergeThreshold: 128, PartitionBudget: 2200,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	oldDelims := append([]workload.Key(nil), c.Partitioning().Delimiters()...)
	limit := oldDelims[0]
	ins := make([]workload.Key, 2000)
	r := workload.NewRNG(8)
	for i := range ins {
		ins[i] = workload.Key(r.Uint64()) % limit
	}
	if err := c.InsertBatch(ins); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.UpdateStats().Rebalances == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no rebalance despite 3024 > 2200 budget")
		}
		time.Sleep(5 * time.Millisecond)
	}
	newDelims := c.Partitioning().Delimiters()
	same := len(newDelims) == len(oldDelims)
	if same {
		for i := range newDelims {
			if newDelims[i] != oldDelims[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("rebalance did not re-derive the delimiters")
	}
	o := newOracle(keys)
	o.insert(ins)
	checkExact(t, c, o, workload.UniformQueries(1000, 5))
}
