package core

import (
	"fmt"

	"repro/internal/workload"
)

// This file is the range half of the op-generic query engine: the
// cluster-level entry points for CountRange, ScanRange, TopK, and
// MultiGet. They share the rank pipeline's pooled batches, per-call
// gather channels, and epoch pinning; what differs per op is only how
// queries split across partitions and how partial results compose:
//
//   - CountRange reduces to ranks: count(lo,hi) = rank(hi) - rank(lo-1)
//     (rank(-1) being 0), so a batch of ranges becomes a sorted batch
//     of endpoint keys dispatched through the one-search-per-delimiter
//     sorted path — the per-endpoint cost is the sorted-rank cost, and
//     the PR 5 insert counters keep cross-partition counts exact under
//     concurrent writes for free.
//   - ScanRange fans [lo,hi] out to the partitions the range spans;
//     each scans its pinned snapshot and the partials concatenate in
//     partition order (partition key ranges are disjoint and
//     ascending, so no merge is needed).
//   - TopK collects each partition's k-largest head run and composes
//     the global answer from the highest partition backward.
//   - MultiGet is a sorted dispatch of the query keys to their owning
//     partitions; a key's multiplicity is entirely partition-local.

// KeyRange is an inclusive key range [Lo, Hi]. An inverted range
// (Hi < Lo) is empty.
type KeyRange struct {
	Lo, Hi workload.Key
}

// CountRange returns the number of indexed keys in the inclusive range
// [lo, hi]. Safe for concurrent callers and concurrent inserts.
func (c *Cluster) CountRange(lo, hi workload.Key) (int, error) {
	var r [1]KeyRange
	var out [1]int
	r[0] = KeyRange{Lo: lo, Hi: hi}
	if err := c.CountRangeBatch(r[:], out[:]); err != nil {
		return 0, err
	}
	return out[0], nil
}

// CountRangeBatch resolves each range's key count into out
// (len(out) >= len(ranges)). The ranges are decomposed into their
// endpoint rank queries — lo-1 when lo > 0, then hi — and dispatched
// through the sorted rank pipeline: one delimiter search per partition
// boundary for the whole batch, never a per-endpoint Route. The
// emission order matters: an ascending batch of disjoint ranges yields
// an already-ascending endpoint stream, so it skips the radix sort and
// pays exactly the sorted-rank cost per endpoint; anything else buys
// into the same path through one pooled radix pass.
func (c *Cluster) CountRangeBatch(ranges []KeyRange, out []int) error {
	if len(out) < len(ranges) {
		return fmt.Errorf("core: out len %d < %d ranges", len(out), len(ranges))
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return fmt.Errorf("core: cluster is closed")
	}
	if len(ranges) == 0 {
		return nil
	}
	cs := c.getCall()
	defer c.putCall(cs)

	ends := cs.qbuf[:0]
	for _, r := range ranges {
		if r.Hi < r.Lo {
			continue
		}
		if r.Lo > 0 {
			ends = append(ends, r.Lo-1)
		}
		ends = append(ends, r.Hi)
	}
	cs.qbuf = ends
	if cap(cs.rbuf) < len(ends) {
		cs.rbuf = make([]int, len(ends))
	}
	rks := cs.rbuf[:len(ends)]
	c.rankDispatch(cs, ends, rks, true, opCount)

	// Combine in the same order the endpoints were emitted: rank(hi)
	// minus rank(lo-1), the latter 0 for ranges starting at key 0.
	j := 0
	for i, r := range ranges {
		if r.Hi < r.Lo {
			out[i] = 0
			continue
		}
		below := 0
		if r.Lo > 0 {
			below = rks[j]
			j++
		}
		out[i] = rks[j] - below
		j++
	}
	return nil
}

// MultiGet returns each key's multiplicity — how many indexed copies of
// exactly that key exist (0 when absent).
func (c *Cluster) MultiGet(keys []workload.Key) ([]int, error) {
	out := make([]int, len(keys))
	if err := c.MultiGetInto(keys, out); err != nil {
		return nil, err
	}
	return out, nil
}

// MultiGetInto is MultiGet writing into a caller-provided slice
// (len(out) >= len(keys)). Keys are dispatched through the sorted
// pipeline (radix sort when needed) to their owning partitions; a
// multiplicity never crosses a partition boundary, so the per-partition
// answers are the global ones.
func (c *Cluster) MultiGetInto(keys []workload.Key, out []int) error {
	if len(out) < len(keys) {
		return fmt.Errorf("core: out len %d < %d keys", len(out), len(keys))
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return fmt.Errorf("core: cluster is closed")
	}
	if len(keys) == 0 {
		return nil
	}
	cs := c.getCall()
	defer c.putCall(cs)
	c.rankDispatch(cs, keys, out, true, opMultiGet)
	return nil
}

// ScanRange appends the indexed keys in [lo, hi], ascending, to out and
// returns the extended slice — at most limit keys (limit < 0: no
// limit). Each spanned partition scans one pinned snapshot; with
// concurrent inserts in flight the result is a consistent
// point-in-time subset per partition, and exact once writes quiesce.
func (c *Cluster) ScanRange(lo, hi workload.Key, limit int, out []workload.Key) ([]workload.Key, error) {
	if hi < lo || limit == 0 {
		return out, nil
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return out, fmt.Errorf("core: cluster is closed")
	}
	cs := c.getCall()
	defer c.putCall(cs)

	if !c.cfg.Method.Distributed() {
		// A replica holds the whole index: one batch answers.
		parts := c.gatherKeyRuns(cs, func(send func(w int, b *realBatch)) {
			w := c.nextWorker()
			b := c.getBatch(cs.reply)
			b.op = opScan
			b.keys = append(b.keys, lo, hi)
			b.limit = limit
			b.lp = c.repl[w]
			send(w, b)
		})
		return append(out, parts[0]...), nil
	}

	ep := c.epoch.Load()
	sLo, sHi := ep.part.Route(lo), ep.part.Route(hi)
	parts := c.gatherKeyRuns(cs, func(send func(w int, b *realBatch)) {
		for s := sLo; s <= sHi; s++ {
			b := c.getBatch(cs.reply)
			b.op = opScan
			b.keys = append(b.keys, lo, hi)
			b.limit = limit
			b.lp = ep.lps[s]
			send(s, b)
		}
	})
	// Partition key ranges are disjoint and ascending, so send-order
	// concatenation is the sorted result; the limit re-applies globally
	// because each partition could return up to limit keys.
	taken := 0
	for _, run := range parts {
		take := len(run)
		if limit >= 0 && take > limit-taken {
			take = limit - taken
		}
		out = append(out, run[:take]...)
		taken += take
		if limit >= 0 && taken >= limit {
			break
		}
	}
	return out, nil
}

// TopK appends the k largest indexed keys, descending, to out and
// returns the extended slice (fewer than k when the index holds fewer
// keys). Every partition contributes its head run of at most k keys;
// the global answer reads the runs from the highest partition
// backward.
func (c *Cluster) TopK(k int, out []workload.Key) ([]workload.Key, error) {
	if k <= 0 {
		return out, nil
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return out, fmt.Errorf("core: cluster is closed")
	}
	cs := c.getCall()
	defer c.putCall(cs)

	if !c.cfg.Method.Distributed() {
		parts := c.gatherKeyRuns(cs, func(send func(w int, b *realBatch)) {
			w := c.nextWorker()
			b := c.getBatch(cs.reply)
			b.op = opTopK
			b.limit = k
			b.lp = c.repl[w]
			send(w, b)
		})
		return append(out, parts[0]...), nil
	}

	ep := c.epoch.Load()
	parts := c.gatherKeyRuns(cs, func(send func(w int, b *realBatch)) {
		for s := range ep.lps {
			b := c.getBatch(cs.reply)
			b.op = opTopK
			b.limit = k
			b.lp = ep.lps[s]
			send(s, b)
		}
	})
	have := 0
	for s := len(parts) - 1; s >= 0 && have < k; s-- {
		take := len(parts[s])
		if take > k-have {
			take = k - have
		}
		out = append(out, parts[s][:take]...)
		have += take
	}
	return out, nil
}

// gatherKeyRuns runs a key-run op (scan/top-k) dispatch and collects
// each batch's outKeys in send order: the i-th batch handed to send
// fills the i-th returned run (posBase carries the sequence, unused by
// these ops otherwise). send keeps gathering under backpressure like
// the rank path, so the pipeline cannot stall; the returned runs are
// copies — pooled batch buffers never escape.
func (c *Cluster) gatherKeyRuns(cs *callState, dispatch func(send func(w int, b *realBatch))) [][]workload.Key {
	var parts [][]workload.Key
	pending := 0
	gather := func(b *realBatch) {
		parts[b.posBase] = append([]workload.Key(nil), b.outKeys...)
		c.putBatch(b)
		pending--
	}
	send := func(w int, b *realBatch) {
		b.posBase = len(parts)
		parts = append(parts, nil)
		pending++
		for {
			select {
			case c.in[w] <- b:
				return
			case r := <-cs.reply:
				gather(r)
			}
		}
	}
	dispatch(send)
	for pending > 0 {
		gather(<-cs.reply)
	}
	return parts
}
