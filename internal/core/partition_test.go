package core

import (
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

func TestNewPartitioningBasics(t *testing.T) {
	keys := workload.EvenKeys(1000)
	p, err := NewPartitioning(keys, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Parts) != 10 {
		t.Fatalf("parts = %d", len(p.Parts))
	}
	total := 0
	for i, part := range p.Parts {
		if part.Slave != i {
			t.Errorf("part %d has slave id %d", i, part.Slave)
		}
		if part.RankBase != total {
			t.Errorf("part %d rank base = %d, want %d", i, part.RankBase, total)
		}
		total += len(part.Keys)
	}
	if total != len(keys) {
		t.Errorf("partitions cover %d keys, want %d", total, len(keys))
	}
	if len(p.Delimiters()) != 9 {
		t.Errorf("delimiters = %d, want parts-1", len(p.Delimiters()))
	}
	if p.DelimiterBytes() != 9*workload.KeyBytes {
		t.Errorf("delimiter bytes = %d", p.DelimiterBytes())
	}
}

func TestPartitioningEqualSizes(t *testing.T) {
	keys := workload.EvenKeys(327680)
	p, err := NewPartitioning(keys, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i, part := range p.Parts {
		if len(part.Keys) != 32768 {
			t.Errorf("part %d has %d keys, want 32768 (equal-size partitions)", i, len(part.Keys))
		}
	}
	if p.MaxPartKeys() != 32768 {
		t.Errorf("MaxPartKeys = %d", p.MaxPartKeys())
	}
}

func TestPartitioningUnevenSizes(t *testing.T) {
	keys := workload.EvenKeys(103)
	p, err := NewPartitioning(keys, 10)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, part := range p.Parts {
		n := len(part.Keys)
		if n < 10 || n > 11 {
			t.Errorf("uneven split: partition of %d keys", n)
		}
		total += n
	}
	if total != 103 {
		t.Errorf("total %d", total)
	}
}

func TestPartitioningErrors(t *testing.T) {
	keys := workload.EvenKeys(10)
	if _, err := NewPartitioning(keys, 0); err == nil {
		t.Error("0 parts accepted")
	}
	if _, err := NewPartitioning(keys, -1); err == nil {
		t.Error("negative parts accepted")
	}
	if _, err := NewPartitioning(keys, 11); err == nil {
		t.Error("more parts than keys accepted")
	}
	if _, err := NewPartitioning([]workload.Key{3, 1, 2}, 2); err == nil {
		t.Error("unsorted keys accepted")
	}
}

func TestRouteBoundaries(t *testing.T) {
	keys := []workload.Key{10, 20, 30, 40, 50, 60}
	p, err := NewPartitioning(keys, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Partitions: [10,20] [30,40] [50,60]; delimiters 30, 50.
	cases := []struct {
		k    workload.Key
		want int
	}{
		{0, 0}, {10, 0}, {29, 0}, {30, 1}, {49, 1}, {50, 2}, {100, 2},
	}
	for _, c := range cases {
		if got := p.Route(c.k); got != c.want {
			t.Errorf("Route(%d) = %d, want %d", c.k, got, c.want)
		}
	}
}

// The fundamental distributed-index invariant: routing + local rank +
// rank base reproduces the global rank for every query.
func TestRouteComposesToGlobalRank(t *testing.T) {
	keys := workload.SortedKeys(5000, 3)
	for _, parts := range []int{1, 2, 7, 10, 50} {
		p, err := NewPartitioning(keys, parts)
		if err != nil {
			t.Fatal(err)
		}
		r := workload.NewRNG(9)
		for i := 0; i < 5000; i++ {
			q := r.Key()
			s := p.Route(q)
			local := workload.ReferenceRank(p.Parts[s].Keys, q)
			if got, want := p.GlobalRank(s, local), workload.ReferenceRank(keys, q); got != want {
				t.Fatalf("parts=%d: key %d routed to %d gives rank %d, want %d", parts, q, s, got, want)
			}
		}
	}
}

// Property version over random key sets and partition counts.
func TestRouteComposesProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16, partsRaw uint8, probes []uint32) bool {
		n := int(nRaw%3000) + 1
		parts := int(partsRaw%16) + 1
		if parts > n {
			parts = n
		}
		keys := workload.SortedKeys(n, seed)
		p, err := NewPartitioning(keys, parts)
		if err != nil {
			return false
		}
		for _, pr := range probes {
			q := workload.Key(pr)
			s := p.Route(q)
			local := workload.ReferenceRank(p.Parts[s].Keys, q)
			if p.GlobalRank(s, local) != workload.ReferenceRank(keys, q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMethodStrings(t *testing.T) {
	want := map[Method]string{
		MethodA: "A", MethodB: "B", MethodC1: "C-1", MethodC2: "C-2", MethodC3: "C-3",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), s)
		}
		if !m.Valid() {
			t.Errorf("%v not valid", m)
		}
	}
	if Method(99).Valid() {
		t.Error("Method(99) valid")
	}
	if MethodA.Distributed() || MethodB.Distributed() {
		t.Error("A/B are not distributed")
	}
	if !MethodC1.Distributed() || !MethodC2.Distributed() || !MethodC3.Distributed() {
		t.Error("C variants are distributed")
	}
	if len(Methods()) != 5 {
		t.Error("Methods() should list all five")
	}
}

func TestSimConfigValidate(t *testing.T) {
	good := SimConfig{
		P:            pentium(),
		Method:       MethodC3,
		IndexKeys:    workload.EvenKeys(1000),
		TotalQueries: 1000,
		BatchBytes:   8 << 10,
		Masters:      1,
		Slaves:       10,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	cases := map[string]func(*SimConfig){
		"bad method":   func(c *SimConfig) { c.Method = Method(42) },
		"empty index":  func(c *SimConfig) { c.IndexKeys = nil },
		"no queries":   func(c *SimConfig) { c.TotalQueries = 0 },
		"tiny batch":   func(c *SimConfig) { c.BatchBytes = 2 },
		"no slaves":    func(c *SimConfig) { c.Slaves = 0 },
		"no masters":   func(c *SimConfig) { c.Masters = 0 },
		"too few keys": func(c *SimConfig) { c.IndexKeys = workload.EvenKeys(5) },
		"neg sample":   func(c *SimConfig) { c.SampleQueries = -1 },
	}
	for name, mutate := range cases {
		c := good
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
