// Package core implements the paper's contribution: the distributed
// in-cache index (Method C) and the replicated-index baselines it is
// evaluated against (Methods A and B), in two forms.
//
// The simulated engines (SimLocal for A/B, SimCluster for C) execute the
// methods against the trace-driven cache simulator (internal/memsim),
// the network model (internal/netsim) and the discrete-event scheduler
// (internal/des), producing the virtual-nanosecond timings that
// reproduce Figure 3 and Tables 2-3. The real engine (Cluster) runs the
// same methods concurrently on the host — goroutine nodes, channel
// interconnect — and returns actual lookup results, which is what a
// library user adopts and what the cross-validation tests exercise.
package core

import "fmt"

// Method selects one of the five query-processing strategies of
// Section 3.
type Method int

const (
	// MethodA replicates the n-ary tree on every node and looks keys
	// up one by one, paying a potential cache miss per level.
	MethodA Method = iota
	// MethodB replicates the tree and processes keys in batches with
	// the Zhou-Ross buffering access technique over L2-sized subtrees.
	MethodB
	// MethodC1 partitions the index over slave caches; slaves look up
	// keys in a CSB+ tree.
	MethodC1
	// MethodC2 is C1 with buffered access over L1-sized subtrees.
	MethodC2
	// MethodC3 partitions the index; slaves binary-search a sorted
	// array — the paper's overall winner.
	MethodC3
)

// Methods lists all five in presentation order.
func Methods() []Method {
	return []Method{MethodA, MethodB, MethodC1, MethodC2, MethodC3}
}

// String returns the paper's name for the method.
func (m Method) String() string {
	switch m {
	case MethodA:
		return "A"
	case MethodB:
		return "B"
	case MethodC1:
		return "C-1"
	case MethodC2:
		return "C-2"
	case MethodC3:
		return "C-3"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Distributed reports whether the method partitions the index over the
// cluster (any Method C variant) rather than replicating it.
func (m Method) Distributed() bool {
	return m == MethodC1 || m == MethodC2 || m == MethodC3
}

// Valid reports whether m is one of the five defined methods.
func (m Method) Valid() bool { return m >= MethodA && m <= MethodC3 }
