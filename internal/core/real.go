package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultfs"
	"repro/internal/index"
	"repro/internal/workload"
)

// Layout selects the slave-side index structure for Method C-3 (the
// other methods fix their structure by definition).
type Layout int

const (
	// LayoutSortedArray is the paper's C-3 structure: the partition's
	// sorted key run, binary-searched. The default.
	LayoutSortedArray Layout = iota
	// LayoutEytzinger stores each partition in Eytzinger (BFS) order and
	// searches it with an interleaved branchless descent — 2x the
	// footprint (rank table) for a hot top-of-tree and overlapping
	// cache misses. Opt-in; only valid with MethodC3.
	LayoutEytzinger
)

// String names the layout for reports.
func (l Layout) String() string {
	switch l {
	case LayoutSortedArray:
		return "sorted-array"
	case LayoutEytzinger:
		return "eytzinger"
	}
	return fmt.Sprintf("Layout(%d)", int(l))
}

// RealConfig configures the real concurrent runtime: goroutine nodes
// connected by channels, executing actual lookups on the host. This is
// the adoptable library the simulated engines validate against — every
// method returns bit-identical ranks; only performance differs.
type RealConfig struct {
	// Method selects the strategy. Method A/B replicate the index on
	// Workers nodes and balance batches round-robin (the paper's
	// dispatcher with a load-balancing algorithm); Method C partitions
	// the index over Workers slaves with the caller acting as master.
	Method Method
	// Workers is the number of processing goroutines (the paper's 10
	// slaves / 11 worker nodes).
	Workers int
	// BatchKeys is the pipeline granularity: keys per message.
	BatchKeys int
	// QueueDepth bounds in-flight batches per worker (backpressure).
	QueueDepth int
	// Layout selects the Method C-3 slave structure; the zero value is
	// the paper's sorted array. Setting LayoutEytzinger with any other
	// method is a configuration error.
	Layout Layout
	// SortedBatches opts unsorted callers into the sorted-batch
	// pipeline: batches that are not already ascending are sorted by
	// key with a pooled radix sort before dispatch, so they too get the
	// one-sweep routing and the streaming merge kernels. Ascending
	// batches are always auto-detected and take the sorted path
	// regardless of this flag; SortedBatches only controls whether
	// unsorted input pays the O(n) sort to join them.
	SortedBatches bool
	// MergeThreshold is the per-partition delta-buffer size that
	// triggers a background compaction of buffer+base into a fresh
	// immutable array (see Insert/InsertBatch). Zero selects
	// index.DefaultMergeThreshold.
	MergeThreshold int
	// PartitionBudget caps a partition's key count before a background
	// rebalance recomputes the delimiters over the whole key set — the
	// paper's fits-in-cache invariant, maintained dynamically as
	// inserts skew partitions. Zero selects twice the initial maximum
	// partition size; negative disables rebalancing. Once the whole
	// index outgrows budget*Workers the budget is unattainable by
	// re-partitioning, and the trigger degrades to skew detection
	// (twice the average partition size) instead of storming rebuilds.
	// Only meaningful for the distributed methods.
	PartitionBudget int
	// WALDir, when non-empty, makes writes durable: every partition
	// gets a write-ahead log under this directory, inserts are logged
	// and fsynced (group commit) before InsertBatch returns, frozen-
	// layer publishes flush immutable segments, and NewCluster recovers
	// segment+WAL state from the directory — in which case the caller's
	// keys serve only as the baseline for a fresh directory. Empty
	// keeps the index purely in memory (the previous behaviour).
	WALDir string
	// FsyncInterval is the group-commit window (see
	// index.StoreOptions.FsyncInterval): 0 fsyncs on every commit
	// leader, > 0 spaces fsyncs apart, < 0 disables fsync (acks are no
	// longer crash-durable). Only meaningful with WALDir.
	FsyncInterval time.Duration
	// WALFS overrides the filesystem the durability layer writes
	// through (fault-injection hook for tests); nil means the real one.
	WALFS faultfs.FS
	// Logf, if set, receives recovery/quarantine/flush notices from the
	// durability layer.
	Logf func(format string, args ...any)
}

// DefaultRealConfig returns a ready-to-use configuration for m.
func DefaultRealConfig(m Method) RealConfig {
	return RealConfig{Method: m, Workers: 8, BatchKeys: 16384, QueueDepth: 4}
}

func (c RealConfig) validate() error {
	if !c.Method.Valid() {
		return fmt.Errorf("core: invalid method %d", int(c.Method))
	}
	if c.Workers <= 0 {
		return fmt.Errorf("core: Workers = %d", c.Workers)
	}
	if c.BatchKeys <= 0 {
		return fmt.Errorf("core: BatchKeys = %d", c.BatchKeys)
	}
	if c.QueueDepth <= 0 {
		return fmt.Errorf("core: QueueDepth = %d", c.QueueDepth)
	}
	switch c.Layout {
	case LayoutSortedArray:
	case LayoutEytzinger:
		if c.Method != MethodC3 {
			return fmt.Errorf("core: LayoutEytzinger requires MethodC3, got %v", c.Method)
		}
	default:
		return fmt.Errorf("core: invalid layout %d", int(c.Layout))
	}
	if c.MergeThreshold < 0 {
		return fmt.Errorf("core: MergeThreshold = %d", c.MergeThreshold)
	}
	return nil
}

// batchOp tags a realBatch with the operation the worker executes.
// One op-generic pipeline — pooled batches, per-call gather channels,
// epoch-pinned routing — serves every query shape; adding an op is a
// dispatch-table entry, not a new pipeline.
type batchOp uint8

const (
	// opRank resolves keys to global ranks (the paper's one query).
	opRank batchOp = iota
	// opCount is opRank for range endpoints: batches carry the hi and
	// lo-1 keys of inclusive ranges and the worker ranks them exactly
	// like opRank — count(lo,hi) = rank(hi) - rank(lo-1) composes
	// client-side. The tag exists so the dispatcher can always sort
	// endpoint batches (one delimiter search per boundary) regardless
	// of the SortedBatches setting.
	opCount
	// opScan returns the partition's keys in [keys[0], keys[1]],
	// ascending, at most limit of them, in outKeys.
	opScan
	// opTopK returns the partition's limit largest keys, descending,
	// in outKeys.
	opTopK
	// opMultiGet resolves each key to its multiplicity (indexed copies
	// of exactly that key). Multiplicities are partition-local — every
	// copy of a key routes to one partition — so no rank base applies.
	opMultiGet
	// opInsert applies keys to the partition's delta buffer.
	opInsert
)

// realBatch is one message on the channel interconnect. Batches are
// pooled per cluster: the dispatcher checks one out, tags the op, fills
// keys (and pos for scattered batches), the worker fills ranks or
// outKeys, and the gatherer returns it to the pool after copying the
// results out — steady state allocates nothing.
type realBatch struct {
	op   batchOp
	keys []workload.Key
	// pos[i] is keys[i]'s position in the caller's query slice. A nil
	// pos means the batch is a contiguous run starting at posBase (the
	// replicated methods' round-robin slices), so results copy back
	// without a scatter.
	pos     []int32
	posBase int
	// ranks is the worker's reply for the int-valued ops: global ranks
	// (rank base folded in) for opRank/opCount, multiplicities for
	// opMultiGet.
	ranks []int
	// limit bounds a scan's result count (negative: unbounded) and is
	// the k of a top-k batch.
	limit int
	// outKeys is the worker's reply for the key-run ops (opScan
	// ascending, opTopK descending). Owned by the batch and recycled.
	outKeys []workload.Key
	// lp is the partition (or replica) state the batch is answered
	// against: set at dispatch from the pinned epoch, so a batch routed
	// before a rebalance is answered by the epoch that routed it.
	lp *livePart
	// seq is the durable watermark for a logged insert batch (the WAL
	// generation after its record); 0 for in-memory-only inserts.
	seq uint64
	// sorted marks keys as an ascending run, steering the worker onto
	// the streaming merge kernel (RankSorted) instead of per-key search.
	sorted bool
	// alias marks keys (and pos) as views into memory the batch does
	// not own — the caller's query slice or a pooled sort scratch — so
	// the gatherer drops them instead of recycling their capacity.
	alias bool
	// keysBuf/posBuf are the batch's owned backing arrays. putBatch
	// restores them after an aliased use (and re-captures them after an
	// owned use grows them), so a workload that alternates sorted
	// (aliasing) and unsorted (accumulating) calls keeps its grown
	// capacity instead of re-allocating it every other call.
	keysBuf []workload.Key
	posBuf  []int32
	// reply routes the processed batch back to the issuing call; each
	// LookupBatch call gathers on its own channel, which is what makes
	// concurrent callers safe without a global lock.
	reply chan *realBatch
}

// workerStats tracks one worker's processed volume. Fields are atomics
// (callers may snapshot Stats while other goroutines query), and the
// struct is padded to a cache line so per-worker counters don't false-
// share.
type workerStats struct {
	keys    atomic.Int64
	batches atomic.Int64
	busyNs  atomic.Int64
	_       [40]byte
}

// Cluster is the running real engine. Create with NewCluster, query with
// Lookup/LookupBatch/LookupBatchInto, and Close when done. All lookup
// methods are safe for any number of concurrent callers: each call
// gathers replies on its own channel, so callers pipeline through the
// shared worker pool instead of serializing behind a lock. Close blocks
// until in-flight calls drain.
type Cluster struct {
	cfg  RealConfig
	keys []workload.Key

	// epoch is the current routing + partition state for the
	// distributed methods (see update.go); repl holds the replicated
	// methods' per-worker state, fixed for the cluster's lifetime.
	epoch atomic.Pointer[updEpoch]
	repl  []*livePart

	in    []chan *realBatch
	wg    sync.WaitGroup
	stats []workerStats

	// insertMu serializes the write path against rebalances: insert
	// calls hold it shared for their full duration (through the acks),
	// the rebalancer takes it exclusively while migrating.
	insertMu    sync.RWMutex
	rebalanceCh chan struct{}
	stop        chan struct{}
	updWG       sync.WaitGroup
	budget      int

	insertedKeys atomic.Int64
	merges       atomic.Int64
	rebalances   atomic.Int64

	// batches pools *realBatch between dispatch and gather; calls pools
	// per-call dispatch state (gather channel + accumulation slots).
	// Each pool sits behind a bounded free-list channel: sync.Pool is
	// emptied by the garbage collector (victim caches survive only one
	// cycle), so a long-running cluster would re-allocate its entire
	// batch working set — tens of 16K-entry slices — after every GC.
	// The channel is invisible to the collector's pool sweep, holds the
	// steady-state working set (it is sized to the worst-case in-flight
	// batch count), and falls back to the pool only under bursts.
	freeBatches chan *realBatch
	freeCalls   chan *callState
	batches     sync.Pool
	calls       sync.Pool

	// cs is the durable state (nil without WALDir). For the replicated
	// methods all workers share one store, dispatched under replMu; the
	// distributed methods keep per-partition stores on their livePart.
	cs        *clusterStore
	replStore *index.Store
	replMu    sync.Mutex

	// mu is held shared by lookups for their full duration and
	// exclusively by Close, which therefore waits out in-flight calls.
	mu     sync.RWMutex
	closed bool //dc:guardedby mu

	rr atomic.Uint64 // round-robin cursor for replicated methods
}

// callState is one LookupBatch call's dispatch/gather scratch, pooled on
// the cluster.
type callState struct {
	// reply receives processed batches. LookupBatchInto grows it to
	// cover every batch the call can have in flight, so a worker never
	// blocks delivering a result (which would head-of-line-block other
	// callers' batches queued behind it); the pool keeps the largest.
	reply chan *realBatch
	// accum[w] is worker w's accumulating batch (Method C dispatch).
	accum []*realBatch
	// ends[w] is the highest WAL offset this call appended to partition
	// w's store (durable inserts); the ack waits on the group fsync
	// covering every entry.
	ends []int64
	// sort is the pooled radix-sort scratch for SortedBatches callers.
	sort RadixScratch
	// qbuf/rbuf are the range ops' endpoint and endpoint-rank scratch
	// (CountRangeBatch builds its rank queries here before handing them
	// to rankDispatch).
	qbuf []workload.Key
	rbuf []int
}

// NewCluster builds the index (replicated or partitioned per the
// method), spawns the worker goroutines, and returns the running
// cluster.
func NewCluster(keys []workload.Key, cfg RealConfig) (*Cluster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("core: empty index")
	}
	if err := checkSorted(keys); err != nil {
		return nil, err
	}

	// Durable mode: recover the stored state first — an existing store
	// overrides the caller's keys, which then only seed a fresh
	// directory.
	var cs *clusterStore
	if cfg.WALDir != "" {
		var err error
		cs, err = openClusterStore(cfg.WALDir, index.StoreOptions{
			FS: cfg.WALFS, FsyncInterval: cfg.FsyncInterval, Logf: cfg.Logf,
		})
		if err != nil {
			return nil, err
		}
		if rec := cs.recoveredKeys(); rec != nil {
			if len(rec) == 0 {
				cs.closeStores()
				return nil, fmt.Errorf("core: recovered an empty index from %s", cfg.WALDir)
			}
			if err := checkSorted(rec); err != nil {
				cs.closeStores()
				return nil, fmt.Errorf("core: recovered keys from %s: %w", cfg.WALDir, err)
			}
			keys = rec
		}
	}

	c := &Cluster{
		cfg:         cfg,
		keys:        keys,
		in:          make([]chan *realBatch, cfg.Workers),
		stats:       make([]workerStats, cfg.Workers),
		rebalanceCh: make(chan struct{}, 1),
		stop:        make(chan struct{}),
		cs:          cs,
	}
	c.batches.New = func() any { return new(realBatch) }
	replyCap := cfg.Workers*cfg.QueueDepth + cfg.Workers
	c.calls.New = func() any {
		return &callState{
			reply: make(chan *realBatch, replyCap),
			accum: make([]*realBatch, cfg.Workers),
			ends:  make([]int64, cfg.Workers),
		}
	}
	// Free-list capacities cover the steady state: every worker queue
	// full plus one accumulating and one in-process batch per worker,
	// and a handful of concurrent calls.
	c.freeBatches = make(chan *realBatch, cfg.Workers*(cfg.QueueDepth+2))
	c.freeCalls = make(chan *callState, 16)

	if cfg.Method.Distributed() {
		ep, err := c.newEpoch(keys)
		if err != nil {
			if cs != nil {
				cs.closeStores()
			}
			return nil, err
		}
		if cs != nil {
			if err := c.attachDurable(ep); err != nil {
				cs.closeStores()
				return nil, err
			}
		}
		c.epoch.Store(ep)
		if cfg.PartitionBudget > 0 {
			c.budget = cfg.PartitionBudget
		} else if cfg.PartitionBudget == 0 {
			c.budget = 2 * ep.part.MaxPartKeys()
		}
		c.updWG.Add(1)
		go c.rebalancer()
	} else {
		build := methodBuilder(cfg)
		c.repl = make([]*livePart, cfg.Workers)
		for w := range c.repl {
			u := index.NewUpdatable(keys, build, cfg.MergeThreshold)
			u.OnMerge = c.noteMerge
			c.repl[w] = &livePart{slot: w, upd: u}
		}
		if cs != nil {
			if err := c.attachDurableRepl(keys); err != nil {
				cs.closeStores()
				return nil, err
			}
		}
	}
	if cs != nil {
		cs.start()
	}

	for w := 0; w < cfg.Workers; w++ {
		c.in[w] = make(chan *realBatch, cfg.QueueDepth)
		c.wg.Add(1)
		go c.runWorker(w)
	}
	return c, nil
}

// Partitioning exposes the cluster's current routing structure (nil for
// the replicated methods); callers reuse it instead of rebuilding one.
// A rebalance replaces it, so callers should not cache it across
// inserts.
func (c *Cluster) Partitioning() *Partitioning {
	if ep := c.epoch.Load(); ep != nil {
		return ep.part
	}
	return nil
}

// processBatch executes one batch against the partition state it was
// routed with, switching on the op tag: inserts land in the delta
// buffer, scans and top-k fill outKeys from a pinned snapshot, and the
// rank-shaped ops compute into b.ranks with the rank base — static plus
// the preceding partitions' insert counters — folded into the single
// write per key.
//
//dc:noalloc
func (c *Cluster) processBatch(b *realBatch) {
	lp := b.lp
	switch b.op {
	case opInsert:
		if b.seq != 0 {
			lp.upd.InsertBatchAt(b.keys, b.seq)
		} else {
			lp.upd.InsertBatch(b.keys)
		}
		if lp.ep != nil {
			lp.ep.inserted[lp.slot].n.Add(int64(len(b.keys)))
		}
		c.maybeRebalance(lp)
		b.ranks = b.ranks[:0]
		return
	case opScan:
		b.outKeys = lp.upd.ScanRange(b.keys[0], b.keys[1], b.limit, b.outKeys[:0])
		b.ranks = b.ranks[:0]
		return
	case opTopK:
		b.outKeys = lp.upd.TopK(b.limit, b.outKeys[:0])
		b.ranks = b.ranks[:0]
		return
	}
	n := len(b.keys)
	if cap(b.ranks) < n {
		b.ranks = make([]int, n)
	}
	out := b.ranks[:n]
	b.ranks = out
	if b.op == opMultiGet {
		lp.upd.CountKeys(b.keys, out)
		return
	}
	add := lp.rankBase
	if lp.ep != nil {
		add += lp.ep.insertedBefore(lp.slot)
	}
	if b.sorted {
		lp.upd.RankSorted(b.keys, out, add)
	} else {
		lp.upd.RankBatch(b.keys, out, add)
	}
}

func (c *Cluster) runWorker(w int) {
	defer c.wg.Done()
	st := &c.stats[w]
	for b := range c.in[w] {
		start := time.Now()
		c.processBatch(b)
		st.busyNs.Add(time.Since(start).Nanoseconds())
		st.keys.Add(int64(len(b.keys)))
		st.batches.Add(1)
		b.reply <- b
	}
}

// getBatch checks a pooled batch out for a call's reply channel.
func (c *Cluster) getBatch(reply chan *realBatch) *realBatch {
	var b *realBatch
	select {
	case b = <-c.freeBatches:
	default:
		b = c.batches.Get().(*realBatch)
	}
	b.op = opRank
	b.keys = b.keys[:0]
	b.pos = b.pos[:0]
	b.posBase = 0
	b.limit = 0
	b.outKeys = b.outKeys[:0]
	b.sorted = false
	b.alias = false
	b.seq = 0
	b.lp = nil
	b.reply = reply
	return b
}

// putBatch recycles b after its ranks were copied out. Aliased key and
// position slices (the replicated methods and the sorted dispatch point
// them at the caller's queries or at a call's pooled sort scratch) are
// swapped back for the batch's owned arrays rather than recycled: the
// aliased memory belongs to someone else and may be reused the moment
// the call returns, while the owned capacity must survive aliased uses
// so mixed sorted/unsorted workloads stay allocation-free.
func (c *Cluster) putBatch(b *realBatch) {
	if b.alias {
		b.keys, b.pos = b.keysBuf, b.posBuf
	} else {
		b.keysBuf, b.posBuf = b.keys, b.pos
	}
	b.reply = nil
	b.lp = nil
	select {
	case c.freeBatches <- b:
	default:
		c.batches.Put(b)
	}
}

// LookupBatch routes queries through the cluster and returns their
// global ranks, in query order. It is safe for concurrent callers.
func (c *Cluster) LookupBatch(queries []workload.Key) ([]int, error) {
	out := make([]int, len(queries))
	if err := c.LookupBatchInto(queries, out); err != nil {
		return nil, err
	}
	return out, nil
}

// LookupBatchInto is LookupBatch writing into a caller-provided slice
// (len(out) >= len(queries)), the zero-allocation steady-state entry
// point. The caller plays the master: it partitions (Method C) or
// round-robins (A/B) the stream into batches, dispatches them over the
// channel interconnect, and gathers replies on a per-call channel —
// concurrent callers pipeline through the same worker pool.
//
//dc:noalloc
func (c *Cluster) LookupBatchInto(queries []workload.Key, out []int) error {
	if len(out) < len(queries) {
		return fmt.Errorf("core: out len %d < %d queries", len(out), len(queries))
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return fmt.Errorf("core: cluster is closed")
	}
	if len(queries) == 0 {
		return nil
	}
	cs := c.getCall()
	defer c.putCall(cs)
	c.rankDispatch(cs, queries, out, c.cfg.SortedBatches, opRank)
	return nil
}

// getCall checks a pooled per-call dispatch state out.
func (c *Cluster) getCall() *callState {
	select {
	case cs := <-c.freeCalls:
		return cs
	default:
		return c.calls.Get().(*callState)
	}
}

// putCall recycles a call's dispatch state.
func (c *Cluster) putCall(cs *callState) {
	select {
	case c.freeCalls <- cs:
	default:
		c.calls.Put(cs)
	}
}

// rankDispatch routes the int-valued ops (opRank, opCount, opMultiGet):
// it batches queries, dispatches them over the interconnect, and
// scatters the workers' results into out in query order. sortUnsorted
// opts an unsorted batch into the radix-sort + one-search-per-delimiter
// path (always on for opCount and opMultiGet callers; SortedBatches for
// plain ranks). The caller holds c.mu shared and owns cs.
//
//dc:noalloc
func (c *Cluster) rankDispatch(cs *callState, queries []workload.Key, out []int, sortUnsorted bool, op batchOp) {
	if len(queries) == 0 {
		return
	}
	bk := c.cfg.BatchKeys
	// Worst-case batches in flight: one full batch per BatchKeys run
	// plus one final partial flush per worker. Steady state this is a
	// no-op (the pooled channel already grew).
	if need := len(queries)/bk + c.cfg.Workers + 1; cap(cs.reply) < need {
		cs.reply = make(chan *realBatch, need)
	}
	distributed := c.cfg.Method.Distributed()
	pending := 0

	gather := func(b *realBatch) {
		if b.pos == nil {
			copy(out[b.posBase:b.posBase+len(b.ranks)], b.ranks)
		} else {
			for i, p := range b.pos {
				out[p] = b.ranks[i]
			}
		}
		c.putBatch(b)
		pending--
	}
	send := func(w int, b *realBatch) {
		pending++
		for {
			select {
			case c.in[w] <- b:
				return
			case r := <-cs.reply:
				// Keep gathering while backpressured so the pipeline
				// cannot stall and buffers recycle at steady state.
				gather(r)
			}
		}
	}

	// Sorted-batch detection: an ascending run takes the sort-route-scan
	// path below — one boundary search per partition instead of one
	// Route per key, batches that alias the query slice instead of
	// copying it, and the workers' streaming merge kernels. Unsorted
	// input joins the same path via the pooled radix sort when the
	// caller opted in with SortedBatches; otherwise it takes the classic
	// per-key dispatch.
	runKeys := queries
	var runPos []int32 // nil: run positions == run indices (aliases queries)
	sorted := SortedRun(queries)
	if !sorted && sortUnsorted {
		runKeys, runPos = cs.sort.SortByKey(queries)
		sorted = true
	}

	// Pin the routing epoch for the whole call: every batch carries the
	// livePart it was routed with, so a rebalance installing new
	// delimiters mid-call cannot mismatch routing and answering state.
	var ep *updEpoch
	if distributed {
		ep = c.epoch.Load()
	}

	switch {
	case distributed && sorted:
		// One sweep over the delimiters (ForEachSortedRun): partition s
		// owns the contiguous run up to the first key >= delims[s].
		// Runs alias runKeys (no copy); a run's original positions are
		// either the contiguous range starting at posBase (input was
		// already sorted) or the corresponding slice of the sort
		// permutation.
		ForEachSortedRun(ep.part.delims, runKeys, bk, func(s, start, end int) {
			b := c.getBatch(cs.reply)
			b.op = op
			b.keys = runKeys[start:end]
			b.posBase = start
			b.sorted = true
			b.alias = true
			b.lp = ep.lps[s]
			if runPos != nil {
				b.pos = runPos[start:end]
			} else {
				b.pos = nil
			}
			send(s, b)
		})
	case distributed:
		// Master dispatch: per-slave accumulation directly into pooled
		// batches, handed off whole at BatchKeys (no copy).
		for i, q := range queries {
			s := ep.part.Route(q)
			b := cs.accum[s]
			if b == nil {
				b = c.getBatch(cs.reply)
				b.op = op
				b.lp = ep.lps[s]
				cs.accum[s] = b
			}
			b.keys = append(b.keys, q)
			b.pos = append(b.pos, int32(i))
			if len(b.keys) >= bk {
				cs.accum[s] = nil
				send(s, b)
			}
		}
		for s, b := range cs.accum {
			if b == nil {
				continue
			}
			cs.accum[s] = nil
			if len(b.keys) == 0 {
				c.putBatch(b)
				continue
			}
			send(s, b)
		}
	default:
		// Replicated index: round-robin load balancing over contiguous
		// query runs (keys alias the caller's slice — or the sorted
		// scratch for SortedBatches callers — no copy, and the gather
		// is a straight copy instead of a scatter for in-order runs).
		for start := 0; start < len(runKeys); start += bk {
			end := min(start+bk, len(runKeys))
			b := c.getBatch(cs.reply)
			b.op = op
			b.keys = runKeys[start:end]
			b.posBase = start
			b.sorted = sorted
			b.alias = true
			if runPos != nil {
				b.pos = runPos[start:end]
			} else {
				b.pos = nil
			}
			w := c.nextWorker()
			b.lp = c.repl[w]
			send(w, b)
		}
	}

	for pending > 0 {
		gather(<-cs.reply)
	}
}

// nextWorker advances the round-robin cursor. The cursor is 64-bit so
// the modulo stays unbiased for any realistic lifetime: the previous
// uint32 cursor skewed selection toward low-numbered workers every time
// it wrapped when Workers didn't divide 2^32, whereas a uint64 never
// wraps in practice (584 years at a batch per nanosecond... per 584
// dispatchers) and the increment stays a single wait-free Add.
func (c *Cluster) nextWorker() int {
	return int((c.rr.Add(1) - 1) % uint64(c.cfg.Workers))
}

// Lookup resolves a single key synchronously (a convenience wrapper; for
// throughput use LookupBatch).
func (c *Cluster) Lookup(q workload.Key) (int, error) {
	var one [1]workload.Key
	var res [1]int
	one[0] = q
	if err := c.LookupBatchInto(one[:], res[:]); err != nil {
		return 0, err
	}
	return res[0], nil
}

// RealStats summarizes the cluster's lifetime work.
type RealStats struct {
	Method        Method
	Workers       int
	KeysProcessed int64
	Batches       int64
	// BusyPerWorker is each worker's cumulative processing time.
	BusyPerWorker []time.Duration
}

// Stats snapshots the per-worker counters. Safe to call concurrently
// with lookups; a snapshot taken mid-call reflects the batches completed
// so far.
func (c *Cluster) Stats() RealStats {
	s := RealStats{
		Method:        c.cfg.Method,
		Workers:       c.cfg.Workers,
		BusyPerWorker: make([]time.Duration, c.cfg.Workers),
	}
	for w := range c.stats {
		s.KeysProcessed += c.stats[w].keys.Load()
		s.Batches += c.stats[w].batches.Load()
		s.BusyPerWorker[w] = time.Duration(c.stats[w].busyNs.Load())
	}
	return s
}

// Close shuts the workers down and waits for them to exit. Calls in
// flight complete first (including insert calls); further lookups and
// inserts fail. Background compactions and the rebalancer are drained
// before Close returns. Close is idempotent.
func (c *Cluster) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	close(c.stop)
	for _, ch := range c.in {
		close(ch)
	}
	c.wg.Wait()
	c.updWG.Wait()
	c.quiesceUpdates()
	if c.cs != nil {
		c.cs.close()
	}
}
