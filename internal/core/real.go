package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/buffering"
	"repro/internal/index"
	"repro/internal/workload"
)

// RealConfig configures the real concurrent runtime: goroutine nodes
// connected by channels, executing actual lookups on the host. This is
// the adoptable library the simulated engines validate against — every
// method returns bit-identical ranks; only performance differs.
type RealConfig struct {
	// Method selects the strategy. Method A/B replicate the index on
	// Workers nodes and balance batches round-robin (the paper's
	// dispatcher with a load-balancing algorithm); Method C partitions
	// the index over Workers slaves with the caller acting as master.
	Method Method
	// Workers is the number of processing goroutines (the paper's 10
	// slaves / 11 worker nodes).
	Workers int
	// BatchKeys is the pipeline granularity: keys per message.
	BatchKeys int
	// QueueDepth bounds in-flight batches per worker (backpressure).
	QueueDepth int
}

// DefaultRealConfig returns a ready-to-use configuration for m.
func DefaultRealConfig(m Method) RealConfig {
	return RealConfig{Method: m, Workers: 8, BatchKeys: 16384, QueueDepth: 4}
}

func (c RealConfig) validate() error {
	if !c.Method.Valid() {
		return fmt.Errorf("core: invalid method %d", int(c.Method))
	}
	if c.Workers <= 0 {
		return fmt.Errorf("core: Workers = %d", c.Workers)
	}
	if c.BatchKeys <= 0 {
		return fmt.Errorf("core: BatchKeys = %d", c.BatchKeys)
	}
	if c.QueueDepth <= 0 {
		return fmt.Errorf("core: QueueDepth = %d", c.QueueDepth)
	}
	return nil
}

// realBatch is one message on the channel interconnect: keys plus their
// positions in the caller's query slice, so results scatter back.
type realBatch struct {
	keys []workload.Key
	pos  []int32
}

// workerStats tracks one worker's processed volume.
type workerStats struct {
	keys    int64
	batches int64
	busy    time.Duration
}

// Cluster is the running real engine. Create with NewCluster, query with
// Lookup/LookupBatch, and Close when done. LookupBatch is safe for one
// caller at a time (the caller is the master); Lookup may be called
// concurrently with itself.
type Cluster struct {
	cfg  RealConfig
	keys []workload.Key
	part *Partitioning // Method C only

	in      []chan realBatch
	results chan realResult
	wg      sync.WaitGroup
	stats   []workerStats

	mu     sync.Mutex // serializes LookupBatch callers
	closed bool

	rr int // round-robin cursor for replicated methods
}

type realResult struct {
	worker int
	pos    []int32
	ranks  []int
}

// NewCluster builds the index (replicated or partitioned per the
// method), spawns the worker goroutines, and returns the running
// cluster.
func NewCluster(keys []workload.Key, cfg RealConfig) (*Cluster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("core: empty index")
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			return nil, fmt.Errorf("core: index keys not sorted at %d", i)
		}
	}

	c := &Cluster{
		cfg:     cfg,
		keys:    keys,
		in:      make([]chan realBatch, cfg.Workers),
		results: make(chan realResult, cfg.Workers*cfg.QueueDepth),
		stats:   make([]workerStats, cfg.Workers),
	}

	if cfg.Method.Distributed() {
		part, err := NewPartitioning(keys, cfg.Workers)
		if err != nil {
			return nil, err
		}
		c.part = part
	}

	for w := 0; w < cfg.Workers; w++ {
		c.in[w] = make(chan realBatch, cfg.QueueDepth)
		proc, err := newRealWorker(cfg, keys, c.part, w)
		if err != nil {
			return nil, err
		}
		c.wg.Add(1)
		go c.runWorker(w, proc)
	}
	return c, nil
}

// realWorker computes local ranks for a batch.
type realWorker struct {
	rankBase int
	arr      *index.SortedArray
	tree     *index.Tree
	plan     buffering.Plan
	buffered bool
	out      []int
}

func newRealWorker(cfg RealConfig, keys []workload.Key, part *Partitioning, w int) (*realWorker, error) {
	rw := &realWorker{}
	switch cfg.Method {
	case MethodA:
		rw.tree = index.NewNaryTree(keys, 0)
	case MethodB:
		rw.tree = index.NewNaryTree(keys, 0)
		// Budget mirrors the simulated engine: half of a typical L2.
		rw.plan = buffering.NewPlan(rw.tree, 256<<10)
		rw.buffered = true
	case MethodC1:
		rw.tree = index.NewNaryTree(part.Parts[w].Keys, 0)
		rw.rankBase = part.Parts[w].RankBase
	case MethodC2:
		rw.tree = index.NewNaryTree(part.Parts[w].Keys, 0)
		rw.plan = buffering.NewPlan(rw.tree, 8<<10)
		rw.buffered = true
		rw.rankBase = part.Parts[w].RankBase
	case MethodC3:
		rw.arr = index.NewSortedArray(part.Parts[w].Keys, 0)
		rw.rankBase = part.Parts[w].RankBase
	default:
		return nil, fmt.Errorf("core: unsupported method %v", cfg.Method)
	}
	return rw, nil
}

// process computes the global ranks for the batch into a fresh slice.
func (rw *realWorker) process(b realBatch) []int {
	n := len(b.keys)
	if cap(rw.out) < n {
		rw.out = make([]int, n)
	}
	out := rw.out[:n]
	switch {
	case rw.buffered:
		rw.plan.RankBatch(b.keys, out, buffering.Hooks{})
	case rw.tree != nil:
		for i, k := range b.keys {
			out[i] = rw.tree.Rank(k)
		}
	default:
		for i, k := range b.keys {
			out[i] = rw.arr.Rank(k)
		}
	}
	ranks := make([]int, n)
	for i := range out {
		ranks[i] = out[i] + rw.rankBase
	}
	return ranks
}

func (c *Cluster) runWorker(w int, proc *realWorker) {
	defer c.wg.Done()
	for b := range c.in[w] {
		start := time.Now()
		ranks := proc.process(b)
		c.stats[w].busy += time.Since(start)
		c.stats[w].keys += int64(len(b.keys))
		c.stats[w].batches++
		c.results <- realResult{worker: w, pos: b.pos, ranks: ranks}
	}
}

// LookupBatch routes queries through the cluster and returns their
// global ranks, in query order. The caller plays the master: it
// partitions (Method C) or round-robins (A/B) the stream into batches,
// dispatches them over the channel interconnect, and gathers replies.
func (c *Cluster) LookupBatch(queries []workload.Key) ([]int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("core: cluster is closed")
	}
	out := make([]int, len(queries))
	if len(queries) == 0 {
		return out, nil
	}

	pending := 0
	drain := func(block bool) {
		for {
			if block && pending > 0 {
				r := <-c.results
				copyResult(out, r)
				pending--
				block = false
				continue
			}
			select {
			case r := <-c.results:
				copyResult(out, r)
				pending--
			default:
				return
			}
		}
	}
	send := func(w int, b realBatch) {
		for {
			select {
			case c.in[w] <- b:
				return
			case r := <-c.results:
				// Keep draining while backpressured so the pipeline
				// cannot deadlock.
				copyResult(out, r)
				pending--
			}
		}
	}

	bk := c.cfg.BatchKeys
	if c.cfg.Method.Distributed() {
		// Master dispatch: per-slave accumulation, flush at BatchKeys.
		bufK := make([][]workload.Key, c.cfg.Workers)
		bufP := make([][]int32, c.cfg.Workers)
		flush := func(s int) {
			if len(bufK[s]) == 0 {
				return
			}
			b := realBatch{
				keys: append([]workload.Key(nil), bufK[s]...),
				pos:  append([]int32(nil), bufP[s]...),
			}
			bufK[s], bufP[s] = bufK[s][:0], bufP[s][:0]
			pending++
			send(s, b)
		}
		for i, q := range queries {
			s := c.part.Route(q)
			bufK[s] = append(bufK[s], q)
			bufP[s] = append(bufP[s], int32(i))
			if len(bufK[s]) >= bk {
				flush(s)
			}
		}
		for s := range bufK {
			flush(s)
		}
	} else {
		// Replicated index: round-robin load balancing.
		for start := 0; start < len(queries); start += bk {
			end := start + bk
			if end > len(queries) {
				end = len(queries)
			}
			pos := make([]int32, end-start)
			for i := range pos {
				pos[i] = int32(start + i)
			}
			b := realBatch{keys: queries[start:end], pos: pos}
			pending++
			send(c.rr, b)
			c.rr = (c.rr + 1) % c.cfg.Workers
		}
	}

	for pending > 0 {
		drain(true)
	}
	return out, nil
}

func copyResult(out []int, r realResult) {
	for i, p := range r.pos {
		out[p] = r.ranks[i]
	}
}

// Lookup resolves a single key synchronously (a convenience wrapper; for
// throughput use LookupBatch).
func (c *Cluster) Lookup(q workload.Key) (int, error) {
	r, err := c.LookupBatch([]workload.Key{q})
	if err != nil {
		return 0, err
	}
	return r[0], nil
}

// RealStats summarizes the cluster's lifetime work.
type RealStats struct {
	Method        Method
	Workers       int
	KeysProcessed int64
	Batches       int64
	// BusyPerWorker is each worker's cumulative processing time.
	BusyPerWorker []time.Duration
}

// Stats snapshots the per-worker counters. Call after LookupBatch
// returns (counters are not synchronized mid-flight).
func (c *Cluster) Stats() RealStats {
	s := RealStats{
		Method:        c.cfg.Method,
		Workers:       c.cfg.Workers,
		BusyPerWorker: make([]time.Duration, c.cfg.Workers),
	}
	for w := range c.stats {
		s.KeysProcessed += c.stats[w].keys
		s.Batches += c.stats[w].batches
		s.BusyPerWorker[w] = c.stats[w].busy
	}
	return s
}

// Close shuts the workers down and waits for them to exit. Further
// lookups fail. Close is idempotent.
func (c *Cluster) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for _, ch := range c.in {
		close(ch)
	}
	c.wg.Wait()
	close(c.results)
}
