package core

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/index"
	"repro/internal/workload"
)

func durableCfg(dir string, method Method) RealConfig {
	return RealConfig{
		Method: method, Workers: 4, BatchKeys: 256, QueueDepth: 4,
		MergeThreshold: 128, WALDir: dir,
	}
}

// copyTree mirrors src into dst — the "disk image at this instant" a
// restart test reopens, standing in for the machine that rebooted.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if os.IsNotExist(err) {
			// The flush daemon may retire a WAL file mid-walk; a crash
			// image taken across that instant simply lacks the file.
			return nil
		}
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		defer out.Close()
		_, err = io.Copy(out, in)
		return err
	})
	if err != nil {
		t.Fatalf("copy %s: %v", src, err)
	}
}

// TestClusterDurableRestartOracle: distributed method — insert under a
// WAL, close, reopen the same directory, and verify ranks against the
// oracle. The reopen passes a poisoned seed key set to prove recovery
// comes from disk, not from the caller.
func TestClusterDurableRestartOracle(t *testing.T) {
	dir := t.TempDir()
	keys := workload.SortedKeys(4096, 3)
	c, err := NewCluster(keys, durableCfg(dir, MethodC3))
	if err != nil {
		t.Fatal(err)
	}
	o := newOracle(keys)
	r := workload.NewRNG(5)
	for round := 0; round < 8; round++ {
		batch := make([]workload.Key, 200)
		for i := range batch {
			batch[i] = r.Key()
		}
		if err := c.InsertBatch(batch); err != nil {
			t.Fatalf("InsertBatch: %v", err)
		}
		o.insert(batch)
	}
	probes := workload.UniformQueries(500, 9)
	checkExact(t, c, o, probes)
	c.Close()

	poisoned := workload.SortedKeys(16, 99)
	c2, err := NewCluster(poisoned, durableCfg(dir, MethodC3))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer c2.Close()
	if got, want := c2.KeyCount(), len(o.keys); got != want {
		t.Fatalf("recovered %d keys, want %d", got, want)
	}
	checkExact(t, c2, o, probes)
}

// TestClusterDurableReplicatedRestart: the replicated methods share one
// logged copy; restart must recover it identically on every worker.
func TestClusterDurableReplicatedRestart(t *testing.T) {
	dir := t.TempDir()
	keys := workload.SortedKeys(2048, 7)
	c, err := NewCluster(keys, durableCfg(dir, MethodB))
	if err != nil {
		t.Fatal(err)
	}
	o := newOracle(keys)
	r := workload.NewRNG(13)
	for round := 0; round < 5; round++ {
		batch := make([]workload.Key, 150)
		for i := range batch {
			batch[i] = r.Key()
		}
		if err := c.InsertBatch(batch); err != nil {
			t.Fatalf("InsertBatch: %v", err)
		}
		o.insert(batch)
	}
	probes := workload.UniformQueries(400, 17)
	checkExact(t, c, o, probes)
	c.Close()

	c2, err := NewCluster(workload.SortedKeys(16, 99), durableCfg(dir, MethodB))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer c2.Close()
	if got, want := c2.KeyCount(), len(o.keys); got != want {
		t.Fatalf("recovered %d keys, want %d", got, want)
	}
	checkExact(t, c2, o, probes)
}

// TestClusterDurableCrashImageMidTraffic: after every acked insert
// round, the WAL directory — copied as-is, exactly what a crashed
// machine's disk would hold — must reopen to a state containing every
// acked key.
func TestClusterDurableCrashImageMidTraffic(t *testing.T) {
	dir := t.TempDir()
	keys := workload.SortedKeys(1024, 21)
	c, err := NewCluster(keys, durableCfg(dir, MethodC3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	o := newOracle(keys)
	r := workload.NewRNG(23)
	probes := workload.UniformQueries(300, 29)
	for round := 0; round < 4; round++ {
		batch := make([]workload.Key, 100)
		for i := range batch {
			batch[i] = r.Key()
		}
		if err := c.InsertBatch(batch); err != nil {
			t.Fatalf("InsertBatch: %v", err)
		}
		o.insert(batch)

		img := t.TempDir()
		copyTree(t, dir, img)
		crashed, err := NewCluster(workload.SortedKeys(16, 99), durableCfg(img, MethodC3))
		if err != nil {
			t.Fatalf("round %d: crash image refused: %v", round, err)
		}
		if got, want := crashed.KeyCount(), len(o.keys); got != want {
			crashed.Close()
			t.Fatalf("round %d: crash image has %d keys, want every acked one of %d", round, got, want)
		}
		checkExact(t, crashed, o, probes)
		crashed.Close()
	}
}

// TestClusterDurableRebalanceSurvivesRestart: skewed inserts trigger a
// re-partitioning (which rebases the store into a new epoch directory);
// a restart afterwards must recover the rebased state exactly.
func TestClusterDurableRebalanceSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	keys := workload.SortedKeys(1024, 31)
	cfg := durableCfg(dir, MethodC3)
	cfg.PartitionBudget = 400
	c, err := NewCluster(keys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	o := newOracle(keys)
	// Skew: every insert lands in the lowest partition.
	r := workload.NewRNG(37)
	for round := 0; round < 10; round++ {
		batch := make([]workload.Key, 100)
		for i := range batch {
			batch[i] = r.Key() % 1000
		}
		if err := c.InsertBatch(batch); err != nil {
			t.Fatal(err)
		}
		o.insert(batch)
	}
	deadline := time.Now().Add(10 * time.Second)
	for c.UpdateStats().Rebalances == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if c.UpdateStats().Rebalances == 0 {
		t.Fatal("no rebalance triggered by skewed inserts")
	}
	probes := workload.UniformQueries(300, 41)
	checkExact(t, c, o, probes)
	c.Close()

	c2, err := NewCluster(workload.SortedKeys(16, 99), durableCfg(dir, MethodC3))
	if err != nil {
		t.Fatalf("reopen after rebalance: %v", err)
	}
	defer c2.Close()
	if got, want := c2.KeyCount(), len(o.keys); got != want {
		t.Fatalf("recovered %d keys, want %d", got, want)
	}
	checkExact(t, c2, o, probes)
}

// TestClusterDurableFsyncFailureRefusesAck: with the disk refusing to
// sync, InsertBatch must return an error — and after a restart every
// previously acked key is present while lookups keep serving.
func TestClusterDurableFsyncFailureRefusesAck(t *testing.T) {
	faulty := faultfs.NewFaulty(faultfs.OS)
	dir := t.TempDir()
	keys := workload.SortedKeys(512, 43)
	cfg := durableCfg(dir, MethodC3)
	cfg.WALFS = faulty
	c, err := NewCluster(keys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	o := newOracle(keys)
	acked := make([]workload.Key, 50)
	r := workload.NewRNG(47)
	for i := range acked {
		acked[i] = r.Key()
	}
	if err := c.InsertBatch(acked); err != nil {
		t.Fatalf("healthy insert: %v", err)
	}
	o.insert(acked)

	faulty.FailSyncAt(faulty.Syncs() + 1)
	if err := c.InsertBatch([]workload.Key{1, 2, 3}); err == nil {
		t.Fatal("insert acked over a failed fsync")
	}
	faulty.FailSyncAt(0)
	// The log is poisoned: writes keep failing rather than acking over
	// the hole.
	if err := c.InsertBatch([]workload.Key{4}); !errors.Is(err, index.ErrWALBroken) {
		t.Fatalf("insert on poisoned log = %v, want ErrWALBroken", err)
	}
	// Reads still serve.
	probes := workload.UniformQueries(100, 53)
	out := make([]int, len(probes))
	if err := c.LookupBatchInto(probes, out); err != nil {
		t.Fatalf("lookups stopped after a write-path fault: %v", err)
	}
	c.Close()

	c2, err := NewCluster(workload.SortedKeys(16, 99), durableCfg(dir, MethodC3))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer c2.Close()
	// Every acked key must have survived; the failed batches may or may
	// not appear (crash equivalence), so only lower-bound the count.
	if got, min := c2.KeyCount(), len(keys)+len(acked); got < min {
		t.Fatalf("recovered %d keys, want at least the %d acked", got, min)
	}
	for _, k := range acked {
		got, err := c2.Lookup(k)
		if err != nil {
			t.Fatal(err)
		}
		if prev, err2 := c2.Lookup(k - 1); err2 == nil && got == prev && k != 0 {
			t.Fatalf("acked key %d missing after restart", k)
		}
	}
}

// TestClusterDurableOrphanEpochSwept: a crash mid-rebase leaves an
// unreferenced epoch directory; the next open must remove it and serve
// the manifest's epoch.
func TestClusterDurableOrphanEpochSwept(t *testing.T) {
	dir := t.TempDir()
	keys := workload.SortedKeys(256, 59)
	c, err := NewCluster(keys, durableCfg(dir, MethodC3))
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	orphan := filepath.Join(dir, "e99", "p0")
	if err := os.MkdirAll(orphan, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(orphan, "junk"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := NewCluster(keys, durableCfg(dir, MethodC3))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := os.Stat(filepath.Join(dir, "e99")); !os.IsNotExist(err) {
		t.Fatalf("orphan epoch not swept (stat err %v)", err)
	}
	if got, want := c2.KeyCount(), len(keys); got != want {
		t.Fatalf("recovered %d keys, want %d", got, want)
	}
}
