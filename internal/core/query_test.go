package core

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/workload"
)

// queryOracle answers the four ops from a plain sorted []int via
// sort.SearchInts — the independent reference implementation every
// engine configuration is checked against.
type queryOracle struct{ ints []int }

func newQueryOracle(keys []workload.Key) *queryOracle {
	o := &queryOracle{ints: make([]int, len(keys))}
	for i, k := range keys {
		o.ints[i] = int(k)
	}
	sort.Ints(o.ints)
	return o
}

func (o *queryOracle) add(keys []workload.Key) {
	for _, k := range keys {
		o.ints = append(o.ints, int(k))
	}
	sort.Ints(o.ints)
}

func (o *queryOracle) countRange(lo, hi workload.Key) int {
	if hi < lo {
		return 0
	}
	return sort.SearchInts(o.ints, int(hi)+1) - sort.SearchInts(o.ints, int(lo))
}

func (o *queryOracle) scanRange(lo, hi workload.Key, limit int) []workload.Key {
	var out []workload.Key
	if hi < lo {
		return out
	}
	for i := sort.SearchInts(o.ints, int(lo)); i < len(o.ints) && o.ints[i] <= int(hi); i++ {
		if limit >= 0 && len(out) >= limit {
			break
		}
		out = append(out, workload.Key(o.ints[i]))
	}
	return out
}

func (o *queryOracle) topK(k int) []workload.Key {
	var out []workload.Key
	for i := len(o.ints) - 1; i >= 0 && len(out) < k; i-- {
		out = append(out, workload.Key(o.ints[i]))
	}
	return out
}

func (o *queryOracle) multiplicity(k workload.Key) int {
	return o.countRange(k, k)
}

// queryConfigs enumerates the oracle sweep's engine configurations:
// all five methods, plus C-3 under the Eytzinger layout and the
// SortedBatches dispatch flag.
func queryConfigs() []RealConfig {
	var cfgs []RealConfig
	for _, m := range Methods() {
		cfgs = append(cfgs, RealConfig{Method: m, Workers: 5, BatchKeys: 512, QueueDepth: 4, MergeThreshold: 256})
	}
	cfgs = append(cfgs,
		RealConfig{Method: MethodC3, Workers: 5, BatchKeys: 512, QueueDepth: 4, MergeThreshold: 256, Layout: LayoutEytzinger},
		RealConfig{Method: MethodC3, Workers: 5, BatchKeys: 512, QueueDepth: 4, MergeThreshold: 256, SortedBatches: true},
	)
	return cfgs
}

func checkQueryOps(t *testing.T, tag string, c *Cluster, o *queryOracle, rng *rand.Rand) {
	t.Helper()
	const maxKey = 1 << 20

	ranges := make([]KeyRange, 32)
	for i := range ranges {
		lo := workload.Key(rng.Intn(maxKey))
		hi := workload.Key(rng.Intn(maxKey))
		if i%7 == 0 {
			hi = lo - 1 // inverted: must count 0
		}
		if i%11 == 0 {
			lo = 0 // range from the origin: single-endpoint path
		}
		ranges[i] = KeyRange{Lo: lo, Hi: hi}
	}
	counts := make([]int, len(ranges))
	if err := c.CountRangeBatch(ranges, counts); err != nil {
		t.Fatalf("%s: CountRangeBatch: %v", tag, err)
	}
	for i, r := range ranges {
		if want := o.countRange(r.Lo, r.Hi); counts[i] != want {
			t.Fatalf("%s: CountRange(%d,%d) = %d, want %d", tag, r.Lo, r.Hi, counts[i], want)
		}
	}

	for trial := 0; trial < 8; trial++ {
		lo := workload.Key(rng.Intn(maxKey))
		hi := lo + workload.Key(rng.Intn(maxKey/8))
		limit := rng.Intn(200) - 1
		got, err := c.ScanRange(lo, hi, limit, nil)
		if err != nil {
			t.Fatalf("%s: ScanRange: %v", tag, err)
		}
		want := o.scanRange(lo, hi, limit)
		if len(got) != len(want) {
			t.Fatalf("%s: ScanRange(%d,%d,%d) len %d, want %d", tag, lo, hi, limit, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: ScanRange(%d,%d)[%d] = %d, want %d", tag, lo, hi, i, got[i], want[i])
			}
		}
	}

	for _, k := range []int{1, 3, 17, 100} {
		got, err := c.TopK(k, nil)
		if err != nil {
			t.Fatalf("%s: TopK: %v", tag, err)
		}
		want := o.topK(k)
		if len(got) != len(want) {
			t.Fatalf("%s: TopK(%d) len %d, want %d", tag, k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: TopK(%d)[%d] = %d, want %d", tag, k, i, got[i], want[i])
			}
		}
	}

	qs := make([]workload.Key, 64)
	for i := range qs {
		if i%3 == 0 && len(o.ints) > 0 {
			qs[i] = workload.Key(o.ints[rng.Intn(len(o.ints))]) // present key
		} else {
			qs[i] = workload.Key(rng.Intn(maxKey))
		}
	}
	muls, err := c.MultiGet(qs)
	if err != nil {
		t.Fatalf("%s: MultiGet: %v", tag, err)
	}
	for i, q := range qs {
		if want := o.multiplicity(q); muls[i] != want {
			t.Fatalf("%s: MultiGet key %d = %d, want %d", tag, q, muls[i], want)
		}
	}
}

// TestQueryOpsOracleSweep is the cross-method oracle sweep: all four
// new ops, every method (plus Eytzinger layout and SortedBatches),
// checked exact against a sort.SearchInts oracle at quiescent
// checkpoints between rounds of concurrent inserts and queries.
func TestQueryOpsOracleSweep(t *testing.T) {
	const maxKey = 1 << 20
	for _, cfg := range queryConfigs() {
		tag := cfg.Method.String()
		if cfg.Layout == LayoutEytzinger {
			tag += "/eytzinger"
		}
		if cfg.SortedBatches {
			tag += "/sortedbatches"
		}
		t.Run(tag, func(t *testing.T) {
			t.Parallel()
			cfg := cfg
			rng := rand.New(rand.NewSource(42))
			keys := make([]workload.Key, 8000)
			for i := range keys {
				keys[i] = workload.Key(rng.Intn(maxKey))
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			c, err := NewCluster(keys, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			o := newQueryOracle(keys)

			checkQueryOps(t, tag+"/static", c, o, rng)

			for round := 0; round < 3; round++ {
				// Concurrent phase: inserts race queries. Results are
				// consistent point-in-time views, so only structural
				// invariants are checked here; exactness is verified at
				// the quiescent checkpoint below.
				ins := make([]workload.Key, 600)
				for i := range ins {
					ins[i] = workload.Key(rng.Intn(maxKey))
				}
				var wg sync.WaitGroup
				wg.Add(2)
				go func() {
					defer wg.Done()
					for start := 0; start < len(ins); start += 100 {
						if err := c.InsertBatch(ins[start : start+100]); err != nil {
							t.Error(err)
							return
						}
					}
				}()
				go func() {
					defer wg.Done()
					qrng := rand.New(rand.NewSource(int64(round)))
					for i := 0; i < 20; i++ {
						lo := workload.Key(qrng.Intn(maxKey))
						hi := lo + workload.Key(qrng.Intn(maxKey/4))
						n, err := c.CountRange(lo, hi)
						if err != nil || n < 0 {
							t.Errorf("concurrent CountRange: n=%d err=%v", n, err)
							return
						}
						scan, err := c.ScanRange(lo, hi, 50, nil)
						if err != nil {
							t.Errorf("concurrent ScanRange: %v", err)
							return
						}
						for j := 1; j < len(scan); j++ {
							if scan[j] < scan[j-1] {
								t.Errorf("concurrent ScanRange not ascending at %d", j)
								return
							}
						}
						top, err := c.TopK(10, nil)
						if err != nil {
							t.Errorf("concurrent TopK: %v", err)
							return
						}
						for j := 1; j < len(top); j++ {
							if top[j] > top[j-1] {
								t.Errorf("concurrent TopK not descending at %d", j)
								return
							}
						}
					}
				}()
				wg.Wait()
				o.add(ins)
				// Quiescent checkpoint: all writes acked, oracle caught up.
				checkQueryOps(t, tag+"/quiesced", c, o, rng)
			}
		})
	}
}
