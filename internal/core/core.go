package core
