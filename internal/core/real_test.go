package core

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

func newTestCluster(t *testing.T, m Method, keys []workload.Key, workers, batchKeys int) *Cluster {
	t.Helper()
	c, err := NewCluster(keys, RealConfig{
		Method: m, Workers: workers, BatchKeys: batchKeys, QueueDepth: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// The central cross-validation: every method, over the real concurrent
// engine, returns exactly the reference ranks.
func TestAllMethodsReturnReferenceRanks(t *testing.T) {
	keys := workload.SortedKeys(20000, 1)
	queries := workload.UniformQueries(30000, 2)
	want := make([]int, len(queries))
	for i, q := range queries {
		want[i] = workload.ReferenceRank(keys, q)
	}
	for _, m := range Methods() {
		c := newTestCluster(t, m, keys, 7, 1024)
		got, err := c.LookupBatch(queries)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v: query %d (%d) = %d, want %d", m, i, queries[i], got[i], want[i])
			}
		}
	}
}

func TestWorkerAndBatchExtremes(t *testing.T) {
	keys := workload.SortedKeys(5000, 3)
	queries := workload.UniformQueries(5000, 4)
	want := make([]int, len(queries))
	for i, q := range queries {
		want[i] = workload.ReferenceRank(keys, q)
	}
	cases := []struct {
		workers, batch int
	}{
		{1, 1}, {1, 10000}, {2, 1}, {16, 17}, {5000, 64}, // workers == keys is legal
	}
	for _, cse := range cases {
		for _, m := range []Method{MethodA, MethodC3} {
			c := newTestCluster(t, m, keys, cse.workers, cse.batch)
			got, err := c.LookupBatch(queries)
			if err != nil {
				t.Fatalf("%v w=%d b=%d: %v", m, cse.workers, cse.batch, err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%v w=%d b=%d: wrong rank at %d", m, cse.workers, cse.batch, i)
				}
			}
		}
	}
}

func TestEmptyBatchAndSingleLookup(t *testing.T) {
	keys := workload.SortedKeys(1000, 5)
	c := newTestCluster(t, MethodC3, keys, 4, 128)
	out, err := c.LookupBatch(nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v %v", out, err)
	}
	r, err := c.Lookup(keys[10])
	if err != nil {
		t.Fatal(err)
	}
	if r != 11 {
		t.Errorf("Lookup(keys[10]) = %d, want 11", r)
	}
}

func TestRepeatedBatchesReuseCluster(t *testing.T) {
	keys := workload.SortedKeys(3000, 6)
	c := newTestCluster(t, MethodC2, keys, 3, 256)
	for round := 0; round < 5; round++ {
		queries := workload.UniformQueries(2000, uint64(round))
		got, err := c.LookupBatch(queries)
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range queries {
			if got[i] != workload.ReferenceRank(keys, q) {
				t.Fatalf("round %d: wrong rank at %d", round, i)
			}
		}
	}
	s := c.Stats()
	if s.KeysProcessed != 10000 {
		t.Errorf("KeysProcessed = %d, want 10000", s.KeysProcessed)
	}
	if s.Batches == 0 {
		t.Error("no batches recorded")
	}
}

func TestConcurrentLookups(t *testing.T) {
	keys := workload.SortedKeys(10000, 7)
	c := newTestCluster(t, MethodC3, keys, 8, 512)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			queries := workload.UniformQueries(3000, seed)
			got, err := c.LookupBatch(queries)
			if err != nil {
				errs <- err
				return
			}
			for i, q := range queries {
				if got[i] != workload.ReferenceRank(keys, q) {
					errs <- errWrongRank
					return
				}
			}
		}(uint64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errWrongRank = errorString("wrong rank under concurrency")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestCloseSemantics(t *testing.T) {
	keys := workload.SortedKeys(1000, 8)
	c, err := NewCluster(keys, DefaultRealConfig(MethodC3))
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	c.Close() // idempotent
	if _, err := c.LookupBatch(workload.UniformQueries(10, 1)); err == nil {
		t.Fatal("lookup after Close succeeded")
	}
}

func TestNewClusterErrors(t *testing.T) {
	keys := workload.SortedKeys(100, 9)
	cases := map[string]RealConfig{
		"bad method": {Method: Method(9), Workers: 2, BatchKeys: 10, QueueDepth: 1},
		"no workers": {Method: MethodA, Workers: 0, BatchKeys: 10, QueueDepth: 1},
		"no batch":   {Method: MethodA, Workers: 2, BatchKeys: 0, QueueDepth: 1},
		"no queue":   {Method: MethodA, Workers: 2, BatchKeys: 10, QueueDepth: 0},
	}
	for name, cfg := range cases {
		if _, err := NewCluster(keys, cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := NewCluster(nil, DefaultRealConfig(MethodA)); err == nil {
		t.Error("empty index accepted")
	}
	if _, err := NewCluster([]workload.Key{2, 1}, DefaultRealConfig(MethodA)); err == nil {
		t.Error("unsorted index accepted")
	}
	// More workers than keys cannot partition.
	if _, err := NewCluster(workload.SortedKeys(3, 1), RealConfig{
		Method: MethodC3, Workers: 10, BatchKeys: 4, QueueDepth: 1,
	}); err == nil {
		t.Error("more C-slaves than keys accepted")
	}
}

func TestStatsBusyAccounting(t *testing.T) {
	keys := workload.SortedKeys(50000, 10)
	c := newTestCluster(t, MethodC3, keys, 4, 2048)
	if _, err := c.LookupBatch(workload.UniformQueries(100000, 11)); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.KeysProcessed != 100000 {
		t.Errorf("keys processed = %d", s.KeysProcessed)
	}
	var anyBusy bool
	for _, b := range s.BusyPerWorker {
		if b > 0 {
			anyBusy = true
		}
	}
	if !anyBusy {
		t.Error("no worker recorded busy time")
	}
	if s.Method != MethodC3 || s.Workers != 4 {
		t.Errorf("stats header wrong: %+v", s)
	}
}

// Property: real distributed results equal serial reference for random
// configurations.
func TestRealEngineProperty(t *testing.T) {
	f := func(seed uint64, nRaw, qRaw uint16, wRaw, bRaw uint8, mRaw uint8) bool {
		n := int(nRaw%2000) + 10
		q := int(qRaw % 1000)
		w := int(wRaw%8) + 1
		b := int(bRaw%200) + 1
		m := Methods()[int(mRaw)%5]
		keys := workload.SortedKeys(n, seed)
		c, err := NewCluster(keys, RealConfig{Method: m, Workers: w, BatchKeys: b, QueueDepth: 2})
		if err != nil {
			return false
		}
		defer c.Close()
		queries := workload.UniformQueries(q, seed+1)
		got, err := c.LookupBatch(queries)
		if err != nil {
			return false
		}
		for i, qk := range queries {
			if got[i] != workload.ReferenceRank(keys, qk) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
