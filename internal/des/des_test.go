package des

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

func TestRunFiresInTimeOrder(t *testing.T) {
	var e Engine
	var got []float64
	times := []float64{5, 1, 3, 2, 4}
	for _, at := range times {
		at := at
		e.Schedule(at, func() { got = append(got, at) })
	}
	end := e.Run()
	want := []float64{1, 2, 3, 4, 5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("firing order %v, want %v", got, want)
	}
	if end != 5 {
		t.Errorf("final time %v, want 5", end)
	}
}

func TestTieBreakByInsertionOrder(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(7, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events fired out of insertion order: %v", got)
		}
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	var e Engine
	var trace []string
	e.Schedule(1, func() {
		trace = append(trace, "a")
		e.After(2, func() { trace = append(trace, "c") })
		e.Schedule(2, func() { trace = append(trace, "b") })
	})
	e.Run()
	if !reflect.DeepEqual(trace, []string{"a", "b", "c"}) {
		t.Errorf("trace = %v", trace)
	}
	if e.Now() != 3 {
		t.Errorf("now = %v, want 3", e.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	var e Engine
	e.Schedule(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling before now did not panic")
		}
	}()
	e.Schedule(5, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestNilEventPanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Fatal("nil fn did not panic")
		}
	}()
	e.Schedule(1, nil)
}

func TestNonFiniteTimePanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Fatal("NaN time did not panic")
		}
	}()
	e.Schedule(nan(), func() {})
}

func nan() float64 {
	var z float64
	return z / z
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	var e Engine
	var got []float64
	for _, at := range []float64{1, 2, 3, 10, 20} {
		at := at
		e.Schedule(at, func() { got = append(got, at) })
	}
	fired := e.RunUntil(5)
	if fired != 3 {
		t.Errorf("fired %d events, want 3", fired)
	}
	if !reflect.DeepEqual(got, []float64{1, 2, 3}) {
		t.Errorf("got %v", got)
	}
	if e.Now() != 5 {
		t.Errorf("clock = %v, want advanced to deadline 5", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("pending = %d, want 2", e.Pending())
	}
	e.Run()
	if e.Now() != 20 || e.Pending() != 0 {
		t.Errorf("after Run: now=%v pending=%d", e.Now(), e.Pending())
	}
}

func TestFiredCounter(t *testing.T) {
	var e Engine
	for i := 0; i < 7; i++ {
		e.Schedule(float64(i), func() {})
	}
	e.Run()
	if e.Fired() != 7 {
		t.Errorf("Fired = %d, want 7", e.Fired())
	}
}

// Property: for any random set of times, events fire in non-decreasing
// time order and all of them fire.
func TestRunOrderProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		r := workload.NewRNG(seed)
		var e Engine
		var fired []float64
		times := make([]float64, n)
		for i := range times {
			times[i] = float64(r.Intn(1000))
			at := times[i]
			e.Schedule(at, func() { fired = append(fired, at) })
		}
		e.Run()
		if len(fired) != n {
			return false
		}
		if !sort.Float64sAreSorted(fired) {
			return false
		}
		sort.Float64s(times)
		return reflect.DeepEqual(fired, times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Simulations must be bit-for-bit deterministic: same schedule, same
// trace, across repeated runs.
func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []int {
		var e Engine
		var trace []int
		r := workload.NewRNG(5)
		var spawn func(depth int)
		spawn = func(depth int) {
			if depth > 3 {
				return
			}
			id := r.Intn(1000)
			e.After(float64(r.Intn(50)), func() {
				trace = append(trace, id)
				spawn(depth + 1)
				spawn(depth + 1)
			})
		}
		spawn(0)
		e.Run()
		return trace
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical simulations produced different traces")
	}
}
