// Package des is a minimal deterministic discrete-event scheduler used by
// the cluster simulation. Events carry a firing time in virtual
// nanoseconds; Run drains them in time order, breaking ties by insertion
// sequence so that simulations are reproducible regardless of map or
// goroutine scheduling on the host.
package des

import (
	"container/heap"
	"fmt"
	"math"
)

// Engine owns the virtual clock and the pending event queue. The zero
// value is ready to use.
type Engine struct {
	now   float64
	seq   uint64
	queue eventHeap
	fired uint64
}

type event struct {
	at  float64
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Now returns the current virtual time in nanoseconds.
func (e *Engine) Now() float64 { return e.now }

// Fired returns how many events have executed, a cheap progress and
// determinism probe for tests.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled-but-unfired events.
func (e *Engine) Pending() int { return e.queue.Len() }

// Schedule registers fn to run at absolute virtual time at. Scheduling
// in the past (before Now) panics: it always indicates a bookkeeping bug
// in the caller, and silently clamping would hide causality violations.
func (e *Engine) Schedule(at float64, fn func()) {
	if math.IsNaN(at) || math.IsInf(at, 0) {
		panic(fmt.Sprintf("des: scheduling at non-finite time %v", at))
	}
	if at < e.now {
		panic(fmt.Sprintf("des: scheduling at %.3f before now %.3f", at, e.now))
	}
	if fn == nil {
		panic("des: scheduling nil event")
	}
	e.seq++
	heap.Push(&e.queue, event{at: at, seq: e.seq, fn: fn})
}

// After registers fn to run delay nanoseconds from now. Negative delays
// panic.
func (e *Engine) After(delay float64, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("des: negative delay %v", delay))
	}
	e.Schedule(e.now+delay, fn)
}

// Run executes events in time order until the queue is empty, and
// returns the final virtual time. Events may schedule further events.
func (e *Engine) Run() float64 {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(event)
		e.now = ev.at
		e.fired++
		ev.fn()
	}
	return e.now
}

// RunUntil executes events with firing time <= deadline and then stops,
// leaving later events queued and the clock at min(deadline, last event).
// It returns the number of events fired.
func (e *Engine) RunUntil(deadline float64) uint64 {
	start := e.fired
	for e.queue.Len() > 0 && e.queue[0].at <= deadline {
		ev := heap.Pop(&e.queue).(event)
		e.now = ev.at
		e.fired++
		ev.fn()
	}
	if e.now < deadline && e.queue.Len() > 0 {
		e.now = deadline
	}
	return e.fired - start
}
