package netsim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

func net() *Net { return New(arch.PentiumIIICluster()) }

func TestSendTimingDecomposition(t *testing.T) {
	n := net()
	p := n.Params()
	var nic NIC
	x := n.Send(&nic, 0, 10_000)

	if x.CPURelease != p.NetPerMsgOverheadNs {
		t.Errorf("CPURelease = %v, want overhead %v", x.CPURelease, p.NetPerMsgOverheadNs)
	}
	if x.TxStart != x.CPURelease {
		t.Errorf("idle NIC should start transmitting at CPURelease; got %v vs %v", x.TxStart, x.CPURelease)
	}
	wantTx := p.NetTransferNs(10_000)
	if math.Abs((x.TxDone-x.TxStart)-wantTx) > 1e-6 {
		t.Errorf("transmission = %v, want %v", x.TxDone-x.TxStart, wantTx)
	}
	if math.Abs(x.Arrival-(x.TxDone+p.NetLatencyNs)) > 1e-9 {
		t.Errorf("arrival = %v, want TxDone+latency", x.Arrival)
	}
}

func TestMyrinetTenKBTransmissionDominatesLatency(t *testing.T) {
	// Section 2.2: a 10 KB Myrinet message's ~80 us transmission clearly
	// dominates the 7 us latency.
	n := net()
	var nic NIC
	x := n.Send(&nic, 0, 10_000)
	tx := x.TxDone - x.TxStart
	if tx < 60_000 || tx > 90_000 {
		t.Errorf("10KB transmission = %.0f ns, want ~80us", tx)
	}
	if tx < n.Params().NetLatencyNs {
		t.Error("transmission should dominate latency at 10KB")
	}
}

func TestNICSerialization(t *testing.T) {
	n := net()
	var nic NIC
	a := n.Send(&nic, 0, 100_000)
	// Second send issued while the first still occupies the wire.
	b := n.Send(&nic, 0, 100_000)
	if b.TxStart < a.TxDone {
		t.Errorf("second message started at %v before first finished at %v", b.TxStart, a.TxDone)
	}
	if b.TxStart != a.TxDone {
		t.Errorf("back-to-back sends should queue exactly: %v vs %v", b.TxStart, a.TxDone)
	}
	// Arrival order follows transmission order (FIFO wire).
	if b.Arrival <= a.Arrival {
		t.Error("FIFO violated")
	}
}

func TestSeparateNICsDoNotSerialize(t *testing.T) {
	n := net()
	var nic1, nic2 NIC
	a := n.Send(&nic1, 0, 1_000_000)
	b := n.Send(&nic2, 0, 1_000_000)
	if a.TxStart != b.TxStart {
		t.Error("independent NICs must not serialize against each other")
	}
}

func TestOverlapSemantics(t *testing.T) {
	// CPURelease must not depend on message size: MPI_Isend returns
	// after the overhead, and transmission proceeds in the background.
	n := net()
	var nic NIC
	small := n.Send(&nic, 0, 64)
	var nic2 NIC
	big := n.Send(&nic2, 0, 4<<20)
	if small.CPURelease != big.CPURelease {
		t.Errorf("CPURelease varies with size: %v vs %v", small.CPURelease, big.CPURelease)
	}
	if big.Arrival <= small.Arrival {
		t.Error("bigger message should arrive later")
	}
}

func TestZeroByteMessage(t *testing.T) {
	n := net()
	p := n.Params()
	var nic NIC
	x := n.Send(&nic, 100, 0)
	want := 100 + p.NetPerMsgOverheadNs + p.NetLatencyNs
	if math.Abs(x.Arrival-want) > 1e-9 {
		t.Errorf("zero-byte arrival = %v, want %v", x.Arrival, want)
	}
}

func TestNegativeSizePanics(t *testing.T) {
	n := net()
	var nic NIC
	defer func() {
		if recover() == nil {
			t.Fatal("negative size did not panic")
		}
	}()
	n.Send(&nic, 0, -1)
}

func TestCounters(t *testing.T) {
	n := net()
	var nic NIC
	n.Send(&nic, 0, 100)
	n.Send(&nic, 0, 200)
	if nic.BytesSent() != 300 || nic.MsgsSent() != 2 {
		t.Errorf("counters: bytes=%d msgs=%d", nic.BytesSent(), nic.MsgsSent())
	}
}

func TestOneWayNs(t *testing.T) {
	n := net()
	p := n.Params()
	got := n.OneWayNs(8 << 10)
	want := p.NetPerMsgOverheadNs + p.NetLatencyNs + p.NetTransferNs(8<<10)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("OneWayNs = %v, want %v", got, want)
	}
}

func TestBatchAmortizationConvergesToTransmissionTerm(t *testing.T) {
	// As the batch grows, per-key cost tends to 4/W2 (Appendix A's
	// communication term).
	n := net()
	p := n.Params()
	limit := p.NetTransferNs(arch.WordBytes) // 4/W2 in ns
	big := n.BatchAmortizedNsPerKey(16 << 20)
	if math.Abs(big-limit)/limit > 0.01 {
		t.Errorf("per-key cost at 16MB = %v, want within 1%% of 4/W2 = %v", big, limit)
	}
	// And at tiny batches, latency+overhead dominate.
	small := n.BatchAmortizedNsPerKey(64)
	if small < 20*limit {
		t.Errorf("per-key cost at 64B = %v should be >> 4/W2 = %v", small, limit)
	}
}

func TestBatchAmortizationMonotone(t *testing.T) {
	n := net()
	prev := math.Inf(1)
	for b := 64; b <= 8<<20; b *= 2 {
		c := n.BatchAmortizedNsPerKey(b)
		if c > prev {
			t.Errorf("per-key cost increased at batch %d: %v > %v", b, c, prev)
		}
		prev = c
	}
}

func TestGigabitEthernetCrossover(t *testing.T) {
	// Section 2.2: on GigE one needs ~200KB batches for transmission to
	// dominate latency. Check the model reproduces the crossover scale.
	n := New(arch.GigabitEthernet())
	p := n.Params()
	crossover := 0
	for b := 1 << 10; b <= 8<<20; b *= 2 {
		if p.NetTransferNs(b) >= p.NetLatencyNs {
			crossover = b
			break
		}
	}
	if crossover < 8<<10 || crossover > 512<<10 {
		t.Errorf("GigE latency/transmission crossover at %d bytes, want order 200KB", crossover)
	}
}

// Property: arrivals through one NIC are strictly increasing no matter
// the send times and sizes (FIFO wire, positive latency).
func TestFIFOProperty(t *testing.T) {
	n := net()
	f := func(sizes []uint16) bool {
		var nic NIC
		now, lastArrival := 0.0, -1.0
		for _, s := range sizes {
			x := n.Send(&nic, now, int(s))
			if x.Arrival <= lastArrival {
				return false
			}
			lastArrival = x.Arrival
			now = x.CPURelease // sender continues immediately
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
