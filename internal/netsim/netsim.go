// Package netsim models the cluster interconnect: point-to-point message
// transfers with per-message software overhead (MPI + OS protocol stack),
// one-way wire latency, bandwidth-limited transmission, and sender-side
// NIC serialization. These four terms are exactly the knobs Section 2.2
// of the paper discusses — batching exists to amortize the 7 us Myrinet
// latency and the per-message overhead against the 1/W2 transmission
// time — and the model deliberately has nothing else in it.
//
// Communication/computation overlap (MPI_Isend in the paper) is expressed
// by the split between SenderBusyUntil (when the sending CPU may resume
// work) and Arrival (when the receiver may start on the data).
package netsim

import (
	"fmt"

	"repro/internal/arch"
)

// NIC is one node's network interface. Transmissions through a single
// NIC serialize: a message cannot start on the wire before the previous
// one finished transmitting. This is what makes the Method C master a
// potential bottleneck (Section 3.2's remark about multiple masters).
type NIC struct {
	// Name identifies the owner in error messages ("master", "slave3").
	Name string
	// wireBusyUntil is when the NIC finishes its current transmission.
	wireBusyUntil float64
	// bytesSent and msgsSent are lifetime counters.
	bytesSent uint64
	msgsSent  uint64
}

// BytesSent returns the cumulative payload bytes transmitted.
func (n *NIC) BytesSent() uint64 { return n.bytesSent }

// MsgsSent returns the number of messages transmitted.
func (n *NIC) MsgsSent() uint64 { return n.msgsSent }

// WireBusyUntil returns when the NIC's current transmission completes.
func (n *NIC) WireBusyUntil() float64 { return n.wireBusyUntil }

// Xfer describes one message transfer on the virtual timeline.
type Xfer struct {
	// CPURelease is when the sending CPU has finished the per-message
	// software overhead and may continue computing (MPI_Isend returns;
	// "communication can overlap with computation", Section 2.1).
	CPURelease float64
	// TxStart and TxDone bound the wire occupancy of this message on
	// the sender's NIC.
	TxStart float64
	TxDone  float64
	// Arrival is when the last byte reaches the receiver: TxDone plus
	// the one-way latency. The receiver may begin processing then.
	Arrival float64
	// Bytes echoes the payload size.
	Bytes int
}

// Net computes transfer timings from an architecture's network
// parameters. It holds no global state; per-sender state lives in NICs.
type Net struct {
	p arch.Params
}

// New returns a network model for p. It panics on invalid parameters;
// validate upstream.
func New(p arch.Params) *Net {
	if err := p.Validate(); err != nil {
		panic("netsim: " + err.Error())
	}
	return &Net{p: p}
}

// Params returns the parameter set the network was built with.
func (n *Net) Params() arch.Params { return n.p }

// Send models transmitting a bytes-long message from nic at virtual time
// now. The sending CPU pays the per-message overhead immediately; the
// wire transmission starts as soon as both the overhead is paid and the
// NIC is free, and the message arrives one latency after its last byte
// leaves. Send panics on negative sizes; zero-byte messages are legal
// (pure synchronization) and cost overhead + latency only.
func (n *Net) Send(nic *NIC, now float64, bytes int) Xfer {
	if bytes < 0 {
		panic(fmt.Sprintf("netsim: negative message size %d from %s", bytes, nic.Name))
	}
	cpuRelease := now + n.p.NetPerMsgOverheadNs
	txStart := cpuRelease
	if nic.wireBusyUntil > txStart {
		txStart = nic.wireBusyUntil
	}
	txDone := txStart + n.p.NetTransferNs(bytes)
	arrival := txDone + n.p.NetLatencyNs

	nic.wireBusyUntil = txDone
	nic.bytesSent += uint64(bytes)
	nic.msgsSent++

	return Xfer{
		CPURelease: cpuRelease,
		TxStart:    txStart,
		TxDone:     txDone,
		Arrival:    arrival,
		Bytes:      bytes,
	}
}

// OneWayNs returns the unloaded end-to-end time for a single message of
// the given size: overhead + transmission + latency. Handy for analytic
// sanity checks and the examples.
func (n *Net) OneWayNs(bytes int) float64 {
	return n.p.NetPerMsgOverheadNs + n.p.NetTransferNs(bytes) + n.p.NetLatencyNs
}

// BatchAmortizedNsPerKey returns the per-key network cost of sending
// batches of batchBytes carrying 4-byte keys: the model's 4/W2 term plus
// the amortized latency and overhead. As batchBytes grows this tends to
// 4/W2, which is the limit Appendix A uses ("transmission time is
// considered, but not latency").
func (n *Net) BatchAmortizedNsPerKey(batchBytes int) float64 {
	if batchBytes < arch.WordBytes {
		batchBytes = arch.WordBytes
	}
	keys := float64(batchBytes) / arch.WordBytes
	return (n.p.NetPerMsgOverheadNs + n.p.NetLatencyNs + n.p.NetTransferNs(batchBytes)) / keys
}
