// Package buffering implements the buffering access technique of Zhou
// and Ross (VLDB 2003) that the paper uses for Method B (L2-sized
// subtrees) and Method C-2 (L1-sized subtrees), as described in
// Section 3.1 and Figure 1.
//
// The index tree is logically decomposed into segments of levels so that
// each subtree (a node plus its descendants down the segment) fits in
// the target cache together with its key buffers. A batch of search keys
// descends the top subtree; each key is appended to the buffer of the
// lower subtree its descent reached, and subtrees are then processed
// recursively with their buffers as the new batch. Buffer writes are
// streaming (sequential), so they avoid the per-access cache-miss
// latency that makes Method A slow; the subtree being processed stays
// cache-resident for the whole batch.
//
// The algorithm itself is cost-model agnostic: Hooks lets the simulated
// engines charge nanoseconds for node touches and buffer traffic, while
// the real runtime passes zero Hooks and just gets the ranks.
package buffering

import (
	"fmt"

	"repro/internal/index"
	"repro/internal/workload"
)

// EntryBytes is the buffer footprint of one in-flight key: the 4-byte
// key plus a 4-byte original position so results can be scattered back.
// The paper stores "the search key and the corresponding lookup result
// ... in the same memory location" (Section 4), which is the same 8-byte
// budget.
const EntryBytes = 8

// Hooks receives the algorithm's memory events. Any field may be nil.
// Buffer events carry the id of the subtree-root node owning the buffer,
// so a cost model can give each buffer its own address region (the
// scatter across many buffer tails is what distinguishes the buffered
// write pattern from a single sequential stream).
type Hooks struct {
	// TouchNode fires once per tree-node visit, in visit order.
	TouchNode func(id int32)
	// BufferWrite fires when a key entry is appended to the buffer of
	// the subtree rooted at node bucket (bytes = EntryBytes).
	BufferWrite func(bucket int32, bytes int)
	// BufferRead fires when a buffered entry is read back from the
	// buffer of the subtree rooted at node bucket.
	BufferRead func(bucket int32, bytes int)
}

// Plan is a subtree decomposition of one tree for a given cache budget.
type Plan struct {
	tree *index.Tree
	// splits[i] is the level (root = 0) where segment i's subtrees are
	// rooted; heights[i] is how many levels segment i spans. Segments
	// tile the tree: splits[i+1] = splits[i] + heights[i].
	splits  []int
	heights []int
	budget  int
}

// NewPlan decomposes t so that every segment's largest subtree fits in
// budgetBytes together with the tails of its key buffers ("since a
// subtree and its associated buffer can fit inside the L2 cache, the
// process is fast", Section 3.1) — one hot cache line per exit node.
// Heights are maximal under the budget but always at least one level, so
// a plan exists for any budget. The final segment has no buffers, so
// only its subtree counts. An empty tree yields an empty plan.
func NewPlan(t *index.Tree, budgetBytes int) Plan {
	if budgetBytes <= 0 {
		panic(fmt.Sprintf("buffering: non-positive budget %d", budgetBytes))
	}
	p := Plan{tree: t, budget: budgetBytes}
	total := t.Levels()
	for level := 0; level < total; {
		h := 1
		for level+h < total {
			footprint := t.SubtreeBytes(level, h+1)
			if level+h+1 < total {
				// Non-final segment: add the buffer-tail lines of
				// the exit level the taller subtree would feed.
				exits := exitWidth(t, level, h+1)
				footprint += exits * index.NodeBytes
			}
			if footprint > budgetBytes {
				break
			}
			h++
		}
		p.splits = append(p.splits, level)
		p.heights = append(p.heights, h)
		level += h
	}
	return p
}

// exitWidth bounds how many exit nodes a height-h subtree rooted at the
// given level can feed: Fanout^h capped by the exit level's width.
func exitWidth(t *index.Tree, level, h int) int {
	w := 1
	for i := 0; i < h; i++ {
		w *= index.Fanout
	}
	if exit := level + h; exit < t.Levels() {
		if lw := t.LevelCount(exit); lw < w {
			w = lw
		}
	}
	return w
}

// Segments returns the number of segments in the plan. Method B's
// formula calls this T/L.
func (p Plan) Segments() int { return len(p.splits) }

// SegmentHeight returns the height of segment s.
func (p Plan) SegmentHeight(s int) int { return p.heights[s] }

// SegmentLevel returns the level at which segment s's subtrees are
// rooted.
func (p Plan) SegmentLevel(s int) int { return p.splits[s] }

// MaxSubtreeBytes returns the footprint of the largest subtree in any
// segment — the quantity that must fit in the target cache.
func (p Plan) MaxSubtreeBytes() int {
	max := 0
	for i, lvl := range p.splits {
		if b := p.tree.SubtreeBytes(lvl, p.heights[i]); b > max {
			max = b
		}
	}
	return max
}

type entry struct {
	key workload.Key
	pos int32
}

// RankBatch computes out[i] = Rank(keys[i]) + base for every key using
// the buffered traversal, firing h's hooks along the way. base is the
// partition's rank base, folded into the single result write each key
// already pays (a distributed caller previously added it in a second
// pass over out — one more full sweep of the result array for nothing).
// out must have len(keys) capacity; it is returned for convenience. The
// result is identical to calling tree.Rank per key and adding base —
// only the access pattern (and hence the simulated cost) differs.
func (p Plan) RankBatch(keys []workload.Key, out []int, base int, h Hooks) []int {
	if len(out) < len(keys) {
		panic(fmt.Sprintf("buffering: out len %d < keys len %d", len(out), len(keys)))
	}
	if p.tree.N() == 0 {
		for i := range keys {
			out[i] = base
		}
		return out
	}
	entries := make([]entry, len(keys))
	for i, k := range keys {
		entries[i] = entry{key: k, pos: int32(i)}
	}
	p.process(0, p.tree.Root(), entries, out, base, h)
	return out
}

// process runs segment s for the subtree rooted at root over entries.
func (p Plan) process(s int, root int32, entries []entry, out []int, base int, h Hooks) {
	t := p.tree
	height := p.heights[s]
	last := s == len(p.splits)-1

	if last {
		// Final segment: descend to the leaves and resolve ranks.
		for _, e := range entries {
			if h.BufferRead != nil && s > 0 {
				h.BufferRead(root, EntryBytes)
			}
			id := root
			for !t.IsLeaf(id) {
				if h.TouchNode != nil {
					h.TouchNode(id)
				}
				id = t.Step(id, e.key)
			}
			if h.TouchNode != nil {
				h.TouchNode(id)
			}
			out[e.pos] = t.LeafRank(id, e.key) + base
		}
		return
	}

	// The subtree's exit nodes live at the next split level and are
	// contiguous (children are contiguous in the CSB+ layout): the range
	// [leftmost descendant, rightmost descendant] of root at that depth.
	lo, hi := root, root
	for i := 0; i < height; i++ {
		lo = t.FirstChild(lo)
		hi = t.FirstChild(hi) + int32(t.ChildCount(hi)) - 1
	}

	// Bucket each entry by the exit node its descent reaches ("the key
	// is then stored into the buffer associated with the subtree rooted
	// at x", Section 3.1).
	buckets := make([][]entry, hi-lo+1)
	for _, e := range entries {
		if h.BufferRead != nil && s > 0 {
			h.BufferRead(root, EntryBytes)
		}
		id := root
		for i := 0; i < height; i++ {
			if h.TouchNode != nil {
				h.TouchNode(id)
			}
			id = t.Step(id, e.key)
		}
		buckets[id-lo] = append(buckets[id-lo], e)
		if h.BufferWrite != nil {
			h.BufferWrite(id, EntryBytes)
		}
	}

	// Recurse in node order ("after the top level subtree has been
	// processed, each lower subtree is processed using the keys stored
	// in its buffer").
	for i, b := range buckets {
		if len(b) > 0 {
			p.process(s+1, lo+int32(i), b, out, base, h)
		}
	}
}
