package buffering

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/index"
	"repro/internal/workload"
)

func TestRankBatchMatchesPlainLookups(t *testing.T) {
	keys := workload.SortedKeys(50000, 1)
	tree := index.NewNaryTree(keys, 0)
	queries := workload.UniformQueries(20000, 2)

	for _, budget := range []int{64, 1 << 10, 32 << 10, 256 << 10, 16 << 20} {
		plan := NewPlan(tree, budget)
		out := make([]int, len(queries))
		plan.RankBatch(queries, out, 0, Hooks{})
		for i, q := range queries {
			if want := tree.Rank(q); out[i] != want {
				t.Fatalf("budget %d: out[%d] = %d, want %d", budget, i, out[i], want)
			}
		}
	}
}

// The base parameter must fold the partition rank base into every
// result — including the empty-tree write — with no separate add pass.
func TestRankBatchFoldsBase(t *testing.T) {
	keys := workload.SortedKeys(10000, 4)
	tree := index.NewNaryTree(keys, 0)
	queries := workload.UniformQueries(5000, 5)
	plan := NewPlan(tree, 8<<10)
	out := make([]int, len(queries))
	const base = 123456
	plan.RankBatch(queries, out, base, Hooks{})
	for i, q := range queries {
		if want := tree.Rank(q) + base; out[i] != want {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], want)
		}
	}
	empty := NewPlan(index.NewNaryTree(nil, 0), 1<<10)
	eout := make([]int, 3)
	empty.RankBatch([]workload.Key{1, 2, 3}, eout, 7, Hooks{})
	for i, r := range eout {
		if r != 7 {
			t.Fatalf("empty tree out[%d] = %d, want 7 (the base)", i, r)
		}
	}
}

func TestRankBatchOnCSBTree(t *testing.T) {
	keys := workload.SortedKeys(32768, 3)
	tree := index.NewCSBTree(keys, 0)
	queries := workload.UniformQueries(5000, 4)
	// L1-sized budget: the Method C-2 configuration.
	plan := NewPlan(tree, 8<<10)
	out := make([]int, len(queries))
	plan.RankBatch(queries, out, 0, Hooks{})
	for i, q := range queries {
		if want := workload.ReferenceRank(keys, q); out[i] != want {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], want)
		}
	}
}

func TestPlanTilesAllLevels(t *testing.T) {
	keys := workload.EvenKeys(327680)
	tree := index.NewNaryTree(keys, 0)
	for _, budget := range []int{64, 8 << 10, 256 << 10, 64 << 20} {
		plan := NewPlan(tree, budget)
		covered := 0
		for s := 0; s < plan.Segments(); s++ {
			if plan.SegmentLevel(s) != covered {
				t.Fatalf("budget %d: segment %d starts at level %d, want %d", budget, s, plan.SegmentLevel(s), covered)
			}
			covered += plan.SegmentHeight(s)
		}
		if covered != tree.Levels() {
			t.Fatalf("budget %d: plan covers %d levels, tree has %d", budget, covered, tree.Levels())
		}
	}
}

func TestPlanRespectsBudget(t *testing.T) {
	keys := workload.EvenKeys(327680)
	tree := index.NewNaryTree(keys, 0)
	// Method B's configuration: subtrees must fit in (half of) L2.
	budget := 256 << 10
	plan := NewPlan(tree, budget)
	if plan.Segments() < 2 {
		t.Fatalf("a 3 MB tree under a 256 KB budget must need multiple segments, got %d", plan.Segments())
	}
	// Non-root segments must fit; the root segment always does by
	// construction unless even a single level overflows.
	if got := plan.MaxSubtreeBytes(); got > budget {
		// Only legal when some single level already exceeds the budget
		// for height 1 (can't subdivide below one level).
		for s := 0; s < plan.Segments(); s++ {
			if plan.SegmentHeight(s) == 1 {
				continue
			}
			if b := tree.SubtreeBytes(plan.SegmentLevel(s), plan.SegmentHeight(s)); b > budget {
				t.Fatalf("segment %d subtree %d bytes exceeds budget %d with height > 1", s, b, budget)
			}
		}
		_ = got
	}
}

func TestHooksEventCounts(t *testing.T) {
	keys := workload.SortedKeys(50000, 5)
	tree := index.NewNaryTree(keys, 0)
	queries := workload.UniformQueries(3000, 6)
	plan := NewPlan(tree, 32<<10)
	if plan.Segments() < 2 {
		t.Skip("test requires a multi-segment plan")
	}

	var touches, writes, reads int
	h := Hooks{
		TouchNode:   func(int32) { touches++ },
		BufferWrite: func(_ int32, b int) { writes += b },
		BufferRead:  func(_ int32, b int) { reads += b },
	}
	out := make([]int, len(queries))
	plan.RankBatch(queries, out, 0, h)

	// Every key visits every level exactly once.
	wantTouches := len(queries) * tree.Levels()
	if touches != wantTouches {
		t.Errorf("touches = %d, want %d (keys x levels)", touches, wantTouches)
	}
	// Every key is written to a buffer once per segment boundary.
	wantWrites := len(queries) * (plan.Segments() - 1) * EntryBytes
	if writes != wantWrites {
		t.Errorf("buffer writes = %d bytes, want %d", writes, wantWrites)
	}
	if reads != wantWrites {
		t.Errorf("buffer reads = %d bytes, want %d (every written entry is read back)", reads, wantWrites)
	}
}

func TestEveryOutputSlotWritten(t *testing.T) {
	keys := workload.SortedKeys(10000, 7)
	tree := index.NewNaryTree(keys, 0)
	queries := workload.UniformQueries(5000, 8)
	plan := NewPlan(tree, 4<<10)
	out := make([]int, len(queries))
	for i := range out {
		out[i] = -1
	}
	plan.RankBatch(queries, out, 0, Hooks{})
	for i, v := range out {
		if v < 0 {
			t.Fatalf("out[%d] never written", i)
		}
	}
}

func TestEmptyBatchAndEmptyTree(t *testing.T) {
	keys := workload.SortedKeys(1000, 9)
	tree := index.NewNaryTree(keys, 0)
	plan := NewPlan(tree, 8<<10)
	if got := plan.RankBatch(nil, nil, 0, Hooks{}); len(got) != 0 {
		t.Errorf("empty batch returned %v", got)
	}

	empty := index.NewNaryTree(nil, 0)
	ep := NewPlan(empty, 8<<10)
	if ep.Segments() != 0 {
		t.Errorf("empty tree plan has %d segments", ep.Segments())
	}
	out := make([]int, 3)
	ep.RankBatch([]workload.Key{1, 2, 3}, out, 0, Hooks{})
	for i, v := range out {
		if v != 0 {
			t.Errorf("empty tree rank[%d] = %d", i, v)
		}
	}
}

func TestShortOutPanics(t *testing.T) {
	tree := index.NewNaryTree(workload.SortedKeys(100, 1), 0)
	plan := NewPlan(tree, 8<<10)
	defer func() {
		if recover() == nil {
			t.Fatal("short out slice did not panic")
		}
	}()
	plan.RankBatch(workload.UniformQueries(10, 2), make([]int, 5), 0, Hooks{})
}

func TestNonPositiveBudgetPanics(t *testing.T) {
	tree := index.NewNaryTree(workload.SortedKeys(100, 1), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("zero budget did not panic")
		}
	}()
	NewPlan(tree, 0)
}

func TestSingleSegmentDegeneratesToPlainDescent(t *testing.T) {
	keys := workload.SortedKeys(1000, 2)
	tree := index.NewNaryTree(keys, 0)
	plan := NewPlan(tree, 64<<20) // whole tree fits: one segment
	if plan.Segments() != 1 {
		t.Fatalf("segments = %d, want 1", plan.Segments())
	}
	var writes int
	out := make([]int, 100)
	qs := workload.UniformQueries(100, 3)
	plan.RankBatch(qs, out, 0, Hooks{BufferWrite: func(int32, int) { writes++ }})
	if writes != 0 {
		t.Errorf("single-segment plan wrote %d buffer entries, want 0", writes)
	}
}

func TestMethodBConfigurationSegments(t *testing.T) {
	// The paper's Method B: Table 1 tree (T=7) decomposed for the
	// 512 KB L2. With half the cache reserved for buffers, the plan
	// should produce 2-3 segments (the paper's root subtree + lower
	// subtrees structure).
	keys := workload.EvenKeys(327680)
	tree := index.NewNaryTree(keys, 0)
	p := arch.PentiumIIICluster()
	plan := NewPlan(tree, p.L2Size/2)
	if s := plan.Segments(); s < 2 || s > 4 {
		t.Errorf("Method B plan has %d segments, want 2-4 (root subtree + lower subtrees)", s)
	}
}

// Property: buffered ranks equal plain ranks for arbitrary key sets,
// budgets, and query mixes.
func TestBufferedEqualsPlainProperty(t *testing.T) {
	f := func(seed uint64, nRaw, qRaw uint16, budgetRaw uint8) bool {
		n := int(nRaw%5000) + 1
		q := int(qRaw % 2000)
		budget := (int(budgetRaw%64) + 1) * 256
		keys := workload.SortedKeys(n, seed)
		tree := index.NewCSBTree(keys, 0)
		plan := NewPlan(tree, budget)
		queries := workload.UniformQueries(q, seed+1)
		out := make([]int, q)
		plan.RankBatch(queries, out, 0, Hooks{})
		for i, qk := range queries {
			if out[i] != tree.Rank(qk) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBufferedRankBatch(b *testing.B) {
	keys := workload.SortedKeys(327680, 1)
	tree := index.NewNaryTree(keys, 0)
	plan := NewPlan(tree, 256<<10)
	queries := workload.UniformQueries(32768, 2)
	out := make([]int, len(queries))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan.RankBatch(queries, out, 0, Hooks{})
	}
	b.SetBytes(int64(len(queries) * workload.KeyBytes))
}
