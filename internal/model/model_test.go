package model

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

func p3() arch.Params { return arch.PentiumIIICluster() }

func TestXDBasics(t *testing.T) {
	if got := XD(1, 100); got != 1 {
		t.Errorf("XD(1, q) = %v, want 1 (the root line is always touched)", got)
	}
	if got := XD(100, 1); math.Abs(got-1) > 1e-9 {
		t.Errorf("XD(lambda, 1) = %v, want 1 (one lookup touches one line)", got)
	}
	if got := XD(0, 5); got != 0 {
		t.Errorf("XD(0, q) = %v", got)
	}
	if got := XD(100, 0); got != 0 {
		t.Errorf("XD(lambda, 0) = %v", got)
	}
	// Saturation: q >> lambda touches everything.
	if got := XD(50, 1e6); math.Abs(got-50) > 1e-6 {
		t.Errorf("XD saturation = %v, want 50", got)
	}
}

// Property: XD is increasing in q and bounded by lambda.
func TestXDMonotoneBoundedProperty(t *testing.T) {
	f := func(lRaw, qaRaw, qbRaw uint16) bool {
		lambda := float64(lRaw%10000) + 1
		qa, qb := float64(qaRaw), float64(qbRaw)
		if qa > qb {
			qa, qb = qb, qa
		}
		a, b := XD(lambda, qa), XD(lambda, qb)
		return a <= b+1e-9 && b <= lambda+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveQ0InvertsSumXD(t *testing.T) {
	lines := []int{1, 8, 64, 512, 4096, 32768, 262144}
	target := 16384.0 // C2/B2 on the Pentium III
	q0 := SolveQ0(lines, target)
	if math.IsInf(q0, 1) {
		t.Fatal("q0 infinite for a tree much larger than cache")
	}
	got := SumXD(lines, q0)
	if math.Abs(got-target)/target > 1e-3 {
		t.Errorf("SumXD(q0) = %v, want %v", got, target)
	}
}

func TestSolveQ0TreeFitsInCache(t *testing.T) {
	lines := []int{1, 8, 64} // 73 lines, far under 16384
	if q0 := SolveQ0(lines, 16384); !math.IsInf(q0, 1) {
		t.Errorf("q0 = %v, want +Inf when the tree fits", q0)
	}
	if m := SteadyMissesPerLookup(lines, 16384); m != 0 {
		t.Errorf("steady misses = %v, want 0 for an in-cache tree", m)
	}
}

func TestSteadyMissesRange(t *testing.T) {
	lines := []int{1, 3, 20, 160, 1280, 10240, 81920}
	m := SteadyMissesPerLookup(lines, 16384)
	if m <= 0 || m > float64(len(lines)) {
		t.Fatalf("steady misses = %v, want in (0, T]", m)
	}
	// The deep levels dominate: between 1 and 3 misses per lookup for
	// the Table 1 tree in a 512 KB cache.
	if m < 0.8 || m > 3.5 {
		t.Errorf("steady misses = %v, want ~1-3 for the Table 1 geometry", m)
	}
}

func TestSteadyMissesMonotoneInCacheSize(t *testing.T) {
	lines := []int{1, 3, 20, 160, 1280, 10240, 81920}
	prev := math.Inf(1)
	for _, c := range []int{1024, 4096, 16384, 65536} {
		m := SteadyMissesPerLookup(lines, c)
		if m > prev+1e-9 {
			t.Errorf("misses grew with cache size at %d: %v > %v", c, m, prev)
		}
		prev = m
	}
}

func TestIdealLevelLines(t *testing.T) {
	got := IdealLevelLines(4)
	want := []int{1, 8, 64, 512}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IdealLevelLines = %v, want %v", got, want)
		}
	}
}

func TestNewConfigDerivesTable1Geometry(t *testing.T) {
	cfg := NewConfig(p3(), PaperSetup(), 128<<10)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(cfg.LevelLines) != 7 {
		t.Errorf("T = %d, want 7 (Table 1)", len(cfg.LevelLines))
	}
	if cfg.SlaveLevels != 6 {
		t.Errorf("L = %d, want 6 (Table 1)", cfg.SlaveLevels)
	}
	if cfg.SlavePartKeys != 32768 {
		t.Errorf("partition keys = %d, want 32768", cfg.SlavePartKeys)
	}
	if cfg.BatchKeys != 32768 {
		t.Errorf("batch keys = %d, want 32768 for 128 KB", cfg.BatchKeys)
	}
	if cfg.Segments < 2 {
		t.Errorf("segments = %d, want >= 2 for a 3 MB tree under L2/2", cfg.Segments)
	}
}

func TestMethodABreakdownStructure(t *testing.T) {
	cfg := NewConfig(p3(), PaperSetup(), 128<<10)
	b := cfg.MethodA()
	if b.CompNs != 7*30 {
		t.Errorf("A comp = %v, want T*CompCostNode = 210", b.CompNs)
	}
	if b.CacheNs <= 0 {
		t.Errorf("A cache term = %v, want positive (tree >> cache)", b.CacheNs)
	}
	sum := b.CompNs + b.MemNs + b.CacheNs + b.NetNs
	if math.Abs(sum-b.PerKeyNs) > 1e-9 {
		t.Errorf("A breakdown does not sum: %v vs %v", sum, b.PerKeyNs)
	}
}

func TestMethodBImprovesWithBatchSize(t *testing.T) {
	// theta1 amortizes subtree loads over the batch, so Method B's
	// per-key cost must fall monotonically with batch size (the Figure 3
	// trend for B).
	prev := math.Inf(1)
	for _, batch := range []int{8 << 10, 32 << 10, 128 << 10, 512 << 10, 4 << 20} {
		cfg := NewConfig(p3(), PaperSetup(), batch)
		c := cfg.MethodB().PerKeyNs
		if c >= prev {
			t.Errorf("Method B per-key at %d = %v, not below %v", batch, c, prev)
		}
		prev = c
	}
}

func TestMethodBBeatsAAtLargeBatch(t *testing.T) {
	// At 4 MB batches the buffering fully amortizes subtree loads and B
	// must beat A (Figure 3's right-hand side, where B sits below A).
	cfg := NewConfig(p3(), PaperSetup(), 4<<20)
	if a, b := cfg.MethodA().PerKeyNs, cfg.MethodB().PerKeyNs; b >= a {
		t.Errorf("at 4MB batch B (%v) should beat A (%v)", b, a)
	}
}

func TestMethodCVariantsSimilarAndOrdered(t *testing.T) {
	cfg := NewConfig(p3(), PaperSetup(), 128<<10)
	c1 := cfg.MethodC(C1).PerKeyNs
	c2 := cfg.MethodC(C2).PerKeyNs
	c3 := cfg.MethodC(C3).PerKeyNs
	// "They have similar performance" (Section A.2.3): within 2x. The
	// *experimental* ranking of C-3 over C-1/C-2 comes from cache
	// pressure the model does not see (Section 4.1); the simulator in
	// internal/core is what reproduces that ordering, not Equation 8.
	max := math.Max(c1, math.Max(c2, c3))
	min := math.Min(c1, math.Min(c2, c3))
	if max/min > 2 {
		t.Errorf("C variants spread too far: C1=%v C2=%v C3=%v", c1, c2, c3)
	}
}

func TestMethodCMasterSlaveMax(t *testing.T) {
	cfg := NewConfig(p3(), PaperSetup(), 128<<10)
	// With enough slaves, the master must become the bottleneck and
	// adding more slaves must stop helping.
	cfg.Slaves = 1000
	withMany := cfg.MethodC(C3).PerKeyNs
	cfg.Slaves = 2000
	withMore := cfg.MethodC(C3).PerKeyNs
	if withMore < withMany-1e-12 {
		t.Errorf("2000 slaves (%v) beat 1000 slaves (%v): master cap missing", withMore, withMany)
	}
}

func TestMethodCScaledMastersRemovesBottleneck(t *testing.T) {
	cfg := NewConfig(arch.Future(p3(), 5, arch.PaperScaling()), PaperSetup(), 128<<10)
	plain := cfg.MethodC(C3)
	scaled, masters := cfg.MethodCScaledMasters(C3)
	if masters < 1 {
		t.Fatalf("masters = %d", masters)
	}
	if scaled.PerKeyNs > plain.PerKeyNs+1e-12 {
		t.Errorf("scaling masters made things worse: %v > %v", scaled.PerKeyNs, plain.PerKeyNs)
	}
}

func TestTable3AgainstPaper(t *testing.T) {
	rows := Table3(p3())
	if len(rows) != 3 {
		t.Fatalf("Table3 rows = %d", len(rows))
	}
	byMethod := map[string]Table3Row{}
	for _, r := range rows {
		byMethod[r.Method] = r
		if r.PredictedSec <= 0 {
			t.Errorf("%s predicted %v", r.Method, r.PredictedSec)
		}
	}
	// The paper's own model/experiment agreement is "within 25%"
	// (Table 3 discussion). Our model drops TLB effects entirely, so we
	// assert each prediction lies within 40% of the paper's experiment
	// and that the decisive ordering holds: C-3 is the fastest.
	for _, r := range rows {
		rel := math.Abs(r.PredictedSec-r.PaperExperimentSec) / r.PaperExperimentSec
		if rel > 0.40 {
			t.Errorf("%s predicted %.3fs vs paper experiment %.3fs (%.0f%% off)",
				r.Method, r.PredictedSec, r.PaperExperimentSec, rel*100)
		}
	}
	if c3, b := byMethod["C-3"].PredictedSec, byMethod["B"].PredictedSec; c3 >= b {
		t.Errorf("C-3 (%v) should beat B (%v)", c3, b)
	}
	// C-3 prediction should land near the paper's predicted 0.28s.
	c3 := byMethod["C-3"].PredictedSec
	if c3 < 0.20 || c3 > 0.36 {
		t.Errorf("C-3 predicted %.3fs, want ~0.28s (Table 3)", c3)
	}
	// B prediction near the paper's 0.38s.
	b := byMethod["B"].PredictedSec
	if b < 0.28 || b > 0.48 {
		t.Errorf("B predicted %.3fs, want ~0.38s (Table 3)", b)
	}
}

func TestFigure4TrendsMatchPaper(t *testing.T) {
	pts := Figure4(p3(), 5, arch.PaperScaling())
	if len(pts) != 6 {
		t.Fatalf("points = %d, want 6 (years 0-5)", len(pts))
	}
	// C-3 must improve strictly year over year.
	for i := 1; i < len(pts); i++ {
		if pts[i].C3Ns >= pts[i-1].C3Ns {
			t.Errorf("year %d: C-3 %.2f did not improve on %.2f", i, pts[i].C3Ns, pts[i-1].C3Ns)
		}
	}
	// The B : C-3 ratio must grow monotonically (the paper's headline:
	// "the ratio ... grows from approximately a factor of 2 in year 0
	// to about a factor of 10 in year 5").
	prevRatio := 0.0
	for i, pt := range pts {
		ratio := pt.BNs / pt.C3Ns
		if ratio < prevRatio-1e-9 {
			t.Errorf("year %d: B/C-3 ratio %.2f shrank from %.2f", i, ratio, prevRatio)
		}
		prevRatio = ratio
	}
	r0 := pts[0].BNs / pts[0].C3Ns
	r5 := pts[5].BNs / pts[5].C3Ns
	if r5/r0 < 2 {
		t.Errorf("B/C-3 advantage grew only %.2fx over 5 years (%.2f -> %.2f); paper: ~5x", r5/r0, r0, r5)
	}
	// Method A stays latency-bound: it must improve far less than C-3.
	aGain := pts[0].ANs / pts[5].ANs
	cGain := pts[0].C3Ns / pts[5].C3Ns
	if cGain < 2*aGain {
		t.Errorf("C-3 gain %.2fx should far exceed A gain %.2fx", cGain, aGain)
	}
}

func TestCrossoverBatchBytes(t *testing.T) {
	// Figure 3: Methods C lose to B below ~16-32 KB batches and win
	// above. The model's crossover must land in that neighborhood.
	b := CrossoverBatchBytes(p3())
	if b < 2<<10 || b > 128<<10 {
		t.Errorf("modeled crossover at %d bytes, want in [2KB, 128KB] (paper: 16-32KB)", b)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	good := NewConfig(p3(), PaperSetup(), 128<<10)
	cases := map[string]func(*Config){
		"no lines":    func(c *Config) { c.LevelLines = nil },
		"no segments": func(c *Config) { c.Segments = 0 },
		"no slaves":   func(c *Config) { c.Slaves = 0 },
		"no masters":  func(c *Config) { c.Masters = 0 },
		"no batch":    func(c *Config) { c.BatchKeys = 0 },
		"bad L":       func(c *Config) { c.SlaveLevels = 0 },
	}
	for name, mutate := range cases {
		c := good
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestUnknownVariantPanics(t *testing.T) {
	cfg := NewConfig(p3(), PaperSetup(), 128<<10)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown variant did not panic")
		}
	}()
	cfg.MethodC(CVariant(99))
}

func TestCVariantString(t *testing.T) {
	if C1.String() != "C-1" || C2.String() != "C-2" || C3.String() != "C-3" {
		t.Error("CVariant names wrong")
	}
}
