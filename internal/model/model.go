// Package model implements the analytical cost model of Appendix A: the
// Hankins–Patel level-weighted cache-line occupancy function XD, the
// cache-saturation point q0 (Equation 3), the steady-state miss rate for
// tree lookups (Equations 4–5), and the per-key cost equations for
// Method A, Method B (Equation 6 family) and Method C (Equation 8). On
// top of those it generates Table 3 (predicted running times) and the
// Figure 4 future-trend projection under the technology scaling rules of
// Section 4.2.
//
// The model is a deliberate simplification — the paper itself reports
// only "within 25%" agreement and ignores TLB misses ("our model gives a
// lower bound for the running time") — and this package reproduces the
// simplifications rather than the simulator's detail. Where the paper's
// arithmetic is ambiguous (the master-side communication term of
// Equation 8; see EXPERIMENTS.md) the choice made here is documented at
// the relevant function.
package model

import (
	"fmt"
	"math"

	"repro/internal/arch"
)

// XD returns the expected number of distinct cache lines occupied at a
// tree level holding lambda lines after q uniformly-routed lookups
// (Equation 2): lambda * (1 - (1 - 1/lambda)^q). It is increasing in q
// and saturates at lambda.
func XD(lambda, q float64) float64 {
	if lambda <= 0 || q <= 0 {
		return 0
	}
	if lambda == 1 {
		return 1
	}
	// (1-1/lambda)^q via exp/log1p for numerical stability at large
	// lambda and q.
	return lambda * (1 - math.Exp(q*math.Log1p(-1/lambda)))
}

// SumXD returns the total expected distinct lines across levels
// (Equation 1's numerator), with levelLines the per-level line counts
// lambda_i, root first.
func SumXD(levelLines []int, q float64) float64 {
	var s float64
	for _, l := range levelLines {
		s += XD(float64(l), q)
	}
	return s
}

// TotalLines sums the per-level line counts: the tree's full footprint
// in lines.
func TotalLines(levelLines []int) int {
	t := 0
	for _, l := range levelLines {
		t += l
	}
	return t
}

// SolveQ0 finds q0 such that SumXD(levelLines, q0) = targetLines
// (Equation 3: the number of lookups after which the tree's touched
// footprint exactly fills the cache). If the whole tree fits inside
// targetLines the cache never saturates and SolveQ0 returns +Inf.
func SolveQ0(levelLines []int, targetLines float64) float64 {
	if targetLines <= 0 {
		return 0
	}
	if float64(TotalLines(levelLines)) <= targetLines {
		return math.Inf(1)
	}
	lo, hi := 0.0, 1.0
	for SumXD(levelLines, hi) < targetLines {
		hi *= 2
		if hi > 1e18 {
			return math.Inf(1)
		}
	}
	for i := 0; i < 200 && hi-lo > 1e-6*hi; i++ {
		mid := (lo + hi) / 2
		if SumXD(levelLines, mid) < targetLines {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// SteadyMissesPerLookup returns the expected L2 misses per lookup once
// the cache has saturated (Equations 4–5): the marginal footprint of the
// (q0+1)-th lookup, sum over levels of (1 - 1/lambda_i)^q0. Levels whose
// lines mostly fit in cache contribute ~0; levels far larger than the
// cached working set contribute ~1 miss each. If the tree fits in cache
// it returns 0.
func SteadyMissesPerLookup(levelLines []int, cacheLines int) float64 {
	q0 := SolveQ0(levelLines, float64(cacheLines))
	if math.IsInf(q0, 1) {
		return 0
	}
	var m float64
	for _, l := range levelLines {
		lambda := float64(l)
		if lambda <= 0 {
			continue
		}
		if lambda == 1 {
			continue // the root line is always resident
		}
		m += math.Exp(q0 * math.Log1p(-1/lambda))
	}
	return m
}

// IdealLevelLines returns the idealized full 8-ary level widths
// 1, 8, 64, ... for T levels — the lambda_i a perfectly full n-ary tree
// would have. The harness uses the real tree's LevelLines by default;
// this helper exists for paper-style sensitivity checks.
func IdealLevelLines(levels int) []int {
	out := make([]int, levels)
	w := 1
	for i := range out {
		out[i] = w
		w *= 8
	}
	return out
}

// CVariant selects the slave-side lookup structure of Method C.
type CVariant int

const (
	// C1 is the CSB+ tree slave (Method C-1).
	C1 CVariant = iota
	// C2 is the CSB+ tree with L1-buffered access (Method C-2).
	C2
	// C3 is the binary-searched sorted array (Method C-3).
	C3
)

// String returns the paper's name for the variant.
func (v CVariant) String() string {
	switch v {
	case C1:
		return "C-1"
	case C2:
		return "C-2"
	case C3:
		return "C-3"
	}
	return fmt.Sprintf("CVariant(%d)", int(v))
}

// Config gathers everything the per-key equations need.
type Config struct {
	// P is the architecture (Table 2 or a Future projection of it).
	P arch.Params

	// LevelLines is lambda_i for the replicated Method A/B tree, root
	// first; its length is T.
	LevelLines []int

	// Segments is T/L for Method B: how many cache-sized subtree
	// segments the buffered traversal uses (internal/buffering's
	// Plan.Segments for the same tree and an L2/2 budget).
	Segments int

	// SlaveLevels is L: the height of one slave's partition tree
	// (Methods C-1/C-2). SlavePartKeys is the partition's key count
	// (Method C-3's binary-search domain).
	SlaveLevels   int
	SlavePartKeys int

	// Masters and Slaves count the Method C roles; Nodes = Masters +
	// Slaves is the normalization divisor for Methods A and B.
	Masters int
	Slaves  int

	// BatchKeys is the batch size in keys (q in Equation 1's
	// amortization of Method B's subtree loads, and the batch the
	// Method C master accumulates per slave before sending).
	BatchKeys int

	// OverlapMasterComm, when true (the default made by NewConfig),
	// drops the master's 4/W2 term from Equation 8 on the grounds of
	// Section 2.1: "communication can overlap with computation. This
	// makes the communication cost negligible." Without this the
	// single master is always the bottleneck and the equation cannot
	// reproduce the paper's own Table 3 value for C-3.
	OverlapMasterComm bool
}

// Validate reports the first structural problem with c.
func (c Config) Validate() error {
	switch {
	case len(c.LevelLines) == 0:
		return fmt.Errorf("model: no level lines")
	case c.Segments <= 0:
		return fmt.Errorf("model: Segments = %d", c.Segments)
	case c.SlaveLevels <= 0 || c.SlavePartKeys <= 0:
		return fmt.Errorf("model: bad slave geometry L=%d part=%d", c.SlaveLevels, c.SlavePartKeys)
	case c.Masters <= 0 || c.Slaves <= 0:
		return fmt.Errorf("model: need at least one master and one slave")
	case c.BatchKeys <= 0:
		return fmt.Errorf("model: BatchKeys = %d", c.BatchKeys)
	}
	return c.P.Validate()
}

// Breakdown is one method's per-key cost decomposition in nanoseconds.
type Breakdown struct {
	Method  string
	CompNs  float64 // CPU comparisons / dispatch
	MemNs   float64 // streaming buffer traffic (W1 terms)
	CacheNs float64 // cache-miss penalties (B1/B2 terms)
	NetNs   float64 // network transmission (W2 terms)
	// PerKeyNs is the sum; for Method C it is the max of the master
	// and slave pipeline stages rather than a sum.
	PerKeyNs float64
}

const wordBytes = float64(arch.WordBytes)

// MethodA returns the per-key cost of Method A (Section A.2.1): a full
// T-level descent paying a steady-state miss charge, plus streaming the
// key in and the result out.
//
//	T*CompCostNode + 8/W1 + steadyMisses*B2MissPenalty
func (c Config) MethodA() Breakdown {
	t := float64(len(c.LevelLines))
	comp := t * c.P.CompCostNodeNs
	mem := 2 * wordBytes / c.P.MemSeqBps * 1e9 // read key + write result
	misses := SteadyMissesPerLookup(c.LevelLines, c.P.L2Lines())
	cache := misses * c.P.B2MissPenaltyNs
	b := Breakdown{Method: "A", CompNs: comp, MemNs: mem, CacheNs: cache}
	b.PerKeyNs = comp + mem + cache
	return b
}

// MethodB returns the per-key cost of Method B (Section A.2.2): the same
// comparisons, but tree access restructured by the buffering technique —
// theta1 amortizes loading each cache-sized subtree over the batch
// (Equation 6), theta2 charges an L1 fill for the in-cache node visits
// (Equation 7), and the buffer traffic terms move keys between segment
// buffers.
func (c Config) MethodB() Breakdown {
	t := float64(len(c.LevelLines))
	segs := float64(c.Segments)
	q := float64(c.BatchKeys)

	comp := t * c.P.CompCostNodeNs

	// theta1: expected distinct lines touched per key while streaming
	// the batch through the (cache-fitting) subtrees.
	linesPerKey := SumXD(c.LevelLines, q) / q
	theta1 := linesPerKey * c.P.B2MissPenaltyNs
	// theta2: the remaining node visits are L2 hits needing an L1 fill.
	inCache := t - linesPerKey
	if inCache < 0 {
		inCache = 0
	}
	theta2 := inCache * c.P.B1MissPenaltyNs

	// Buffer reads are sequential: 4/W1 per segment traversed. Buffer
	// writes scatter across the segment's buffers: an amortized line
	// fill per entry, B2MissPenalty*4/B2, per segment boundary.
	mem := wordBytes / c.P.MemSeqBps * 1e9 * segs
	scatter := c.P.B2MissPenaltyNs * wordBytes / float64(c.P.L2Line) * (segs - 1)

	b := Breakdown{Method: "B", CompNs: comp, MemNs: mem, CacheNs: theta1 + theta2 + scatter}
	b.PerKeyNs = comp + mem + theta1 + theta2 + scatter
	return b
}

// MethodC returns the per-key cost of Method C (Equation 8): the max of
// the master-side and slave-side pipeline stages, each divided by its
// replication factor, because masters and slaves work in parallel.
func (c Config) MethodC(v CVariant) Breakdown {
	netPerKey := wordBytes / c.P.NetBps * 1e9 // 4/W2
	memPerKey := 2 * wordBytes / c.P.MemSeqBps * 1e9

	// Master stage: dispatch + stream the key through buffers (+ the
	// outbound transmission unless overlapped; see OverlapMasterComm).
	masterNet := netPerKey
	if c.OverlapMasterComm {
		masterNet = 0
	}
	master := (c.P.DispatchCostNs + memPerKey + masterNet) / float64(c.Masters)

	// Slave stage: the variant-specific lookup, plus streaming the key
	// in and result out, plus sending the result onward.
	var comp, cache float64
	switch v {
	case C1:
		// L tree levels, each a comparison plus a possible L1 fill
		// ("at each level a L1 cache miss may happen").
		comp = float64(c.SlaveLevels) * c.P.CompCostNodeNs
		cache = float64(c.SlaveLevels) * c.P.B1MissPenaltyNs
	case C2:
		// Buffered access keeps each L1-sized subtree resident while
		// the batch streams through it: the L1 fills amortize over
		// the batch instead of recurring per key.
		comp = float64(c.SlaveLevels) * c.P.CompCostNodeNs
		partLines := float64(c.SlavePartKeys) * wordBytes * 2 / float64(c.P.L1Line)
		amort := XD(partLines, float64(c.BatchKeys)) / float64(c.BatchKeys)
		cache = amort * c.P.B1MissPenaltyNs
		// Plus the scatter write per segment boundary, as in B but at
		// L1 scale; slave partitions need ~2 segments.
		cache += c.P.B1MissPenaltyNs * wordBytes / float64(c.P.L1Line)
	case C3:
		// Binary search: ceil(log2 n) probes. The hot top of the
		// probe tree (the first ~log2(L1 lines) levels) stays in L1;
		// deeper probes pay an L1 fill from L2.
		probes := math.Ceil(math.Log2(float64(c.SlavePartKeys) + 1))
		comp = probes * c.P.CompCostProbeNs
		hot := math.Floor(math.Log2(float64(c.P.L1Lines()) / 2))
		cold := probes - hot
		if cold < 0 {
			cold = 0
		}
		cache = cold * c.P.B1MissPenaltyNs
	default:
		panic(fmt.Sprintf("model: unknown C variant %d", int(v)))
	}
	slave := (comp + cache + memPerKey + netPerKey) / float64(c.Slaves)

	b := Breakdown{
		Method:  "C-" + fmt.Sprint(int(v)+1),
		CompNs:  comp / float64(c.Slaves),
		MemNs:   memPerKey / float64(c.Slaves),
		CacheNs: cache / float64(c.Slaves),
		NetNs:   netPerKey / float64(c.Slaves),
	}
	b.PerKeyNs = math.Max(master, slave)
	return b
}

// NormalizedTotalSeconds converts a per-key cost into the normalized
// total running time for totalKeys keys the way Table 3 reports it: the
// Method A/B time is divided by the node count (they use all nodes
// independently), while Method C's pipeline cost is already cluster-wide.
func (c Config) NormalizedTotalSeconds(b Breakdown, totalKeys int) float64 {
	total := b.PerKeyNs * float64(totalKeys) / 1e9
	switch b.Method {
	case "A", "B":
		return total / float64(c.Masters+c.Slaves)
	default:
		return total
	}
}
