package model

import (
	"math"

	"repro/internal/arch"
	"repro/internal/buffering"
	"repro/internal/index"
	"repro/internal/workload"
)

// Setup bundles the paper's experimental constants (Section 4): the
// Table 1 index, 2^23 search keys, and the 11-node cluster (1 master +
// 10 slaves for Method C).
type Setup struct {
	IndexKeys int
	TotalKeys int
	Masters   int
	Slaves    int
}

// PaperSetup returns Section 4's constants.
func PaperSetup() Setup {
	return Setup{
		IndexKeys: 327680,  // Table 1: "327 kilo"
		TotalKeys: 1 << 23, // "8 million (2^23) random search keys"
		Masters:   1,
		Slaves:    10, // "one of the 11 nodes acts as the master"
	}
}

// NewConfig derives a model Config from an architecture, a setup, and a
// batch size, by building the actual Table 1 structures: the Method A/B
// tree's real level widths (lambda_i), the buffered plan's segment count
// under an L2/2 budget, and the slave partition's real height. Using
// measured geometry instead of idealized 8^i widths keeps the model and
// the simulator describing the same object.
func NewConfig(p arch.Params, s Setup, batchBytes int) Config {
	keys := workload.EvenKeys(s.IndexKeys)
	tree := index.NewNaryTree(keys, 0)
	plan := buffering.NewPlan(tree, p.L2Size/2)

	partKeys := s.IndexKeys / s.Slaves
	slaveTree := index.NewCSBTree(keys[:partKeys], 0)

	return Config{
		P:                 p,
		LevelLines:        tree.LevelLines(),
		Segments:          plan.Segments(),
		SlaveLevels:       slaveTree.Levels(),
		SlavePartKeys:     partKeys,
		Masters:           s.Masters,
		Slaves:            s.Slaves,
		BatchKeys:         workload.BatchKeysForBytes(batchBytes),
		OverlapMasterComm: true,
	}
}

// Table3Row is one line of Table 3: a method's predicted normalized
// running time for the full workload.
type Table3Row struct {
	Method       string
	PredictedSec float64
	// PaperPredictedSec and PaperExperimentSec echo Table 3 of the
	// paper for side-by-side reporting.
	PaperPredictedSec  float64
	PaperExperimentSec float64
}

// Table3 evaluates the model at the paper's Table 3 operating point
// (128 KB batches, 1 master + 10 slaves) and returns rows for Methods A,
// B and C-3 alongside the paper's own numbers.
func Table3(p arch.Params) []Table3Row {
	s := PaperSetup()
	cfg := NewConfig(p, s, 128<<10)
	return []Table3Row{
		{
			Method:             "A",
			PredictedSec:       cfg.NormalizedTotalSeconds(cfg.MethodA(), s.TotalKeys),
			PaperPredictedSec:  0.45,
			PaperExperimentSec: 0.39,
		},
		{
			Method:             "B",
			PredictedSec:       cfg.NormalizedTotalSeconds(cfg.MethodB(), s.TotalKeys),
			PaperPredictedSec:  0.38,
			PaperExperimentSec: 0.36,
		},
		{
			Method:             "C-3",
			PredictedSec:       cfg.NormalizedTotalSeconds(cfg.MethodC(C3), s.TotalKeys),
			PaperPredictedSec:  0.28,
			PaperExperimentSec: 0.32,
		},
	}
}

// YearPoint is one x-position of Figure 4: normalized per-key times for
// the three modeled methods after the given number of years of
// technology scaling.
type YearPoint struct {
	Year float64
	// ANs, BNs and C3Ns are normalized per-key times in nanoseconds
	// (Method A/B divided by the node count, Method C's pipeline cost
	// as-is), directly comparable to each other.
	ANs  float64
	BNs  float64
	C3Ns float64
	// MastersUsed is how many master replicas Method C needs so the
	// master stage is not the bottleneck (the Section 3.2 remark:
	// "easily remedied by setting up multiple master nodes").
	MastersUsed int
}

// Figure4 projects the model over years 0..years under scaling s,
// holding the Figure 4 operating point fixed (128 KB batches). Masters
// are replicated as needed per the paper's remark so that Method C's
// trend reflects the slave pipeline.
func Figure4(base arch.Params, years int, s arch.FutureScaling) []YearPoint {
	setup := PaperSetup()
	out := make([]YearPoint, 0, years+1)
	for y := 0; y <= years; y++ {
		p := arch.Future(base, float64(y), s)
		cfg := NewConfig(p, setup, 128<<10)
		nodes := float64(cfg.Masters + cfg.Slaves)

		a := cfg.MethodA().PerKeyNs / nodes
		b := cfg.MethodB().PerKeyNs / nodes
		c3, masters := cfg.MethodCScaledMasters(C3)

		out = append(out, YearPoint{
			Year:        float64(y),
			ANs:         a,
			BNs:         b,
			C3Ns:        c3.PerKeyNs,
			MastersUsed: masters,
		})
	}
	return out
}

// MethodCScaledMasters evaluates Method C with the smallest number of
// master replicas that keeps the master stage from being the pipeline
// bottleneck, returning the resulting breakdown and the master count.
// This implements the Section 3.2 remark quantitatively.
func (c Config) MethodCScaledMasters(v CVariant) (Breakdown, int) {
	cfg := c
	for m := c.Masters; ; m++ {
		cfg.Masters = m
		b := cfg.MethodC(v)
		// Recompute the slave-only stage to detect master dominance:
		// with one more master the cost would not change if slaves
		// already bind.
		cfg2 := cfg
		cfg2.Masters = m + 1
		if b2 := cfg2.MethodC(v); b2.PerKeyNs >= b.PerKeyNs-1e-12 {
			return b, m
		}
		if m > 1<<10 {
			// Unbounded master demand indicates a degenerate
			// parameter set; return what we have.
			return b, m
		}
	}
}

// CrossoverBatchBytes returns the smallest power-of-two batch size at
// which Method C-3's modeled per-key cost (including the amortized
// per-message latency and overhead that Equation 8 drops) beats Method
// B's — the model's account of Figure 3's observation that Methods C
// lose below ~16-32 KB batches and win above.
func CrossoverBatchBytes(p arch.Params) int {
	s := PaperSetup()
	for b := 1 << 10; b <= 64<<20; b <<= 1 {
		cfg := NewConfig(p, s, b)
		bCost := cfg.MethodB().PerKeyNs / float64(cfg.Masters+cfg.Slaves)
		cCost := cfg.MethodC(C3).PerKeyNs + perMessageAmortNs(p, b)
		if cCost < bCost {
			return b
		}
	}
	return math.MaxInt
}

// perMessageAmortNs charges the per-message overhead and latency that
// Equation 8 neglects ("transmission time is considered, but not
// latency") amortized over a batch — the term that makes small batches
// lose in Figure 3.
func perMessageAmortNs(p arch.Params, batchBytes int) float64 {
	keys := float64(workload.BatchKeysForBytes(batchBytes))
	return (p.NetPerMsgOverheadNs + p.NetLatencyNs) / keys
}
