// Package admin is the operations-plane HTTP surface: a small,
// dependency-free server that exposes a process's telemetry registry
// in Prometheus text format (/metrics), the unified Stats tree as JSON
// (/stats), a liveness probe (/health), the served indexes
// (/indexes), and — when the process can reshape a live cluster — the
// membership verbs (POST /membership/add-replica, drain-replica,
// split-partition).
//
// The package deliberately knows nothing about netrun or dcindex: the
// host wires callbacks in through Config, so both a dcnode (one
// partition, no membership authority) and a dcq master (whole-cluster
// stats, membership verbs) mount the same handler. Everything is
// stdlib net/http; there is no auth — bind the admin listener to a
// loopback or operator network.
package admin

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"

	"repro/internal/telemetry"
)

// IndexInfo describes one index (or partition of one) served by the
// process, as listed by GET /indexes.
type IndexInfo struct {
	Name      string `json:"name"`
	Partition int    `json:"partition"`
	Keys      int64  `json:"keys"`
	RankBase  int64  `json:"rank_base"`
	Mode      string `json:"mode"`
}

// Membership is the live-reshape hook behind POST /membership/...:
// implemented by the netrun cluster client. Every method blocks until
// the operation has fully taken effect (or failed); errors surface to
// the HTTP caller verbatim.
type Membership interface {
	// AddReplica admits addr as a new replica of partition part,
	// catching it up from a sibling before it serves reads.
	AddReplica(part int, addr string) error
	// DrainReplica removes addr from partition part's replica group
	// after quiescing it. The last replica of a partition cannot be
	// drained.
	DrainReplica(part int, addr string) error
	// SplitPartition splits partition part at its median key into two
	// partitions, dividing the replica group between the halves.
	SplitPartition(part int) error
}

// Config wires a process's observable surfaces into the handler. Any
// nil field disables its endpoint (404 for data endpoints, 501 for
// membership).
type Config struct {
	// Registry backs GET /metrics.
	Registry *telemetry.Registry
	// BeforeScrape, when set, runs before each /metrics render so the
	// host can refresh gauges that are computed rather than counted
	// (live replica counts, key totals).
	BeforeScrape func(*telemetry.Registry)
	// Stats returns the unified Stats tree for GET /stats. The value
	// is rendered as JSON verbatim.
	Stats func() any
	// Health returns process liveness for GET /health: ok selects the
	// status code (200/503), detail is rendered as JSON.
	Health func() (ok bool, detail any)
	// Indexes returns the served index list for GET /indexes.
	Indexes func() []IndexInfo
	// Membership enables the POST /membership/... verbs.
	Membership Membership
}

// membershipRequest is the JSON body of every membership verb.
type membershipRequest struct {
	Partition int    `json:"partition"`
	Addr      string `json:"addr"`
}

// Handler builds the admin endpoint mux for cfg.
func Handler(cfg Config) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Registry == nil {
			http.NotFound(w, r)
			return
		}
		if cfg.BeforeScrape != nil {
			cfg.BeforeScrape(cfg.Registry)
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		cfg.Registry.WritePrometheus(w)
	})

	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Stats == nil {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, http.StatusOK, cfg.Stats())
	})

	mux.HandleFunc("/health", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Health == nil {
			writeJSON(w, http.StatusOK, map[string]any{"ok": true})
			return
		}
		ok, detail := cfg.Health()
		code := http.StatusOK
		if !ok {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, map[string]any{"ok": ok, "detail": detail})
	})

	mux.HandleFunc("/indexes", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Indexes == nil {
			http.NotFound(w, r)
			return
		}
		list := cfg.Indexes()
		if list == nil {
			list = []IndexInfo{}
		}
		writeJSON(w, http.StatusOK, list)
	})

	mux.HandleFunc("/membership/", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed, errors.New("membership verbs are POST-only"))
			return
		}
		if cfg.Membership == nil {
			writeError(w, http.StatusNotImplemented,
				errors.New("this process has no membership authority (start the cluster client with an admin config)"))
			return
		}
		verb := strings.TrimPrefix(r.URL.Path, "/membership/")
		var req membershipRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body (want JSON {\"partition\": N, \"addr\": \"host:port\"}): %w", err))
			return
		}
		var err error
		switch verb {
		case "add-replica":
			err = cfg.Membership.AddReplica(req.Partition, req.Addr)
		case "drain-replica":
			err = cfg.Membership.DrainReplica(req.Partition, req.Addr)
		case "split-partition":
			err = cfg.Membership.SplitPartition(req.Partition)
		default:
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown membership verb %q (want add-replica, drain-replica, split-partition)", verb))
			return
		}
		if err != nil {
			// Conflict, not server error: the cluster refused the
			// reshape (pre-v6 replicas, last replica, unsplittable
			// partition) and says why.
			writeError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "verb": verb, "partition": req.Partition, "addr": req.Addr})
	})

	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]any{"ok": false, "error": err.Error()})
}

// Server is a running admin endpoint. Close stops it.
type Server struct {
	lis net.Listener
	srv *http.Server
}

// Serve binds addr (":0" picks a free port) and serves the admin
// handler in the background. The returned server reports its bound
// address via Addr.
func Serve(addr string, cfg Config) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("admin: listen %s: %w", addr, err)
	}
	s := &Server{lis: lis, srv: &http.Server{Handler: Handler(cfg)}}
	go s.srv.Serve(lis)
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close stops the listener and any in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }
