package admin

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// statsTree mirrors the shape a host's unified Stats tree takes so the
// round-trip test exercises nested structs, slices, and counters.
type statsTree struct {
	SchemaVersion int            `json:"schema_version"`
	Partitions    int            `json:"partitions"`
	Keys          int64          `json:"keys"`
	Replicas      []replicaStats `json:"replicas"`
}

type replicaStats struct {
	Partition  int    `json:"partition"`
	Addr       string `json:"addr"`
	State      string `json:"state"`
	Dispatched int64  `json:"dispatched"`
}

func testHandler(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(Handler(cfg))
	t.Cleanup(srv.Close)
	return srv
}

// The /metrics output must parse as Prometheus text exposition in the
// shape CI's scrape job asserts: TYPE lines, series with label sets,
// cumulative histogram buckets ending at +Inf, numeric sample values.
func TestMetricsScrapeParses(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("dc_client_hedges_total").Add(3)
	h := reg.Histogram(`dc_node_op_ns{op="lookup"}`)
	for i := 0; i < 50; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	scraped := 0
	srv := testHandler(t, Config{
		Registry:     reg,
		BeforeScrape: func(r *telemetry.Registry) { scraped++; r.Gauge("dc_live_replicas").Set(4) },
	})

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	if scraped != 1 {
		t.Fatalf("BeforeScrape ran %d times, want 1", scraped)
	}

	// Every non-comment line must be `series value` with a numeric
	// value — the minimal Prometheus text-format contract.
	types := map[string]string{}
	samples := map[string]int64{}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			types[f[2]] = f[3]
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseInt(line[sp+1:], 10, 64)
		if err != nil {
			t.Fatalf("non-numeric sample in %q: %v", line, err)
		}
		samples[line[:sp]] = v
	}
	if types["dc_client_hedges_total"] != "counter" || samples["dc_client_hedges_total"] != 3 {
		t.Errorf("counter series wrong: types=%v samples=%v", types["dc_client_hedges_total"], samples["dc_client_hedges_total"])
	}
	if types["dc_live_replicas"] != "gauge" || samples["dc_live_replicas"] != 4 {
		t.Errorf("BeforeScrape gauge missing: %v", samples["dc_live_replicas"])
	}
	if types["dc_node_op_ns"] != "histogram" {
		t.Errorf("histogram TYPE missing: %v", types)
	}
	if got := samples[`dc_node_op_ns_bucket{op="lookup",le="+Inf"}`]; got != 50 {
		t.Errorf("+Inf bucket = %d, want 50", got)
	}
	if got := samples[`dc_node_op_ns_count{op="lookup"}`]; got != 50 {
		t.Errorf("count = %d, want 50", got)
	}
}

// The /stats endpoint must round-trip the host's Go Stats struct
// through JSON without loss.
func TestStatsJSONRoundTrip(t *testing.T) {
	want := statsTree{
		SchemaVersion: 1,
		Partitions:    8,
		Keys:          327680,
		Replicas: []replicaStats{
			{Partition: 0, Addr: "127.0.0.1:7000", State: "healthy", Dispatched: 42},
			{Partition: 0, Addr: "127.0.0.1:7100", State: "drained", Dispatched: 17},
		},
	}
	srv := testHandler(t, Config{Stats: func() any { return want }})

	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got statsTree
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.SchemaVersion != want.SchemaVersion || got.Partitions != want.Partitions ||
		got.Keys != want.Keys || len(got.Replicas) != len(want.Replicas) {
		t.Fatalf("round-trip mismatch: got %+v want %+v", got, want)
	}
	for i := range want.Replicas {
		if got.Replicas[i] != want.Replicas[i] {
			t.Fatalf("replica %d mismatch: got %+v want %+v", i, got.Replicas[i], want.Replicas[i])
		}
	}
}

func TestHealthStatusCodes(t *testing.T) {
	ok := true
	srv := testHandler(t, Config{Health: func() (bool, any) { return ok, map[string]int{"replicas": 4} }})
	resp, err := http.Get(srv.URL + "/health")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy status = %d", resp.StatusCode)
	}
	ok = false
	resp, err = http.Get(srv.URL + "/health")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unhealthy status = %d", resp.StatusCode)
	}
}

// A membership POST with no membership authority must say so (501),
// and a refused reshape must surface the cluster's own error text.
func TestMembershipErrors(t *testing.T) {
	srv := testHandler(t, Config{})
	resp, err := http.Post(srv.URL+"/membership/split-partition", "application/json",
		strings.NewReader(`{"partition":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("no-authority status = %d, want 501", resp.StatusCode)
	}

	refusal := errors.New("partition 1: replica 127.0.0.1:7100 speaks protocol v5; live membership needs v6")
	srv2 := testHandler(t, Config{Membership: membershipFuncs{split: func(part int) error { return refusal }}})
	resp2, err := http.Post(srv2.URL+"/membership/split-partition", "application/json",
		strings.NewReader(`{"partition":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("refusal status = %d, want 409", resp2.StatusCode)
	}
	var body struct {
		OK    bool   `json:"ok"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.OK || !strings.Contains(body.Error, "protocol v5") || !strings.Contains(body.Error, "needs v6") {
		t.Fatalf("refusal body not descriptive: %+v", body)
	}

	// GET is rejected, unknown verbs are 404.
	respGet, err := http.Get(srv2.URL + "/membership/split-partition")
	if err != nil {
		t.Fatal(err)
	}
	respGet.Body.Close()
	if respGet.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d, want 405", respGet.StatusCode)
	}
	respBad, err := http.Post(srv2.URL+"/membership/explode", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	respBad.Body.Close()
	if respBad.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown verb status = %d, want 404", respBad.StatusCode)
	}
}

func TestServeAndClose(t *testing.T) {
	s, err := Serve("127.0.0.1:0", Config{Indexes: func() []IndexInfo {
		return []IndexInfo{{Name: "dcq", Partition: 2, Keys: 1000, Mode: "updatable"}}
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + s.Addr() + "/indexes")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []IndexInfo
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Partition != 2 || list[0].Keys != 1000 {
		t.Fatalf("indexes = %+v", list)
	}
}

// membershipFuncs adapts bare funcs to the Membership interface.
type membershipFuncs struct {
	add   func(int, string) error
	drain func(int, string) error
	split func(int) error
}

func (m membershipFuncs) AddReplica(p int, a string) error   { return call2(m.add, p, a) }
func (m membershipFuncs) DrainReplica(p int, a string) error { return call2(m.drain, p, a) }
func (m membershipFuncs) SplitPartition(p int) error {
	if m.split == nil {
		return nil
	}
	return m.split(p)
}

func call2(f func(int, string) error, p int, a string) error {
	if f == nil {
		return nil
	}
	return f(p, a)
}
