package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestFaultyOrdinalsAndStickiness(t *testing.T) {
	f := NewFaulty(OS)
	path := filepath.Join(t.TempDir(), "x")
	file, err := f.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()

	f.FailWriteAt(3)
	for i := 1; i <= 2; i++ {
		if _, err := file.Write([]byte("a")); err != nil {
			t.Fatalf("write %d failed before the armed ordinal: %v", i, err)
		}
	}
	if _, err := file.Write([]byte("a")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write 3 = %v, want ErrInjected", err)
	}
	// A dying disk stays dead: ordinal 4 fails too.
	if _, err := file.Write([]byte("a")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write 4 = %v, want ErrInjected (sticky)", err)
	}
	if got := f.Writes(); got != 4 {
		t.Fatalf("Writes() = %d, want 4", got)
	}

	f.FailSyncAt(1)
	if err := file.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync 1 = %v, want ErrInjected", err)
	}
	if got := f.Syncs(); got != 1 {
		t.Fatalf("Syncs() = %d, want 1", got)
	}
}

// TestFaultyCountsAcrossFiles: ordinals are FS-wide, so a test can aim a
// fault at "the nth write anywhere in the store" without knowing which
// file it lands in.
func TestFaultyCountsAcrossFiles(t *testing.T) {
	f := NewFaulty(OS)
	dir := t.TempDir()
	a, err := f.OpenFile(filepath.Join(dir, "a"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := f.CreateTemp(dir, "b-*")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	f.FailWriteAt(2)
	if _, err := a.Write([]byte("x")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if _, err := b.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("second write (other file) = %v, want ErrInjected", err)
	}
}
