// Package faultfs is the filesystem seam the durability layer writes
// through. Production code uses OS, a thin veneer over the os package;
// tests wrap it in a Faulty to inject write and fsync failures at exact
// call ordinals, which is how the crash/fault harness proves that an
// insert is never acked unless its WAL record is durable and that a
// failed fsync poisons the log instead of silently dropping the ack
// guarantee.
package faultfs

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"sync"
)

// File is the subset of *os.File the durability layer needs. Every
// method that can lose data on failure (Write, Sync, Truncate) routes
// through this interface so a Faulty wrapper can intercept it.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	io.Seeker
	Sync() error
	Truncate(size int64) error
	Chmod(mode os.FileMode) error
	Name() string
}

// FS is the directory-level surface: open/create/rename/remove plus the
// read-side helpers recovery uses to scan a store directory.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadDir(name string) ([]fs.DirEntry, error)
	Stat(name string) (os.FileInfo, error)
	MkdirAll(path string, perm os.FileMode) error
	RemoveAll(path string) error
	ReadFile(name string) ([]byte, error)
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error     { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                 { return os.Remove(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (osFS) Stat(name string) (os.FileInfo, error)    { return os.Stat(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) RemoveAll(path string) error              { return os.RemoveAll(path) }
func (osFS) ReadFile(name string) ([]byte, error)     { return os.ReadFile(name) }

// SyncDir fsyncs a directory so a just-created or just-renamed entry
// survives a crash. Rename-into-place is only atomic-and-durable once
// the parent directory's entry list is on disk.
func SyncDir(fsys FS, dir string) error {
	d, err := fsys.OpenFile(dir, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// ErrInjected is the error every injected fault returns, so tests can
// errors.Is their way to "this failure was mine".
var ErrInjected = errors.New("faultfs: injected fault")

// Faulty wraps an FS and fails write or sync calls from a configured
// ordinal onward (a dying disk stays dead, which is exactly the sticky
// behaviour the WAL's broken-log handling must survive). Ordinals count
// calls across every file opened through the wrapper, starting at 1;
// zero disables injection.
type Faulty struct {
	inner FS

	mu          sync.Mutex
	writes      int
	syncs       int
	failWriteAt int
	failSyncAt  int
}

// NewFaulty wraps inner with no faults armed.
func NewFaulty(inner FS) *Faulty { return &Faulty{inner: inner} }

// FailWriteAt makes the nth write (1-based, counted FS-wide) and every
// later write fail with ErrInjected. n <= 0 disarms.
func (f *Faulty) FailWriteAt(n int) {
	f.mu.Lock()
	f.failWriteAt = n
	f.mu.Unlock()
}

// FailSyncAt makes the nth sync (1-based, counted FS-wide, including
// directory syncs) and every later sync fail with ErrInjected. n <= 0
// disarms.
func (f *Faulty) FailSyncAt(n int) {
	f.mu.Lock()
	f.failSyncAt = n
	f.mu.Unlock()
}

// Writes returns how many writes the wrapper has seen.
func (f *Faulty) Writes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes
}

// Syncs returns how many syncs the wrapper has seen.
func (f *Faulty) Syncs() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncs
}

func (f *Faulty) noteWrite() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writes++
	if f.failWriteAt > 0 && f.writes >= f.failWriteAt {
		return ErrInjected
	}
	return nil
}

func (f *Faulty) noteSync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncs++
	if f.failSyncAt > 0 && f.syncs >= f.failSyncAt {
		return ErrInjected
	}
	return nil
}

func (f *Faulty) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultyFile{File: inner, fs: f}, nil
}

func (f *Faulty) CreateTemp(dir, pattern string) (File, error) {
	inner, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultyFile{File: inner, fs: f}, nil
}

func (f *Faulty) Rename(oldpath, newpath string) error { return f.inner.Rename(oldpath, newpath) }
func (f *Faulty) Remove(name string) error             { return f.inner.Remove(name) }
func (f *Faulty) ReadDir(name string) ([]fs.DirEntry, error) { return f.inner.ReadDir(name) }
func (f *Faulty) Stat(name string) (os.FileInfo, error) { return f.inner.Stat(name) }
func (f *Faulty) MkdirAll(path string, perm os.FileMode) error { return f.inner.MkdirAll(path, perm) }
func (f *Faulty) RemoveAll(path string) error          { return f.inner.RemoveAll(path) }
func (f *Faulty) ReadFile(name string) ([]byte, error) { return f.inner.ReadFile(name) }

// faultyFile routes the loss-prone calls through the wrapper's fault
// counters and everything else straight down.
type faultyFile struct {
	File
	fs *Faulty
}

func (f *faultyFile) Write(p []byte) (int, error) {
	if err := f.fs.noteWrite(); err != nil {
		return 0, err
	}
	return f.File.Write(p)
}

func (f *faultyFile) Sync() error {
	if err := f.fs.noteSync(); err != nil {
		return err
	}
	return f.File.Sync()
}
