package faultnet

import (
	"errors"
	"io"
	"net"
	"os"
	"sync"
	"testing"
	"time"
)

// pipe returns a wrapped client end and a raw server end of a loopback
// TCP connection (real TCP so deadlines behave exactly as in netrun).
func pipe(t *testing.T, p *Profile) (cl net.Conn, sv net.Conn) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := l.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		sv = c
	}()
	raw, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if sv == nil {
		t.Fatal("accept failed")
	}
	cl = p.Wrap(raw)
	t.Cleanup(func() { cl.Close(); sv.Close() })
	return cl, sv
}

func TestTransparentByDefault(t *testing.T) {
	p := NewProfile(1)
	cl, sv := pipe(t, p)
	msg := []byte("hello over faultnet")
	if _, err := cl.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(sv, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Fatalf("got %q want %q", got, msg)
	}
}

func TestWriteLatencyInjected(t *testing.T) {
	p := NewProfile(2)
	p.Set(Faults{WriteLatency: 30 * time.Millisecond})
	cl, sv := pipe(t, p)
	start := time.Now()
	if _, err := cl.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := io.ReadFull(sv, buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("write delivered in %v, want >= ~30ms of injected latency", d)
	}
}

func TestStallAfterNthWriteThenHeal(t *testing.T) {
	p := NewProfile(3)
	p.Set(Faults{StallAfterWrites: 2})
	cl, sv := pipe(t, p)
	if _, err := cl.Write([]byte("a")); err != nil {
		t.Fatal(err) // first write passes
	}
	done := make(chan error, 1)
	go func() {
		_, err := cl.Write([]byte("b"))
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("second write should stall, returned err=%v", err)
	case <-time.After(50 * time.Millisecond):
	}
	// Healing the profile wakes the stalled writer and the byte flows.
	p.Disable()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if _, err := io.ReadFull(sv, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "ab" {
		t.Fatalf("got %q want %q", buf, "ab")
	}
}

func TestStallHonorsWriteDeadline(t *testing.T) {
	p := NewProfile(4)
	p.Set(Faults{StallAfterWrites: 1})
	cl, _ := pipe(t, p)
	cl.SetWriteDeadline(time.Now().Add(30 * time.Millisecond))
	start := time.Now()
	_, err := cl.Write([]byte("x"))
	if err == nil {
		t.Fatal("stalled write with a deadline should fail")
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("injected deadline should wrap ErrInjected, got %v", err)
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("injected deadline should be a net.Error timeout, got %#v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("deadline fired after %v, want ~30ms", d)
	}
}

func TestStallUnblocksOnClose(t *testing.T) {
	p := NewProfile(5)
	p.Set(Faults{StallAfterReads: 1})
	cl, sv := pipe(t, p)
	sv.Write([]byte("x"))
	done := make(chan error, 1)
	go func() {
		_, err := cl.Read(make([]byte, 1))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cl.Close()
	err := <-done
	if err == nil || !errors.Is(err, net.ErrClosed) {
		t.Fatalf("want net.ErrClosed from stalled read after close, got %v", err)
	}
}

func TestBlackholeWrites(t *testing.T) {
	p := NewProfile(6)
	p.Set(Faults{BlackholeWrites: true})
	cl, sv := pipe(t, p)
	n, err := cl.Write([]byte("lost"))
	if err != nil || n != 4 {
		t.Fatalf("blackholed write should report success, got n=%d err=%v", n, err)
	}
	sv.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if n, err := sv.Read(make([]byte, 8)); err == nil {
		t.Fatalf("peer received %d bytes through a blackhole", n)
	}
}

func TestMaxWriteChunkTrickles(t *testing.T) {
	p := NewProfile(7)
	p.Set(Faults{MaxWriteChunk: 3, WriteLatency: time.Millisecond})
	cl, sv := pipe(t, p)
	msg := []byte("0123456789")
	go func() {
		if _, err := cl.Write(msg); err != nil {
			t.Error(err)
		}
	}()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(sv, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Fatalf("got %q want %q", got, msg)
	}
}

func TestDeterministicJitter(t *testing.T) {
	// Two profiles with the same seed produce identical jitter streams
	// for their first connection; a different seed diverges.
	sample := func(seed uint64) []time.Duration {
		p := NewProfile(seed)
		fc := p.Wrap(nopConn{}).(*conn)
		out := make([]time.Duration, 16)
		for i := range out {
			out[i] = jittered(time.Millisecond, 0.5, fc.wrng)
		}
		return out
	}
	a, b, c := sample(42), sample(42), sample(43)
	same, diff := true, false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed produced different jitter streams")
	}
	if !diff {
		t.Fatal("different seeds produced identical jitter streams")
	}
}

func TestListenerWrapsAccepted(t *testing.T) {
	p := NewProfile(8)
	p.Set(Faults{WriteLatency: 20 * time.Millisecond})
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := p.WrapListener(raw)
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		c.Write([]byte("y")) // wrapped: delayed
	}()
	cl, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	start := time.Now()
	if _, err := io.ReadFull(cl, make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("accepted conn not wrapped: reply in %v", d)
	}
}

// nopConn satisfies net.Conn for jitter-stream sampling without I/O.
type nopConn struct{}

func (nopConn) Read(b []byte) (int, error)         { return 0, io.EOF }
func (nopConn) Write(b []byte) (int, error)        { return len(b), nil }
func (nopConn) Close() error                       { return nil }
func (nopConn) LocalAddr() net.Addr                { return nil }
func (nopConn) RemoteAddr() net.Addr               { return nil }
func (nopConn) SetDeadline(t time.Time) error      { return nil }
func (nopConn) SetReadDeadline(t time.Time) error  { return nil }
func (nopConn) SetWriteDeadline(t time.Time) error { return nil }
