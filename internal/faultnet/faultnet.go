// Package faultnet is the network sibling of internal/faultfs: a
// deterministic, seeded fault-injection transport for gray-failure
// testing. A Profile wraps net.Conn (or a net.Listener, so node-side
// tests can degrade every accepted connection) and injects per-direction
// latency, bandwidth throttling, stalls starting at the Nth write or
// read, partial-delivery trickling, and silent blackholing / one-way
// partitions. All knobs are dynamic — a test or the dcq -chaos drill can
// slow a healthy replica mid-run and later heal it — and all jitter
// comes from a seeded PRNG so every scenario replays bit-identically.
//
// The wrapper sits below the frame codec: a "frame" here is one
// conn-level Write or Read call. Node replies are flushed one frame at
// a time, so StallAfterWrites=N on a node-side profile stalls the
// connection exactly at the Nth reply frame — the canonical gray
// failure: alive enough to accept requests, silent on the wire.
package faultnet

import (
	"errors"
	"math/rand/v2"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is wrapped by every error faultnet fabricates itself (as
// opposed to errors surfaced from the underlying connection), so tests
// can tell injected failures from real ones with errors.Is.
var ErrInjected = errors.New("faultnet: injected fault")

// Faults is one snapshot of the misbehavior a Profile injects. The zero
// value is a transparent pass-through.
type Faults struct {
	// ReadLatency/WriteLatency are added to every conn-level Read and
	// Write call, modeling a slow peer or congested path. Jitter, if
	// nonzero, scales each delay by a seeded random factor in
	// [1-Jitter, 1+Jitter].
	ReadLatency  time.Duration
	WriteLatency time.Duration
	Jitter       float64

	// ReadBPS/WriteBPS throttle throughput to roughly n bytes/second in
	// that direction (0 = unthrottled).
	ReadBPS  int
	WriteBPS int

	// StallAfterWrites stalls the connection starting at the Nth write
	// call (1 = stall immediately on the first write): the first N-1
	// writes pass through, then every write blocks until the connection
	// is closed, its deadline expires, or the profile is reconfigured.
	// StallAfterReads is the same for the read direction. 0 disarms.
	StallAfterWrites int
	StallAfterReads  int

	// BlackholeWrites reports every write as fully delivered without
	// sending a byte — the peer hears nothing from us while we still
	// hear them (a one-way partition). BlackholeReads is the mirror:
	// reads block as if the peer went silent.
	BlackholeWrites bool
	BlackholeReads  bool

	// MaxWriteChunk trickles writes to the peer at most this many bytes
	// per underlying write, modeling partial delivery of a frame
	// (combined with WriteLatency each chunk is delayed separately).
	// 0 = deliver whole buffers.
	MaxWriteChunk int
}

// Profile is a dynamic, shared fault configuration. One Profile can
// drive many connections (e.g. every conn accepted by a wrapped
// listener); per-connection state (write/read ordinals, PRNG stream) is
// kept in the conn so stall ordinals stay deterministic per connection
// even across rejoin redials.
type Profile struct {
	seed uint64

	mu sync.Mutex
	f  Faults //dc:guardedby mu
	// conns is the number of connections attached so far; it salts each
	// connection's PRNG stream so jitter is deterministic but not
	// identical across connections.
	conns uint64 //dc:guardedby mu
	// gen increments on every Set so stalled connections wake up and
	// re-read the faults when a test heals the profile mid-stall.
	gen   atomic.Uint64
	wakes []chan struct{} //dc:guardedby mu
}

// NewProfile returns a transparent profile whose injected jitter is
// derived from seed. Arm it with Set.
func NewProfile(seed uint64) *Profile {
	return &Profile{seed: seed}
}

// Set replaces the active fault set and wakes any connection currently
// blocked in an injected stall or delay so it re-reads the new faults.
func (p *Profile) Set(f Faults) {
	p.mu.Lock()
	p.f = f
	wakes := p.wakes
	p.wakes = nil
	p.gen.Add(1)
	p.mu.Unlock()
	for _, ch := range wakes {
		close(ch)
	}
}

// Disable clears every fault — the wrapped connections become
// transparent again (a recovered replica).
func (p *Profile) Disable() { p.Set(Faults{}) }

// Get returns the active fault set.
func (p *Profile) Get() Faults {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.f
}

// wake returns a channel closed at the next Set call.
func (p *Profile) wake() <-chan struct{} {
	ch := make(chan struct{})
	p.mu.Lock()
	p.wakes = append(p.wakes, ch)
	p.mu.Unlock()
	return ch
}

// Wrap attaches a connection to the profile.
func (p *Profile) Wrap(c net.Conn) net.Conn {
	p.mu.Lock()
	p.conns++
	ord := p.conns
	p.mu.Unlock()
	fc := &conn{Conn: c, p: p, closed: make(chan struct{})}
	// Independent deterministic jitter streams per direction.
	fc.rrng = rand.New(rand.NewPCG(p.seed, ord*2))
	fc.wrng = rand.New(rand.NewPCG(p.seed, ord*2+1))
	return fc
}

// WrapListener returns a listener whose accepted connections are all
// wrapped by the profile — the node-side injection point (Node.WrapConn
// feeds off it), so a whole replica can be degraded without touching
// client code.
func (p *Profile) WrapListener(l net.Listener) net.Listener {
	return &listener{Listener: l, p: p}
}

type listener struct {
	net.Listener
	p *Profile
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.p.Wrap(c), nil
}

// conn injects the profile's faults around an underlying net.Conn.
// Reads and writes each have a single owner goroutine in netrun (the
// readLoop and sendLoop), matching net.Conn's concurrency contract; the
// per-direction ordinals and PRNGs therefore need no lock.
type conn struct {
	net.Conn
	p      *Profile
	closed chan struct{}
	once   sync.Once

	writes int // conn-level write ordinal (single writer)
	reads  int // conn-level read ordinal (single reader)
	wrng   *rand.Rand
	rrng   *rand.Rand

	// deadlines mirror SetRead/WriteDeadline so injected stalls and
	// delays still honor them (the real conn can't interrupt our
	// artificial blocking). Stored as UnixNano; 0 = none.
	rdeadline atomic.Int64
	wdeadline atomic.Int64
}

func (c *conn) Close() error {
	c.once.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

func (c *conn) SetDeadline(t time.Time) error {
	c.rdeadline.Store(deadlineNanos(t))
	c.wdeadline.Store(deadlineNanos(t))
	return c.Conn.SetDeadline(t)
}

func (c *conn) SetReadDeadline(t time.Time) error {
	c.rdeadline.Store(deadlineNanos(t))
	return c.Conn.SetReadDeadline(t)
}

func (c *conn) SetWriteDeadline(t time.Time) error {
	c.wdeadline.Store(deadlineNanos(t))
	return c.Conn.SetWriteDeadline(t)
}

func deadlineNanos(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// block parks the calling direction until the connection closes, the
// direction's deadline expires, or the profile is reconfigured (in
// which case stalled callers re-evaluate the new faults). It returns
// the error to surface, or nil to retry.
func (c *conn) block(deadline *atomic.Int64) error {
	wake := c.p.wake()
	var timer *time.Timer
	var timeout <-chan time.Time
	if d := deadline.Load(); d != 0 {
		wait := time.Until(time.Unix(0, d))
		if wait <= 0 {
			return errDeadline()
		}
		timer = time.NewTimer(wait)
		timeout = timer.C
		defer timer.Stop()
	}
	select {
	case <-c.closed:
		return errClosed()
	case <-timeout:
		return errDeadline()
	case <-wake:
		return nil // faults changed: caller re-reads and retries
	}
}

// delay sleeps for d (pre-jittered), still honoring close and deadline.
func (c *conn) delay(d time.Duration, deadline *atomic.Int64) error {
	if d <= 0 {
		return nil
	}
	if dl := deadline.Load(); dl != 0 {
		until := time.Until(time.Unix(0, dl))
		if until <= 0 {
			return errDeadline()
		}
		// Sleep only to the deadline: the real I/O after us would fail
		// with a deadline error anyway, surface it at the right time.
		if d > until {
			timer := time.NewTimer(until)
			defer timer.Stop()
			select {
			case <-c.closed:
				return errClosed()
			case <-timer.C:
				return errDeadline()
			}
		}
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-c.closed:
		return errClosed()
	case <-timer.C:
		return nil
	}
}

// injectedErr tags a fabricated failure so errors.Is(err, ErrInjected)
// holds while the underlying cause (net.ErrClosed, deadline exceeded)
// and its net.Error timeout semantics stay visible.
type injectedErr struct{ cause error }

func (e injectedErr) Error() string   { return "faultnet: injected: " + e.cause.Error() }
func (e injectedErr) Unwrap() []error { return []error{ErrInjected, e.cause} }
func (e injectedErr) Timeout() bool   { return errors.Is(e.cause, os.ErrDeadlineExceeded) }
func (e injectedErr) Temporary() bool { return e.Timeout() }

func errClosed() error   { return injectedErr{cause: net.ErrClosed} }
func errDeadline() error { return injectedErr{cause: os.ErrDeadlineExceeded} }

// jittered scales d by a seeded random factor in [1-j, 1+j].
func jittered(d time.Duration, j float64, rng *rand.Rand) time.Duration {
	if j <= 0 || d <= 0 {
		return d
	}
	f := 1 + j*(2*rng.Float64()-1)
	return time.Duration(float64(d) * f)
}

// throttle converts a byte count and a bytes/sec budget into a delay.
func throttle(n, bps int) time.Duration {
	if bps <= 0 || n <= 0 {
		return 0
	}
	return time.Duration(int64(n) * int64(time.Second) / int64(bps))
}

func (c *conn) Write(b []byte) (int, error) {
	c.writes++
	for {
		f := c.p.Get()
		gen := c.p.gen.Load()
		if f.StallAfterWrites > 0 && c.writes >= f.StallAfterWrites {
			if err := c.block(&c.wdeadline); err != nil {
				return 0, err
			}
			continue // profile changed: re-evaluate
		}
		d := jittered(f.WriteLatency, f.Jitter, c.wrng) + throttle(len(b), f.WriteBPS)
		if err := c.delay(d, &c.wdeadline); err != nil {
			return 0, err
		}
		if c.p.gen.Load() != gen {
			continue // reconfigured mid-delay: re-evaluate (e.g. a stall armed)
		}
		if f.BlackholeWrites {
			return len(b), nil // swallowed: peer never sees it
		}
		if f.MaxWriteChunk > 0 && len(b) > f.MaxWriteChunk {
			// Trickle: deliver in chunks, re-applying latency per chunk
			// so a large frame arrives as a slow partial stream.
			total := 0
			for total < len(b) {
				end := total + f.MaxWriteChunk
				if end > len(b) {
					end = len(b)
				}
				n, err := c.Conn.Write(b[total:end])
				total += n
				if err != nil {
					return total, err
				}
				if total < len(b) {
					if err := c.delay(jittered(f.WriteLatency, f.Jitter, c.wrng), &c.wdeadline); err != nil {
						return total, err
					}
				}
			}
			return total, nil
		}
		return c.Conn.Write(b)
	}
}

func (c *conn) Read(b []byte) (int, error) {
	c.reads++
	for {
		f := c.p.Get()
		if f.BlackholeReads || (f.StallAfterReads > 0 && c.reads >= f.StallAfterReads) {
			if err := c.block(&c.rdeadline); err != nil {
				return 0, err
			}
			continue
		}
		n, err := c.Conn.Read(b)
		if err != nil {
			return n, err
		}
		d := jittered(f.ReadLatency, f.Jitter, c.rrng) + throttle(n, f.ReadBPS)
		if derr := c.delay(d, &c.rdeadline); derr != nil {
			// Data already consumed from the socket: deliver it rather
			// than drop bytes on the floor, surface the deadline on the
			// next call.
			return n, nil
		}
		return n, nil
	}
}
