package arch

import (
	"math"
	"strings"
	"testing"
)

func TestPentiumIIIClusterMatchesTable2(t *testing.T) {
	p := PentiumIIICluster()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"L2Size", float64(p.L2Size), 512 * KB},
		{"L1Size", float64(p.L1Size), 16 * KB},
		{"L2Line", float64(p.L2Line), 32},
		{"L1Line", float64(p.L1Line), 32},
		{"B2MissPenaltyNs", p.B2MissPenaltyNs, 110},
		{"B1MissPenaltyNs", p.B1MissPenaltyNs, 16.25},
		{"TLBEntries", float64(p.TLBEntries), 64},
		{"CompCostNodeNs", p.CompCostNodeNs, 30},
		{"W1", p.MemSeqBps, 647 * MB},
		{"W2", p.NetBps, 138 * MB},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v (Table 2)", c.name, c.got, c.want)
		}
	}
}

func TestDerivedGeometry(t *testing.T) {
	p := PentiumIIICluster()
	if got := p.L2Lines(); got != 16384 {
		t.Errorf("L2Lines = %d, want 16384 (C2/B2 in the model)", got)
	}
	if got := p.L1Lines(); got != 512 {
		t.Errorf("L1Lines = %d, want 512", got)
	}
	if got := p.KeysPerLine(); got != 8 {
		t.Errorf("KeysPerLine = %d, want 8 (n-ary tree fan)", got)
	}
}

func TestSeqCostMatchesW1(t *testing.T) {
	p := PentiumIIICluster()
	// Moving 647 MB at 647 MB/s must take one second.
	got := p.SeqCostNs(647 * MB)
	if math.Abs(got-1e9) > 1 {
		t.Errorf("SeqCostNs(647MB) = %v ns, want 1e9", got)
	}
	if p.SeqCostNs(0) != 0 {
		t.Errorf("SeqCostNs(0) = %v, want 0", p.SeqCostNs(0))
	}
}

func TestNetTransferMatchesW2(t *testing.T) {
	p := PentiumIIICluster()
	got := p.NetTransferNs(138 * MB)
	if math.Abs(got-1e9) > 1 {
		t.Errorf("NetTransferNs(138MB) = %v ns, want 1e9", got)
	}
	// Section 2.2: a 10 KB Myrinet message takes about 80 us, clearly
	// dominating the 7 us latency.
	tx := p.NetTransferNs(10 * 1000)
	if tx < 60_000 || tx > 90_000 {
		t.Errorf("10KB transfer = %.0f ns, want ~80us (Section 2.2)", tx)
	}
	if tx < p.NetLatencyNs {
		t.Errorf("10KB transfer %.0f ns should dominate latency %.0f ns", tx, p.NetLatencyNs)
	}
}

func TestRandomBandwidthConsistentWithMissPenalty(t *testing.T) {
	// Section 2.1 measures 48 MB/s for dependent random 4-byte reads.
	// One such read costs one full line fetch; the implied per-access
	// time 4B / 48MB/s = 83 ns should be the same order as the 110 ns
	// B2 penalty (DRAM precharge effects make the penalty the larger).
	p := PentiumIIICluster()
	implied := WordBytes / p.MemRandBps * 1e9
	if implied < 40 || implied > 200 {
		t.Fatalf("implied random access time %.1f ns out of plausible range", implied)
	}
	ratio := p.B2MissPenaltyNs / implied
	if ratio < 0.5 || ratio > 3 {
		t.Errorf("B2 penalty %.0f ns vs implied %.1f ns: ratio %.2f outside [0.5,3]", p.B2MissPenaltyNs, implied, ratio)
	}
}

func TestPentium4Variant(t *testing.T) {
	p := Pentium4()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if p.L2Line != 128 {
		t.Errorf("P4 L2 line = %d, want 128 (Section 2.2)", p.L2Line)
	}
	// Degradation factor for random 4-byte accesses: line/word = 32.
	if f := p.L2Line / WordBytes; f != 32 {
		t.Errorf("P4 degradation factor = %d, want 32", f)
	}
	if p.B2MissPenaltyNs != 150 {
		t.Errorf("P4 B2 penalty = %v, want 150 ns (Section 2.1)", p.B2MissPenaltyNs)
	}
}

func TestGigabitEthernetVariant(t *testing.T) {
	p := GigabitEthernet()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if p.NetLatencyNs != 100_000 {
		t.Errorf("GigE latency = %v, want 100us (Section 2.2)", p.NetLatencyNs)
	}
	// Section 2.2: GigE needs a ~200 KB batch for transmission to
	// dominate latency. At 200 KB, transfer should exceed latency; at
	// 10 KB it must not.
	if tx := p.NetTransferNs(200 * KB); tx < p.NetLatencyNs {
		t.Errorf("200KB GigE transfer %.0f ns should exceed latency %.0f ns", tx, p.NetLatencyNs)
	}
	if tx := p.NetTransferNs(10 * KB); tx > p.NetLatencyNs {
		t.Errorf("10KB GigE transfer %.0f ns should be below latency %.0f ns", tx, p.NetLatencyNs)
	}
}

func TestFutureYearZeroIsIdentityOnScaledFields(t *testing.T) {
	base := PentiumIIICluster()
	f := Future(base, 0, PaperScaling())
	if f.CompCostNodeNs != base.CompCostNodeNs ||
		f.NetBps != base.NetBps ||
		f.MemSeqBps != base.MemSeqBps ||
		f.B2MissPenaltyNs != base.B2MissPenaltyNs {
		t.Errorf("Future(base, 0) changed scaled fields: %+v", f)
	}
}

func TestFutureScalingRates(t *testing.T) {
	base := PentiumIIICluster()
	s := PaperScaling()

	// 18 months: CPU costs halve.
	f := Future(base, 1.5, s)
	if math.Abs(f.CompCostNodeNs-base.CompCostNodeNs/2) > 1e-9 {
		t.Errorf("after 1.5y CompCostNode = %v, want %v", f.CompCostNodeNs, base.CompCostNodeNs/2)
	}
	// 3 years: network doubles.
	f = Future(base, 3, s)
	if math.Abs(f.NetBps-2*base.NetBps) > 1e-3 {
		t.Errorf("after 3y NetBps = %v, want %v", f.NetBps, 2*base.NetBps)
	}
	// 1 year: memory bandwidth +20%.
	f = Future(base, 1, s)
	if math.Abs(f.MemSeqBps-1.2*base.MemSeqBps) > 1e-3 {
		t.Errorf("after 1y MemSeqBps = %v, want %v", f.MemSeqBps, 1.2*base.MemSeqBps)
	}
	// Memory latency never changes.
	f = Future(base, 5, s)
	if f.B2MissPenaltyNs != base.B2MissPenaltyNs {
		t.Errorf("B2 penalty changed under scaling: %v", f.B2MissPenaltyNs)
	}
	if f.TLBMissPenaltyNs != base.TLBMissPenaltyNs {
		t.Errorf("TLB penalty changed under scaling: %v", f.TLBMissPenaltyNs)
	}
}

func TestFutureMonotonic(t *testing.T) {
	base := PentiumIIICluster()
	s := PaperScaling()
	prev := Future(base, 0, s)
	for y := 1; y <= 10; y++ {
		f := Future(base, float64(y), s)
		if f.CompCostNodeNs >= prev.CompCostNodeNs {
			t.Errorf("year %d: CompCostNode not strictly decreasing", y)
		}
		if f.NetBps <= prev.NetBps {
			t.Errorf("year %d: NetBps not strictly increasing", y)
		}
		if f.MemSeqBps <= prev.MemSeqBps {
			t.Errorf("year %d: MemSeqBps not strictly increasing", y)
		}
		prev = f
	}
}

func TestFutureNegativeYearsClamped(t *testing.T) {
	base := PentiumIIICluster()
	f := Future(base, -3, PaperScaling())
	if f.CompCostNodeNs != base.CompCostNodeNs {
		t.Errorf("negative years should clamp to 0, got CompCostNode=%v", f.CompCostNodeNs)
	}
}

func TestValidateCatchesBadGeometry(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero L1", func(p *Params) { p.L1Size = 0 }},
		{"negative L2", func(p *Params) { p.L2Size = -1 }},
		{"non-pow2 line", func(p *Params) { p.L2Line = 48 }},
		{"size not multiple of line", func(p *Params) { p.L2Size = 512*KB + 16 }},
		{"zero assoc", func(p *Params) { p.L2Assoc = 0 }},
		{"assoc not dividing lines", func(p *Params) { p.L2Assoc = 7 }},
		{"zero B2 penalty", func(p *Params) { p.B2MissPenaltyNs = 0 }},
		{"zero page", func(p *Params) { p.PageBytes = 0 }},
		{"zero W1", func(p *Params) { p.MemSeqBps = 0 }},
		{"zero W2", func(p *Params) { p.NetBps = 0 }},
		{"negative latency", func(p *Params) { p.NetLatencyNs = -1 }},
		{"negative comp cost", func(p *Params) { p.CompCostNodeNs = -1 }},
	}
	for _, c := range cases {
		p := PentiumIIICluster()
		c.mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid params", c.name)
		}
	}
}

func TestStringMentionsKeyNumbers(t *testing.T) {
	s := PentiumIIICluster().String()
	for _, want := range []string{"512KB", "110", "647", "138"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}
