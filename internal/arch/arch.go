// Package arch defines architecture parameter sets for the simulated
// cluster: cache geometry, miss penalties, memory and network bandwidths,
// and per-operation CPU costs.
//
// The canonical parameter set, PentiumIIICluster, is Table 2 of the paper
// (the measured parameters of the Boston University Linux cluster: dual
// 1.3 GHz Pentium III nodes, Myrinet interconnect, MPICH 1.2.5). Variants
// model the Pentium 4 discussed in Section 2.2, a Gigabit-Ethernet
// interconnect, and the future-technology scaling rules of Section 4.2.
//
// All times are float64 nanoseconds and all bandwidths are bytes per
// second, so costs compose with plain arithmetic inside the simulators.
package arch

import (
	"fmt"
	"math"
)

// Byte-size constants used throughout the repository.
const (
	KB = 1 << 10
	MB = 1 << 20
	GB = 1 << 30
)

// WordBytes is the size of a search key and of a lookup result. The paper
// uses 4-byte keys throughout (Table 1: "Search Key Size: 4 bytes").
const WordBytes = 4

// Params is a complete architecture description: one node's memory
// hierarchy, its CPU cost constants, and the cluster interconnect.
type Params struct {
	// Name identifies the parameter set in reports.
	Name string

	// L1Size and L2Size are per-processor cache capacities in bytes.
	L1Size int
	L2Size int

	// L1Line and L2Line are cache-line sizes in bytes. On the Pentium
	// III both are 32 bytes; on the Pentium 4 the L2 line is 128 bytes
	// (Section 2.2), which raises the random-access degradation factor.
	L1Line int
	L2Line int

	// L1Assoc and L2Assoc are set associativities. Table 2 does not
	// report them; we use the Pentium III "Coppermine" values (4-way L1,
	// 8-way L2). The analytical model is associativity-blind, so these
	// only affect the trace-driven simulator's conflict misses.
	L1Assoc int
	L2Assoc int

	// B2MissPenaltyNs is the cost of loading one line from RAM into L2
	// (Table 2: 110 ns). B1MissPenaltyNs is the cost of loading one line
	// from L2 into L1 (Table 2: 16.25 ns).
	B2MissPenaltyNs float64
	B1MissPenaltyNs float64

	// TLBEntries is the number of data-TLB entries (Table 2: 64).
	// PageBytes is the virtual page size. TLBMissPenaltyNs is the cost
	// of a page-table walk; Appendix A excludes TLB misses from the
	// model ("our model gives a lower bound"), but the trace simulator
	// charges them so that Methods A and B sit above the model's lower
	// bound exactly as the paper's experiment does.
	TLBEntries       int
	PageBytes        int
	TLBMissPenaltyNs float64

	// CompCostNodeNs is the cost of traversing one level of the tree
	// while searching a key (Table 2: "Comp Cost Node", 30 ns for a node
	// the size of an L2 line). CompCostProbeNs is the cost of a single
	// binary-search probe (one compare + branch + address computation);
	// the paper folds this into the node cost, and a 32-byte node costs
	// about log2(8) = 3 probes, so CompCostProbeNs = CompCostNodeNs/3.
	CompCostNodeNs  float64
	CompCostProbeNs float64

	// DispatchCostNs is the master's per-key cost to choose a slave by
	// searching the delimiter array (Eq. 8, "Dispatch Cost"). The
	// delimiter array is tiny (tens of entries) and stays in L1, so this
	// is a few probes' worth of CPU work.
	DispatchCostNs float64

	// MemSeqBps is W1, the sequential (streaming) memory bandwidth in
	// bytes/s (Table 2: 647 MB/s). MemRandBps is the measured bandwidth
	// for dependent 4-byte random accesses (Section 2.1: 48 MB/s); the
	// simulator uses per-line penalties rather than this figure, but
	// cmd/calibrate reproduces the measurement and tests cross-check
	// that B2MissPenaltyNs is consistent with it.
	MemSeqBps  float64
	MemRandBps float64

	// NetBps is W2, the one-way network bandwidth in bytes/s (measured
	// Myrinet: 1.1 Gb/s = 138 MB/s). NetLatencyNs is the one-way message
	// latency (Myrinet: about 7 us). NetPerMsgOverheadNs is the per-
	// message CPU cost of MPI plus the OS protocol stack on one side;
	// Section 4.1 attributes the slaves' 50% idle time at 8 KB batches
	// to this overhead plus load imbalance, and we calibrate it to
	// reproduce that figure.
	NetBps              float64
	NetLatencyNs        float64
	NetPerMsgOverheadNs float64
}

// PentiumIIICluster returns Table 2: the measured parameters of the
// Pentium III Linux cluster used for every experiment in the paper.
func PentiumIIICluster() Params {
	return Params{
		Name:    "PentiumIII+Myrinet",
		L1Size:  16 * KB,
		L2Size:  512 * KB,
		L1Line:  32,
		L2Line:  32,
		L1Assoc: 4,
		L2Assoc: 8,

		B2MissPenaltyNs: 110,
		B1MissPenaltyNs: 16.25,

		TLBEntries: 64,
		PageBytes:  4 * KB,
		// A Pentium III page walk is 2-3 memory references, but page
		// directory entries are usually cached; 60 ns calibrates the
		// simulated Method A to the paper's measured 0.39 s.
		TLBMissPenaltyNs: 60,

		CompCostNodeNs: 30,
		// One binary-search probe (compare + halve) is a few cycles in
		// a tight loop — far cheaper than the 30 ns full-node scan.
		CompCostProbeNs: 5,
		// Dispatching compares a key against ~10 partition delimiters
		// that live permanently in L1: a handful of probes, cheaper
		// than a full 30 ns node traversal.
		DispatchCostNs: 10,

		MemSeqBps:  647 * MB,
		MemRandBps: 48 * MB,

		NetBps:       138 * MB,
		NetLatencyNs: 7_000,
		// Calibrated so that the simulated Method C matches the two
		// operational figures the paper reports (Section 4.1): slaves
		// ~50% idle at 8 KB batches and ~20% at 4 MB, with the 8 KB
		// point landing near the paper's ~0.42 s. 6.3 us per message
		// is a realistic MPICH-over-GM + kernel cost for 2005.
		NetPerMsgOverheadNs: 6_300,
	}
}

// Pentium4 returns the Pentium 4 variant sketched in Section 2.2: a
// 128-byte L2 line (so a random 4-byte access degrades effective
// bandwidth by a factor of 32) and a roughly 150 ns L2 miss penalty.
// Only the fields the paper discusses differ from the Pentium III set;
// the rest are carried over so the simulator stays runnable.
func Pentium4() Params {
	p := PentiumIIICluster()
	p.Name = "Pentium4+Myrinet"
	p.L1Size = 16 * KB
	p.L2Size = 1 * MB
	p.L1Line = 64
	p.L2Line = 128
	p.L2Assoc = 8
	p.B2MissPenaltyNs = 150
	p.B1MissPenaltyNs = 10
	p.CompCostNodeNs = 12
	p.CompCostProbeNs = 2
	p.DispatchCostNs = 4
	p.MemSeqBps = 2.1 * GB // DDR-266 figure from Section 2.2
	return p
}

// GigabitEthernet swaps the interconnect for the cluster's 100 us-class
// Gigabit Ethernet (Section 2.2): same nodes, much higher latency and
// per-message cost, 1 Gb/s bandwidth. Used by ablation benches to show
// the batch size at which transmission dominates latency (the paper: a
// 200 KB batch for GigE vs 10 KB for Myrinet).
func GigabitEthernet() Params {
	p := PentiumIIICluster()
	p.Name = "PentiumIII+GigE"
	p.NetBps = 125 * MB // 1 Gb/s
	p.NetLatencyNs = 100_000
	p.NetPerMsgOverheadNs = 60_000
	return p
}

// FutureScaling holds the technology growth assumptions of Section 4.2.
// Rates are per the paper: CPU speed doubles every 18 months, network
// bandwidth doubles every 3 years, per-processor memory bandwidth grows
// 20% per year, and memory latency does not change.
type FutureScaling struct {
	CPUDoublingYears     float64 // 1.5
	NetworkDoublingYears float64 // 3.0
	MemBWGrowthPerYear   float64 // 0.20
}

// PaperScaling returns the exact assumptions used for Figure 4.
func PaperScaling() FutureScaling {
	return FutureScaling{
		CPUDoublingYears:     1.5,
		NetworkDoublingYears: 3.0,
		MemBWGrowthPerYear:   0.20,
	}
}

// Future projects p forward by the given number of years under the
// scaling s, returning the parameter set the analytical model uses for
// Figure 4. CPU-bound costs shrink with CPU speed, network bandwidth and
// memory bandwidth grow at their own rates, and the RAM miss penalty
// (memory latency) stays fixed. The L1 miss penalty is an on-chip cost,
// so it scales with the CPU.
func Future(p Params, years float64, s FutureScaling) Params {
	if years < 0 {
		years = 0
	}
	cpu := math.Pow(2, years/s.CPUDoublingYears)
	net := math.Pow(2, years/s.NetworkDoublingYears)
	mem := math.Pow(1+s.MemBWGrowthPerYear, years)

	f := p
	f.Name = fmt.Sprintf("%s+%.1fy", p.Name, years)
	f.CompCostNodeNs = p.CompCostNodeNs / cpu
	f.CompCostProbeNs = p.CompCostProbeNs / cpu
	f.DispatchCostNs = p.DispatchCostNs / cpu
	f.B1MissPenaltyNs = p.B1MissPenaltyNs / cpu
	f.NetPerMsgOverheadNs = p.NetPerMsgOverheadNs / cpu
	f.NetBps = p.NetBps * net
	f.MemSeqBps = p.MemSeqBps * mem
	f.MemRandBps = p.MemRandBps * mem
	// Memory latency is assumed not to change (Section 4.2), so the
	// B2 (RAM) miss penalty and the TLB walk cost are left alone.
	return f
}

// Validate reports the first structural problem with p, or nil. The
// simulators call this once up front so that a malformed parameter set
// fails loudly instead of producing nonsense timings.
func (p Params) Validate() error {
	switch {
	case p.L1Size <= 0 || p.L2Size <= 0:
		return fmt.Errorf("arch %q: cache sizes must be positive (L1=%d, L2=%d)", p.Name, p.L1Size, p.L2Size)
	case p.L1Line <= 0 || p.L2Line <= 0:
		return fmt.Errorf("arch %q: line sizes must be positive (L1=%d, L2=%d)", p.Name, p.L1Line, p.L2Line)
	case p.L1Line&(p.L1Line-1) != 0 || p.L2Line&(p.L2Line-1) != 0:
		return fmt.Errorf("arch %q: line sizes must be powers of two (L1=%d, L2=%d)", p.Name, p.L1Line, p.L2Line)
	case p.L1Size%p.L1Line != 0 || p.L2Size%p.L2Line != 0:
		return fmt.Errorf("arch %q: cache size must be a multiple of line size", p.Name)
	case p.L1Assoc <= 0 || p.L2Assoc <= 0:
		return fmt.Errorf("arch %q: associativity must be positive", p.Name)
	case (p.L1Size/p.L1Line)%p.L1Assoc != 0:
		return fmt.Errorf("arch %q: L1 lines (%d) not divisible by associativity (%d)", p.Name, p.L1Size/p.L1Line, p.L1Assoc)
	case (p.L2Size/p.L2Line)%p.L2Assoc != 0:
		return fmt.Errorf("arch %q: L2 lines (%d) not divisible by associativity (%d)", p.Name, p.L2Size/p.L2Line, p.L2Assoc)
	case p.B2MissPenaltyNs <= 0 || p.B1MissPenaltyNs < 0:
		return fmt.Errorf("arch %q: miss penalties must be positive", p.Name)
	case p.TLBEntries < 0 || p.PageBytes <= 0:
		return fmt.Errorf("arch %q: bad TLB geometry", p.Name)
	case p.MemSeqBps <= 0 || p.NetBps <= 0:
		return fmt.Errorf("arch %q: bandwidths must be positive", p.Name)
	case p.NetLatencyNs < 0 || p.NetPerMsgOverheadNs < 0:
		return fmt.Errorf("arch %q: network costs must be non-negative", p.Name)
	case p.CompCostNodeNs < 0 || p.CompCostProbeNs < 0 || p.DispatchCostNs < 0:
		return fmt.Errorf("arch %q: CPU costs must be non-negative", p.Name)
	}
	return nil
}

// L2Lines returns the number of L2 cache lines, C2/B2 in the model's
// notation (16384 on the Pentium III).
func (p Params) L2Lines() int { return p.L2Size / p.L2Line }

// L1Lines returns the number of L1 cache lines.
func (p Params) L1Lines() int { return p.L1Size / p.L1Line }

// KeysPerLine returns how many 4-byte words fit in an L2 line: the n of
// the paper's n-ary tree (8 on the Pentium III).
func (p Params) KeysPerLine() int { return p.L2Line / WordBytes }

// SeqCostNs returns the streaming (full-bandwidth W1) cost of moving n
// bytes through memory: n/W1, in nanoseconds.
func (p Params) SeqCostNs(n int) float64 {
	return float64(n) / p.MemSeqBps * 1e9
}

// NetTransferNs returns the pure transmission time of an n-byte message:
// n/W2 in nanoseconds, excluding latency and per-message overhead.
func (p Params) NetTransferNs(n int) float64 {
	return float64(n) / p.NetBps * 1e9
}

// String implements fmt.Stringer with a compact one-line summary.
func (p Params) String() string {
	return fmt.Sprintf("%s{L1=%dKB/%dB L2=%dKB/%dB B2=%.0fns B1=%.2fns W1=%.0fMB/s W2=%.0fMB/s lat=%.1fus}",
		p.Name, p.L1Size/KB, p.L1Line, p.L2Size/KB, p.L2Line,
		p.B2MissPenaltyNs, p.B1MissPenaltyNs,
		p.MemSeqBps/MB, p.NetBps/MB, p.NetLatencyNs/1000)
}
