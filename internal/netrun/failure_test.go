package netrun

import (
	"encoding/binary"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/workload"
)

// fakeNode listens on loopback, answers the hello handshake as a
// single-partition node over keys, then hands the connection to behave.
// It lets failure tests script arbitrary node misbehavior.
func fakeNode(t *testing.T, keys []workload.Key, behave func(conn net.Conn, bc *bufferedConn)) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		bc := newBufferedConn(conn)
		f, err := bc.readFrame()
		if err != nil || f.Op != OpHello {
			return
		}
		ack := Frame{Op: OpHelloAck, ReqID: f.ReqID, Payload: []uint32{
			0, uint32(len(keys)), uint32(keys[0]), uint32(keys[len(keys)-1]),
		}}
		if bc.writeFrame(ack) != nil || bc.w.Flush() != nil {
			return
		}
		behave(conn, bc)
	}()
	return lis.Addr().String()
}

// wantFailedFast asserts the cluster is in the terminal failed state:
// Err is set and a fresh call fails immediately instead of touching the
// network.
func wantFailedFast(t *testing.T, c *Cluster) {
	t.Helper()
	if c.Err() == nil {
		t.Fatal("cluster Err() = nil after failure")
	}
	start := time.Now()
	if _, err := c.LookupBatch(workload.UniformQueries(10, 99)); err == nil {
		t.Fatal("lookup on failed cluster succeeded")
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("post-failure lookup took %v, want fail-fast", el)
	}
}

func TestHungNodeTimesOutInsteadOfBlocking(t *testing.T) {
	keys := workload.SortedKeys(1000, 1)
	// The node reads lookups forever and never replies — the pre-PR
	// client (no post-handshake deadline) blocked on this permanently.
	addr := fakeNode(t, keys, func(conn net.Conn, bc *bufferedConn) {
		for {
			if _, err := bc.readFrame(); err != nil {
				return
			}
		}
	})
	c, err := Dial([]string{addr}, keys, DialOptions{BatchKeys: 64, OpTimeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	start := time.Now()
	_, err = c.LookupBatch(workload.UniformQueries(100, 2))
	if err == nil {
		t.Fatal("lookup against hung node succeeded")
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("timeout took %v, want ~OpTimeout", el)
	}
	if !strings.Contains(err.Error(), "no reply within") {
		t.Fatalf("err = %v, want op-timeout error", err)
	}
	wantFailedFast(t, c)
}

func TestReqIDMismatchFailsCluster(t *testing.T) {
	keys := workload.SortedKeys(1000, 2)
	// The node replies with a reqID the client never issued.
	addr := fakeNode(t, keys, func(conn net.Conn, bc *bufferedConn) {
		f, err := bc.readFrame()
		if err != nil {
			return
		}
		_ = bc.writeFrame(Frame{Op: OpRanks, ReqID: f.ReqID + 1000, Payload: make([]uint32, len(f.Payload))})
		_ = bc.w.Flush()
	})
	c, err := Dial([]string{addr}, keys, DialOptions{BatchKeys: 64, OpTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.LookupBatch(workload.UniformQueries(50, 3))
	if err == nil || !strings.Contains(err.Error(), "unknown reqID") {
		t.Fatalf("err = %v, want unknown reqID", err)
	}
	wantFailedFast(t, c)
}

func TestTruncatedFrameFailsCluster(t *testing.T) {
	keys := workload.SortedKeys(1000, 3)
	// The node starts a well-formed reply frame but dies mid-payload.
	addr := fakeNode(t, keys, func(conn net.Conn, bc *bufferedConn) {
		f, err := bc.readFrame()
		if err != nil {
			return
		}
		head := make([]byte, 13)
		binary.LittleEndian.PutUint32(head[0:4], Magic)
		head[4] = OpRanks
		binary.LittleEndian.PutUint32(head[5:9], f.ReqID)
		binary.LittleEndian.PutUint32(head[9:13], uint32(len(f.Payload)))
		conn.Write(head)
		conn.Write([]byte{1, 2}) // half a rank, then hang up
	})
	c, err := Dial([]string{addr}, keys, DialOptions{BatchKeys: 64, OpTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.LookupBatch(workload.UniformQueries(50, 4)); err == nil {
		t.Fatal("lookup over truncated reply succeeded")
	}
	wantFailedFast(t, c)
}

func TestRankCountMismatchFailsCluster(t *testing.T) {
	keys := workload.SortedKeys(1000, 4)
	// Correct reqID, wrong number of ranks.
	addr := fakeNode(t, keys, func(conn net.Conn, bc *bufferedConn) {
		f, err := bc.readFrame()
		if err != nil {
			return
		}
		_ = bc.writeFrame(Frame{Op: OpRanks, ReqID: f.ReqID, Payload: make([]uint32, len(f.Payload)+3)})
		_ = bc.w.Flush()
	})
	c, err := Dial([]string{addr}, keys, DialOptions{BatchKeys: 64, OpTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.LookupBatch(workload.UniformQueries(50, 5))
	if err == nil || !strings.Contains(err.Error(), "ranks for") {
		t.Fatalf("err = %v, want rank-count mismatch", err)
	}
	wantFailedFast(t, c)
}

func TestNodeDeathMidBatchFailsAllCallers(t *testing.T) {
	keys := workload.SortedKeys(60000, 5)
	c, shutdown := startCluster(t, keys, 4, 256)
	defer shutdown()

	// Warm up, then kill one node's server-side connections while
	// several callers stream batches through the cluster.
	if _, err := c.LookupBatch(workload.UniformQueries(1000, 6)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			queries := workload.UniformQueries(50000, uint64(g))
			for round := 0; round < 100; round++ {
				if _, err := c.LookupBatch(queries); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	time.Sleep(20 * time.Millisecond)
	testNodes(t, c)[0].conn.Close() // simulate the node dying mid-batch

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("callers hung after node death")
	}
	for g, err := range errs {
		if err == nil {
			t.Fatalf("caller %d finished 100 rounds without seeing the failure", g)
		}
		// The failure must surface as the connection error, not as
		// reqID-mismatch noise from stale frames.
		if strings.Contains(err.Error(), "unknown reqID") {
			t.Fatalf("caller %d got reqID noise: %v", g, err)
		}
	}
	wantFailedFast(t, c)
}

// testNodes exposes the current epoch's live member connections to
// tests, flattened in partition order (one per partition at R=1).
func testNodes(t *testing.T, c *Cluster) []*clusterNode {
	t.Helper()
	ep := c.ep.Load()
	if ep == nil {
		t.Fatal("cluster has no live epoch")
	}
	var out []*clusterNode
	for _, g := range ep.groups {
		g.mu.Lock()
		out = append(out, g.members...)
		g.mu.Unlock()
	}
	return out
}

func TestRedialRecoversAfterFailure(t *testing.T) {
	keys := workload.SortedKeys(20000, 7)
	c, shutdown := startCluster(t, keys, 3, 512)
	defer shutdown()

	if err := c.Redial(); err == nil {
		t.Fatal("Redial on healthy cluster succeeded")
	}

	// Fail the epoch by severing a client-side connection.
	testNodes(t, c)[1].conn.Close()
	queries := workload.UniformQueries(5000, 8)
	deadline := time.Now().Add(5 * time.Second)
	for c.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("cluster never noticed the severed connection")
		}
		c.LookupBatch(queries)
	}
	if _, err := c.LookupBatch(queries); err == nil {
		t.Fatal("lookup succeeded on failed cluster")
	}

	// Redial against the still-running nodes restores service.
	if err := c.Redial(); err != nil {
		t.Fatalf("Redial: %v", err)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("Err after Redial = %v", err)
	}
	ranks, err := c.LookupBatch(queries)
	if err != nil {
		t.Fatalf("lookup after Redial: %v", err)
	}
	for i, q := range queries {
		if want := workload.ReferenceRank(keys, q); ranks[i] != want {
			t.Fatalf("rank[%d] = %d after Redial, want %d", i, ranks[i], want)
		}
	}
}

func TestRedialAfterCloseRefused(t *testing.T) {
	keys := workload.SortedKeys(500, 9)
	c, shutdown := startCluster(t, keys, 2, 64)
	shutdown()
	if err := c.Redial(); !errors.Is(err, ErrClusterClosed) {
		t.Fatalf("Redial after Close = %v, want ErrClusterClosed", err)
	}
	if _, err := c.LookupBatch(workload.UniformQueries(5, 1)); !errors.Is(err, ErrClusterClosed) {
		t.Fatalf("lookup after Close = %v, want ErrClusterClosed", err)
	}
}

// TestConcurrentTCPCallers is the -race exercise: several goroutines
// multiplex batches over one shared cluster and every rank must match
// the reference.
func TestConcurrentTCPCallers(t *testing.T) {
	keys := workload.SortedKeys(30000, 10)
	c, shutdown := startCluster(t, keys, 4, 512)
	defer shutdown()

	const callers = 6
	var wg sync.WaitGroup
	errc := make(chan error, callers)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			queries := workload.UniformQueries(4000, uint64(100+g))
			out := make([]int, len(queries))
			for round := 0; round < 8; round++ {
				if err := c.LookupBatchInto(queries, out); err != nil {
					errc <- err
					return
				}
				for i, q := range queries {
					if want := workload.ReferenceRank(keys, q); out[i] != want {
						errc <- errors.New("wrong rank under concurrency")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestConcurrentCallersSurviveClose pounds Close against in-flight
// callers: every call must return (rank correctness no longer applies
// once the error surfaces), and nothing may hang or race.
func TestConcurrentCallersSurviveClose(t *testing.T) {
	keys := workload.SortedKeys(20000, 11)
	c, shutdown := startCluster(t, keys, 3, 256)
	defer shutdown()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			queries := workload.UniformQueries(20000, uint64(g))
			for round := 0; round < 50; round++ {
				if _, err := c.LookupBatch(queries); err != nil {
					return
				}
			}
		}(g)
	}
	time.Sleep(30 * time.Millisecond)
	c.Close()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("callers hung across Close")
	}
}
