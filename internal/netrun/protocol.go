// Package netrun runs the distributed in-cache index over real sockets:
// slave nodes serve index partitions over TCP, and a master-side client
// batches queries to them — the paper's MPI deployment translated to a
// stdlib-only wire protocol. The in-process runtime (internal/core)
// remains the fast path for a single host; netrun is for actually
// spreading the partitions across machines so that each node's share
// fits in its cache.
//
// Wire protocol (little-endian, length-delimited frames):
//
//	frame := magic(u32) op(u8) reqID(u32) count(u32) payload(count*u32)
//
// A lookup request's payload is count keys; the response's payload is
// count ranks (as uint32), in request order. A hello exchange carries
// the node's partition metadata so the client can verify its routing
// table against what the node actually serves.
//
// reqID multiplexes concurrent requests over one connection: the master
// pipelines any number of OpLookup frames and the reply carries the
// request's id back, so a per-connection read loop can demultiplex
// OpRanks frames to the issuing callers in any order. Nodes today reply
// in request order; the client does not rely on it.
package netrun

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Magic identifies protocol frames; a mismatch means the peer is not a
// netrun node (or the stream desynchronized) and the connection dies.
const Magic uint32 = 0xDC1D_2005

// Op codes.
const (
	// OpHello is sent by the client on connect; the node answers with
	// OpHelloAck whose payload is [rankBase, keyCount, loKey, hiKey].
	OpHello uint8 = 1
	// OpHelloAck is the node's hello response.
	OpHelloAck uint8 = 2
	// OpLookup carries keys; the node answers OpRanks with ranks.
	OpLookup uint8 = 3
	// OpRanks is the node's lookup response.
	OpRanks uint8 = 4
	// OpErr signals a node-side failure; payload[0] is an errno-like
	// code, and the connection should be abandoned.
	OpErr uint8 = 5
)

// MaxFrameWords bounds a frame payload (16M words = 64 MB) so a corrupt
// length cannot force an absurd allocation.
const MaxFrameWords = 16 << 20

// Frame is one decoded protocol frame.
type Frame struct {
	Op      uint8
	ReqID   uint32
	Payload []uint32
}

// WriteFrame encodes f to w. The payload aliasing is safe: the data is
// fully written before return. Allocates a scratch buffer per call; the
// hot paths use a reusable frameWriter instead.
func WriteFrame(w io.Writer, f Frame) error {
	var fw frameWriter
	return fw.writeTo(w, f)
}

// ReadFrame decodes one frame from r, allocating a fresh payload; the
// hot paths use a reusable frameReader instead.
func ReadFrame(r io.Reader) (Frame, error) {
	var fr frameReader
	f, err := fr.readFrom(r)
	if err != nil {
		return Frame{}, err
	}
	// Detach the payload from the reader's scratch.
	f.Payload = append([]uint32(nil), f.Payload...)
	return f, nil
}

// frameWriter encodes frames, reusing one scratch buffer across calls so
// the steady state allocates nothing. Not safe for concurrent use.
type frameWriter struct {
	buf []byte
}

// encode serializes f into the writer's scratch buffer and returns it
// (valid until the next encode). Splitting encoding from the socket
// write lets a caller stop referencing f.Payload before any blocking
// I/O starts.
func (fw *frameWriter) encode(f Frame) ([]byte, error) {
	if len(f.Payload) > MaxFrameWords {
		return nil, fmt.Errorf("netrun: frame payload %d words exceeds limit", len(f.Payload))
	}
	need := 13 + 4*len(f.Payload)
	if cap(fw.buf) < need {
		fw.buf = make([]byte, need)
	}
	buf := fw.buf[:need]
	binary.LittleEndian.PutUint32(buf[0:4], Magic)
	buf[4] = f.Op
	binary.LittleEndian.PutUint32(buf[5:9], f.ReqID)
	binary.LittleEndian.PutUint32(buf[9:13], uint32(len(f.Payload)))
	for i, v := range f.Payload {
		binary.LittleEndian.PutUint32(buf[13+4*i:], v)
	}
	return buf, nil
}

func (fw *frameWriter) writeTo(w io.Writer, f Frame) error {
	buf, err := fw.encode(f)
	if err != nil {
		return err
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("netrun: write frame: %w", err)
	}
	return nil
}

// frameReader decodes frames, reusing its payload buffers: a decoded
// frame's payload is valid only until the next read. Not safe for
// concurrent use.
type frameReader struct {
	head    [13]byte
	buf     []byte
	payload []uint32
}

func (fr *frameReader) readFrom(r io.Reader) (Frame, error) {
	if _, err := io.ReadFull(r, fr.head[:]); err != nil {
		return Frame{}, err
	}
	if got := binary.LittleEndian.Uint32(fr.head[0:4]); got != Magic {
		return Frame{}, fmt.Errorf("netrun: bad magic %#x", got)
	}
	f := Frame{
		Op:    fr.head[4],
		ReqID: binary.LittleEndian.Uint32(fr.head[5:9]),
	}
	// Bounds-check as uint32 before converting: on 32-bit platforms a
	// corrupt length word >= 2^31 would wrap negative as int and slip
	// past the limit check.
	count32 := binary.LittleEndian.Uint32(fr.head[9:13])
	if count32 > MaxFrameWords {
		return Frame{}, fmt.Errorf("netrun: frame payload %d words exceeds limit", count32)
	}
	count := int(count32)
	if count > 0 {
		if cap(fr.buf) < 4*count {
			fr.buf = make([]byte, 4*count)
		}
		buf := fr.buf[:4*count]
		if _, err := io.ReadFull(r, buf); err != nil {
			return Frame{}, fmt.Errorf("netrun: read payload: %w", err)
		}
		if cap(fr.payload) < count {
			fr.payload = make([]uint32, count)
		}
		f.Payload = fr.payload[:count]
		for i := range f.Payload {
			f.Payload[i] = binary.LittleEndian.Uint32(buf[4*i:])
		}
	}
	return f, nil
}

// bufferedConn pairs buffered reader/writer over one stream with
// reusable frame codecs; Flush after writing a batch of frames.
type bufferedConn struct {
	r  *bufio.Reader
	w  *bufio.Writer
	fr frameReader
	fw frameWriter
}

func newBufferedConn(rw io.ReadWriter) *bufferedConn {
	return &bufferedConn{r: bufio.NewReaderSize(rw, 1<<16), w: bufio.NewWriterSize(rw, 1<<16)}
}

func (bc *bufferedConn) writeFrame(f Frame) error { return bc.fw.writeTo(bc.w, f) }
func (bc *bufferedConn) readFrame() (Frame, error) {
	return bc.fr.readFrom(bc.r)
}
