// Package netrun runs the distributed in-cache index over real sockets:
// slave nodes serve index partitions over TCP, and a master-side client
// batches queries to them — the paper's MPI deployment translated to a
// stdlib-only wire protocol. The in-process runtime (internal/core)
// remains the fast path for a single host; netrun is for actually
// spreading the partitions across machines so that each node's share
// fits in its cache.
//
// Wire protocol (little-endian, length-delimited frames):
//
//	frame := magic(u32) op(u8) reqID(u32) count(u32) payload
//
// For the v1 ops (OpHello..OpErr) the payload is count 32-bit words: a
// lookup request's payload is count keys and the response's payload is
// count ranks (as uint32), in request order. For the v2 sorted-run ops
// (OpLookupSorted, OpRanksDelta) count is a byte length and the payload
// is a delta+varint-coded ascending run: varint(elements), then the
// first value and successive deltas as varints (see delta.go). Sorted
// batches make both keys and ranks monotone, which is what makes the
// deltas small; a sorted uniform workload's frames shrink roughly 4x on
// the rank direction and 25-45% on the key direction versus v1.
//
// Protocol v3 adds online updates. OpInsert carries count keys (a word
// payload, any order) to be added to the node's partition; the node
// buffers them in its delta layer and answers OpInsertAck whose single
// payload word echoes the applied count. OpSnapshot (no payload) asks a
// node for its full current key set, answered by OpSnapshotData as a
// delta+varint byte payload (the set is sorted, so the same codec the
// sorted lookups use applies); OpLoad pushes such a payload at a node,
// atomically replacing its key set, and is acknowledged by OpLoadAck
// with the loaded count. Snapshot/load exist for replica catch-up: a
// replica rejoining a group that has absorbed writes is first loaded
// from a healthy sibling's snapshot, then readmitted.
//
// Protocol v4 adds durable-node catch-up. A node backed by a
// write-ahead log carries a (generation, chain) position: the
// generation counts every key it logged since its baseline and the
// chain is an order-sensitive fold over them, so two replicas hold the
// same insert history iff their positions match. OpSnapshotSince asks a
// sibling for the insert tail after a rejoiner's position (payload:
// four words, generation then chain, low word first); the sibling
// answers OpSnapshotDelta whose payload is [kind, gen(2 words),
// chain(2 words), keys...] — kind 0 is a delta (keys in append order),
// kind 1 a full snapshot (sorted keys), which the sibling falls back to
// when it compacted past the requested generation, the chains diverge,
// or the delta cannot fit a frame. OpLoadAt pushes the same payload
// shape at the rejoiner: a delta is verified against the advertised
// position before anything is applied (a mismatch is refused with
// OpErr — the histories diverged and only a full snapshot reconciles),
// a full load replaces the node's state at the carried position. Both
// are acknowledged by OpLoadAck counting the applied keys.
//
// Protocol v5 generalizes the query surface beyond ranks: four
// op-tagged read frames, all served from the node's update layer so
// they see delta-buffered inserts coherently with the frozen base.
// OpCountRange carries pairs of inclusive range endpoints (word
// payload: lo1,hi1,lo2,hi2,...) and is answered by OpCounts, each
// range's local key count as a varint run (counts are not monotone, so
// the plain-varint codec applies, not the delta codec). OpScanRange
// carries [lo, hi, limit] (limit 0 = unlimited) and OpTopK carries
// [k]; both are answered by OpKeysDelta, an ascending delta+varint key
// run (a top-k reply is ascending on the wire — the client reads it
// backward). OpMultiGet carries an ascending delta-coded key run and
// is answered by OpCounts with each key's multiplicity. Because every
// partition holds a disjoint key sub-range, the client composes exact
// global answers from local ones: counts sum, scans concatenate in
// partition order, top-k reads partitions from the highest down, and a
// multiplicity never crosses a partition boundary.
//
// Protocol v6 adds live membership — the operations plane's reshape
// verbs, each acknowledged by OpMembAck whose single payload word is
// the node's live key count after the operation. OpAddReplica assigns
// a partition identity to an unassigned node (one started with the
// full key file but no partition, dcnode -join): its two payload words
// are [rankBase, baseN], naming the slice [rankBase, rankBase+baseN)
// of the node's sorted key universe; a node that already holds an
// identity accepts the op only when it matches (an idempotent
// confirm). OpDrainReplica (no payload) quiesces a node before the
// client detaches it from its replica group. OpSplitPartition carries
// six words [newRankBase, newBaseN, loKey, hiKey, splitKey, keepHi]:
// the node filters its live key set at splitKey (keepHi 0 keeps keys
// <= splitKey, 1 keeps the rest), atomically swaps its advertised
// identity to the named half, and keeps serving — the client splits a
// hot partition by sending each current replica its half, then
// re-dialing the epoch against the doubled routing table. All three
// flow only on v6-negotiated connections while the client holds its
// membership pause (no reads or writes in flight), which is what makes
// the node-side identity swap safe.
//
// Version negotiation rides the hello exchange, so mixed-version
// clusters interoperate frame-for-frame:
//
//   - The client sends OpHello with its highest supported version in
//     the reqID field. A v1 client leaves it zero.
//   - A v1 node replies OpHelloAck with the 4-word payload
//     [rankBase, keyCount, loKey, hiKey] — its only form.
//   - A newer node replies the same 4 words to a v1 client, and appends
//     a 5th word, min(clientVersion, ProtoVersion), to a v2+ client.
//   - The client treats a 4-word ack as version 1; a 5-word ack carries
//     the negotiated version. Versioning is per connection, so a
//     replica group may mix versions and failover re-encodes for the
//     new connection.
//   - On a v3-negotiated connection an updatable node appends a 6th
//     word: its LIVE key count. live minus baseline is the insert
//     count the node has absorbed, which a freshly dialing client
//     seeds its rank-base correction counters from — ranks stay
//     globally consistent against nodes a previous client wrote to.
//   - On a v4-negotiated connection a DURABLE node appends words 7-8:
//     its chain (low word first). An 8-word ack therefore identifies a
//     durable peer (generation = live minus baseline), and the client
//     prefers the delta catch-up on rejoin when both ends advertise
//     one; a 6-word v4 ack is an updatable-but-not-durable node, served
//     by the v3 full-snapshot flow.
//
// The full negotiation table (rows: node's highest version; columns:
// client's; cells: negotiated version = the ops that may flow):
//
//	          client v1   client v2   client v3   client v4   client v5   client v6
//	node v1       1           1           1           1           1           1      lookups only
//	node v2       1           2           2           2           2           2      + delta-coded sorted runs
//	node v3       1           2           3           3           3           3      + inserts, snapshot/load
//	node v4       1           2           3           4           4           4      + positioned catch-up
//	node v5       1           2           3           4           5           5      + range/scan/top-k/multiget
//	node v6       1           2           3           4           5           6      + live membership
//
// Op x minimum version, for every request op a client may send:
//
//	v1  OpLookup
//	v2  OpLookupSorted
//	v3  OpInsert, OpSnapshot, OpLoad
//	v4  OpSnapshotSince, OpLoadAt
//	v5  OpCountRange, OpScanRange, OpTopK, OpMultiGet
//	v6  OpAddReplica, OpDrainReplica, OpSplitPartition
//
// A v5 client never sends a v5 op on a connection that negotiated less
// (dispatch and failover both re-check the member's version), so
// pre-v5 replicas keep serving ranks — they are excluded from the new
// ops only, never from lookups.
//
// Writes only ever flow on v3-negotiated connections: v1/v2 nodes
// simply never receive OpInsert (the client skips them during write
// fan-out), and once a client has written to a partition it stops
// routing lookups to that partition's pre-v3 replicas, because they can
// no longer prove they hold the full key set.
//
// A hello exchange also carries the node's partition metadata so the
// client can verify its routing table against what the node actually
// serves. The advertised identity is the node's *baseline* (its state
// at construction): online inserts deliberately do not change it, so a
// rejoining replica still verifies as the partition it was launched as.
//
// reqID multiplexes concurrent requests over one connection: the master
// pipelines any number of request frames and the reply carries the
// request's id back, so a per-connection read loop can demultiplex
// reply frames to the issuing callers in any order. Nodes today reply
// in request order; the client does not rely on it.
package netrun

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Magic identifies protocol frames; a mismatch means the peer is not a
// netrun node (or the stream desynchronized) and the connection dies.
const Magic uint32 = 0xDC1D_2005

// Protocol versions. ProtoVersion is the highest this build speaks;
// the hello exchange negotiates min(client, node) per connection.
const (
	ProtoV1 = 1
	ProtoV2 = 2
	ProtoV3 = 3
	ProtoV4 = 4
	ProtoV5 = 5
	ProtoV6 = 6

	ProtoVersion = ProtoV6
)

// Op codes.
const (
	// OpHello is sent by the client on connect, with the client's
	// highest protocol version in the reqID field (0 and 1 both mean
	// v1); the node answers with OpHelloAck whose payload is
	// [rankBase, keyCount, loKey, hiKey] plus, for a v2 client, a 5th
	// word carrying the negotiated version.
	OpHello uint8 = 1
	// OpHelloAck is the node's hello response.
	OpHelloAck uint8 = 2
	// OpLookup carries keys; the node answers OpRanks with ranks.
	OpLookup uint8 = 3
	// OpRanks is the node's lookup response.
	OpRanks uint8 = 4
	// OpErr signals a node-side failure; payload[0] is an errno-like
	// code, and the connection should be abandoned.
	OpErr uint8 = 5
	// OpLookupSorted (v2) carries an ascending key run, delta+varint
	// coded (byte payload); the node answers OpRanksDelta.
	OpLookupSorted uint8 = 6
	// OpRanksDelta (v2) is the sorted lookup's response: the
	// nondecreasing ranks, delta+varint coded (byte payload).
	OpRanksDelta uint8 = 7
	// OpInsert (v3) carries count keys (word payload, any order) to add
	// to the node's partition; the node answers OpInsertAck.
	OpInsert uint8 = 8
	// OpInsertAck (v3) acknowledges an insert; payload[0] is the
	// applied key count.
	OpInsertAck uint8 = 9
	// OpSnapshot (v3, no payload) requests the node's full current key
	// set; the node answers OpSnapshotData.
	OpSnapshot uint8 = 10
	// OpSnapshotData (v3) is the snapshot response: the sorted key set,
	// delta+varint coded (byte payload).
	OpSnapshotData uint8 = 11
	// OpLoad (v3) pushes a full sorted key set (delta+varint byte
	// payload) that atomically replaces the node's current set — the
	// replica catch-up path. The node answers OpLoadAck.
	OpLoad uint8 = 12
	// OpLoadAck (v3) acknowledges a load; payload[0] is the loaded key
	// count.
	OpLoadAck uint8 = 13
	// OpSnapshotSince (v4) asks a durable node for the insert tail after
	// a position: payload is 4 words, generation then chain, low word
	// first. Answered by OpSnapshotDelta.
	OpSnapshotSince uint8 = 14
	// OpSnapshotDelta (v4) is the positioned-catch-up payload: [kind,
	// gen(2), chain(2), keys...]. kind 0 = delta tail in append order,
	// kind 1 = full sorted snapshot; gen/chain are the position the
	// payload advances its consumer to.
	OpSnapshotDelta uint8 = 15
	// OpLoadAt (v4) pushes an OpSnapshotDelta-shaped payload at a
	// durable node; acknowledged by OpLoadAck with the applied key
	// count, or refused with OpErr when a delta does not reproduce the
	// carried position (divergent histories).
	OpLoadAt uint8 = 16
	// OpCountRange (v5) carries inclusive range endpoint pairs (word
	// payload: lo1,hi1,lo2,hi2,...); the node answers OpCounts with
	// each pair's local key count.
	OpCountRange uint8 = 17
	// OpScanRange (v5) carries [lo, hi, limit] (word payload; limit 0
	// means unlimited); the node answers OpKeysDelta with its keys in
	// [lo, hi], ascending, at most limit of them.
	OpScanRange uint8 = 18
	// OpTopK (v5) carries [k] (word payload); the node answers
	// OpKeysDelta with its k largest keys — ascending on the wire, the
	// client reads the run backward.
	OpTopK uint8 = 19
	// OpMultiGet (v5) carries an ascending key run, delta+varint coded
	// (byte payload); the node answers OpCounts with each key's
	// multiplicity.
	OpMultiGet uint8 = 20
	// OpKeysDelta (v5) answers OpScanRange and OpTopK: an ascending key
	// run, delta+varint coded (byte payload).
	OpKeysDelta uint8 = 21
	// OpCounts (v5) answers OpCountRange and OpMultiGet: one count per
	// request element as a plain varint run (byte payload; counts are
	// not monotone, so no delta coding — see appendVarRun).
	OpCounts uint8 = 22
	// OpAddReplica (v6) assigns a partition identity to a joinable
	// node: payload [rankBase, baseN] names the slice of the node's key
	// universe it is to serve. A node already holding an identity
	// accepts only a matching assignment. Answered by OpMembAck.
	OpAddReplica uint8 = 23
	// OpDrainReplica (v6, no payload) quiesces a node ahead of the
	// client detaching it from its replica group. Answered by
	// OpMembAck.
	OpDrainReplica uint8 = 24
	// OpSplitPartition (v6) retargets a node at one half of its split
	// partition: payload [newRankBase, newBaseN, loKey, hiKey,
	// splitKey, keepHi]. The node filters its live keys at splitKey
	// (keepHi selects the side), swaps its identity to the named half,
	// and answers OpMembAck.
	OpSplitPartition uint8 = 25
	// OpMembAck (v6) acknowledges a membership op; payload[0] is the
	// node's live key count after the operation.
	OpMembAck uint8 = 26
)

// OpSnapshotDelta/OpLoadAt payload layout: a 5-word header — kind,
// generation (2 words, low first), chain (2 words, low first) — then
// the keys.
const (
	snapDeltaHeader = 5
	snapKindDelta   = 0 // keys are the insert tail, append order
	snapKindFull    = 1 // keys are the full sorted set
)

// byteOp reports whether op's count field is a byte length (varint
// payload) rather than a 32-bit word count.
func byteOp(op uint8) bool {
	switch op {
	case OpLookupSorted, OpRanksDelta, OpSnapshotData, OpLoad,
		OpMultiGet, OpKeysDelta, OpCounts:
		return true
	}
	return false
}

// opMinVersion is the op×version table: the protocol version that
// introduced each op, requests and replies alike — the executable form
// of the "Op x minimum version" matrix in the package comment. The
// node's serve loop refuses any request op newer than what the
// connection negotiated, and the framepair analyzer checks that every
// Op constant has an entry here plus live encode and decode sites, so
// a new op cannot ship half-wired.
//
//dc:optable
var opMinVersion = map[uint8]uint32{
	OpHello:         ProtoV1,
	OpHelloAck:      ProtoV1,
	OpLookup:        ProtoV1,
	OpRanks:         ProtoV1,
	OpErr:           ProtoV1,
	OpLookupSorted:  ProtoV2,
	OpRanksDelta:    ProtoV2,
	OpInsert:        ProtoV3,
	OpInsertAck:     ProtoV3,
	OpSnapshot:      ProtoV3,
	OpSnapshotData:  ProtoV3,
	OpLoad:          ProtoV3,
	OpLoadAck:       ProtoV3,
	OpSnapshotSince: ProtoV4,
	OpSnapshotDelta: ProtoV4,
	OpLoadAt:        ProtoV4,
	OpCountRange:    ProtoV5,
	OpScanRange:     ProtoV5,
	OpTopK:          ProtoV5,
	OpMultiGet:      ProtoV5,
	OpKeysDelta:     ProtoV5,
	OpCounts:        ProtoV5,

	OpAddReplica:     ProtoV6,
	OpDrainReplica:   ProtoV6,
	OpSplitPartition: ProtoV6,
	OpMembAck:        ProtoV6,
}

// OpMinVersion returns the protocol version that introduced op, or 0
// for an op this build does not know.
func OpMinVersion(op uint8) uint32 { return opMinVersion[op] }

// MaxFrameWords bounds a v1 frame payload (16M words = 64 MB) so a
// corrupt length cannot force an absurd allocation. MaxFrameBytes is
// the byte-payload equivalent for v2 frames: the same 16M elements at
// the 5-byte varint worst case.
const (
	MaxFrameWords = 16 << 20
	MaxFrameBytes = 5 * MaxFrameWords
)

// Frame is one decoded protocol frame: word ops carry Payload, byte
// ops (see byteOp) carry Raw.
type Frame struct {
	Op      uint8
	ReqID   uint32
	Payload []uint32
	Raw     []byte
}

// WriteFrame encodes f to w. The payload aliasing is safe: the data is
// fully written before return. Allocates a scratch buffer per call; the
// hot paths use a reusable frameWriter instead.
func WriteFrame(w io.Writer, f Frame) error {
	var fw frameWriter
	return fw.writeTo(w, f)
}

// ReadFrame decodes one frame from r, allocating a fresh payload; the
// hot paths use a reusable frameReader instead.
func ReadFrame(r io.Reader) (Frame, error) {
	var fr frameReader
	f, err := fr.readFrom(r)
	if err != nil {
		return Frame{}, err
	}
	// Detach the payload from the reader's scratch.
	f.Payload = append([]uint32(nil), f.Payload...)
	f.Raw = append([]byte(nil), f.Raw...)
	return f, nil
}

// frameWriter encodes frames, reusing one scratch buffer across calls so
// the steady state allocates nothing. Not safe for concurrent use.
type frameWriter struct {
	buf []byte
}

// encode serializes f into the writer's scratch buffer and returns it
// (valid until the next encode). Splitting encoding from the socket
// write lets a caller stop referencing f.Payload before any blocking
// I/O starts. Byte ops (v2) take their payload from f.Raw.
//
//dc:noalloc
func (fw *frameWriter) encode(f Frame) ([]byte, error) {
	if byteOp(f.Op) {
		if len(f.Raw) > MaxFrameBytes {
			return nil, fmt.Errorf("netrun: frame payload %d bytes exceeds limit", len(f.Raw))
		}
		need := 13 + len(f.Raw)
		if cap(fw.buf) < need {
			fw.buf = make([]byte, need)
		}
		buf := fw.buf[:need]
		fw.putHeader(buf, f.Op, f.ReqID, uint32(len(f.Raw)))
		copy(buf[13:], f.Raw)
		return buf, nil
	}
	if len(f.Payload) > MaxFrameWords {
		return nil, fmt.Errorf("netrun: frame payload %d words exceeds limit", len(f.Payload))
	}
	need := 13 + 4*len(f.Payload)
	if cap(fw.buf) < need {
		fw.buf = make([]byte, need)
	}
	buf := fw.buf[:need]
	fw.putHeader(buf, f.Op, f.ReqID, uint32(len(f.Payload)))
	for i, v := range f.Payload {
		binary.LittleEndian.PutUint32(buf[13+4*i:], v)
	}
	return buf, nil
}

//dc:noalloc
func (fw *frameWriter) putHeader(buf []byte, op uint8, reqID, count uint32) {
	binary.LittleEndian.PutUint32(buf[0:4], Magic)
	buf[4] = op
	binary.LittleEndian.PutUint32(buf[5:9], reqID)
	binary.LittleEndian.PutUint32(buf[9:13], count)
}

// encodeDeltaOp serializes a delta-coded frame (OpLookupSorted, OpLoad,
// OpSnapshotData) directly from the ascending run into the writer's
// scratch (header + delta+varint payload, byte count backpatched),
// avoiding a staging buffer on the send path.
//
//dc:noalloc
func (fw *frameWriter) encodeDeltaOp(op uint8, reqID uint32, vals []uint32) ([]byte, error) {
	if len(vals) > MaxFrameWords {
		return nil, fmt.Errorf("netrun: frame payload %d values exceeds limit", len(vals))
	}
	if cap(fw.buf) < 13 {
		fw.buf = make([]byte, 0, 13+5+5*len(vals))
	}
	buf := fw.buf[:13]
	buf, err := appendDeltaRun(buf, vals)
	if err != nil {
		return nil, err
	}
	fw.buf = buf[:0]
	fw.putHeader(buf, op, reqID, uint32(len(buf)-13))
	return buf, nil
}

func (fw *frameWriter) writeTo(w io.Writer, f Frame) error {
	buf, err := fw.encode(f)
	if err != nil {
		return err
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("netrun: write frame: %w", err)
	}
	return nil
}

// frameReader decodes frames, reusing its payload buffers: a decoded
// frame's payload is valid only until the next read. Not safe for
// concurrent use.
type frameReader struct {
	head    [13]byte
	buf     []byte
	payload []uint32
}

//dc:noalloc
func (fr *frameReader) readFrom(r io.Reader) (Frame, error) {
	if _, err := io.ReadFull(r, fr.head[:]); err != nil {
		return Frame{}, err
	}
	if got := binary.LittleEndian.Uint32(fr.head[0:4]); got != Magic {
		return Frame{}, fmt.Errorf("netrun: bad magic %#x", got)
	}
	f := Frame{
		Op:    fr.head[4],
		ReqID: binary.LittleEndian.Uint32(fr.head[5:9]),
	}
	// Bounds-check as uint32 before converting: on 32-bit platforms a
	// corrupt length word >= 2^31 would wrap negative as int and slip
	// past the limit check.
	count32 := binary.LittleEndian.Uint32(fr.head[9:13])
	if byteOp(f.Op) {
		// v2 byte payload: count is a byte length; the delta decoder
		// applies its own element-count-vs-bytes guard on top.
		if count32 > MaxFrameBytes {
			return Frame{}, fmt.Errorf("netrun: frame payload %d bytes exceeds limit", count32)
		}
		n := int(count32)
		if n > 0 {
			if cap(fr.buf) < n {
				fr.buf = make([]byte, n)
			}
			f.Raw = fr.buf[:n]
			if _, err := io.ReadFull(r, f.Raw); err != nil {
				return Frame{}, fmt.Errorf("netrun: read payload: %w", err)
			}
		}
		return f, nil
	}
	if count32 > MaxFrameWords {
		return Frame{}, fmt.Errorf("netrun: frame payload %d words exceeds limit", count32)
	}
	count := int(count32)
	if count > 0 {
		if cap(fr.buf) < 4*count {
			fr.buf = make([]byte, 4*count)
		}
		buf := fr.buf[:4*count]
		if _, err := io.ReadFull(r, buf); err != nil {
			return Frame{}, fmt.Errorf("netrun: read payload: %w", err)
		}
		if cap(fr.payload) < count {
			fr.payload = make([]uint32, count)
		}
		f.Payload = fr.payload[:count]
		for i := range f.Payload {
			f.Payload[i] = binary.LittleEndian.Uint32(buf[4*i:])
		}
	}
	return f, nil
}

// bufferedConn pairs buffered reader/writer over one stream with
// reusable frame codecs; Flush after writing a batch of frames.
type bufferedConn struct {
	r  *bufio.Reader
	w  *bufio.Writer
	fr frameReader
	fw frameWriter
}

func newBufferedConn(rw io.ReadWriter) *bufferedConn {
	return &bufferedConn{r: bufio.NewReaderSize(rw, 1<<16), w: bufio.NewWriterSize(rw, 1<<16)}
}

func (bc *bufferedConn) writeFrame(f Frame) error { return bc.fw.writeTo(bc.w, f) }
func (bc *bufferedConn) readFrame() (Frame, error) {
	return bc.fr.readFrom(bc.r)
}
