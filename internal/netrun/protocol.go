// Package netrun runs the distributed in-cache index over real sockets:
// slave nodes serve index partitions over TCP, and a master-side client
// batches queries to them — the paper's MPI deployment translated to a
// stdlib-only wire protocol. The in-process runtime (internal/core)
// remains the fast path for a single host; netrun is for actually
// spreading the partitions across machines so that each node's share
// fits in its cache.
//
// Wire protocol (little-endian, length-delimited frames):
//
//	frame := magic(u32) op(u8) reqID(u32) count(u32) payload
//
// For the v1 ops (OpHello..OpErr) the payload is count 32-bit words: a
// lookup request's payload is count keys and the response's payload is
// count ranks (as uint32), in request order. For the v2 sorted-run ops
// (OpLookupSorted, OpRanksDelta) count is a byte length and the payload
// is a delta+varint-coded ascending run: varint(elements), then the
// first value and successive deltas as varints (see delta.go). Sorted
// batches make both keys and ranks monotone, which is what makes the
// deltas small; a sorted uniform workload's frames shrink roughly 4x on
// the rank direction and 25-45% on the key direction versus v1.
//
// Version negotiation rides the hello exchange, so v2 masters
// interoperate with v1 nodes (and vice versa) frame-for-frame:
//
//   - The client sends OpHello with its highest supported version in
//     the reqID field. A v1 client leaves it zero.
//   - A v1 node replies OpHelloAck with the 4-word payload
//     [rankBase, keyCount, loKey, hiKey] — its only form.
//   - A v2 node replies the same 4 words to a v1 client, and appends a
//     5th word, min(clientVersion, ProtoVersion), to a v2 client.
//   - The client treats a 4-word ack as version 1 and never sends v2
//     ops on that connection; a 5-word ack carries the negotiated
//     version. Versioning is per connection, so a replica group may mix
//     v1 and v2 nodes and failover re-encodes for the new connection.
//
// A hello exchange also carries the node's partition metadata so the
// client can verify its routing table against what the node actually
// serves.
//
// reqID multiplexes concurrent requests over one connection: the master
// pipelines any number of OpLookup/OpLookupSorted frames and the reply
// carries the request's id back, so a per-connection read loop can
// demultiplex reply frames to the issuing callers in any order. Nodes
// today reply in request order; the client does not rely on it.
package netrun

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Magic identifies protocol frames; a mismatch means the peer is not a
// netrun node (or the stream desynchronized) and the connection dies.
const Magic uint32 = 0xDC1D_2005

// Protocol versions. ProtoVersion is the highest this build speaks;
// the hello exchange negotiates min(client, node) per connection.
const (
	ProtoV1 = 1
	ProtoV2 = 2

	ProtoVersion = ProtoV2
)

// Op codes.
const (
	// OpHello is sent by the client on connect, with the client's
	// highest protocol version in the reqID field (0 and 1 both mean
	// v1); the node answers with OpHelloAck whose payload is
	// [rankBase, keyCount, loKey, hiKey] plus, for a v2 client, a 5th
	// word carrying the negotiated version.
	OpHello uint8 = 1
	// OpHelloAck is the node's hello response.
	OpHelloAck uint8 = 2
	// OpLookup carries keys; the node answers OpRanks with ranks.
	OpLookup uint8 = 3
	// OpRanks is the node's lookup response.
	OpRanks uint8 = 4
	// OpErr signals a node-side failure; payload[0] is an errno-like
	// code, and the connection should be abandoned.
	OpErr uint8 = 5
	// OpLookupSorted (v2) carries an ascending key run, delta+varint
	// coded (byte payload); the node answers OpRanksDelta.
	OpLookupSorted uint8 = 6
	// OpRanksDelta (v2) is the sorted lookup's response: the
	// nondecreasing ranks, delta+varint coded (byte payload).
	OpRanksDelta uint8 = 7
)

// byteOp reports whether op's count field is a byte length (v2
// delta-coded payload) rather than a 32-bit word count.
func byteOp(op uint8) bool { return op == OpLookupSorted || op == OpRanksDelta }

// MaxFrameWords bounds a v1 frame payload (16M words = 64 MB) so a
// corrupt length cannot force an absurd allocation. MaxFrameBytes is
// the byte-payload equivalent for v2 frames: the same 16M elements at
// the 5-byte varint worst case.
const (
	MaxFrameWords = 16 << 20
	MaxFrameBytes = 5 * MaxFrameWords
)

// Frame is one decoded protocol frame: word ops carry Payload, byte
// ops (see byteOp) carry Raw.
type Frame struct {
	Op      uint8
	ReqID   uint32
	Payload []uint32
	Raw     []byte
}

// WriteFrame encodes f to w. The payload aliasing is safe: the data is
// fully written before return. Allocates a scratch buffer per call; the
// hot paths use a reusable frameWriter instead.
func WriteFrame(w io.Writer, f Frame) error {
	var fw frameWriter
	return fw.writeTo(w, f)
}

// ReadFrame decodes one frame from r, allocating a fresh payload; the
// hot paths use a reusable frameReader instead.
func ReadFrame(r io.Reader) (Frame, error) {
	var fr frameReader
	f, err := fr.readFrom(r)
	if err != nil {
		return Frame{}, err
	}
	// Detach the payload from the reader's scratch.
	f.Payload = append([]uint32(nil), f.Payload...)
	f.Raw = append([]byte(nil), f.Raw...)
	return f, nil
}

// frameWriter encodes frames, reusing one scratch buffer across calls so
// the steady state allocates nothing. Not safe for concurrent use.
type frameWriter struct {
	buf []byte
}

// encode serializes f into the writer's scratch buffer and returns it
// (valid until the next encode). Splitting encoding from the socket
// write lets a caller stop referencing f.Payload before any blocking
// I/O starts. Byte ops (v2) take their payload from f.Raw.
func (fw *frameWriter) encode(f Frame) ([]byte, error) {
	if byteOp(f.Op) {
		if len(f.Raw) > MaxFrameBytes {
			return nil, fmt.Errorf("netrun: frame payload %d bytes exceeds limit", len(f.Raw))
		}
		need := 13 + len(f.Raw)
		if cap(fw.buf) < need {
			fw.buf = make([]byte, need)
		}
		buf := fw.buf[:need]
		fw.putHeader(buf, f.Op, f.ReqID, uint32(len(f.Raw)))
		copy(buf[13:], f.Raw)
		return buf, nil
	}
	if len(f.Payload) > MaxFrameWords {
		return nil, fmt.Errorf("netrun: frame payload %d words exceeds limit", len(f.Payload))
	}
	need := 13 + 4*len(f.Payload)
	if cap(fw.buf) < need {
		fw.buf = make([]byte, need)
	}
	buf := fw.buf[:need]
	fw.putHeader(buf, f.Op, f.ReqID, uint32(len(f.Payload)))
	for i, v := range f.Payload {
		binary.LittleEndian.PutUint32(buf[13+4*i:], v)
	}
	return buf, nil
}

func (fw *frameWriter) putHeader(buf []byte, op uint8, reqID, count uint32) {
	binary.LittleEndian.PutUint32(buf[0:4], Magic)
	buf[4] = op
	binary.LittleEndian.PutUint32(buf[5:9], reqID)
	binary.LittleEndian.PutUint32(buf[9:13], count)
}

// encodeDeltaKeys serializes an OpLookupSorted frame directly from the
// ascending key run into the writer's scratch (header + delta+varint
// payload, byte count backpatched), avoiding a staging buffer on the
// send path.
func (fw *frameWriter) encodeDeltaKeys(reqID uint32, keys []uint32) ([]byte, error) {
	if len(keys) > MaxFrameWords {
		return nil, fmt.Errorf("netrun: frame payload %d keys exceeds limit", len(keys))
	}
	if cap(fw.buf) < 13 {
		fw.buf = make([]byte, 0, 13+5+5*len(keys))
	}
	buf := fw.buf[:13]
	buf, err := appendDeltaRun(buf, keys)
	if err != nil {
		return nil, err
	}
	fw.buf = buf[:0]
	fw.putHeader(buf, OpLookupSorted, reqID, uint32(len(buf)-13))
	return buf, nil
}

func (fw *frameWriter) writeTo(w io.Writer, f Frame) error {
	buf, err := fw.encode(f)
	if err != nil {
		return err
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("netrun: write frame: %w", err)
	}
	return nil
}

// frameReader decodes frames, reusing its payload buffers: a decoded
// frame's payload is valid only until the next read. Not safe for
// concurrent use.
type frameReader struct {
	head    [13]byte
	buf     []byte
	payload []uint32
}

func (fr *frameReader) readFrom(r io.Reader) (Frame, error) {
	if _, err := io.ReadFull(r, fr.head[:]); err != nil {
		return Frame{}, err
	}
	if got := binary.LittleEndian.Uint32(fr.head[0:4]); got != Magic {
		return Frame{}, fmt.Errorf("netrun: bad magic %#x", got)
	}
	f := Frame{
		Op:    fr.head[4],
		ReqID: binary.LittleEndian.Uint32(fr.head[5:9]),
	}
	// Bounds-check as uint32 before converting: on 32-bit platforms a
	// corrupt length word >= 2^31 would wrap negative as int and slip
	// past the limit check.
	count32 := binary.LittleEndian.Uint32(fr.head[9:13])
	if byteOp(f.Op) {
		// v2 byte payload: count is a byte length; the delta decoder
		// applies its own element-count-vs-bytes guard on top.
		if count32 > MaxFrameBytes {
			return Frame{}, fmt.Errorf("netrun: frame payload %d bytes exceeds limit", count32)
		}
		n := int(count32)
		if n > 0 {
			if cap(fr.buf) < n {
				fr.buf = make([]byte, n)
			}
			f.Raw = fr.buf[:n]
			if _, err := io.ReadFull(r, f.Raw); err != nil {
				return Frame{}, fmt.Errorf("netrun: read payload: %w", err)
			}
		}
		return f, nil
	}
	if count32 > MaxFrameWords {
		return Frame{}, fmt.Errorf("netrun: frame payload %d words exceeds limit", count32)
	}
	count := int(count32)
	if count > 0 {
		if cap(fr.buf) < 4*count {
			fr.buf = make([]byte, 4*count)
		}
		buf := fr.buf[:4*count]
		if _, err := io.ReadFull(r, buf); err != nil {
			return Frame{}, fmt.Errorf("netrun: read payload: %w", err)
		}
		if cap(fr.payload) < count {
			fr.payload = make([]uint32, count)
		}
		f.Payload = fr.payload[:count]
		for i := range f.Payload {
			f.Payload[i] = binary.LittleEndian.Uint32(buf[4*i:])
		}
	}
	return f, nil
}

// bufferedConn pairs buffered reader/writer over one stream with
// reusable frame codecs; Flush after writing a batch of frames.
type bufferedConn struct {
	r  *bufio.Reader
	w  *bufio.Writer
	fr frameReader
	fw frameWriter
}

func newBufferedConn(rw io.ReadWriter) *bufferedConn {
	return &bufferedConn{r: bufio.NewReaderSize(rw, 1<<16), w: bufio.NewWriterSize(rw, 1<<16)}
}

func (bc *bufferedConn) writeFrame(f Frame) error { return bc.fw.writeTo(bc.w, f) }
func (bc *bufferedConn) readFrame() (Frame, error) {
	return bc.fr.readFrom(bc.r)
}
