package netrun

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/workload"
)

// Live-membership drills: AddReplica, DrainReplica, and SplitPartition
// reshape a serving cluster without restarting it. These tests pin the
// availability story (pre-v6 nodes refuse the ops with a descriptive
// error, and a refusal leaves the cluster serving) and the correctness
// story (a full add→drain→split sequence under concurrent reads and
// writes loses no batch and keeps every rank identical to the oracle).

// startJoinNode starts an unassigned join node (dcnode -join) on a
// loopback listener and returns its address and a stop func.
func startJoinNode(t *testing.T, universe []workload.Key) (string, func()) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	node := NewJoinNode(universe)
	go node.Serve(lis)
	return lis.Addr().String(), func() { node.Close() }
}

// TestMembershipOpsNeedV6 pins the availability error: against a
// cluster negotiated at protocol v5 (MaxVersion-capped, the pre-
// membership wire format), every membership verb is refused with an
// error naming the needed version, and the refusal leaves the data
// plane serving.
func TestMembershipOpsNeedV6(t *testing.T) {
	keys := workload.SortedKeys(4000, 71)
	rc, shutdown := startReplicated(t, keys, 2, 2, 256, DialOptions{MaxVersion: 5})
	defer shutdown()

	joinAddr, stopJoin := startJoinNode(t, keys)
	defer stopJoin()
	wantV6 := func(op string, err error) {
		t.Helper()
		if err == nil || !strings.Contains(err.Error(), "needs v6") {
			t.Fatalf("%s on a v5 cluster: err = %v, want a live-membership-needs-v6 refusal", op, err)
		}
	}
	wantV6("AddReplica", rc.c.AddReplica(0, joinAddr))
	wantV6("DrainReplica", rc.c.DrainReplica(0, rc.addrs[0][1]))
	wantV6("SplitPartition", rc.c.SplitPartition(0))

	// The refusals must leave the cluster untouched and serving.
	if got := rc.c.Nodes(); got != 2 {
		t.Fatalf("Nodes = %d after refused membership ops, want 2", got)
	}
	o := newTCPOracle(keys)
	checkTCPExact(t, rc.c, o, workload.UniformQueries(2000, 72))
}

// TestMembershipHTTPConflictPreV6 pins the operator-facing shape of the
// same refusal: POST /membership/split-partition against a v5-capped
// cluster's admin endpoint answers 409 Conflict with the refusal text
// in the JSON error body.
func TestMembershipHTTPConflictPreV6(t *testing.T) {
	keys := workload.SortedKeys(3000, 73)
	rc, shutdown := startReplicated(t, keys, 2, 2, 256, DialOptions{
		MaxVersion: 5,
		Admin:      AdminOptions{Addr: "127.0.0.1:0"},
	})
	defer shutdown()
	at := rc.c.Admin()
	if at == "" {
		t.Fatal("admin endpoint did not mount")
	}
	body, _ := json.Marshal(map[string]any{"partition": 0})
	resp, err := http.Post("http://"+at+"/membership/split-partition", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status = %d, want %d", resp.StatusCode, http.StatusConflict)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, "needs v6") {
		t.Fatalf("error body %q, want the needs-v6 refusal", e.Error)
	}
}

// TestLiveMembershipDrillUnderLoad is the acceptance drill: an 8x2
// cluster serving concurrent lookups and inserts goes through the full
// membership sequence — a join node added to one partition, a replica
// drained from another, a third partition split in two — with zero
// failed batches, and every post-drill rank identical to the oracle
// that saw the same inserts (the control). Run it under -race: the
// drill overlaps the reshape paths with both dispatch paths.
func TestLiveMembershipDrillUnderLoad(t *testing.T) {
	keys := workload.SortedKeys(24000, 81)
	rc, shutdown := startReplicated(t, keys, 8, 2, 512, DialOptions{})
	defer shutdown()
	c := rc.c

	// Background load: two readers (one unsorted, one ascending — both
	// dispatch paths) and one writer. Readers only check for batch
	// errors; rank values shift under the concurrent inserts and are
	// verified against the oracle at the quiesce point below.
	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	batchErr := func(err error) {
		if err != nil {
			select {
			case errs <- err:
			default:
			}
		}
	}
	queries := workload.UniformQueries(3000, 82)
	asc := sortedCopy(queries)
	for _, qs := range [][]workload.Key{queries, asc} {
		wg.Add(1)
		go func(qs []workload.Key) {
			defer wg.Done()
			out := make([]int, len(qs))
			for !stop.Load() {
				batchErr(c.LookupBatchInto(qs, out))
			}
		}(qs)
	}
	var inserted []workload.Key
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := workload.NewRNG(83)
		for !stop.Load() {
			ins := make([]workload.Key, 200)
			for i := range ins {
				ins[i] = r.Key()
			}
			if err := c.InsertBatch(ins); err != nil {
				batchErr(err)
				return
			}
			inserted = append(inserted, ins...)
			time.Sleep(time.Millisecond)
		}
	}()

	// 1. Add: a join node enters partition 2's group live.
	joinAddr, stopJoin := startJoinNode(t, keys)
	defer stopJoin()
	if err := c.AddReplica(2, joinAddr); err != nil {
		t.Fatal(err)
	}

	// 2. Drain: partition 5 gives up a replica.
	if err := c.DrainReplica(5, rc.addrs[5][0]); err != nil {
		t.Fatal(err)
	}

	// 3. Split: partition 3 divides at its key median. The newcomer from
	// step 1 may still be syncing its snapshot — the split's preflight
	// refuses until the cluster is settled, so retry on that refusal.
	deadline := time.Now().Add(30 * time.Second)
	for {
		err := c.SplitPartition(3)
		if err == nil {
			break
		}
		if !strings.Contains(err.Error(), "down or syncing") {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never settled for the split: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	stop.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("a batch failed during the drill: %v", err)
	}

	// Post-drill shape: 8 partitions + 1 from the split.
	if got := c.Nodes(); got != 9 {
		t.Fatalf("Nodes = %d after split, want 9", got)
	}

	// Correctness control: the oracle absorbed exactly the writer's
	// inserts; every rank — both dispatch paths, plus queries straddling
	// the new split boundary — must match it.
	o := newTCPOracle(keys)
	o.insert(inserted)
	checkTCPExact(t, c, o, queries)
	checkTCPExact(t, c, o, workload.UniformQueries(3000, 84))

	// The drained node is gone from the health roster; the joined one is
	// present.
	seen := map[string]bool{}
	for _, h := range c.Health() {
		seen[h.Addr] = true
	}
	if seen[rc.addrs[5][0]] {
		t.Fatal("drained replica still in the health roster")
	}
	if !seen[joinAddr] {
		t.Fatal("joined replica missing from the health roster")
	}
}

// TestSplitPartitionRefusesSingleReplica pins the split preflight: a
// one-replica partition cannot split (each half needs an owner), and
// the refusal names the constraint.
func TestSplitPartitionRefusesSingleReplica(t *testing.T) {
	keys := workload.SortedKeys(4000, 85)
	rc, shutdown := startReplicated(t, keys, 2, 1, 256, DialOptions{})
	defer shutdown()
	err := rc.c.SplitPartition(0)
	if err == nil || !strings.Contains(err.Error(), "at least one per half") {
		t.Fatalf("split of a 1-replica partition: err = %v, want the one-per-half refusal", err)
	}
	o := newTCPOracle(keys)
	checkTCPExact(t, rc.c, o, workload.UniformQueries(1000, 86))
}

// TestAddReplicaCatchUpServesWrites pins the catch-up admission: a join
// node added after the partition absorbed writes takes the identity,
// syncs a sibling snapshot, and then answers reads that include keys
// inserted both before and after its admission.
func TestAddReplicaCatchUpServesWrites(t *testing.T) {
	keys := workload.SortedKeys(6000, 87)
	rc, shutdown := startReplicated(t, keys, 2, 2, 256, DialOptions{})
	defer shutdown()
	c := rc.c
	o := newTCPOracle(keys)

	pre := workload.UniformQueries(800, 88)
	if err := c.InsertBatch(pre); err != nil {
		t.Fatal(err)
	}
	o.insert(pre)

	joinAddr, stopJoin := startJoinNode(t, keys)
	defer stopJoin()
	if err := c.AddReplica(0, joinAddr); err != nil {
		t.Fatal(err)
	}

	post := workload.UniformQueries(800, 89)
	if err := c.InsertBatch(post); err != nil {
		t.Fatal(err)
	}
	o.insert(post)
	checkTCPExact(t, c, o, workload.UniformQueries(2000, 90))

	// The newcomer eventually settles into the read rotation.
	deadline := time.Now().Add(30 * time.Second)
	for {
		settled := false
		for _, h := range c.Health() {
			if h.Addr == joinAddr && h.Healthy && !h.Syncing {
				settled = true
			}
		}
		if settled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("joined replica never settled")
		}
		time.Sleep(10 * time.Millisecond)
	}
	checkTCPExact(t, c, o, workload.UniformQueries(2000, 91))
}
