package netrun

// Client-side entry points for the protocol-v5 query ops. Each op
// scatters to the partitions whose key sub-ranges it touches and
// composes the replies by partition order, which is key order — the
// dial-time delimiters assign strictly ascending disjoint sub-ranges:
//
//   - CountRange sends the full [lo,hi] to every spanned partition and
//     sums the local counts. No clamping and no insert-counter
//     corrections are needed: a partition only holds keys from its own
//     sub-range, and inserts route by the same delimiters, so the
//     spanned partitions Route(lo)..Route(hi) hold exactly the keys in
//     [lo,hi] at all times.
//   - ScanRange collects one ascending run per spanned partition and
//     concatenates them lowest partition first, truncating at limit.
//   - TopK asks every partition for its k largest (ascending on the
//     wire) and reads the replies highest partition down, each run from
//     its end, until k keys are taken.
//   - MultiGet radix-sorts the key batch (the OpMultiGet frame is the
//     v2 delta codec, which requires ascending runs), scatters sorted
//     runs to their owning partitions, and lets the read loops write
//     each multiplicity straight into the output slot — each key is
//     owned by exactly one partition, so the scatter is race-free.
//
// All four ride the rank pipeline's failover machinery: a pending
// whose replica dies is re-dispatched to a healthy v5 sibling with the
// request words intact (they stay in p.keys until a reply lands), so a
// mid-scan kill resolves to the same bytes a healthy run produces.
// Partitions with no v5-capable replica fail the op with a descriptive
// error while rank lookups keep working — see describeIneligible.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/workload"
)

// KeyRange is re-exported so callers holding only a *Cluster can build
// CountRangeBatch inputs without importing core.
type KeyRange = core.KeyRange

// CountRange returns the number of keys in [lo, hi] (inclusive) across
// the whole cluster; 0 if hi < lo. Exact at quiescence, a consistent
// point-in-time view under concurrent inserts.
func (c *Cluster) CountRange(lo, hi workload.Key) (int, error) {
	var one [1]int
	if err := c.CountRangeBatch([]KeyRange{{Lo: lo, Hi: hi}}, one[:]); err != nil {
		return 0, err
	}
	return one[0], nil
}

// CountRangeBatch answers many inclusive range counts in one scatter:
// out[i] receives the key count of ranges[i] (len(out) >= len(ranges)).
// Ranges spanning several partitions batch their endpoint pairs with
// every other range touching the same partition, so the wire cost is
// bounded by spanned-partition pairs, not ranges times partitions.
func (c *Cluster) CountRangeBatch(ranges []KeyRange, out []int) error {
	if len(out) < len(ranges) {
		return fmt.Errorf("netrun: out len %d < %d ranges", len(out), len(ranges))
	}
	c.pause.RLock()
	defer c.pause.RUnlock()
	ep := c.ep.Load()
	if ep == nil {
		return ErrClusterClosed
	}
	if err := ep.Err(); err != nil {
		return err
	}
	for i := range ranges {
		out[i] = 0
	}
	if len(ranges) == 0 {
		return nil
	}

	groups := ep.groups
	part := c.part.Load()
	accum := make([]*pending, len(groups))
	var gis []int
	var pends []*pending
	for i, r := range ranges {
		if r.Hi < r.Lo {
			continue
		}
		gLo, gHi := part.Route(r.Lo), part.Route(r.Hi)
		for gi := gLo; gi <= gHi; gi++ {
			p := accum[gi]
			if p == nil {
				p = c.getPending()
				p.kind = pkCount
				accum[gi] = p
				gis = append(gis, gi)
				pends = append(pends, p)
			}
			p.keys = append(p.keys, uint32(r.Lo), uint32(r.Hi))
			p.pos = append(p.pos, int32(i))
			if len(p.keys) >= c.batch {
				accum[gi] = nil
			}
		}
	}
	if len(pends) == 0 {
		return nil
	}
	done := make(chan *pending, len(pends))
	for j, p := range pends {
		c.dispatch(ep, gis[j], p, nil, done)
	}
	// The read loops stage each reply's counts in p.reply rather than
	// adding into out: a range spanning partitions has several replies
	// targeting the same slot, and only this single gather loop may sum
	// them.
	var firstErr error
	for range pends {
		p := <-done
		if p.err != nil {
			if firstErr == nil {
				firstErr = p.err
			}
		} else {
			for j, pos := range p.pos {
				out[pos] += int(p.reply[j])
			}
		}
		c.release(p)
	}
	return firstErr
}

// ScanRange returns the keys in [lo, hi] in ascending order, at most
// limit of them (limit < 0 means unlimited), appended to buf. Results
// larger than one protocol frame (MaxFrameWords keys from a single
// partition) are refused by the serving node; bound them with limit.
func (c *Cluster) ScanRange(lo, hi workload.Key, limit int, buf []workload.Key) ([]workload.Key, error) {
	out := buf
	if hi < lo || limit == 0 {
		return out, nil
	}
	c.pause.RLock()
	defer c.pause.RUnlock()
	ep := c.ep.Load()
	if ep == nil {
		return out, ErrClusterClosed
	}
	if err := ep.Err(); err != nil {
		return out, err
	}
	limWord := uint32(0) // wire encoding: 0 means unlimited
	if limit > 0 {
		limWord = uint32(limit)
	}
	part := c.part.Load()
	gLo, gHi := part.Route(lo), part.Route(hi)
	span := gHi - gLo + 1
	done := make(chan *pending, span)
	pends := make([]*pending, span)
	for gi := gLo; gi <= gHi; gi++ {
		p := c.getPending()
		p.kind = pkScan
		p.keys = append(p.keys, uint32(lo), uint32(hi), limWord)
		p.posBase = gi - gLo
		c.dispatch(ep, gi, p, nil, done)
	}
	var firstErr error
	for i := 0; i < span; i++ {
		p := <-done
		if p.err != nil && firstErr == nil {
			firstErr = p.err
		}
		pends[p.posBase] = p
	}
	if firstErr == nil {
		// Partition order is key order: concatenating the per-partition
		// ascending runs lowest partition first and truncating at limit
		// reproduces the oracle's "first limit keys from lo" exactly.
		taken := 0
		for _, p := range pends {
			if limit >= 0 && taken >= limit {
				break
			}
			for _, v := range p.reply {
				if limit >= 0 && taken >= limit {
					break
				}
				out = append(out, workload.Key(v))
				taken++
			}
		}
	}
	for _, p := range pends {
		c.release(p)
	}
	return out, firstErr
}

// TopK returns the k largest keys in descending order, appended to buf.
func (c *Cluster) TopK(k int, buf []workload.Key) ([]workload.Key, error) {
	out := buf
	if k <= 0 {
		return out, nil
	}
	c.pause.RLock()
	defer c.pause.RUnlock()
	ep := c.ep.Load()
	if ep == nil {
		return out, ErrClusterClosed
	}
	if err := ep.Err(); err != nil {
		return out, err
	}
	groups := ep.groups
	done := make(chan *pending, len(groups))
	pends := make([]*pending, len(groups))
	for gi := range groups {
		p := c.getPending()
		p.kind = pkTopK
		p.keys = append(p.keys, uint32(k))
		p.posBase = gi
		c.dispatch(ep, gi, p, nil, done)
	}
	var firstErr error
	for range pends {
		p := <-done
		if p.err != nil && firstErr == nil {
			firstErr = p.err
		}
		pends[p.posBase] = p
	}
	if firstErr == nil {
		// Highest partition holds the largest keys; each reply is an
		// ascending run, read back-to-front.
		have := 0
		for gi := len(pends) - 1; gi >= 0 && have < k; gi-- {
			run := pends[gi].reply
			for j := len(run) - 1; j >= 0 && have < k; j-- {
				out = append(out, workload.Key(run[j]))
				have++
			}
		}
	}
	for _, p := range pends {
		c.release(p)
	}
	return out, firstErr
}

// MultiGet returns the multiplicity of each query key (how many copies
// the cluster holds), in query order.
func (c *Cluster) MultiGet(keys []workload.Key) ([]int, error) {
	out := make([]int, len(keys))
	if err := c.MultiGetInto(keys, out); err != nil {
		return nil, err
	}
	return out, nil
}

// MultiGetInto is MultiGet writing into a caller-provided slice
// (len(out) >= len(keys)). Unlike LookupBatchInto, the batch always
// takes the sorted pipeline regardless of DialOptions.SortedBatches:
// the OpMultiGet frame is the v2 delta codec, which only carries
// ascending runs, so unsorted input is radix-sorted client-side and
// the replies scatter through the position array.
func (c *Cluster) MultiGetInto(keys []workload.Key, out []int) error {
	if len(out) < len(keys) {
		return fmt.Errorf("netrun: out len %d < %d keys", len(out), len(keys))
	}
	c.pause.RLock()
	defer c.pause.RUnlock()
	ep := c.ep.Load()
	if ep == nil {
		return ErrClusterClosed
	}
	if err := ep.Err(); err != nil {
		return err
	}
	if len(keys) == 0 {
		return nil
	}

	groups := ep.groups
	nc := c.calls.Get().(*netCall)
	if need := len(keys)/c.batch + len(groups) + 1; cap(nc.done) < need {
		nc.done = make(chan *pending, need)
	}
	runKeys := keys
	var runPos []int32
	if !core.SortedRun(keys) {
		runKeys, runPos = nc.sort.SortByKey(keys)
	}
	inflight := 0
	core.ForEachSortedRun(c.part.Load().Delimiters(), runKeys, c.batch, func(gi, start, end int) {
		p := c.getPending()
		p.kind = pkMultiGet
		p.sorted = true
		for _, q := range runKeys[start:end] {
			p.keys = append(p.keys, uint32(q))
		}
		if runPos != nil {
			p.pos = append(p.pos, runPos[start:end]...)
		} else {
			p.contig = true
			p.posBase = start
		}
		c.dispatch(ep, gi, p, out, nc.done)
		inflight++
	})
	var firstErr error
	for inflight > 0 {
		p := <-nc.done
		inflight--
		if p.err != nil && firstErr == nil {
			firstErr = p.err
		}
		c.release(p)
	}
	c.calls.Put(nc)
	return firstErr
}
