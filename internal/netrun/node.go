package netrun

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/index"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Node serves one index partition (or a full replica) over TCP: the
// slave side of the paper's Figure 2. A Node is safe for any number of
// concurrent client connections; each connection gets its own
// goroutine. Nodes built by NewPartitionNode are updatable (protocol
// v3): inserts land in a delta buffer consulted alongside the immutable
// base array, a background goroutine compacts the two, and snapshot/
// load frames let a rejoining replica catch up from a sibling. Nodes
// built over an arbitrary index via NewNode are read-only and negotiate
// at most protocol v2.
type Node struct {
	idx index.Index
	upd *index.Updatable // non-nil: the updatable serving path
	// dp is the durable write path (non-nil only for nodes built by
	// NewDurablePartitionNode): inserts append to its WAL and the ack
	// waits for the group fsync; the v4 positioned catch-up ops serve
	// from and apply to it.
	dp *index.DurablePartition
	// ident is the node's advertised partition identity — the
	// construction-time baseline (rank base, baseline key count, key
	// bounds) the hello handshake reports, which online inserts never
	// move. It is an atomic pointer because the v6 membership ops
	// (partition assignment, split) swap it while other connections'
	// handlers are live; the swapping client holds its membership pause
	// (no requests in flight), so each handler reading it once per
	// request observes a consistent identity.
	ident atomic.Pointer[nodeIdent]
	// universe, when non-nil, is the node's full sorted key file: the
	// joinable configuration (dcnode -join) in which OpAddReplica may
	// assign any [rankBase, rankBase+baseN) slice of it as this node's
	// partition. Immutable after construction.
	universe []workload.Key

	lis     net.Listener
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	closed  bool
	serving bool
	wg      sync.WaitGroup

	// Logf receives connection-level errors; nil silences them.
	Logf func(format string, args ...any)

	// WriteTimeout bounds each reply write so a client that stopped
	// reading cannot wedge a handler goroutine forever (a healthy
	// client's read loop always drains, so only dead peers hit it).
	// Zero disables the deadline.
	WriteTimeout time.Duration

	// ReadOnly caps the negotiated protocol at v2, refusing writes:
	// the node serves lookups but never receives OpInsert/OpLoad (a
	// writing client skips pre-v3 replicas). Set before Serve.
	ReadOnly bool

	// MaxVersion caps the protocol version this node negotiates; 0
	// means ProtoVersion (the highest this build speaks). Set before
	// Serve. Capping at ProtoV1 emulates an old node byte-for-byte
	// (4-word hello acks, newer ops refused with OpErr); interop tests
	// and cmd/dcnode's -max-version flag use it to prove mixed-version
	// deployments keep answering — a v5 client excludes a capped node
	// from the v5 query ops but keeps routing rank lookups to it.
	MaxVersion uint32

	// WrapConn, when non-nil, wraps every accepted connection before
	// its handler starts — the server-side fault-injection seam (gray-
	// failure tests and dcnode's -chaos drill install a faultnet
	// profile here to slow or stall one replica deterministically).
	// Set before Serve.
	WrapConn func(net.Conn) net.Conn

	// Telemetry, when non-nil, receives per-op service-time histograms
	// (series dc_node_op_ns{op=...}) for every request this node
	// serves; dcnode -admin exposes the registry over HTTP. Set before
	// Serve. Nil keeps the dispatch path measurement-free.
	Telemetry *telemetry.Registry
}

// nodeIdent is the immutable partition-identity tuple behind
// Node.ident. baseN == 0 means unassigned (a joinable node waiting for
// OpAddReplica).
type nodeIdent struct {
	rankBase int
	baseN    int
	lo, hi   workload.Key
}

// opMetricName labels the per-op histograms; empty entries (reply
// ops, unknown ops) are not measured.
var opMetricName = [32]string{
	OpHello:          "hello",
	OpLookup:         "lookup",
	OpLookupSorted:   "lookup_sorted",
	OpInsert:         "insert",
	OpSnapshot:       "snapshot",
	OpLoad:           "load",
	OpSnapshotSince:  "snapshot_since",
	OpLoadAt:         "load_at",
	OpCountRange:     "count_range",
	OpScanRange:      "scan_range",
	OpTopK:           "top_k",
	OpMultiGet:       "multi_get",
	OpAddReplica:     "add_replica",
	OpDrainReplica:   "drain_replica",
	OpSplitPartition: "split_partition",
}

// capVersion is the highest protocol version this node will negotiate:
// MaxVersion (when set), capped at v2 when the node cannot serve writes
// (read-only flag, or a NewNode index with no update layer).
func (n *Node) capVersion() uint32 {
	cap32 := n.MaxVersion
	if cap32 == 0 {
		cap32 = ProtoVersion
	}
	if (n.ReadOnly || n.upd == nil) && cap32 > ProtoV2 {
		cap32 = ProtoV2
	}
	return cap32
}

// NewNode wraps an index partition for serving. rankBase is the global
// rank of the partition's first key; lo/hi document the served key range
// for the hello handshake (hi is inclusive). A NewNode node is
// read-only (protocol v2 at most); use NewPartitionNode for an
// updatable v3 node.
func NewNode(idx index.Index, rankBase int, lo, hi workload.Key) *Node {
	n := &Node{
		idx:   idx,
		conns: map[net.Conn]struct{}{},
	}
	n.ident.Store(&nodeIdent{rankBase: rankBase, baseN: idx.N(), lo: lo, hi: hi})
	return n
}

// NewJoinNode builds an unassigned updatable node over the full sorted
// key file: it serves an empty partition (hello advertises the zero
// identity) until a v6 client assigns it one with OpAddReplica, naming
// a slice of the universe. This is how a fresh machine joins a running
// cluster without restarting the epoch (dcnode -join).
func NewJoinNode(universe []workload.Key) *Node {
	arr := index.NewSortedArray(nil, 0)
	n := &Node{
		idx:      arr,
		universe: universe,
		conns:    map[net.Conn]struct{}{},
	}
	n.ident.Store(&nodeIdent{})
	n.upd = index.NewUpdatableOver(nil, arr, func(keys []workload.Key) index.BatchRanker {
		return index.NewSortedArray(keys, 0)
	}, 0)
	return n
}

// NewPartitionNode builds a Method C-3 node (sorted-array partition)
// with the online-update layer: a delta buffer over the immutable
// array, compacted in the background once it reaches
// index.DefaultMergeThreshold keys.
func NewPartitionNode(partKeys []workload.Key, rankBase int) *Node {
	if len(partKeys) == 0 {
		panic("netrun: empty partition")
	}
	arr := index.NewSortedArray(partKeys, 0)
	n := NewNode(arr, rankBase, partKeys[0], partKeys[len(partKeys)-1])
	// The update layer shares the array built above (NewNode keeps it
	// only for the hello identity); merges rebuild fresh ones.
	n.upd = index.NewUpdatableOver(partKeys, arr, func(keys []workload.Key) index.BatchRanker {
		return index.NewSortedArray(keys, 0)
	}, 0)
	return n
}

// NewDurablePartitionNode is NewPartitionNode with crash durability:
// the node recovers its state from dir (newest intact segment plus WAL
// tail; partKeys only seed a fresh directory), inserts are fsynced
// before they are acknowledged, and the hello advertises the node's
// durable position so a rejoin can catch up from the insert tail
// instead of a full snapshot. partKeys remains the node's baseline
// identity — the partition it verifies as — regardless of how many
// logged inserts the recovery replayed.
func NewDurablePartitionNode(partKeys []workload.Key, rankBase int, dir string, opt index.StoreOptions) (*Node, error) {
	if len(partKeys) == 0 {
		return nil, errors.New("netrun: empty partition")
	}
	dp, err := index.OpenDurablePartition(dir, partKeys, func(keys []workload.Key) index.BatchRanker {
		return index.NewSortedArray(keys, 0)
	}, 0, opt)
	if err != nil {
		return nil, err
	}
	n := &Node{
		dp:    dp,
		upd:   dp.Upd,
		conns: map[net.Conn]struct{}{},
	}
	n.ident.Store(&nodeIdent{
		rankBase: rankBase,
		baseN:    len(partKeys),
		lo:       partKeys[0],
		hi:       partKeys[len(partKeys)-1],
	})
	return n, nil
}

// Serve accepts connections on lis until Close. It returns the listener
// error that ended the accept loop (net.ErrClosed after Close). Only
// one Serve may run at a time: a second concurrent call is refused
// instead of silently overwriting the active listener (which Close
// would then fail to release). After Serve returns — say its listener
// died — the Node may Serve again on a fresh listener; this is the
// server half of a replica restart, which the client-side rejoin loop
// then re-verifies and readmits.
func (n *Node) Serve(lis net.Listener) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return errors.New("netrun: node closed")
	}
	if n.serving {
		n.mu.Unlock()
		return errors.New("netrun: node already serving (one Serve at a time)")
	}
	n.serving = true
	n.lis = lis
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		n.serving = false
		n.mu.Unlock()
	}()

	for {
		conn, err := lis.Accept()
		if err != nil {
			return err
		}
		if n.WrapConn != nil {
			// Track (and later Close) the wrapper, not the raw conn:
			// closing a faultnet wrapper wakes any injected stall, so
			// Close never waits out a fault.
			conn = n.WrapConn(conn)
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		n.conns[conn] = struct{}{}
		n.wg.Add(1)
		n.mu.Unlock()
		go n.handle(conn)
	}
}

// Close stops accepting, closes every live connection, and waits for
// handlers to drain.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	if n.lis != nil {
		n.lis.Close()
	}
	for c := range n.conns {
		c.Close()
	}
	n.mu.Unlock()
	n.wg.Wait()
	if n.dp != nil {
		// Close drains the compaction daemon and the store (quiescing
		// the update layer on the way).
		if err := n.dp.Close(); err != nil {
			n.logf("netrun: close durable state: %v", err)
		}
		return
	}
	if n.upd != nil {
		// Drain any background compaction so no goroutine outlives the
		// node.
		n.upd.Quiesce()
	}
}

// Position reports a durable node's (generation, chain) position —
// the logged insert count over the baseline and the order-sensitive
// fold over those inserts. Zeros for a non-durable node.
func (n *Node) Position() (gen, chain uint64) {
	if n.dp == nil {
		return 0, 0
	}
	return n.dp.Position()
}

// NodeInfo is a point-in-time identity-and-size snapshot of a serving
// node, shaped for the operations plane: dcnode's /stats and /indexes
// endpoints render it as JSON. SchemaVersion tracks StatsSchemaVersion.
type NodeInfo struct {
	SchemaVersion int `json:"schema_version"`
	// Assigned is false for a join node still waiting for OpAddReplica.
	Assigned bool `json:"assigned"`
	// RankBase and BaseKeys are the hello identity: the global rank
	// offset and the baseline key count (inserts do not move them).
	RankBase int `json:"rank_base"`
	BaseKeys int `json:"base_keys"`
	// Keys is the live total including applied inserts.
	Keys int `json:"keys"`
	// Lo and Hi bound the served key sub-range (zero when unassigned).
	Lo uint32 `json:"lo"`
	Hi uint32 `json:"hi"`
	// Durable is true for WAL-backed nodes; Generation is their logged
	// insert count over the baseline.
	Durable    bool   `json:"durable"`
	Generation uint64 `json:"generation"`
}

// Info snapshots the node's identity and live size. Safe to call
// concurrently with serving: the identity tuple is immutable behind an
// atomic pointer and the updatable layer pins its own state.
func (n *Node) Info() NodeInfo {
	id := n.ident.Load()
	info := NodeInfo{
		SchemaVersion: StatsSchemaVersion,
		Assigned:      id.baseN > 0,
		RankBase:      id.rankBase,
		BaseKeys:      id.baseN,
		Keys:          id.baseN,
		Lo:            uint32(id.lo),
		Hi:            uint32(id.hi),
		Durable:       n.dp != nil,
	}
	if n.upd != nil {
		info.Keys = n.upd.TotalKeys()
	}
	if n.dp != nil {
		info.Generation, _ = n.dp.Position()
	}
	return info
}

// isServing reports whether an accept loop is currently running.
func (n *Node) isServing() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.serving
}

func (n *Node) logf(format string, args ...any) {
	if n.Logf != nil {
		n.Logf(format, args...)
	}
}

// armWrite applies the node's write deadline to conn, if configured.
func (n *Node) armWrite(conn net.Conn) {
	if n.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(n.WriteTimeout))
	}
}

func (n *Node) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		n.mu.Lock()
		delete(n.conns, conn)
		n.mu.Unlock()
		n.wg.Done()
		if r := recover(); r != nil {
			// A malformed frame must not take the node down.
			n.logf("netrun: handler panic: %v", r)
		}
	}()

	bc := newBufferedConn(conn)
	// Per-connection lookup scratch, reused across requests so the
	// steady state allocates nothing: keys (payload converted to
	// workload.Key), ranks as ints for the batch ranker, ranks on the
	// wire as uint32 (or delta+varint bytes for sorted lookups).
	batcher, _ := n.idx.(batchRanker)
	streamer, _ := n.idx.(sortedRanker)
	cap32 := n.capVersion()
	// negotiated is the version the hello exchange settles on for this
	// connection. Until a hello arrives the node's own cap applies — a
	// legacy v1 client may send lookups without negotiating — but once a
	// client has negotiated, ops above that version are refused: the
	// op×version table (opMinVersion in protocol.go) is authoritative.
	negotiated := cap32
	var keyBuf []workload.Key
	var intBuf []int
	var rankBuf []uint32
	var deltaBuf []uint32      // decoded sorted keys
	var replyBuf []byte        // encoded delta-coded reply payload
	var scanBuf []workload.Key // v5 scan/top-k result staging

	// Per-op service-time histograms, resolved once per connection so
	// the per-request cost is one clock read and two atomic adds.
	var opHists [32]*telemetry.Histogram
	if n.Telemetry != nil {
		for op, name := range opMetricName {
			if name != "" {
				opHists[op] = n.Telemetry.Histogram(`dc_node_op_ns{op="` + name + `"}`)
			}
		}
	}

	// refuse sends OpErr and abandons the connection, the way the old
	// binary refuses any unknown op.
	refuse := func(f Frame) {
		n.logf("netrun: unexpected op %d", f.Op)
		n.armWrite(conn)
		_ = bc.writeFrame(Frame{Op: OpErr, ReqID: f.ReqID, Payload: []uint32{uint32(f.Op)}})
		_ = bc.w.Flush()
	}
	// reply writes one response frame and flushes.
	reply := func(f Frame) bool {
		n.armWrite(conn)
		if err := bc.writeFrame(f); err != nil {
			n.logf("netrun: reply op %d: %v", f.Op, err)
			return false
		}
		return bc.w.Flush() == nil
	}

	for {
		f, err := bc.readFrame()
		if err != nil {
			if !errors.Is(err, net.ErrClosed) {
				n.logf("netrun: %v", err)
			}
			return
		}
		// Protocol discipline: a known op above the connection's
		// negotiated version is refused before dispatch. Unknown ops
		// (OpMinVersion 0) fall through to the default refuse below,
		// keeping the legacy diagnostic for them.
		if OpMinVersion(f.Op) > negotiated {
			refuse(f)
			return
		}
		// One identity read per request: membership ops swap the
		// pointer, every other op serves under the snapshot it loaded.
		id := n.ident.Load()
		var opStart time.Time
		if n.Telemetry != nil {
			opStart = time.Now()
		}
		switch f.Op {
		case OpHello:
			// The identity is the construction-time baseline; inserts
			// do not move it (see the Node doc).
			payload := []uint32{
				uint32(id.rankBase), uint32(id.baseN), uint32(id.lo), uint32(id.hi),
			}
			// Version negotiation: a v2+ client advertises its version
			// in the hello reqID; answer with min(client, node) as a
			// 5th word. v1 clients (reqID 0 or 1) get the 4-word ack
			// they expect, and a MaxVersion==ProtoV1 node always acks
			// 4 words — exactly what an old binary sends. On a
			// v3-negotiated connection a 6th word advertises the LIVE
			// key count: a fresh client seeds its rank-base correction
			// counters from it (live minus baseline = inserts this
			// node has absorbed), so ranks stay globally consistent
			// against nodes written to by an earlier client. On a
			// v4-negotiated connection a durable node appends words 7-8
			// with its chain; live count and chain are captured as one
			// consistent position (generation = live - baseline).
			if f.ReqID >= ProtoV2 && cap32 >= ProtoV2 {
				v := min(f.ReqID, cap32)
				negotiated = v
				payload = append(payload, v)
				if v >= ProtoV3 && n.upd != nil {
					if v >= ProtoV4 && n.dp != nil {
						gen, chain := n.dp.Position()
						payload = append(payload, uint32(id.baseN)+uint32(gen),
							uint32(chain), uint32(chain>>32))
					} else {
						payload = append(payload, uint32(n.upd.TotalKeys()))
					}
				}
			} else {
				// A v1 hello (or a v1-capped node): the connection speaks
				// v1 from here on, whatever the node could do.
				negotiated = ProtoV1
			}
			if !reply(Frame{Op: OpHelloAck, ReqID: f.ReqID, Payload: payload}) {
				return
			}
		case OpLookupSorted:
			if cap32 < ProtoV2 {
				refuse(f)
				return
			}
			decoded, err := decodeDeltaRun(f.Raw, deltaBuf)
			if err != nil {
				n.logf("netrun: sorted lookup: %v", err)
				refuse(f)
				return
			}
			deltaBuf = decoded
			nq := len(decoded)
			if cap(keyBuf) < nq {
				keyBuf = make([]workload.Key, nq)
				intBuf = make([]int, nq)
			}
			keys, ints := keyBuf[:nq], intBuf[:nq]
			for i, k := range decoded {
				keys[i] = workload.Key(k)
			}
			// The delta coding guarantees the run is ascending (deltas
			// are unsigned), so the streaming merge kernel applies
			// directly; indexes without one fall back to batch search.
			switch {
			case n.upd != nil:
				n.upd.RankSorted(keys, ints, id.rankBase)
			case streamer != nil:
				streamer.RankSorted(keys, ints, id.rankBase)
			case batcher != nil:
				batcher.RankBatch(keys, ints, id.rankBase)
			default:
				for i, k := range keys {
					ints[i] = id.rankBase + n.idx.Rank(k)
				}
			}
			if cap(rankBuf) < nq {
				rankBuf = make([]uint32, nq)
			}
			ranks := rankBuf[:nq]
			for i, r := range ints {
				ranks[i] = uint32(r)
			}
			// Ascending keys make the ranks nondecreasing, so the
			// reply delta-codes too.
			replyBuf, err = appendDeltaRun(replyBuf[:0], ranks)
			if err != nil {
				n.logf("netrun: sorted ranks: %v", err)
				return
			}
			if !reply(Frame{Op: OpRanksDelta, ReqID: f.ReqID, Raw: replyBuf}) {
				return
			}
		case OpLookup:
			nq := len(f.Payload)
			if cap(rankBuf) < nq {
				rankBuf = make([]uint32, nq)
			}
			ranks := rankBuf[:nq]
			if n.upd != nil || batcher != nil {
				if cap(keyBuf) < nq {
					keyBuf = make([]workload.Key, nq)
					intBuf = make([]int, nq)
				}
				keys, ints := keyBuf[:nq], intBuf[:nq]
				for i, k := range f.Payload {
					keys[i] = workload.Key(k)
				}
				if n.upd != nil {
					n.upd.RankBatch(keys, ints, id.rankBase)
				} else {
					batcher.RankBatch(keys, ints, id.rankBase)
				}
				for i, r := range ints {
					ranks[i] = uint32(r)
				}
			} else {
				for i, k := range f.Payload {
					ranks[i] = uint32(id.rankBase + n.idx.Rank(workload.Key(k)))
				}
			}
			if !reply(Frame{Op: OpRanks, ReqID: f.ReqID, Payload: ranks}) {
				return
			}
		case OpInsert:
			if cap32 < ProtoV3 || n.upd == nil {
				refuse(f)
				return
			}
			nq := len(f.Payload)
			// keyBuf and intBuf grow in lockstep everywhere (the lookup
			// branches guard on keyBuf alone), so growing one without
			// the other here would leave a stale short intBuf for the
			// next lookup.
			if cap(keyBuf) < nq {
				keyBuf = make([]workload.Key, nq)
				intBuf = make([]int, nq)
			}
			keys := keyBuf[:nq]
			for i, k := range f.Payload {
				keys[i] = workload.Key(k)
			}
			if n.dp != nil {
				// The ack is a durability promise: log, apply, and wait
				// for the group fsync. A log failure must never ack —
				// refuse and drop the connection so the client fails
				// this replica over instead of trusting a write the
				// disk did not take.
				if err := n.dp.InsertBatch(keys); err != nil {
					n.logf("netrun: insert not durable: %v", err)
					refuse(f)
					return
				}
			} else {
				n.upd.InsertBatch(keys)
			}
			if !reply(Frame{Op: OpInsertAck, ReqID: f.ReqID, Payload: []uint32{uint32(nq)}}) {
				return
			}
		case OpSnapshot:
			if cap32 < ProtoV3 || n.upd == nil {
				refuse(f)
				return
			}
			snap := n.upd.SnapshotKeys()
			if len(snap) > MaxFrameWords {
				// The snapshot cannot fit one frame. Refuse just this
				// request and keep serving: killing the connection
				// would charge the failure to this (healthy) node and
				// can cascade to epoch death when it is the partition's
				// snapshot source. The client fails only the catch-up.
				n.logf("netrun: snapshot of %d keys exceeds the frame limit; catch-up refused", len(snap))
				if !reply(Frame{Op: OpErr, ReqID: f.ReqID, Payload: []uint32{uint32(f.Op)}}) {
					return
				}
				continue
			}
			// Local buffers, deliberately not the connection scratch: a
			// snapshot is the whole live key set — orders of magnitude
			// beyond the lookup regime — and a long-lived serving
			// connection must not pin that much dead capacity after one
			// rare catch-up.
			words := make([]uint32, len(snap))
			for i, k := range snap {
				words[i] = uint32(k)
			}
			payload, err := appendDeltaRun(make([]byte, 0, 5+5*len(words)), words)
			if err != nil {
				n.logf("netrun: snapshot: %v", err)
				return
			}
			if !reply(Frame{Op: OpSnapshotData, ReqID: f.ReqID, Raw: payload}) {
				return
			}
		case OpLoad:
			if cap32 < ProtoV3 || n.upd == nil {
				refuse(f)
				return
			}
			decoded, err := decodeDeltaRun(f.Raw, deltaBuf)
			if err != nil {
				n.logf("netrun: load: %v", err)
				refuse(f)
				return
			}
			deltaBuf = decoded
			// The delta coding guarantees an ascending run; copy it out
			// of the connection scratch, since Reset aliases its input
			// for the node's lifetime.
			fresh := make([]workload.Key, len(decoded))
			for i, k := range decoded {
				fresh[i] = workload.Key(k)
			}
			if n.dp != nil {
				// A legacy load carries no position: reconstruct the
				// generation from the key count (every logged insert
				// adds one key over the baseline) and mark the chain
				// unknown — later delta catch-ups from this node degrade
				// to full snapshots, but the store never diverges from
				// the served state.
				var gen uint64
				if len(fresh) > id.baseN {
					gen = uint64(len(fresh) - id.baseN)
				}
				if err := n.dp.ResetTo(fresh, gen, 0); err != nil {
					n.logf("netrun: load reset: %v", err)
					refuse(f)
					return
				}
			} else {
				n.upd.Reset(fresh)
			}
			if !reply(Frame{Op: OpLoadAck, ReqID: f.ReqID, Payload: []uint32{uint32(len(fresh))}}) {
				return
			}
		case OpSnapshotSince:
			if cap32 < ProtoV4 || n.dp == nil || len(f.Payload) != 4 {
				refuse(f)
				return
			}
			wantGen := uint64(f.Payload[0]) | uint64(f.Payload[1])<<32
			wantChain := uint64(f.Payload[2]) | uint64(f.Payload[3])<<32
			payload, ok := n.snapshotSince(wantGen, wantChain)
			if !ok {
				// Neither the delta nor the full set fits one frame.
				// Refuse just this request (see the OpSnapshot comment).
				n.logf("netrun: positioned catch-up from generation %d exceeds the frame limit; refused", wantGen)
				if !reply(Frame{Op: OpErr, ReqID: f.ReqID, Payload: []uint32{uint32(f.Op)}}) {
					return
				}
				continue
			}
			if !reply(Frame{Op: OpSnapshotDelta, ReqID: f.ReqID, Payload: payload}) {
				return
			}
		case OpLoadAt:
			if cap32 < ProtoV4 || n.dp == nil || len(f.Payload) < snapDeltaHeader {
				refuse(f)
				return
			}
			kind := f.Payload[0]
			gen := uint64(f.Payload[1]) | uint64(f.Payload[2])<<32
			chain := uint64(f.Payload[3]) | uint64(f.Payload[4])<<32
			words := f.Payload[snapDeltaHeader:]
			fresh := make([]workload.Key, len(words))
			for i, k := range words {
				fresh[i] = workload.Key(k)
			}
			switch kind {
			case snapKindDelta:
				// Append-order insert tail: verified against the carried
				// position before anything is logged. A mismatch means
				// the histories diverged (e.g. this node durably logged
				// writes its sibling never acked); refuse so the client
				// retries with a full snapshot — never apply a delta
				// that cannot prove continuity.
				if err := n.dp.InsertDelta(fresh, gen, chain); err != nil {
					n.logf("netrun: delta load refused: %v", err)
					if errors.Is(err, index.ErrCatchUpMismatch) {
						// The node's own state is untouched; keep serving.
						if !reply(Frame{Op: OpErr, ReqID: f.ReqID, Payload: []uint32{uint32(f.Op)}}) {
							return
						}
						continue
					}
					refuse(f)
					return
				}
			case snapKindFull:
				for i := 1; i < len(fresh); i++ {
					if fresh[i] < fresh[i-1] {
						n.logf("netrun: full load payload not sorted")
						refuse(f)
						return
					}
				}
				if err := n.dp.ResetTo(fresh, gen, chain); err != nil {
					n.logf("netrun: positioned load reset: %v", err)
					refuse(f)
					return
				}
			default:
				refuse(f)
				return
			}
			if !reply(Frame{Op: OpLoadAck, ReqID: f.ReqID, Payload: []uint32{uint32(len(fresh))}}) {
				return
			}
		case OpCountRange:
			if cap32 < ProtoV5 || n.upd == nil || len(f.Payload)%2 != 0 {
				refuse(f)
				return
			}
			nr := len(f.Payload) / 2
			if cap(rankBuf) < nr {
				rankBuf = make([]uint32, nr)
			}
			counts := rankBuf[:nr]
			for i := 0; i < nr; i++ {
				lo, hi := workload.Key(f.Payload[2*i]), workload.Key(f.Payload[2*i+1])
				counts[i] = uint32(n.upd.CountRange(lo, hi))
			}
			replyBuf = appendVarRun(replyBuf[:0], counts)
			if !reply(Frame{Op: OpCounts, ReqID: f.ReqID, Raw: replyBuf}) {
				return
			}
		case OpScanRange:
			if cap32 < ProtoV5 || n.upd == nil || len(f.Payload) != 3 {
				refuse(f)
				return
			}
			lo, hi := workload.Key(f.Payload[0]), workload.Key(f.Payload[1])
			max := int(f.Payload[2])
			if max == 0 {
				max = -1 // wire 0 = unlimited
			}
			scanBuf = n.upd.ScanRange(lo, hi, max, scanBuf[:0])
			if len(scanBuf) > MaxFrameWords {
				// The result cannot fit one frame: refuse just this
				// request and keep serving (the OpSnapshot convention) —
				// a truncated scan would silently be a wrong answer.
				n.logf("netrun: scan of %d keys exceeds the frame limit; refused", len(scanBuf))
				if !reply(Frame{Op: OpErr, ReqID: f.ReqID, Payload: []uint32{uint32(f.Op)}}) {
					return
				}
				continue
			}
			if cap(rankBuf) < len(scanBuf) {
				rankBuf = make([]uint32, len(scanBuf))
			}
			words := rankBuf[:len(scanBuf)]
			for i, k := range scanBuf {
				words[i] = uint32(k)
			}
			var err error
			replyBuf, err = appendDeltaRun(replyBuf[:0], words)
			if err != nil {
				n.logf("netrun: scan reply: %v", err)
				return
			}
			if !reply(Frame{Op: OpKeysDelta, ReqID: f.ReqID, Raw: replyBuf}) {
				return
			}
		case OpTopK:
			if cap32 < ProtoV5 || n.upd == nil || len(f.Payload) != 1 {
				refuse(f)
				return
			}
			k := int(f.Payload[0])
			if k > MaxFrameWords {
				n.logf("netrun: top-%d exceeds the frame limit; refused", k)
				if !reply(Frame{Op: OpErr, ReqID: f.ReqID, Payload: []uint32{uint32(f.Op)}}) {
					return
				}
				continue
			}
			scanBuf = n.upd.TopK(k, scanBuf[:0])
			// TopK yields descending keys; the wire run is ascending so
			// the delta codec applies — reverse while converting.
			if cap(rankBuf) < len(scanBuf) {
				rankBuf = make([]uint32, len(scanBuf))
			}
			words := rankBuf[:len(scanBuf)]
			for i, key := range scanBuf {
				words[len(scanBuf)-1-i] = uint32(key)
			}
			var err error
			replyBuf, err = appendDeltaRun(replyBuf[:0], words)
			if err != nil {
				n.logf("netrun: top-k reply: %v", err)
				return
			}
			if !reply(Frame{Op: OpKeysDelta, ReqID: f.ReqID, Raw: replyBuf}) {
				return
			}
		case OpMultiGet:
			if cap32 < ProtoV5 || n.upd == nil {
				refuse(f)
				return
			}
			decoded, err := decodeDeltaRun(f.Raw, deltaBuf)
			if err != nil {
				n.logf("netrun: multiget: %v", err)
				refuse(f)
				return
			}
			deltaBuf = decoded
			nq := len(decoded)
			if cap(keyBuf) < nq {
				keyBuf = make([]workload.Key, nq)
				intBuf = make([]int, nq)
			}
			keys, ints := keyBuf[:nq], intBuf[:nq]
			for i, k := range decoded {
				keys[i] = workload.Key(k)
			}
			n.upd.CountKeys(keys, ints)
			if cap(rankBuf) < nq {
				rankBuf = make([]uint32, nq)
			}
			counts := rankBuf[:nq]
			for i, c := range ints {
				counts[i] = uint32(c)
			}
			replyBuf = appendVarRun(replyBuf[:0], counts)
			if !reply(Frame{Op: OpCounts, ReqID: f.ReqID, Raw: replyBuf}) {
				return
			}
		case OpAddReplica:
			// Partition assignment. The payload names a slice of this
			// node's key universe plus its expected bounds, so a node
			// started from a different key file refuses instead of
			// silently serving wrong ranks. An already-assigned node
			// accepts only a matching assignment (idempotent confirm —
			// re-adding a drained replica takes this path).
			if n.upd == nil || len(f.Payload) != 4 {
				refuse(f)
				return
			}
			rb, bn := int(f.Payload[0]), int(f.Payload[1])
			lo, hi := workload.Key(f.Payload[2]), workload.Key(f.Payload[3])
			switch {
			case id.baseN > 0:
				if rb != id.rankBase || bn != id.baseN || lo != id.lo || hi != id.hi {
					n.logf("netrun: add-replica assignment [%d,+%d) does not match served identity [%d,+%d)",
						rb, bn, id.rankBase, id.baseN)
					if !reply(Frame{Op: OpErr, ReqID: f.ReqID, Payload: []uint32{uint32(f.Op)}}) {
						return
					}
					continue
				}
			case n.universe == nil || bn <= 0 || rb < 0 || rb+bn > len(n.universe) ||
				n.universe[rb] != lo || n.universe[rb+bn-1] != hi:
				n.logf("netrun: add-replica assignment [%d,+%d) invalid for a universe of %d keys",
					rb, bn, len(n.universe))
				if !reply(Frame{Op: OpErr, ReqID: f.ReqID, Payload: []uint32{uint32(f.Op)}}) {
					return
				}
				continue
			default:
				n.upd.Reset(n.universe[rb : rb+bn])
				n.ident.Store(&nodeIdent{rankBase: rb, baseN: bn, lo: lo, hi: hi})
			}
			if !reply(Frame{Op: OpMembAck, ReqID: f.ReqID, Payload: []uint32{uint32(n.upd.TotalKeys())}}) {
				return
			}
		case OpDrainReplica:
			// Nothing to tear down server-side — the client stops
			// routing here and detaches. Quiesce the compaction daemon
			// so the node idles clean before the ack.
			if n.upd == nil || len(f.Payload) != 0 {
				refuse(f)
				return
			}
			n.upd.Quiesce()
			if !reply(Frame{Op: OpMembAck, ReqID: f.ReqID, Payload: []uint32{uint32(n.upd.TotalKeys())}}) {
				return
			}
		case OpSplitPartition:
			// Retarget this node at one half of its split partition: keep
			// the live keys on the named side of splitKey, swap the
			// advertised identity, keep serving. The client holds its
			// membership pause, so no reads race the swap.
			if n.upd == nil || len(f.Payload) != 6 {
				refuse(f)
				return
			}
			newRB, newBN := int(f.Payload[0]), int(f.Payload[1])
			newLo, newHi := workload.Key(f.Payload[2]), workload.Key(f.Payload[3])
			splitKey, keepHi := workload.Key(f.Payload[4]), f.Payload[5] != 0
			if newBN <= 0 || newRB < id.rankBase || newRB+newBN > id.rankBase+id.baseN {
				n.logf("netrun: split half [%d,+%d) not within served identity [%d,+%d)",
					newRB, newBN, id.rankBase, id.baseN)
				if !reply(Frame{Op: OpErr, ReqID: f.ReqID, Payload: []uint32{uint32(f.Op)}}) {
					return
				}
				continue
			}
			live := n.upd.SnapshotKeys()
			cut := sort.Search(len(live), func(i int) bool { return live[i] > splitKey })
			kept := live[:cut]
			if keepHi {
				kept = live[cut:]
			}
			if len(kept) < newBN {
				// The live set must contain at least the half's static
				// keys; fewer means the split parameters don't describe
				// this node's state.
				n.logf("netrun: split kept %d live keys, below the half's %d static keys", len(kept), newBN)
				if !reply(Frame{Op: OpErr, ReqID: f.ReqID, Payload: []uint32{uint32(f.Op)}}) {
					return
				}
				continue
			}
			if n.dp != nil {
				// The durable position restarts at the half's generation
				// (live minus static) with an unknown chain: the next
				// positioned catch-up degrades to a full snapshot, but
				// the store never diverges from the served state.
				if err := n.dp.ResetTo(kept, uint64(len(kept)-newBN), 0); err != nil {
					n.logf("netrun: split reset: %v", err)
					refuse(f)
					return
				}
			} else {
				n.upd.Reset(kept)
			}
			n.ident.Store(&nodeIdent{rankBase: newRB, baseN: newBN, lo: newLo, hi: newHi})
			if !reply(Frame{Op: OpMembAck, ReqID: f.ReqID, Payload: []uint32{uint32(len(kept))}}) {
				return
			}
		default:
			refuse(f)
			return
		}
		if h := opHists[f.Op&31]; h != nil {
			h.Observe(time.Since(opStart))
		}
	}
}

// snapshotSince builds an OpSnapshotDelta payload answering a catch-up
// from (gen, chain): the logged insert tail when the store can prove
// continuity from that position, the full current key set otherwise.
// ok=false when neither fits a frame.
func (n *Node) snapshotSince(gen, chain uint64) (payload []uint32, ok bool) {
	if chain != 0 {
		if tail, curGen, curChain, ok := n.dp.DeltaSince(gen, chain); ok {
			if len(tail)+snapDeltaHeader <= MaxFrameWords {
				return appendSnapPayload(snapKindDelta, curGen, curChain, tail), true
			}
			// An oversized delta nearly always means an oversized full
			// set too, but fall through and let the full-path check
			// decide.
		}
	}
	snap, curGen, curChain := n.dp.Snapshot()
	if len(snap)+snapDeltaHeader > MaxFrameWords {
		return nil, false
	}
	return appendSnapPayload(snapKindFull, curGen, curChain, snap), true
}

func appendSnapPayload(kind uint32, gen, chain uint64, keys []workload.Key) []uint32 {
	payload := make([]uint32, snapDeltaHeader, snapDeltaHeader+len(keys))
	payload[0] = kind
	payload[1], payload[2] = uint32(gen), uint32(gen>>32)
	payload[3], payload[4] = uint32(chain), uint32(chain>>32)
	for _, k := range keys {
		payload = append(payload, uint32(k))
	}
	return payload
}

// batchRanker is the optional fast path an index can offer: batch rank
// resolution with the rank base folded into the output writes.
// index.SortedArray and index.Eytzinger implement it.
type batchRanker interface {
	RankBatch(qs []workload.Key, out []int, add int)
}

// sortedRanker is the sorted-batch fast path: rank resolution for an
// ascending query run via a streaming merge over the partition.
// index.SortedArray implements it natively; index.Eytzinger falls back
// to its interleaved batch descent.
type sortedRanker interface {
	RankSorted(qs []workload.Key, out []int, add int)
}

// ListenAndServe is the one-call node entry point: it serves the
// partition on addr until the process dies.
func ListenAndServe(addr string, partKeys []workload.Key, rankBase int) error {
	return ListenAndServeNode(addr, NewPartitionNode(partKeys, rankBase))
}

// ListenAndServeNode serves an already-configured node (cmd/dcnode
// builds one to set flags like ReadOnly first) on addr with the
// production defaults — log.Printf logging and a 30s reply-write
// timeout — filled in where the caller left them unset.
func ListenAndServeNode(addr string, node *Node) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("netrun: listen %s: %w", addr, err)
	}
	if node.Logf == nil {
		node.Logf = log.Printf
	}
	if node.WriteTimeout == 0 {
		node.WriteTimeout = 30 * time.Second
	}
	id := node.ident.Load()
	log.Printf("netrun: serving %d keys (rank base %d) on %s", id.baseN, id.rankBase, lis.Addr())
	return node.Serve(lis)
}
