package netrun

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/index"
	"repro/internal/workload"
)

// Node serves one index partition (or a full replica) over TCP: the
// slave side of the paper's Figure 2. A Node is safe for any number of
// concurrent client connections; each connection gets its own goroutine,
// and lookups against the static index need no locking.
type Node struct {
	idx      index.Index
	rankBase int
	lo, hi   workload.Key

	lis     net.Listener
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	closed  bool
	serving bool
	wg      sync.WaitGroup

	// Logf receives connection-level errors; nil silences them.
	Logf func(format string, args ...any)

	// WriteTimeout bounds each reply write so a client that stopped
	// reading cannot wedge a handler goroutine forever (a healthy
	// client's read loop always drains, so only dead peers hit it).
	// Zero disables the deadline.
	WriteTimeout time.Duration

	// protoCap caps the protocol version this node negotiates; 0 means
	// ProtoVersion. Tests set it to ProtoV1 to emulate an old node
	// byte-for-byte (4-word hello acks, v2 ops refused with OpErr) and
	// prove a v2 master interoperates.
	protoCap uint32
}

// NewNode wraps an index partition for serving. rankBase is the global
// rank of the partition's first key; lo/hi document the served key range
// for the hello handshake (hi is inclusive).
func NewNode(idx index.Index, rankBase int, lo, hi workload.Key) *Node {
	return &Node{
		idx:      idx,
		rankBase: rankBase,
		lo:       lo,
		hi:       hi,
		conns:    map[net.Conn]struct{}{},
	}
}

// NewPartitionNode builds a Method C-3 node (sorted-array partition).
func NewPartitionNode(partKeys []workload.Key, rankBase int) *Node {
	if len(partKeys) == 0 {
		panic("netrun: empty partition")
	}
	arr := index.NewSortedArray(partKeys, 0)
	return NewNode(arr, rankBase, partKeys[0], partKeys[len(partKeys)-1])
}

// Serve accepts connections on lis until Close. It returns the listener
// error that ended the accept loop (net.ErrClosed after Close). Only
// one Serve may run at a time: a second concurrent call is refused
// instead of silently overwriting the active listener (which Close
// would then fail to release). After Serve returns — say its listener
// died — the Node may Serve again on a fresh listener; this is the
// server half of a replica restart, which the client-side rejoin loop
// then re-verifies and readmits.
func (n *Node) Serve(lis net.Listener) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return errors.New("netrun: node closed")
	}
	if n.serving {
		n.mu.Unlock()
		return errors.New("netrun: node already serving (one Serve at a time)")
	}
	n.serving = true
	n.lis = lis
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		n.serving = false
		n.mu.Unlock()
	}()

	for {
		conn, err := lis.Accept()
		if err != nil {
			return err
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		n.conns[conn] = struct{}{}
		n.wg.Add(1)
		n.mu.Unlock()
		go n.handle(conn)
	}
}

// Close stops accepting, closes every live connection, and waits for
// handlers to drain.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	if n.lis != nil {
		n.lis.Close()
	}
	for c := range n.conns {
		c.Close()
	}
	n.mu.Unlock()
	n.wg.Wait()
}

// isServing reports whether an accept loop is currently running.
func (n *Node) isServing() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.serving
}

func (n *Node) logf(format string, args ...any) {
	if n.Logf != nil {
		n.Logf(format, args...)
	}
}

// armWrite applies the node's write deadline to conn, if configured.
func (n *Node) armWrite(conn net.Conn) {
	if n.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(n.WriteTimeout))
	}
}

func (n *Node) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		n.mu.Lock()
		delete(n.conns, conn)
		n.mu.Unlock()
		n.wg.Done()
		if r := recover(); r != nil {
			// A malformed frame must not take the node down.
			n.logf("netrun: handler panic: %v", r)
		}
	}()

	bc := newBufferedConn(conn)
	// Per-connection lookup scratch, reused across requests so the
	// steady state allocates nothing: keys (payload converted to
	// workload.Key), ranks as ints for the batch ranker, ranks on the
	// wire as uint32 (or delta+varint bytes for v2 sorted lookups).
	batcher, _ := n.idx.(batchRanker)
	streamer, _ := n.idx.(sortedRanker)
	cap32 := n.protoCap
	if cap32 == 0 {
		cap32 = ProtoVersion
	}
	var keyBuf []workload.Key
	var intBuf []int
	var rankBuf []uint32
	var deltaBuf []uint32 // decoded sorted keys
	var replyBuf []byte   // encoded OpRanksDelta payload
	for {
		f, err := bc.readFrame()
		if err != nil {
			if !errors.Is(err, net.ErrClosed) {
				n.logf("netrun: %v", err)
			}
			return
		}
		switch f.Op {
		case OpHello:
			payload := []uint32{
				uint32(n.rankBase), uint32(n.idx.N()), uint32(n.lo), uint32(n.hi),
			}
			// Version negotiation: a v2 client advertises its version
			// in the hello reqID; answer with min(client, node) as a
			// 5th word. v1 clients (reqID 0 or 1) get the 4-word ack
			// they expect, and a protoCap==ProtoV1 node always acks
			// 4 words — exactly what an old binary sends.
			if f.ReqID >= ProtoV2 && cap32 >= ProtoV2 {
				payload = append(payload, min(f.ReqID, cap32))
			}
			ack := Frame{Op: OpHelloAck, ReqID: f.ReqID, Payload: payload}
			n.armWrite(conn)
			if err := bc.writeFrame(ack); err != nil {
				n.logf("netrun: hello ack: %v", err)
				return
			}
			if err := bc.w.Flush(); err != nil {
				return
			}
		case OpLookupSorted:
			if cap32 < ProtoV2 {
				// A v1 node has no idea what this op is; refuse it the
				// way the old binary refuses any unknown op.
				n.logf("netrun: unexpected op %d", f.Op)
				n.armWrite(conn)
				_ = bc.writeFrame(Frame{Op: OpErr, ReqID: f.ReqID, Payload: []uint32{uint32(f.Op)}})
				_ = bc.w.Flush()
				return
			}
			decoded, err := decodeDeltaRun(f.Raw, deltaBuf)
			if err != nil {
				n.logf("netrun: sorted lookup: %v", err)
				n.armWrite(conn)
				_ = bc.writeFrame(Frame{Op: OpErr, ReqID: f.ReqID, Payload: []uint32{uint32(f.Op)}})
				_ = bc.w.Flush()
				return
			}
			deltaBuf = decoded
			nq := len(decoded)
			if cap(keyBuf) < nq {
				keyBuf = make([]workload.Key, nq)
				intBuf = make([]int, nq)
			}
			keys, ints := keyBuf[:nq], intBuf[:nq]
			for i, k := range decoded {
				keys[i] = workload.Key(k)
			}
			// The delta coding guarantees the run is ascending (deltas
			// are unsigned), so the streaming merge kernel applies
			// directly; indexes without one fall back to batch search.
			switch {
			case streamer != nil:
				streamer.RankSorted(keys, ints, n.rankBase)
			case batcher != nil:
				batcher.RankBatch(keys, ints, n.rankBase)
			default:
				for i, k := range keys {
					ints[i] = n.rankBase + n.idx.Rank(k)
				}
			}
			if cap(rankBuf) < nq {
				rankBuf = make([]uint32, nq)
			}
			ranks := rankBuf[:nq]
			for i, r := range ints {
				ranks[i] = uint32(r)
			}
			// Ascending keys make the ranks nondecreasing, so the
			// reply delta-codes too.
			replyBuf, err = appendDeltaRun(replyBuf[:0], ranks)
			if err != nil {
				n.logf("netrun: sorted ranks: %v", err)
				return
			}
			n.armWrite(conn)
			if err := bc.writeFrame(Frame{Op: OpRanksDelta, ReqID: f.ReqID, Raw: replyBuf}); err != nil {
				n.logf("netrun: ranks: %v", err)
				return
			}
			if err := bc.w.Flush(); err != nil {
				return
			}
		case OpLookup:
			nq := len(f.Payload)
			if cap(rankBuf) < nq {
				rankBuf = make([]uint32, nq)
			}
			ranks := rankBuf[:nq]
			if batcher != nil {
				if cap(keyBuf) < nq {
					keyBuf = make([]workload.Key, nq)
					intBuf = make([]int, nq)
				}
				keys, ints := keyBuf[:nq], intBuf[:nq]
				for i, k := range f.Payload {
					keys[i] = workload.Key(k)
				}
				batcher.RankBatch(keys, ints, n.rankBase)
				for i, r := range ints {
					ranks[i] = uint32(r)
				}
			} else {
				for i, k := range f.Payload {
					ranks[i] = uint32(n.rankBase + n.idx.Rank(workload.Key(k)))
				}
			}
			n.armWrite(conn)
			if err := bc.writeFrame(Frame{Op: OpRanks, ReqID: f.ReqID, Payload: ranks}); err != nil {
				n.logf("netrun: ranks: %v", err)
				return
			}
			if err := bc.w.Flush(); err != nil {
				return
			}
		default:
			n.logf("netrun: unexpected op %d", f.Op)
			n.armWrite(conn)
			_ = bc.writeFrame(Frame{Op: OpErr, ReqID: f.ReqID, Payload: []uint32{uint32(f.Op)}})
			_ = bc.w.Flush()
			return
		}
	}
}

// batchRanker is the optional fast path an index can offer: batch rank
// resolution with the rank base folded into the output writes.
// index.SortedArray and index.Eytzinger implement it.
type batchRanker interface {
	RankBatch(qs []workload.Key, out []int, add int)
}

// sortedRanker is the sorted-batch fast path: rank resolution for an
// ascending query run via a streaming merge over the partition.
// index.SortedArray implements it natively; index.Eytzinger falls back
// to its interleaved batch descent.
type sortedRanker interface {
	RankSorted(qs []workload.Key, out []int, add int)
}

// ListenAndServe is the one-call node entry point used by cmd/dcnode:
// it serves the partition on addr until the process dies.
func ListenAndServe(addr string, partKeys []workload.Key, rankBase int) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("netrun: listen %s: %w", addr, err)
	}
	node := NewPartitionNode(partKeys, rankBase)
	node.Logf = log.Printf
	node.WriteTimeout = 30 * time.Second
	log.Printf("netrun: serving %d keys (rank base %d) on %s", len(partKeys), rankBase, lis.Addr())
	return node.Serve(lis)
}
