package netrun

import (
	"errors"
	"fmt"
)

// Protocol v2's sorted-run payload codec: an ascending sequence of
// 32-bit values (keys of a sorted batch, or the nondecreasing ranks
// answering one) is stored as varint(count) followed by count varints —
// the first value, then successive deltas. Sorted batches make both
// directions monotone, so the deltas are small and unsigned by
// construction: uniform keys split over P partitions yield ~(range/P)/n
// average gaps, and rank deltas are bounded by the partition's key
// count over the batch — in the benchmark regime that is ~3 bytes per
// key outbound and ~1 byte per rank inbound versus fixed 4-byte words,
// on top of which the decoder's pass is strictly sequential.
//
// Protocol v5 adds a second, non-delta codec over the same varint
// primitive (appendVarRun/decodeVarRun) for payloads whose values are
// small but not monotone — the OpCounts replies.
//
// Hostile input rules (mirrored by FuzzDeltaPayload and
// FuzzVarRunPayload):
//   - a varint may span at most 5 bytes and must fit in 32 bits;
//   - the element count is validated against the remaining payload
//     length before any allocation (every element takes >= 1 byte), so
//     a forged count can never force an allocation larger than the
//     frame that carried it — the same guard dcindex.ReadKeys applies
//     to its chunked key reader;
//   - the running sum must stay within 32 bits;
//   - the payload must be consumed exactly (no trailing bytes).

var (
	errDeltaTruncated = errors.New("netrun: delta payload truncated")
	errDeltaOverflow  = errors.New("netrun: delta payload overflows 32 bits")
	errDeltaTrailing  = errors.New("netrun: delta payload has trailing bytes")
)

// appendUvarint32 appends v in LEB128 (at most 5 bytes).
//
//dc:noalloc
func appendUvarint32(dst []byte, v uint32) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// uvarint32 decodes one varint from b, returning the value and the
// number of bytes consumed; n == 0 reports truncated, overlong (> 5
// bytes), or out-of-range (> 32 bits) input.
//
//dc:noalloc
func uvarint32(b []byte) (v uint32, n int) {
	var x uint64
	var s uint
	for i := 0; i < len(b) && i < 5; i++ {
		c := b[i]
		if c < 0x80 {
			x |= uint64(c) << s
			if x > 0xFFFFFFFF {
				return 0, 0
			}
			return uint32(x), i + 1
		}
		x |= uint64(c&0x7F) << s
		s += 7
	}
	return 0, 0
}

// appendDeltaRun appends the v2 encoding of the nondecreasing run vals
// to dst and returns it. The caller guarantees monotonicity (sorted
// keys or their ranks); encode panics in race-detector-less production
// would corrupt the stream, so it is checked and reported as an error.
//
//dc:noalloc
func appendDeltaRun(dst []byte, vals []uint32) ([]byte, error) {
	dst = appendUvarint32(dst, uint32(len(vals)))
	prev := uint32(0)
	for i, v := range vals {
		if v < prev {
			return nil, fmt.Errorf("netrun: delta run not monotone at %d (%d after %d)", i, v, prev)
		}
		dst = appendUvarint32(dst, v-prev)
		prev = v
	}
	return dst, nil
}

// deltaRunCount reads and validates the element count of a v2 payload:
// it must decode, and it must not exceed the remaining byte count
// (each element occupies at least one byte). Returns the count and the
// header size.
func deltaRunCount(payload []byte) (count, hdr int, err error) {
	c, n := uvarint32(payload)
	if n == 0 {
		return 0, 0, errDeltaTruncated
	}
	// Compare in uint64: on 32-bit platforms int(c) would wrap negative
	// for counts >= 2^31 and slip past the guard straight into a
	// negative make() — the same convention frameReader applies to its
	// length word.
	if uint64(c) > uint64(len(payload)-n) {
		return 0, 0, fmt.Errorf("netrun: delta count %d exceeds payload (%d bytes left): forged frame", c, len(payload)-n)
	}
	return int(c), n, nil
}

// appendVarRun appends the v5 plain-varint encoding of vals to dst:
// varint(count) followed by each value as its own varint, with no
// delta accumulation. It is the payload of OpCounts — per-range key
// counts and per-key multiplicities are small but not monotone, so the
// delta codec's ascending-run precondition does not hold, while the
// values themselves still compress well (a multiplicity is almost
// always 0 or 1, one byte against a fixed four).
//
//dc:noalloc
func appendVarRun(dst []byte, vals []uint32) []byte {
	dst = appendUvarint32(dst, uint32(len(vals)))
	for _, v := range vals {
		dst = appendUvarint32(dst, v)
	}
	return dst
}

// decodeVarRun decodes a v5 plain-varint payload into out (grown as
// needed). The hostile-input rules match decodeDeltaRun exactly —
// count validated against the remaining bytes before any allocation,
// per-varint 5-byte/32-bit bounds, exact consumption — minus the
// monotonicity that plain values do not promise. Fuzzed by
// FuzzVarRunPayload.
//
//dc:noalloc
func decodeVarRun(payload []byte, out []uint32) ([]uint32, error) {
	count, hdr, err := deltaRunCount(payload)
	if err != nil {
		return nil, err
	}
	if cap(out) < count {
		out = make([]uint32, count)
	}
	out = out[:count]
	pos := hdr
	for i := 0; i < count; i++ {
		v, n := uvarint32(payload[pos:])
		if n == 0 {
			return nil, errDeltaTruncated
		}
		pos += n
		out[i] = v
	}
	if pos != len(payload) {
		return nil, errDeltaTrailing
	}
	return out, nil
}

// decodeDeltaRun decodes a full v2 payload into out (grown as needed,
// bounded by the deltaRunCount guard) and returns the values. Used by
// the node to recover a sorted key batch; the client decodes rank
// payloads inline in its read loop to scatter without a staging array.
//
//dc:noalloc
func decodeDeltaRun(payload []byte, out []uint32) ([]uint32, error) {
	count, hdr, err := deltaRunCount(payload)
	if err != nil {
		return nil, err
	}
	if cap(out) < count {
		out = make([]uint32, count)
	}
	out = out[:count]
	pos := hdr
	acc := uint64(0)
	for i := 0; i < count; i++ {
		d, n := uvarint32(payload[pos:])
		if n == 0 {
			return nil, errDeltaTruncated
		}
		pos += n
		acc += uint64(d)
		if acc > 0xFFFFFFFF {
			return nil, errDeltaOverflow
		}
		out[i] = uint32(acc)
	}
	if pos != len(payload) {
		return nil, errDeltaTrailing
	}
	return out, nil
}
