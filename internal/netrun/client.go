package netrun

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// ErrClusterClosed is returned by lookups on a Cluster after Close.
var ErrClusterClosed = errors.New("netrun: cluster closed")

// Cluster is the master side over TCP: it holds one connection per
// slave node, the delimiter routing table, and per-node send/receive
// machinery. LookupBatch routes each query to the node whose cache
// holds its sub-range and gathers replies — Figure 2 over real sockets.
//
// A Cluster is safe for any number of concurrent LookupBatch callers:
// requests are multiplexed over the shared sockets by request id, so
// callers pipeline instead of serializing behind a lock (the paper's
// Section 3.2 "multiple master nodes" remark, realized as multiple
// in-process masters sharing one connection set). Per-call dispatch
// state and frame buffers are pooled, so a master in steady state
// allocates nothing per batch.
//
// Failure model: the connection set is fail-fast and terminal. Any I/O
// error, per-op timeout, or protocol violation on any node connection
// moves the whole Cluster to a failed state — every in-flight and
// subsequent call returns the root-cause error (see Err) — because a
// partitioned index with a dead partition cannot answer arbitrary
// queries. Recovery is opt-in via Redial.
type Cluster struct {
	part  *core.Partitioning
	addrs []string
	batch int
	opt   DialOptions

	calls sync.Pool // *netCall
	pends sync.Pool // *pending
	reqID atomic.Uint32

	ep atomic.Pointer[epoch]

	mu     sync.Mutex // serializes Close and Redial
	closed bool
}

// epoch is one generation of node connections. A failure poisons the
// epoch, never the Cluster value itself: Redial installs a fresh epoch
// while calls racing the failure keep draining the old one.
type epoch struct {
	nodes  []*clusterNode
	wg     sync.WaitGroup
	failed chan struct{} // closed on first failure
	once   sync.Once
	err    error // root cause; written once before failed closes
}

// Err returns the epoch's terminal error, or nil while healthy.
func (ep *epoch) Err() error {
	select {
	case <-ep.failed:
		return ep.err
	default:
		return nil
	}
}

// fail records the first root-cause error, closes every connection
// (unblocking both loops of every node), and marks the nodes dead so
// enqueuers and send loops stop accepting work. Idempotent; concurrent
// callers block until the first completes, so ep.err is always set when
// fail returns.
func (ep *epoch) fail(err error) {
	ep.once.Do(func() {
		ep.err = err
		close(ep.failed)
		for _, n := range ep.nodes {
			n.conn.Close()
			n.mu.Lock()
			n.dead = true
			n.mu.Unlock()
			n.cond.Broadcast()
		}
	})
}

// clusterNode is one node connection plus its send queue and in-flight
// request table. The send loop owns the write half (bc.w/bc.fw), the
// read loop owns the read half (bc.r/bc.fr); mu guards the queue, the
// pending map, and the read-deadline decisions that depend on them.
type clusterNode struct {
	id   int
	conn net.Conn
	bc   *bufferedConn
	// meta from the hello handshake.
	rankBase int
	keyCount int

	opTimeout time.Duration // <= 0: deadlines disabled

	mu       sync.Mutex
	cond     *sync.Cond
	sendq    []*pending
	sendHead int
	pending  map[uint32]*pending
	dead     bool
}

// pending is one lookup frame's lifecycle: the caller accumulates keys
// and positions into it, the send loop writes and registers it, the
// read loop scatters the reply into out and completes it back to the
// issuing call's gather channel. Key/position capacity is recycled
// through the cluster's pending pool.
type pending struct {
	reqID uint32
	keys  []uint32
	pos   []int32
	out   []int
	err   error
	done  chan *pending
}

func (p *pending) complete(err error) {
	p.err = err
	p.done <- p
}

// netCall is one LookupBatch call's pooled dispatch state: per-node
// accumulating pendings plus the gather channel. The channel's capacity
// always covers the call's worst-case in-flight count, so the read
// loops never block delivering a completion (which would head-of-line
// block other callers' replies on that connection).
type netCall struct {
	done  chan *pending
	accum []*pending
}

// DialOptions configures Dial.
type DialOptions struct {
	// BatchKeys is the per-node message granularity (default 16384
	// keys = 64 KB, the paper's sweet spot).
	BatchKeys int
	// Timeout bounds each dial and the hello exchange (default 5s).
	Timeout time.Duration
	// OpTimeout bounds progress on each connection while lookups are in
	// flight: if a node neither accepts writes nor produces a reply for
	// this long, the cluster fails with a timeout error instead of
	// blocking forever on a hung node. Replies and new requests extend
	// the deadline, so slow-but-alive nodes are fine. Default 10s;
	// negative disables deadlines entirely.
	OpTimeout time.Duration
}

// Dial connects to one node address per partition of keys, performs the
// hello handshake, and cross-checks each node's advertised partition
// against the local routing table. addrs[i] must serve partition i.
func Dial(addrs []string, keys []workload.Key, opt DialOptions) (*Cluster, error) {
	if len(addrs) == 0 {
		return nil, errors.New("netrun: no node addresses")
	}
	if opt.BatchKeys <= 0 {
		opt.BatchKeys = 16384
	}
	if opt.BatchKeys > MaxFrameWords {
		opt.BatchKeys = MaxFrameWords
	}
	if opt.Timeout <= 0 {
		opt.Timeout = 5 * time.Second
	}
	if opt.OpTimeout == 0 {
		opt.OpTimeout = 10 * time.Second
	}
	part, err := core.NewPartitioning(keys, len(addrs))
	if err != nil {
		return nil, err
	}
	c := &Cluster{part: part, addrs: addrs, batch: opt.BatchKeys, opt: opt}
	nParts := len(part.Parts)
	c.calls.New = func() any { return &netCall{accum: make([]*pending, nParts)} }
	c.pends.New = func() any { return new(pending) }
	ep, err := c.dialEpoch()
	if err != nil {
		return nil, err
	}
	c.ep.Store(ep)
	return c, nil
}

// dialEpoch dials and handshakes every node, then starts the per-node
// send and read loops.
func (c *Cluster) dialEpoch() (*epoch, error) {
	ep := &epoch{failed: make(chan struct{})}
	opT := c.opt.OpTimeout
	if opT < 0 {
		opT = 0
	}
	for i, addr := range c.addrs {
		conn, err := net.DialTimeout("tcp", addr, c.opt.Timeout)
		if err != nil {
			closeNodes(ep.nodes)
			return nil, fmt.Errorf("netrun: dial node %d (%s): %w", i, addr, err)
		}
		n := &clusterNode{
			id:        i,
			conn:      conn,
			bc:        newBufferedConn(conn),
			opTimeout: opT,
			pending:   map[uint32]*pending{},
		}
		n.cond = sync.NewCond(&n.mu)
		if err := hello(n, c.part.Parts[i], c.opt.Timeout); err != nil {
			conn.Close()
			closeNodes(ep.nodes)
			return nil, fmt.Errorf("netrun: node %d (%s): %w", i, addr, err)
		}
		ep.nodes = append(ep.nodes, n)
	}
	for _, n := range ep.nodes {
		ep.wg.Add(2)
		go n.sendLoop(ep)
		go n.readLoop(ep)
	}
	return ep, nil
}

func closeNodes(nodes []*clusterNode) {
	for _, n := range nodes {
		n.conn.Close()
	}
}

func hello(n *clusterNode, want core.Partition, timeout time.Duration) error {
	n.conn.SetDeadline(time.Now().Add(timeout))
	defer n.conn.SetDeadline(time.Time{})
	if err := n.bc.writeFrame(Frame{Op: OpHello}); err != nil {
		return err
	}
	if err := n.bc.w.Flush(); err != nil {
		return err
	}
	f, err := n.bc.readFrame()
	if err != nil {
		return err
	}
	if f.Op != OpHelloAck || len(f.Payload) != 4 {
		return fmt.Errorf("bad hello ack (op %d, %d words)", f.Op, len(f.Payload))
	}
	n.rankBase = int(f.Payload[0])
	n.keyCount = int(f.Payload[1])
	if n.rankBase != want.RankBase || n.keyCount != len(want.Keys) {
		return fmt.Errorf("partition mismatch: node serves base=%d n=%d, routing table expects base=%d n=%d",
			n.rankBase, n.keyCount, want.RankBase, len(want.Keys))
	}
	// Shape alone doesn't prove the same key set (equal-size partitions
	// of any n keys have identical bases and counts): cross-check the
	// served key range the node advertises.
	lo, hi := workload.Key(f.Payload[2]), workload.Key(f.Payload[3])
	if len(want.Keys) > 0 && (lo != want.Keys[0] || hi != want.Keys[len(want.Keys)-1]) {
		return fmt.Errorf("key-set mismatch: node serves range [%d, %d], routing table expects [%d, %d] (different keys or seed?)",
			lo, hi, want.Keys[0], want.Keys[len(want.Keys)-1])
	}
	return nil
}

// enqueue hands p to the node's send loop, or completes it immediately
// with the epoch error if the node is already dead. The dead check and
// the append are under the same mutex the send loop's exit drain takes,
// so a pending can never be stranded in a queue nobody services.
func (n *clusterNode) enqueue(ep *epoch, p *pending) {
	n.mu.Lock()
	if n.dead {
		n.mu.Unlock()
		p.complete(ep.Err())
		return
	}
	n.sendq = append(n.sendq, p)
	n.mu.Unlock()
	n.cond.Signal()
}

// sendLoop writes queued frames to the node. Flushes coalesce: the
// bufio writer is flushed only when the queue drains, so pipelined
// batches from concurrent callers share syscalls. Each pending is
// registered in the in-flight table (and the read deadline armed)
// before its frame hits the wire, so a reply — or a failure drain —
// always finds it.
func (n *clusterNode) sendLoop(ep *epoch) {
	defer ep.wg.Done()
	unflushed := false
	for {
		n.mu.Lock()
		for n.sendHead == len(n.sendq) && !n.dead {
			if unflushed {
				n.mu.Unlock()
				unflushed = false
				if err := n.flush(); err != nil {
					ep.fail(fmt.Errorf("netrun: node %d write: %w", n.id, err))
				} else {
					n.armRead()
				}
				n.mu.Lock()
				continue
			}
			n.cond.Wait()
		}
		if n.dead {
			rest := n.sendq[n.sendHead:]
			n.sendq = nil
			n.sendHead = 0
			n.mu.Unlock()
			err := ep.Err()
			for _, p := range rest {
				p.complete(err)
			}
			return
		}
		p := n.sendq[n.sendHead]
		n.sendq[n.sendHead] = nil
		n.sendHead++
		if n.sendHead == len(n.sendq) {
			n.sendq = n.sendq[:0]
			n.sendHead = 0
		}
		n.pending[p.reqID] = p
		// Encode while still holding mu: the moment p is registered it
		// can complete (reply or failure drain) and be recycled by its
		// caller, so p.keys must not be read outside the lock. After
		// encode the frame lives in the writer's scratch, and the
		// blocking socket I/O below never touches p.
		buf, encErr := n.bc.fw.encode(Frame{Op: OpLookup, ReqID: p.reqID, Payload: p.keys})
		n.mu.Unlock()

		if encErr != nil {
			// Unreachable with BatchKeys clamped to MaxFrameWords, but
			// p is registered: fail and let the read loop's drain
			// complete it.
			ep.fail(fmt.Errorf("netrun: node %d: %w", n.id, encErr))
			continue
		}
		if n.opTimeout > 0 {
			n.conn.SetWriteDeadline(time.Now().Add(n.opTimeout))
		}
		if _, err := n.bc.w.Write(buf); err != nil {
			// p is registered: the read loop's drain completes it. The
			// next iteration sees dead and drains the rest of the queue.
			ep.fail(fmt.Errorf("netrun: node %d write: %w", n.id, err))
			continue
		}
		n.armRead()
		unflushed = true
	}
}

func (n *clusterNode) flush() error {
	if n.opTimeout > 0 {
		n.conn.SetWriteDeadline(time.Now().Add(n.opTimeout))
	}
	return n.bc.w.Flush()
}

// armRead extends the read deadline if requests are in flight; the send
// loop calls it after each write or flush makes progress toward the
// node, so the reply clock starts when the request actually moves, not
// when it is registered (a slow-but-successful write must not eat into
// the node's reply window). The map check is under mu so the invariant
// "deadline armed iff requests outstanding" holds against the read
// loop's clear-when-empty.
func (n *clusterNode) armRead() {
	if n.opTimeout <= 0 {
		return
	}
	n.mu.Lock()
	if len(n.pending) > 0 {
		n.conn.SetReadDeadline(time.Now().Add(n.opTimeout))
	}
	n.mu.Unlock()
}

// readLoop demultiplexes reply frames by request id to the issuing
// calls' gather channels. Any read error, timeout, or protocol
// violation fails the epoch; on exit every still-registered pending is
// completed with the root-cause error so no caller hangs.
func (n *clusterNode) readLoop(ep *epoch) {
	defer ep.wg.Done()
	defer n.drain(ep)
	for {
		f, err := n.bc.readFrame()
		if err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				err = fmt.Errorf("no reply within %v (node hung?): %w", n.opTimeout, err)
			}
			ep.fail(fmt.Errorf("netrun: node %d read: %w", n.id, err))
			return
		}
		switch f.Op {
		case OpRanks:
			n.mu.Lock()
			p, ok := n.pending[f.ReqID]
			if ok {
				delete(n.pending, f.ReqID)
				if n.opTimeout > 0 {
					if len(n.pending) == 0 {
						// Idle connections carry no deadline; the next
						// registration re-arms it.
						n.conn.SetReadDeadline(time.Time{})
					} else {
						n.conn.SetReadDeadline(time.Now().Add(n.opTimeout))
					}
				}
			}
			n.mu.Unlock()
			if !ok {
				ep.fail(fmt.Errorf("netrun: node %d sent unknown reqID %d (corrupt or stale stream)", n.id, f.ReqID))
				return
			}
			if len(f.Payload) != len(p.pos) {
				err := fmt.Errorf("netrun: node %d: %d ranks for %d keys", n.id, len(f.Payload), len(p.pos))
				ep.fail(err)
				p.complete(err) // removed from the table, so drain can't
				return
			}
			for i, pos := range p.pos {
				p.out[pos] = int(f.Payload[i])
			}
			p.complete(nil)
		case OpErr:
			code := uint32(0)
			if len(f.Payload) > 0 {
				code = f.Payload[0]
			}
			ep.fail(fmt.Errorf("netrun: node %d reported error %d", n.id, code))
			return
		default:
			ep.fail(fmt.Errorf("netrun: node %d sent op %d, want ranks", n.id, f.Op))
			return
		}
	}
}

// drain completes every registered pending with the epoch error. The
// epoch is always failed by the time the read loop exits.
func (n *clusterNode) drain(ep *epoch) {
	n.mu.Lock()
	ps := n.pending
	n.pending = map[uint32]*pending{}
	n.mu.Unlock()
	err := ep.Err()
	for _, p := range ps {
		p.complete(err)
	}
}

func (c *Cluster) getPending() *pending {
	p := c.pends.Get().(*pending)
	p.keys = p.keys[:0]
	p.pos = p.pos[:0]
	p.err = nil
	return p
}

func (c *Cluster) putPending(p *pending) {
	p.out = nil
	p.done = nil
	c.pends.Put(p)
}

// dispatch stamps p with a fresh request id and hands it to node ni.
func (c *Cluster) dispatch(ep *epoch, ni int, p *pending, out []int, done chan *pending) {
	p.reqID = c.reqID.Add(1)
	p.out = out
	p.done = done
	ep.nodes[ni].enqueue(ep, p)
}

// LookupBatch routes queries to the owning nodes in batches and returns
// global ranks in query order. Safe for concurrent callers.
func (c *Cluster) LookupBatch(queries []workload.Key) ([]int, error) {
	out := make([]int, len(queries))
	if err := c.LookupBatchInto(queries, out); err != nil {
		return nil, err
	}
	return out, nil
}

// LookupBatchInto is LookupBatch writing into a caller-provided slice
// (len(out) >= len(queries)) — with the pooled dispatch state this is
// the zero-allocation steady-state entry point. Concurrent callers
// multiplex over the shared node connections by request id; replies
// scatter directly into out from the connection read loops.
func (c *Cluster) LookupBatchInto(queries []workload.Key, out []int) error {
	if len(out) < len(queries) {
		return fmt.Errorf("netrun: out len %d < %d queries", len(out), len(queries))
	}
	ep := c.ep.Load()
	if ep == nil {
		return ErrClusterClosed
	}
	if err := ep.Err(); err != nil {
		return err
	}
	if len(queries) == 0 {
		return nil
	}

	nodes := ep.nodes
	nc := c.calls.Get().(*netCall)
	if len(nc.accum) < len(nodes) {
		nc.accum = make([]*pending, len(nodes))
	}
	// Worst-case in flight: one full batch per BatchKeys run plus one
	// final partial flush per node. Sizing the gather channel to cover
	// it means the read loops never block completing this call.
	if need := len(queries)/c.batch + len(nodes) + 1; cap(nc.done) < need {
		nc.done = make(chan *pending, need)
	}

	inflight := 0
	for i, q := range queries {
		ni := c.part.Route(q)
		p := nc.accum[ni]
		if p == nil {
			p = c.getPending()
			nc.accum[ni] = p
		}
		p.keys = append(p.keys, uint32(q))
		p.pos = append(p.pos, int32(i))
		if len(p.keys) >= c.batch {
			nc.accum[ni] = nil
			c.dispatch(ep, ni, p, out, nc.done)
			inflight++
		}
	}
	for ni, p := range nc.accum[:len(nodes)] {
		if p == nil {
			continue
		}
		nc.accum[ni] = nil
		c.dispatch(ep, ni, p, out, nc.done)
		inflight++
	}

	var firstErr error
	for inflight > 0 {
		p := <-nc.done
		inflight--
		if p.err != nil && firstErr == nil {
			firstErr = p.err
		}
		c.putPending(p)
	}
	c.calls.Put(nc)
	return firstErr
}

// Nodes returns the number of cluster nodes (partitions).
func (c *Cluster) Nodes() int { return len(c.part.Parts) }

// Err reports the cluster's terminal state: nil while healthy,
// ErrClusterClosed after Close, or the root-cause connection error
// after a failure (until Redial re-establishes the connections).
func (c *Cluster) Err() error {
	ep := c.ep.Load()
	if ep == nil {
		return ErrClusterClosed
	}
	return ep.Err()
}

// Redial tears down a failed connection set and dials a fresh one to
// the original addresses, re-running the hello verification. It is the
// opt-in recovery path — a Cluster never reconnects on its own — and
// errors if the cluster is healthy (nothing to recover) or closed.
func (c *Cluster) Redial() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClusterClosed
	}
	if old := c.ep.Load(); old != nil {
		if old.Err() == nil {
			return errors.New("netrun: Redial on a healthy cluster")
		}
		old.wg.Wait()
	}
	ep, err := c.dialEpoch()
	if err != nil {
		return err
	}
	c.ep.Store(ep)
	return nil
}

// Close fails the connection set with ErrClusterClosed (completing any
// in-flight calls with that error) and waits for the per-node loops to
// exit. Idempotent; Redial after Close is refused.
func (c *Cluster) Close() {
	c.mu.Lock()
	c.closed = true
	ep := c.ep.Swap(nil)
	c.mu.Unlock()
	if ep != nil {
		ep.fail(ErrClusterClosed)
		ep.wg.Wait()
	}
}
