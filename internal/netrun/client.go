package netrun

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// Cluster is the master side over TCP: it holds one connection per
// slave node, the delimiter routing table, and per-slave batch buffers.
// LookupBatch routes each query to the node whose cache holds its
// sub-range and gathers replies — Figure 2 over real sockets.
//
// A Cluster serializes LookupBatch callers (one socket per node; run
// several Clusters for parallel masters — the Section 3.2 remark), but
// the per-call dispatch state is pooled, so a master in steady state
// allocates nothing per batch.
type Cluster struct {
	part  *core.Partitioning
	nodes []clusterNode
	batch int

	calls sync.Pool // *netCall

	mu     sync.Mutex
	closed bool
	reqID  uint32
}

type clusterNode struct {
	conn net.Conn
	bc   *bufferedConn
	// meta from the hello handshake.
	rankBase int
	keyCount int
}

// pendingBatch is one dispatched frame awaiting its reply.
type pendingBatch struct {
	reqID uint32
	pos   []int32
}

// netCall is one LookupBatch call's dispatch scratch: per-node key and
// position accumulation, per-node FIFOs of in-flight batches (replies on
// a connection arrive in dispatch order), and a free list that recycles
// position slices within and across calls.
type netCall struct {
	keys    [][]uint32
	pos     [][]int32
	queue   [][]pendingBatch
	posFree [][]int32
}

func newNetCall(nodes int) *netCall {
	return &netCall{
		keys:  make([][]uint32, nodes),
		pos:   make([][]int32, nodes),
		queue: make([][]pendingBatch, nodes),
	}
}

func (nc *netCall) getPos() []int32 {
	if n := len(nc.posFree); n > 0 {
		p := nc.posFree[n-1]
		nc.posFree = nc.posFree[:n-1]
		return p[:0]
	}
	return nil
}

// DialOptions configures Dial.
type DialOptions struct {
	// BatchKeys is the per-node message granularity (default 16384
	// keys = 64 KB, the paper's sweet spot).
	BatchKeys int
	// Timeout bounds each dial and the hello exchange (default 5s).
	Timeout time.Duration
}

// Dial connects to one node address per partition of keys, performs the
// hello handshake, and cross-checks each node's advertised partition
// against the local routing table. addrs[i] must serve partition i.
func Dial(addrs []string, keys []workload.Key, opt DialOptions) (*Cluster, error) {
	if len(addrs) == 0 {
		return nil, errors.New("netrun: no node addresses")
	}
	if opt.BatchKeys <= 0 {
		opt.BatchKeys = 16384
	}
	if opt.Timeout <= 0 {
		opt.Timeout = 5 * time.Second
	}
	part, err := core.NewPartitioning(keys, len(addrs))
	if err != nil {
		return nil, err
	}
	c := &Cluster{part: part, batch: opt.BatchKeys}
	c.calls.New = func() any { return newNetCall(len(addrs)) }
	for i, addr := range addrs {
		conn, err := net.DialTimeout("tcp", addr, opt.Timeout)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("netrun: dial node %d (%s): %w", i, addr, err)
		}
		node := clusterNode{conn: conn, bc: newBufferedConn(conn)}
		if err := hello(&node, part.Parts[i], opt.Timeout); err != nil {
			conn.Close()
			c.Close()
			return nil, fmt.Errorf("netrun: node %d (%s): %w", i, addr, err)
		}
		c.nodes = append(c.nodes, node)
	}
	return c, nil
}

func hello(n *clusterNode, want core.Partition, timeout time.Duration) error {
	n.conn.SetDeadline(time.Now().Add(timeout))
	defer n.conn.SetDeadline(time.Time{})
	if err := n.bc.writeFrame(Frame{Op: OpHello}); err != nil {
		return err
	}
	if err := n.bc.w.Flush(); err != nil {
		return err
	}
	f, err := n.bc.readFrame()
	if err != nil {
		return err
	}
	if f.Op != OpHelloAck || len(f.Payload) != 4 {
		return fmt.Errorf("bad hello ack (op %d, %d words)", f.Op, len(f.Payload))
	}
	n.rankBase = int(f.Payload[0])
	n.keyCount = int(f.Payload[1])
	if n.rankBase != want.RankBase || n.keyCount != len(want.Keys) {
		return fmt.Errorf("partition mismatch: node serves base=%d n=%d, routing table expects base=%d n=%d",
			n.rankBase, n.keyCount, want.RankBase, len(want.Keys))
	}
	// Shape alone doesn't prove the same key set (equal-size partitions
	// of any n keys have identical bases and counts): cross-check the
	// served key range the node advertises.
	lo, hi := workload.Key(f.Payload[2]), workload.Key(f.Payload[3])
	if len(want.Keys) > 0 && (lo != want.Keys[0] || hi != want.Keys[len(want.Keys)-1]) {
		return fmt.Errorf("key-set mismatch: node serves range [%d, %d], routing table expects [%d, %d] (different keys or seed?)",
			lo, hi, want.Keys[0], want.Keys[len(want.Keys)-1])
	}
	return nil
}

// LookupBatch routes queries to the owning nodes in batches and returns
// global ranks in query order.
func (c *Cluster) LookupBatch(queries []workload.Key) ([]int, error) {
	out := make([]int, len(queries))
	if err := c.LookupBatchInto(queries, out); err != nil {
		return nil, err
	}
	return out, nil
}

// LookupBatchInto is LookupBatch writing into a caller-provided slice
// (len(out) >= len(queries)) — with the pooled dispatch state this is
// the zero-allocation steady-state entry point.
func (c *Cluster) LookupBatchInto(queries []workload.Key, out []int) error {
	if len(out) < len(queries) {
		return fmt.Errorf("netrun: out len %d < %d queries", len(out), len(queries))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return errors.New("netrun: cluster closed")
	}
	if len(queries) == 0 {
		return nil
	}

	nc := c.calls.Get().(*netCall)
	defer func() {
		// Reset on every exit path (including errors) so a dirty call
		// state never re-enters the pool; position slices go back to
		// the free list.
		for i := range nc.keys {
			nc.keys[i] = nc.keys[i][:0]
			if nc.pos[i] != nil {
				nc.pos[i] = nc.pos[i][:0]
			}
			for _, pb := range nc.queue[i] {
				nc.posFree = append(nc.posFree, pb.pos)
			}
			nc.queue[i] = nc.queue[i][:0]
		}
		c.calls.Put(nc)
	}()

	flush := func(ni int) error {
		if len(nc.keys[ni]) == 0 {
			return nil
		}
		c.reqID++
		id := c.reqID
		f := Frame{Op: OpLookup, ReqID: id, Payload: nc.keys[ni]}
		if err := c.nodes[ni].bc.writeFrame(f); err != nil {
			return err
		}
		if err := c.nodes[ni].bc.w.Flush(); err != nil {
			return err
		}
		// The frame is fully written, so the key buffer recycles now;
		// positions wait on the node's reply FIFO.
		nc.keys[ni] = nc.keys[ni][:0]
		nc.queue[ni] = append(nc.queue[ni], pendingBatch{reqID: id, pos: nc.pos[ni]})
		nc.pos[ni] = nc.getPos()
		return nil
	}

	for i, q := range queries {
		ni := c.part.Route(q)
		nc.keys[ni] = append(nc.keys[ni], uint32(q))
		nc.pos[ni] = append(nc.pos[ni], int32(i))
		if len(nc.keys[ni]) >= c.batch {
			if err := flush(ni); err != nil {
				return err
			}
		}
	}
	for ni := range c.nodes {
		if err := flush(ni); err != nil {
			return err
		}
	}

	// Gather: responses per node arrive in the order sent on that
	// connection, so draining each node's FIFO covers everything.
	for ni := range c.nodes {
		for _, pb := range nc.queue[ni] {
			f, err := c.nodes[ni].bc.readFrame()
			if err != nil {
				return fmt.Errorf("netrun: node %d reply: %w", ni, err)
			}
			if f.Op != OpRanks {
				return fmt.Errorf("netrun: node %d sent op %d, want ranks", ni, f.Op)
			}
			if f.ReqID != pb.reqID {
				return fmt.Errorf("netrun: node %d sent reqID %d, want %d", ni, f.ReqID, pb.reqID)
			}
			if len(f.Payload) != len(pb.pos) {
				return fmt.Errorf("netrun: node %d: %d ranks for %d keys", ni, len(f.Payload), len(pb.pos))
			}
			for i, p := range pb.pos {
				out[p] = int(f.Payload[i])
			}
		}
	}
	return nil
}

// Nodes returns the number of connected nodes.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// Close closes all node connections. Idempotent.
func (c *Cluster) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for _, n := range c.nodes {
		if n.conn != nil {
			n.conn.Close()
		}
	}
}
