package netrun

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// Cluster is the master side over TCP: it holds one connection per
// slave node, the delimiter routing table, and per-slave batch buffers.
// LookupBatch routes each query to the node whose cache holds its
// sub-range and gathers replies — Figure 2 over real sockets.
//
// A Cluster serializes LookupBatch callers (the master is a sequential
// dispatcher, as in the paper); run several Clusters for parallel
// masters (the Section 3.2 remark).
type Cluster struct {
	part  *core.Partitioning
	nodes []clusterNode
	batch int

	mu     sync.Mutex
	closed bool
	reqID  uint32
}

type clusterNode struct {
	conn net.Conn
	bc   bufferedConn
	// meta from the hello handshake.
	rankBase int
	keyCount int
}

// DialOptions configures Dial.
type DialOptions struct {
	// BatchKeys is the per-node message granularity (default 16384
	// keys = 64 KB, the paper's sweet spot).
	BatchKeys int
	// Timeout bounds each dial and the hello exchange (default 5s).
	Timeout time.Duration
}

// Dial connects to one node address per partition of keys, performs the
// hello handshake, and cross-checks each node's advertised partition
// against the local routing table. addrs[i] must serve partition i.
func Dial(addrs []string, keys []workload.Key, opt DialOptions) (*Cluster, error) {
	if len(addrs) == 0 {
		return nil, errors.New("netrun: no node addresses")
	}
	if opt.BatchKeys <= 0 {
		opt.BatchKeys = 16384
	}
	if opt.Timeout <= 0 {
		opt.Timeout = 5 * time.Second
	}
	part, err := core.NewPartitioning(keys, len(addrs))
	if err != nil {
		return nil, err
	}
	c := &Cluster{part: part, batch: opt.BatchKeys}
	for i, addr := range addrs {
		conn, err := net.DialTimeout("tcp", addr, opt.Timeout)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("netrun: dial node %d (%s): %w", i, addr, err)
		}
		node := clusterNode{conn: conn, bc: newBufferedConn(conn)}
		if err := hello(&node, part.Parts[i], opt.Timeout); err != nil {
			conn.Close()
			c.Close()
			return nil, fmt.Errorf("netrun: node %d (%s): %w", i, addr, err)
		}
		c.nodes = append(c.nodes, node)
	}
	return c, nil
}

func hello(n *clusterNode, want core.Partition, timeout time.Duration) error {
	n.conn.SetDeadline(time.Now().Add(timeout))
	defer n.conn.SetDeadline(time.Time{})
	if err := WriteFrame(n.bc.w, Frame{Op: OpHello}); err != nil {
		return err
	}
	if err := n.bc.w.Flush(); err != nil {
		return err
	}
	f, err := ReadFrame(n.bc.r)
	if err != nil {
		return err
	}
	if f.Op != OpHelloAck || len(f.Payload) != 4 {
		return fmt.Errorf("bad hello ack (op %d, %d words)", f.Op, len(f.Payload))
	}
	n.rankBase = int(f.Payload[0])
	n.keyCount = int(f.Payload[1])
	if n.rankBase != want.RankBase || n.keyCount != len(want.Keys) {
		return fmt.Errorf("partition mismatch: node serves base=%d n=%d, routing table expects base=%d n=%d",
			n.rankBase, n.keyCount, want.RankBase, len(want.Keys))
	}
	return nil
}

// LookupBatch routes queries to the owning nodes in batches and returns
// global ranks in query order.
func (c *Cluster) LookupBatch(queries []workload.Key) ([]int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errors.New("netrun: cluster closed")
	}
	out := make([]int, len(queries))
	if len(queries) == 0 {
		return out, nil
	}

	// Per-node buffers of keys and original positions.
	bufK := make([][]uint32, len(c.nodes))
	bufP := make([][]int32, len(c.nodes))

	type inflight struct {
		node int
		pos  []int32
	}
	pending := map[uint32]inflight{}

	flush := func(ni int) error {
		if len(bufK[ni]) == 0 {
			return nil
		}
		c.reqID++
		id := c.reqID
		f := Frame{Op: OpLookup, ReqID: id, Payload: bufK[ni]}
		if err := WriteFrame(c.nodes[ni].bc.w, f); err != nil {
			return err
		}
		if err := c.nodes[ni].bc.w.Flush(); err != nil {
			return err
		}
		pending[id] = inflight{node: ni, pos: bufP[ni]}
		bufK[ni] = nil
		bufP[ni] = nil
		return nil
	}

	for i, q := range queries {
		ni := c.part.Route(q)
		bufK[ni] = append(bufK[ni], uint32(q))
		bufP[ni] = append(bufP[ni], int32(i))
		if len(bufK[ni]) >= c.batch {
			if err := flush(ni); err != nil {
				return nil, err
			}
		}
	}
	for ni := range c.nodes {
		if err := flush(ni); err != nil {
			return nil, err
		}
	}

	// Gather: responses per node arrive in the order sent on that
	// connection, so reading node-by-node drains everything.
	byNode := make(map[int][]uint32)
	for id, inf := range pending {
		byNode[inf.node] = append(byNode[inf.node], id)
	}
	for ni, ids := range byNode {
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		for range ids {
			f, err := ReadFrame(c.nodes[ni].bc.r)
			if err != nil {
				return nil, fmt.Errorf("netrun: node %d reply: %w", ni, err)
			}
			if f.Op != OpRanks {
				return nil, fmt.Errorf("netrun: node %d sent op %d, want ranks", ni, f.Op)
			}
			inf, ok := pending[f.ReqID]
			if !ok || inf.node != ni {
				return nil, fmt.Errorf("netrun: node %d sent unknown reqID %d", ni, f.ReqID)
			}
			if len(f.Payload) != len(inf.pos) {
				return nil, fmt.Errorf("netrun: node %d: %d ranks for %d keys", ni, len(f.Payload), len(inf.pos))
			}
			for i, p := range inf.pos {
				out[p] = int(f.Payload[i])
			}
			delete(pending, f.ReqID)
		}
	}
	if len(pending) != 0 {
		return nil, fmt.Errorf("netrun: %d batches unanswered", len(pending))
	}
	return out, nil
}

// Nodes returns the number of connected nodes.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// Close closes all node connections. Idempotent.
func (c *Cluster) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for _, n := range c.nodes {
		if n.conn != nil {
			n.conn.Close()
		}
	}
}
