package netrun

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admin"
	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// ErrClusterClosed is returned by lookups on a Cluster after Close.
var ErrClusterClosed = errors.New("netrun: cluster closed")

// Cluster is the master side over TCP: it holds a replica group per
// index partition (one or more node connections each), the delimiter
// routing table, and per-connection send/receive machinery. LookupBatch
// routes each query to a healthy replica of the partition whose cache
// holds its sub-range and gathers replies — Figure 2 over real sockets,
// with the replica-group availability pattern layered on top.
//
// A Cluster is safe for any number of concurrent LookupBatch callers:
// requests are multiplexed over the shared sockets by request id, so
// callers pipeline instead of serializing behind a lock (the paper's
// Section 3.2 "multiple master nodes" remark, realized as multiple
// in-process masters sharing one connection set). Per-call dispatch
// state and frame buffers are pooled, so a master in steady state
// allocates nothing per batch.
//
// Failure model: failures are per replica, and the failure domain is
// the replica group. Any I/O error, per-op timeout, or protocol
// violation on a node connection poisons only that replica: it is
// dropped from its partition's group, its in-flight requests are
// re-dispatched to a surviving replica of the same partition, and a
// background rejoin loop re-dials it with capped exponential backoff
// (re-running the hello partition verification) until it rejoins or the
// epoch ends — callers never observe a single-replica failure. Only
// when a partition loses its last replica does the epoch become
// terminal: every in-flight and subsequent call returns the root cause
// (see Err), because a partitioned index with an unreachable partition
// cannot answer arbitrary queries. Recovery from a terminal failure is
// opt-in via Redial; per-replica liveness and traffic counters are
// reported by Health.
//
// Write model (protocol v3): Insert/InsertBatch route keys to the
// owning partition and fan each write out to every healthy v3 replica
// of that group; a replica that dies mid-write leaves the group (the
// survivors define the state) and reloads a sibling's snapshot when it
// rejoins, before it serves reads again. Pre-v3 replicas never receive
// writes, and stop serving a partition's lookups once this client has
// written to it. The client folds its per-partition insert counts into
// the nodes' static rank bases on the read path, so global ranks stay
// exact under a single writing client; Redial reuses the counters (the
// nodes retain their inserts), but a node that *restarted* across a
// terminal failure comes back stale and is only re-synced by the
// rejoin path, not by Redial.
type Cluster struct {
	// part is the live routing table. It is swapped atomically by
	// SplitPartition (under the pause write lock, with no data call in
	// flight), so every data-path call loads it once and works against
	// one consistent table.
	part atomic.Pointer[core.Partitioning]
	// groups is the configured replica address list, one slice per
	// partition: what dialEpoch (re)dials. Membership ops rewrite it.
	groups [][]string //dc:guardedby mu
	batch  int
	opt    DialOptions
	// helloVer is the protocol version this client advertises:
	// ProtoVersion, capped by DialOptions.MaxVersion. Every connection
	// negotiates min(helloVer, node version).
	helloVer uint32

	calls sync.Pool // *netCall
	pends sync.Pool // *pending
	reqID atomic.Uint32

	// ins[p] counts keys inserted into partition p: bumped once every
	// replica acked one of this client's writes, and seeded at dial
	// time from the nodes' advertised live counts (v3 hello), which
	// covers writes made by earlier, since-departed clients. Nodes
	// answer with their static rank base, so the client adds the
	// preceding partitions' counters when scattering replies — the
	// client-side half of keeping global ranks exact as the index
	// grows. Counters persist across Redial (they describe the nodes,
	// which outlive the connections). A concurrently-writing second
	// client remains invisible between dials, so exact global ranks
	// under writes assume one writing client at a time.
	ins []atomic.Int64

	ep atomic.Pointer[epoch]

	// deltaCatchups counts rejoins completed via the v4 positioned
	// delta path (as opposed to full-snapshot loads); tests assert the
	// cheap path actually ran.
	deltaCatchups atomic.Int64

	// Gray-failure knobs, precomputed from DialOptions at dial time
	// (immutable afterwards). hedgeEarnMilli/hedgeBurstMilli are the
	// per-group token bucket parameters in milli-tokens; maxPending is
	// the per-connection admission cap (0 = unbounded).
	hedgeEarnMilli  int64
	hedgeBurstMilli int64
	maxPending      int

	// tel is the client-side telemetry registry: the read loops record
	// one scatter-path latency sample per reply frame into the per-op
	// histograms in opHist (series dc_client_op_ns{op=...}). Exposed by
	// Telemetry and the auto-mounted admin endpoint (DialOptions.Admin).
	tel    *telemetry.Registry
	opHist [pkMax]*telemetry.Histogram
	// adm is non-nil when DialOptions.Admin.Addr mounted an endpoint.
	adm *admin.Server //dc:guardedby mu

	// pause is the membership gate: every public data-path call holds
	// the read side for its full duration, so SplitPartition can take
	// the write side to quiesce the data plane while the nodes retarget
	// and the routing table is rewritten. Uncontended outside a split —
	// an RWMutex read lock is two atomic ops, which preserves the data
	// path's zero-allocation property. Lock order: mu before pause.
	pause sync.RWMutex

	mu     sync.Mutex // serializes Close, Redial, and the membership ops
	closed bool       //dc:guardedby mu
}

// insBefore sums the keys inserted into partitions < part: the dynamic
// rank-base correction applied to that partition's replies.
func (c *Cluster) insBefore(part int) int {
	s := 0
	for j := 0; j < part; j++ {
		s += int(c.ins[j].Load())
	}
	return s
}

// epoch is one generation of node connections. A terminal failure
// poisons the epoch, never the Cluster value itself: Redial installs a
// fresh epoch while calls racing the failure keep draining the old one.
type epoch struct {
	c      *Cluster
	groups []*replicaGroup
	wg     sync.WaitGroup
	failed chan struct{} // closed on terminal failure
	once   sync.Once
	err    error // root cause; written once before failed closes
	// hedger re-dispatches read frames that outlive their replica's
	// latency quantile to a healthy sibling. Nil unless
	// DialOptions.HedgeQuantile enabled hedging for this client.
	hedger *hedger
}

// replicaGroup is one partition's replica set: the configured addresses
// and the currently healthy member connections. members shrinks when a
// replica fails and grows back when its rejoin loop restores it; the
// round-robin cursor spreads load across whoever is healthy. A member
// may be catching up (see clusterNode.catchingUp): it is listed so
// writes reach it (via its hold queue) but is skipped by every read
// until the catch-up load lands. addrs/stats grow under AddReplica and
// shrink under DrainReplica (live membership), so both are guarded by
// mu past the single-threaded dial; per-replica state is keyed by the
// *replicaStats pointer, which survives member churn.
type replicaGroup struct {
	part    int
	addrs   []string        //dc:guardedby mu
	stats   []*replicaStats //dc:guardedby mu
	mu      sync.Mutex
	cursor  int            //dc:guardedby mu
	members []*clusterNode //dc:guardedby mu
	// writes counts insert chunks fanned out to this group, bumped in
	// the same mu section as the fan-out itself. The rejoin path gates
	// on it rather than on the acked counters (Cluster.ins): a write
	// is dangerous to a plainly-readmitted replica the moment it is
	// *issued* — the acked counter lags by a network round trip, and a
	// replica installed in that window would permanently miss the
	// in-flight write.
	writes int //dc:guardedby mu

	// budget is the partition's hedge token bucket in milli-tokens:
	// each primary read dispatch earns Cluster.hedgeEarnMilli (capped
	// at hedgeBurstMilli), each hedge spends 1000. Rate-proportional
	// and clock-free, so a gray partition can never amplify its own
	// overload — hedges are a bounded fraction of real traffic.
	budget atomic.Int64

	// admitCh/waiters implement bounded pending-queue admission: when
	// every eligible replica is at Cluster.maxPending outstanding
	// frames, read dispatchers park on admitCh until a reply or sweep
	// frees a slot (with a short safety-valve timeout against lost
	// wakeups). Writes are exempt — bounding the fan-out under g.mu
	// would stall the write path on its slowest replica.
	admitCh chan struct{}
	waiters atomic.Int32
}

// earnHedge credits the bucket for one primary read dispatch.
func (g *replicaGroup) earnHedge(c *Cluster) {
	if c.hedgeEarnMilli <= 0 {
		return
	}
	for {
		cur := g.budget.Load()
		next := cur + c.hedgeEarnMilli
		if next > c.hedgeBurstMilli {
			next = c.hedgeBurstMilli
		}
		if next == cur || g.budget.CompareAndSwap(cur, next) {
			return
		}
	}
}

// takeHedge spends one hedge token; false means the budget is exhausted
// and the hedge must be suppressed.
func (g *replicaGroup) takeHedge() bool {
	for {
		cur := g.budget.Load()
		if cur < 1000 {
			return false
		}
		if g.budget.CompareAndSwap(cur, cur-1000) {
			return true
		}
	}
}

// waitAdmit parks a read dispatcher until admission capacity may exist
// again: a freed slot, epoch death, or a 1ms safety valve (wakeups are
// best-effort, the caller re-checks by retrying the enqueue).
func (g *replicaGroup) waitAdmit(ep *epoch) {
	g.waiters.Add(1)
	defer g.waiters.Add(-1)
	t := time.NewTimer(time.Millisecond)
	defer t.Stop()
	select {
	case <-g.admitCh:
	case <-ep.failed:
	case <-t.C:
	}
}

// admitFreed wakes one admission waiter, if any. Non-blocking.
func (g *replicaGroup) admitFreed() {
	if g.waiters.Load() > 0 {
		select {
		case g.admitCh <- struct{}{}:
		default:
		}
	}
}

// Lock ordering: a write fan-out holds g.mu while it locks each
// member's n.mu to enqueue; failNode and the rejoin path take the locks
// in the same order. The reverse — acquiring g.mu with n.mu held —
// would deadlock against them, and lockguard rejects it. pickFor claims
// probe slots (replicaStats.mu) under g.mu, so stats nest inside the
// group lock for the same reason:
//
//dc:lockorder replicaGroup.mu clusterNode.mu
//dc:lockorder replicaGroup.mu replicaStats.mu

// Probation states for latency-scored outlier ejection. A replica that
// keeps answering but much slower than its siblings walks healthy →
// suspect → ejected (reads shed, writes keep flowing — slow is not
// dead) → probing (paced real batches test recovery) → readmitted
// (back to healthy, counted in readmits). Hard I/O failures bypass
// this machine entirely: they go through failNode/rejoin as before.
const (
	rsHealthy = int32(iota)
	rsSuspect
	rsEjected
	rsProbing
)

// replicaStats counts one replica address's lifecycle events across
// member churn within an epoch, and carries its latency score: a
// windowed quantile feeding the hedge delay, an EWMA feeding the
// relative-outlier ejection score, and the probation state machine.
type replicaStats struct {
	dispatched atomic.Uint64
	failures   atomic.Uint64
	rejoins    atomic.Uint64
	// forceFull demands a full-snapshot catch-up on the next rejoin.
	// Set when a delta catch-up was refused (the histories diverged —
	// e.g. the replica durably logged writes this client never saw
	// acked); sticky until a catch-up of any kind succeeds. It lives on
	// the stats (not the member) because the decision must survive the
	// failed member's teardown: a catch-up cannot switch from delta to
	// full mid-admission — the hold queue and a later snapshot cut
	// would double-apply writes — so the whole admission is retried.
	forceFull atomic.Bool

	// Gray-failure counters (see ReplicaHealth).
	hedges       atomic.Uint64 // hedges dispatched because this replica lagged
	ejections    atomic.Uint64
	probes       atomic.Uint64
	readmits     atomic.Uint64
	budgetDenied atomic.Uint64 // hedges suppressed by an empty token bucket

	// state/ewmaNs/hedgeNs/samples are written under mu but published
	// atomically so pickFor (under g.mu), the hedger, siblings scoring
	// against this replica, and Health read them without taking mu.
	state   atomic.Int32
	ewmaNs  atomic.Int64
	hedgeNs atomic.Int64 // current hedge delay: windowed quantile estimate
	samples atomic.Int64

	mu sync.Mutex
	// window is a ring of the last reply latencies (read kinds only);
	// every few samples it is re-sorted into the quantile estimate.
	window [64]int64 //dc:guardedby mu
	// consecBad/goodProbes are the state machine's hysteresis counters;
	// probeDelay/nextProbe pace probe batches with the same jittered
	// exponential backoff the rejoin loop uses, so probation retries
	// cannot thundering-herd a recovering replica.
	consecBad  int           //dc:guardedby mu
	goodProbes int           //dc:guardedby mu
	probeDelay time.Duration //dc:guardedby mu
	nextProbe  time.Time     //dc:guardedby mu
}

// tryProbe reports whether an ejected replica is due a probe batch and,
// when it is, claims the probe slot: the next probe is pushed out by the
// jittered backoff (doubled on each slow probe by the observe path) and
// the replica moves to the probing state.
func (s *replicaStats) tryProbe(now time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if now.Before(s.nextProbe) {
		return false
	}
	s.nextProbe = now.Add(jitterBackoff(s.probeDelay))
	s.state.Store(rsProbing)
	s.probes.Add(1)
	return true
}

// pickFor returns a healthy member eligible for p, round-robin.
// Eligibility is a per-kind minimum protocol version (see
// minVersionFor): catching-up members take no traffic (their state is
// mid-load); snapshot requests need a v3 peer; the v5 query ops need a
// v5 peer; and once this client has written to the partition, pre-v3
// members are excluded from lookups — they never receive writes, so
// they can no longer prove they hold the full key set. The second
// result distinguishes "group empty" (nil, true — the epoch is
// failing, wait for the root cause) from "members exist but none can
// serve p" (nil, false — fail the request with a clear error, the
// epoch is fine).
//
// Latency-ejected members are skipped like catching-up ones, with two
// availability escapes: a due probe routes one real batch at the
// ejected member (how it earns readmission), and when every otherwise-
// eligible member is ejected the least-recently-considered one serves
// anyway — ejection trades latency, never availability. excl names a
// member to avoid: the hedger passes the slow origin so a hedge always
// lands on a sibling (nil everywhere else).
func (g *replicaGroup) pickFor(c *Cluster, p *pending, excl *clusterNode) (n *clusterNode, empty bool) {
	minV := c.minVersionFor(g, p)
	now := time.Now()
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.members) == 0 {
		return nil, true
	}
	var fallback *clusterNode
	for range g.members {
		g.cursor++
		m := g.members[g.cursor%len(g.members)]
		if m == excl || m.catchingUp || m.version < minV {
			continue
		}
		if s := m.stats(); s.state.Load() >= rsEjected {
			if fallback == nil {
				fallback = m
			}
			if s.tryProbe(now) {
				return m, false
			}
			continue
		}
		return m, false
	}
	if fallback != nil && excl == nil {
		// Every eligible member is ejected (e.g. both replicas of a
		// 2-way group went gray at once): serve from one rather than
		// fail — slower-but-correct beats unavailable. A hedge (excl
		// set) has no such duty; its origin is still working.
		return fallback, false
	}
	return nil, false
}

// describeIneligible explains why a non-empty group had no member
// eligible for a request — the difference matters to an operator:
// a syncing replica resolves itself in moments, while a written-to
// partition whose last writable replica died stays read-unavailable
// (and may have lost acked writes) until a protocol-v3 replica rejoins
// and catches up.
func (g *replicaGroup) describeIneligible(c *Cluster, p *pending) string {
	minV := c.minVersionFor(g, p)
	g.mu.Lock()
	defer g.mu.Unlock()
	syncing := 0
	for _, m := range g.members {
		if m.catchingUp {
			syncing++
		}
	}
	switch {
	case minV >= ProtoV5 && syncing == 0:
		return "no protocol-v5 replica is available for the range/scan/top-k/multiget ops (rank lookups still work; upgrade the partition's nodes or cap the client with MaxVersion)"
	case syncing > 0:
		return "its only eligible replica is still syncing a sibling snapshot (momentary; retry)"
	case c.ins[g.part].Load() > 0:
		return "it absorbed writes and then lost its last writable protocol-v3 replica; the remaining pre-v3 replicas are stale, and acked writes may be lost until a v3 replica rejoins and catches up"
	default:
		return "no protocol-v3 replica is available to serve it"
	}
}

// remove drops n from the member list and reports how many members
// remain.
func (g *replicaGroup) remove(n *clusterNode) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i, m := range g.members {
		if m == n {
			g.members = append(g.members[:i], g.members[i+1:]...)
			break
		}
	}
	return len(g.members)
}

// ReplicaHealth is one replica's liveness and traffic counters within
// the current epoch (see Cluster.Health). The JSON shape is part of the
// versioned ClusterStats tree (see StatsSchemaVersion).
type ReplicaHealth struct {
	// Partition is the partition this replica serves.
	Partition int `json:"partition"`
	// Addr is the replica's configured address.
	Addr string `json:"addr"`
	// Healthy reports whether the replica is currently a live group
	// member (accepting dispatches).
	Healthy bool `json:"healthy"`
	// Syncing reports that the replica is a member mid-catch-up: it
	// receives writes (via its hold queue) but serves no reads until
	// the sibling snapshot load completes.
	Syncing bool `json:"syncing"`
	// Proto is the protocol version this replica's live connection
	// negotiated (0 while the replica is down). Mid-rollout it tells an
	// operator which replicas can serve the v5 query ops.
	Proto uint32 `json:"proto"`
	// Dispatched counts lookup frames handed to this replica.
	Dispatched uint64 `json:"dispatched"`
	// Failures counts times the replica was dropped from its group.
	Failures uint64 `json:"failures"`
	// Rejoins counts times the background rejoin loop restored it.
	Rejoins uint64 `json:"rejoins"`
	// State is the probation state machine's view of the replica:
	// "healthy", "suspect", "ejected", or "probing" (see the rs*
	// constants). Always "healthy" unless DialOptions.Ejection.Factor
	// enabled latency-scored ejection.
	State string `json:"state"`
	// LatencyEWMA is the smoothed reply latency of this replica's read
	// frames (0 until it has served one).
	LatencyEWMA time.Duration `json:"latency_ewma_ns"`
	// Hedges counts read frames re-dispatched to a sibling because this
	// replica sat on them past its latency quantile.
	Hedges uint64 `json:"hedges"`
	// Ejections/Probes/Readmits count probation transitions: reads shed
	// from the replica, paced probe batches sent to it while ejected,
	// and full readmissions.
	Ejections uint64 `json:"ejections"`
	Probes    uint64 `json:"probes"`
	Readmits  uint64 `json:"readmits"`
	// BudgetDenied counts hedges suppressed because the partition's
	// token bucket was empty — sustained growth means the hedge budget
	// is the binding constraint, not the slow replica.
	BudgetDenied uint64 `json:"budget_denied"`
}

// stateName maps a probation state to its ReplicaHealth string.
func stateName(s int32) string {
	switch s {
	case rsSuspect:
		return "suspect"
	case rsEjected:
		return "ejected"
	case rsProbing:
		return "probing"
	default:
		return "healthy"
	}
}

// Err returns the epoch's terminal error, or nil while healthy.
func (ep *epoch) Err() error {
	select {
	case <-ep.failed:
		return ep.err
	default:
		return nil
	}
}

// fail records the first root-cause error, then closes every member
// connection and marks every member dead so enqueuers, send loops, and
// rejoin loops stop. The pendings stranded on each member are collected
// and completed by that member's failNode call (triggered by its read
// loop observing the closed connection). Idempotent; concurrent callers
// block until the first completes, so ep.err is always set when fail
// returns.
func (ep *epoch) fail(err error) {
	ep.once.Do(func() {
		ep.err = err
		close(ep.failed)
		for _, g := range ep.groups {
			g.mu.Lock()
			members := append([]*clusterNode(nil), g.members...)
			g.mu.Unlock()
			for _, n := range members {
				n.conn.Close()
				n.mu.Lock()
				n.dead = true
				n.mu.Unlock()
				n.cond.Broadcast()
			}
		}
	})
}

// clusterNode is one replica connection plus its send queue and
// in-flight request table. The send loop owns the write half (bc.w/
// bc.fw), the read loop owns the read half (bc.r/bc.fr); mu guards the
// queue, the pending map, and the read-deadline decisions that depend
// on them.
type clusterNode struct {
	g *replicaGroup
	// st is the replica's lifecycle counters and latency score, held
	// directly (not via an index into g.stats): live membership grows
	// and shrinks the group's parallel slices, and a direct pointer
	// cannot go stale the way a slot index can.
	st   *replicaStats
	addr string
	conn net.Conn
	bc   *bufferedConn
	// meta from the hello handshake.
	rankBase int
	keyCount int
	// liveCount is the node's current key count from a v3 hello's 6th
	// word (0 on older acks): baseline plus every insert it absorbed.
	liveCount int
	// chain is the node's durable fold position from a v4 hello's words
	// 7-8 (0: not a durable node, or unknown history). Together with
	// liveCount-keyCount (= the durable generation) it identifies the
	// exact insert history the node holds, which is what makes the
	// positioned delta catch-up safe to offer.
	chain uint64
	// version is the negotiated protocol version for this connection
	// (ProtoV1 against old nodes — sorted pendings are then sent as
	// plain OpLookup frames, so failover across mixed-version replica
	// groups just re-encodes).
	version uint32

	opTimeout time.Duration // <= 0: deadlines disabled
	failOnce  sync.Once     // failNode runs its body exactly once

	// catchingUp and holdq are guarded by g.mu (they are membership
	// state): while a rejoining replica loads a sibling's snapshot it
	// is a member — so write fan-outs see it — but reads skip it and
	// its insert pendings queue in holdq, flushed onto the connection
	// after the OpLoad so the load cannot wipe them.
	catchingUp bool       //dc:guardedby g.mu
	holdq      []*pending //dc:guardedby g.mu

	mu       sync.Mutex
	cond     *sync.Cond
	sendq    []sendReq           //dc:guardedby mu
	sendHead int                 //dc:guardedby mu
	pending  map[uint32]inflight //dc:guardedby mu
	dead     bool                //dc:guardedby mu
}

// sendReq is one queue entry: a pending plus the request id this
// particular registration uses. Ids are per-registration, not
// per-pending, because a hedged pending is registered on two
// connections at once — each enqueue stamps a fresh id, so a failover
// restamp on one connection can never race the other's encode.
type sendReq struct {
	p     *pending
	reqID uint32
}

// inflight is one registered request: the pending plus its send
// timestamp, from which the read loop derives the reply-latency sample
// feeding the hedge quantile and the ejection score.
type inflight struct {
	p      *pending
	sentAt time.Time
}

// deregisterLocked removes a registration, maintains the invariant
// "read deadline armed iff requests outstanding", and wakes an
// admission waiter now that a queue slot freed.
//
//dc:holds n.mu
func (n *clusterNode) deregisterLocked(reqID uint32) {
	delete(n.pending, reqID)
	if n.opTimeout > 0 {
		if len(n.pending) == 0 {
			// Idle connections carry no deadline; the next registration
			// re-arms it.
			n.conn.SetReadDeadline(time.Time{})
		} else {
			n.conn.SetReadDeadline(time.Now().Add(n.opTimeout))
		}
	}
	n.g.admitFreed()
}

func (n *clusterNode) stats() *replicaStats { return n.st }

// Pending kinds: lookups scatter rank replies; inserts, snapshots, and
// catch-up loads are the v3 write-path frames with their own reply and
// failover semantics.
const (
	pkLookup = iota
	// pkInsert fans out to every v3 member of the owning group. When a
	// member dies with one queued or in flight, the pending completes
	// successfully — the member left the group, and the survivors
	// define its state; it catches up from a sibling on rejoin.
	pkInsert
	// pkSnapshot asks any v3 member for its full key set (replica
	// catch-up source). Fails over like a lookup.
	pkSnapshot
	// pkLoad pushes a snapshot at one specific (catching-up) member; it
	// never fails over — the target dying aborts that catch-up attempt.
	pkLoad
	// pkSnapshotSince (v4) asks a durable sibling for the insert tail
	// after a rejoiner's position; keys holds the 4 request words
	// (generation, chain) and the reply overwrites them with the
	// OpSnapshotDelta payload. Same failover semantics as pkSnapshot.
	pkSnapshotSince
	// pkLoadAt (v4) pushes an OpSnapshotDelta-shaped payload (5 header
	// words + keys) at one specific member; same semantics as pkLoad.
	pkLoadAt
	// pkCount (v5) carries range endpoint pairs in keys; the OpCounts
	// reply overwrites keys with the per-range counts and the issuing
	// call sums them across partitions via pos (a range can span
	// several). Fails over like a lookup — the request words survive
	// until a reply lands.
	pkCount
	// pkScan (v5) carries [lo, hi, limit] in keys; the OpKeysDelta
	// reply overwrites keys with the partition's ascending key run.
	// Fails over like a lookup.
	pkScan
	// pkTopK (v5) carries [k] in keys; the OpKeysDelta reply overwrites
	// keys with the partition's top-k run, ascending on the wire. Fails
	// over like a lookup.
	pkTopK
	// pkMultiGet (v5) carries an ascending key run; the OpCounts reply
	// scatters each key's multiplicity straight into out via pos/
	// posBase (a key's multiplicity is partition-local, so exactly one
	// pending writes each slot). Fails over like a lookup.
	pkMultiGet
	// pkDrain (v6) quiesces one specific member ahead of its removal;
	// like pkLoad it is pinned — the target dying aborts the drain. The
	// OpMembAck reply carries the node's live key count.
	pkDrain
	// pkSplit (v6) retargets one specific member at half of its split
	// partition; pinned like pkLoad. Issued only under the membership
	// pause, so no read or write can race the identity swap.
	pkSplit

	// pkMax bounds the kind space (sizing per-kind tables).
	pkMax
)

// pkMetricName names each pending kind's client-side latency series
// (dc_client_op_ns{op=...}); empty means the kind is not recorded.
var pkMetricName = [pkMax]string{
	pkLookup:        "lookup",
	pkInsert:        "insert",
	pkSnapshot:      "snapshot",
	pkLoad:          "load",
	pkSnapshotSince: "snapshot_since",
	pkLoadAt:        "load_at",
	pkCount:         "count_range",
	pkScan:          "scan_range",
	pkTopK:          "top_k",
	pkMultiGet:      "multi_get",
	pkDrain:         "drain_replica",
	pkSplit:         "split_partition",
}

// minVersionFor is the protocol version a member must have negotiated
// to serve p: the v5 query ops need a v5 peer, snapshots (and every
// read against a written-to partition) need v3, plain lookups ride any
// version.
func (c *Cluster) minVersionFor(g *replicaGroup, p *pending) uint32 {
	switch p.kind {
	case pkDrain, pkSplit:
		return ProtoV6
	case pkCount, pkScan, pkTopK, pkMultiGet:
		return ProtoV5
	case pkSnapshot:
		return ProtoV3
	}
	if c.ins[g.part].Load() > 0 {
		return ProtoV3
	}
	return ProtoV1
}

// pending is one request frame's lifecycle: the caller accumulates keys
// and positions into it, the send loop writes and registers it, the
// read loop scatters or records the reply and completes it back to the
// issuing call's gather channel — or, when its replica dies first, the
// failover path re-dispatches it per its kind. Key/position capacity is
// recycled through the cluster's pending pool.
//
// Hedging puts one pending on up to two connections at once, which
// forces three invariants the single-dispatch code never needed:
//
//   - keys (the request words) are immutable from dispatch until the
//     last reference drops; replies stage their payload in the separate
//     reply buffer instead of overwriting keys, so the losing
//     registration can still encode/validate against them.
//   - claimed elects exactly one resolver: whichever reply, refusal,
//     sweep, or routing failure wins the CompareAndSwap scatters the
//     result (or records the error) and completes p to the gather
//     channel; everyone else just drops their copy. A pending therefore
//     completes exactly once no matter how many replicas raced.
//   - refs counts the live owners (the issuing gather plus each
//     dispatch chain); the pending returns to the pool only when the
//     count hits zero, so a straggling reply from a slow replica can
//     never scribble on a recycled object.
type pending struct {
	kind int
	keys []uint32
	pos  []int32
	out  []int
	// reply stages payload-carrying replies (counts, scans, top-k,
	// snapshots) for the issuing call's gather loop.
	reply []uint32
	// sorted marks keys as an ascending run: eligible for the v2
	// delta-coded frames when the connection negotiated them (a v1
	// connection just sends OpLookup — the keys are the same).
	sorted bool
	// contig means the run maps to the contiguous out range starting
	// at posBase (the sorted dispatch's runs preserve query order), so
	// the reply scatters sequentially and pos stays unused.
	contig  bool
	posBase int
	// chunk links an insert fan-out pending back to its write chunk,
	// so InsertBatch can credit the rank-base counters per fully-acked
	// chunk (see insChunk). Nil for every other kind.
	chunk *insChunk
	err   error
	done  chan *pending

	claimed atomic.Bool
	refs    atomic.Int32
	// hedged caps re-dispatch amplification at one hedge per pending
	// (set by the hedger when it fires, checked by send loops so a
	// hedge is never itself hedged).
	hedged atomic.Bool
}

// claim elects the caller as p's resolver; exactly one claim per
// lifecycle succeeds.
func (p *pending) claim() bool { return p.claimed.CompareAndSwap(false, true) }

// release drops one reference; the last one recycles p.
func (c *Cluster) release(p *pending) {
	if p.refs.Add(-1) == 0 {
		c.putPending(p)
	}
}

// finish terminates one dispatch chain with err: it completes p if this
// chain wins the claim, and drops the chain's reference either way.
func (c *Cluster) finish(p *pending, err error) {
	if p.claim() {
		p.complete(err)
	}
	c.release(p)
}

// hedgeable reports whether a pending kind may be re-dispatched while
// its original is still in flight. Only the idempotent read ops are:
// writes keep the exactly-once fan-out semantics (a hedged insert could
// double-apply), and the catch-up kinds are pinned to one member's FIFO
// position by the snapshot protocol.
func hedgeable(kind int) bool {
	switch kind {
	case pkLookup, pkCount, pkScan, pkTopK, pkMultiGet:
		return true
	}
	return false
}

// insChunk is one insert chunk's fan-out accounting: the chunk is
// credited to the partition's rank-base counter only when every
// fan-out pending completed without error. Partial failures (another
// partition erroring, a replica group losing its last v3 member)
// therefore never skew the counters for writes that were not fully
// acknowledged, and writes that WERE fully acknowledged are credited
// even when a later chunk errors. Touched only by the issuing
// InsertBatch's gather loop — no locking.
type insChunk struct {
	part      int
	n         int // keys in the chunk
	remaining int // fan-out pendings not yet gathered
	failed    bool
}

func (p *pending) complete(err error) {
	p.err = err
	p.done <- p
}

// netCall is one LookupBatch call's pooled dispatch state: per-group
// accumulating pendings plus the gather channel. The channel's capacity
// always covers the call's worst-case in-flight count, so the read
// loops never block delivering a completion (which would head-of-line
// block other callers' replies on that connection).
type netCall struct {
	done  chan *pending
	accum []*pending
	// sort is the pooled radix scratch for DialOptions.SortedBatches
	// callers (unsorted input sorted client-side to join the sorted
	// pipeline).
	sort core.RadixScratch
}

// HedgeOptions groups the hedged-read knobs (see DialOptions.Hedging).
//
//dc:knobs ../../README.md
type HedgeOptions struct {
	// Quantile (0 < q < 1, e.g. 0.99) enables hedged reads: a read
	// frame still unanswered after its replica's q-quantile reply
	// latency is re-dispatched to a healthy sibling, first valid reply
	// wins, the loser's reply is discarded by request id. 0 disables
	// hedging. Writes are never hedged.
	Quantile float64
	// MinDelay floors the adaptive hedge delay (default 10ms); it is
	// also the cold-start delay before a replica has latency history.
	MinDelay time.Duration
	// Budget is the hedge tokens earned per dispatched read frame
	// (default 0.1 ≈ at most ~10% extra load from hedging); negative
	// means no replenishment. Burst caps the token bucket (default 16).
	Budget float64
	Burst  int
}

// EjectOptions groups the latency-outlier ejection knobs (see
// DialOptions.Ejection).
//
//dc:knobs ../../README.md
type EjectOptions struct {
	// Factor (> 1) enables latency-scored outlier ejection: a replica
	// whose read latency stays above Factor times its best sibling's
	// EWMA (and above MinLatency) walks the probation state machine and
	// stops taking reads until paced probe batches come back fast. 0
	// disables ejection. Ejected replicas still receive every write.
	Factor float64
	// MinLatency is the absolute floor below which a replica is never
	// considered an outlier regardless of ratios (default 1ms).
	MinLatency time.Duration
	// ProbeBackoff/ProbeMaxBackoff pace the probe batches an ejected
	// replica receives (defaults: the Rejoin values).
	ProbeBackoff    time.Duration
	ProbeMaxBackoff time.Duration
}

// RejoinOptions groups the failed-replica re-dial knobs (see
// DialOptions.Rejoin).
//
//dc:knobs ../../README.md
type RejoinOptions struct {
	// Backoff is the initial delay before a failed replica is re-dialed
	// (default 100ms); each failed attempt doubles it up to MaxBackoff
	// (default 3s), jittered so correlated failures do not re-dial in
	// lockstep.
	Backoff    time.Duration
	MaxBackoff time.Duration
}

// AdminOptions groups the operations-plane endpoint knobs (see
// DialOptions.Admin).
//
//dc:knobs ../../README.md
type AdminOptions struct {
	// Addr, when non-empty, mounts the admin HTTP endpoint (metrics,
	// stats, health, membership verbs) on that listen address for the
	// cluster's lifetime (":0" picks a free port; see Cluster.Admin).
	// The endpoint has no auth — bind it to loopback or an operator
	// network.
	Addr string
}

// DialOptions configures Dial. The nested groups (Hedging, Ejection,
// Rejoin, Admin) are the canonical knobs; the flat fields of the same
// meaning are deprecated aliases kept for old callers — a zero nested
// field inherits its flat alias at dial time, so setting either works
// and zero values keep their old defaults.
//
//dc:knobs ../../README.md
type DialOptions struct {
	// Hedging configures hedged reads.
	Hedging HedgeOptions
	// Ejection configures latency-outlier ejection.
	Ejection EjectOptions
	// Rejoin configures failed-replica re-dial backoff.
	Rejoin RejoinOptions
	// Admin configures the operations-plane HTTP endpoint.
	Admin AdminOptions

	// BatchKeys is the per-node message granularity (default 16384
	// keys = 64 KB, the paper's sweet spot).
	BatchKeys int
	// Timeout bounds each dial and the hello exchange (default 5s).
	Timeout time.Duration
	// OpTimeout bounds progress on each connection while lookups are in
	// flight: if a replica neither accepts writes nor produces a reply
	// for this long, it is treated as failed (its in-flight requests
	// fail over to a surviving replica) instead of blocking the master
	// forever. Replies and new requests extend the deadline, so
	// slow-but-alive nodes are fine. Default 10s; negative disables
	// deadlines entirely.
	OpTimeout time.Duration
	// Replicas groups a flat address list into replica sets: addrs
	// holds Replicas consecutive addresses per partition, so
	// len(addrs) must be a multiple of it. Default (and minimum) 1.
	// Ignored when the grouped "addr|addr" syntax is used.
	Replicas int
	// RejoinBackoff is the initial delay before a failed replica is
	// re-dialed.
	//
	// Deprecated: use Rejoin.Backoff.
	RejoinBackoff time.Duration
	// RejoinMaxBackoff caps the rejoin backoff.
	//
	// Deprecated: use Rejoin.MaxBackoff.
	RejoinMaxBackoff time.Duration
	// SortedBatches opts unsorted callers into the sorted-batch
	// pipeline: batches that are not already ascending are sorted by
	// key (pooled radix sort) before dispatch, so they too get the
	// one-sweep routing, the nodes' streaming kernels, and the v2
	// delta-coded frames. Ascending batches are always auto-detected
	// and take the sorted path regardless of this flag.
	SortedBatches bool
	// MaxVersion caps the protocol version this client advertises in
	// the hello exchange; 0 means ProtoVersion (the highest this build
	// speaks). Capping below ProtoV5 emulates an older client
	// byte-for-byte — connections then negotiate at most this version,
	// and the v5 query ops (CountRange/ScanRange/TopK/MultiGet) fail
	// with a descriptive error while rank lookups keep working.
	// Interop tests and operators staging a rollout use it.
	MaxVersion uint32

	// HedgeQuantile enables hedged reads.
	//
	// Deprecated: use Hedging.Quantile.
	HedgeQuantile float64
	// HedgeMinDelay floors the adaptive hedge delay.
	//
	// Deprecated: use Hedging.MinDelay.
	HedgeMinDelay time.Duration
	// HedgeBudget and HedgeBurst bound hedge amplification.
	//
	// Deprecated: use Hedging.Budget and Hedging.Burst.
	HedgeBudget float64
	HedgeBurst  int
	// EjectFactor enables latency-scored outlier ejection.
	//
	// Deprecated: use Ejection.Factor.
	EjectFactor float64
	// EjectMinLatency floors the outlier test.
	//
	// Deprecated: use Ejection.MinLatency.
	EjectMinLatency time.Duration
	// ProbeBackoff/ProbeMaxBackoff pace probation probes.
	//
	// Deprecated: use Ejection.ProbeBackoff and Ejection.ProbeMaxBackoff.
	ProbeBackoff    time.Duration
	ProbeMaxBackoff time.Duration
	// MaxPending bounds the outstanding frames (queued plus in flight)
	// per replica connection; read dispatch blocks politely when every
	// eligible replica is at the cap, so a gray partition degrades to
	// slower-but-correct instead of unbounded queue growth. Default
	// 1024; negative disables admission control.
	MaxPending int
	// Dialer overrides the TCP dial for every node connection (nil uses
	// net.Dialer). The context carries the dial timeout/abort. This is
	// the client-side fault-injection seam: tests and the dcq -chaos
	// drill wrap the returned conn in a faultnet profile.
	Dialer func(ctx context.Context, addr string) (net.Conn, error)
}

// GroupAddrs expands a dial address list into one replica address set
// per partition. Two syntaxes are accepted:
//
//   - grouped: any element may pack a partition's replicas as
//     "host:a|host:b|host:c" — element i lists partition i's replicas
//     (groups may differ in size; replicas is ignored);
//   - flat: with no "|" separators, addrs holds replicas consecutive
//     addresses per partition (replicas <= 1 means one each).
func GroupAddrs(addrs []string, replicas int) ([][]string, error) {
	if len(addrs) == 0 {
		return nil, errors.New("netrun: no node addresses")
	}
	grouped := false
	for _, a := range addrs {
		if strings.Contains(a, "|") {
			grouped = true
			break
		}
	}
	if grouped {
		out := make([][]string, len(addrs))
		for i, a := range addrs {
			for _, r := range strings.Split(a, "|") {
				r = strings.TrimSpace(r)
				if r == "" {
					return nil, fmt.Errorf("netrun: partition %d has an empty replica address in %q", i, a)
				}
				out[i] = append(out[i], r)
			}
		}
		return out, nil
	}
	if replicas <= 1 {
		out := make([][]string, len(addrs))
		for i, a := range addrs {
			out[i] = []string{a}
		}
		return out, nil
	}
	if len(addrs)%replicas != 0 {
		return nil, fmt.Errorf("netrun: %d addresses do not divide into groups of %d replicas", len(addrs), replicas)
	}
	out := make([][]string, 0, len(addrs)/replicas)
	for i := 0; i < len(addrs); i += replicas {
		out = append(out, addrs[i:i+replicas])
	}
	return out, nil
}

// Dial connects to every replica of every partition of keys, performs
// the hello handshake on each, and cross-checks each node's advertised
// partition against the local routing table. addrs is one address per
// partition, extended to replica sets by DialOptions.Replicas or the
// grouped "addr|addr" syntax (see GroupAddrs); every replica of
// partition i must serve partition i.
func Dial(addrs []string, keys []workload.Key, opt DialOptions) (*Cluster, error) {
	groups, err := GroupAddrs(addrs, opt.Replicas)
	if err != nil {
		return nil, err
	}
	if opt.BatchKeys <= 0 {
		opt.BatchKeys = 16384
	}
	if opt.BatchKeys > MaxFrameWords {
		opt.BatchKeys = MaxFrameWords
	}
	if opt.Timeout <= 0 {
		opt.Timeout = 5 * time.Second
	}
	if opt.OpTimeout == 0 {
		opt.OpTimeout = 10 * time.Second
	}
	// Fold the deprecated flat aliases into the nested groups (a zero
	// nested field inherits its alias), then apply defaults; everything
	// past this point reads only the nested form.
	if opt.Rejoin.Backoff == 0 {
		opt.Rejoin.Backoff = opt.RejoinBackoff
	}
	if opt.Rejoin.MaxBackoff == 0 {
		opt.Rejoin.MaxBackoff = opt.RejoinMaxBackoff
	}
	if opt.Hedging.Quantile == 0 {
		opt.Hedging.Quantile = opt.HedgeQuantile
	}
	if opt.Hedging.MinDelay == 0 {
		opt.Hedging.MinDelay = opt.HedgeMinDelay
	}
	if opt.Hedging.Budget == 0 {
		opt.Hedging.Budget = opt.HedgeBudget
	}
	if opt.Hedging.Burst == 0 {
		opt.Hedging.Burst = opt.HedgeBurst
	}
	if opt.Ejection.Factor == 0 {
		opt.Ejection.Factor = opt.EjectFactor
	}
	if opt.Ejection.MinLatency == 0 {
		opt.Ejection.MinLatency = opt.EjectMinLatency
	}
	if opt.Ejection.ProbeBackoff == 0 {
		opt.Ejection.ProbeBackoff = opt.ProbeBackoff
	}
	if opt.Ejection.ProbeMaxBackoff == 0 {
		opt.Ejection.ProbeMaxBackoff = opt.ProbeMaxBackoff
	}
	if opt.Rejoin.Backoff <= 0 {
		opt.Rejoin.Backoff = 100 * time.Millisecond
	}
	if opt.Rejoin.MaxBackoff <= 0 {
		opt.Rejoin.MaxBackoff = 3 * time.Second
	}
	if opt.Hedging.MinDelay <= 0 {
		opt.Hedging.MinDelay = 10 * time.Millisecond
	}
	if opt.Hedging.Budget == 0 {
		opt.Hedging.Budget = 0.1
	}
	if opt.Hedging.Burst <= 0 {
		opt.Hedging.Burst = 16
	}
	if opt.Ejection.MinLatency <= 0 {
		opt.Ejection.MinLatency = time.Millisecond
	}
	if opt.Ejection.ProbeBackoff <= 0 {
		opt.Ejection.ProbeBackoff = opt.Rejoin.Backoff
	}
	if opt.Ejection.ProbeMaxBackoff <= 0 {
		opt.Ejection.ProbeMaxBackoff = opt.Rejoin.MaxBackoff
	}
	if opt.MaxPending == 0 {
		opt.MaxPending = 1024
	}
	part, err := core.NewPartitioning(keys, len(groups))
	if err != nil {
		return nil, err
	}
	c := &Cluster{groups: groups, batch: opt.BatchKeys, opt: opt, helloVer: ProtoVersion}
	c.part.Store(part)
	if opt.Hedging.Quantile > 0 && opt.Hedging.Budget > 0 {
		c.hedgeEarnMilli = int64(opt.Hedging.Budget * 1000)
	}
	c.hedgeBurstMilli = int64(opt.Hedging.Burst) * 1000
	if opt.MaxPending > 0 {
		c.maxPending = opt.MaxPending
	}
	if opt.MaxVersion > 0 && opt.MaxVersion < ProtoVersion {
		c.helloVer = opt.MaxVersion
	}
	c.tel = telemetry.NewRegistry()
	for k, name := range pkMetricName {
		if name != "" {
			c.opHist[k] = c.tel.Histogram(`dc_client_op_ns{op="` + name + `"}`)
		}
	}
	nParts := len(part.Parts)
	c.ins = make([]atomic.Int64, nParts)
	c.calls.New = func() any { return &netCall{accum: make([]*pending, nParts)} }
	c.pends.New = func() any { return new(pending) }
	c.mu.Lock()
	ep, err := c.dialEpoch()
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	c.ep.Store(ep)
	if opt.Admin.Addr != "" {
		srv, err := admin.Serve(opt.Admin.Addr, admin.Config{
			Registry:     c.tel,
			BeforeScrape: c.scrapeGauges,
			Stats:        func() any { return c.Stats() },
			Health: func() (bool, any) {
				err := c.Err()
				detail := map[string]any{"partitions": c.Nodes()}
				if err != nil {
					detail["error"] = err.Error()
				}
				return err == nil, detail
			},
			Membership: c,
		})
		if err != nil {
			c.Close()
			return nil, err
		}
		c.mu.Lock()
		c.adm = srv
		c.mu.Unlock()
	}
	return c, nil
}

// Admin returns the mounted admin endpoint's listen address, or "" when
// DialOptions.Admin.Addr did not mount one (or the cluster is closed).
func (c *Cluster) Admin() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.adm == nil {
		return ""
	}
	return c.adm.Addr()
}

// Telemetry is the client-side registry: per-op scatter latency
// histograms (dc_client_op_ns) recorded by the connection read loops.
func (c *Cluster) Telemetry() *telemetry.Registry { return c.tel }

// recordOp folds one reply's send-to-reply latency into the kind's
// client-side histogram.
func (c *Cluster) recordOp(kind int, d time.Duration) {
	if h := c.opHist[kind]; h != nil {
		h.Observe(d)
	}
}

// scrapeGauges refreshes the computed gauges ahead of a /metrics render:
// everything an operator dashboard wants that is state, not a counter.
func (c *Cluster) scrapeGauges(r *telemetry.Registry) {
	reps := c.Health()
	live, hedges, failures, rejoins, ejections := 0, uint64(0), uint64(0), uint64(0), uint64(0)
	for _, h := range reps {
		if h.Healthy {
			live++
		}
		hedges += h.Hedges
		failures += h.Failures
		rejoins += h.Rejoins
		ejections += h.Ejections
	}
	ins := int64(0)
	for _, v := range c.InsertedKeys() {
		ins += v
	}
	r.Gauge("dc_client_partitions").Set(int64(c.Nodes()))
	r.Gauge("dc_client_live_replicas").Set(int64(live))
	r.Gauge("dc_client_inserted_keys").Set(ins)
	r.Gauge("dc_client_hedges").Set(int64(hedges))
	r.Gauge("dc_client_replica_failures").Set(int64(failures))
	r.Gauge("dc_client_replica_rejoins").Set(int64(rejoins))
	r.Gauge("dc_client_ejections").Set(int64(ejections))
	r.Gauge("dc_client_delta_catchups").Set(c.deltaCatchups.Load())
}

// dialEpoch dials and handshakes every replica of every partition, then
// starts the per-connection send and read loops. Callers hold c.mu so
// the configured c.groups cannot be rewritten by a concurrent
// membership op mid-dial (Dial holds it too, though the cluster is not
// yet published there).
//
//dc:holds c.mu
func (c *Cluster) dialEpoch() (*epoch, error) {
	ep := &epoch{c: c, failed: make(chan struct{})}
	for pi, addrs := range c.groups {
		// Copy the configured addresses: g.addrs grows and shrinks under
		// live membership independently of the config (which the
		// membership ops rewrite under c.mu for the next dialEpoch).
		addrs := append([]string(nil), addrs...)
		g := &replicaGroup{part: pi, addrs: addrs, stats: make([]*replicaStats, len(addrs)), admitCh: make(chan struct{}, 1)}
		g.budget.Store(c.hedgeBurstMilli)
		for slot := range addrs {
			g.stats[slot] = new(replicaStats)
		}
		ep.groups = append(ep.groups, g)
		for slot := range addrs {
			n, err := c.dialNode(g, addrs[slot], g.stats[slot], nil, false)
			if err != nil {
				closeEpochNodes(ep)
				return nil, err
			}
			g.members = append(g.members, n)
		}
	}
	// Seed the rank-base correction counters from the nodes' live
	// counts (v3 hello, live minus baseline = absorbed inserts), so a
	// fresh client — or a Redial after writes whose acks were lost to
	// the failure — answers consistently against nodes an earlier
	// session wrote to. Seeding happens only here, never on rejoin: at
	// dial time this client has no insert in flight, so the advertised
	// counts cannot double-count with a later ack credit.
	//dc:ignore lockguard epoch not yet published, dial is single-threaded
	for _, g := range ep.groups {
		for _, n := range g.members {
			if d := int64(n.liveCount - n.keyCount); d > 0 {
				for {
					cur := c.ins[g.part].Load()
					if d <= cur || c.ins[g.part].CompareAndSwap(cur, d) {
						break
					}
				}
			}
		}
	}
	//dc:ignore lockguard epoch not yet published, dial is single-threaded
	for _, g := range ep.groups {
		for _, n := range g.members {
			ep.wg.Add(2)
			go n.sendLoop(ep)
			go n.readLoop(ep)
		}
	}
	if c.opt.Hedging.Quantile > 0 {
		ep.hedger = &hedger{c: c, ep: ep, wake: make(chan struct{}, 1)}
		ep.wg.Add(1)
		go ep.hedger.loop()
	}
	return ep, nil
}

// dialNode dials one replica address and verifies via the hello
// handshake that it serves the expected partition. Shared by the
// initial dial, Redial, the rejoin loop, and AddReplica. A non-nil
// abort channel cancels an in-flight dial or hello the moment it closes
// (the rejoin loop passes ep.failed, so Close never waits out a dial
// timeout against a dead replica). joinOK additionally accepts an
// unassigned join node — zero identity, protocol v6+ — which the caller
// (AddReplica) then assigns an identity with OpAddReplica before any
// loop starts.
func (c *Cluster) dialNode(g *replicaGroup, addr string, st *replicaStats, abort <-chan struct{}, joinOK bool) (*clusterNode, error) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var connMu sync.Mutex
	var conn net.Conn
	if abort != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-abort:
				cancel()
				connMu.Lock()
				if conn != nil {
					conn.Close()
				}
				connMu.Unlock()
			case <-stop:
			}
		}()
	}
	var dialed net.Conn
	var err error
	if c.opt.Dialer != nil {
		dctx, dcancel := context.WithTimeout(ctx, c.opt.Timeout)
		dialed, err = c.opt.Dialer(dctx, addr)
		dcancel()
	} else {
		d := net.Dialer{Timeout: c.opt.Timeout}
		dialed, err = d.DialContext(ctx, "tcp", addr)
	}
	if err != nil {
		return nil, fmt.Errorf("netrun: dial partition %d replica %s: %w", g.part, addr, err)
	}
	connMu.Lock()
	conn = dialed
	if abort != nil {
		select {
		case <-abort:
			// The watcher may have checked conn before it was set;
			// re-check here so an abort always closes the connection
			// (at worst the hello below fails immediately).
			conn.Close()
		default:
		}
	}
	connMu.Unlock()
	opT := c.opt.OpTimeout
	if opT < 0 {
		opT = 0
	}
	n := &clusterNode{
		g:         g,
		st:        st,
		addr:      addr,
		conn:      conn,
		bc:        newBufferedConn(conn),
		opTimeout: opT,
		pending:   map[uint32]inflight{},
	}
	n.cond = sync.NewCond(&n.mu)
	if err := hello(n, c.part.Load().Parts[g.part], c.opt.Timeout, c.helloVer, joinOK); err != nil {
		conn.Close()
		return nil, fmt.Errorf("netrun: partition %d replica %s: %w", g.part, addr, err)
	}
	return n, nil
}

func closeEpochNodes(ep *epoch) {
	//dc:ignore lockguard only called while dialing, before the epoch is published
	for _, g := range ep.groups {
		for _, n := range g.members {
			n.conn.Close()
		}
	}
}

func hello(n *clusterNode, want core.Partition, timeout time.Duration, ver uint32, joinOK bool) error {
	n.conn.SetDeadline(time.Now().Add(timeout))
	defer n.conn.SetDeadline(time.Time{})
	// The reqID field of the hello advertises our protocol version
	// (ProtoVersion, or the DialOptions.MaxVersion cap); a v1 node
	// ignores it and acks 4 words, a v2 node acks 5 with the negotiated
	// version appended (see the package doc).
	if err := n.bc.writeFrame(Frame{Op: OpHello, ReqID: ver}); err != nil {
		return err
	}
	if err := n.bc.w.Flush(); err != nil {
		return err
	}
	f, err := n.bc.readFrame()
	if err != nil {
		return err
	}
	if f.Op != OpHelloAck || len(f.Payload) < 4 || len(f.Payload) > 8 || len(f.Payload) == 7 {
		return fmt.Errorf("bad hello ack (op %d, %d words)", f.Op, len(f.Payload))
	}
	n.version = ProtoV1
	if len(f.Payload) >= 5 {
		v := f.Payload[4]
		if v < ProtoV1 || v > ver {
			return fmt.Errorf("node negotiated unsupported protocol version %d", v)
		}
		n.version = v
	}
	if len(f.Payload) >= 6 {
		n.liveCount = int(f.Payload[5])
	}
	if len(f.Payload) == 8 {
		// A durable v4 node: words 7-8 carry its chain (low word
		// first); its generation is liveCount - keyCount.
		n.chain = uint64(f.Payload[6]) | uint64(f.Payload[7])<<32
	}
	n.rankBase = int(f.Payload[0])
	n.keyCount = int(f.Payload[1])
	if joinOK && n.keyCount == 0 {
		// An unassigned join node (dcnode -join): it advertises the
		// zero identity until OpAddReplica names its partition. Only a
		// v6 peer can be assigned one; a real partition always has at
		// least one key, so keyCount==0 cannot be a served identity.
		if n.version < ProtoV6 {
			return fmt.Errorf("unassigned node negotiated protocol v%d; joining a live cluster needs v6", n.version)
		}
		return nil
	}
	if n.rankBase != want.RankBase || n.keyCount != len(want.Keys) {
		return fmt.Errorf("partition mismatch: node serves base=%d n=%d, routing table expects base=%d n=%d",
			n.rankBase, n.keyCount, want.RankBase, len(want.Keys))
	}
	// Shape alone doesn't prove the same key set (equal-size partitions
	// of any n keys have identical bases and counts): cross-check the
	// served key range the node advertises.
	lo, hi := workload.Key(f.Payload[2]), workload.Key(f.Payload[3])
	if len(want.Keys) > 0 && (lo != want.Keys[0] || hi != want.Keys[len(want.Keys)-1]) {
		return fmt.Errorf("key-set mismatch: node serves range [%d, %d], routing table expects [%d, %d] (different keys or seed?)",
			lo, hi, want.Keys[0], want.Keys[len(want.Keys)-1])
	}
	return nil
}

// enqueue hands p to the node's send loop under the registration id
// reqID. It reports ok=false when p was not queued: the node is dead
// (the caller must route p elsewhere) or, when limit > 0, the node is
// at its admission cap (full=true — the caller may wait and retry).
// The dead check and the append are under the same mutex failNode's
// collection takes, so a pending can never be stranded in a queue
// nobody owns.
func (n *clusterNode) enqueue(p *pending, reqID uint32, limit int) (ok, full bool) {
	n.mu.Lock()
	if n.dead {
		n.mu.Unlock()
		return false, false
	}
	if limit > 0 && len(n.sendq)-n.sendHead+len(n.pending) >= limit {
		n.mu.Unlock()
		return false, true
	}
	n.sendq = append(n.sendq, sendReq{p: p, reqID: reqID})
	n.mu.Unlock()
	n.cond.Signal()
	return true, false
}

// failNode is the single owner of a replica's death: it closes the
// connection, drops the replica from its group (failing the epoch when
// it was the partition's last member), takes every queued and in-flight
// pending, re-routes them to a surviving replica, and spawns the rejoin
// loop. Exactly-once per node; both loops and any protocol-violation
// path funnel through it, so a pending is collected by precisely one
// actor.
func (c *Cluster) failNode(ep *epoch, n *clusterNode, err error) {
	n.failOnce.Do(func() {
		n.stats().failures.Add(1)
		n.conn.Close()
		g := n.g
		if g.remove(n) == 0 {
			ep.fail(fmt.Errorf("netrun: partition %d lost its last replica (%s): %w", g.part, n.addr, err))
		}
		// A catching-up member's held inserts die with it: every held
		// pending was also fanned out to the surviving members, which
		// now define the group's state (the same semantics as the
		// in-flight insert sweep below). hasV3 records whether a
		// surviving *full* v3 member exists: completing a swept insert
		// as success is only honest when one does. A catching-up
		// member does not count — writes fanned out before its
		// admission are in neither its hold queue nor a snapshot it
		// can still load once its source died — so those writes fail
		// conservatively instead (the caller may retry; inserts are
		// idempotent only as multiset adds, and an error makes the
		// uncertainty explicit rather than acking a write no live node
		// holds).
		g.mu.Lock()
		held := n.holdq
		n.holdq = nil
		n.catchingUp = false
		hasV3 := false
		for _, m := range g.members {
			if m.version >= ProtoV3 && !m.catchingUp {
				hasV3 = true
				break
			}
		}
		g.mu.Unlock()
		rest := n.collectPending(held)
		c.settlePending(ep, n, rest, hasV3, err)
		ep.goRejoin(g, n.addr, n.st)
	})
}

// collectPending takes sole ownership of everything queued or in flight
// on n, plus the caller-collected hold queue. dead is set in the same
// critical section, so a concurrent enqueue either lands before the
// sweep (and is collected) or observes dead and routes elsewhere.
// Shared by failNode and the drain teardown.
func (n *clusterNode) collectPending(held []*pending) []*pending {
	n.mu.Lock()
	n.dead = true
	rest := make([]*pending, 0, len(n.pending)+len(n.sendq)-n.sendHead+len(held))
	for _, sr := range n.sendq[n.sendHead:] {
		if sr.p != nil {
			rest = append(rest, sr.p)
		}
	}
	n.sendq, n.sendHead = nil, 0
	for _, inf := range n.pending {
		rest = append(rest, inf.p)
	}
	n.pending = map[uint32]inflight{}
	n.mu.Unlock()
	n.cond.Broadcast()
	n.g.admitFreed()
	return append(rest, held...)
}

// settlePending resolves a departed member's swept pendings by kind:
// reads fail over, writes settle against the survivors, pinned catch-up
// and membership frames abort. Shared by failNode and the drain
// teardown; err is the member's cause of departure.
func (c *Cluster) settlePending(ep *epoch, n *clusterNode, rest []*pending, hasV3 bool, err error) {
	g := n.g
	for _, p := range rest {
		switch p.kind {
		case pkInsert:
			// The write reached (or will reach) every surviving v3
			// member; this member's copy is moot now that it left
			// the group — it reloads from a sibling on rejoin. But
			// when no v3 survivor exists (this was the partition's
			// only writable replica, its pre-v3 siblings never got
			// a copy), success would ack a write no live node
			// holds — fail it instead so the caller's chunk is not
			// credited.
			switch {
			case ep.Err() != nil:
				c.finish(p, ep.err)
			case hasV3:
				c.finish(p, nil)
			default:
				c.finish(p, fmt.Errorf("netrun: partition %d lost its last full protocol-v3 replica (%s) with a write in flight: %w", g.part, n.addr, err))
			}
		case pkLoad, pkLoadAt:
			// A load binds to this exact member; the catch-up
			// attempt aborts and the next rejoin retries.
			c.finish(p, fmt.Errorf("netrun: catch-up load to partition %d replica %s interrupted: %w", g.part, n.addr, err))
		case pkSnapshot, pkSnapshotSince:
			// A snapshot must not fail over: its position in this
			// member's FIFO is what makes catch-up exactly-once
			// (re-enqueueing it elsewhere could double-deliver
			// writes that raced the admission). Abort the attempt;
			// the rejoin cycle takes a fresh snapshot.
			c.finish(p, fmt.Errorf("netrun: catch-up snapshot from partition %d replica %s interrupted: %w", g.part, n.addr, err))
		case pkDrain, pkSplit:
			// Membership ops pin to this exact member; the reshape
			// aborts and its caller reports the failure.
			c.finish(p, fmt.Errorf("netrun: membership op to partition %d replica %s interrupted: %w", g.part, n.addr, err))
		default:
			// A read already claimed by a hedge (or a racing reply)
			// needs nothing from this chain — drop the reference.
			// Unclaimed reads fail over as always.
			if p.claimed.Load() {
				c.release(p)
			} else {
				c.route(ep, g, p)
			}
		}
	}
}

// goRejoin starts the background rejoin loop for a failed replica,
// keyed by its address and stats (not a group slot — live membership
// reshapes the group's slices), unless the epoch is already terminal.
// The wg.Add is safe against Close's Wait because every caller runs on
// a goroutine the WaitGroup already counts.
func (ep *epoch) goRejoin(g *replicaGroup, addr string, st *replicaStats) {
	select {
	case <-ep.failed:
		return
	default:
	}
	ep.wg.Add(1)
	go ep.c.rejoinLoop(ep, g, addr, st)
}

// rejoinLoop re-dials a failed replica with capped exponential backoff
// until the dial and hello verification succeed (the replica rejoins
// its group and fresh send/read loops start) or the epoch ends. Callers
// are never interrupted: rejoining only grows the healthy member set.
// A replica rejoining a partition this client has written to is stale —
// its process restarted with the baseline key set — so it first catches
// up from a sibling's snapshot (readmitWithCatchUp) before it serves
// reads; a pre-v3 replica can never catch up and keeps backing off
// until the operator replaces it.
func (c *Cluster) rejoinLoop(ep *epoch, g *replicaGroup, addr string, st *replicaStats) {
	defer ep.wg.Done()
	backoff := c.opt.Rejoin.Backoff
	for {
		select {
		case <-ep.failed:
			return
		case <-time.After(jitterBackoff(backoff)):
		}
		// A drained replica's config entry is gone: stop re-dialing it
		// (benign race — a drain racing this replica's failure leaves
		// the loop running one iteration past the removal).
		g.mu.Lock()
		configured := false
		for i, a := range g.addrs {
			if a == addr && g.stats[i] == st {
				configured = true
				break
			}
		}
		g.mu.Unlock()
		if !configured {
			return
		}
		n, err := c.dialNode(g, addr, st, ep.failed, false)
		if err != nil {
			backoff = nextBackoff(backoff, c.opt.Rejoin.MaxBackoff)
			continue
		}
		// Install under g.mu, re-checking the terminal flag: ep.fail
		// closes failed before sweeping members under the same mutex,
		// so the new member is either refused here or swept there —
		// never leaked. The no-writes decision is taken in the same mu
		// section the write fan-out uses, so a concurrent first insert
		// either precedes it (writes > 0, catch-up required) or sees
		// the freshly installed member and fans to it directly — the
		// replica can never plainly install in an in-flight write's
		// blind spot. g.writes covers this epoch; the acked counters
		// cover writes from before a Redial (the nodes retain them).
		g.mu.Lock()
		select {
		case <-ep.failed:
			g.mu.Unlock()
			n.conn.Close()
			return
		default:
		}
		if g.writes == 0 && c.ins[g.part].Load() == 0 {
			g.members = append(g.members, n)
			g.mu.Unlock()
			n.stats().rejoins.Add(1)
			ep.wg.Add(2)
			go n.sendLoop(ep)
			go n.readLoop(ep)
			return
		}
		g.mu.Unlock()
		// The group has absorbed writes: the baseline replica is stale.
		if n.version < ProtoV3 {
			// Stale forever: it cannot receive the missed writes.
			n.conn.Close()
			backoff = nextBackoff(backoff, c.opt.Rejoin.MaxBackoff)
			continue
		}
		if c.readmitWithCatchUp(ep, g, n) {
			return // admitted; failNode owns any later failure
		}
		// No snapshot source right now; retry from scratch.
		n.conn.Close()
		backoff = nextBackoff(backoff, c.opt.Rejoin.MaxBackoff)
		continue
	}
}

// nextBackoff doubles a rejoin delay, capped at max.
func nextBackoff(d, max time.Duration) time.Duration {
	if d *= 2; d > max {
		return max
	}
	return d
}

// jitterBackoff spreads a rejoin sleep uniformly over [d/2, d): when
// one machine death drops several replicas at once, their rejoin dials
// de-correlate instead of thundering back at the recovering node in
// lockstep at every doubling.
func jitterBackoff(d time.Duration) time.Duration {
	if d < 2 {
		return d
	}
	return d/2 + rand.N(d/2)
}

// readmitWithCatchUp admits n as a catching-up member — write fan-outs
// reach it through its hold queue, reads skip it — then loads a healthy
// sibling's snapshot into it and promotes it to full membership. The
// g.mu section that admits n also enqueues the snapshot request on the
// sibling, so every concurrent write fan-out either precedes the
// snapshot request in the sibling's FIFO (and is therefore in the
// snapshot n loads) or sees n as a member (and lands in its hold queue,
// flushed after the load) — each write reaches n exactly once.
//
// When both the rejoiner and the sibling are durable v4 nodes with a
// known chain, the catch-up asks for the insert tail since the
// rejoiner's own durable position instead of the full key set
// (OpSnapshotSince): a rejoining replica already holds everything it
// fsynced before the crash, so only the writes it missed move over the
// wire. The sibling falls back to a full payload by itself when it
// compacted past that position or the chains diverge; a delta the
// rejoiner *refuses* (it durably logged writes the sibling never acked
// — divergent histories) aborts the admission with a sticky full-
// snapshot demand, because switching payload kinds mid-admission would
// let writes land twice (the hold-queue cut belongs to the original
// request).
//
// It returns false when n was not admitted (no v3 sibling to snapshot
// from; the caller retries later). Once n is admitted, every failure
// funnels through failNode — which owns cleanup and schedules the next
// rejoin — and the function returns true so the calling loop exits.
func (c *Cluster) readmitWithCatchUp(ep *epoch, g *replicaGroup, n *clusterNode) bool {
	snapP := c.getPending()
	snapP.kind = pkSnapshot
	snapP.done = make(chan *pending, 1)
	g.mu.Lock()
	select {
	case <-ep.failed:
		g.mu.Unlock()
		n.conn.Close()
		c.putPending(snapP)
		return true // the epoch is over; nothing left to rejoin
	default:
	}
	var sib *clusterNode
	for i := range g.members {
		m := g.members[(g.cursor+i+1)%len(g.members)]
		if m != n && !m.catchingUp && m.version >= ProtoV3 {
			sib = m
			break
		}
	}
	if sib == nil {
		g.mu.Unlock()
		c.putPending(snapP)
		return false
	}
	useDelta := n.version >= ProtoV4 && sib.version >= ProtoV4 &&
		n.chain != 0 && sib.chain != 0 && !n.stats().forceFull.Load()
	if useDelta {
		snapP.kind = pkSnapshotSince
		rejGen := uint64(n.liveCount - n.keyCount)
		snapP.keys = append(snapP.keys[:0],
			uint32(rejGen), uint32(rejGen>>32),
			uint32(n.chain), uint32(n.chain>>32))
	}
	snapP.refs.Store(2)
	if ok, _ := sib.enqueue(snapP, c.reqID.Add(1), 0); !ok {
		g.mu.Unlock()
		c.putPending(snapP)
		return false
	}
	sib.stats().dispatched.Add(1)
	n.catchingUp = true
	g.members = append(g.members, n)
	g.mu.Unlock()
	ep.wg.Add(2)
	go n.sendLoop(ep)
	go n.readLoop(ep)

	p := <-snapP.done
	err := p.err
	snapKeys := append([]uint32(nil), p.reply...)
	c.release(p)
	if err != nil {
		if useDelta {
			n.stats().forceFull.Store(true)
		}
		c.failNode(ep, n, fmt.Errorf("netrun: catch-up snapshot for partition %d: %w", g.part, err))
		return true
	}
	wasDelta := false
	loadP := c.getPending()
	if useDelta {
		if len(snapKeys) < snapDeltaHeader {
			c.failNode(ep, n, fmt.Errorf("netrun: partition %d replica %s sent a truncated positioned snapshot (%d words)", g.part, sib.addr, len(snapKeys)))
			return true
		}
		wasDelta = snapKeys[0] == snapKindDelta
		loadP.kind = pkLoadAt
	} else {
		loadP.kind = pkLoad
	}
	loadP.keys = append(loadP.keys, snapKeys...)
	loadP.done = make(chan *pending, 1)
	loadP.refs.Store(2)
	if ok, _ := n.enqueue(loadP, c.reqID.Add(1), 0); !ok {
		// n died already; its failNode swept the hold queue.
		c.putPending(loadP)
		return true
	}
	n.stats().dispatched.Add(1)
	p = <-loadP.done
	err = p.err
	c.release(p)
	if err != nil {
		if useDelta {
			n.stats().forceFull.Store(true)
		}
		c.failNode(ep, n, fmt.Errorf("netrun: catch-up load for partition %d: %w", g.part, err))
		return true
	}
	if wasDelta {
		c.deltaCatchups.Add(1)
	}
	n.stats().forceFull.Store(false)
	// Promote: flush the held writes onto the connection — they follow
	// the load frame in the FIFO, so the reset cannot wipe them — and
	// open the member to reads.
	g.mu.Lock()
	n.catchingUp = false
	held := n.holdq
	n.holdq = nil
	for _, hp := range held {
		if ok, _ := n.enqueue(hp, c.reqID.Add(1), 0); ok {
			n.stats().dispatched.Add(1)
		} else {
			// n died between the load ack and the flush; the survivors
			// hold the write (the insert sweep semantics).
			c.finish(hp, nil)
		}
	}
	g.mu.Unlock()
	n.stats().rejoins.Add(1)
	return true
}

// sendLoop writes queued frames to the node. Flushes coalesce: the
// bufio writer is flushed only when the queue drains, so pipelined
// batches from concurrent callers share syscalls. Each pending is
// registered in the in-flight table (and the read deadline armed)
// before its frame hits the wire, so a reply — or a failover sweep —
// always finds it. On any error the loop funnels through failNode and
// exits; it never completes pendings itself.
func (n *clusterNode) sendLoop(ep *epoch) {
	defer ep.wg.Done()
	c := ep.c
	unflushed := false
	for {
		n.mu.Lock()
		for n.sendHead == len(n.sendq) && !n.dead {
			if unflushed {
				n.mu.Unlock()
				unflushed = false
				if err := n.flush(); err != nil {
					c.failNode(ep, n, fmt.Errorf("netrun: partition %d replica %s write: %w", n.g.part, n.addr, err))
					return
				}
				n.armRead()
				n.mu.Lock()
				continue
			}
			n.cond.Wait()
		}
		if n.dead {
			// failNode owns (or will collect) whatever is queued.
			n.mu.Unlock()
			return
		}
		sr := n.sendq[n.sendHead]
		p := sr.p
		n.sendq[n.sendHead] = sendReq{}
		n.sendHead++
		if n.sendHead == len(n.sendq) {
			n.sendq = n.sendq[:0]
			n.sendHead = 0
		}
		if _, dup := n.pending[sr.reqID]; dup {
			// The 32-bit request-id space wrapped all the way around
			// onto a request still in flight on this connection.
			// Registering would silently orphan the first caller, so
			// fail this request fast and leave the in-flight one (and
			// the connection) intact.
			n.mu.Unlock()
			c.finish(p, fmt.Errorf("netrun: request id %d wrapped onto a request still in flight on partition %d replica %s (2^32 ids exhausted while one was outstanding); retry the batch",
				sr.reqID, n.g.part, n.addr))
			continue
		}
		n.pending[sr.reqID] = inflight{p: p, sentAt: time.Now()}
		// Encode while still holding mu: the moment p is registered it
		// can complete (reply or failover sweep) and be recycled by its
		// caller, so p.keys must not be read outside the lock. After
		// encode the frame lives in the writer's scratch, and the
		// blocking socket I/O below never touches p. Sorted runs go out
		// as v2 delta frames when this connection negotiated them; on a
		// v1 connection (or after failover onto one) the same keys go
		// out as a plain OpLookup. The v3 kinds (insert, snapshot,
		// load) only ever reach v3-negotiated connections — dispatch
		// and failover enforce it.
		// Whether to arm the hedge clock is decided here, under the same
		// lock: once registered, p may complete and recycle the moment
		// mu drops, so no field of p can be read after the unlock.
		armHedge := ep.hedger != nil && hedgeable(p.kind) && !p.hedged.Load()
		var buf []byte
		var encErr error
		switch {
		case p.kind == pkInsert:
			buf, encErr = n.bc.fw.encode(Frame{Op: OpInsert, ReqID: sr.reqID, Payload: p.keys})
		case p.kind == pkSnapshot:
			buf, encErr = n.bc.fw.encode(Frame{Op: OpSnapshot, ReqID: sr.reqID})
		case p.kind == pkLoad:
			buf, encErr = n.bc.fw.encodeDeltaOp(OpLoad, sr.reqID, p.keys)
		case p.kind == pkSnapshotSince:
			buf, encErr = n.bc.fw.encode(Frame{Op: OpSnapshotSince, ReqID: sr.reqID, Payload: p.keys})
		case p.kind == pkLoadAt:
			buf, encErr = n.bc.fw.encode(Frame{Op: OpLoadAt, ReqID: sr.reqID, Payload: p.keys})
		case p.kind == pkCount:
			buf, encErr = n.bc.fw.encode(Frame{Op: OpCountRange, ReqID: sr.reqID, Payload: p.keys})
		case p.kind == pkScan:
			buf, encErr = n.bc.fw.encode(Frame{Op: OpScanRange, ReqID: sr.reqID, Payload: p.keys})
		case p.kind == pkTopK:
			buf, encErr = n.bc.fw.encode(Frame{Op: OpTopK, ReqID: sr.reqID, Payload: p.keys})
		case p.kind == pkMultiGet:
			buf, encErr = n.bc.fw.encodeDeltaOp(OpMultiGet, sr.reqID, p.keys)
		case p.kind == pkDrain:
			buf, encErr = n.bc.fw.encode(Frame{Op: OpDrainReplica, ReqID: sr.reqID})
		case p.kind == pkSplit:
			buf, encErr = n.bc.fw.encode(Frame{Op: OpSplitPartition, ReqID: sr.reqID, Payload: p.keys})
		case p.sorted && n.version >= ProtoV2:
			buf, encErr = n.bc.fw.encodeDeltaOp(OpLookupSorted, sr.reqID, p.keys)
		default:
			buf, encErr = n.bc.fw.encode(Frame{Op: OpLookup, ReqID: sr.reqID, Payload: p.keys})
		}
		n.mu.Unlock()

		if encErr != nil {
			// Unreachable with BatchKeys clamped to MaxFrameWords, but
			// p is registered: failNode sweeps and re-routes it.
			c.failNode(ep, n, fmt.Errorf("netrun: partition %d replica %s: %w", n.g.part, n.addr, encErr))
			return
		}
		if n.opTimeout > 0 {
			n.conn.SetWriteDeadline(time.Now().Add(n.opTimeout))
		}
		if _, err := n.bc.w.Write(buf); err != nil {
			// p is registered: failNode sweeps and re-routes it.
			c.failNode(ep, n, fmt.Errorf("netrun: partition %d replica %s write: %w", n.g.part, n.addr, err))
			return
		}
		n.armRead()
		unflushed = true
		if armHedge {
			// Arm the hedge clock now that the frame is on (or in) the
			// wire; the hedger re-checks the registration at deadline,
			// so completed requests cost nothing. Outside n.mu: the
			// hedger takes its own lock, then n.mu when it fires.
			ep.hedger.schedule(n, sr.reqID, time.Now().Add(n.hedgeDelay(c)))
		}
	}
}

// hedgeDelay is how long a read frame may sit on this replica before it
// is hedged: the partition's fastest view of its own read latency — the
// minimum of the group members' windowed quantiles — floored by
// HedgeMinDelay (which also covers the cold start before any history),
// and capped below the op timeout so a hedge always beats a timeout.
// The group minimum rather than n's own quantile matters for exactly
// the gray case: a uniformly slow replica inflates its own quantile and
// would otherwise never look overdue to the hedger.
func (n *clusterNode) hedgeDelay(c *Cluster) time.Duration {
	d := time.Duration(n.stats().hedgeNs.Load())
	n.g.mu.Lock()
	for _, m := range n.g.members {
		if m == n || m.catchingUp {
			continue
		}
		s := m.stats()
		if s.state.Load() >= rsEjected {
			continue
		}
		if q := time.Duration(s.hedgeNs.Load()); q > 0 && (d == 0 || q < d) {
			d = q
		}
	}
	n.g.mu.Unlock()
	if d < c.opt.Hedging.MinDelay {
		d = c.opt.Hedging.MinDelay
	}
	if n.opTimeout > 0 && d > n.opTimeout/2 {
		d = n.opTimeout / 2
	}
	return d
}

func (n *clusterNode) flush() error {
	if n.opTimeout > 0 {
		n.conn.SetWriteDeadline(time.Now().Add(n.opTimeout))
	}
	return n.bc.w.Flush()
}

// armRead extends the read deadline if requests are in flight; the send
// loop calls it after each write or flush makes progress toward the
// node, so the reply clock starts when the request actually moves, not
// when it is registered (a slow-but-successful write must not eat into
// the node's reply window). The map check is under mu so the invariant
// "deadline armed iff requests outstanding" holds against the read
// loop's clear-when-empty.
func (n *clusterNode) armRead() {
	if n.opTimeout <= 0 {
		return
	}
	n.mu.Lock()
	if len(n.pending) > 0 {
		n.conn.SetReadDeadline(time.Now().Add(n.opTimeout))
	}
	n.mu.Unlock()
}

// readLoop demultiplexes reply frames by request id to the issuing
// calls' gather channels. Any read error, timeout, or protocol
// violation funnels through failNode: the replica dies alone and its
// in-flight requests fail over to a surviving sibling.
func (n *clusterNode) readLoop(ep *epoch) {
	defer ep.wg.Done()
	c := ep.c
	// rankScratch stages decoded OpRanksDelta payloads. Decoding fully
	// before deregistering the pending keeps the failure story simple:
	// a corrupt delta stream leaves the pending registered, so the
	// failNode sweep re-routes it to a sibling like any other protocol
	// violation — no partially-scattered result can ever complete.
	var rankScratch []uint32
	for {
		f, err := n.bc.readFrame()
		if err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				err = fmt.Errorf("no reply within %v (node hung?): %w", n.opTimeout, err)
			}
			c.failNode(ep, n, fmt.Errorf("netrun: partition %d replica %s read: %w", n.g.part, n.addr, err))
			return
		}
		switch f.Op {
		case OpRanksDelta:
			vals, derr := decodeDeltaRun(f.Raw, rankScratch)
			if derr != nil {
				c.failNode(ep, n, fmt.Errorf("netrun: partition %d replica %s: %w", n.g.part, n.addr, derr))
				return
			}
			rankScratch = vals
			f.Payload = vals
			fallthrough
		case OpRanks:
			n.mu.Lock()
			inf, ok := n.pending[f.ReqID]
			// Capture the key count under the lock: on the mismatch
			// path below p stays registered, so a concurrent failNode
			// sweep may re-route, complete, and recycle it the moment
			// the lock is released — p must not be read after that.
			nKeys := 0
			if ok {
				nKeys = len(inf.p.keys)
			}
			if ok && inf.p.kind == pkLookup && len(f.Payload) == nKeys {
				p := inf.p
				n.deregisterLocked(f.ReqID)
				n.mu.Unlock()
				d := time.Since(inf.sentAt)
				n.observe(c, d)
				c.recordOp(pkLookup, d)
				if p.claim() {
					// adj folds in the keys this client inserted into the
					// preceding partitions: the node's static rank base
					// predates them (see Cluster.ins).
					adj := c.insBefore(n.g.part)
					if p.contig {
						base := p.posBase
						for i, r := range f.Payload {
							p.out[base+i] = int(r) + adj
						}
					} else {
						for i, pos := range p.pos {
							p.out[pos] = int(f.Payload[i]) + adj
						}
					}
					p.complete(nil)
				}
				c.release(p)
				continue
			}
			n.mu.Unlock()
			// Both violation paths funnel through failNode even when the
			// node is already dead (a stale buffered frame after a sweep,
			// or a frame read between ep.fail marking us dead and the
			// next read error): failNode is idempotent, and skipping it
			// here could strand registered pendings a sweep never saw.
			if !ok {
				c.failNode(ep, n, fmt.Errorf("netrun: partition %d replica %s sent unknown reqID %d (corrupt or stale stream)", n.g.part, n.addr, f.ReqID))
				return
			}
			// Count mismatch: p stays registered, so failNode sweeps
			// and re-routes it to a sibling for a correct answer.
			c.failNode(ep, n, fmt.Errorf("netrun: partition %d replica %s: %d ranks for %d keys", n.g.part, n.addr, len(f.Payload), nKeys))
			return
		case OpInsertAck, OpLoadAck:
			n.mu.Lock()
			inf, ok := n.pending[f.ReqID]
			kindOK, wantN, kind := false, 0, 0
			if ok {
				kind = inf.p.kind
				switch {
				case f.Op == OpInsertAck && inf.p.kind == pkInsert:
					kindOK, wantN = true, len(inf.p.keys)
				case f.Op == OpLoadAck && inf.p.kind == pkLoad:
					kindOK, wantN = true, len(inf.p.keys)
				case f.Op == OpLoadAck && inf.p.kind == pkLoadAt:
					// The payload carries the 5 header words ahead of
					// the keys; the node acks only the keys.
					kindOK, wantN = true, len(inf.p.keys)-snapDeltaHeader
				}
			}
			if kindOK && len(f.Payload) == 1 && int(f.Payload[0]) == wantN {
				n.deregisterLocked(f.ReqID)
				n.mu.Unlock()
				c.recordOp(kind, time.Since(inf.sentAt))
				c.finish(inf.p, nil)
				continue
			}
			n.mu.Unlock()
			// Unknown id, wrong kind, or count mismatch: protocol
			// violation — the sweep settles whatever was registered.
			c.failNode(ep, n, fmt.Errorf("netrun: partition %d replica %s sent bad ack op %d for reqID %d", n.g.part, n.addr, f.Op, f.ReqID))
			return
		case OpSnapshotData:
			vals, derr := decodeDeltaRun(f.Raw, rankScratch)
			if derr != nil {
				c.failNode(ep, n, fmt.Errorf("netrun: partition %d replica %s: %w", n.g.part, n.addr, derr))
				return
			}
			rankScratch = vals
			n.mu.Lock()
			inf, ok := n.pending[f.ReqID]
			if ok && inf.p.kind == pkSnapshot {
				p := inf.p
				n.deregisterLocked(f.ReqID)
				n.mu.Unlock()
				c.recordOp(pkSnapshot, time.Since(inf.sentAt))
				if p.claim() {
					p.reply = append(p.reply[:0], vals...)
					p.complete(nil)
				}
				c.release(p)
				continue
			}
			n.mu.Unlock()
			c.failNode(ep, n, fmt.Errorf("netrun: partition %d replica %s sent unsolicited snapshot for reqID %d", n.g.part, n.addr, f.ReqID))
			return
		case OpSnapshotDelta:
			n.mu.Lock()
			inf, ok := n.pending[f.ReqID]
			if ok && inf.p.kind == pkSnapshotSince && len(f.Payload) >= snapDeltaHeader {
				p := inf.p
				n.deregisterLocked(f.ReqID)
				n.mu.Unlock()
				c.recordOp(pkSnapshotSince, time.Since(inf.sentAt))
				if p.claim() {
					p.reply = append(p.reply[:0], f.Payload...)
					p.complete(nil)
				}
				c.release(p)
				continue
			}
			n.mu.Unlock()
			c.failNode(ep, n, fmt.Errorf("netrun: partition %d replica %s sent unsolicited positioned snapshot for reqID %d", n.g.part, n.addr, f.ReqID))
			return
		case OpCounts:
			// Reply to OpCountRange (per-range counts) or OpMultiGet
			// (per-key multiplicities), demuxed by the pending's kind.
			vals, derr := decodeVarRun(f.Raw, rankScratch)
			if derr != nil {
				c.failNode(ep, n, fmt.Errorf("netrun: partition %d replica %s: %w", n.g.part, n.addr, derr))
				return
			}
			rankScratch = vals
			n.mu.Lock()
			inf, ok := n.pending[f.ReqID]
			wantN := -1
			if ok {
				switch inf.p.kind {
				case pkCount:
					wantN = len(inf.p.keys) / 2
				case pkMultiGet:
					wantN = len(inf.p.keys)
				}
			}
			if ok && len(vals) == wantN {
				p := inf.p
				kind := p.kind
				n.deregisterLocked(f.ReqID)
				n.mu.Unlock()
				d := time.Since(inf.sentAt)
				n.observe(c, d)
				c.recordOp(kind, d)
				if p.claim() {
					if p.kind == pkCount {
						// Ranges can span partitions, so concurrent read
						// loops must not add into shared output slots;
						// stage the counts and let the single caller sum
						// via p.pos.
						p.reply = append(p.reply[:0], vals...)
					} else if p.contig {
						base := p.posBase
						for i, v := range vals {
							p.out[base+i] = int(v)
						}
					} else {
						for i, pos := range p.pos {
							p.out[pos] = int(vals[i])
						}
					}
					p.complete(nil)
				}
				c.release(p)
				continue
			}
			n.mu.Unlock()
			if !ok {
				c.failNode(ep, n, fmt.Errorf("netrun: partition %d replica %s sent unknown reqID %d (corrupt or stale stream)", n.g.part, n.addr, f.ReqID))
				return
			}
			c.failNode(ep, n, fmt.Errorf("netrun: partition %d replica %s: %d counts, want %d", n.g.part, n.addr, len(vals), wantN))
			return
		case OpKeysDelta:
			// Reply to OpScanRange or OpTopK: an ascending key run. The
			// request words stay in p.keys until the reply lands (so a
			// failover re-encodes them); overwrite them with the result,
			// OpSnapshotData-style.
			vals, derr := decodeDeltaRun(f.Raw, rankScratch)
			if derr != nil {
				c.failNode(ep, n, fmt.Errorf("netrun: partition %d replica %s: %w", n.g.part, n.addr, derr))
				return
			}
			rankScratch = vals
			n.mu.Lock()
			inf, ok := n.pending[f.ReqID]
			if ok && (inf.p.kind == pkScan || inf.p.kind == pkTopK) {
				p := inf.p
				kind := p.kind
				n.deregisterLocked(f.ReqID)
				n.mu.Unlock()
				d := time.Since(inf.sentAt)
				n.observe(c, d)
				c.recordOp(kind, d)
				if p.claim() {
					p.reply = append(p.reply[:0], vals...)
					p.complete(nil)
				}
				c.release(p)
				continue
			}
			n.mu.Unlock()
			c.failNode(ep, n, fmt.Errorf("netrun: partition %d replica %s sent unsolicited key run for reqID %d", n.g.part, n.addr, f.ReqID))
			return
		case OpMembAck:
			// Reply to a drain or split membership frame: one word, the
			// node's post-op live key count.
			n.mu.Lock()
			inf, ok := n.pending[f.ReqID]
			if ok && (inf.p.kind == pkDrain || inf.p.kind == pkSplit) && len(f.Payload) == 1 {
				p := inf.p
				kind := p.kind
				n.deregisterLocked(f.ReqID)
				n.mu.Unlock()
				c.recordOp(kind, time.Since(inf.sentAt))
				if p.claim() {
					p.reply = append(p.reply[:0], f.Payload...)
					p.complete(nil)
				}
				c.release(p)
				continue
			}
			n.mu.Unlock()
			c.failNode(ep, n, fmt.Errorf("netrun: partition %d replica %s sent unsolicited membership ack for reqID %d", n.g.part, n.addr, f.ReqID))
			return
		case OpErr:
			code := uint32(0)
			if len(f.Payload) > 0 {
				code = f.Payload[0]
			}
			// An OpErr answering a catch-up request (snapshot/load) or a
			// v5 query op is a refusal of that operation only — e.g. a
			// snapshot or scan result too large for one frame — from a
			// node that keeps serving. Fail just the request; killing the
			// connection would charge the failure to a healthy node and
			// can cascade to epoch death, and failing over an oversized
			// scan to a sibling would only be refused identically.
			n.mu.Lock()
			if inf, ok := n.pending[f.ReqID]; ok {
				switch inf.p.kind {
				case pkSnapshot, pkLoad, pkSnapshotSince, pkLoadAt, pkCount, pkScan, pkTopK, pkMultiGet, pkDrain, pkSplit:
					n.deregisterLocked(f.ReqID)
					n.mu.Unlock()
					c.finish(inf.p, fmt.Errorf("netrun: partition %d replica %s refused the request (op %d)", n.g.part, n.addr, code))
					continue
				}
			}
			n.mu.Unlock()
			c.failNode(ep, n, fmt.Errorf("netrun: partition %d replica %s reported error %d", n.g.part, n.addr, code))
			return
		default:
			c.failNode(ep, n, fmt.Errorf("netrun: partition %d replica %s sent op %d, want ranks", n.g.part, n.addr, f.Op))
			return
		}
	}
}

func (c *Cluster) getPending() *pending {
	p := c.pends.Get().(*pending)
	p.kind = pkLookup
	p.keys = p.keys[:0]
	p.pos = p.pos[:0]
	p.reply = p.reply[:0]
	p.sorted = false
	p.contig = false
	p.posBase = 0
	p.chunk = nil
	p.err = nil
	p.claimed.Store(false)
	p.hedged.Store(false)
	p.refs.Store(0)
	return p
}

func (c *Cluster) putPending(p *pending) {
	p.out = nil
	p.done = nil
	p.chunk = nil
	// Snapshot and load pendings stage a full partition's key set —
	// often orders of magnitude beyond BatchKeys. Recycling that
	// backing array would pin it in the pool behind every future
	// lookup pending for the cluster's lifetime; drop oversized
	// buffers instead.
	if cap(p.keys) > 2*c.batch {
		p.keys = nil
	}
	if cap(p.reply) > 2*c.batch {
		p.reply = nil
	}
	c.pends.Put(p)
}

// route stamps p's registration with a fresh request id and hands it to
// an eligible healthy replica of g, retrying (with restamping) across
// members until one accepts it. When the group is empty the epoch is
// failing — the member that zeroed it invokes ep.fail before route can
// observe the empty group grow stale — so waiting on ep.failed is
// bounded and p completes with the root cause. A non-empty group with
// no member eligible for p (e.g. only pre-v3 replicas left on a
// partition this client has written to) fails p alone with a
// descriptive error; the epoch stays healthy.
//
// route owns one dispatch-chain reference to p (set up by dispatch, or
// inherited from the swept chain on a failover re-route): terminal
// paths finish the chain, a successful enqueue passes the reference on
// to the connection. Hedgeable reads dispatch under the admission cap:
// when every eligible replica is at MaxPending outstanding frames,
// route parks until a slot frees instead of growing the queues.
func (c *Cluster) route(ep *epoch, g *replicaGroup, p *pending) {
	// Read p.kind once, before the enqueue: a successful enqueue hands
	// the chain reference to the connection, after which p may complete
	// and recycle at any moment.
	isRead := hedgeable(p.kind)
	limit := 0
	if isRead {
		limit = c.maxPending
	}
	for {
		if err := ep.Err(); err != nil {
			c.finish(p, err)
			return
		}
		n, empty := g.pickFor(c, p, nil)
		if n == nil {
			if !empty {
				c.finish(p, fmt.Errorf("netrun: partition %d cannot serve the request: %s", g.part, g.describeIneligible(c, p)))
				return
			}
			<-ep.failed
			c.finish(p, ep.err)
			return
		}
		ok, full := n.enqueue(p, c.reqID.Add(1), limit)
		if ok {
			n.stats().dispatched.Add(1)
			if isRead {
				g.earnHedge(c)
			}
			return
		}
		if full {
			g.waitAdmit(ep)
		}
	}
}

// dispatch binds p to the issuing call and routes it to partition gi.
// From here until the last reference drops, p is shared: one reference
// belongs to the issuing call's gather loop, one to the dispatch chain.
func (c *Cluster) dispatch(ep *epoch, gi int, p *pending, out []int, done chan *pending) {
	p.out = out
	p.done = done
	p.refs.Store(2)
	c.route(ep, ep.groups[gi], p)
}

// LookupBatch routes queries to the owning partitions in batches and
// returns global ranks in query order. Safe for concurrent callers.
func (c *Cluster) LookupBatch(queries []workload.Key) ([]int, error) {
	out := make([]int, len(queries))
	if err := c.LookupBatchInto(queries, out); err != nil {
		return nil, err
	}
	return out, nil
}

// LookupBatchInto is LookupBatch writing into a caller-provided slice
// (len(out) >= len(queries)) — with the pooled dispatch state this is
// the zero-allocation steady-state entry point. Concurrent callers
// multiplex over the shared node connections by request id; replies
// scatter directly into out from the connection read loops.
//
//dc:noalloc
func (c *Cluster) LookupBatchInto(queries []workload.Key, out []int) error {
	if len(out) < len(queries) {
		return fmt.Errorf("netrun: out len %d < %d queries", len(out), len(queries))
	}
	// The pause read lock is held for the whole call (two uncontended
	// atomic ops): a partition split blocks new calls here, waits out
	// the in-flight ones, and swaps the routing table with nobody
	// mid-scatter. The epoch must be loaded under it — a call that
	// loaded the pre-split epoch after the swap would fail spuriously.
	c.pause.RLock()
	defer c.pause.RUnlock()
	ep := c.ep.Load()
	if ep == nil {
		return ErrClusterClosed
	}
	if err := ep.Err(); err != nil {
		return err
	}
	if len(queries) == 0 {
		return nil
	}

	groups := ep.groups
	nc := c.calls.Get().(*netCall)
	if len(nc.accum) < len(groups) {
		nc.accum = make([]*pending, len(groups))
	}
	// Worst-case in flight: one full batch per BatchKeys run plus one
	// final partial flush per partition. Sizing the gather channel to
	// cover it means the read loops never block completing this call
	// (failover re-dispatch never changes the completion count: each
	// pending completes exactly once).
	if need := len(queries)/c.batch + len(groups) + 1; cap(nc.done) < need {
		nc.done = make(chan *pending, need)
	}

	// Sorted-batch detection mirrors the in-process runtime: an
	// ascending run is routed with one boundary search per partition
	// delimiter instead of one Route per key, its pendings stay
	// contiguous (sequential scatter, no position array), and v2
	// connections carry them as delta-coded frames. Unsorted input
	// joins the path via the pooled radix sort when the caller opted in
	// with DialOptions.SortedBatches.
	runKeys := queries
	var runPos []int32
	sorted := core.SortedRun(queries)
	if !sorted && c.opt.SortedBatches {
		runKeys, runPos = nc.sort.SortByKey(queries)
		sorted = true
	}

	part := c.part.Load()
	inflight := 0
	if sorted {
		core.ForEachSortedRun(part.Delimiters(), runKeys, c.batch, func(gi, start, end int) {
			p := c.getPending()
			p.sorted = true
			for _, q := range runKeys[start:end] {
				p.keys = append(p.keys, uint32(q))
			}
			if runPos != nil {
				p.pos = append(p.pos, runPos[start:end]...)
			} else {
				p.contig = true
				p.posBase = start
			}
			c.dispatch(ep, gi, p, out, nc.done)
			inflight++
		})
	} else {
		for i, q := range queries {
			gi := part.Route(q)
			p := nc.accum[gi]
			if p == nil {
				p = c.getPending()
				nc.accum[gi] = p
			}
			p.keys = append(p.keys, uint32(q))
			p.pos = append(p.pos, int32(i))
			if len(p.keys) >= c.batch {
				nc.accum[gi] = nil
				c.dispatch(ep, gi, p, out, nc.done)
				inflight++
			}
		}
		for gi, p := range nc.accum[:len(groups)] {
			if p == nil {
				continue
			}
			nc.accum[gi] = nil
			c.dispatch(ep, gi, p, out, nc.done)
			inflight++
		}
	}

	var firstErr error
	for inflight > 0 {
		p := <-nc.done
		inflight--
		if p.err != nil && firstErr == nil {
			firstErr = p.err
		}
		c.release(p)
	}
	c.calls.Put(nc)
	return firstErr
}

// Insert routes k to its owning partition and applies it to every
// healthy protocol-v3 replica of that partition. See InsertBatch.
func (c *Cluster) Insert(k workload.Key) error {
	var one [1]workload.Key
	one[0] = k
	return c.InsertBatch(one[:])
}

// InsertBatch adds keys (any order, duplicates allowed) to the running
// TCP cluster. Each key routes to the partition owning its sub-range
// and the write fans out to every healthy v3 replica of that partition
// — replicas answer lookups independently, so all of them must hold
// every write. Pre-v3 replicas never receive writes (and stop serving
// this client's lookups for the partition once it has written, since
// they are stale); a replica that dies mid-insert simply leaves the
// group — the survivors define the partition's state, and the replica
// reloads a sibling's snapshot when it rejoins. InsertBatch returns
// once every live replica acked: lookups issued after it returns see
// the keys. Safe for any number of concurrent callers and concurrently
// with lookups.
//
// Durability is bounded by the v3 replica count: a write acked by a
// partition's only v3 replica is lost if that replica's storage dies
// before a sibling syncs from it (its process restarting from the
// baseline key set cannot catch up from anyone, and reads of the
// partition fail rather than serve stale ranks). Deploy at least two
// v3 replicas per partition for writes that must survive a node loss.
//
// Global ranks stay exact through the client-side insert counters (see
// Cluster.ins), which assumes this client is the deployment's only
// writer; concurrent writing clients would need the counters shared.
func (c *Cluster) InsertBatch(keys []workload.Key) error {
	c.pause.RLock()
	defer c.pause.RUnlock()
	ep := c.ep.Load()
	if ep == nil {
		return ErrClusterClosed
	}
	if err := ep.Err(); err != nil {
		return err
	}
	if len(keys) == 0 {
		return nil
	}

	groups := ep.groups
	part := c.part.Load()
	perPart := make([][]uint32, len(groups))
	for _, k := range keys {
		gi := part.Route(k)
		perPart[gi] = append(perPart[gi], uint32(k))
	}
	// Near-worst-case fan-out pendings: every chunk to every current
	// member plus slack for one concurrent AddReplica; sizing the
	// gather channel to cover it keeps the read loops from blocking on
	// completions. (A replica admitted mid-call beyond the slack only
	// stalls a read loop momentarily — this gather loop always drains.)
	bound := 0
	for gi, pk := range perPart {
		if len(pk) > 0 {
			g := groups[gi]
			g.mu.Lock()
			m := len(g.members)
			g.mu.Unlock()
			bound += (len(pk)/c.batch + 1) * (m + 1)
		}
	}
	done := make(chan *pending, bound)
	inflight := 0
	var firstErr error
	// credit counts a gathered fan-out pending against its chunk and,
	// once the chunk is fully and cleanly acked, credits the
	// partition's rank-base counter. Per-chunk (not per-call) credit
	// keeps the counters truthful under partial failure: a chunk whose
	// replicas all applied is counted even when a later chunk errors —
	// the nodes hold those keys, so the read path must shift for them
	// — while a chunk that errored is not.
	credit := func(p *pending) {
		ck := p.chunk
		if p.err != nil {
			if firstErr == nil {
				firstErr = p.err
			}
			ck.failed = true
		}
		if ck.remaining--; ck.remaining == 0 && !ck.failed {
			c.ins[ck.part].Add(int64(ck.n))
		}
		c.release(p)
	}
	for gi, pk := range perPart {
		if len(pk) == 0 {
			continue
		}
		g := groups[gi]
		for start := 0; start < len(pk); start += c.batch {
			end := min(start+c.batch, len(pk))
			chunk := pk[start:end]
			ck := &insChunk{part: gi, n: len(chunk)}
			// Fan out under g.mu: membership changes (a replica dying,
			// a rejoiner being admitted) serialize against the fan-out,
			// which is what makes the catch-up snapshot protocol
			// exactly-once (see readmitWithCatchUp).
			targets, members := 0, 0
			g.mu.Lock()
			members = len(g.members)
			for _, m := range g.members {
				if m.version < ProtoV3 {
					continue
				}
				p := c.getPending()
				p.kind = pkInsert
				p.keys = append(p.keys, chunk...)
				p.done = done
				p.chunk = ck
				p.refs.Store(2)
				if m.catchingUp {
					m.holdq = append(m.holdq, p)
					targets++
					continue
				}
				if ok, _ := m.enqueue(p, c.reqID.Add(1), 0); ok {
					m.stats().dispatched.Add(1)
					targets++
				} else {
					// The member is being failed; the survivors (and
					// its own future catch-up) cover the write. p never
					// escaped, so it recycles directly.
					c.putPending(p)
				}
			}
			if targets > 0 {
				g.writes++
			}
			g.mu.Unlock()
			ck.remaining = targets
			inflight += targets
			if targets == 0 {
				var err error
				if members == 0 {
					<-ep.failed
					err = ep.err
				} else {
					err = fmt.Errorf("netrun: partition %d has no protocol-v3 replica to accept writes", gi)
				}
				if firstErr == nil {
					firstErr = err
				}
				break
			}
		}
	}
	for ; inflight > 0; inflight-- {
		credit(<-done)
	}
	return firstErr
}

// Nodes returns the number of cluster partitions (replica groups).
func (c *Cluster) Nodes() int { return len(c.part.Load().Parts) }

// Health snapshots per-replica liveness and traffic counters for the
// current epoch, ordered by partition then configured address. It
// returns nil after Close. Counters reset on Redial (a fresh epoch).
//
// Deprecated-adjacent note: Health remains the replica-level accessor;
// Stats wraps it (plus the cluster-level counters) into the unified
// versioned tree that the admin endpoint serves.
func (c *Cluster) Health() []ReplicaHealth {
	ep := c.ep.Load()
	if ep == nil {
		return nil
	}
	type liveInfo struct {
		syncing bool
		proto   uint32
	}
	var out []ReplicaHealth
	for _, g := range ep.groups {
		g.mu.Lock()
		addrs := append([]string(nil), g.addrs...)
		stats := append([]*replicaStats(nil), g.stats...)
		live := make(map[*replicaStats]liveInfo, len(g.members))
		for _, m := range g.members {
			live[m.st] = liveInfo{syncing: m.catchingUp, proto: m.version}
		}
		g.mu.Unlock()
		for i, addr := range addrs {
			s := stats[i]
			li, alive := live[s]
			out = append(out, ReplicaHealth{
				Partition:    g.part,
				Addr:         addr,
				Healthy:      alive,
				Syncing:      li.syncing,
				Proto:        li.proto,
				Dispatched:   s.dispatched.Load(),
				Failures:     s.failures.Load(),
				Rejoins:      s.rejoins.Load(),
				State:        stateName(s.state.Load()),
				LatencyEWMA:  time.Duration(s.ewmaNs.Load()),
				Hedges:       s.hedges.Load(),
				Ejections:    s.ejections.Load(),
				Probes:       s.probes.Load(),
				Readmits:     s.readmits.Load(),
				BudgetDenied: s.budgetDenied.Load(),
			})
		}
	}
	return out
}

// InsertedKeys reports how many keys this client has inserted into each
// partition (indexed by partition id) — the counters that correct the
// nodes' static rank bases on the read path.
func (c *Cluster) InsertedKeys() []int64 {
	// The pause read lock orders this read against SplitPartition's
	// counter-slice swap.
	c.pause.RLock()
	defer c.pause.RUnlock()
	out := make([]int64, len(c.ins))
	for i := range c.ins {
		out[i] = c.ins[i].Load()
	}
	return out
}

// StatsSchemaVersion identifies the ClusterStats JSON shape; consumers
// (dashboards, dcq) check it before interpreting the tree.
const StatsSchemaVersion = 1

// ClusterStats is the unified operator-facing view of a Cluster: the
// cluster-level shape and counters plus every replica's Health row, in
// one versioned tree. It is what the admin endpoint's /stats serves and
// what dcq's health report consumes; the older per-aspect accessors
// (Health, InsertedKeys, Nodes, DeltaCatchups) remain as thin views of
// the same data.
type ClusterStats struct {
	SchemaVersion int `json:"schema_version"`
	// Partitions is the current partition count (grows by one per
	// SplitPartition).
	Partitions int `json:"partitions"`
	// Protocol is the version this client advertises in hellos
	// (ProtoVersion, or the DialOptions.MaxVersion cap).
	Protocol uint32 `json:"protocol"`
	// InsertedKeys is the per-partition rank-base correction counters.
	InsertedKeys []int64 `json:"inserted_keys"`
	// DeltaCatchups counts rejoins completed via the positioned delta
	// path rather than a full snapshot load.
	DeltaCatchups int64           `json:"delta_catchups"`
	Replicas      []ReplicaHealth `json:"replicas"`
}

// Stats assembles the unified stats tree (see ClusterStats).
func (c *Cluster) Stats() ClusterStats {
	return ClusterStats{
		SchemaVersion: StatsSchemaVersion,
		Partitions:    c.Nodes(),
		Protocol:      c.helloVer,
		InsertedKeys:  c.InsertedKeys(),
		DeltaCatchups: c.deltaCatchups.Load(),
		Replicas:      c.Health(),
	}
}

// errReplicaDrained is the cause a drained member's swept pendings see.
var errReplicaDrained = errors.New("netrun: replica drained")

// errSplitReconfig retires the pre-split epoch once every node of the
// split partition acked its new identity: the connections must
// re-handshake against the new routing table, so the old epoch's loops
// are torn down wholesale (the same mechanism Redial rides, except
// SplitPartition immediately dials the successor epoch itself).
var errSplitReconfig = errors.New("netrun: epoch retired by partition split")

// membershipExchange performs one synchronous membership frame exchange
// on a connection no loop owns yet (a fresh join dial): write f, read
// the OpMembAck, return its payload. An OpErr reply surfaces as the
// node's refusal.
func membershipExchange(n *clusterNode, f Frame, timeout time.Duration) ([]uint32, error) {
	n.conn.SetDeadline(time.Now().Add(timeout))
	defer n.conn.SetDeadline(time.Time{})
	if err := n.bc.writeFrame(f); err != nil {
		return nil, err
	}
	if err := n.bc.w.Flush(); err != nil {
		return nil, err
	}
	r, err := n.bc.readFrame()
	if err != nil {
		return nil, err
	}
	switch r.Op {
	case OpMembAck:
		return append([]uint32(nil), r.Payload...), nil
	case OpErr:
		code := uint32(0)
		if len(r.Payload) > 0 {
			code = r.Payload[0]
		}
		return nil, fmt.Errorf("node refused the membership op (code %d)", code)
	default:
		return nil, fmt.Errorf("bad membership ack (op %d)", r.Op)
	}
}

// AddReplica joins a new replica at addr into partition part's group
// without restarting the epoch. The node may be an unassigned join node
// (dcnode -join, serving the zero identity until assigned) — AddReplica
// hands it the partition's identity over OpAddReplica before any loop
// starts — or a node already serving the exact identity, which passes
// the ordinary hello cross-check. A partition that has absorbed writes
// admits the newcomer through the same catch-up machinery rejoins use:
// it takes writes immediately (hold queue) but serves no reads until a
// sibling's snapshot lands. Requires a protocol-v6 node; returns an
// error when the dial, handshake, or identity assignment fails — once
// the address is registered, later failures are the rejoin loop's to
// retry, and AddReplica reports success.
func (c *Cluster) AddReplica(part int, addr string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClusterClosed
	}
	ep := c.ep.Load()
	if ep == nil {
		return ErrClusterClosed
	}
	if err := ep.Err(); err != nil {
		return err
	}
	pt := c.part.Load()
	if part < 0 || part >= len(pt.Parts) {
		return fmt.Errorf("netrun: partition %d out of range [0,%d)", part, len(pt.Parts))
	}
	g := ep.groups[part]
	g.mu.Lock()
	for _, a := range g.addrs {
		if a == addr {
			g.mu.Unlock()
			return fmt.Errorf("netrun: partition %d already has replica %s", part, addr)
		}
	}
	g.mu.Unlock()

	st := new(replicaStats)
	n, err := c.dialNode(g, addr, st, nil, true)
	if err != nil {
		return err
	}
	if n.version < ProtoV6 {
		n.conn.Close()
		return fmt.Errorf("netrun: partition %d: replica %s speaks protocol v%d; live membership needs v6", part, addr, n.version)
	}
	want := pt.Parts[part]
	if n.keyCount == 0 {
		// Unassigned join node: assign the identity synchronously,
		// before the loops take over the connection.
		ack, aerr := membershipExchange(n, Frame{Op: OpAddReplica, ReqID: c.reqID.Add(1), Payload: []uint32{
			uint32(want.RankBase), uint32(len(want.Keys)),
			uint32(want.Keys[0]), uint32(want.Keys[len(want.Keys)-1]),
		}}, c.opt.Timeout)
		if aerr != nil {
			n.conn.Close()
			return fmt.Errorf("netrun: partition %d replica %s: assigning identity: %w", part, addr, aerr)
		}
		if len(ack) != 1 || int(ack[0]) != len(want.Keys) {
			n.conn.Close()
			return fmt.Errorf("netrun: partition %d replica %s acked %v for identity assignment, want [%d]", part, addr, ack, len(want.Keys))
		}
		n.rankBase, n.keyCount, n.liveCount = want.RankBase, len(want.Keys), len(want.Keys)
	}

	// Register the address: Health lists it, a later failure re-dials
	// it, and the rewritten config carries it into the next dialEpoch.
	// Plain admission is sound only while the partition is pristine
	// (no write fanned out this epoch, no insert recorded); decided in
	// the same g.mu section the write fan-out uses, exactly like the
	// rejoin path.
	g.mu.Lock()
	g.addrs = append(g.addrs, addr)
	g.stats = append(g.stats, st)
	pristine := g.writes == 0 && c.ins[part].Load() == 0
	if pristine {
		select {
		case <-ep.failed:
			g.mu.Unlock()
			n.conn.Close()
			return ep.err
		default:
		}
		g.members = append(g.members, n)
	}
	g.mu.Unlock()
	c.groups[part] = append(c.groups[part], addr)
	if pristine {
		// The wg.Add cannot race Close's or Redial's Wait: both take
		// c.mu first, which this call holds.
		ep.wg.Add(2)
		go n.sendLoop(ep)
		go n.readLoop(ep)
		return nil
	}
	// The partition absorbed writes this baseline node never saw: admit
	// it through the catch-up path (writes flow to its hold queue, reads
	// skip it until a sibling's snapshot lands). A join node carries no
	// durable chain, so this always takes the full-snapshot payload.
	if !c.readmitWithCatchUp(ep, g, n) {
		// No snapshot source right now. The address is configured, so a
		// rejoin loop finishes the admission in the background.
		n.conn.Close()
		ep.goRejoin(g, addr, st)
	}
	return nil
}

// DrainReplica removes the replica at addr from partition part's group
// without restarting the epoch: the address is deconfigured (so no
// rejoin loop resurrects it), the node is quiesced over OpDrainReplica
// (v6 — it stops absorbing writes and keeps its final state), and the
// member's outstanding work is settled exactly the way a failed
// replica's is — reads fail over to siblings, acked writes stand. The
// node process itself keeps running and serving its index; it is simply
// no longer part of this cluster. Draining the partition's only
// configured replica, or its last live one, is refused.
func (c *Cluster) DrainReplica(part int, addr string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClusterClosed
	}
	ep := c.ep.Load()
	if ep == nil {
		return ErrClusterClosed
	}
	if err := ep.Err(); err != nil {
		return err
	}
	pt := c.part.Load()
	if part < 0 || part >= len(pt.Parts) {
		return fmt.Errorf("netrun: partition %d out of range [0,%d)", part, len(pt.Parts))
	}
	g := ep.groups[part]

	g.mu.Lock()
	idx := -1
	for i, a := range g.addrs {
		if a == addr {
			idx = i
			break
		}
	}
	if idx < 0 {
		g.mu.Unlock()
		return fmt.Errorf("netrun: partition %d has no replica %s", part, addr)
	}
	if len(g.addrs) == 1 {
		g.mu.Unlock()
		return fmt.Errorf("netrun: refusing to drain partition %d's only replica %s", part, addr)
	}
	var target *clusterNode
	for _, m := range g.members {
		if m.addr == addr {
			target = m
			break
		}
	}
	if target != nil {
		if len(g.members) == 1 {
			g.mu.Unlock()
			return fmt.Errorf("netrun: refusing to drain partition %d's last live replica %s (its siblings are down)", part, addr)
		}
		if target.version < ProtoV6 {
			g.mu.Unlock()
			return fmt.Errorf("netrun: partition %d: replica %s speaks protocol v%d; live membership needs v6", part, addr, target.version)
		}
	}
	// Deconfigure the address (a rejoin loop exits at its configured
	// check) and stop dispatching new work to the member.
	g.addrs = append(g.addrs[:idx], g.addrs[idx+1:]...)
	g.stats = append(g.stats[:idx], g.stats[idx+1:]...)
	if target != nil {
		for i, m := range g.members {
			if m == target {
				g.members = append(g.members[:i], g.members[i+1:]...)
				break
			}
		}
	}
	g.mu.Unlock()
	for i, a := range c.groups[part] {
		if a == addr {
			c.groups[part] = append(append([]string(nil), c.groups[part][:i]...), c.groups[part][i+1:]...)
			break
		}
	}
	if target == nil {
		// The replica was already down: deconfiguring it is the whole
		// drain.
		return nil
	}

	// Quiesce the node: after the ack it accepts no further writes, so
	// nothing this cluster does can change state it no longer reports.
	p := c.getPending()
	p.kind = pkDrain
	p.done = make(chan *pending, 1)
	p.refs.Store(2)
	var drainErr error
	if ok, _ := target.enqueue(p, c.reqID.Add(1), 0); ok {
		target.stats().dispatched.Add(1)
		r := <-p.done
		drainErr = r.err
		c.release(r)
	} else {
		c.putPending(p)
		drainErr = fmt.Errorf("netrun: partition %d replica %s died mid-drain", part, addr)
	}

	// Tear the member down exactly once. Losing the failOnce race to a
	// concurrent failNode is fine: the sweep ran there, and its rejoin
	// loop exits at the deconfigured address.
	target.failOnce.Do(func() {
		target.conn.Close()
		g.mu.Lock()
		held := target.holdq
		target.holdq = nil
		target.catchingUp = false
		hasV3 := false
		for _, m := range g.members {
			if m.version >= ProtoV3 && !m.catchingUp {
				hasV3 = true
				break
			}
		}
		g.mu.Unlock()
		rest := target.collectPending(held)
		c.settlePending(ep, target, rest, hasV3, errReplicaDrained)
	})
	return drainErr
}

// SplitPartition divides partition part in two at the median of its
// baseline keys, retargeting the partition's replicas onto the halves
// live: the data plane pauses (in-flight calls drain, new ones block),
// every replica of the partition swaps to its assigned half-identity
// over OpSplitPartition, the routing table and insert counters are
// rebuilt, and a fresh connection epoch is dialed against the new
// shape. Reads and writes resume against the split layout; checksums
// are unchanged because every live key keeps exactly one owner (the
// split key assignment matches the new routing delimiter exactly).
//
// The partition's replicas divide between the halves (low half gets the
// ceiling), so the group must have at least two members; every group in
// the cluster must be full and settled (the reshape re-dials everyone);
// and the split partition's members must all speak protocol v6. A
// failure after some nodes retargeted leaves mixed identities no single
// routing table matches: the epoch fails with the root cause and the
// operator restores the partition's nodes before Redial.
func (c *Cluster) SplitPartition(part int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClusterClosed
	}
	ep := c.ep.Load()
	if ep == nil {
		return ErrClusterClosed
	}
	if err := ep.Err(); err != nil {
		return err
	}
	pt := c.part.Load()
	if part < 0 || part >= len(pt.Parts) {
		return fmt.Errorf("netrun: partition %d out of range [0,%d)", part, len(pt.Parts))
	}
	// Quiesce the data plane for the whole reshape: new calls block at
	// the pause read lock, in-flight ones drain before Lock returns.
	c.pause.Lock()
	defer c.pause.Unlock()

	// Preflight. Refusals here leave the cluster untouched.
	for _, g := range ep.groups {
		g.mu.Lock()
		full := len(g.members) == len(g.addrs)
		settled := true
		for _, m := range g.members {
			if m.catchingUp {
				settled = false
			}
		}
		g.mu.Unlock()
		if !full || !settled {
			return fmt.Errorf("netrun: partition %d has a down or syncing replica; a split re-dials every node, so the cluster must be fully healthy first", g.part)
		}
	}
	tg := ep.groups[part]
	tg.mu.Lock()
	addrs := append([]string(nil), tg.addrs...)
	byAddr := make(map[string]*clusterNode, len(tg.members))
	for _, m := range tg.members {
		byAddr[m.addr] = m
	}
	tg.mu.Unlock()
	if len(addrs) < 2 {
		return fmt.Errorf("netrun: partition %d has %d replica(s); a split needs at least one per half", part, len(addrs))
	}
	for _, a := range addrs {
		m := byAddr[a]
		if m == nil {
			return fmt.Errorf("netrun: partition %d replica %s went down mid-preflight", part, a)
		}
		if m.version < ProtoV6 {
			return fmt.Errorf("netrun: partition %d: replica %s speaks protocol v%d; live membership needs v6", part, a, m.version)
		}
	}

	keys := pt.Parts[part].Keys
	cut, ok := core.SplitPoint(keys)
	if !ok {
		return fmt.Errorf("netrun: partition %d cannot split: every baseline key is equal, no legal delimiter exists", part)
	}
	npt, err := pt.SplitAt(part, cut)
	if err != nil {
		return err
	}
	lo, hi := npt.Parts[part], npt.Parts[part+1]
	// splitKey assigns the nodes' live keys (baseline plus inserts): the
	// low node keeps k <= splitKey, the high node keeps k > splitKey.
	// keys[cut]-1 makes that assignment agree exactly with the new
	// routing delimiter keys[cut] (the high partition owns k >=
	// keys[cut]): keys inserted strictly between keys[cut-1] and
	// keys[cut] route low, so they must stay on the low node.
	splitKey := uint32(keys[cut]) - 1

	// Retarget every replica at its half: the first ceil(n/2) configured
	// addresses keep the low half, the rest the high half.
	done := make(chan *pending, len(addrs))
	loCount := (len(addrs) + 1) / 2
	sent := 0
	var opErr error
	for i, a := range addrs {
		half, keep := lo, uint32(0)
		if i >= loCount {
			half, keep = hi, 1
		}
		p := c.getPending()
		p.kind = pkSplit
		p.keys = append(p.keys,
			uint32(half.RankBase), uint32(len(half.Keys)),
			uint32(half.Keys[0]), uint32(half.Keys[len(half.Keys)-1]),
			splitKey, keep)
		p.done = done
		p.refs.Store(2)
		if ok, _ := byAddr[a].enqueue(p, c.reqID.Add(1), 0); !ok {
			c.putPending(p)
			opErr = fmt.Errorf("netrun: partition %d replica %s died before its split frame was sent", part, a)
			break
		}
		byAddr[a].stats().dispatched.Add(1)
		sent++
	}
	for ; sent > 0; sent-- {
		r := <-done
		if r.err != nil && opErr == nil {
			opErr = r.err
		}
		c.release(r)
	}
	if opErr != nil {
		ep.fail(fmt.Errorf("netrun: partition %d split failed mid-reshape; node identities may be mixed — restore or restart the partition's nodes, then Redial: %w", part, opErr))
		ep.wg.Wait()
		return opErr
	}

	// Every node acked its half: retire the epoch and dial the successor
	// against the new table. The WaitGroup barrier orders every
	// old-epoch goroutine before the swaps below, which is what makes
	// the plain-slice counter swap race-free.
	ep.fail(errSplitReconfig)
	ep.wg.Wait()
	c.part.Store(npt)
	ng := make([][]string, 0, len(c.groups)+1)
	for i, as := range c.groups {
		if i == part {
			ng = append(ng,
				append([]string(nil), addrs[:loCount]...),
				append([]string(nil), addrs[loCount:]...))
		} else {
			ng = append(ng, as)
		}
	}
	c.groups = ng
	// Fresh counters sized to the new partition count: dialEpoch's hello
	// seeding reconstructs each half's insert total from the nodes'
	// live-minus-baseline counts (writes were quiesced by the pause, so
	// no ack credit can race the seed).
	c.ins = make([]atomic.Int64, len(npt.Parts))
	nep, err := c.dialEpoch()
	if err != nil {
		// The config and routing table are already post-split and
		// mutually consistent; Redial retries the dial against them.
		return fmt.Errorf("netrun: partition %d split committed but the re-dial failed (Redial retries it): %w", part, err)
	}
	c.ep.Store(nep)
	return nil
}

// Err reports the cluster's terminal state: nil while healthy (single-
// replica failures are absorbed by failover and never surface here),
// ErrClusterClosed after Close, or the root-cause error after a
// partition lost its last replica (until Redial re-establishes the
// connections).
func (c *Cluster) Err() error {
	ep := c.ep.Load()
	if ep == nil {
		return ErrClusterClosed
	}
	return ep.Err()
}

// Redial tears down a failed connection set and dials a fresh one to
// the original addresses, re-running the hello verification on every
// replica. It is the opt-in recovery path from a terminal failure — a
// partition that lost every replica — and errors if the cluster is
// healthy (single-replica failures rejoin on their own) or closed.
func (c *Cluster) Redial() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClusterClosed
	}
	if old := c.ep.Load(); old != nil {
		if old.Err() == nil {
			return errors.New("netrun: Redial on a healthy cluster")
		}
		old.wg.Wait()
	}
	ep, err := c.dialEpoch()
	if err != nil {
		return err
	}
	c.ep.Store(ep)
	return nil
}

// Close fails the connection set with ErrClusterClosed (completing any
// in-flight calls with that error) and waits for the per-connection
// loops and rejoin loops to exit. Idempotent; Redial after Close is
// refused.
func (c *Cluster) Close() {
	c.mu.Lock()
	c.closed = true
	ep := c.ep.Swap(nil)
	adm := c.adm
	c.adm = nil
	c.mu.Unlock()
	if adm != nil {
		adm.Close()
	}
	if ep != nil {
		ep.fail(ErrClusterClosed)
		ep.wg.Wait()
	}
}
