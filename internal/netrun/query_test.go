package netrun

import (
	"math/rand"
	"net"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// tcpQueryOracle answers the four v5 ops from a plain sorted []int via
// sort.SearchInts — the same independent reference the in-process
// sweep (core.TestQueryOpsOracleSweep) checks against.
type tcpQueryOracle struct{ ints []int }

func newTCPQueryOracle(keys []workload.Key) *tcpQueryOracle {
	o := &tcpQueryOracle{ints: make([]int, len(keys))}
	for i, k := range keys {
		o.ints[i] = int(k)
	}
	sort.Ints(o.ints)
	return o
}

func (o *tcpQueryOracle) add(keys []workload.Key) {
	for _, k := range keys {
		o.ints = append(o.ints, int(k))
	}
	sort.Ints(o.ints)
}

func (o *tcpQueryOracle) countRange(lo, hi workload.Key) int {
	if hi < lo {
		return 0
	}
	return sort.SearchInts(o.ints, int(hi)+1) - sort.SearchInts(o.ints, int(lo))
}

func (o *tcpQueryOracle) scanRange(lo, hi workload.Key, limit int) []workload.Key {
	var out []workload.Key
	if hi < lo {
		return out
	}
	for i := sort.SearchInts(o.ints, int(lo)); i < len(o.ints) && o.ints[i] <= int(hi); i++ {
		if limit >= 0 && len(out) >= limit {
			break
		}
		out = append(out, workload.Key(o.ints[i]))
	}
	return out
}

func (o *tcpQueryOracle) topK(k int) []workload.Key {
	var out []workload.Key
	for i := len(o.ints) - 1; i >= 0 && len(out) < k; i-- {
		out = append(out, workload.Key(o.ints[i]))
	}
	return out
}

func checkTCPQueryOps(t *testing.T, tag string, c *Cluster, o *tcpQueryOracle, rng *rand.Rand, maxKey int) {
	t.Helper()

	ranges := make([]KeyRange, 24)
	for i := range ranges {
		lo := workload.Key(rng.Intn(maxKey))
		hi := workload.Key(rng.Intn(maxKey))
		if i%7 == 0 {
			hi = lo - 1 // inverted: must count 0 without touching the wire
		}
		if i%11 == 0 {
			lo = 0
		}
		ranges[i] = KeyRange{Lo: lo, Hi: hi}
	}
	counts := make([]int, len(ranges))
	if err := c.CountRangeBatch(ranges, counts); err != nil {
		t.Fatalf("%s: CountRangeBatch: %v", tag, err)
	}
	for i, r := range ranges {
		if want := o.countRange(r.Lo, r.Hi); counts[i] != want {
			t.Fatalf("%s: CountRange(%d,%d) = %d, want %d", tag, r.Lo, r.Hi, counts[i], want)
		}
	}

	for trial := 0; trial < 6; trial++ {
		lo := workload.Key(rng.Intn(maxKey))
		hi := lo + workload.Key(rng.Intn(maxKey/8))
		limit := rng.Intn(200) - 1
		got, err := c.ScanRange(lo, hi, limit, nil)
		if err != nil {
			t.Fatalf("%s: ScanRange: %v", tag, err)
		}
		want := o.scanRange(lo, hi, limit)
		if len(got) != len(want) {
			t.Fatalf("%s: ScanRange(%d,%d,%d) len %d, want %d", tag, lo, hi, limit, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: ScanRange(%d,%d)[%d] = %d, want %d", tag, lo, hi, i, got[i], want[i])
			}
		}
	}

	for _, k := range []int{1, 3, 17, 100} {
		got, err := c.TopK(k, nil)
		if err != nil {
			t.Fatalf("%s: TopK: %v", tag, err)
		}
		want := o.topK(k)
		if len(got) != len(want) {
			t.Fatalf("%s: TopK(%d) len %d, want %d", tag, k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: TopK(%d)[%d] = %d, want %d", tag, k, i, got[i], want[i])
			}
		}
	}

	qs := make([]workload.Key, 64)
	for i := range qs {
		if i%3 == 0 {
			qs[i] = workload.Key(o.ints[rng.Intn(len(o.ints))]) // present key
		} else {
			qs[i] = workload.Key(rng.Intn(maxKey))
		}
	}
	muls, err := c.MultiGet(qs)
	if err != nil {
		t.Fatalf("%s: MultiGet: %v", tag, err)
	}
	for i, q := range qs {
		if want := o.countRange(q, q); muls[i] != want {
			t.Fatalf("%s: MultiGet key %d = %d, want %d", tag, q, muls[i], want)
		}
	}
}

// TestTCPQueryOpsAppendSemantics pins the buffer contract shared with
// the in-process engine: ScanRange and TopK append to the caller's
// slice — the prefix is preserved, and limit/k count only the appended
// keys. A caller reusing a buffer across calls passes buf[:0].
func TestTCPQueryOpsAppendSemantics(t *testing.T) {
	keys := workload.SortedKeys(4000, 5)
	rc, shutdown := startReplicated(t, keys, 3, 1, 256, DialOptions{})
	defer shutdown()
	c := rc.c

	prefix := []workload.Key{111, 222, 333}
	lo, hi := keys[100], keys[3000]
	const limit = 50
	got, err := c.ScanRange(lo, hi, limit, append([]workload.Key(nil), prefix...))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(prefix)+limit {
		t.Fatalf("ScanRange appended %d keys, want %d", len(got)-len(prefix), limit)
	}
	for i, p := range prefix {
		if got[i] != p {
			t.Fatalf("ScanRange clobbered prefix[%d]: got %d, want %d", i, got[i], p)
		}
	}
	fresh, err := c.ScanRange(lo, hi, limit, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range fresh {
		if got[len(prefix)+i] != k {
			t.Fatalf("ScanRange appended[%d] = %d, want %d", i, got[len(prefix)+i], k)
		}
	}

	const k = 40
	top, err := c.TopK(k, append([]workload.Key(nil), prefix...))
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != len(prefix)+k {
		t.Fatalf("TopK appended %d keys, want %d", len(top)-len(prefix), k)
	}
	for i, p := range prefix {
		if top[i] != p {
			t.Fatalf("TopK clobbered prefix[%d]: got %d, want %d", i, top[i], p)
		}
	}
	freshTop, err := c.TopK(k, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range freshTop {
		if top[len(prefix)+i] != v {
			t.Fatalf("TopK appended[%d] = %d, want %d", i, top[len(prefix)+i], v)
		}
	}
}

// TestTCPQueryOpsOracle is the over-the-wire half of the oracle sweep:
// all four v5 ops against a replicated loopback cluster, exact against
// sort.SearchInts at quiescent checkpoints between rounds of
// concurrent inserts and queries.
func TestTCPQueryOpsOracle(t *testing.T) {
	keys := workload.SortedKeys(16000, 31)
	maxKey := int(keys[len(keys)-1]) + 1
	rc, shutdown := startReplicated(t, keys, 4, 2, 512, DialOptions{})
	defer shutdown()
	c := rc.c

	rng := rand.New(rand.NewSource(7))
	o := newTCPQueryOracle(keys)
	checkTCPQueryOps(t, "static", c, o, rng, maxKey)

	for round := 0; round < 3; round++ {
		ins := make([]workload.Key, 400)
		for i := range ins {
			ins[i] = workload.Key(rng.Intn(maxKey))
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for start := 0; start < len(ins); start += 100 {
				if err := c.InsertBatch(ins[start : start+100]); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			qrng := rand.New(rand.NewSource(int64(round)))
			for i := 0; i < 15; i++ {
				lo := workload.Key(qrng.Intn(maxKey))
				hi := lo + workload.Key(qrng.Intn(maxKey/4))
				n, err := c.CountRange(lo, hi)
				if err != nil || n < 0 {
					t.Errorf("concurrent CountRange: n=%d err=%v", n, err)
					return
				}
				scan, err := c.ScanRange(lo, hi, 50, nil)
				if err != nil {
					t.Errorf("concurrent ScanRange: %v", err)
					return
				}
				for j := 1; j < len(scan); j++ {
					if scan[j] < scan[j-1] {
						t.Errorf("concurrent ScanRange not ascending at %d", j)
						return
					}
				}
				top, err := c.TopK(10, nil)
				if err != nil {
					t.Errorf("concurrent TopK: %v", err)
					return
				}
				for j := 1; j < len(top); j++ {
					if top[j] > top[j-1] {
						t.Errorf("concurrent TopK not descending at %d", j)
						return
					}
				}
			}
		}()
		wg.Wait()
		o.add(ins)
		checkTCPQueryOps(t, "quiesced", c, o, rng, maxKey)
	}
}

func scanChecksum(keys []workload.Key) uint32 {
	sum := uint32(0)
	for _, k := range keys {
		sum = sum*31 + uint32(k)
	}
	return sum
}

// TestTCPScanSurvivesReplicaKill kills a replica while scans stream
// against its partition: every scan — including any in flight at the
// kill, re-dispatched to the surviving sibling by the failover sweep —
// must return output checksum-identical to the pre-kill baseline.
func TestTCPScanSurvivesReplicaKill(t *testing.T) {
	keys := workload.SortedKeys(12000, 17)
	rc, shutdown := startReplicated(t, keys, 3, 2, 512, DialOptions{
		OpTimeout: 2 * time.Second,
	})
	defer shutdown()
	c := rc.c

	lo, hi := keys[0], keys[len(keys)-1]
	base, err := c.ScanRange(lo, hi, -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != len(keys) {
		t.Fatalf("baseline scan returned %d keys, want %d", len(base), len(keys))
	}
	want := scanChecksum(base)
	baseTop, err := c.TopK(64, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantTop := scanChecksum(baseTop)

	const scans = 60
	done := make(chan error, 1)
	go func() {
		var buf []workload.Key
		for i := 0; i < scans; i++ {
			got, err := c.ScanRange(lo, hi, -1, buf[:0])
			if err != nil {
				done <- err
				return
			}
			buf = got
			if cs := scanChecksum(got); cs != want {
				done <- &checksumMismatch{i, cs, want}
				return
			}
			top, err := c.TopK(64, nil)
			if err != nil {
				done <- err
				return
			}
			if cs := scanChecksum(top); cs != wantTop {
				done <- &checksumMismatch{i, cs, wantTop}
				return
			}
		}
		done <- nil
	}()

	// Kill one replica of the middle partition while the scan loop
	// runs; in-flight pendings on it re-route to the sibling.
	time.Sleep(20 * time.Millisecond)
	rc.kill(1, 0)

	if err := <-done; err != nil {
		t.Fatalf("scan through replica kill: %v", err)
	}
	if n, err := c.CountRange(lo, hi); err != nil || n != len(keys) {
		t.Fatalf("post-kill CountRange = %d err=%v, want %d", n, err, len(keys))
	}
}

type checksumMismatch struct {
	iter       int
	got, wantV uint32
}

func (m *checksumMismatch) Error() string {
	return "checksum mismatch at iteration " + string(rune('0'+m.iter%10)) + ": got/want differ"
}

// startCapped builds a single-replica loopback cluster whose node for
// partition i negotiates at most caps[i] (0 = uncapped).
func startCapped(t *testing.T, keys []workload.Key, caps []uint32, opt DialOptions) (*core.Partitioning, *Cluster, func()) {
	t.Helper()
	part, err := core.NewPartitioning(keys, len(caps))
	if err != nil {
		t.Fatal(err)
	}
	var nodes []*Node
	var addrs []string
	for i := range caps {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		node := NewPartitionNode(part.Parts[i].Keys, part.Parts[i].RankBase)
		node.MaxVersion = caps[i]
		nodes = append(nodes, node)
		addrs = append(addrs, lis.Addr().String())
		go node.Serve(lis)
	}
	if opt.Timeout == 0 {
		opt.Timeout = 5 * time.Second
	}
	c, err := Dial(addrs, keys, opt)
	if err != nil {
		for _, n := range nodes {
			n.Close()
		}
		t.Fatal(err)
	}
	return part, c, func() {
		c.Close()
		for _, n := range nodes {
			n.Close()
		}
	}
}

// TestQueryOpsPreV5NodesRankOnly pins the negotiation matrix from the
// node side: against nodes capped at v4, the v5 client keeps answering
// rank lookups (and writes) but fails each query op with the
// descriptive v5-availability error instead of hanging or killing the
// connection.
func TestQueryOpsPreV5NodesRankOnly(t *testing.T) {
	keys := workload.SortedKeys(4000, 5)
	_, c, shutdown := startCapped(t, keys, []uint32{ProtoV4, ProtoV4}, DialOptions{BatchKeys: 256})
	defer shutdown()

	qs := []workload.Key{keys[10], keys[100], keys[3999]}
	ranks, err := c.LookupBatch(qs)
	if err != nil {
		t.Fatalf("ranks against v4 nodes: %v", err)
	}
	if len(ranks) != len(qs) {
		t.Fatalf("got %d ranks", len(ranks))
	}
	if err := c.Insert(keys[0]); err != nil {
		t.Fatalf("insert against v4 nodes: %v", err)
	}

	if _, err := c.CountRange(keys[0], keys[3999]); err == nil || !strings.Contains(err.Error(), "protocol-v5") {
		t.Fatalf("CountRange against v4 nodes: err = %v, want protocol-v5 availability error", err)
	}
	if _, err := c.ScanRange(keys[0], keys[100], 10, nil); err == nil || !strings.Contains(err.Error(), "protocol-v5") {
		t.Fatalf("ScanRange against v4 nodes: err = %v", err)
	}
	if _, err := c.TopK(5, nil); err == nil || !strings.Contains(err.Error(), "protocol-v5") {
		t.Fatalf("TopK against v4 nodes: err = %v", err)
	}
	if _, err := c.MultiGet(qs); err == nil || !strings.Contains(err.Error(), "protocol-v5") {
		t.Fatalf("MultiGet against v4 nodes: err = %v", err)
	}

	// Ranks must still work after the refused ops (connections intact).
	if _, err := c.LookupBatch(qs); err != nil {
		t.Fatalf("ranks after refused query ops: %v", err)
	}
}

// TestQueryOpsClientMaxVersionCap pins the same matrix from the client
// side: DialOptions.MaxVersion 4 emulates an older client against
// current nodes.
func TestQueryOpsClientMaxVersionCap(t *testing.T) {
	keys := workload.SortedKeys(4000, 6)
	_, c, shutdown := startCapped(t, keys, []uint32{0, 0}, DialOptions{BatchKeys: 256, MaxVersion: ProtoV4})
	defer shutdown()

	for _, h := range c.Health() {
		if h.Proto > ProtoV4 {
			t.Fatalf("replica %s negotiated v%d despite client cap 4", h.Addr, h.Proto)
		}
	}
	if _, err := c.LookupBatch([]workload.Key{keys[1], keys[2000]}); err != nil {
		t.Fatalf("capped-client ranks: %v", err)
	}
	if _, err := c.CountRange(keys[0], keys[100]); err == nil || !strings.Contains(err.Error(), "protocol-v5") {
		t.Fatalf("capped-client CountRange: err = %v", err)
	}
}

// TestQueryOpsMixedVersionPartitions runs a deployment mid-rollout:
// one partition still on v4, the rest on v5. Ranks span everything;
// query ops confined to upgraded partitions succeed, and ops touching
// the stale partition fail with the availability error.
func TestQueryOpsMixedVersionPartitions(t *testing.T) {
	keys := workload.SortedKeys(6000, 9)
	part, c, shutdown := startCapped(t, keys, []uint32{0, ProtoV4, 0}, DialOptions{BatchKeys: 256})
	defer shutdown()

	if _, err := c.LookupBatch([]workload.Key{keys[0], keys[3000], keys[5999]}); err != nil {
		t.Fatalf("mixed-version ranks: %v", err)
	}

	p0 := part.Parts[0].Keys
	n, err := c.CountRange(p0[0], p0[len(p0)-1])
	if err != nil {
		t.Fatalf("CountRange confined to v5 partition 0: %v", err)
	}
	if n != len(p0) {
		t.Fatalf("CountRange over partition 0 = %d, want %d", n, len(p0))
	}

	if _, err := c.CountRange(keys[0], keys[len(keys)-1]); err == nil || !strings.Contains(err.Error(), "protocol-v5") {
		t.Fatalf("CountRange spanning v4 partition: err = %v, want availability error", err)
	}
	// TopK always touches every partition, so mid-rollout it is
	// unavailable until the last node upgrades.
	if _, err := c.TopK(3, nil); err == nil || !strings.Contains(err.Error(), "protocol-v5") {
		t.Fatalf("TopK spanning v4 partition: err = %v", err)
	}
}
