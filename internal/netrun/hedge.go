package netrun

import (
	"slices"
	"sync"
	"time"
)

// Latency scoring and probation tuning. The hysteresis counts are
// deliberately small: a gray replica serves *every* reply slowly, so a
// handful of consecutive outliers is a strong signal, while a single
// GC pause or compaction stall never gets past "suspect".
const (
	// suspectAfter consecutive outlier replies mark a replica suspect
	// (still serving; the state is operator signal via Health).
	suspectAfter = 3
	// ejectAfter consecutive outliers eject it — reads shed — provided
	// a non-ejected sibling exists to absorb them.
	ejectAfter = 6
	// readmitProbes fast probe replies promote an ejected replica back
	// to healthy.
	readmitProbes = 2
	// quantileEvery is how often (in samples) the latency window is
	// re-sorted into the hedge-delay quantile estimate.
	quantileEvery = 16
)

// observe records one read reply's latency against n's replica slot:
// the EWMA and the windowed quantile estimate behind the hedge delay
// always, and — when DialOptions.EjectFactor enabled ejection — the
// probation state machine that sheds reads from a sustained outlier.
// Called by the read loop with no locks held; writes are never
// observed, so a replica drowning in inserts is not scored for it.
func (n *clusterNode) observe(c *Cluster, d time.Duration) {
	s := n.stats()
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	// The outlier test is relative: this reply against the fastest
	// non-ejected sibling's EWMA. Read the baseline before taking s.mu
	// — siblingBaseline takes g.mu, and replicaStats.mu nests inside
	// it, never around it.
	base, hasAlt := int64(0), false
	if c.opt.Ejection.Factor > 0 {
		base, hasAlt = n.g.siblingBaseline(n)
	}
	q := c.opt.Hedging.Quantile
	if q <= 0 {
		q = 0.99
	}
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	ewma := s.ewmaNs.Load()
	if ewma == 0 {
		ewma = ns
	} else {
		ewma += (ns - ewma) / 8
	}
	s.ewmaNs.Store(ewma)
	k := s.samples.Add(1)
	s.window[(k-1)%int64(len(s.window))] = ns
	if k%quantileEvery == 0 || k == quantileEvery/2 {
		m := int64(len(s.window))
		if k < m {
			m = k
		}
		var buf [len(s.window)]int64
		copy(buf[:m], s.window[:m])
		slices.Sort(buf[:m])
		s.hedgeNs.Store(buf[int(q*float64(m-1))])
	}
	if c.opt.Ejection.Factor <= 0 {
		return
	}
	bad := base > 0 && ns > int64(c.opt.Ejection.MinLatency) &&
		float64(ns) > float64(base)*c.opt.Ejection.Factor
	switch s.state.Load() {
	case rsHealthy, rsSuspect:
		if !bad {
			s.consecBad = 0
			s.state.Store(rsHealthy)
			return
		}
		s.consecBad++
		switch {
		case s.consecBad >= ejectAfter && hasAlt:
			if s.probeDelay == 0 {
				s.probeDelay = c.opt.Ejection.ProbeBackoff
			}
			s.nextProbe = now.Add(jitterBackoff(s.probeDelay))
			s.goodProbes = 0
			s.state.Store(rsEjected)
			s.ejections.Add(1)
		case s.consecBad >= suspectAfter:
			s.state.Store(rsSuspect)
		}
	case rsProbing:
		if bad {
			// The probe came back slow: still an outlier. Back to
			// ejected, with the probe cadence backed off so probation
			// retries cannot hammer a struggling replica.
			s.goodProbes = 0
			s.probeDelay = nextBackoff(s.probeDelay, c.opt.Ejection.ProbeMaxBackoff)
			s.state.Store(rsEjected)
			return
		}
		if s.goodProbes++; s.goodProbes >= readmitProbes {
			s.consecBad, s.goodProbes = 0, 0
			s.probeDelay = c.opt.Ejection.ProbeBackoff
			s.state.Store(rsHealthy)
			s.readmits.Add(1)
			return
		}
		// First fast probe: promising — make the next one due
		// immediately instead of waiting out the backoff.
		s.nextProbe = now
	case rsEjected:
		// A straggler from the pre-ejection backlog draining off the
		// slow replica; it carries no new signal.
	}
}

// siblingBaseline reports the fastest non-ejected sibling's latency
// EWMA (0 when no sibling has history yet) and whether any such sibling
// exists to absorb n's reads — the two inputs to the relative-outlier
// test. Without an alternative, ejection is pointless: pickFor would
// route every read back as the fallback anyway.
func (g *replicaGroup) siblingBaseline(n *clusterNode) (base int64, hasAlt bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, m := range g.members {
		if m == n || m.catchingUp {
			continue
		}
		s := m.stats()
		if s.state.Load() >= rsEjected {
			continue
		}
		hasAlt = true
		if e := s.ewmaNs.Load(); e > 0 && (base == 0 || e < base) {
			base = e
		}
	}
	return base, hasAlt
}

// hedger is an epoch's hedge clock. Send loops schedule a (node, reqID,
// deadline) entry after each read frame leaves for the wire; the loop
// sleeps until the earliest deadline and re-dispatches whichever
// registrations are still unanswered to a sibling replica — first valid
// reply claims the pending, the loser's reply is discarded by request
// id. One goroutine per epoch: hedges are rare by construction (the
// deadline is the replica's own high quantile), so a single clock
// never becomes a bottleneck.
type hedger struct {
	c    *Cluster
	ep   *epoch
	wake chan struct{} // capacity 1: "the earliest deadline moved"

	mu   sync.Mutex
	heap []hedgeEntry // min-heap by deadline //dc:guardedby mu
}

// hedgeEntry is one armed hedge: if reqID is still registered on n at
// the deadline, the request is re-dispatched to a sibling.
type hedgeEntry struct {
	n     *clusterNode
	reqID uint32
	at    time.Time
}

// schedule arms a hedge for one registration and wakes the loop when
// the new entry became the earliest deadline.
func (h *hedger) schedule(n *clusterNode, reqID uint32, at time.Time) {
	h.mu.Lock()
	h.heap = append(h.heap, hedgeEntry{n: n, reqID: reqID, at: at})
	i := len(h.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.heap[i].at.Before(h.heap[parent].at) {
			break
		}
		h.heap[i], h.heap[parent] = h.heap[parent], h.heap[i]
		i = parent
	}
	first := i == 0
	h.mu.Unlock()
	if first {
		select {
		case h.wake <- struct{}{}:
		default:
		}
	}
}

// next pops the earliest entry when its deadline has passed; otherwise
// it reports how long the loop should sleep for it.
func (h *hedger) next() (e hedgeEntry, wait time.Duration, fire bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.heap) == 0 {
		return hedgeEntry{}, time.Hour, false
	}
	if d := time.Until(h.heap[0].at); d > 0 {
		return hedgeEntry{}, d, false
	}
	e = h.heap[0]
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	h.heap[last] = hedgeEntry{}
	h.heap = h.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < last && h.heap[l].at.Before(h.heap[min].at) {
			min = l
		}
		if r < last && h.heap[r].at.Before(h.heap[min].at) {
			min = r
		}
		if min == i {
			break
		}
		h.heap[i], h.heap[min] = h.heap[min], h.heap[i]
		i = min
	}
	return e, 0, true
}

func (h *hedger) loop() {
	defer h.ep.wg.Done()
	t := time.NewTimer(time.Hour)
	defer t.Stop()
	for {
		e, wait, fire := h.next()
		if fire {
			h.fire(e)
			continue
		}
		t.Reset(wait)
		select {
		case <-h.ep.failed:
			return
		case <-h.wake:
		case <-t.C:
		}
	}
}

// fire re-dispatches one overdue registration to a sibling, if the
// request is still unanswered, unhedged, and the partition's token
// bucket allows. The extra chain reference is taken under n.mu while
// the registration is verifiably live, so a racing reply can complete
// and recycle the pending only after the hedge chain also lets go —
// the hedge can never touch a recycled object.
func (h *hedger) fire(e hedgeEntry) {
	c, n := h.c, e.n
	n.mu.Lock()
	inf, ok := n.pending[e.reqID]
	if !ok || inf.p.claimed.Load() || inf.p.hedged.Load() || !hedgeable(inf.p.kind) {
		n.mu.Unlock()
		return
	}
	p := inf.p
	p.hedged.Store(true)
	p.refs.Add(1)
	n.mu.Unlock()
	g := n.g
	sib, _ := g.pickFor(c, p, n)
	if sib == nil {
		// No sibling to hedge to; the origin keeps sole ownership.
		c.release(p)
		return
	}
	if !g.takeHedge() {
		n.stats().budgetDenied.Add(1)
		c.release(p)
		return
	}
	if ok, _ := sib.enqueue(p, c.reqID.Add(1), c.maxPending); !ok {
		// The sibling died or is itself at the admission cap — piling
		// a hedge onto a saturated queue would only spread the gray.
		c.release(p)
		return
	}
	n.stats().hedges.Add(1)
	sib.stats().dispatched.Add(1)
}
