package netrun

import (
	"net"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// tcpOracle mirrors the cluster's key multiset and answers reference
// ranks with sort.SearchInts.
type tcpOracle struct {
	keys []int
}

func newTCPOracle(keys []workload.Key) *tcpOracle {
	o := &tcpOracle{keys: make([]int, len(keys))}
	for i, k := range keys {
		o.keys[i] = int(k)
	}
	sort.Ints(o.keys)
	return o
}

func (o *tcpOracle) insert(keys []workload.Key) {
	for _, k := range keys {
		o.keys = append(o.keys, int(k))
	}
	sort.Ints(o.keys)
}

func (o *tcpOracle) rank(k workload.Key) int {
	return sort.SearchInts(o.keys, int(k)+1)
}

// checkTCPExact verifies the cluster matches the oracle on qs via both
// the unsorted (OpLookup) and sorted (delta-frame) paths.
func checkTCPExact(t *testing.T, c *Cluster, o *tcpOracle, qs []workload.Key) {
	t.Helper()
	out := make([]int, len(qs))
	if err := c.LookupBatchInto(qs, out); err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		if want := o.rank(q); out[i] != want {
			t.Fatalf("unsorted rank(%d) = %d, want %d", q, out[i], want)
		}
	}
	asc := sortedCopy(qs)
	if err := c.LookupBatchInto(asc, out); err != nil {
		t.Fatal(err)
	}
	for i, q := range asc {
		if want := o.rank(q); out[i] != want {
			t.Fatalf("sorted rank(%d) = %d, want %d", q, out[i], want)
		}
	}
}

// TestTCPInsertExact pins the basic write path: inserts fan out to the
// owning partitions, lookups fold the client-side insert counters into
// the nodes' static rank bases, and both dispatch paths stay exact.
func TestTCPInsertExact(t *testing.T) {
	keys := workload.SortedKeys(12000, 61)
	rc, shutdown := startReplicated(t, keys, 3, 1, 512, DialOptions{})
	defer shutdown()
	o := newTCPOracle(keys)
	qs := workload.UniformQueries(4000, 62)

	checkTCPExact(t, rc.c, o, qs)
	r := workload.NewRNG(63)
	for round := 0; round < 6; round++ {
		ins := make([]workload.Key, 700)
		for i := range ins {
			ins[i] = r.Key()
		}
		if err := rc.c.InsertBatch(ins); err != nil {
			t.Fatal(err)
		}
		o.insert(ins)
		checkTCPExact(t, rc.c, o, qs)
	}
	total := int64(0)
	for _, n := range rc.c.InsertedKeys() {
		total += n
	}
	if total != 6*700 {
		t.Fatalf("InsertedKeys total = %d, want %d", total, 6*700)
	}
}

// TestTCPFreshClientSeesEarlierInserts pins the hello seeding: a brand
// new client dialing nodes that absorbed writes from an earlier client
// must still answer globally consistent ranks — the v3 hello's live
// key count seeds the fresh client's rank-base correction counters.
func TestTCPFreshClientSeesEarlierInserts(t *testing.T) {
	keys := workload.SortedKeys(9000, 55)
	rc, shutdown := startReplicated(t, keys, 3, 1, 512, DialOptions{})
	defer shutdown()
	o := newTCPOracle(keys)
	ins := workload.UniformQueries(2000, 56)
	if err := rc.c.InsertBatch(ins); err != nil {
		t.Fatal(err)
	}
	o.insert(ins)
	rc.c.Close() // the writing client goes away; the nodes keep running

	var flat []string
	for _, group := range rc.addrs {
		flat = append(flat, group...)
	}
	fresh, err := Dial(flat, keys, DialOptions{BatchKeys: 512, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	checkTCPExact(t, fresh, o, workload.UniformQueries(3000, 57))
}

// TestTCPInsertFirstThenLookup pins the node's per-connection scratch
// invariant: an insert as the very first frame on a connection grows
// the key scratch, and a smaller lookup right after must not slice a
// stale (shorter) rank scratch — a regression here panics the handler
// and drops the replica.
func TestTCPInsertFirstThenLookup(t *testing.T) {
	keys := workload.SortedKeys(3000, 68)
	rc, shutdown := startReplicated(t, keys, 1, 1, 512, DialOptions{})
	defer shutdown()
	o := newTCPOracle(keys)

	ins := workload.UniformQueries(100, 69)
	if err := rc.c.InsertBatch(ins); err != nil {
		t.Fatal(err)
	}
	o.insert(ins)
	checkTCPExact(t, rc.c, o, workload.UniformQueries(10, 70))
	if err := rc.c.Err(); err != nil {
		t.Fatalf("cluster unhealthy after insert-first connection: %v", err)
	}
}

// TestTCPInsertReplicatedExact pins that writes reach every replica:
// with 2 replicas per partition both serve lookups round-robin, so a
// missed replica would surface as a wrong rank within a few batches.
func TestTCPInsertReplicatedExact(t *testing.T) {
	keys := workload.SortedKeys(10000, 64)
	rc, shutdown := startReplicated(t, keys, 2, 2, 256, DialOptions{})
	defer shutdown()
	o := newTCPOracle(keys)
	qs := workload.UniformQueries(3000, 65)

	r := workload.NewRNG(66)
	for round := 0; round < 5; round++ {
		ins := make([]workload.Key, 400)
		for i := range ins {
			ins[i] = r.Key()
		}
		if err := rc.c.InsertBatch(ins); err != nil {
			t.Fatal(err)
		}
		o.insert(ins)
		// Several passes so the round-robin visits both replicas.
		for pass := 0; pass < 4; pass++ {
			checkTCPExact(t, rc.c, o, qs)
		}
	}
}

// TestTCPReplicaKilledMidInsert is the acceptance scenario: concurrent
// lookups and an insert stream run against a 2x2 replicated cluster
// while one replica is killed mid-stream. Every call must succeed
// (failover, not errors), and the quiescent state must be
// oracle-exact. The killed replica then restarts from its baseline key
// set — stale by every insert so far — and must be readmitted only
// after catching up from its sibling's snapshot: killing the sibling
// afterwards forces all reads onto the rejoined replica, which must
// still answer exactly.
func TestTCPReplicaKilledMidInsert(t *testing.T) {
	keys := workload.SortedKeys(16000, 71)
	rc, shutdown := startReplicated(t, keys, 2, 2, 512, DialOptions{
		OpTimeout:     2 * time.Second,
		RejoinBackoff: 20 * time.Millisecond,
	})
	defer shutdown()
	o := newTCPOracle(keys)
	qs := workload.UniformQueries(3000, 72)

	// Readers hammer throughout; they must never see an error.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			mine := qs
			if g == 1 {
				mine = sortedCopy(qs)
			}
			out := make([]int, len(mine))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := rc.c.LookupBatchInto(mine, out); err != nil {
					t.Errorf("lookup during failover: %v", err)
					return
				}
			}
		}(g)
	}

	r := workload.NewRNG(73)
	insertRounds := func(rounds int) {
		for i := 0; i < rounds; i++ {
			ins := make([]workload.Key, 300)
			for j := range ins {
				ins[j] = r.Key()
			}
			if err := rc.c.InsertBatch(ins); err != nil {
				t.Fatalf("insert: %v", err)
			}
			o.insert(ins)
		}
	}

	insertRounds(3)
	rc.kill(0, 0) // mid-stream: partition 0 loses a replica
	insertRounds(5)
	close(stop)
	wg.Wait()
	checkTCPExact(t, rc.c, o, qs)

	// Restart the dead replica from its baseline keys: stale by every
	// insert so far. The rejoin must catch it up from its sibling
	// before readmission.
	rc.restart(t, 0, 0)
	deadline := time.Now().Add(10 * time.Second)
	for {
		h := rc.health(t, 0, 0)
		if h.Healthy && !h.Syncing {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica did not rejoin: %+v", h)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// More writes after the rejoin: both members must apply them.
	insertRounds(2)
	checkTCPExact(t, rc.c, o, qs)

	// Force every partition-0 read onto the rejoined replica: if the
	// catch-up load or the post-rejoin writes were lost, this fails.
	rc.kill(0, 1)
	deadline = time.Now().Add(10 * time.Second)
	for rc.health(t, 0, 1).Healthy {
		if time.Now().After(deadline) {
			t.Fatal("killed sibling still healthy")
		}
		time.Sleep(10 * time.Millisecond)
	}
	checkTCPExact(t, rc.c, o, qs)
	insertRounds(1)
	checkTCPExact(t, rc.c, o, qs)
}

// TestTCPInsertRefusedWithoutV3 pins the version gate: a partition
// whose only replica speaks v2 accepts lookups but refuses writes with
// a descriptive error, and the cluster stays healthy.
func TestTCPInsertRefusedWithoutV3(t *testing.T) {
	keys := workload.SortedKeys(4000, 75)
	p, err := core.NewPartitioning(keys, 2)
	if err != nil {
		t.Fatal(err)
	}
	var nodes []*Node
	var addrs []string
	for i := 0; i < 2; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		node := NewPartitionNode(p.Parts[i].Keys, p.Parts[i].RankBase)
		node.MaxVersion = ProtoV2
		nodes = append(nodes, node)
		addrs = append(addrs, lis.Addr().String())
		go node.Serve(lis)
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	c, err := Dial(addrs, keys, DialOptions{BatchKeys: 256, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	err = c.InsertBatch([]workload.Key{1, 2, 3})
	if err == nil || !strings.Contains(err.Error(), "no protocol-v3 replica") {
		t.Fatalf("InsertBatch against v2 nodes: err = %v, want no-v3-replica", err)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("cluster poisoned by refused insert: %v", err)
	}
	// Reads still work: no write was recorded, so the v2 members stay
	// eligible.
	o := newTCPOracle(keys)
	checkTCPExact(t, c, o, workload.UniformQueries(2000, 76))
}

// TestTCPReadSkipsStaleReplica pins the stale-read guard: a mixed
// group (one v3, one read-only v2 replica) keeps answering exactly
// after writes, because lookups stop visiting the replica that cannot
// have received them.
func TestTCPReadSkipsStaleReplica(t *testing.T) {
	keys := workload.SortedKeys(6000, 77)
	p, err := core.NewPartitioning(keys, 1)
	if err != nil {
		t.Fatal(err)
	}
	var nodes []*Node
	var addrs []string
	for r := 0; r < 2; r++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		node := NewPartitionNode(p.Parts[0].Keys, p.Parts[0].RankBase)
		if r == 1 {
			node.ReadOnly = true // negotiates at most v2
		}
		nodes = append(nodes, node)
		addrs = append(addrs, lis.Addr().String())
		go node.Serve(lis)
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	c, err := Dial([]string{addrs[0] + "|" + addrs[1]}, keys, DialOptions{BatchKeys: 256, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	o := newTCPOracle(keys)
	qs := workload.UniformQueries(2000, 78)
	checkTCPExact(t, c, o, qs)

	ins := workload.UniformQueries(500, 79)
	if err := c.InsertBatch(ins); err != nil {
		t.Fatal(err)
	}
	o.insert(ins)
	// Many passes: if the stale v2 replica still served reads, the
	// round-robin would hit it immediately.
	for pass := 0; pass < 6; pass++ {
		checkTCPExact(t, c, o, qs)
	}
}

// TestTCPInsertFailsWhenOnlyV3ReplicaDies pins the partial-failure
// accounting: in a [v3, read-only v2] group, killing the v3 member must
// turn inserts into errors — never false acks (a swept in-flight write
// would otherwise "succeed" with no live node holding it) — and the
// client's rank-base counters must count exactly the acknowledged
// batches. The epoch stays healthy (the v2 member survives), but reads
// of the written partition now refuse with a clear error instead of
// serving stale ranks.
func TestTCPInsertFailsWhenOnlyV3ReplicaDies(t *testing.T) {
	keys := workload.SortedKeys(4000, 85)
	p, err := core.NewPartitioning(keys, 1)
	if err != nil {
		t.Fatal(err)
	}
	var nodes []*Node
	var addrs []string
	for r := 0; r < 2; r++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		node := NewPartitionNode(p.Parts[0].Keys, p.Parts[0].RankBase)
		node.ReadOnly = r == 1
		nodes = append(nodes, node)
		addrs = append(addrs, lis.Addr().String())
		go node.Serve(lis)
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	c, err := Dial([]string{addrs[0] + "|" + addrs[1]}, keys, DialOptions{
		BatchKeys: 256, Timeout: 5 * time.Second, OpTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.InsertBatch(workload.UniformQueries(100, 86)); err != nil {
		t.Fatal(err)
	}
	nodes[0].Close() // the only writable replica dies

	succeeded := 0
	deadline := time.Now().Add(10 * time.Second)
	for {
		err = c.InsertBatch(workload.UniformQueries(50, 87))
		if err != nil {
			break
		}
		succeeded++
		if time.Now().After(deadline) {
			t.Fatal("inserts keep succeeding with no v3 replica alive")
		}
	}
	if !strings.Contains(err.Error(), "protocol-v3 replica") {
		t.Fatalf("insert error = %v, want only-v3-replica failure", err)
	}
	if got, want := c.InsertedKeys()[0], int64(100+50*succeeded); got != want {
		t.Fatalf("InsertedKeys[0] = %d, want %d (every credited batch must have been acked)", got, want)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("epoch terminal despite surviving v2 member: %v", err)
	}
	// Reads of the written partition refuse rather than serve the v2
	// member's stale ranks.
	if _, err := c.LookupBatch(workload.UniformQueries(10, 88)); err == nil ||
		!strings.Contains(err.Error(), "protocol-v3 replica") {
		t.Fatalf("lookup err = %v, want stale-replica refusal", err)
	}
}

// TestTCPInsertConcurrentWithLookups hammers inserts and lookups from
// multiple goroutines; every lookup's result for a never-inserted probe
// below all inserts must stay exact, and the final state must match the
// oracle. Run with -race.
func TestTCPInsertConcurrentWithLookups(t *testing.T) {
	keys := workload.SortedKeys(8000, 81)
	rc, shutdown := startReplicated(t, keys, 2, 2, 256, DialOptions{})
	defer shutdown()
	o := newTCPOracle(keys)
	qs := workload.UniformQueries(1000, 82)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]int, len(qs))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := rc.c.LookupBatchInto(qs, out); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	var insMu sync.Mutex
	var all []workload.Key
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := workload.NewRNG(uint64(90 + g))
			for round := 0; round < 10; round++ {
				ins := make([]workload.Key, 150)
				for i := range ins {
					ins[i] = r.Key()
				}
				if err := rc.c.InsertBatch(ins); err != nil {
					t.Error(err)
					return
				}
				insMu.Lock()
				all = append(all, ins...)
				insMu.Unlock()
			}
		}(g)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	o.insert(all)
	checkTCPExact(t, rc.c, o, qs)
}
