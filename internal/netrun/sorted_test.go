package netrun

import (
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// startClusterCaps spawns one node per partition with the given
// protocol caps (caps[i] applies to partition i's node; ProtoV1
// emulates an old binary byte-for-byte) and dials them.
func startClusterCaps(t *testing.T, keys []workload.Key, batch int, caps []uint32) (*Cluster, func()) {
	t.Helper()
	p, err := core.NewPartitioning(keys, len(caps))
	if err != nil {
		t.Fatal(err)
	}
	var nodes []*Node
	var addrs []string
	for i, cap32 := range caps {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		node := NewPartitionNode(p.Parts[i].Keys, p.Parts[i].RankBase)
		node.MaxVersion = cap32
		nodes = append(nodes, node)
		addrs = append(addrs, lis.Addr().String())
		go node.Serve(lis)
	}
	c, err := Dial(addrs, keys, DialOptions{BatchKeys: batch, Timeout: 5 * time.Second})
	if err != nil {
		for _, n := range nodes {
			n.Close()
		}
		t.Fatal(err)
	}
	return c, func() {
		c.Close()
		for _, n := range nodes {
			n.Close()
		}
	}
}

func sortedCopy(qs []workload.Key) []workload.Key {
	out := append([]workload.Key(nil), qs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func nodeVersions(c *Cluster) []uint32 {
	var out []uint32
	for _, g := range c.ep.Load().groups {
		g.mu.Lock()
		for _, m := range g.members {
			out = append(out, m.version)
		}
		g.mu.Unlock()
	}
	return out
}

// TestHelloNegotiatesV2 pins the version exchange: capped nodes
// negotiate their cap, emulated-v1 nodes negotiate v1, and uncapped
// updatable nodes negotiate the full current version — all on the same
// cluster.
func TestHelloNegotiatesV2(t *testing.T) {
	keys := workload.SortedKeys(4000, 31)
	c, shutdown := startClusterCaps(t, keys, 256, []uint32{0, ProtoV1, ProtoV2, 0})
	defer shutdown()

	want := []uint32{ProtoVersion, ProtoV1, ProtoV2, ProtoVersion} // cap 0 = full version
	got := nodeVersions(c)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("partition %d negotiated v%d, want v%d", i, got[i], want[i])
		}
	}
}

// TestSortedLookupAgainstV1Nodes is the interop acceptance test: a v2
// master given ascending batches must produce reference ranks against
// pure-v1 nodes (every sorted pending silently degrades to OpLookup),
// against pure-v2 nodes (delta frames), and against a mixed cluster.
func TestSortedLookupAgainstV1Nodes(t *testing.T) {
	keys := workload.SortedKeys(20000, 32)
	queries := sortedCopy(workload.UniformQueries(15000, 33))
	for name, caps := range map[string][]uint32{
		"allV1": {ProtoV1, ProtoV1, ProtoV1},
		"allV2": {ProtoV2, ProtoV2, ProtoV2},
		"mixed": {ProtoV1, ProtoV2, ProtoV1},
	} {
		t.Run(name, func(t *testing.T) {
			c, shutdown := startClusterCaps(t, keys, 512, caps)
			defer shutdown()
			for round := 0; round < 3; round++ {
				ranks, err := c.LookupBatch(queries)
				if err != nil {
					t.Fatal(err)
				}
				for i, q := range queries {
					if want := workload.ReferenceRank(keys, q); ranks[i] != want {
						t.Fatalf("round %d: rank[%d](%d) = %d, want %d", round, i, q, ranks[i], want)
					}
				}
			}
		})
	}
}

// TestTCPSortedChecksumIdenticalToUnsorted asserts the acceptance
// criterion end to end over sockets: the sorted pipeline (v2 delta
// frames) returns results bit-identical to the same queries through
// the unsorted v1 pipeline and to the in-process runtime.
func TestTCPSortedChecksumIdenticalToUnsorted(t *testing.T) {
	keys := workload.SortedKeys(32768, 34)
	unsorted := workload.UniformQueries(20000, 35)
	sorted := sortedCopy(unsorted)

	c, shutdown := startClusterCaps(t, keys, 1024, []uint32{ProtoV2, ProtoV2, ProtoV2, ProtoV2})
	defer shutdown()

	ref, err := core.NewCluster(keys, core.RealConfig{Method: core.MethodC3, Workers: 4, BatchKeys: 1024, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	refSorted, err := ref.LookupBatch(sorted)
	if err != nil {
		t.Fatal(err)
	}
	gotSorted, err := c.LookupBatch(sorted)
	if err != nil {
		t.Fatal(err)
	}
	gotUnsorted, err := c.LookupBatch(unsorted)
	if err != nil {
		t.Fatal(err)
	}
	// Rank multiset must match between orders; compare sorted queries
	// index-by-index and unsorted through the reference rank.
	for i := range sorted {
		if gotSorted[i] != refSorted[i] {
			t.Fatalf("sorted rank[%d] = %d, want %d (in-process)", i, gotSorted[i], refSorted[i])
		}
	}
	for i, q := range unsorted {
		if want := workload.ReferenceRank(keys, q); gotUnsorted[i] != want {
			t.Fatalf("unsorted rank[%d] = %d, want %d", i, gotUnsorted[i], want)
		}
	}
	if benchChecksum(gotSorted) != benchChecksum(refSorted) {
		t.Fatal("sorted checksum diverged from in-process runtime")
	}
}

// TestSortedBatchesOptionSortsClientSide: with DialOptions.SortedBatches
// an unsorted stream still produces query-order results (radix sort +
// permutation scatter), matching the reference.
func TestSortedBatchesOptionSortsClientSide(t *testing.T) {
	keys := workload.SortedKeys(10000, 36)
	p, err := core.NewPartitioning(keys, 3)
	if err != nil {
		t.Fatal(err)
	}
	var nodes []*Node
	var addrs []string
	for i := 0; i < 3; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		node := NewPartitionNode(p.Parts[i].Keys, p.Parts[i].RankBase)
		nodes = append(nodes, node)
		addrs = append(addrs, lis.Addr().String())
		go node.Serve(lis)
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	c, err := Dial(addrs, keys, DialOptions{BatchKeys: 512, SortedBatches: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	queries := workload.UniformQueries(12000, 37)
	ranks, err := c.LookupBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		if want := workload.ReferenceRank(keys, q); ranks[i] != want {
			t.Fatalf("rank[%d](%d) = %d, want %d", i, q, ranks[i], want)
		}
	}
}

// TestSortedFailoverToV1Sibling kills a v2 replica while sorted batches
// are in flight: the failover path must re-dispatch its pendings to the
// surviving v1 sibling, which means re-encoding the same keys as plain
// OpLookup frames — and every result must still be correct.
func TestSortedFailoverToV1Sibling(t *testing.T) {
	keys := workload.SortedKeys(16000, 38)
	const parts = 2
	p, err := core.NewPartitioning(keys, parts)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([][]*Node, parts)
	addrs := make([]string, parts)
	for i := 0; i < parts; i++ {
		var group []string
		for r := 0; r < 2; r++ {
			lis, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			node := NewPartitionNode(p.Parts[i].Keys, p.Parts[i].RankBase)
			if r == 1 {
				node.MaxVersion = ProtoV1 // the surviving sibling speaks v1 only
			}
			nodes[i] = append(nodes[i], node)
			group = append(group, lis.Addr().String())
			go node.Serve(lis)
		}
		addrs[i] = group[0] + "|" + group[1]
	}
	defer func() {
		for _, g := range nodes {
			for _, n := range g {
				n.Close()
			}
		}
	}()
	c, err := Dial(addrs, keys, DialOptions{BatchKeys: 256, RejoinBackoff: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	queries := sortedCopy(workload.UniformQueries(30000, 39))
	var wg sync.WaitGroup
	errs := make([]error, 4)
	outs := make([][]int, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]int, len(queries))
			for rep := 0; rep < 5; rep++ {
				if err := c.LookupBatchInto(queries, out); err != nil {
					errs[g] = err
					return
				}
			}
			outs[g] = out
		}(g)
	}
	time.Sleep(2 * time.Millisecond)
	nodes[0][0].Close() // kill partition 0's v2 replica mid-flight
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", g, err)
		}
		for i, q := range queries {
			if want := workload.ReferenceRank(keys, q); outs[g][i] != want {
				t.Fatalf("caller %d: rank[%d](%d) = %d, want %d", g, i, q, outs[g][i], want)
			}
		}
	}
	if err := c.Err(); err != nil {
		t.Fatalf("cluster terminal despite surviving sibling: %v", err)
	}
}
