package netrun

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// --- protocol ---

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Op: OpHello},
		{Op: OpLookup, ReqID: 42, Payload: []uint32{1, 2, 3, 0xFFFFFFFF}},
		{Op: OpRanks, ReqID: 7, Payload: make([]uint32, 10000)},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Op != want.Op || got.ReqID != want.ReqID || len(got.Payload) != len(want.Payload) {
			t.Fatalf("frame mismatch: %+v vs %+v", got.Op, want.Op)
		}
		for i := range want.Payload {
			if got.Payload[i] != want.Payload[i] {
				t.Fatalf("payload[%d] = %d, want %d", i, got.Payload[i], want.Payload[i])
			}
		}
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(op uint8, id uint32, payload []uint32) bool {
		if len(payload) > 1<<16 {
			payload = payload[:1<<16]
		}
		var buf bytes.Buffer
		if byteOp(op) {
			// v2 ops carry byte payloads: round-trip the words' own
			// bytes through Raw instead.
			raw := make([]byte, 0, 4*len(payload))
			for _, v := range payload {
				raw = append(raw, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
			}
			if err := WriteFrame(&buf, Frame{Op: op, ReqID: id, Raw: raw}); err != nil {
				return false
			}
			got, err := ReadFrame(&buf)
			return err == nil && got.Op == op && got.ReqID == id && bytes.Equal(got.Raw, raw)
		}
		if err := WriteFrame(&buf, Frame{Op: op, ReqID: id, Payload: payload}); err != nil {
			return false
		}
		got, err := ReadFrame(&buf)
		if err != nil || got.Op != op || got.ReqID != id || len(got.Payload) != len(payload) {
			return false
		}
		for i := range payload {
			if got.Payload[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReadFrameRejectsBadMagic(t *testing.T) {
	buf := bytes.NewBuffer(bytes.Repeat([]byte{0xAB}, 13))
	if _, err := ReadFrame(buf); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("err = %v, want bad magic", err)
	}
}

func TestReadFrameRejectsHugeCount(t *testing.T) {
	var buf bytes.Buffer
	head := make([]byte, 13)
	head[0], head[1], head[2], head[3] = 0x05, 0x20, 0x1D, 0xDC // Magic LE
	head[4] = OpLookup
	head[9], head[10], head[11], head[12] = 0xFF, 0xFF, 0xFF, 0xFF
	buf.Write(head)
	if _, err := ReadFrame(&buf); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("err = %v, want payload limit", err)
	}
}

func TestWriteFrameRejectsHugePayload(t *testing.T) {
	w := io.Discard
	err := WriteFrame(w, Frame{Op: OpLookup, Payload: make([]uint32, MaxFrameWords+1)})
	if err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestReadFrameTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Op: OpLookup, Payload: []uint32{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-2]
	if _, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

// --- node + cluster over loopback ---

// startCluster spawns one node per partition on loopback listeners and
// dials them, returning the client and a shutdown func.
func startCluster(t *testing.T, keys []workload.Key, parts, batch int) (*Cluster, func()) {
	t.Helper()
	p, err := core.NewPartitioning(keys, parts)
	if err != nil {
		t.Fatal(err)
	}
	var nodes []*Node
	var addrs []string
	var wg sync.WaitGroup
	for i := 0; i < parts; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		node := NewPartitionNode(p.Parts[i].Keys, p.Parts[i].RankBase)
		nodes = append(nodes, node)
		addrs = append(addrs, lis.Addr().String())
		wg.Add(1)
		go func() {
			defer wg.Done()
			node.Serve(lis)
		}()
	}
	c, err := Dial(addrs, keys, DialOptions{BatchKeys: batch, Timeout: 5 * time.Second})
	if err != nil {
		for _, n := range nodes {
			n.Close()
		}
		t.Fatal(err)
	}
	return c, func() {
		c.Close()
		for _, n := range nodes {
			n.Close()
		}
		wg.Wait()
	}
}

func TestTCPClusterReturnsReferenceRanks(t *testing.T) {
	keys := workload.SortedKeys(20000, 1)
	c, shutdown := startCluster(t, keys, 6, 512)
	defer shutdown()

	queries := workload.UniformQueries(25000, 2)
	ranks, err := c.LookupBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		if want := workload.ReferenceRank(keys, q); ranks[i] != want {
			t.Fatalf("rank[%d] = %d, want %d", i, ranks[i], want)
		}
	}
	if c.Nodes() != 6 {
		t.Errorf("Nodes = %d", c.Nodes())
	}
}

func TestTCPClusterRepeatedBatchesAndEmpty(t *testing.T) {
	keys := workload.SortedKeys(3000, 3)
	c, shutdown := startCluster(t, keys, 3, 100)
	defer shutdown()

	if out, err := c.LookupBatch(nil); err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v %v", out, err)
	}
	for round := 0; round < 4; round++ {
		queries := workload.UniformQueries(1500, uint64(round))
		ranks, err := c.LookupBatch(queries)
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range queries {
			if want := workload.ReferenceRank(keys, q); ranks[i] != want {
				t.Fatalf("round %d: wrong rank", round)
			}
		}
	}
}

func TestTCPClusterSingleNode(t *testing.T) {
	keys := workload.SortedKeys(500, 5)
	c, shutdown := startCluster(t, keys, 1, 64)
	defer shutdown()
	queries := workload.UniformQueries(1000, 6)
	ranks, err := c.LookupBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		if want := workload.ReferenceRank(keys, q); ranks[i] != want {
			t.Fatal("wrong rank on single node")
		}
	}
}

func TestDialRejectsPartitionMismatch(t *testing.T) {
	keys := workload.SortedKeys(1000, 7)
	p, _ := core.NewPartitioning(keys, 2)

	// Node 0 serves partition 1's data: the hello cross-check must
	// refuse to build a cluster with a wrong routing table.
	lis0, _ := net.Listen("tcp", "127.0.0.1:0")
	lis1, _ := net.Listen("tcp", "127.0.0.1:0")
	n0 := NewPartitionNode(p.Parts[1].Keys, p.Parts[1].RankBase) // wrong!
	n1 := NewPartitionNode(p.Parts[1].Keys, p.Parts[1].RankBase)
	go n0.Serve(lis0)
	go n1.Serve(lis1)
	defer n0.Close()
	defer n1.Close()

	_, err := Dial([]string{lis0.Addr().String(), lis1.Addr().String()}, keys, DialOptions{})
	if err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("err = %v, want partition mismatch", err)
	}
}

func TestDialFailsFastOnDeadAddress(t *testing.T) {
	keys := workload.SortedKeys(100, 8)
	_, err := Dial([]string{"127.0.0.1:1"}, keys, DialOptions{Timeout: 500 * time.Millisecond})
	if err == nil {
		t.Fatal("dial to dead address succeeded")
	}
}

func TestClusterClosedLookupFails(t *testing.T) {
	keys := workload.SortedKeys(300, 9)
	c, shutdown := startCluster(t, keys, 2, 32)
	shutdown()
	if _, err := c.LookupBatch(workload.UniformQueries(5, 1)); err == nil {
		t.Fatal("lookup on closed cluster succeeded")
	}
}

func TestNodeSurvivesGarbageConnection(t *testing.T) {
	keys := workload.SortedKeys(400, 10)
	c, shutdown := startCluster(t, keys, 2, 32)
	defer shutdown()

	// Throw garbage at node 0's address out-of-band.
	//dc:ignore lockguard test-only peek at a quiescent cluster
	addr := c.ep.Load().groups[0].members[0].conn.RemoteAddr().String()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn.Write(bytes.Repeat([]byte{0x00}, 64))
	conn.Close()

	// The real client must still work.
	queries := workload.UniformQueries(500, 11)
	ranks, err := c.LookupBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		if want := workload.ReferenceRank(keys, q); ranks[i] != want {
			t.Fatal("wrong rank after garbage connection")
		}
	}
}

func TestNodeCloseIdempotentAndServeAfterCloseFails(t *testing.T) {
	keys := workload.SortedKeys(100, 12)
	n := NewPartitionNode(keys, 0)
	n.Close()
	n.Close()
	lis, _ := net.Listen("tcp", "127.0.0.1:0")
	defer lis.Close()
	if err := n.Serve(lis); err == nil {
		t.Fatal("Serve after Close succeeded")
	}
}

func TestServeReturnsOnListenerClose(t *testing.T) {
	keys := workload.SortedKeys(100, 13)
	n := NewPartitionNode(keys, 0)
	lis, _ := net.Listen("tcp", "127.0.0.1:0")
	done := make(chan error, 1)
	go func() { done <- n.Serve(lis) }()
	time.Sleep(50 * time.Millisecond)
	lis.Close()
	select {
	case err := <-done:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("Serve returned %v, want net.ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after listener close")
	}
}

// Property: TCP cluster equals reference for random shapes.
func TestTCPClusterProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed uint64, nRaw uint16, partsRaw, batchRaw uint8) bool {
		n := int(nRaw%2000) + 20
		parts := int(partsRaw%4) + 1
		batch := int(batchRaw%100) + 1
		keys := workload.SortedKeys(n, seed)
		var ok bool
		func() {
			c, shutdown := startCluster(t, keys, parts, batch)
			defer shutdown()
			queries := workload.UniformQueries(300, seed+1)
			ranks, err := c.LookupBatch(queries)
			if err != nil {
				return
			}
			for i, q := range queries {
				if ranks[i] != workload.ReferenceRank(keys, q) {
					return
				}
			}
			ok = true
		}()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// benchCluster spins up 8 loopback nodes over the standard benchmark
// key set and dials them. delay > 0 interposes a latency proxy per node
// emulating a link with that one-way propagation time (Table 2's
// per-message latency, which loopback otherwise lacks).
func benchCluster(b *testing.B, batch int, delay time.Duration) (*Cluster, func()) {
	c, _, shutdown := benchReplicatedCluster(b, batch, 1, delay)
	return c, shutdown
}

// benchReplicatedCluster is benchCluster generalized to R replicas per
// partition (8 partitions x R server processes). It returns the node
// matrix ([partition][replica]) so failover benchmarks can kill a
// specific replica mid-run.
func benchReplicatedCluster(b *testing.B, batch, replicas int, delay time.Duration) (*Cluster, [][]*Node, func()) {
	b.Helper()
	keys := workload.SortedKeys(327680, 1)
	p, _ := core.NewPartitioning(keys, 8)
	nodes := make([][]*Node, 8)
	var addrs []string
	for i := 0; i < 8; i++ {
		for r := 0; r < replicas; r++ {
			lis, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			node := NewPartitionNode(p.Parts[i].Keys, p.Parts[i].RankBase)
			nodes[i] = append(nodes[i], node)
			addr := lis.Addr().String()
			if delay > 0 {
				addr = latencyProxy(b, addr, delay)
			}
			addrs = append(addrs, addr)
			go node.Serve(lis)
		}
	}
	c, err := Dial(addrs, keys, DialOptions{BatchKeys: batch, Replicas: replicas})
	if err != nil {
		b.Fatal(err)
	}
	return c, nodes, func() {
		c.Close()
		for _, reps := range nodes {
			for _, n := range reps {
				n.Close()
			}
		}
	}
}

// latencyProxy forwards bytes between client connections and nodeAddr,
// delaying each direction by delay. Propagation overlaps across
// in-flight data — like a real link, and unlike sleeping inside the
// node handler, which would serialize the delays.
func latencyProxy(b *testing.B, nodeAddr string, delay time.Duration) string {
	b.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { lis.Close() })
	go func() {
		for {
			cli, err := lis.Accept()
			if err != nil {
				return
			}
			srv, err := net.Dial("tcp", nodeAddr)
			if err != nil {
				cli.Close()
				return
			}
			go delayPipe(cli, srv, delay)
			go delayPipe(srv, cli, delay)
		}
	}()
	return lis.Addr().String()
}

type timedChunk struct {
	at  time.Time
	buf []byte
}

func delayPipe(src, dst net.Conn, delay time.Duration) {
	defer dst.Close()
	ch := make(chan timedChunk, 1024)
	go func() {
		defer close(ch)
		for {
			buf := make([]byte, 32<<10)
			n, err := src.Read(buf)
			if n > 0 {
				ch <- timedChunk{at: time.Now().Add(delay), buf: buf[:n]}
			}
			if err != nil {
				return
			}
		}
	}()
	for c := range ch {
		if d := time.Until(c.at); d > 0 {
			time.Sleep(d)
		}
		if _, err := dst.Write(c.buf); err != nil {
			return
		}
	}
}

// benchChecksum mirrors cmd/dcq's order-sensitive rank checksum.
func benchChecksum(ranks []int) uint32 {
	var sum uint32
	for _, r := range ranks {
		sum = sum*31 + uint32(r)
	}
	return sum
}

// BenchmarkTCPClusterReplicated8x2 measures the replicated steady
// state: 8 partitions x 2 replicas, batches round-robined across each
// partition's healthy members (bench_real.sh records this row).
func BenchmarkTCPClusterReplicated8x2(b *testing.B) {
	c, _, shutdown := benchReplicatedCluster(b, 16384, 2, 0)
	defer shutdown()

	queries := workload.UniformQueries(1<<18, 2)
	out := make([]int, len(queries))
	b.SetBytes(int64(len(queries) * workload.KeyBytes))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.LookupBatchInto(queries, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTCPClusterReplicatedFailover is the availability acceptance
// scenario: a loaded 8-partition x 2-replica cluster loses one replica
// while batches are in flight, and every LookupBatch — in-flight and
// subsequent — still completes with ranks checksum-identical to the
// in-process runtime, without Redial. The recorded throughput is the
// degraded-mode number (partition 0 down to one replica).
func BenchmarkTCPClusterReplicatedFailover(b *testing.B) {
	c, nodes, shutdown := benchReplicatedCluster(b, 16384, 2, 0)
	defer shutdown()

	keys := workload.SortedKeys(327680, 1)
	queries := workload.UniformQueries(1<<18, 2)
	ref, err := core.NewCluster(keys, core.RealConfig{Method: core.MethodC3, Workers: 8, BatchKeys: 16384, QueueDepth: 4})
	if err != nil {
		b.Fatal(err)
	}
	refRanks, err := ref.LookupBatch(queries)
	ref.Close()
	if err != nil {
		b.Fatal(err)
	}
	want := benchChecksum(refRanks)

	out := make([]int, len(queries))
	b.SetBytes(int64(len(queries) * workload.KeyBytes))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i == 0 {
			// Kill partition 0's first replica while this iteration's
			// batches are on the wire.
			go func() {
				time.Sleep(2 * time.Millisecond)
				nodes[0][0].Close()
			}()
		}
		if err := c.LookupBatchInto(queries, out); err != nil {
			b.Fatal(err)
		}
		if got := benchChecksum(out); got != want {
			b.Fatalf("iteration %d: checksum %08x, want %08x (in-process runtime)", i, got, want)
		}
	}
	b.StopTimer()
	if err := c.Err(); err != nil {
		b.Fatalf("cluster went terminal despite a surviving replica: %v", err)
	}
}

func BenchmarkTCPClusterLookupBatch(b *testing.B) {
	c, shutdown := benchCluster(b, 16384, 0)
	defer shutdown()

	queries := workload.UniformQueries(1<<18, 2)
	out := make([]int, len(queries))
	b.SetBytes(int64(len(queries) * workload.KeyBytes))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.LookupBatchInto(queries, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTCPClusterScanStream is the v5 scan-streaming row: each op
// scans the full key range (unlimited), so every partition streams its
// whole sub-range back as one delta-coded OpKeysDelta frame and the
// client concatenates the runs in partition order. Bytes/op counts the
// keys returned.
func BenchmarkTCPClusterScanStream(b *testing.B) {
	c, shutdown := benchCluster(b, 16384, 0)
	defer shutdown()

	keys := workload.SortedKeys(327680, 1)
	lo, hi := keys[0], keys[len(keys)-1]
	buf, err := c.ScanRange(lo, hi, -1, nil)
	if err != nil {
		b.Fatal(err)
	}
	if len(buf) != len(keys) {
		b.Fatalf("scan returned %d keys, want %d", len(buf), len(keys))
	}
	b.SetBytes(int64(len(keys) * workload.KeyBytes))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = c.ScanRange(lo, hi, -1, buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

// Concurrent vs Serialized pairs: 4 masters multiplexing over one
// shared connection set, against the same 4 callers forced through one
// big lock (what the old single-mutex client did to every caller). The
// raw-loopback pair is CPU-bound and shows the multiplexed path keeps
// up on throughput; the SlowLink pair adds an emulated 500µs one-way
// link and shows the structural win — concurrent masters overlap
// round-trip latency the mutex serializes.
func BenchmarkTCPClusterConcurrent4(b *testing.B) {
	benchConcurrent(b, nil, 16384, 1<<16, 0, false)
}

func BenchmarkTCPClusterSerialized4(b *testing.B) {
	benchConcurrent(b, &sync.Mutex{}, 16384, 1<<16, 0, false)
}

func BenchmarkTCPClusterConcurrent4SlowLink(b *testing.B) {
	benchConcurrent(b, nil, 2048, 1<<14, 500*time.Microsecond, false)
}

func BenchmarkTCPClusterSerialized4SlowLink(b *testing.B) {
	benchConcurrent(b, &sync.Mutex{}, 2048, 1<<14, 500*time.Microsecond, false)
}

// BenchmarkTCPClusterSortedDelta is the sorted-batch wire acceptance
// row: 4 masters over the same emulated 500µs link as
// BenchmarkTCPClusterConcurrent4SlowLink, but each caller's stream is
// ascending and the batch size is the paper's 16K throughput sweet
// spot (large batches amortize the link latency, so frame bytes and
// per-key compute dominate — the regime the sorted pipeline targets).
// The whole stack switches over: one-sweep routing at the master,
// protocol-v2 delta+varint frames on the wire (the rank direction
// shrinks ~4x, the key direction ~25%, and the per-frame
// word-conversion loops disappear), and the nodes' streaming merge
// kernels instead of per-key search. The companion row
// BenchmarkTCPClusterUnsortedSlowLink16K runs the identical
// configuration through the v1 per-key pipeline, isolating the
// sorted-pipeline win at equal batch size.
func BenchmarkTCPClusterSortedDelta(b *testing.B) {
	benchConcurrent(b, nil, 16384, 1<<17, 500*time.Microsecond, true)
}

func BenchmarkTCPClusterUnsortedSlowLink16K(b *testing.B) {
	benchConcurrent(b, nil, 16384, 1<<17, 500*time.Microsecond, false)
}

// BenchmarkTCPClusterSortedDeltaLoopback is the CPU-bound companion
// row: no emulated link, so it isolates the compute savings of the
// sorted pipeline end to end over real sockets.
func BenchmarkTCPClusterSortedDeltaLoopback(b *testing.B) {
	benchConcurrent(b, nil, 16384, 1<<16, 0, true)
}

func benchConcurrent(b *testing.B, serialize *sync.Mutex, batch, perCall int, delay time.Duration, sorted bool) {
	c, shutdown := benchCluster(b, batch, delay)
	defer shutdown()

	const callers = 4
	b.SetBytes(int64(callers * perCall * workload.KeyBytes))
	b.ReportAllocs()
	var wg sync.WaitGroup
	var hist telemetry.Histogram
	queries := make([][]workload.Key, callers)
	outs := make([][]int, callers)
	for g := range queries {
		queries[g] = workload.UniformQueries(perCall, uint64(2+g))
		if sorted {
			sort.Slice(queries[g], func(i, j int) bool { return queries[g][i] < queries[g][j] })
		}
		outs[g] = make([]int, perCall)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for g := 0; g < callers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				if serialize != nil {
					serialize.Lock()
					defer serialize.Unlock()
				}
				t0 := time.Now()
				if err := c.LookupBatchInto(queries[g], outs[g]); err != nil {
					b.Error(err)
				}
				hist.Observe(time.Since(t0))
			}(g)
		}
		wg.Wait()
	}
	reportBenchLatency(b, &hist)
}

// reportBenchLatency reports a benchmark's per-call latency tail as
// p50/p99/p99.9 metrics for BENCH_real.json (benchcheck gates p99_ns
// at the same threshold as throughput).
func reportBenchLatency(b *testing.B, h *telemetry.Histogram) {
	s := h.Snapshot()
	if s.Count == 0 {
		return
	}
	b.ReportMetric(float64(s.P50()), "p50_ns")
	b.ReportMetric(float64(s.P99()), "p99_ns")
	b.ReportMetric(float64(s.P999()), "p999_ns")
}
