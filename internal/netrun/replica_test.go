package netrun

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// --- address grouping ---

func TestGroupAddrs(t *testing.T) {
	cases := []struct {
		addrs    []string
		replicas int
		want     [][]string
		wantErr  string
	}{
		{addrs: nil, wantErr: "no node addresses"},
		{addrs: []string{"a", "b"}, want: [][]string{{"a"}, {"b"}}},
		{addrs: []string{"a", "b"}, replicas: 1, want: [][]string{{"a"}, {"b"}}},
		{addrs: []string{"a", "b", "c", "d"}, replicas: 2, want: [][]string{{"a", "b"}, {"c", "d"}}},
		{addrs: []string{"a", "b", "c"}, replicas: 2, wantErr: "do not divide"},
		{addrs: []string{"a|b", "c"}, want: [][]string{{"a", "b"}, {"c"}}},
		{addrs: []string{"a | b", "c|d|e"}, want: [][]string{{"a", "b"}, {"c", "d", "e"}}},
		{addrs: []string{"a||b"}, wantErr: "empty replica"},
		// Grouped syntax wins over the Replicas option.
		{addrs: []string{"a|b", "c|d"}, replicas: 3, want: [][]string{{"a", "b"}, {"c", "d"}}},
	}
	for i, tc := range cases {
		got, err := GroupAddrs(tc.addrs, tc.replicas)
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("case %d: err = %v, want %q", i, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("case %d: %v", i, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("case %d: %v, want %v", i, got, tc.want)
			continue
		}
		for p := range got {
			if len(got[p]) != len(tc.want[p]) {
				t.Errorf("case %d part %d: %v, want %v", i, p, got[p], tc.want[p])
				continue
			}
			for r := range got[p] {
				if got[p][r] != tc.want[p][r] {
					t.Errorf("case %d part %d replica %d: %q, want %q", i, p, r, got[p][r], tc.want[p][r])
				}
			}
		}
	}
}

// --- replicated cluster harness ---

// replicatedCluster is a loopback deployment with R server nodes per
// partition, addressable by [partition][replica] for targeted kills and
// restarts.
type replicatedCluster struct {
	c     *Cluster
	part  *core.Partitioning
	nodes [][]*Node
	addrs [][]string
}

// kill stops one replica's server (listener and live connections).
func (rc *replicatedCluster) kill(partition, replica int) {
	rc.nodes[partition][replica].Close()
}

// restart brings a killed replica back on its original address with a
// fresh Node, so the client's rejoin loop can re-verify and readmit it.
func (rc *replicatedCluster) restart(t *testing.T, partition, replica int) {
	t.Helper()
	addr := rc.addrs[partition][replica]
	var lis net.Listener
	var err error
	deadline := time.Now().Add(5 * time.Second)
	for {
		lis, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	p := rc.part.Parts[partition]
	node := NewPartitionNode(p.Keys, p.RankBase)
	rc.nodes[partition][replica] = node
	go node.Serve(lis)
}

// health returns the ReplicaHealth row for one configured replica.
func (rc *replicatedCluster) health(t *testing.T, partition, replica int) ReplicaHealth {
	t.Helper()
	addr := rc.addrs[partition][replica]
	for _, h := range rc.c.Health() {
		if h.Partition == partition && h.Addr == addr {
			return h
		}
	}
	t.Fatalf("no health row for partition %d addr %s", partition, addr)
	return ReplicaHealth{}
}

func startReplicated(t *testing.T, keys []workload.Key, parts, replicas, batch int, opt DialOptions) (*replicatedCluster, func()) {
	t.Helper()
	p, err := core.NewPartitioning(keys, parts)
	if err != nil {
		t.Fatal(err)
	}
	rc := &replicatedCluster{part: p, nodes: make([][]*Node, parts), addrs: make([][]string, parts)}
	var flat []string
	for i := 0; i < parts; i++ {
		for r := 0; r < replicas; r++ {
			lis, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			node := NewPartitionNode(p.Parts[i].Keys, p.Parts[i].RankBase)
			rc.nodes[i] = append(rc.nodes[i], node)
			rc.addrs[i] = append(rc.addrs[i], lis.Addr().String())
			flat = append(flat, lis.Addr().String())
			go node.Serve(lis)
		}
	}
	opt.BatchKeys = batch
	opt.Replicas = replicas
	if opt.Timeout == 0 {
		opt.Timeout = 5 * time.Second
	}
	rc.c, err = Dial(flat, keys, opt)
	if err != nil {
		for _, reps := range rc.nodes {
			for _, n := range reps {
				n.Close()
			}
		}
		t.Fatal(err)
	}
	return rc, func() {
		rc.c.Close()
		for _, reps := range rc.nodes {
			for _, n := range reps {
				n.Close()
			}
		}
	}
}

// --- replicated lookups ---

func TestReplicatedClusterReturnsReferenceRanks(t *testing.T) {
	keys := workload.SortedKeys(20000, 21)
	rc, shutdown := startReplicated(t, keys, 4, 2, 512, DialOptions{})
	defer shutdown()

	queries := workload.UniformQueries(20000, 22)
	ranks, err := rc.c.LookupBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		if want := workload.ReferenceRank(keys, q); ranks[i] != want {
			t.Fatalf("rank[%d] = %d, want %d", i, ranks[i], want)
		}
	}
	health := rc.c.Health()
	if len(health) != 8 {
		t.Fatalf("Health rows = %d, want 8", len(health))
	}
	var dispatched uint64
	for _, h := range health {
		if !h.Healthy {
			t.Errorf("replica %d/%s unhealthy on a healthy cluster", h.Partition, h.Addr)
		}
		dispatched += h.Dispatched
	}
	if dispatched == 0 {
		t.Error("no dispatches counted")
	}
	// Round-robin must have spread each partition's frames over both
	// replicas: with 20000 queries at batch 512 every partition sends
	// several frames, so no replica should be idle.
	for _, h := range health {
		if h.Dispatched == 0 {
			t.Errorf("replica %d/%s never dispatched (no load spreading)", h.Partition, h.Addr)
		}
	}
}

func TestGroupedAddressSyntaxDialAndLookup(t *testing.T) {
	keys := workload.SortedKeys(6000, 23)
	p, err := core.NewPartitioning(keys, 2)
	if err != nil {
		t.Fatal(err)
	}
	var nodes []*Node
	addrs := make([][]string, 2)
	for i := 0; i < 2; i++ {
		for r := 0; r < 2; r++ {
			lis, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			node := NewPartitionNode(p.Parts[i].Keys, p.Parts[i].RankBase)
			nodes = append(nodes, node)
			addrs[i] = append(addrs[i], lis.Addr().String())
			go node.Serve(lis)
		}
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()

	grouped := []string{
		addrs[0][0] + "|" + addrs[0][1],
		addrs[1][0] + "|" + addrs[1][1],
	}
	c, err := Dial(grouped, keys, DialOptions{BatchKeys: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Nodes() != 2 {
		t.Fatalf("Nodes = %d, want 2 partitions", c.Nodes())
	}
	queries := workload.UniformQueries(5000, 24)
	ranks, err := c.LookupBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		if want := workload.ReferenceRank(keys, q); ranks[i] != want {
			t.Fatalf("rank[%d] = %d, want %d", i, ranks[i], want)
		}
	}
}

func TestDialRejectsReplicaPartitionMismatch(t *testing.T) {
	keys := workload.SortedKeys(2000, 25)
	p, err := core.NewPartitioning(keys, 2)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(part int) (string, *Node) {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		n := NewPartitionNode(p.Parts[part].Keys, p.Parts[part].RankBase)
		go n.Serve(lis)
		return lis.Addr().String(), n
	}
	a00, n00 := mk(0)
	aBad, nBad := mk(1) // partition 0's "replica" actually serves partition 1
	a10, n10 := mk(1)
	a11, n11 := mk(1)
	defer func() {
		for _, n := range []*Node{n00, nBad, n10, n11} {
			n.Close()
		}
	}()

	_, err = Dial([]string{a00 + "|" + aBad, a10 + "|" + a11}, keys, DialOptions{})
	if err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("err = %v, want partition mismatch", err)
	}
}

// --- failover ---

// TestReplicaDeathFailsOverMidBatch is the tentpole scenario at test
// scale: 4 concurrent masters stream batches while one replica dies.
// Every call must complete with reference-correct ranks, the cluster
// must stay healthy (no Redial), and Health must show the dead replica.
func TestReplicaDeathFailsOverMidBatch(t *testing.T) {
	keys := workload.SortedKeys(60000, 26)
	rc, shutdown := startReplicated(t, keys, 4, 2, 256, DialOptions{})
	defer shutdown()

	const callers = 4
	const rounds = 40
	want := make([][]int, callers)
	queries := make([][]workload.Key, callers)
	for g := 0; g < callers; g++ {
		queries[g] = workload.UniformQueries(20000, uint64(30+g))
		want[g] = make([]int, len(queries[g]))
		for i, q := range queries[g] {
			want[g][i] = workload.ReferenceRank(keys, q)
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, callers)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]int, len(queries[g]))
			for round := 0; round < rounds; round++ {
				if err := rc.c.LookupBatchInto(queries[g], out); err != nil {
					errs[g] = err
					return
				}
				for i := range out {
					if out[i] != want[g][i] {
						errs[g] = errors.New("wrong rank during failover")
						return
					}
				}
			}
		}(g)
	}
	time.Sleep(15 * time.Millisecond)
	rc.kill(1, 0) // one replica of partition 1 dies mid-stream

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("callers hung after replica death")
	}
	for g, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", g, err)
		}
	}
	if err := rc.c.Err(); err != nil {
		t.Fatalf("cluster terminal after single-replica death: %v", err)
	}
	if h := rc.health(t, 1, 0); h.Healthy || h.Failures == 0 {
		t.Fatalf("dead replica health = %+v, want unhealthy with failures", h)
	}
	if h := rc.health(t, 1, 1); !h.Healthy {
		t.Fatalf("surviving replica health = %+v, want healthy", h)
	}
}

func TestLastReplicaDeathFailsEpochWithRootCause(t *testing.T) {
	keys := workload.SortedKeys(20000, 27)
	rc, shutdown := startReplicated(t, keys, 2, 2, 256, DialOptions{})
	defer shutdown()

	rc.kill(0, 0)
	rc.kill(0, 1)

	queries := workload.UniformQueries(5000, 28)
	deadline := time.Now().Add(10 * time.Second)
	for rc.c.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("cluster never went terminal after losing a whole partition")
		}
		rc.c.LookupBatch(queries)
	}
	err := rc.c.Err()
	if !strings.Contains(err.Error(), "lost its last replica") {
		t.Fatalf("terminal err = %v, want last-replica root cause", err)
	}
	if !strings.Contains(err.Error(), "partition 0") {
		t.Fatalf("terminal err = %v, want the losing partition named", err)
	}
	wantFailedFast(t, rc.c)
}

// TestRejoinRestoresReplica kills a replica, restarts its server on the
// same address, and waits for the background rejoin loop to restore
// R-way health — without any caller-visible interruption or Redial.
func TestRejoinRestoresReplica(t *testing.T) {
	keys := workload.SortedKeys(20000, 29)
	rc, shutdown := startReplicated(t, keys, 2, 2, 256, DialOptions{
		RejoinBackoff:    20 * time.Millisecond,
		RejoinMaxBackoff: 100 * time.Millisecond,
	})
	defer shutdown()

	queries := workload.UniformQueries(10000, 31)
	want := make([]int, len(queries))
	for i, q := range queries {
		want[i] = workload.ReferenceRank(keys, q)
	}
	check := func() {
		t.Helper()
		out := make([]int, len(queries))
		if err := rc.c.LookupBatchInto(queries, out); err != nil {
			t.Fatal(err)
		}
		for i := range out {
			if out[i] != want[i] {
				t.Fatal("wrong rank")
			}
		}
	}
	check()

	rc.kill(0, 1)
	deadline := time.Now().Add(10 * time.Second)
	for rc.health(t, 0, 1).Healthy {
		if time.Now().After(deadline) {
			t.Fatal("killed replica never marked unhealthy")
		}
		check() // traffic drives failure detection
	}
	check() // degraded mode still serves

	rc.restart(t, 0, 1)
	for !rc.health(t, 0, 1).Healthy {
		if time.Now().After(deadline) {
			t.Fatal("restarted replica never rejoined")
		}
		time.Sleep(10 * time.Millisecond)
	}
	h := rc.health(t, 0, 1)
	if h.Rejoins == 0 {
		t.Fatalf("health = %+v, want a counted rejoin", h)
	}
	check() // restored R-way service
	if err := rc.c.Err(); err != nil {
		t.Fatalf("cluster terminal across kill+rejoin: %v", err)
	}
}

// --- request-id wraparound ---

// TestReqIDWrapAcrossBoundary drives lookups across the 2^32 request-id
// boundary: ids wrap through zero without collisions (the in-flight
// window is tiny) and every rank stays correct.
func TestReqIDWrapAcrossBoundary(t *testing.T) {
	keys := workload.SortedKeys(5000, 32)
	c, shutdown := startCluster(t, keys, 2, 64)
	defer shutdown()

	c.reqID.Store(^uint32(0) - 40) // ~40 ids before the wrap
	queries := workload.UniformQueries(2000, 33)
	for round := 0; round < 4; round++ { // ~32 frames/round: crosses 0
		ranks, err := c.LookupBatch(queries)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i, q := range queries {
			if want := workload.ReferenceRank(keys, q); ranks[i] != want {
				t.Fatalf("round %d: wrong rank across id wrap", round)
			}
		}
	}
	if after := c.reqID.Load(); after > 1<<20 {
		t.Fatalf("reqID = %d, expected it to have wrapped", after)
	}
}

// TestReqIDCollisionFailsFast forces the pathological wrap — a fresh
// request landing on the id of one still in flight on the same
// connection — and wants a clear, immediate error for the new request
// instead of a silently stranded caller, with the cluster and the
// original in-flight entry left intact.
func TestReqIDCollisionFailsFast(t *testing.T) {
	keys := workload.SortedKeys(3000, 34)
	// Deadlines off: the planted in-flight entry never completes, and
	// must not trip the progress timeout while we probe around it.
	rc, shutdown := startReplicated(t, keys, 1, 1, 64, DialOptions{OpTimeout: -1})
	defer shutdown()
	c := rc.c

	n := testNodes(t, c)[0]
	stuck := &pending{done: make(chan *pending, 1)}
	n.mu.Lock()
	collide := c.reqID.Load() + 1 // the id the next dispatch will take
	n.pending[collide] = inflight{p: stuck, sentAt: time.Now()}
	n.mu.Unlock()

	_, err := c.LookupBatch(workload.UniformQueries(10, 35))
	if err == nil || !strings.Contains(err.Error(), "wrapped onto") {
		t.Fatalf("err = %v, want wraparound collision", err)
	}
	if c.Err() != nil {
		t.Fatalf("cluster poisoned by a per-request id collision: %v", c.Err())
	}
	// The connection keeps serving fresh ids.
	ranks, err := c.LookupBatch(workload.UniformQueries(100, 36))
	if err != nil {
		t.Fatalf("lookup after collision: %v", err)
	}
	_ = ranks
	n.mu.Lock()
	_, still := n.pending[collide]
	n.mu.Unlock()
	if !still {
		t.Fatal("original in-flight request was evicted by the collision")
	}
}

// --- node Serve lifecycle ---

func TestServeSecondCallRefused(t *testing.T) {
	keys := workload.SortedKeys(500, 37)
	n := NewPartitionNode(keys, 0)
	lis1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- n.Serve(lis1) }()
	deadline := time.Now().Add(5 * time.Second)
	for !n.isServing() {
		if time.Now().After(deadline) {
			t.Fatal("first Serve never started")
		}
		time.Sleep(time.Millisecond)
	}

	lis2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis2.Close()
	if err := n.Serve(lis2); err == nil || !strings.Contains(err.Error(), "already serving") {
		t.Fatalf("second Serve = %v, want already-serving error", err)
	}

	lis1.Close()
	select {
	case <-serveDone:
	case <-time.After(5 * time.Second):
		t.Fatal("first Serve did not return after listener close")
	}
	n.Close()
}

// TestNodeRestartServe exercises the server side of the rejoin path: a
// Node whose listener died serves again on a fresh listener, and a new
// client verifies the partition handshake end to end.
func TestNodeRestartServe(t *testing.T) {
	keys := workload.SortedKeys(2000, 38)
	n := NewPartitionNode(keys, 0)

	lis1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done1 := make(chan error, 1)
	go func() { done1 <- n.Serve(lis1) }()
	deadline := time.Now().Add(5 * time.Second)
	for !n.isServing() {
		if time.Now().After(deadline) {
			t.Fatal("Serve never started")
		}
		time.Sleep(time.Millisecond)
	}
	lis1.Close()
	select {
	case <-done1:
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after listener close")
	}

	// Restart on a fresh listener: same Node, same partition.
	lis2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done2 := make(chan error, 1)
	go func() { done2 <- n.Serve(lis2) }()
	defer func() {
		n.Close()
		select {
		case <-done2:
		case <-time.After(5 * time.Second):
			t.Fatal("restarted Serve did not return after Close")
		}
	}()

	c, err := Dial([]string{lis2.Addr().String()}, keys, DialOptions{BatchKeys: 64})
	if err != nil {
		t.Fatalf("dial restarted node: %v", err)
	}
	defer c.Close()
	queries := workload.UniformQueries(500, 39)
	ranks, err := c.LookupBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		if want := workload.ReferenceRank(keys, q); ranks[i] != want {
			t.Fatal("wrong rank from restarted node")
		}
	}
}

// TestCloseInterruptsRejoinAttempt pins down that Close cannot stall
// behind a rejoin attempt: the dead replica's address is squatted by a
// listener that accepts and then ignores the hello, so an uncancelable
// dial+handshake would hold Close for the full Timeout (10s here).
func TestCloseInterruptsRejoinAttempt(t *testing.T) {
	keys := workload.SortedKeys(5000, 60)
	rc, shutdown := startReplicated(t, keys, 1, 2, 256, DialOptions{
		Timeout:          10 * time.Second,
		RejoinBackoff:    10 * time.Millisecond,
		RejoinMaxBackoff: 20 * time.Millisecond,
	})
	defer shutdown()

	addr := rc.addrs[0][1]
	rc.kill(0, 1)
	var lis net.Listener
	deadline := time.Now().Add(5 * time.Second)
	for {
		var err error
		if lis, err = net.Listen("tcp", addr); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	defer lis.Close()
	accepted := make(chan struct{}, 16)
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			accepted <- struct{}{}
			go func(c net.Conn) { // swallow the hello, never answer
				buf := make([]byte, 1024)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
				}
			}(conn)
		}
	}()

	// Drive traffic until failover drops the replica, then wait for the
	// rejoin loop's dial to land in the hung handshake.
	queries := workload.UniformQueries(2000, 61)
	for rc.health(t, 0, 1).Healthy {
		if time.Now().After(deadline) {
			t.Fatal("killed replica never marked unhealthy")
		}
		if _, err := rc.c.LookupBatch(queries); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-accepted:
	case <-time.After(5 * time.Second):
		t.Fatal("rejoin loop never dialed the squatted address")
	}

	start := time.Now()
	rc.c.Close()
	if el := time.Since(start); el > 3*time.Second {
		t.Fatalf("Close blocked %v behind an in-flight rejoin handshake", el)
	}
}
