package netrun

// Gray-failure drills: a replica that is *slow* — stalled, congested,
// or latency-spiked — rather than dead. TCP keeps the connection alive,
// so the crash-failover machinery never triggers; these tests verify
// the hedging, ejection, and retry-budget paths that handle it, with
// faultnet injecting the misbehavior deterministically.

import (
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultnet"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// BenchmarkTCPClusterGraySlowReplica is the slow-replica row for
// BENCH_real.json: the 8x2 replicated lookup benchmark with one replica
// answering 20ms late and a gray-aware client (hedging + ejection). The
// warmup loop runs until the slow replica is ejected, so the recorded
// number is the steady gray state — reads shed from the outlier, the
// occasional paced probe the only residue of its presence.
func BenchmarkTCPClusterGraySlowReplica(b *testing.B) {
	keys := workload.SortedKeys(327680, 1)
	p, err := core.NewPartitioning(keys, 8)
	if err != nil {
		b.Fatal(err)
	}
	const replicas = 2
	var nodes []*Node
	var addrs []string
	var slowProf *faultnet.Profile
	var slowAddr string
	for i := 0; i < 8; i++ {
		for r := 0; r < replicas; r++ {
			lis, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			node := NewPartitionNode(p.Parts[i].Keys, p.Parts[i].RankBase)
			if i == 3 && r == 0 {
				slowProf = faultnet.NewProfile(uint64(i*replicas+r) + 1)
				slowAddr = lis.Addr().String()
				node.WrapConn = slowProf.Wrap
			}
			nodes = append(nodes, node)
			addrs = append(addrs, lis.Addr().String())
			go node.Serve(lis)
		}
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()
	c, err := Dial(addrs, keys, DialOptions{
		BatchKeys:     16384,
		Replicas:      replicas,
		HedgeQuantile: 0.95,
		HedgeBudget:   1.0,
		EjectFactor:   4,
		ProbeBackoff:  500 * time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	slowProf.Set(faultnet.Faults{WriteLatency: 20 * time.Millisecond})

	queries := workload.UniformQueries(1<<18, 2)
	out := make([]int, len(queries))
	ejected := func() bool {
		for _, h := range c.Health() {
			if h.Addr == slowAddr {
				return h.State == "ejected" || h.State == "probing"
			}
		}
		return false
	}
	for i := 0; i < 100 && !ejected(); i++ {
		if err := c.LookupBatchInto(queries, out); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(queries) * workload.KeyBytes))
	b.ReportAllocs()
	var hist telemetry.Histogram
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if err := c.LookupBatchInto(queries, out); err != nil {
			b.Fatal(err)
		}
		hist.Observe(time.Since(t0))
	}
	reportBenchLatency(b, &hist)
}

// grayCluster is a replicatedCluster whose every server node wraps its
// accepted connections in a seeded faultnet profile, addressable by
// [partition][replica] for targeted misbehavior.
type grayCluster struct {
	*replicatedCluster
	profiles [][]*faultnet.Profile
}

// startGray is startReplicated plus one fault profile per replica
// (installed via Node.WrapConn before the listener starts accepting).
// Profiles begin transparent; tests arm them with Set.
func startGray(t *testing.T, keys []workload.Key, parts, replicas, batch int, opt DialOptions) (*grayCluster, func()) {
	t.Helper()
	p, err := core.NewPartitioning(keys, parts)
	if err != nil {
		t.Fatal(err)
	}
	rc := &replicatedCluster{part: p, nodes: make([][]*Node, parts), addrs: make([][]string, parts)}
	gc := &grayCluster{replicatedCluster: rc, profiles: make([][]*faultnet.Profile, parts)}
	var flat []string
	for i := 0; i < parts; i++ {
		for r := 0; r < replicas; r++ {
			lis, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			node := NewPartitionNode(p.Parts[i].Keys, p.Parts[i].RankBase)
			prof := faultnet.NewProfile(uint64(i*replicas+r) + 1)
			node.WrapConn = prof.Wrap
			rc.nodes[i] = append(rc.nodes[i], node)
			rc.addrs[i] = append(rc.addrs[i], lis.Addr().String())
			gc.profiles[i] = append(gc.profiles[i], prof)
			flat = append(flat, lis.Addr().String())
			go node.Serve(lis)
		}
	}
	opt.BatchKeys = batch
	opt.Replicas = replicas
	if opt.Timeout == 0 {
		opt.Timeout = 5 * time.Second
	}
	rc.c, err = Dial(flat, keys, opt)
	if err != nil {
		for _, reps := range rc.nodes {
			for _, n := range reps {
				n.Close()
			}
		}
		t.Fatal(err)
	}
	return gc, func() {
		rc.c.Close()
		for _, reps := range rc.nodes {
			for _, n := range reps {
				n.Close()
			}
		}
	}
}

// checkRanks verifies one batch of lookups against the sorted-array
// oracle.
func checkRanks(t *testing.T, keys, queries []workload.Key, ranks []int) {
	t.Helper()
	for i, q := range queries {
		if want := workload.ReferenceRank(keys, q); ranks[i] != want {
			t.Fatalf("rank[%d] (query %d) = %d, want %d", i, q, ranks[i], want)
		}
	}
}

// A replica that accepts frames but never replies (its very first reply
// write stalls; the hello ack is the connection's write #1, so
// StallAfterWrites=2 passes the handshake and stalls everything after).
// Hedged reads must rescue every affected frame and the answers must
// match the oracle bit-for-bit — the hedge re-sends the same request
// words, so a rescued lookup is indistinguishable from a healthy one.
func TestTCPHedgedReadStalledReplicaMatchesOracle(t *testing.T) {
	keys := workload.SortedKeys(8000, 71)
	gc, shutdown := startGray(t, keys, 4, 2, 256, DialOptions{
		HedgeQuantile: 0.9,
		HedgeBudget:   1.0, // generous: this test is about rescue, not rationing
		HedgeBurst:    64,
	})
	defer shutdown()

	gc.profiles[0][0].Set(faultnet.Faults{StallAfterWrites: 2})

	queries := workload.UniformQueries(1024, 72)
	for round := 0; round < 8; round++ {
		ranks, err := gc.c.LookupBatch(queries)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		checkRanks(t, keys, queries, ranks)
	}
	if err := gc.c.Err(); err != nil {
		t.Fatalf("cluster error after stalled-replica rounds: %v", err)
	}
	var hedges, failures uint64
	for _, h := range gc.c.Health() {
		hedges += h.Hedges
		failures += h.Failures
	}
	if hedges == 0 {
		t.Fatal("no hedges fired against a replica that never replies")
	}
	if failures != 0 {
		t.Fatalf("hedging should rescue without connection failovers, got %d failures", failures)
	}
}

// A replica that answers every read 30ms late walks the probation
// ladder: healthy -> suspect -> ejected, probed on a backoff cadence,
// and readmitted once the latency fault is lifted. Every lookup along
// the way must still be correct — ejection sheds load, never answers.
func TestTCPEjectProbeReadmit(t *testing.T) {
	keys := workload.SortedKeys(4000, 73)
	gc, shutdown := startGray(t, keys, 1, 2, 128, DialOptions{
		EjectFactor:     4,
		ProbeBackoff:    20 * time.Millisecond,
		ProbeMaxBackoff: 100 * time.Millisecond,
	})
	defer shutdown()

	gc.profiles[0][1].Set(faultnet.Faults{WriteLatency: 30 * time.Millisecond})

	queries := workload.UniformQueries(128, 74)
	lookup := func() {
		t.Helper()
		ranks, err := gc.c.LookupBatch(queries)
		if err != nil {
			t.Fatal(err)
		}
		checkRanks(t, keys, queries, ranks)
	}

	deadline := time.Now().Add(10 * time.Second)
	for gc.health(t, 0, 1).State != "ejected" {
		if time.Now().After(deadline) {
			t.Fatalf("replica never ejected; health = %+v", gc.health(t, 0, 1))
		}
		lookup()
	}

	gc.profiles[0][1].Disable()
	for {
		h := gc.health(t, 0, 1)
		if h.State == "healthy" && h.Readmits >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never readmitted; health = %+v", h)
		}
		lookup()
		time.Sleep(5 * time.Millisecond)
	}

	h := gc.health(t, 0, 1)
	if h.Ejections < 1 || h.Probes < 1 || h.Readmits < 1 {
		t.Fatalf("probation counters: %+v", h)
	}
	if h.Failures != 0 {
		t.Fatalf("latency ejection must not tear down connections, got %d failures", h.Failures)
	}
	// The readmitted replica serves again: its dispatch counter moves.
	before := gc.health(t, 0, 1).Dispatched
	for i := 0; i < 4; i++ {
		lookup()
	}
	if gc.health(t, 0, 1).Dispatched == before {
		t.Fatal("readmitted replica received no reads")
	}
}

// The stalled replica is killed while hedged reads are mid-flight: the
// hedge path (claim by the sibling's reply) races the failover sweep
// (re-route or release of every registration on the dead connection).
// Whatever interleaving occurs, every lookup answers correctly and the
// cluster stays healthy — exactly-one-resolver is the invariant.
func TestTCPHedgeVsFailoverRace(t *testing.T) {
	keys := workload.SortedKeys(6000, 75)
	gc, shutdown := startGray(t, keys, 2, 2, 128, DialOptions{
		HedgeQuantile: 0.9,
		HedgeBudget:   1.0,
		HedgeBurst:    64,
	})
	defer shutdown()

	gc.profiles[0][0].Set(faultnet.Faults{StallAfterWrites: 2})

	queries := workload.UniformQueries(512, 76)
	for round := 0; round < 12; round++ {
		if round == 4 {
			// Mid-run, with stalled registrations pending and hedges
			// armed, the gray replica dies outright.
			gc.kill(0, 0)
		}
		ranks, err := gc.c.LookupBatch(queries)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		checkRanks(t, keys, queries, ranks)
	}
	if err := gc.c.Err(); err != nil {
		t.Fatalf("cluster error: %v", err)
	}
}

// With replenishment off (HedgeBudget < 0) the burst is the whole
// allowance: hedges stop at HedgeBurst and the hedger records denials
// instead of exceeding it. Reads still finish — the op timeout fails
// the stalled connection over to the sibling — so exhaustion degrades
// latency, never correctness.
func TestTCPRetryBudgetExhaustion(t *testing.T) {
	keys := workload.SortedKeys(4000, 77)
	gc, shutdown := startGray(t, keys, 1, 2, 128, DialOptions{
		HedgeQuantile: 0.9,
		HedgeBudget:   -1, // no earn: the initial burst is all there is
		HedgeBurst:    4,
		OpTimeout:     300 * time.Millisecond,
	})
	defer shutdown()

	gc.profiles[0][0].Set(faultnet.Faults{StallAfterWrites: 2})

	queries := workload.UniformQueries(256, 78)
	for round := 0; round < 24; round++ {
		ranks, err := gc.c.LookupBatch(queries)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		checkRanks(t, keys, queries, ranks)
	}
	var hedges, denied uint64
	for _, h := range gc.c.Health() {
		hedges += h.Hedges
		denied += h.BudgetDenied
	}
	if hedges > 4 {
		t.Fatalf("hedges = %d, exceeds the burst allowance of 4", hedges)
	}
	if denied == 0 {
		t.Fatal("budget never denied a hedge despite a permanently stalled replica")
	}
}

// The acceptance drill: an 8x2 cluster with one replica ~100x slower
// than loopback. A gray-aware client (hedging + ejection) must beat a
// plain client by >= 5x read throughput over identical wall-clock
// windows, with zero wrong answers, zero connection failovers, and
// hedge spend provably inside the token budget.
func TestTCPGrayFailureThroughputWin(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second throughput comparison")
	}
	keys := workload.SortedKeys(16384, 79)
	queries := workload.UniformQueries(4096, 80)
	want := make([]int, len(queries))
	for i, q := range queries {
		want[i] = workload.ReferenceRank(keys, q)
	}

	const slowPart, slowReplica = 3, 0
	const window = 1500 * time.Millisecond

	// measure runs lookup rounds for one wall-clock window against a
	// fresh gray cluster whose [slowPart][slowReplica] answers 100ms
	// late (~100x a loopback reply), verifying every round, and reports
	// rounds completed.
	measure := func(opt DialOptions) (rounds int, health []ReplicaHealth, err error) {
		gc, shutdown := startGray(t, keys, 8, 2, 256, opt)
		defer shutdown()
		gc.profiles[slowPart][slowReplica].Set(faultnet.Faults{WriteLatency: 100 * time.Millisecond})
		out := make([]int, len(queries))
		deadline := time.Now().Add(window)
		for time.Now().Before(deadline) {
			if err := gc.c.LookupBatchInto(queries, out); err != nil {
				return rounds, nil, err
			}
			for i := range out {
				if out[i] != want[i] {
					t.Fatalf("round %d: rank[%d] = %d, want %d", rounds, i, out[i], want[i])
				}
			}
			rounds++
		}
		return rounds, gc.c.Health(), gc.c.Err()
	}

	plain, _, err := measure(DialOptions{})
	if err != nil {
		t.Fatalf("plain client: %v", err)
	}
	// HedgeBudget 1.0: a fully-gray replica needs every read hedged
	// until ejection sheds it, and the ejector's signal — six
	// consecutive outlier replies — drains off the slow connection at
	// only 1/latency per second, so the default trickle budget (0.1)
	// would run dry first. The budget *cap* is still enforced and
	// counter-verified below; exhaustion behavior has its own test.
	hedged, health, err := measure(DialOptions{
		HedgeQuantile: 0.95,
		HedgeBudget:   1.0,
		EjectFactor:   4,
		ProbeBackoff:  300 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("hedged client: %v", err)
	}

	if plain == 0 {
		t.Fatal("plain client completed no rounds")
	}
	t.Logf("plain %d rounds, hedged %d rounds over %v", plain, hedged, window)
	if hedged < 5*plain {
		t.Fatalf("hedged/ejecting client did %d rounds vs plain %d: below the 5x floor", hedged, plain)
	}

	// Gray handling must not have escalated to connection failovers.
	perPart := map[int]struct{ disp, hedges uint64 }{}
	for _, h := range health {
		if h.Failures != 0 || h.Rejoins != 0 {
			t.Fatalf("replica %s: %d failures / %d rejoins under a latency-only fault", h.Addr, h.Failures, h.Rejoins)
		}
		agg := perPart[h.Partition]
		agg.disp += h.Dispatched
		agg.hedges += h.Hedges
		perPart[h.Partition] = agg
	}
	// Counter-verified budget bound, per partition: every hedge spends a
	// whole token, each primary read dispatch earns HedgeBudget (1.0),
	// and the bucket starts at (and is capped by) the default 16-token
	// burst. Dispatched counts hedge re-dispatches too, so primaries =
	// dispatched - hedges.
	for part, agg := range perPart {
		bound := 1.0*float64(agg.disp-agg.hedges) + 16
		if float64(agg.hedges) > bound {
			t.Fatalf("partition %d: %d hedges exceeds budget bound %.1f (dispatched %d)",
				part, agg.hedges, bound, agg.disp)
		}
	}
}
