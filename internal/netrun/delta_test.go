package netrun

import (
	"bytes"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

func TestUvarint32RoundTrip(t *testing.T) {
	vals := []uint32{0, 1, 0x7F, 0x80, 0x3FFF, 0x4000, 0x1FFFFF, 0x200000, 0xFFFFFFF, 0x10000000, 0xFFFFFFFF}
	for _, v := range vals {
		b := appendUvarint32(nil, v)
		if len(b) > 5 {
			t.Fatalf("%d encoded to %d bytes", v, len(b))
		}
		got, n := uvarint32(b)
		if n != len(b) || got != v {
			t.Fatalf("uvarint32(%x) = %d,%d want %d,%d", b, got, n, v, len(b))
		}
	}
}

func TestUvarint32RejectsHostileInput(t *testing.T) {
	cases := map[string][]byte{
		"empty":        {},
		"truncated":    {0x80},
		"truncated4":   {0x80, 0x80, 0x80, 0x80},
		"overlong":     {0x80, 0x80, 0x80, 0x80, 0x80, 0x01}, // 6 bytes
		"out-of-range": {0xFF, 0xFF, 0xFF, 0xFF, 0x7F},       // > 2^32
	}
	for name, b := range cases {
		if v, n := uvarint32(b); n != 0 {
			t.Fatalf("%s: accepted as %d (%d bytes)", name, v, n)
		}
	}
}

func TestDeltaRunRoundTrip(t *testing.T) {
	f := func(raw []uint32) bool {
		vals := append([]uint32(nil), raw...)
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		enc, err := appendDeltaRun(nil, vals)
		if err != nil {
			return false
		}
		dec, err := decodeDeltaRun(enc, nil)
		if err != nil || len(dec) != len(vals) {
			return false
		}
		for i := range vals {
			if dec[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendDeltaRunRejectsNonMonotone(t *testing.T) {
	if _, err := appendDeltaRun(nil, []uint32{5, 3}); err == nil {
		t.Fatal("non-monotone run encoded")
	}
}

func TestDecodeDeltaRunTruncations(t *testing.T) {
	enc, err := appendDeltaRun(nil, []uint32{10, 200, 300000, 300000, 0xFFFFFFFF})
	if err != nil {
		t.Fatal(err)
	}
	// Every proper prefix must be rejected, never panic.
	for cut := 0; cut < len(enc); cut++ {
		if _, err := decodeDeltaRun(enc[:cut], nil); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Trailing garbage must be rejected too (exact-consumption rule).
	if _, err := decodeDeltaRun(append(append([]byte(nil), enc...), 0x00), nil); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// A forged element count must be rejected before any allocation larger
// than the payload itself — the ReadKeys-style chunk guard.
func TestDecodeDeltaRunHostileCount(t *testing.T) {
	payload := appendUvarint32(nil, 0xFFFFFFFF) // claims 4G elements
	payload = append(payload, 1, 2, 3)
	if _, err := decodeDeltaRun(payload, nil); err == nil || !strings.Contains(err.Error(), "forged") {
		t.Fatalf("err = %v, want forged-frame rejection", err)
	}
	// Sum overflow past 32 bits: first element 0xFFFFFFFF, delta 1.
	over := appendUvarint32(nil, 2)
	over = appendUvarint32(over, 0xFFFFFFFF)
	over = appendUvarint32(over, 1)
	if _, err := decodeDeltaRun(over, nil); err != errDeltaOverflow {
		t.Fatalf("err = %v, want overflow", err)
	}
}

// FuzzDeltaPayload drives the decoder with arbitrary bytes: it must
// never panic, never allocate beyond the guarded bound, and on success
// re-encode to a stream that decodes to the same values.
func FuzzDeltaPayload(f *testing.F) {
	seed1, _ := appendDeltaRun(nil, []uint32{1, 2, 3, 100000, 0xFFFFFFFF})
	seed2, _ := appendDeltaRun(nil, []uint32{})
	seed3, _ := appendDeltaRun(nil, []uint32{0, 0, 0, 0})
	f.Add(seed1)
	f.Add(seed2)
	f.Add(seed3)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x0F})       // hostile count
	f.Add([]byte{0x02, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}) // overflowing delta
	f.Add(bytes.Repeat([]byte{0x80}, 64))             // unterminated varints
	f.Fuzz(func(t *testing.T, payload []byte) {
		vals, err := decodeDeltaRun(payload, nil)
		if err != nil {
			return
		}
		// The count guard: a successful decode can never have produced
		// more elements than payload bytes.
		if len(vals) > len(payload) {
			t.Fatalf("%d elements out of %d bytes", len(vals), len(payload))
		}
		for i := 1; i < len(vals); i++ {
			if vals[i] < vals[i-1] {
				t.Fatalf("decoded run not monotone at %d", i)
			}
		}
		enc, err := appendDeltaRun(nil, vals)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		back, err := decodeDeltaRun(enc, nil)
		if err != nil || len(back) != len(vals) {
			t.Fatalf("re-decode: %v (%d vals)", err, len(back))
		}
		for i := range vals {
			if back[i] != vals[i] {
				t.Fatalf("round trip diverged at %d", i)
			}
		}
	})
}

func TestVarRunRoundTrip(t *testing.T) {
	f := func(vals []uint32) bool {
		enc := appendVarRun(nil, vals)
		dec, err := decodeVarRun(enc, nil)
		if err != nil || len(dec) != len(vals) {
			return false
		}
		for i := range vals {
			if dec[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	// Non-monotone values are the codec's reason to exist: counts jump
	// both directions.
	enc := appendVarRun(nil, []uint32{5, 0, 0xFFFFFFFF, 1, 5})
	dec, err := decodeVarRun(enc, nil)
	if err != nil || len(dec) != 5 || dec[2] != 0xFFFFFFFF || dec[4] != 5 {
		t.Fatalf("non-monotone round trip: %v %v", dec, err)
	}
}

func TestDecodeVarRunTruncations(t *testing.T) {
	enc := appendVarRun(nil, []uint32{10, 0, 300000, 7, 0xFFFFFFFF})
	for cut := 0; cut < len(enc); cut++ {
		if _, err := decodeVarRun(enc[:cut], nil); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := decodeVarRun(append(append([]byte(nil), enc...), 0x00), nil); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestDecodeVarRunHostileCount(t *testing.T) {
	payload := appendUvarint32(nil, 0xFFFFFFFF) // claims 4G elements
	payload = append(payload, 1, 2, 3)
	if _, err := decodeVarRun(payload, nil); err == nil || !strings.Contains(err.Error(), "forged") {
		t.Fatalf("err = %v, want forged-frame rejection", err)
	}
}

// FuzzVarRunPayload drives the v5 plain-varint decoder with arbitrary
// bytes: no panic, allocation bounded by the count guard, and every
// successful decode must re-encode/re-decode to the same values.
func FuzzVarRunPayload(f *testing.F) {
	f.Add(appendVarRun(nil, []uint32{1, 0, 3, 100000, 0xFFFFFFFF}))
	f.Add(appendVarRun(nil, []uint32{}))
	f.Add(appendVarRun(nil, []uint32{0, 0, 0, 0}))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x0F})       // hostile count
	f.Add([]byte{0x02, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}) // out-of-range varint
	f.Add(bytes.Repeat([]byte{0x80}, 64))             // unterminated varints
	f.Fuzz(func(t *testing.T, payload []byte) {
		vals, err := decodeVarRun(payload, nil)
		if err != nil {
			return
		}
		if len(vals) > len(payload) {
			t.Fatalf("%d elements out of %d bytes", len(vals), len(payload))
		}
		enc := appendVarRun(nil, vals)
		back, err := decodeVarRun(enc, nil)
		if err != nil || len(back) != len(vals) {
			t.Fatalf("re-decode: %v (%d vals)", err, len(back))
		}
		for i := range vals {
			if back[i] != vals[i] {
				t.Fatalf("round trip diverged at %d", i)
			}
		}
	})
}

// FuzzFrameReader feeds arbitrary byte streams to the frame decoder
// (header + v1 word payloads + v2 byte payloads): no panic, no
// unbounded allocation.
func FuzzFrameReader(f *testing.F) {
	var buf bytes.Buffer
	WriteFrame(&buf, Frame{Op: OpLookup, ReqID: 7, Payload: []uint32{1, 2, 3}})
	f.Add(buf.Bytes())
	raw, _ := appendDeltaRun(nil, []uint32{5, 6, 7})
	var buf2 bytes.Buffer
	WriteFrame(&buf2, Frame{Op: OpLookupSorted, ReqID: 9, Raw: raw})
	f.Add(buf2.Bytes())
	f.Fuzz(func(t *testing.T, stream []byte) {
		fr := frameReader{}
		r := bytes.NewReader(stream)
		for {
			if _, err := fr.readFrom(r); err != nil {
				return
			}
		}
	})
}

// V2 frames must round-trip through the writer/reader pair.
func TestSortedFrameRoundTrip(t *testing.T) {
	keys := []uint32{3, 3, 70, 500, 1 << 30, 0xFFFFFFFF}
	raw, err := appendDeltaRun(nil, keys)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Op: OpLookupSorted, ReqID: 42, Raw: raw}); err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Op != OpLookupSorted || f.ReqID != 42 {
		t.Fatalf("frame header mismatch: %+v", f)
	}
	got, err := decodeDeltaRun(f.Raw, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if got[i] != k {
			t.Fatalf("key[%d] = %d, want %d", i, got[i], k)
		}
	}
}

// encodeDeltaOp (the send-path fused encoder) must produce exactly a
// header plus appendDeltaRun's payload.
func TestEncodeDeltaKeysMatchesFrame(t *testing.T) {
	keys := []uint32{1, 2, 2, 900, 1 << 20}
	var fw frameWriter
	buf, err := fw.encodeDeltaOp(OpLookupSorted, 77, keys)
	if err != nil {
		t.Fatal(err)
	}
	f, err := ReadFrame(bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if f.Op != OpLookupSorted || f.ReqID != 77 {
		t.Fatalf("header mismatch: %+v", f)
	}
	got, err := decodeDeltaRun(f.Raw, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if got[i] != k {
			t.Fatalf("key[%d] = %d, want %d", i, got[i], k)
		}
	}
}

// The wire win the delta coding buys on the benchmark-shaped workload:
// sorted uniform keys must shrink meaningfully, and their (dense) rank
// runs must shrink to about a byte per element.
func TestDeltaCompressionRatio(t *testing.T) {
	qs := workload.UniformQueries(16384, 1)
	sort.Slice(qs, func(i, j int) bool { return qs[i] < qs[j] })
	keys := make([]uint32, len(qs))
	for i, q := range qs {
		keys[i] = uint32(q)
	}
	enc, err := appendDeltaRun(nil, keys)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(len(enc)) / float64(4*len(keys)); ratio > 0.80 {
		t.Errorf("sorted uniform keys: %d -> %d bytes (%.2fx of fixed), want <= 0.80x", 4*len(keys), len(enc), ratio)
	}
	// Ranks over a 40960-key partition: dense, ~1 byte each.
	ranks := make([]uint32, len(keys))
	for i := range ranks {
		ranks[i] = uint32(i * 40960 / len(ranks))
	}
	encR, err := appendDeltaRun(nil, ranks)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(len(encR)) / float64(4*len(ranks)); ratio > 0.35 {
		t.Errorf("dense ranks: %d -> %d bytes (%.2fx of fixed), want <= 0.35x", 4*len(ranks), len(encR), ratio)
	}
}
