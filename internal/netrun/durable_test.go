package netrun

import (
	"net"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/workload"
)

// durableCluster is the durable-node sibling of replicatedCluster: every
// replica serves from its own WAL directory, so a "restart" reopens the
// same durable state a crashed process would recover.
type durableCluster struct {
	part  *core.Partitioning
	nodes [][]*Node
	addrs [][]string
	dirs  [][]string
	c     *Cluster
}

func startDurable(t *testing.T, keys []workload.Key, parts, replicas, batch int, opt DialOptions) (*durableCluster, func()) {
	t.Helper()
	p, err := core.NewPartitioning(keys, parts)
	if err != nil {
		t.Fatal(err)
	}
	dc := &durableCluster{
		part:  p,
		nodes: make([][]*Node, parts),
		addrs: make([][]string, parts),
		dirs:  make([][]string, parts),
	}
	root := t.TempDir()
	var flat []string
	for i := 0; i < parts; i++ {
		for r := 0; r < replicas; r++ {
			lis, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			dir := filepath.Join(root, "p"+string(rune('0'+i))+"r"+string(rune('0'+r)))
			node, err := NewDurablePartitionNode(p.Parts[i].Keys, p.Parts[i].RankBase, dir, index.StoreOptions{})
			if err != nil {
				t.Fatal(err)
			}
			dc.nodes[i] = append(dc.nodes[i], node)
			dc.addrs[i] = append(dc.addrs[i], lis.Addr().String())
			dc.dirs[i] = append(dc.dirs[i], dir)
			flat = append(flat, lis.Addr().String())
			go node.Serve(lis)
		}
	}
	opt.BatchKeys = batch
	opt.Replicas = replicas
	if opt.Timeout == 0 {
		opt.Timeout = 5 * time.Second
	}
	dc.c, err = Dial(flat, keys, opt)
	if err != nil {
		for _, reps := range dc.nodes {
			for _, n := range reps {
				n.Close()
			}
		}
		t.Fatal(err)
	}
	return dc, func() {
		dc.c.Close()
		for _, reps := range dc.nodes {
			for _, n := range reps {
				n.Close()
			}
		}
	}
}

func (dc *durableCluster) kill(partition, replica int) {
	dc.nodes[partition][replica].Close()
}

// restart reopens the replica's durable directory — exactly what a
// crashed-and-restarted dcnode process does — and serves it on the
// original address.
func (dc *durableCluster) restart(t *testing.T, partition, replica int) {
	t.Helper()
	addr := dc.addrs[partition][replica]
	var lis net.Listener
	var err error
	deadline := time.Now().Add(5 * time.Second)
	for {
		lis, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	p := dc.part.Parts[partition]
	node, err := NewDurablePartitionNode(p.Keys, p.RankBase, dc.dirs[partition][replica], index.StoreOptions{})
	if err != nil {
		t.Fatalf("reopen durable node: %v", err)
	}
	dc.nodes[partition][replica] = node
	go node.Serve(lis)
}

func (dc *durableCluster) health(t *testing.T, partition, replica int) ReplicaHealth {
	t.Helper()
	addr := dc.addrs[partition][replica]
	for _, h := range dc.c.Health() {
		if h.Partition == partition && h.Addr == addr {
			return h
		}
	}
	t.Fatalf("no health row for partition %d addr %s", partition, addr)
	return ReplicaHealth{}
}

func (dc *durableCluster) waitHealthy(t *testing.T, partition, replica int, want bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for dc.health(t, partition, replica).Healthy != want {
		if time.Now().After(deadline) {
			t.Fatalf("replica %d/%d never became healthy=%v", partition, replica, want)
		}
		// Traffic drives failure detection.
		qs := workload.UniformQueries(64, 77)
		out := make([]int, len(qs))
		dc.c.LookupBatchInto(qs, out)
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDurableRejoinViaDelta: a durable replica that crashes and
// restarts holds everything it fsynced, so its rejoin must move only
// the missed writes (the v4 positioned delta), not the whole key set —
// and the result must be exact.
func TestDurableRejoinViaDelta(t *testing.T) {
	keys := workload.SortedKeys(8000, 63)
	dc, shutdown := startDurable(t, keys, 2, 2, 256, DialOptions{
		RejoinBackoff:    20 * time.Millisecond,
		RejoinMaxBackoff: 100 * time.Millisecond,
	})
	defer shutdown()
	o := newTCPOracle(keys)

	r := workload.NewRNG(67)
	insert := func(n int) {
		t.Helper()
		batch := make([]workload.Key, n)
		for i := range batch {
			batch[i] = r.Key()
		}
		if err := dc.c.InsertBatch(batch); err != nil {
			t.Fatalf("InsertBatch: %v", err)
		}
		o.insert(batch)
	}
	insert(300) // both replicas log these
	probes := workload.UniformQueries(500, 71)
	checkTCPExact(t, dc.c, o, probes)

	dc.kill(0, 1)
	dc.waitHealthy(t, 0, 1, false)
	insert(200) // replica 0/1 misses exactly these

	dc.restart(t, 0, 1)
	dc.waitHealthy(t, 0, 1, true)
	if got := dc.c.deltaCatchups.Load(); got == 0 {
		t.Fatal("rejoin of a durable replica did not use the positioned delta")
	}
	if h := dc.health(t, 0, 1); h.Rejoins == 0 {
		t.Fatalf("health = %+v, want a counted rejoin", h)
	}
	checkTCPExact(t, dc.c, o, probes)

	// The restarted replica must itself be correct, not just covered by
	// its sibling: kill the sibling and read through the rejoiner alone.
	dc.kill(0, 0)
	dc.waitHealthy(t, 0, 0, false)
	checkTCPExact(t, dc.c, o, probes)
	if err := dc.c.Err(); err != nil {
		t.Fatalf("cluster terminal: %v", err)
	}
}

// TestDurableRejoinDivergedFallsBackToFull: a rejoiner whose durable
// history diverged from the survivors (it logged a write nobody else
// acked) must refuse the delta and converge through a full snapshot —
// diverged state is repaired, never merged silently.
func TestDurableRejoinDivergedFallsBackToFull(t *testing.T) {
	keys := workload.SortedKeys(6000, 73)
	dc, shutdown := startDurable(t, keys, 1, 2, 256, DialOptions{
		RejoinBackoff:    20 * time.Millisecond,
		RejoinMaxBackoff: 100 * time.Millisecond,
	})
	defer shutdown()
	o := newTCPOracle(keys)

	r := workload.NewRNG(79)
	insert := func(n int) {
		t.Helper()
		batch := make([]workload.Key, n)
		for i := range batch {
			batch[i] = r.Key()
		}
		if err := dc.c.InsertBatch(batch); err != nil {
			t.Fatalf("InsertBatch: %v", err)
		}
		o.insert(batch)
	}
	insert(200)
	dc.kill(0, 1)
	dc.waitHealthy(t, 0, 1, false)
	insert(100)

	// Diverge the dead replica's durable history behind the cluster's
	// back: one write only it ever logged.
	st, _, err := index.OpenStore(dc.dirs[0][1], dc.part.Parts[0].Keys, index.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	end, _, err := st.Append([]workload.Key{424242})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(end); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	before := dc.c.deltaCatchups.Load()
	dc.restart(t, 0, 1)
	dc.waitHealthy(t, 0, 1, true)
	if got := dc.c.deltaCatchups.Load(); got != before {
		t.Fatal("diverged replica rejoined via delta; must fall back to a full snapshot")
	}
	checkTCPExact(t, dc.c, o, probes(t))

	// Read through the repaired replica alone: the divergent key must be
	// gone (full snapshot replaced it), every acked write present.
	dc.kill(0, 0)
	dc.waitHealthy(t, 0, 0, false)
	checkTCPExact(t, dc.c, o, probes(t))
}

func probes(t *testing.T) []workload.Key {
	t.Helper()
	return workload.UniformQueries(400, 83)
}

// TestDurableV3V4Interop: a durable v4 replica and a plain in-memory v3
// replica serve the same partition; writes fan to both, reads agree,
// and a v3 restart still catches up (via the full snapshot — there is
// no position to delta from).
func TestDurableV3V4Interop(t *testing.T) {
	keys := workload.SortedKeys(5000, 89)
	p, err := core.NewPartitioning(keys, 1)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	lis0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	durNode, err := NewDurablePartitionNode(p.Parts[0].Keys, p.Parts[0].RankBase, dir, index.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	go durNode.Serve(lis0)
	defer durNode.Close()

	lis1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	memNode := NewPartitionNode(p.Parts[0].Keys, p.Parts[0].RankBase)
	go memNode.Serve(lis1)
	defer func() { memNode.Close() }()
	memAddr := lis1.Addr().String()

	c, err := Dial([]string{lis0.Addr().String() + "|" + memAddr}, keys, DialOptions{
		BatchKeys: 256, Replicas: 2, Timeout: 5 * time.Second,
		RejoinBackoff: 20 * time.Millisecond, RejoinMaxBackoff: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	o := newTCPOracle(keys)
	r := workload.NewRNG(97)
	batch := make([]workload.Key, 150)
	for i := range batch {
		batch[i] = r.Key()
	}
	if err := c.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}
	o.insert(batch)
	qs := workload.UniformQueries(400, 101)
	checkTCPExact(t, c, o, qs)

	// Kill and restart the v3 node; its rejoin must use the legacy full
	// snapshot (deltaCatchups stays 0) and still converge.
	memNode.Close()
	deadline := time.Now().Add(15 * time.Second)
	healthy := func() bool {
		for _, h := range c.Health() {
			if h.Addr == memAddr {
				return h.Healthy
			}
		}
		return false
	}
	for healthy() {
		if time.Now().After(deadline) {
			t.Fatal("killed v3 replica never marked unhealthy")
		}
		out := make([]int, len(qs))
		c.LookupBatchInto(qs, out)
	}
	if err := c.InsertBatch([]workload.Key{7, 8, 9}); err != nil {
		t.Fatal(err)
	}
	o.insert([]workload.Key{7, 8, 9})

	var lis2 net.Listener
	for {
		lis2, err = net.Listen("tcp", memAddr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	memNode = NewPartitionNode(p.Parts[0].Keys, p.Parts[0].RankBase)
	go memNode.Serve(lis2)
	for !healthy() {
		if time.Now().After(deadline) {
			t.Fatal("v3 replica never rejoined")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := c.deltaCatchups.Load(); got != 0 {
		t.Fatalf("v3 rejoin counted %d delta catch-ups; must use the full snapshot", got)
	}
	checkTCPExact(t, c, o, qs)
}

// TestDurableNodeRefusesWriteOnBrokenLog: when the durable node's disk
// dies, an insert must come back as an error to the client (the write
// was not acked), not vanish.
func TestDurableNodeAckImpliesDurability(t *testing.T) {
	keys := workload.SortedKeys(4000, 103)
	dc, shutdown := startDurable(t, keys, 2, 1, 128, DialOptions{})
	defer shutdown()
	o := newTCPOracle(keys)
	r := workload.NewRNG(107)
	var acked []workload.Key
	for round := 0; round < 4; round++ {
		batch := make([]workload.Key, 100)
		for i := range batch {
			batch[i] = r.Key()
		}
		if err := dc.c.InsertBatch(batch); err != nil {
			t.Fatal(err)
		}
		acked = append(acked, batch...)
		o.insert(batch)
	}
	// Hard-stop every node (crash equivalence: no graceful drain beyond
	// what acks already guaranteed), then reopen the directories.
	dc.c.Close()
	for i := range dc.nodes {
		dc.nodes[i][0].Close()
	}
	for i := range dc.nodes {
		dir := dc.dirs[i][0]
		p := dc.part.Parts[i]
		dp, err := index.OpenDurablePartition(dir, p.Keys, func(ks []workload.Key) index.BatchRanker {
			return index.NewSortedArray(ks, 0)
		}, 0, index.StoreOptions{})
		if err != nil {
			t.Fatalf("partition %d: reopen after crash: %v", i, err)
		}
		snap := dp.Upd.SnapshotKeys()
		// Every acked key owned by this partition must be in the snapshot.
		counts := map[workload.Key]int{}
		for _, k := range snap {
			counts[k]++
		}
		for _, k := range p.Keys {
			counts[k]--
		}
		for _, k := range acked {
			if i == dc.part.Route(k) {
				counts[k]--
			}
		}
		for k, v := range counts {
			if v != 0 {
				t.Fatalf("partition %d: key %d off by %+d after restart", i, k, v)
			}
		}
		dp.Close()
	}
}

// TestJitterBackoffBounds pins the rejoin backoff arithmetic: jitter
// stays in [d/2, d) so herds of rejoiners spread out, and doubling caps
// at the configured maximum.
func TestJitterBackoffBounds(t *testing.T) {
	for _, d := range []time.Duration{2, 100 * time.Millisecond, time.Second} {
		for i := 0; i < 2000; i++ {
			got := jitterBackoff(d)
			if got < d/2 || got >= d {
				t.Fatalf("jitterBackoff(%v) = %v, want [%v, %v)", d, got, d/2, d)
			}
		}
	}
	if got := jitterBackoff(1); got != 1 {
		t.Fatalf("jitterBackoff(1) = %v, want 1 (too small to split)", got)
	}
	if got := nextBackoff(100*time.Millisecond, time.Second); got != 200*time.Millisecond {
		t.Fatalf("nextBackoff doubling = %v, want 200ms", got)
	}
	if got := nextBackoff(800*time.Millisecond, time.Second); got != time.Second {
		t.Fatalf("nextBackoff cap = %v, want 1s", got)
	}
	if got := nextBackoff(2*time.Second, time.Second); got != time.Second {
		t.Fatalf("nextBackoff over cap = %v, want 1s", got)
	}
}
