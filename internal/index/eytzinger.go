package index

import (
	"fmt"
	"math/bits"

	"repro/internal/memsim"
	"repro/internal/workload"
)

// Eytzinger is a sorted key set laid out in Eytzinger (BFS heap) order:
// the root at slot 1, the children of slot i at 2i and 2i+1. The layout
// turns binary search into a pure left/right descent with no mid-point
// arithmetic on the critical path, which compiles to a branchless
// conditional-move loop, and it clusters the first few comparison levels
// onto a handful of cache lines, so the top of every search is
// cache-resident ("Index Search Algorithms for Databases and Modern
// CPUs", Gross 2010). RankBatch additionally interleaves G independent
// descents so the out-of-order core overlaps their cache misses — the
// memory-level-parallelism trick the paper's batching thesis predicts.
//
// The structure stores two arrays: the keys in Eytzinger order and, per
// slot, the key's rank in sorted order (so a descent ends with a single
// table load instead of a position reconstruction). Footprint is
// therefore 8 bytes per key, double a SortedArray; it is the opt-in
// Layout for Method C-3 slaves where the partition still fits the cache
// at 2x.
type Eytzinger struct {
	// a[1..n] are the keys in Eytzinger order; a[0] is unused padding so
	// the child arithmetic is shift-only.
	a []workload.Key
	// sidx[i] is a[i]'s index in sorted order.
	sidx []int32
	n    int
	base memsim.Addr
	// levels is the deepest slot's depth + 1 == bits.Len(n), the fixed
	// trip count of the interleaved descent.
	levels int
}

// eytzLanes is the number of interleaved descents in RankBatch. Eight
// independent probe streams are enough to saturate the load ports on
// current cores without spilling the lane state out of registers.
const eytzLanes = 8

// NewEytzinger builds the Eytzinger layout over keys (which must be
// sorted ascending; the constructor panics otherwise, matching
// NewSortedArray) at virtual address base.
func NewEytzinger(keys []workload.Key, base memsim.Addr) *Eytzinger {
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			panic(fmt.Sprintf("index: NewEytzinger input not sorted at %d", i))
		}
	}
	n := len(keys)
	e := &Eytzinger{
		a:      make([]workload.Key, n+1),
		sidx:   make([]int32, n+1),
		n:      n,
		base:   base,
		levels: bits.Len(uint(n)),
	}
	// In-order traversal of the implicit tree visits slots in sorted-key
	// order, so filling during it places every key at its Eytzinger slot.
	pos := 0
	var fill func(i int)
	fill = func(i int) {
		if i > n {
			return
		}
		fill(2 * i)
		e.a[i] = keys[pos]
		e.sidx[i] = int32(pos)
		pos++
		fill(2*i + 1)
	}
	fill(1)
	return e
}

// Name implements Index.
func (e *Eytzinger) Name() string { return "eytzinger" }

// N implements Index.
func (e *Eytzinger) N() int { return e.n }

// Base implements Index.
func (e *Eytzinger) Base() memsim.Addr { return e.base }

// SizeBytes implements Index: keys plus the rank table (the search only
// streams the key array; the rank table is one load per query).
func (e *Eytzinger) SizeBytes() int {
	return e.n*workload.KeyBytes + e.n*4
}

// restore maps a finished descent cursor to the Eytzinger slot of the
// first key > q: shifting off the trailing 1-bits (the final run of
// right turns) plus one lands on the last ancestor reached by a left
// turn. A zero result means every key was <= q.
func restore(j uint) uint {
	return j >> uint(bits.TrailingZeros(^j)+1)
}

// Rank implements Index: the number of keys <= k, via a branchless
// descent.
func (e *Eytzinger) Rank(k workload.Key) int {
	a := e.a
	n := uint(e.n)
	j := uint(1)
	for j <= n {
		// One conditional-move per level: right child if a[j] <= k.
		if a[j] <= k {
			j = 2*j + 1
		} else {
			j = 2 * j
		}
	}
	if j = restore(j); j == 0 {
		return e.n
	}
	return int(e.sidx[j])
}

// RankBatch resolves qs into out (which must be at least len(qs) long),
// adding add to every rank — the partition rank base folds into the
// single result write. Queries are processed in groups of eytzLanes
// lock-step descents so their cache misses overlap.
//
//dc:noalloc
func (e *Eytzinger) RankBatch(qs []workload.Key, out []int, add int) {
	a, sidx, n := e.a, e.sidx, uint(e.n)
	i := 0
	for ; i+eytzLanes <= len(qs); i += eytzLanes {
		var j [eytzLanes]uint
		for g := range j {
			j[g] = 1
		}
		// All lanes step together for exactly `levels` iterations; lanes
		// whose descent ended early (shallow leaves) hold still.
		for d := 0; d < e.levels; d++ {
			for g := 0; g < eytzLanes; g++ {
				t := j[g]
				if t <= n {
					if a[t] <= qs[i+g] {
						j[g] = 2*t + 1
					} else {
						j[g] = 2 * t
					}
				}
			}
		}
		for g := 0; g < eytzLanes; g++ {
			if t := restore(j[g]); t == 0 {
				out[i+g] = int(n) + add
			} else {
				out[i+g] = int(sidx[t]) + add
			}
		}
	}
	for ; i < len(qs); i++ {
		out[i] = e.Rank(qs[i]) + add
	}
}

// RankSorted is the sorted-batch entry point, provided so the Eytzinger
// layout satisfies the same kernel surface as SortedArray. It is a
// documented fallback, not a streaming merge: the Eytzinger permutation
// scatters ascending keys across the array (slot order is BFS, not
// sorted order), so a forward-merge cursor has no sequential run to
// stream through, and the profitable strategy for an ascending batch is
// the same interleaved lock-step descent RankBatch already performs —
// ascending queries share their top-of-tree path, which the hot
// first-levels cache lines already capture. Results are bit-identical
// to RankBatch.
//
//dc:noalloc
func (e *Eytzinger) RankSorted(qs []workload.Key, out []int, add int) {
	e.RankBatch(qs, out, add)
}

// RankTrace implements Index; every probed slot contributes one address
// (the trailing rank-table load shares the final level's locality and is
// not traced separately).
func (e *Eytzinger) RankTrace(k workload.Key, trace []memsim.Addr) (int, []memsim.Addr) {
	a := e.a
	n := uint(e.n)
	j := uint(1)
	for j <= n {
		trace = append(trace, e.base+memsim.Addr(j)*workload.KeyBytes)
		if a[j] <= k {
			j = 2*j + 1
		} else {
			j = 2 * j
		}
	}
	if j = restore(j); j == 0 {
		return e.n, trace
	}
	return int(e.sidx[j]), trace
}

// Levels implements Index: the fixed descent depth, bits.Len(n).
func (e *Eytzinger) Levels() int { return e.levels }

// LevelLines implements Index. Level d occupies the contiguous slot run
// [2^d, min(2^(d+1)-1, n)] — the Eytzinger layout's defining property —
// so the line count is the run's byte extent over 32-byte lines.
func (e *Eytzinger) LevelLines() []int {
	if e.n == 0 {
		return nil
	}
	out := make([]int, e.levels)
	for d := range out {
		lo := 1 << d
		hi := min(2*lo-1, e.n)
		firstLine := (lo * workload.KeyBytes) / 32
		lastLine := (hi*workload.KeyBytes + workload.KeyBytes - 1) / 32
		out[d] = lastLine - firstLine + 1
	}
	return out
}
