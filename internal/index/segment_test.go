package index

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/workload"
)

func TestSegmentRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seg-00000000000000000009.seg")
	keys := []workload.Key{1, 2, 2, 5, 9, 100}
	if err := WriteSegment(faultfs.OS, path, keys, 9, 0xfeed); err != nil {
		t.Fatalf("WriteSegment: %v", err)
	}
	seg, err := ReadSegment(faultfs.OS, path)
	if err != nil {
		t.Fatalf("ReadSegment: %v", err)
	}
	if seg.Gen != 9 || seg.Chain != 0xfeed {
		t.Fatalf("position (%d, %#x), want (9, 0xfeed)", seg.Gen, seg.Chain)
	}
	if len(seg.Keys) != len(keys) {
		t.Fatalf("%d keys, want %d", len(seg.Keys), len(keys))
	}
	for i := range keys {
		if seg.Keys[i] != keys[i] {
			t.Fatalf("key %d = %d, want %d", i, seg.Keys[i], keys[i])
		}
	}
}

// TestSegmentBitFlipDetected flips every bit of a segment file: every
// single flip must be caught by the checksum (or header validation) —
// a rotted segment is quarantined, never served.
func TestSegmentBitFlipDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg-00000000000000000004.seg")
	if err := WriteSegment(faultfs.OS, path, []workload.Key{3, 4, 4, 8}, 4, 0xabc); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mutPath := filepath.Join(dir, "mut.seg")
	for byteOff := 0; byteOff < len(data); byteOff++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), data...)
			mut[byteOff] ^= 1 << bit
			if err := os.WriteFile(mutPath, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := ReadSegment(faultfs.OS, mutPath); !errors.Is(err, ErrSegmentCorrupt) {
				t.Fatalf("flip %d.%d: error %v, want ErrSegmentCorrupt", byteOff, bit, err)
			}
		}
	}
}

// TestSegmentTruncationDetected cuts the file at every length: any
// truncation must fail validation.
func TestSegmentTruncationDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg-00000000000000000004.seg")
	if err := WriteSegment(faultfs.OS, path, []workload.Key{3, 4, 8}, 4, 0xabc); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mutPath := filepath.Join(dir, "mut.seg")
	for cut := 0; cut < len(data); cut++ {
		if err := os.WriteFile(mutPath, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadSegment(faultfs.OS, mutPath); !errors.Is(err, ErrSegmentCorrupt) {
			t.Fatalf("cut %d: error %v, want ErrSegmentCorrupt", cut, err)
		}
	}
}

// TestAtomicWriteFileFaults: any injected failure along the temp-write-
// sync-rename path must leave the destination untouched (old content or
// absent) and clean up the temp file.
func TestAtomicWriteFileFaults(t *testing.T) {
	writeOld := func(t *testing.T, dir string) string {
		path := filepath.Join(dir, "target.seg")
		if err := WriteSegment(faultfs.OS, path, []workload.Key{1}, 1, 0x1); err != nil {
			t.Fatal(err)
		}
		return path
	}
	for _, tc := range []struct {
		name string
		arm  func(f *faultfs.Faulty)
	}{
		{"write", func(f *faultfs.Faulty) { f.FailWriteAt(1) }},
		{"sync", func(f *faultfs.Faulty) { f.FailSyncAt(1) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			path := writeOld(t, dir)
			faulty := faultfs.NewFaulty(faultfs.OS)
			tc.arm(faulty)
			err := WriteSegment(faulty, path, []workload.Key{7, 8, 9}, 3, 0x3)
			if !errors.Is(err, faultfs.ErrInjected) {
				t.Fatalf("error %v, want ErrInjected", err)
			}
			seg, err := ReadSegment(faultfs.OS, path)
			if err != nil {
				t.Fatalf("old segment damaged by failed overwrite: %v", err)
			}
			if seg.Gen != 1 {
				t.Fatalf("old segment replaced: gen %d", seg.Gen)
			}
			ents, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range ents {
				if e.Name() != filepath.Base(path) {
					t.Fatalf("leftover file %s after failed atomic write", e.Name())
				}
			}
		})
	}
}
