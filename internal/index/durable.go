package index

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/workload"
)

// DurablePartition couples one Updatable with its Store under the
// WAL-order-equals-apply-order contract: every insert is appended to
// the log and applied to memory under one lock (so the in-memory state
// always covers an exact log prefix), then the ack path waits for the
// group fsync. Frozen-layer publishes flush segments through a
// background daemon, which is what retires replayed WAL files.
//
// This is the building block netrun's durable nodes serve from; the
// core cluster wires Stores into its worker pipeline directly (the
// apply side there is a channel send) but follows the same contract.
type DurablePartition struct {
	Store *Store
	Upd   *Updatable

	mu      sync.Mutex // serializes append+apply
	flushCh chan flushReq
	stopped chan struct{}
	wg      sync.WaitGroup
	logf    func(format string, args ...any)
}

type flushReq struct {
	keys []workload.Key
	gen  uint64
}

// ErrCatchUpMismatch reports a delta catch-up whose keys would not
// reproduce the sibling's (generation, chain) accounting — the replicas
// diverged, and only a full snapshot can reconcile them.
var ErrCatchUpMismatch = errors.New("index: delta catch-up does not reproduce the expected generation/chain")

// OpenDurablePartition recovers (or creates) the durable state in dir —
// newest intact segment plus WAL tail, baseline when the directory is
// fresh — and serves it through an Updatable built with build.
func OpenDurablePartition(dir string, baseline []workload.Key, build Builder, threshold int, opt StoreOptions) (*DurablePartition, error) {
	st, recovered, err := OpenStore(dir, baseline, opt)
	if err != nil {
		return nil, err
	}
	d := &DurablePartition{
		Store:   st,
		flushCh: make(chan flushReq, 4),
		stopped: make(chan struct{}),
		logf:    opt.Logf,
	}
	u := NewUpdatable(recovered, build, threshold)
	u.OnPublish = d.enqueueFlush
	d.Upd = u
	d.wg.Add(1)
	go d.flusher()
	return d, nil
}

// InsertBatch logs keys, applies them, and returns once the record is
// fsynced: a nil return is the durability guarantee behind an insert
// ack. On error nothing was acked (the keys may or may not survive a
// restart, exactly like a crash mid-call).
func (d *DurablePartition) InsertBatch(keys []workload.Key) error {
	if len(keys) == 0 {
		return nil
	}
	d.mu.Lock()
	end, gen, err := d.Store.Append(keys)
	if err != nil {
		d.mu.Unlock()
		return err
	}
	d.Upd.InsertBatchAt(keys, gen)
	d.mu.Unlock()
	return d.Store.Commit(end)
}

// InsertDelta applies a rejoin catch-up tail: keys (in the sibling's
// append order) must advance this partition exactly to wantGen/
// wantChain, which is verified before anything is logged — a mismatch
// means the histories diverged and the caller must fall back to a full
// snapshot.
func (d *DurablePartition) InsertDelta(keys []workload.Key, wantGen, wantChain uint64) error {
	d.mu.Lock()
	if got := d.Store.Gen() + uint64(len(keys)); got != wantGen {
		d.mu.Unlock()
		return fmt.Errorf("%w: would reach generation %d, want %d", ErrCatchUpMismatch, got, wantGen)
	}
	if got := ChainFold(d.Store.Chain(), keys); got != wantChain {
		d.mu.Unlock()
		return fmt.Errorf("%w: fold mismatch at generation %d", ErrCatchUpMismatch, wantGen)
	}
	if len(keys) == 0 {
		d.mu.Unlock()
		return nil
	}
	end, gen, err := d.Store.Append(keys)
	if err != nil {
		d.mu.Unlock()
		return err
	}
	d.Upd.InsertBatchAt(keys, gen)
	d.mu.Unlock()
	return d.Store.Commit(end)
}

// ResetTo replaces the entire state with a full snapshot at the
// sibling's generation and chain (chain 0 = unknown; later delta
// catch-ups from this node then degrade to full snapshots).
func (d *DurablePartition) ResetTo(keys []workload.Key, gen, chain uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.Store.ResetTo(keys, gen, chain); err != nil {
		return err
	}
	d.Upd.ResetAt(keys, gen)
	return nil
}

// DeltaSince returns every key logged after generation gen in append
// order, together with the (generation, chain) position the delta
// advances to, all captured atomically against concurrent inserts.
// ok=false means the history cannot prove continuity from (gen, chain) —
// chain mismatch, compacted-away tail, or a corrupt retained log — and
// the caller must fall back to a full snapshot.
func (d *DurablePartition) DeltaSince(gen, chain uint64) (keys []workload.Key, curGen, curChain uint64, ok bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	keys, ok, err := d.Store.InsertsSince(gen, chain)
	if err != nil {
		if d.logf != nil {
			d.logf("durable partition %s: delta catch-up read failed: %v", d.Store.Dir(), err)
		}
		return nil, 0, 0, false
	}
	if !ok {
		return nil, 0, 0, false
	}
	return keys, d.Store.Gen(), d.Store.Chain(), true
}

// Snapshot returns the full current key set with the (generation,
// chain) position it corresponds to — the full-catch-up source. The
// position is captured atomically with the keys.
func (d *DurablePartition) Snapshot() (keys []workload.Key, gen, chain uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.Upd.SnapshotKeys(), d.Store.Gen(), d.Store.Chain()
}

// Position returns the durable (generation, chain) position, captured
// atomically against concurrent inserts.
func (d *DurablePartition) Position() (gen, chain uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.Store.Gen(), d.Store.Chain()
}

// enqueueFlush is the Updatable's OnPublish hook. Non-blocking: if the
// daemon is behind, the request is dropped — the data is already
// durable in the WAL, a later publish re-covers it, and only file
// retirement is delayed.
func (d *DurablePartition) enqueueFlush(keys []workload.Key, gen uint64) {
	if gen == 0 {
		return
	}
	select {
	case d.flushCh <- flushReq{keys: keys, gen: gen}:
	default:
	}
}

// flusher is the compaction daemon: it turns frozen-layer publishes
// into segment files and thereby retires the WAL files they cover.
func (d *DurablePartition) flusher() {
	defer d.wg.Done()
	for {
		select {
		case <-d.stopped:
			return
		case req := <-d.flushCh:
			// Coalesce to the newest pending publish.
			for {
				select {
				case r2 := <-d.flushCh:
					req = r2
					continue
				default:
				}
				break
			}
			if err := d.Store.FlushSegment(req.keys, req.gen); err != nil && d.logf != nil {
				d.logf("durable partition %s: segment flush at generation %d failed: %v", d.Store.Dir(), req.gen, err)
			}
		}
	}
}

// Close drains background work and closes the store. The caller must
// have stopped inserts first.
func (d *DurablePartition) Close() error {
	d.Upd.Quiesce()
	close(d.stopped)
	d.wg.Wait()
	return d.Store.Close()
}
