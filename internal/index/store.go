package index

import (
	"encoding/binary"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/faultfs"
	"repro/internal/workload"
)

// Store is the durable state of one partition: an append-only WAL for
// inserts plus immutable segment snapshots flushed whenever the
// in-memory index publishes a compacted base. On open it recovers by
// loading the newest valid segment and replaying the WAL tail past it;
// a corrupt segment is quarantined and recovery falls back to the
// previous segment (whose covering WAL files are retained exactly for
// this), and a WAL with a mid-file hole makes the store refuse to open
// rather than serve a gapped history.
//
// Concurrency contract: the caller serializes Append with its in-memory
// apply (so WAL order equals apply order — the invariant that makes a
// frozen-layer watermark a prefix of the log); Commit is safe from any
// goroutine and group-commits across callers. FlushSegment and
// InsertsSince take the store lock internally.

// StoreOptions configures durability behaviour.
type StoreOptions struct {
	// FS is the filesystem to write through; nil means the real one.
	FS faultfs.FS
	// FsyncInterval is the group-commit window: 0 fsyncs as soon as a
	// commit leader claims the flush, > 0 additionally spaces fsyncs at
	// least this far apart (higher insert latency, fewer fsyncs), < 0
	// disables fsync entirely (acks are no longer crash-durable).
	FsyncInterval time.Duration
	// Logf, if set, receives recovery and quarantine notices.
	Logf func(format string, args ...any)
}

// ErrStoreCorrupt reports durable state the store refuses to serve
// from: a WAL hole, broken cross-file accounting, or no intact segment
// chain back to the baseline.
var ErrStoreCorrupt = errors.New("index: store corrupt")

type walFileRef struct {
	path string
	base uint64 // generation before the file's first record
}

// Store is one partition's durable log + segment directory.
type Store struct {
	fs  faultfs.FS
	dir string
	opt StoreOptions

	mu  sync.Mutex
	wal *WAL //dc:guardedby mu
	// walPrefix is the cumulative byte count of rotated-away WAL files
	// (see Commit).
	walPrefix int64 //dc:guardedby mu
	// wals is ascending by base; the last entry is the active log.
	wals       []walFileRef //dc:guardedby mu
	gen        uint64       //dc:guardedby mu
	chain      uint64       //dc:guardedby mu
	segGen     uint64       //dc:guardedby mu
	segPath    string       //dc:guardedby mu
	hasSeg     bool         //dc:guardedby mu
	prevSegGen uint64       //dc:guardedby mu
	hasPrev    bool         //dc:guardedby mu
	// chainAt maps record-end gen -> chain, for appends since open.
	chainAt map[uint64]uint64 //dc:guardedby mu
	closed  bool              //dc:guardedby mu
}

func segName(gen uint64) string      { return fmt.Sprintf("seg-%020d.seg", gen) }
func walName(firstSeq uint64) string { return fmt.Sprintf("wal-%020d.wal", firstSeq) }

func (s *Store) logf(format string, args ...any) {
	if s.opt.Logf != nil {
		s.opt.Logf(format, args...)
	}
}

// quarantine renames a damaged file aside (suffix .corrupt) so it is
// never picked up again but stays available for inspection.
func (s *Store) quarantine(path string, cause error) {
	if err := s.fs.Rename(path, path+".corrupt"); err != nil {
		s.logf("store %s: quarantine %s failed: %v", s.dir, filepath.Base(path), err)
		return
	}
	s.logf("store %s: quarantined %s: %v", s.dir, filepath.Base(path), cause)
}

// OpenStore opens (or creates) the durable store in dir and returns it
// together with the recovered key multiset: the newest intact segment's
// keys (or baseline when no segment exists) merged with every WAL
// record past that segment's generation. The recovered generation
// counter resumes where the log ends, and a fresh WAL file is cut so
// old files stay immutable.
func OpenStore(dir string, baseline []workload.Key, opt StoreOptions) (*Store, []workload.Key, error) {
	fs := opt.FS
	if fs == nil {
		fs = faultfs.OS
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	s := &Store{fs: fs, dir: dir, opt: opt, chain: ChainStart(), chainAt: make(map[uint64]uint64)}

	segs, walRefs, err := s.scanDir()
	if err != nil {
		return nil, nil, err
	}

	// Newest intact segment wins; corrupt ones are quarantined and the
	// previous segment (still covered by retained WAL files) takes over.
	base := baseline
	for i := len(segs) - 1; i >= 0; i-- {
		seg, err := ReadSegment(fs, segs[i].path)
		if err != nil {
			s.quarantine(segs[i].path, err)
			continue
		}
		if seg.Gen != segs[i].base {
			s.quarantine(segs[i].path, fmt.Errorf("%w: header gen %d does not match name", ErrSegmentCorrupt, seg.Gen))
			continue
		}
		base = seg.Keys
		s.gen, s.chain = seg.Gen, seg.Chain
		s.segGen, s.segPath, s.hasSeg = seg.Gen, segs[i].path, true
		if i > 0 {
			s.prevSegGen, s.hasPrev = segs[i-1].base, true
		}
		break
	}

	// Replay the WAL tail. Files are threaded in order: each file's
	// records must continue the previous file's generation and chain
	// fold exactly, and the fold must pass through the segment's
	// (gen, chain) point — any break is corruption, not a torn tail.
	segGen, segChain := s.gen, s.chain
	gen, chain := uint64(0), uint64(0)
	haveThread := false
	var replayed []workload.Key
	for _, wf := range walRefs {
		var want *uint64
		if haveThread {
			if wf.base != gen {
				return nil, nil, fmt.Errorf("%w: WAL gap in %s: %s starts at generation %d, log ends at %d",
					ErrStoreCorrupt, dir, filepath.Base(wf.path), wf.base, gen)
			}
			want = &chain
		} else if wf.base == segGen && s.hasSeg {
			want = &segChain
		}
		rep, err := replayWALChecked(fs, wf.path, wf.base, want)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: %s: %v", ErrStoreCorrupt, dir, err)
		}
		if !haveThread {
			gen, chain = rep.BaseGen, rep.BaseChain
			haveThread = true
		}
		for _, rec := range rep.Records {
			count := uint64(len(rec.Keys))
			first := rec.Seq - count // generation before the record
			if rec.Seq > segGen {
				keep := rec.Keys
				if first < segGen {
					keep = keep[segGen-first:]
				}
				replayed = append(replayed, keep...)
			}
			if rec.Seq == segGen && s.hasSeg && rec.Chain != segChain {
				return nil, nil, fmt.Errorf("%w: %s: WAL fold at generation %d disagrees with segment",
					ErrStoreCorrupt, dir, segGen)
			}
			gen, chain = rec.Seq, rec.Chain
		}
		if rep.Torn {
			s.logf("store %s: %s has a torn tail after %d bytes (crash); recovered the valid prefix",
				dir, filepath.Base(wf.path), rep.Size)
		}
	}
	if haveThread {
		if gen < segGen {
			// The log ends before the segment it should extend — records
			// the segment proves existed are gone.
			return nil, nil, fmt.Errorf("%w: %s: WAL ends at generation %d but segment covers %d",
				ErrStoreCorrupt, dir, gen, segGen)
		}
		if s.hasSeg && walRefs[0].base > segGen {
			return nil, nil, fmt.Errorf("%w: %s: oldest WAL starts at generation %d, past segment %d",
				ErrStoreCorrupt, dir, walRefs[0].base, segGen)
		}
		s.gen, s.chain = gen, chain
	}

	recovered := base
	if len(replayed) > 0 {
		sorted := append([]workload.Key(nil), replayed...)
		sortKeys(sorted)
		recovered = MergeKeys(base, sorted)
	}

	// Cut a fresh log for this run; replayed files stay immutable until
	// segment flushes retire them.
	w, err := CreateWAL(fs, filepath.Join(dir, walName(s.gen+1)), s.gen, s.chain, opt.FsyncInterval)
	if err != nil {
		return nil, nil, err
	}
	s.wal = w
	s.wals = append(s.retainedWALs(walRefs), walFileRef{path: w.Path(), base: s.gen})
	return s, recovered, nil
}

// replayWALChecked replays one file, verifying the header chain when
// the caller knows what it must be.
func replayWALChecked(fs faultfs.FS, path string, wantBaseGen uint64, wantChain *uint64) (*WALReplay, error) {
	data, err := fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) >= walHeaderSize && wantChain == nil {
		// Trust the header fold; the segment-boundary check catches a lie
		// before any of its records are served.
		c := readWALHeaderChain(data)
		wantChain = &c
	}
	if wantChain == nil {
		c := ChainStart()
		wantChain = &c
	}
	rep, err := ReplayWALBytes(data, wantBaseGen, *wantChain)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	return rep, nil
}

func readWALHeaderChain(data []byte) uint64 {
	return binary.LittleEndian.Uint64(data[16:24])
}

// scanDir inventories segment and WAL files, ascending.
func (s *Store) scanDir() (segs, wals []walFileRef, err error) {
	ents, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range ents {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".seg"):
			n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".seg"), 10, 64)
			if err != nil {
				continue
			}
			segs = append(segs, walFileRef{path: filepath.Join(s.dir, name), base: n})
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".wal"):
			n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".wal"), 10, 64)
			if err != nil || n == 0 {
				continue
			}
			wals = append(wals, walFileRef{path: filepath.Join(s.dir, name), base: n - 1})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].base < segs[j].base })
	sort.Slice(wals, func(i, j int) bool { return wals[i].base < wals[j].base })
	return segs, wals, nil
}

// retainedWALs drops replayed files that are already fully covered by
// the retention floor (everything at or below the previous segment).
// Only Open calls it, before the store is shared with any other
// goroutine, so the lock contract below is vacuously satisfied.
//
//dc:holds s.mu
func (s *Store) retainedWALs(refs []walFileRef) []walFileRef {
	floor := s.retentionFloor()
	out := refs[:0:0]
	for i, wf := range refs {
		end := s.gen
		if i+1 < len(refs) {
			end = refs[i+1].base
		}
		if end <= floor {
			if err := s.fs.Remove(wf.path); err == nil {
				continue
			}
		}
		out = append(out, wf)
	}
	return out
}

// retentionFloor is the generation below which durable history may be
// discarded: the previous segment's generation, so that if the newest
// segment rots, recovery still has old-segment + WAL tail.
//
//dc:holds s.mu
func (s *Store) retentionFloor() uint64 {
	if s.hasPrev {
		return s.prevSegGen
	}
	return 0
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Gen returns the current generation (keys appended since baseline).
func (s *Store) Gen() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// Chain returns the current insert-stream fold.
func (s *Store) Chain() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.chain
}

// Broken reports the WAL's sticky I/O error, if any.
func (s *Store) Broken() error {
	s.mu.Lock()
	w := s.wal
	s.mu.Unlock()
	return w.Broken()
}

// HasSegment reports whether the store currently holds an intact
// segment (cluster stores require one: their baseline is the segment).
func (s *Store) HasSegment() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hasSeg
}

// Append logs keys as one record. The caller must apply keys to the
// in-memory index before releasing whatever lock serializes its insert
// path (see the concurrency contract above), and must Commit(end)
// before acking.
func (s *Store) Append(keys []workload.Key) (end int64, gen uint64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, 0, fmt.Errorf("index: store %s is closed", s.dir)
	}
	end, gen, err = s.wal.Append(keys)
	if err != nil {
		return 0, 0, err
	}
	s.gen = gen
	s.chain = s.wal.Chain()
	s.chainAt[gen] = s.chain
	// The returned end is cumulative across rotations, so a Commit that
	// races a background FlushSegment still resolves correctly.
	return s.walPrefix + end, gen, nil
}

// Commit blocks until the log is durable through end (group commit).
// end is the cumulative offset Append returned; a record whose file has
// since been rotated away is already durable (rotation commits the old
// file before swapping it out), so Commit returns immediately rather
// than waiting on the new file — which would never reach that offset.
func (s *Store) Commit(end int64) error {
	s.mu.Lock()
	w, prefix := s.wal, s.walPrefix
	s.mu.Unlock()
	if end <= prefix {
		return nil
	}
	return w.Commit(end - prefix)
}

// FlushSegment makes the compacted key set at watermark gen durable as
// an immutable segment, rotates the WAL, and retires files older than
// the retention floor. keys must be exactly the multiset covered by
// generations [0, gen] plus the baseline (the frozen-layer publish
// guarantees this). Duplicate or stale watermarks are ignored.
func (s *Store) FlushSegment(keys []workload.Key, gen uint64) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("index: store %s is closed", s.dir)
	}
	if err := s.wal.Broken(); err != nil {
		s.mu.Unlock()
		return err
	}
	if s.hasSeg && gen <= s.segGen {
		s.mu.Unlock()
		return nil
	}
	chain, ok := s.chainAt[gen]
	if !ok {
		if gen == s.gen {
			chain = s.chain
		} else {
			s.mu.Unlock()
			return fmt.Errorf("index: store %s: no fold recorded for flush watermark %d", s.dir, gen)
		}
	}
	path := filepath.Join(s.dir, segName(gen))

	// Write the segment off-lock: it is a full-partition image (two
	// fsyncs through AtomicWriteFile), and appends — the ack path —
	// must not stall behind it. The segment's content depends only on
	// (keys, gen, chain), all resolved above; concurrent appends land
	// in the WAL and stay retained until a later flush covers them.
	s.mu.Unlock()
	if err := WriteSegment(s.fs, path, keys, gen, chain); err != nil {
		return fmt.Errorf("index: store %s: flush segment %d: %w", s.dir, gen, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("index: store %s is closed", s.dir)
	}
	if (s.hasSeg && gen <= s.segGen) || gen > s.gen {
		// A concurrent flush advanced past us while the file was being
		// written, or a ResetTo rewound the store below our watermark;
		// either way ours is stale, not current.
		s.fs.Remove(path)
		return nil
	}

	// Rotate so the files holding already-covered records become
	// immutable and retirable. If the active log is still empty, keep
	// it — rotation would recreate the same name.
	if s.gen > s.wals[len(s.wals)-1].base {
		if err := s.rotateLocked(); err != nil {
			// The segment is durable; a failed rotation only delays
			// retirement. Keep serving.
			s.logf("store %s: WAL rotation after segment %d failed: %v", s.dir, gen, err)
		}
	}

	if s.hasSeg {
		s.prevSegGen, s.hasPrev = s.segGen, true
	}
	s.segGen, s.segPath, s.hasSeg = gen, path, true
	s.retireLocked()
	for g := range s.chainAt {
		if g <= gen {
			delete(s.chainAt, g)
		}
	}
	return nil
}

// rotateLocked closes the active log (after a final commit so no
// group-commit waiter races the close) and cuts a fresh one.
//
//dc:holds s.mu
func (s *Store) rotateLocked() error {
	old := s.wal
	if err := old.Commit(s.walEnd(old)); err != nil {
		return err
	}
	w, err := CreateWAL(s.fs, filepath.Join(s.dir, walName(s.gen+1)), s.gen, s.chain, s.opt.FsyncInterval)
	if err != nil {
		return err
	}
	// Everything in the old file is durable as of the Commit above;
	// advancing the prefix makes outstanding cumulative ends that point
	// into it resolve as already-committed.
	s.walPrefix += s.walEnd(old)
	old.Close()
	s.wal = w
	s.wals = append(s.wals, walFileRef{path: w.Path(), base: s.gen})
	return nil
}

func (s *Store) walEnd(w *WAL) int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// retireLocked deletes segments and WAL files wholly below the
// retention floor.
//
//dc:holds s.mu
func (s *Store) retireLocked() {
	floor := s.retentionFloor()
	if segs, _, err := s.scanDir(); err == nil {
		for _, sf := range segs {
			keep := sf.base == s.segGen || (s.hasPrev && sf.base == s.prevSegGen)
			if !keep {
				s.fs.Remove(sf.path)
			}
		}
	}
	out := s.wals[:0]
	for i, wf := range s.wals {
		if i+1 < len(s.wals) && s.wals[i+1].base <= floor {
			if err := s.fs.Remove(wf.path); err == nil {
				continue
			}
		}
		out = append(out, wf)
	}
	s.wals = out
}

// InsertsSince returns, in append order, every key logged after
// generation gen, verifying that the caller's fold at gen matches this
// store's history (ok=false on any mismatch, gap, or compacted-away
// tail — the caller then falls back to a full snapshot). gen must be a
// record boundary, which it is whenever it came from a store
// generation on either side.
func (s *Store) InsertsSince(gen, chain uint64) (keys []workload.Key, ok bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if gen > s.gen {
		return nil, false, nil
	}
	if gen == s.gen {
		return nil, chain == s.chain, nil
	}
	if len(s.wals) == 0 || s.wals[0].base > gen {
		return nil, false, nil // compacted past the caller's generation
	}
	var out []workload.Key
	boundary := false
	tgen, tchain := uint64(0), uint64(0)
	threaded := false
	for _, wf := range s.wals {
		var want *uint64
		if threaded {
			if wf.base != tgen {
				return nil, false, fmt.Errorf("%w: %s: WAL gap at generation %d", ErrStoreCorrupt, s.dir, wf.base)
			}
			want = &tchain
		}
		rep, rerr := replayWALChecked(s.fs, wf.path, wf.base, want)
		if rerr != nil {
			return nil, false, fmt.Errorf("%w: %s: %v", ErrStoreCorrupt, s.dir, rerr)
		}
		if !threaded {
			tgen, tchain = rep.BaseGen, rep.BaseChain
			threaded = true
		}
		if wf.base == gen && rep.BaseChain == chain {
			boundary = true
		}
		for _, rec := range rep.Records {
			if rec.Seq == gen {
				boundary = rec.Chain == chain
			}
			if rec.Seq > gen {
				first := rec.Seq - uint64(len(rec.Keys))
				if first < gen {
					return nil, false, nil // not a record boundary
				}
				out = append(out, rec.Keys...)
			}
			tgen, tchain = rec.Seq, rec.Chain
		}
	}
	if tgen != s.gen || !boundary {
		return nil, false, nil
	}
	return out, true, nil
}

// ResetTo replaces the entire durable state with keys at generation gen
// (fold chain): the full-snapshot catch-up path. Old files are deleted
// first — a crash mid-reset recovers to the baseline and honestly
// re-runs catch-up rather than resurrecting the pre-reset history with
// a generation that no longer means anything.
func (s *Store) ResetTo(keys []workload.Key, gen, chain uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("index: store %s is closed", s.dir)
	}
	if err := s.wal.Broken(); err != nil {
		return err
	}
	// A reset replaces all durable state; ends handed out against the
	// discarded log must not wait on the fresh one.
	s.walPrefix += s.walEnd(s.wal)
	s.wal.Close()
	if segs, wals, err := s.scanDir(); err == nil {
		for _, f := range append(segs, wals...) {
			s.fs.Remove(f.path)
		}
	}
	s.gen, s.chain = gen, chain
	s.segGen, s.hasSeg = gen, true
	s.hasPrev = false
	s.chainAt = make(map[uint64]uint64)
	path := filepath.Join(s.dir, segName(gen))
	if err := WriteSegment(s.fs, path, keys, gen, chain); err != nil {
		return err
	}
	s.segPath = path
	w, err := CreateWAL(s.fs, filepath.Join(s.dir, walName(gen+1)), gen, chain, s.opt.FsyncInterval)
	if err != nil {
		return err
	}
	s.wal = w
	s.wals = []walFileRef{{path: w.Path(), base: gen}}
	return nil
}

// Close closes the active WAL file. It does not flush: durability is
// already guaranteed through the last Commit.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.wal.Close()
}
