package index

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/workload"
)

// appendOracle writes batches to a fresh WAL at path and returns the
// per-record oracle (what a correct replay must reproduce).
func appendOracle(t *testing.T, path string, batches [][]workload.Key) []WALRecord {
	t.Helper()
	w, err := CreateWAL(faultfs.OS, path, 0, ChainStart(), 0)
	if err != nil {
		t.Fatalf("CreateWAL: %v", err)
	}
	var oracle []WALRecord
	gen, chain := uint64(0), ChainStart()
	for _, b := range batches {
		end, g, err := w.Append(b)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if err := w.Commit(end); err != nil {
			t.Fatalf("Commit: %v", err)
		}
		gen += uint64(len(b))
		chain = ChainFold(chain, b)
		if g != gen {
			t.Fatalf("Append returned gen %d, want %d", g, gen)
		}
		oracle = append(oracle, WALRecord{Seq: gen, Chain: chain, Keys: b})
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return oracle
}

func walBatches() [][]workload.Key {
	return [][]workload.Key{
		{10, 20, 30},
		{5},
		{40, 41, 42, 43, 44},
		{7, 7, 7}, // duplicates are legal: the index is a multiset
		{99, 1},
	}
}

// sameRecords compares a replay against an oracle prefix.
func sameRecords(got, want []WALRecord) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i].Seq != want[i].Seq || got[i].Chain != want[i].Chain || len(got[i].Keys) != len(want[i].Keys) {
			return false
		}
		for j := range got[i].Keys {
			if got[i].Keys[j] != want[i].Keys[j] {
				return false
			}
		}
	}
	return true
}

func TestWALReplayRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-00000000000000000001.wal")
	oracle := appendOracle(t, path, walBatches())
	rep, err := ReplayWAL(faultfs.OS, path, 0, ChainStart())
	if err != nil {
		t.Fatalf("ReplayWAL: %v", err)
	}
	if rep.Torn {
		t.Fatal("clean file reported torn")
	}
	if !sameRecords(rep.Records, oracle) {
		t.Fatalf("replay diverged from oracle: got %d records, want %d", len(rep.Records), len(oracle))
	}
	if rep.Gen() != oracle[len(oracle)-1].Seq || rep.Chain() != oracle[len(oracle)-1].Chain {
		t.Fatalf("replay position (%d, %#x) != oracle (%d, %#x)",
			rep.Gen(), rep.Chain(), oracle[len(oracle)-1].Seq, oracle[len(oracle)-1].Chain)
	}
}

// TestWALCrashAtEveryOffset simulates kill -9 at every possible write
// boundary: for each prefix length of the log file, replay must recover
// exactly the records wholly contained in the prefix — never an error,
// never a record that was not fully written.
func TestWALCrashAtEveryOffset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-00000000000000000001.wal")
	oracle := appendOracle(t, path, walBatches())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Record end offsets, to know which prefix covers which records.
	ends := []int64{walHeaderSize}
	o := int64(walHeaderSize)
	for _, rec := range oracle {
		o += int64(walRecHeaderSize + 4*len(rec.Keys) + walRecTrailerSize)
		ends = append(ends, o)
	}
	if o != int64(len(data)) {
		t.Fatalf("offset accounting: computed end %d, file is %d bytes", o, len(data))
	}

	for cut := 0; cut <= len(data); cut++ {
		rep, err := ReplayWALBytes(data[:cut], 0, ChainStart())
		if err != nil {
			t.Fatalf("cut %d: replay error %v (a torn tail must recover, not refuse)", cut, err)
		}
		// How many records fit wholly in the prefix?
		whole := 0
		for whole+1 < len(ends) && ends[whole+1] <= int64(cut) {
			whole++
		}
		if !sameRecords(rep.Records, oracle[:whole]) {
			t.Fatalf("cut %d: recovered %d records, want the %d whole ones", cut, len(rep.Records), whole)
		}
		wantTorn := cut != 0 && int64(cut) != ends[whole] // an empty file is absent, not torn
		if rep.Torn != wantTorn {
			t.Fatalf("cut %d: Torn = %v, want %v", cut, rep.Torn, wantTorn)
		}
	}
}

// TestWALBitFlipNeverSilentlyWrong flips every bit of the file, one at a
// time. Each flip must either be rejected (ErrWALCorrupt — mid-file
// damage, bad header, broken accounting) or recover a strict prefix of
// the oracle (damage in the final record is indistinguishable from a
// torn write). It must never return records that differ from the oracle.
func TestWALBitFlipNeverSilentlyWrong(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-00000000000000000001.wal")
	oracle := appendOracle(t, path, walBatches())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for byteOff := 0; byteOff < len(data); byteOff++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), data...)
			mut[byteOff] ^= 1 << bit
			rep, err := ReplayWALBytes(mut, 0, ChainStart())
			if err != nil {
				if !errors.Is(err, ErrWALCorrupt) {
					t.Fatalf("flip %d.%d: error %v is not ErrWALCorrupt", byteOff, bit, err)
				}
				continue
			}
			if len(rep.Records) <= len(oracle) && sameRecords(rep.Records, oracle[:len(rep.Records)]) {
				continue // a clean prefix: equivalent to crashing earlier
			}
			t.Fatalf("flip %d.%d: silently wrong replay (%d records, not an oracle prefix)",
				byteOff, bit, len(rep.Records))
		}
	}
}

// TestWALGroupCommitConcurrent hammers Append+Commit from many
// goroutines (run under -race): every acked record must be in the file,
// and the final replay must match the generation/chain accounting.
func TestWALGroupCommitConcurrent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-00000000000000000001.wal")
	w, err := CreateWAL(faultfs.OS, path, 0, ChainStart(), 0)
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 8
		perW    = 50
	)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var acked int
	errs := make(chan error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				keys := []workload.Key{workload.Key(g*1000 + i)}
				end, _, err := w.Append(keys)
				if err != nil {
					errs <- err
					return
				}
				if err := w.Commit(end); err != nil {
					errs <- err
					return
				}
				mu.Lock()
				acked++
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("writer failed: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := ReplayWAL(faultfs.OS, path, 0, ChainStart())
	if err != nil {
		t.Fatalf("ReplayWAL: %v", err)
	}
	if rep.Torn {
		t.Fatal("torn tail after clean close")
	}
	if got, want := rep.Gen(), uint64(writers*perW); got != want {
		t.Fatalf("replayed generation %d, want %d (every acked record must be present)", got, want)
	}
	if acked != writers*perW {
		t.Fatalf("acked %d, want %d", acked, writers*perW)
	}
}

// TestWALInjectedWriteFailure: a failed append poisons the log — the
// caller gets an error (no ack), and every later append refuses with
// ErrWALBroken rather than writing past a hole.
func TestWALInjectedWriteFailure(t *testing.T) {
	faulty := faultfs.NewFaulty(faultfs.OS)
	path := filepath.Join(t.TempDir(), "wal-00000000000000000001.wal")
	w, err := CreateWAL(faulty, path, 0, ChainStart(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, _, err := w.Append([]workload.Key{1, 2}); err != nil {
		t.Fatalf("healthy append: %v", err)
	}
	faulty.FailWriteAt(faulty.Writes() + 1)
	if _, _, err := w.Append([]workload.Key{3}); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("injected append error = %v, want ErrInjected", err)
	}
	faulty.FailWriteAt(0) // disk "recovers" — the log must stay poisoned
	if _, _, err := w.Append([]workload.Key{4}); !errors.Is(err, ErrWALBroken) {
		t.Fatalf("append after failure = %v, want ErrWALBroken", err)
	}
	if w.Broken() == nil {
		t.Fatal("Broken() = nil after write failure")
	}
}

// TestWALInjectedSyncFailure: a failed fsync means Commit returns an
// error (the insert is never acked), and the failure is sticky for every
// later committer.
func TestWALInjectedSyncFailure(t *testing.T) {
	faulty := faultfs.NewFaulty(faultfs.OS)
	path := filepath.Join(t.TempDir(), "wal-00000000000000000001.wal")
	w, err := CreateWAL(faulty, path, 0, ChainStart(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	end1, _, err := w.Append([]workload.Key{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(end1); err != nil {
		t.Fatalf("healthy commit: %v", err)
	}
	faulty.FailSyncAt(faulty.Syncs() + 1)
	end2, _, err := w.Append([]workload.Key{2})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(end2); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("commit over failed fsync = %v, want ErrInjected", err)
	}
	faulty.FailSyncAt(0)
	if err := w.Commit(end2); !errors.Is(err, ErrWALBroken) {
		t.Fatalf("commit after fsync failure = %v, want ErrWALBroken", err)
	}
	if _, _, err := w.Append([]workload.Key{3}); !errors.Is(err, ErrWALBroken) {
		t.Fatalf("append after fsync failure = %v, want ErrWALBroken", err)
	}
}

// TestWALHeaderMismatch: a file whose header disagrees with what the
// caller expects (wrong base generation or fold) is corruption, never a
// silent accept.
func TestWALHeaderMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-00000000000000000001.wal")
	appendOracle(t, path, walBatches())
	if _, err := ReplayWAL(faultfs.OS, path, 7, ChainStart()); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("baseGen mismatch = %v, want ErrWALCorrupt", err)
	}
	if _, err := ReplayWAL(faultfs.OS, path, 0, 12345); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("baseChain mismatch = %v, want ErrWALCorrupt", err)
	}
}
