// Package index implements the three index structures the paper
// compares, over 4-byte keys:
//
//   - SortedArray: the Method C-3 structure — a plain sorted array
//     searched with binary search.
//   - Tree with 4-key leaves: the Method A/B structure — an 8-ary search
//     tree whose 32-byte nodes fill exactly one Pentium III cache line
//     (7 separator keys + a first-child pointer in internal nodes; 4 keys
//     plus room for their associated words in leaves). With Table 1's
//     327,680 keys this yields exactly T = 7 levels and a ~3 MB arena,
//     matching the paper's setup.
//   - Tree with 7-key leaves: the CSB+ layout of Rao and Ross used by
//     Methods C-1/C-2 — identical internal nodes, but leaves are pure
//     key arrays (the CSB+ trick of storing only the first-child pointer
//     leaves all remaining words for keys). A 32,768-key slave partition
//     yields exactly 6 levels, matching Table 1's L = 6.
//
// Every structure answers Rank(k): the number of index keys <= k, which
// identifies the sub-range (and hence the responsible cluster node) for
// k. All implementations agree exactly with workload.ReferenceRank; the
// engines and the property tests rely on that.
//
// Structures live at caller-assigned virtual base addresses so that the
// cache simulator can model their residency; RankTrace reports the probe
// addresses of a lookup for trace-driven simulation.
package index

import (
	"repro/internal/memsim"
	"repro/internal/workload"
)

// Index is the common read API of all three structures.
type Index interface {
	// Name identifies the structure ("sorted-array", "nary-tree",
	// "csb+-tree") in reports.
	Name() string
	// N returns the number of indexed keys.
	N() int
	// Rank returns the number of indexed keys <= k.
	Rank(k workload.Key) int
	// RankTrace is Rank, also appending the virtual address of every
	// memory probe the lookup performs to trace (which it returns,
	// append-style). Each probe touches at most one cache line.
	RankTrace(k workload.Key, trace []memsim.Addr) (int, []memsim.Addr)
	// Base and SizeBytes describe the structure's arena, for cache
	// preloading and footprint reports.
	Base() memsim.Addr
	SizeBytes() int
	// Levels returns the number of probe levels a lookup visits: tree
	// height for trees, ceil(log2 n) for the array. This is T (or L)
	// in the analytical model.
	Levels() int
	// LevelLines returns lambda_i, the number of distinct cache lines
	// at each probe level (Appendix A's per-level line counts), root
	// level first.
	LevelLines() []int
}

// BuildChecked verifies idx agrees with the reference rank on a sample
// of boundary probes; constructors call it in debug paths and tests use
// it directly. It returns the first disagreeing key, or ok=true.
func BuildChecked(idx Index, keys []workload.Key) (bad workload.Key, ok bool) {
	probe := func(k workload.Key) bool {
		return idx.Rank(k) == workload.ReferenceRank(keys, k)
	}
	if !probe(0) || !probe(^workload.Key(0)) {
		return 0, false
	}
	for _, k := range keys {
		if !probe(k) {
			return k, false
		}
		if k > 0 && !probe(k-1) {
			return k - 1, false
		}
	}
	return 0, true
}
