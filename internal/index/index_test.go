package index

import (
	"testing"
	"testing/quick"

	"repro/internal/memsim"
	"repro/internal/workload"
)

func buildAll(keys []workload.Key) []Index {
	return []Index{
		NewSortedArray(keys, 0),
		NewNaryTree(keys, 1<<26),
		NewCSBTree(keys, 1<<27),
	}
}

func TestAllStructuresAgreeWithReference(t *testing.T) {
	keys := workload.SortedKeys(5000, 1)
	r := workload.NewRNG(2)
	for _, idx := range buildAll(keys) {
		// Random probes.
		for i := 0; i < 20000; i++ {
			k := r.Key()
			if got, want := idx.Rank(k), workload.ReferenceRank(keys, k); got != want {
				t.Fatalf("%s: Rank(%d) = %d, want %d", idx.Name(), k, got, want)
			}
		}
		// Exact and off-by-one boundary probes on every key.
		if bad, ok := BuildChecked(idx, keys); !ok {
			t.Fatalf("%s: BuildChecked failed at key %d", idx.Name(), bad)
		}
	}
}

func TestRankTraceMatchesRankAndLevels(t *testing.T) {
	keys := workload.SortedKeys(5000, 3)
	r := workload.NewRNG(4)
	for _, idx := range buildAll(keys) {
		var trace []memsim.Addr
		for i := 0; i < 500; i++ {
			k := r.Key()
			trace = trace[:0]
			got, tr := idx.RankTrace(k, trace)
			if got != idx.Rank(k) {
				t.Fatalf("%s: RankTrace disagrees with Rank for %d", idx.Name(), k)
			}
			if len(tr) > idx.Levels() {
				t.Fatalf("%s: trace length %d exceeds Levels %d", idx.Name(), len(tr), idx.Levels())
			}
			if len(tr) == 0 {
				t.Fatalf("%s: empty trace on non-empty index", idx.Name())
			}
			// All probes must fall within the arena.
			for _, a := range tr {
				if a < idx.Base() || a >= idx.Base()+memsim.Addr(idx.SizeBytes()) {
					t.Fatalf("%s: probe %d outside arena [%d,%d)", idx.Name(), a, idx.Base(), idx.Base()+memsim.Addr(idx.SizeBytes()))
				}
			}
		}
	}
}

func TestTreeTraceLengthEqualsHeight(t *testing.T) {
	keys := workload.SortedKeys(5000, 3)
	for _, idx := range []Index{NewNaryTree(keys, 0), NewCSBTree(keys, 0)} {
		var trace []memsim.Addr
		_, tr := idx.RankTrace(12345, trace)
		if len(tr) != idx.Levels() {
			t.Errorf("%s: uniform-depth tree trace = %d probes, want height %d", idx.Name(), len(tr), idx.Levels())
		}
	}
}

func TestEmptyIndexes(t *testing.T) {
	for _, idx := range buildAll(nil) {
		if idx.N() != 0 {
			t.Errorf("%s: N = %d", idx.Name(), idx.N())
		}
		if got := idx.Rank(42); got != 0 {
			t.Errorf("%s: empty Rank = %d", idx.Name(), got)
		}
		if got, tr := idx.RankTrace(42, nil); got != 0 || len(tr) != 0 {
			t.Errorf("%s: empty RankTrace = %d, %v", idx.Name(), got, tr)
		}
		if idx.SizeBytes() != 0 {
			t.Errorf("%s: empty SizeBytes = %d", idx.Name(), idx.SizeBytes())
		}
		if lines := idx.LevelLines(); len(lines) != 0 {
			t.Errorf("%s: empty LevelLines = %v", idx.Name(), lines)
		}
	}
}

func TestSingleKey(t *testing.T) {
	keys := []workload.Key{100}
	for _, idx := range buildAll(keys) {
		if idx.Rank(99) != 0 || idx.Rank(100) != 1 || idx.Rank(101) != 1 {
			t.Errorf("%s: single-key ranks wrong", idx.Name())
		}
		if idx.Levels() != 1 {
			t.Errorf("%s: Levels = %d, want 1", idx.Name(), idx.Levels())
		}
	}
}

func TestDuplicateKeysSupported(t *testing.T) {
	// Duplicates spanning leaf boundaries are the hard case for
	// separator routing.
	var keys []workload.Key
	for i := 0; i < 30; i++ {
		keys = append(keys, 5)
	}
	for i := 0; i < 30; i++ {
		keys = append(keys, 9)
	}
	for _, idx := range buildAll(keys) {
		for _, k := range []workload.Key{0, 4, 5, 6, 8, 9, 10} {
			if got, want := idx.Rank(k), workload.ReferenceRank(keys, k); got != want {
				t.Errorf("%s: Rank(%d) = %d, want %d", idx.Name(), k, got, want)
			}
		}
	}
}

func TestUnsortedInputPanics(t *testing.T) {
	bad := []workload.Key{3, 1, 2}
	for name, fn := range map[string]func(){
		"array": func() { NewSortedArray(bad, 0) },
		"nary":  func() { NewNaryTree(bad, 0) },
		"csb":   func() { NewCSBTree(bad, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: unsorted input did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestTable1NaryTreeGeometry(t *testing.T) {
	// Table 1: 327,680 keys ("327 kilo"), 32-byte nodes, T = 7 levels,
	// ~3.2 MB tree.
	keys := workload.EvenKeys(327680)
	tr := NewNaryTree(keys, 0)
	if got := tr.Levels(); got != 7 {
		t.Errorf("nary tree levels = %d, want T = 7 (Table 1)", got)
	}
	mb := float64(tr.SizeBytes()) / (1 << 20)
	if mb < 2.5 || mb > 3.5 {
		t.Errorf("nary tree size = %.2f MB, want ~3 MB (Table 1: 3.2 MB)", mb)
	}
	// Root level is a single node; leaf level holds ceil(n/4) nodes.
	lines := tr.LevelLines()
	if lines[0] != 1 {
		t.Errorf("root level lines = %d", lines[0])
	}
	wantLeaves := (327680 + NaryLeafKeys - 1) / NaryLeafKeys
	if lines[len(lines)-1] != wantLeaves {
		t.Errorf("leaf level lines = %d, want %d", lines[len(lines)-1], wantLeaves)
	}
}

func TestTable1CSBPartitionGeometry(t *testing.T) {
	// A 10-slave partition of the 327,680-key index: 32,768 keys per
	// slave, giving Table 1's L = 6 levels, and a footprint that fits
	// the 512 KB L2 cache.
	keys := workload.EvenKeys(32768)
	tr := NewCSBTree(keys, 0)
	if got := tr.Levels(); got != 6 {
		t.Errorf("CSB partition levels = %d, want L = 6 (Table 1)", got)
	}
	if tr.SizeBytes() > 512<<10 {
		t.Errorf("CSB partition = %d bytes, must fit 512 KB L2", tr.SizeBytes())
	}
	// The sorted-array partition (C-3) must be even smaller.
	sa := NewSortedArray(keys, 0)
	if sa.SizeBytes() >= tr.SizeBytes() {
		t.Errorf("sorted array %d B should be denser than CSB tree %d B (Section 4.1)", sa.SizeBytes(), tr.SizeBytes())
	}
}

func TestLevelLinesSumToNodeCount(t *testing.T) {
	keys := workload.SortedKeys(10000, 9)
	for _, tr := range []*Tree{NewNaryTree(keys, 0), NewCSBTree(keys, 0)} {
		sum := 0
		for _, l := range tr.LevelLines() {
			sum += l
		}
		if sum != tr.NodeCount() {
			t.Errorf("%s: level lines sum %d != node count %d", tr.Name(), sum, tr.NodeCount())
		}
	}
}

func TestLevelWidthsGrowByFanout(t *testing.T) {
	keys := workload.EvenKeys(100000)
	tr := NewNaryTree(keys, 0)
	lines := tr.LevelLines()
	for i := 1; i < len(lines); i++ {
		if lines[i] < lines[i-1] {
			t.Errorf("level %d narrower than parent: %v", i, lines)
		}
		if lines[i] > lines[i-1]*Fanout {
			t.Errorf("level %d wider than fanout allows: %v", i, lines)
		}
	}
}

func TestTreeNavigationPrimitives(t *testing.T) {
	keys := workload.SortedKeys(5000, 6)
	tr := NewCSBTree(keys, 0)
	r := workload.NewRNG(7)
	for i := 0; i < 1000; i++ {
		k := r.Key()
		id := tr.Root()
		depth := 0
		for !tr.IsLeaf(id) {
			next := tr.Step(id, k)
			if next <= id {
				t.Fatalf("Step went backwards: %d -> %d", id, next)
			}
			id = next
			depth++
			if depth > tr.Levels() {
				t.Fatal("descent exceeded tree height")
			}
		}
		if got, want := tr.LeafRank(id, k), workload.ReferenceRank(keys, k); got != want {
			t.Fatalf("manual descent rank = %d, want %d", got, want)
		}
	}
}

func TestNodeAddrWithinArena(t *testing.T) {
	keys := workload.SortedKeys(1000, 2)
	base := memsim.Addr(1 << 20)
	tr := NewNaryTree(keys, base)
	for id := int32(0); id < int32(tr.NodeCount()); id++ {
		a := tr.NodeAddr(id)
		if a < base || a+NodeBytes > base+memsim.Addr(tr.SizeBytes()) {
			t.Fatalf("node %d at %d outside arena", id, a)
		}
		if (a-base)%NodeBytes != 0 {
			t.Fatalf("node %d not line-aligned", id)
		}
	}
}

func TestSubtreeBytes(t *testing.T) {
	keys := workload.EvenKeys(327680)
	tr := NewNaryTree(keys, 0)
	// Height 1 at the root is one node.
	if got := tr.SubtreeBytes(0, 1); got != NodeBytes {
		t.Errorf("SubtreeBytes(0,1) = %d, want %d", got, NodeBytes)
	}
	// The whole tree from the root.
	if got := tr.SubtreeBytes(0, tr.Levels()); got != tr.SizeBytes() {
		t.Errorf("SubtreeBytes(0,height) = %d, want %d", got, tr.SizeBytes())
	}
	// Monotone in height.
	prev := 0
	for h := 1; h <= tr.Levels(); h++ {
		b := tr.SubtreeBytes(0, h)
		if b <= prev {
			t.Errorf("SubtreeBytes not increasing at height %d", h)
		}
		prev = b
	}
}

func TestSortedArrayLevels(t *testing.T) {
	cases := []struct {
		n    int
		want int
	}{
		{1, 1}, {2, 2}, {3, 2}, {4, 3}, {1023, 10}, {1024, 11},
	}
	for _, c := range cases {
		a := NewSortedArray(workload.EvenKeys(c.n), 0)
		if got := a.Levels(); got != c.want {
			t.Errorf("Levels(n=%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestSortedArrayLevelLinesSaturate(t *testing.T) {
	a := NewSortedArray(workload.EvenKeys(4096), 0) // 16 KB = 512 lines
	lines := a.LevelLines()
	if lines[0] != 1 {
		t.Errorf("first probe level lines = %d", lines[0])
	}
	max := 0
	for _, l := range lines {
		if l < max {
			t.Errorf("LevelLines not monotone: %v", lines)
		}
		if l > max {
			max = l
		}
	}
	if max != 512 {
		t.Errorf("LevelLines saturation = %d, want 512 total lines", max)
	}
}

// Property: all three structures agree on arbitrary key sets and probes.
func TestCrossStructureAgreementProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16, probes []uint32) bool {
		n := int(nRaw%2000) + 1
		keys := workload.SortedKeys(n, seed)
		idxs := buildAll(keys)
		for _, p := range probes {
			want := workload.ReferenceRank(keys, workload.Key(p))
			for _, idx := range idxs {
				if idx.Rank(workload.Key(p)) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: rank is monotone in the probe key for every structure.
func TestRankMonotoneProperty(t *testing.T) {
	keys := workload.SortedKeys(300, 11)
	idxs := buildAll(keys)
	f := func(a, b uint32) bool {
		ka, kb := workload.Key(a), workload.Key(b)
		if ka > kb {
			ka, kb = kb, ka
		}
		for _, idx := range idxs {
			if idx.Rank(ka) > idx.Rank(kb) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSortedArrayRank(b *testing.B) {
	keys := workload.SortedKeys(327680, 1)
	idx := NewSortedArray(keys, 0)
	qs := workload.UniformQueries(1<<16, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Rank(qs[i&(1<<16-1)])
	}
}

func BenchmarkNaryTreeRank(b *testing.B) {
	keys := workload.SortedKeys(327680, 1)
	idx := NewNaryTree(keys, 0)
	qs := workload.UniformQueries(1<<16, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Rank(qs[i&(1<<16-1)])
	}
}

func BenchmarkCSBTreeRank(b *testing.B) {
	keys := workload.SortedKeys(327680, 1)
	idx := NewCSBTree(keys, 0)
	qs := workload.UniformQueries(1<<16, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Rank(qs[i&(1<<16-1)])
	}
}
