package index

import (
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/workload"
)

// sortedCopy is the oracle normal form: the durable layer promises a
// multiset, not an order.
func sortedCopy(keys []workload.Key) []workload.Key {
	out := append([]workload.Key(nil), keys...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sameKeys(got, want []workload.Key) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func mustOpenStore(t *testing.T, dir string, baseline []workload.Key, opt StoreOptions) (*Store, []workload.Key) {
	t.Helper()
	s, rec, err := OpenStore(dir, baseline, opt)
	if err != nil {
		t.Fatalf("OpenStore(%s): %v", dir, err)
	}
	return s, rec
}

func storeAppend(t *testing.T, s *Store, keys []workload.Key) {
	t.Helper()
	end, _, err := s.Append(keys)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := s.Commit(end); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

func TestStoreFreshOpenServesBaseline(t *testing.T) {
	baseline := []workload.Key{10, 20, 30}
	s, rec := mustOpenStore(t, t.TempDir(), baseline, StoreOptions{})
	defer s.Close()
	if !sameKeys(rec, baseline) {
		t.Fatalf("fresh recovery = %v, want baseline %v", rec, baseline)
	}
	if s.Gen() != 0 || s.Chain() != ChainStart() {
		t.Fatalf("fresh position (%d, %#x), want (0, seed)", s.Gen(), s.Chain())
	}
}

func TestStoreRecoversWALTail(t *testing.T) {
	dir := t.TempDir()
	baseline := []workload.Key{10, 20, 30}
	s, _ := mustOpenStore(t, dir, baseline, StoreOptions{})
	storeAppend(t, s, []workload.Key{5, 25})
	storeAppend(t, s, []workload.Key{40})
	gen, chain := s.Gen(), s.Chain()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec := mustOpenStore(t, dir, baseline, StoreOptions{})
	defer s2.Close()
	want := sortedCopy(append(append([]workload.Key(nil), baseline...), 5, 25, 40))
	if !sameKeys(rec, want) {
		t.Fatalf("recovered %v, want %v", rec, want)
	}
	if s2.Gen() != gen || s2.Chain() != chain {
		t.Fatalf("recovered position (%d, %#x), want (%d, %#x)", s2.Gen(), s2.Chain(), gen, chain)
	}
}

func TestStoreSegmentPlusTailRecovery(t *testing.T) {
	dir := t.TempDir()
	baseline := []workload.Key{10, 20}
	s, _ := mustOpenStore(t, dir, baseline, StoreOptions{})
	storeAppend(t, s, []workload.Key{1, 2})
	// Frozen-layer publish at generation 2: baseline + the two inserts.
	compact := sortedCopy(append(append([]workload.Key(nil), baseline...), 1, 2))
	if err := s.FlushSegment(compact, 2); err != nil {
		t.Fatalf("FlushSegment: %v", err)
	}
	storeAppend(t, s, []workload.Key{99}) // tail past the segment
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A recovery that ignored the baseline arg would catch a store that
	// failed to persist the segment: pass a poisoned baseline.
	s2, rec := mustOpenStore(t, dir, []workload.Key{777}, StoreOptions{})
	defer s2.Close()
	want := sortedCopy(append(append([]workload.Key(nil), compact...), 99))
	if !sameKeys(rec, want) {
		t.Fatalf("recovered %v, want segment+tail %v", rec, want)
	}
	if s2.Gen() != 3 {
		t.Fatalf("recovered generation %d, want 3", s2.Gen())
	}
}

// TestStoreCorruptSegmentFallsBack rots the newest segment: recovery
// must quarantine it and rebuild the exact state from the previous
// segment plus the retained WAL files.
func TestStoreCorruptSegmentFallsBack(t *testing.T) {
	dir := t.TempDir()
	baseline := []workload.Key{10, 20}
	s, _ := mustOpenStore(t, dir, baseline, StoreOptions{})
	oracle := append([]workload.Key(nil), baseline...)

	flushAt := func(gen uint64) {
		t.Helper()
		if err := s.FlushSegment(sortedCopy(oracle), gen); err != nil {
			t.Fatalf("FlushSegment(%d): %v", gen, err)
		}
	}
	storeAppend(t, s, []workload.Key{1, 2})
	oracle = append(oracle, 1, 2)
	flushAt(2)
	storeAppend(t, s, []workload.Key{3, 4})
	oracle = append(oracle, 3, 4)
	flushAt(4)
	storeAppend(t, s, []workload.Key{5})
	oracle = append(oracle, 5)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a bit in the newest segment (generation 4).
	segPath := filepath.Join(dir, segName(4))
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(segPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var notices []string
	s2, rec := mustOpenStore(t, dir, baseline, StoreOptions{
		Logf: func(format string, args ...any) { notices = append(notices, format) },
	})
	defer s2.Close()
	if !sameKeys(rec, sortedCopy(oracle)) {
		t.Fatalf("fallback recovery = %v, want oracle %v", rec, sortedCopy(oracle))
	}
	if s2.Gen() != 5 {
		t.Fatalf("recovered generation %d, want 5", s2.Gen())
	}
	if _, err := os.Stat(segPath + ".corrupt"); err != nil {
		t.Fatalf("rotted segment not quarantined: %v", err)
	}
	quarantined := false
	for _, n := range notices {
		if strings.Contains(n, "quarantined") {
			quarantined = true
		}
	}
	if !quarantined {
		t.Fatal("no quarantine notice logged")
	}
}

// TestStoreCrashAtEveryOffset is the store-level kill -9 sweep: truncate
// the active WAL at every byte offset (a crash leaves an arbitrary
// prefix) and reopen. Recovery must yield exactly baseline + the records
// wholly contained in the prefix — the durable contract for unacked
// writes is "all-or-nothing per record".
func TestStoreCrashAtEveryOffset(t *testing.T) {
	dir := t.TempDir()
	baseline := []workload.Key{100, 200}
	batches := [][]workload.Key{{1, 2}, {3}, {4, 5, 6}}
	s, _ := mustOpenStore(t, dir, baseline, StoreOptions{})
	for _, b := range batches {
		storeAppend(t, s, b)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, walName(1))
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	// Per-batch oracle states and their record end offsets.
	ends := []int64{walHeaderSize}
	states := [][]workload.Key{sortedCopy(baseline)}
	acc := append([]workload.Key(nil), baseline...)
	o := int64(walHeaderSize)
	for _, b := range batches {
		o += int64(walRecHeaderSize + 4*len(b) + walRecTrailerSize)
		ends = append(ends, o)
		acc = append(acc, b...)
		states = append(states, sortedCopy(acc))
	}

	for cut := 0; cut <= len(full); cut++ {
		crashDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(crashDir, walName(1)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		whole := 0
		for whole+1 < len(ends) && ends[whole+1] <= int64(cut) {
			whole++
		}
		s2, rec, err := OpenStore(crashDir, baseline, StoreOptions{})
		if err != nil {
			t.Fatalf("cut %d: recovery refused: %v", cut, err)
		}
		if !sameKeys(rec, states[whole]) {
			t.Fatalf("cut %d: recovered %v, want %v", cut, rec, states[whole])
		}
		var wantGen uint64
		for i := 0; i < whole; i++ {
			wantGen += uint64(len(batches[i]))
		}
		if s2.Gen() != wantGen {
			t.Fatalf("cut %d: generation %d, want %d", cut, s2.Gen(), wantGen)
		}
		s2.Close()
	}
}

// TestStoreMidFileCorruptionRefuses: a hole in the middle of the log
// (valid records after the damage) must refuse to open — serving a
// gapped history would be silently wrong.
func TestStoreMidFileCorruptionRefuses(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpenStore(t, dir, []workload.Key{10}, StoreOptions{})
	storeAppend(t, s, []workload.Key{1, 2, 3})
	storeAppend(t, s, []workload.Key{4, 5, 6})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, walName(1))
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[walHeaderSize+walRecHeaderSize] ^= 0xff // first record's first key
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenStore(dir, []workload.Key{10}, StoreOptions{}); !errors.Is(err, ErrStoreCorrupt) {
		t.Fatalf("open over mid-file hole = %v, want ErrStoreCorrupt", err)
	}
}

func TestStoreInsertsSince(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpenStore(t, dir, []workload.Key{10}, StoreOptions{})
	defer s.Close()

	c0 := s.Chain()
	storeAppend(t, s, []workload.Key{1, 2})
	g1, c1 := s.Gen(), s.Chain()
	storeAppend(t, s, []workload.Key{3})
	g2, c2 := s.Gen(), s.Chain()

	keys, ok, err := s.InsertsSince(0, c0)
	if err != nil || !ok || !sameKeys(keys, []workload.Key{1, 2, 3}) {
		t.Fatalf("since 0: keys=%v ok=%v err=%v", keys, ok, err)
	}
	keys, ok, err = s.InsertsSince(g1, c1)
	if err != nil || !ok || !sameKeys(keys, []workload.Key{3}) {
		t.Fatalf("since %d: keys=%v ok=%v err=%v", g1, keys, ok, err)
	}
	keys, ok, err = s.InsertsSince(g2, c2)
	if err != nil || !ok || len(keys) != 0 {
		t.Fatalf("since head: keys=%v ok=%v err=%v", keys, ok, err)
	}
	// Diverged caller: right generation, wrong fold.
	if _, ok, err := s.InsertsSince(g1, c1^1); ok || err != nil {
		t.Fatalf("chain mismatch accepted (ok=%v err=%v)", ok, err)
	}
	// Future caller: a generation this store has never reached.
	if _, ok, err := s.InsertsSince(g2+5, c2); ok || err != nil {
		t.Fatalf("future generation accepted (ok=%v err=%v)", ok, err)
	}
}

// TestStoreInsertsSinceSurvivesRotation: the delta must thread across
// rotated WAL files, and a generation compacted past the retention floor
// must be refused (ok=false), steering the caller to a full snapshot.
func TestStoreInsertsSinceSurvivesRotation(t *testing.T) {
	dir := t.TempDir()
	baseline := []workload.Key{10}
	s, _ := mustOpenStore(t, dir, baseline, StoreOptions{})
	defer s.Close()
	oracle := append([]workload.Key(nil), baseline...)
	c0 := s.Chain()

	storeAppend(t, s, []workload.Key{1, 2})
	oracle = append(oracle, 1, 2)
	if err := s.FlushSegment(sortedCopy(oracle), 2); err != nil {
		t.Fatal(err)
	}
	g1, c1 := s.Gen(), s.Chain()
	storeAppend(t, s, []workload.Key{3, 4})
	oracle = append(oracle, 3, 4)
	if err := s.FlushSegment(sortedCopy(oracle), 4); err != nil {
		t.Fatal(err)
	}
	storeAppend(t, s, []workload.Key{5})

	// Generation 0 predates the retention floor (segment 2) once segment
	// 4 exists: the WAL that covered (0, 2] has been retired.
	if _, ok, err := s.InsertsSince(0, c0); ok || err != nil {
		t.Fatalf("compacted-away generation served a delta (ok=%v err=%v)", ok, err)
	}
	// Generation 2 is the previous segment: still covered by retained files.
	keys, ok, err := s.InsertsSince(g1, c1)
	if err != nil || !ok || !sameKeys(keys, []workload.Key{3, 4, 5}) {
		t.Fatalf("since retained floor: keys=%v ok=%v err=%v", keys, ok, err)
	}
}

func TestStoreResetToSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, _ := mustOpenStore(t, dir, []workload.Key{10}, StoreOptions{})
	storeAppend(t, s, []workload.Key{1})
	fresh := []workload.Key{50, 60, 70}
	if err := s.ResetTo(fresh, 9, 0xbeef); err != nil {
		t.Fatalf("ResetTo: %v", err)
	}
	storeAppend(t, s, []workload.Key{80})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, rec := mustOpenStore(t, dir, []workload.Key{777}, StoreOptions{})
	defer s2.Close()
	want := sortedCopy(append(append([]workload.Key(nil), fresh...), 80))
	if !sameKeys(rec, want) {
		t.Fatalf("recovered %v, want %v", rec, want)
	}
	if s2.Gen() != 10 {
		t.Fatalf("generation %d, want 10", s2.Gen())
	}
	if s2.Chain() != ChainFold(0xbeef, []workload.Key{80}) {
		t.Fatalf("chain %#x does not continue the reset fold", s2.Chain())
	}
}

// TestStoreFsyncFailureNeverAcks: when the disk refuses to sync, Commit
// must error (the caller never acks) and the store must refuse all
// further writes instead of acking over the hole.
func TestStoreFsyncFailureNeverAcks(t *testing.T) {
	faulty := faultfs.NewFaulty(faultfs.OS)
	s, _ := mustOpenStore(t, t.TempDir(), []workload.Key{10}, StoreOptions{FS: faulty})
	defer s.Close()
	storeAppend(t, s, []workload.Key{1})
	faulty.FailSyncAt(faulty.Syncs() + 1)
	end, _, err := s.Append([]workload.Key{2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(end); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("commit on dead disk = %v, want ErrInjected", err)
	}
	faulty.FailSyncAt(0)
	if _, _, err := s.Append([]workload.Key{3}); !errors.Is(err, ErrWALBroken) {
		t.Fatalf("append after fsync failure = %v, want ErrWALBroken", err)
	}
	if s.Broken() == nil {
		t.Fatal("Broken() = nil after fsync failure")
	}
	if err := s.FlushSegment([]workload.Key{1, 2, 10}, 2); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("segment flush on a broken store = %v, want the sticky error", err)
	}
}

// TestStoreSegmentRetiresWALs: after a segment flush, WAL files wholly
// below the retention floor are deleted; the newest two segments are
// kept so a rotted head segment still has a fallback.
func TestStoreSegmentRetiresWALs(t *testing.T) {
	dir := t.TempDir()
	baseline := []workload.Key{10}
	s, _ := mustOpenStore(t, dir, baseline, StoreOptions{})
	defer s.Close()
	oracle := append([]workload.Key(nil), baseline...)
	for round := 0; round < 4; round++ {
		b := []workload.Key{workload.Key(round*10 + 1), workload.Key(round*10 + 2)}
		storeAppend(t, s, b)
		oracle = append(oracle, b...)
		if err := s.FlushSegment(sortedCopy(oracle), uint64(2*(round+1))); err != nil {
			t.Fatalf("flush %d: %v", round, err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs, wals int
	for _, e := range ents {
		switch {
		case strings.HasSuffix(e.Name(), ".seg"):
			segs++
		case strings.HasSuffix(e.Name(), ".wal"):
			wals++
		}
	}
	if segs != 2 {
		t.Fatalf("%d segments retained, want 2 (newest + fallback)", segs)
	}
	// Retained WALs: those covering (prevSegGen, gen] plus the active log.
	if wals > 3 {
		t.Fatalf("%d WAL files retained, want <= 3 (retirement is not keeping up)", wals)
	}
}

// TestStoreCommitAfterRotation: an insert's Commit can race a
// background segment flush that rotates the WAL out from under it. The
// cumulative end must resolve against the rotated file — whose records
// rotation already committed — instead of waiting on the fresh log to
// reach an offset it will never hold (a livelock that fsyncs forever).
func TestStoreCommitAfterRotation(t *testing.T) {
	s, _ := mustOpenStore(t, t.TempDir(), []workload.Key{10}, StoreOptions{})
	defer s.Close()
	end, gen, err := s.Append([]workload.Key{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// The flush rotates the active WAL before this append's Commit runs
	// — exactly what a concurrent frozen-layer publish does.
	if err := s.FlushSegment([]workload.Key{1, 2, 3, 10}, gen); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Commit(end) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Commit after rotation: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Commit hung waiting on a rotated-away WAL offset")
	}
	// The fresh log still appends and commits normally.
	end2, _, err := s.Append([]workload.Key{4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(end2); err != nil {
		t.Fatal(err)
	}
	if got := s.Gen(); got != gen+1 {
		t.Fatalf("gen after post-rotation append = %d, want %d", got, gen+1)
	}
}
