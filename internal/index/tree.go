package index

import (
	"fmt"

	"repro/internal/memsim"
	"repro/internal/workload"
)

// Tree geometry. A node occupies exactly one 32-byte Pentium III cache
// line: 8 four-byte words. Internal nodes spend one word on the
// first-child pointer (the Rao–Ross CSB+ optimization: children are
// contiguous, so one pointer suffices) and hold up to 7 separator keys,
// giving the 8-ary fan-out the paper derives from "n keys ... fit
// exactly in an L2 cache line".
const (
	// NodeBytes is the simulated footprint of one tree node.
	NodeBytes = 32
	// MaxSeps is the separator capacity of an internal node.
	MaxSeps = 7
	// Fanout is the branching factor (MaxSeps + 1).
	Fanout = 8

	// NaryLeafKeys is the leaf capacity of the Method A/B tree: 4 keys
	// plus 4 words reserved for the keys' associated pointers ("the
	// corresponding pointers", Section 1). With Table 1's 327,680 keys
	// this yields exactly T = 7 levels and a ~3 MB arena — the paper's
	// "Index Tree Size: 3.2 MB".
	NaryLeafKeys = 4
	// CSBLeafKeys is the leaf capacity of the CSB+ tree used by
	// Methods C-1/C-2: all 7 non-pointer words hold keys. A 32,768-key
	// slave partition yields exactly 6 levels — Table 1's L = 6.
	CSBLeafKeys = 7
)

// Tree is the 8-ary cache-line search tree. Internal nodes hold
// separators; leaves hold runs of the sorted key array plus their global
// rank base. All leaves sit at the same depth (bulk-loaded bottom-up),
// which the buffered traversal (internal/buffering) relies on.
type Tree struct {
	name     string
	leafKeys int
	base     memsim.Addr
	n        int

	nodes      []tnode
	levelStart []int // node index where each level begins; root first
}

type tnode struct {
	keys  [MaxSeps]workload.Key
	nkeys uint8
	leaf  bool
	// first is the node index of the first child for internal nodes,
	// and the global rank base (index of the leaf's first key in the
	// sorted array) for leaves.
	first int32
}

// NewNaryTree builds the Method A/B tree over sorted keys at base.
func NewNaryTree(keys []workload.Key, base memsim.Addr) *Tree {
	return newTree("nary-tree", NaryLeafKeys, keys, base)
}

// NewCSBTree builds the Method C-1/C-2 CSB+ tree over sorted keys at
// base.
func NewCSBTree(keys []workload.Key, base memsim.Addr) *Tree {
	return newTree("csb+-tree", CSBLeafKeys, keys, base)
}

func newTree(name string, leafKeys int, keys []workload.Key, base memsim.Addr) *Tree {
	if leafKeys < 1 || leafKeys > MaxSeps {
		panic(fmt.Sprintf("index: leaf capacity %d out of range", leafKeys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			panic(fmt.Sprintf("index: %s input not sorted at %d", name, i))
		}
	}
	t := &Tree{name: name, leafKeys: leafKeys, base: base, n: len(keys)}
	if len(keys) == 0 {
		return t
	}

	// Bulk-load bottom-up. levels[0] is the leaf level; each entry
	// carries the minimum key of its subtree for separator derivation.
	type buildLevel struct {
		nodes []tnode
		mins  []workload.Key
		// firstChildAt[i] is the index (within the child level) of
		// node i's first child; leaves use .first for rank base.
		firstChildAt []int
	}

	var levels []buildLevel

	// Leaves.
	var leaves buildLevel
	for start := 0; start < len(keys); start += leafKeys {
		end := start + leafKeys
		if end > len(keys) {
			end = len(keys)
		}
		var nd tnode
		nd.leaf = true
		nd.nkeys = uint8(end - start)
		copy(nd.keys[:], keys[start:end])
		nd.first = int32(start)
		leaves.nodes = append(leaves.nodes, nd)
		leaves.mins = append(leaves.mins, keys[start])
	}
	levels = append(levels, leaves)

	// Internal levels until a single root remains.
	for len(levels[len(levels)-1].nodes) > 1 {
		child := &levels[len(levels)-1]
		var up buildLevel
		for start := 0; start < len(child.nodes); start += Fanout {
			end := start + Fanout
			if end > len(child.nodes) {
				end = len(child.nodes)
			}
			var nd tnode
			nd.nkeys = uint8(end - start - 1)
			for j := start + 1; j < end; j++ {
				nd.keys[j-start-1] = child.mins[j]
			}
			up.nodes = append(up.nodes, nd)
			up.mins = append(up.mins, child.mins[start])
			up.firstChildAt = append(up.firstChildAt, start)
		}
		levels = append(levels, up)
	}

	// Flatten root-first into level order and wire first-child indices.
	nLevels := len(levels)
	t.levelStart = make([]int, nLevels+1)
	total := 0
	for li := 0; li < nLevels; li++ {
		t.levelStart[li] = total
		total += len(levels[nLevels-1-li].nodes)
	}
	t.levelStart[nLevels] = total
	t.nodes = make([]tnode, 0, total)
	for li := 0; li < nLevels; li++ {
		src := levels[nLevels-1-li]
		for i, nd := range src.nodes {
			if !nd.leaf {
				nd.first = int32(t.levelStart[li+1] + src.firstChildAt[i])
			}
			t.nodes = append(t.nodes, nd)
		}
	}
	return t
}

// Name implements Index.
func (t *Tree) Name() string { return t.name }

// N implements Index.
func (t *Tree) N() int { return t.n }

// Base implements Index.
func (t *Tree) Base() memsim.Addr { return t.base }

// SizeBytes implements Index.
func (t *Tree) SizeBytes() int { return len(t.nodes) * NodeBytes }

// Levels implements Index: the tree height, leaf level included.
func (t *Tree) Levels() int { return len(t.levelStart) - 1 }

// LevelLines implements Index: one 32-byte node is one line, so
// lambda_i is the node count per level, root first.
func (t *Tree) LevelLines() []int {
	if t.n == 0 {
		return nil
	}
	out := make([]int, t.Levels())
	for i := range out {
		out[i] = t.levelStart[i+1] - t.levelStart[i]
	}
	return out
}

// NodeCount returns the total number of nodes.
func (t *Tree) NodeCount() int { return len(t.nodes) }

// Root returns the root node id, or -1 for an empty tree.
func (t *Tree) Root() int32 {
	if t.n == 0 {
		return -1
	}
	return 0
}

// IsLeaf reports whether node id is a leaf.
func (t *Tree) IsLeaf(id int32) bool { return t.nodes[id].leaf }

// NodeAddr returns the virtual address of node id.
func (t *Tree) NodeAddr(id int32) memsim.Addr {
	return t.base + memsim.Addr(int(id)*NodeBytes)
}

// Step descends one level: it returns the child of internal node id that
// covers key k (the child whose key range contains k).
func (t *Tree) Step(id int32, k workload.Key) int32 {
	nd := &t.nodes[id]
	i := 0
	for i < int(nd.nkeys) && nd.keys[i] <= k {
		i++
	}
	return nd.first + int32(i)
}

// LeafRank returns the global rank of k given that the descent reached
// leaf id: the leaf's rank base plus the count of leaf keys <= k.
func (t *Tree) LeafRank(id int32, k workload.Key) int {
	nd := &t.nodes[id]
	i := 0
	for i < int(nd.nkeys) && nd.keys[i] <= k {
		i++
	}
	return int(nd.first) + i
}

// FirstChild returns the node id of internal node id's first child.
// Calling it on a leaf panics: leaves reuse the field for rank bases,
// and interpreting one as a child id would silently corrupt a traversal.
func (t *Tree) FirstChild(id int32) int32 {
	nd := &t.nodes[id]
	if nd.leaf {
		panic(fmt.Sprintf("index: FirstChild on leaf node %d", id))
	}
	return nd.first
}

// ChildCount returns the number of children of internal node id
// (separator count + 1), or 0 for a leaf.
func (t *Tree) ChildCount(id int32) int {
	nd := &t.nodes[id]
	if nd.leaf {
		return 0
	}
	return int(nd.nkeys) + 1
}

// Rank implements Index by descending from the root.
func (t *Tree) Rank(k workload.Key) int {
	if t.n == 0 {
		return 0
	}
	id := int32(0)
	for !t.nodes[id].leaf {
		id = t.Step(id, k)
	}
	return t.LeafRank(id, k)
}

// RankTrace implements Index; one probe address per visited node.
func (t *Tree) RankTrace(k workload.Key, trace []memsim.Addr) (int, []memsim.Addr) {
	if t.n == 0 {
		return 0, trace
	}
	id := int32(0)
	for !t.nodes[id].leaf {
		trace = append(trace, t.NodeAddr(id))
		id = t.Step(id, k)
	}
	trace = append(trace, t.NodeAddr(id))
	return t.LeafRank(id, k), trace
}

// LevelStart returns the node id of the first node at the given level
// (root = level 0). LevelCount returns how many nodes that level holds.
// The buffered traversal uses these to bucket keys by subtree root.
func (t *Tree) LevelStart(level int) int32 { return int32(t.levelStart[level]) }

// LevelCount returns the number of nodes at the given level.
func (t *Tree) LevelCount(level int) int {
	return t.levelStart[level+1] - t.levelStart[level]
}

// SubtreeBytes returns the simulated footprint of a subtree of the given
// height rooted anywhere at the given level: the number of descendant
// nodes (bounded by level widths) times NodeBytes. The buffered
// traversal sizes its subtree heights with this.
func (t *Tree) SubtreeBytes(level, height int) int {
	if t.n == 0 {
		return 0
	}
	nodes, width := 0, 1
	for h := 0; h < height && level+h < t.Levels(); h++ {
		levelWidth := t.LevelCount(level + h)
		if width > levelWidth {
			width = levelWidth
		}
		nodes += width
		width *= Fanout
	}
	return nodes * NodeBytes
}
