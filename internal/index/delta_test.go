package index

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/workload"
)

// oracleRank is the reference: count of keys <= k in the multiset.
func oracleRank(keys []workload.Key, k workload.Key) int {
	return sort.Search(len(keys), func(i int) bool { return keys[i] > k })
}

func TestDeltaRankMatchesOracle(t *testing.T) {
	r := workload.NewRNG(7)
	var keys []workload.Key
	d := emptyDelta
	for round := 0; round < 50; round++ {
		batch := make([]workload.Key, r.Intn(20)+1)
		for i := range batch {
			batch[i] = r.Key() % 1000 // force duplicates
		}
		sortKeys(batch)
		d = d.MergeIn(batch)
		keys = append(keys, batch...)
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, probe := range []workload.Key{0, 1, 499, 500, 999, 1000, ^workload.Key(0)} {
			if got, want := d.Rank(probe), oracleRank(keys, probe); got != want {
				t.Fatalf("round %d: Rank(%d) = %d, want %d", round, probe, got, want)
			}
		}
		// Sorted and unsorted adds agree.
		qs := append([]workload.Key(nil), keys...)
		got1 := make([]int, len(qs))
		got2 := make([]int, len(qs))
		d.RankAdd(qs, got1)
		d.RankSortedAdd(qs, got2)
		for i := range got1 {
			if got1[i] != got2[i] {
				t.Fatalf("RankAdd/RankSortedAdd disagree at %d: %d vs %d", i, got1[i], got2[i])
			}
		}
	}
}

func TestSortKeys(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 2, 31, 32, 33, 100, 4096} {
		keys := make([]workload.Key, n)
		for i := range keys {
			keys[i] = workload.Key(r.Uint32())
		}
		want := append([]workload.Key(nil), keys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		sortKeys(keys)
		for i := range keys {
			if keys[i] != want[i] {
				t.Fatalf("n=%d: sortKeys diverges at %d", n, i)
			}
		}
	}
}

// sortedArrayBuilder is the Method C-3 Builder.
func sortedArrayBuilder(keys []workload.Key) BatchRanker {
	return NewSortedArray(keys, 0)
}

func TestUpdatableExactUnderMerges(t *testing.T) {
	base := workload.SortedKeys(5000, 1)
	u := NewUpdatable(base, sortedArrayBuilder, 64) // tiny threshold: many merges
	all := append([]workload.Key(nil), base...)

	r := workload.NewRNG(2)
	for round := 0; round < 40; round++ {
		ins := make([]workload.Key, 50)
		for i := range ins {
			ins[i] = r.Key()
		}
		u.InsertBatch(ins)
		all = append(all, ins...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	u.Quiesce()
	if u.Merges() == 0 {
		t.Fatal("expected at least one background merge")
	}
	if got, want := u.TotalKeys(), len(all); got != want {
		t.Fatalf("TotalKeys = %d, want %d", got, want)
	}

	qs := workload.UniformQueries(2000, 3)
	out := make([]int, len(qs))
	u.RankBatch(qs, out, 10)
	for i, q := range qs {
		if want := oracleRank(all, q) + 10; out[i] != want {
			t.Fatalf("RankBatch(%d) = %d, want %d", q, out[i], want)
		}
	}
	sort.Slice(qs, func(i, j int) bool { return qs[i] < qs[j] })
	u.RankSorted(qs, out, 0)
	for i, q := range qs {
		if want := oracleRank(all, q); out[i] != want {
			t.Fatalf("RankSorted(%d) = %d, want %d", q, out[i], want)
		}
	}

	snap := u.SnapshotKeys()
	if len(snap) != len(all) {
		t.Fatalf("SnapshotKeys len = %d, want %d", len(snap), len(all))
	}
	for i := range snap {
		if snap[i] != all[i] {
			t.Fatalf("SnapshotKeys diverges at %d", i)
		}
	}
}

// TestUpdatableConcurrentReadersExact hammers one Updatable with
// concurrent readers while inserts stream in: every result must lie
// between the rank before the phase's inserts and the rank after them
// (rank is monotone in inserts), and quiescent phases must be exact.
func TestUpdatableConcurrentReadersExact(t *testing.T) {
	base := workload.SortedKeys(20000, 5)
	u := NewUpdatable(base, sortedArrayBuilder, 256)
	all := append([]workload.Key(nil), base...)
	qs := workload.UniformQueries(512, 6)

	for phase := 0; phase < 8; phase++ {
		before := make([]int, len(qs))
		for i, q := range qs {
			before[i] = oracleRank(all, q)
		}
		ins := workload.UniformQueries(900, uint64(100+phase))
		sorted := append([]workload.Key(nil), ins...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		all = MergeKeys(all, sorted)
		after := make([]int, len(qs))
		for i, q := range qs {
			after[i] = oracleRank(all, q)
		}

		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				out := make([]int, len(qs))
				for iter := 0; iter < 20; iter++ {
					u.RankBatch(qs, out, 0)
					for i := range qs {
						if out[i] < before[i] || out[i] > after[i] {
							t.Errorf("phase %d: rank(%d) = %d outside [%d, %d]",
								phase, qs[i], out[i], before[i], after[i])
							return
						}
					}
				}
			}()
		}
		for off := 0; off < len(ins); off += 90 {
			u.InsertBatch(ins[off : off+90])
		}
		wg.Wait()

		// Quiescent: exact.
		out := make([]int, len(qs))
		u.RankBatch(qs, out, 0)
		for i := range qs {
			if out[i] != after[i] {
				t.Fatalf("phase %d quiescent: rank(%d) = %d, want %d", phase, qs[i], out[i], after[i])
			}
		}
	}
	u.Quiesce()
	if u.Merges() < 3 {
		t.Fatalf("merges = %d, want >= 3", u.Merges())
	}
}

func TestUpdatableResetDiscardsInFlightMerge(t *testing.T) {
	base := workload.SortedKeys(1000, 9)
	u := NewUpdatable(base, sortedArrayBuilder, 8)
	u.InsertBatch(workload.UniformQueries(64, 10)) // arms a merge
	fresh := workload.SortedKeys(500, 11)
	u.Reset(fresh)
	u.Quiesce()
	if got := u.TotalKeys(); got != len(fresh) {
		t.Fatalf("TotalKeys after Reset = %d, want %d", got, len(fresh))
	}
	out := make([]int, 1)
	u.RankBatch([]workload.Key{^workload.Key(0)}, out, 0)
	if out[0] != len(fresh) {
		t.Fatalf("rank(max) = %d, want %d (stale merge resurrected?)", out[0], len(fresh))
	}
}

// FuzzInsertMerge drives an Updatable with an arbitrary interleaving of
// insert batches, merges (forced via tiny thresholds), and resets, and
// cross-checks every rank against the sort.Search oracle over the shadow
// multiset.
func FuzzInsertMerge(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 250, 7, 9}, uint16(3))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 255}, uint16(1))
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0}, uint16(64))
	f.Fuzz(func(t *testing.T, script []byte, threshold uint16) {
		if len(script) == 0 {
			return
		}
		base := workload.SortedKeys(64, 1)
		u := NewUpdatable(base, sortedArrayBuilder, int(threshold%128)+1)
		shadow := append([]workload.Key(nil), base...)

		r := workload.NewRNG(uint64(len(script)))
		for i := 0; i < len(script); {
			op := script[i] % 16
			switch {
			case op < 12: // insert a small batch derived from the script
				n := int(script[i]%7) + 1
				batch := make([]workload.Key, 0, n)
				for j := 0; j < n && i+1+j < len(script); j++ {
					batch = append(batch, workload.Key(script[i+1+j])<<8|workload.Key(r.Intn(256)))
				}
				i += n + 1
				if len(batch) == 0 {
					continue
				}
				u.InsertBatch(batch)
				shadow = append(shadow, batch...)
				sort.Slice(shadow, func(a, b int) bool { return shadow[a] < shadow[b] })
			case op < 14: // quiesce (forces merge completion determinism)
				u.Quiesce()
				i++
			default: // reset to a fresh base
				fresh := workload.SortedKeys(int(script[i]%32)+1, uint64(i))
				u.Reset(fresh)
				shadow = append(shadow[:0], fresh...)
				i++
			}
			// Probe a handful of ranks after every op.
			qs := []workload.Key{0, 255, 1 << 13, ^workload.Key(0), workload.Key(r.Uint64())}
			out := make([]int, len(qs))
			u.RankBatch(qs, out, 0)
			for j, q := range qs {
				if want := oracleRank(shadow, q); out[j] != want {
					t.Fatalf("rank(%d) = %d, want %d (op %d at %d)", q, out[j], want, op, i)
				}
			}
		}
		u.Quiesce()
		snap := u.SnapshotKeys()
		if len(snap) != len(shadow) {
			t.Fatalf("snapshot len %d, want %d", len(snap), len(shadow))
		}
		for i := range snap {
			if snap[i] != shadow[i] {
				t.Fatalf("snapshot diverges at %d: %d vs %d", i, snap[i], shadow[i])
			}
		}
	})
}
